//===- core/NPWorld.h - The non-preemptive global semantics -----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-preemptive global semantics (paper: W = (T, t, dd, sigma),
/// Sec. 3.3, rules EntAt-np / ExtAt-np of Fig. 7). Context switch occurs
/// only at synchronization points: atomic-block boundaries, observable
/// events, and thread termination. The atomic-bit map dd records, per
/// thread, whether its next step is inside an atomic block (needed
/// because a switch may happen right after a thread enters its block).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_NPWORLD_H
#define CASCC_CORE_NPWORLD_H

#include "core/WorldCommon.h"

#include <string>
#include <vector>

namespace ccc {

/// A non-preemptive world.
class NPWorld {
public:
  /// The Load rule instantiated for non-preemptive execution; the rule
  /// picks an arbitrary initial thread, so loadAll returns one world per
  /// choice.
  static std::vector<NPWorld> loadAll(const Program &P);
  static NPWorld load(const Program &P, ThreadId Start);

  /// All global successors (EntAt-np, ExtAt-np, and the remaining
  /// non-preemptive rules; see TR).
  std::vector<GSucc<NPWorld>> succ() const;

  bool done() const;
  bool aborted() const { return Abort; }
  const std::string &abortReason() const { return AbortReason; }
  /// Canonical key (== residueKey() + '#' + mem().key()).
  std::string key() const;

  /// The non-memory part of the canonical key (see World::residueKey).
  std::string residueKey() const;

  /// Binary residue encoding (see World::residueBytes); additionally
  /// carries the per-thread atomic-bit map as a length-prefixed packed
  /// bitset.
  void residueBytes(ResidueBuf &B) const;

  /// 64-bit hash over the same components as key(), assembled from the
  /// maintained Mem hash and the cached per-thread hashes; equal worlds
  /// hash equally, collisions are resolved by exact comparison.
  uint64_t hashKey() const;

  /// NPDRF footprint prediction (Sec. 5): like Fig. 9's Predict but using
  /// the per-thread atomic bits.
  std::vector<InstrFootprint> predictFor(ThreadId T) const;
  bool racePredictable() const { return !Abort; }

  ThreadId curThread() const { return Cur; }
  bool threadInAtomic(ThreadId T) const { return DBits[T]; }
  const Mem &mem() const { return M; }
  const Program &program() const { return *Prog; }
  unsigned numThreads() const { return static_cast<unsigned>(Threads.size()); }
  const ThreadState &thread(ThreadId T) const { return Threads[T]; }

private:
  const Program *Prog = nullptr;
  std::vector<ThreadState> Threads;
  std::vector<uint8_t> DBits;
  ThreadId Cur = 0;
  Mem M;
  bool Abort = false;
  std::string AbortReason;

  GSucc<NPWorld> makeAbort(std::string Reason) const;

  /// Emits one successor per schedulable next thread, all sharing label
  /// \p L (used at switch points).
  void pushSwitches(std::vector<GSucc<NPWorld>> &Out, const NPWorld &Base,
                    GLabel L, const Footprint &FP) const;
};

} // namespace ccc

#endif // CASCC_CORE_NPWORLD_H
