//===- frontend/JobRunner.h - Batch check dispatch --------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-side half of the front end: runs the check requests of a
/// parsed workload file (explore / DRF / robustness / fence synthesis /
/// pass validation) on the exploration worker pool, under per-job state,
/// wall-clock, and intern-store byte budgets, and renders one BENCH-style
/// JSON verdict record per check.
///
/// Budget soundness is the load-bearing property: a budgeted check that
/// gets truncated reports `Inconclusive` with `conclusive=false` and the
/// budget that tripped — never a certificate. The enforcement lives in
/// the engine (Explorer's budgets flow into `safetyVerdict()` /
/// `checkRace()` / `DetectResult::Conclusive`, PR 2 tri-state
/// discipline); this layer only forwards the budgets and reports
/// `ExploreStats::TruncatedBy` faithfully.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_FRONTEND_JOBRUNNER_H
#define CASCC_FRONTEND_JOBRUNNER_H

#include "frontend/Workload.h"

#include <cstddef>
#include <string>
#include <vector>

namespace ccc {
namespace frontend {

/// Per-job resource budgets. Zero means unlimited; the defaults are the
/// engine's own defaults.
struct JobBudget {
  /// Maximum states to expand (ExploreOptions::MaxStates).
  unsigned MaxStates = 2000000;
  /// Wall-clock milliseconds per exploration (ExploreOptions::MaxBuildMs).
  double MaxMs = 0.0;
  /// Intern-store bytes (ExploreOptions::MaxStateBytes).
  std::size_t MaxStateBytes = 0;
};

/// One job: a workload (typically parsed from a `.ccc` file) plus the
/// budgets and engine knobs it runs under.
struct JobSpec {
  /// Job name, echoed into every verdict record.
  std::string Name;
  WorkloadFile W;
  JobBudget Budget;
  /// Worker-pool width for the explorations (bit-identical results at
  /// any width; PR 2).
  unsigned Workers = 1;
  /// Partial-order reduction for the explorations.
  bool Por = true;
  /// Static fast paths of the DRF check (lockset certificate, robustness
  /// SC switch). Off = dynamic-only mode: every verdict comes from the
  /// budgeted exploration, so budget truncation is observable — the mode
  /// the budget-soundness tests and smoke test pin.
  bool FastPaths = true;
};

/// The outcome of one check of one job.
struct JobOutcome {
  std::string Job;
  std::string Check;   ///< checkKindName of the request.
  /// "certified" / "refuted" / "inconclusive" for the tri-state checks
  /// (checkVerdictName), "robust" / "not-robust" / "unknown" for
  /// robustness (robustVerdictName's spellings), "error" when the
  /// workload failed to build (Error then says why).
  std::string Verdict;
  /// False whenever the verdict is not a certificate/refutation — i.e.
  /// a truncated, Unknown, or errored run.
  bool Conclusive = false;
  /// Which budget truncated the run: "" / "states" / "time" / "memory".
  std::string TruncatedBy;
  /// FNV-1a trace-set hash (explore check only; empty otherwise). The
  /// verdict differ hard-compares it.
  std::string TraceHash;
  std::size_t ExploredStates = 0;
  double Ms = 0.0;
  std::string Error;
  /// Full ExploreStats::toJson() of the explore check (empty for the
  /// other checks). Nested under "explore" in the record, which puts
  /// server runs under the same tools/check_bench_memory.py gate as the
  /// bench binaries; the verdict differ keeps only its truncated /
  /// truncated_by fields.
  std::string ExploreStatsJson;

  /// One BENCH-style JSON record (json::Log entry shape). Float fields
  /// are dropped by tools/diff_bench_verdicts.py; everything else is
  /// hard-compared, so a certificate from a truncated job diffs against
  /// the golden and fails CI.
  std::string toJson() const;
};

/// Runs every check request of \p S (in file order) and returns one
/// outcome per check. A workload with no `check` directives yields a
/// single "explore" outcome, so every job produces at least one record.
/// Build failures yield one "error" outcome per requested check; this
/// function does not throw and does not abort on malformed workloads.
std::vector<JobOutcome> runJob(const JobSpec &S);

} // namespace frontend
} // namespace ccc

#endif // CASCC_FRONTEND_JOBRUNNER_H
