//===- cimp/CImpParser.h - Parser for CImp ----------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for CImp source text.
///
/// Grammar sketch:
///   module  := { 'global' ident '=' int ';' | fundef }
///   fundef  := ident '(' [ident {',' ident}] ')' '{' {stmt} '}'
///   stmt    := 'skip' ';'
///            | ident ':=' expr ';'
///            | ident ':=' '[' expr ']' ';'
///            | ident ':=' ident '(' [args] ')' ';'
///            | '[' expr ']' ':=' expr ';'
///            | 'if' '(' expr ')' block ['else' block]
///            | 'while' '(' expr ')' block
///            | '<' {stmt} '>'
///            | 'assert' '(' expr ')' ';'
///            | 'print' '(' expr ')' ';'
///            | 'return' [expr] ';'
///            | ident '(' [args] ')' ';'
///   block   := '{' {stmt} '}'
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CIMP_CIMPPARSER_H
#define CASCC_CIMP_CIMPPARSER_H

#include "cimp/CImpAst.h"

#include <memory>
#include <string>

namespace ccc {
namespace cimp {

/// Parses CImp source text. Returns null and sets \p Error on failure.
std::shared_ptr<Module> parseModule(const std::string &Source,
                                    std::string &Error);

/// Parses or aborts; convenience for tests and examples.
std::shared_ptr<Module> parseModuleOrDie(const std::string &Source);

} // namespace cimp
} // namespace ccc

#endif // CASCC_CIMP_CIMPPARSER_H
