file(REMOVE_RECURSE
  "CMakeFiles/spinlock_tso.dir/spinlock_tso.cpp.o"
  "CMakeFiles/spinlock_tso.dir/spinlock_tso.cpp.o.d"
  "spinlock_tso"
  "spinlock_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spinlock_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
