//===- mem/Addr.h - Addresses and address sets ------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory addresses and finite address sets. The paper's memory model
/// (Sec. 3, Fig. 5) uses an abstract address domain; we instantiate it with
/// flat 32-bit addresses. AddrSet is the representation used for footprint
/// read/write sets and for the shared-location sets S of Fig. 8.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_ADDR_H
#define CASCC_MEM_ADDR_H

#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ccc {

/// A memory address (paper: l in Addr).
using Addr = uint32_t;

/// A thread identifier (paper: t in ThrdID).
using ThreadId = uint32_t;

/// A finite, sorted, duplicate-free set of addresses.
///
/// Used for footprint read/write sets and shared-location sets. The
/// representation is a sorted vector, which keeps canonical keys cheap and
/// deterministic.
class AddrSet {
public:
  AddrSet() = default;
  AddrSet(std::initializer_list<Addr> Init) : Elems(Init) { normalize(); }
  explicit AddrSet(std::vector<Addr> Init) : Elems(std::move(Init)) {
    normalize();
  }

  bool empty() const { return Elems.empty(); }
  std::size_t size() const { return Elems.size(); }

  bool contains(Addr A) const {
    return std::binary_search(Elems.begin(), Elems.end(), A);
  }

  void insert(Addr A) {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), A);
    if (It == Elems.end() || *It != A)
      Elems.insert(It, A);
  }

  /// Adds every element of \p Other to this set.
  void unionWith(const AddrSet &Other) {
    std::vector<Addr> Merged;
    Merged.reserve(Elems.size() + Other.Elems.size());
    std::set_union(Elems.begin(), Elems.end(), Other.Elems.begin(),
                   Other.Elems.end(), std::back_inserter(Merged));
    Elems = std::move(Merged);
  }

  /// Returns the intersection of this set with \p Other.
  AddrSet intersect(const AddrSet &Other) const {
    AddrSet Out;
    std::set_intersection(Elems.begin(), Elems.end(), Other.Elems.begin(),
                          Other.Elems.end(), std::back_inserter(Out.Elems));
    return Out;
  }

  /// Returns this set minus \p Other.
  AddrSet minus(const AddrSet &Other) const {
    AddrSet Out;
    std::set_difference(Elems.begin(), Elems.end(), Other.Elems.begin(),
                        Other.Elems.end(), std::back_inserter(Out.Elems));
    return Out;
  }

  /// Returns true if this set and \p Other share an element.
  bool intersects(const AddrSet &Other) const {
    auto I = Elems.begin(), J = Other.Elems.begin();
    while (I != Elems.end() && J != Other.Elems.end()) {
      if (*I < *J)
        ++I;
      else if (*J < *I)
        ++J;
      else
        return true;
    }
    return false;
  }

  /// Returns true if every element of this set is in \p Other.
  bool subsetOf(const AddrSet &Other) const {
    return std::includes(Other.Elems.begin(), Other.Elems.end(),
                         Elems.begin(), Elems.end());
  }

  bool operator==(const AddrSet &Other) const { return Elems == Other.Elems; }
  bool operator!=(const AddrSet &Other) const { return !(*this == Other); }

  const std::vector<Addr> &elems() const { return Elems; }
  auto begin() const { return Elems.begin(); }
  auto end() const { return Elems.end(); }

  /// Renders the set as "{a1,a2,...}".
  std::string toString() const {
    StrBuilder B;
    B << '{';
    for (std::size_t I = 0; I < Elems.size(); ++I) {
      if (I != 0)
        B << ',';
      B << static_cast<uint64_t>(Elems[I]);
    }
    B << '}';
    return B.take();
  }

private:
  void normalize() {
    std::sort(Elems.begin(), Elems.end());
    Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
  }

  std::vector<Addr> Elems;
};

} // namespace ccc

#endif // CASCC_MEM_ADDR_H
