//===- analysis/TsoRobust.h - Static TSO robustness -------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static SC-equivalence (robustness) analysis for x86 object modules,
/// in the style of Owens' triangular-race criterion (ECOOP 2010): the only
/// behaviours x86-TSO adds over x86-SC come from a thread's *plain* store
/// lingering in its FIFO store buffer while the same thread's later load
/// of a *different* shared location overtakes it. If every path from a
/// plain store to a shared location reaches an mfence or lock-prefixed
/// instruction (the buffer-draining points) before any load of a possibly
/// different shared location — and before control leaves the module — the
/// store buffer can always be flushed at the SC-equivalent point and every
/// TSO trace is SC-explainable.
///
/// Per entry point, the pass
///  1. builds the CFG from the flat X86Asm code stream (x86::successors),
///  2. runs a register abstract-value analysis so memory operands resolve
///     to a named global, the thread-private frame, or "unknown", and
///  3. propagates the set of pending (unfenced) shared stores along the
///     CFG, flagging triangular store/load pairs and stores that escape
///     the module boundary unfenced.
///
/// The verdict is three-valued:
///  - Robust: every shared store is covered by a drain on every path —
///    emitted with a per-store fence certificate. Certified modules may
///    soundly run under MemModel::SC, pruning the store-buffer dimension
///    of the explorer's state space.
///  - NotRobust: a concrete witness path names an unfenced store/load
///    pair, or a store that crosses the module boundary unfenced (the
///    caller may complete the triangle; pi_lock's release store is the
///    canonical instance). NotRobust object modules can still be *allowed*
///    when an object-refinement check covers their weak behaviours
///    (Sec. 7.3: pi_lock refines' gamma_lock).
///  - Unknown: an access target could not be resolved (loads used as
///    addresses, pointer arithmetic): no claim either way.
///
/// Frame cells count as thread-private (Confined) only while the frame
/// address provably stays in the thread's registers. The abstract values
/// carry a frame-derived taint through moves and pointer arithmetic, and
/// an escape scan checks every point where a register value leaves the
/// thread — stores to memory, cmpxchg publishes, call arguments, the
/// return value at ret. If any such point may carry the frame address,
/// the entry's frame accesses are reclassified as SharedUnknown: frames
/// live in ordinary shared memory, so a peer that learns the address can
/// race on them, and a certificate that ignored that would be unsound.
///
/// Two deliberate conservatisms keep the certificate meaningful:
///  - call/ret drain the buffer in the executable model (a documented
///    simplification), but the analysis does NOT credit them as fences —
///    real x86-TSO fences at neither, and a certificate should survive
///    the model simplification being lifted.
///  - A store escaping the module boundary is a witness even though no
///    in-module load completes the triangle: the client executes under
///    the same buffer, so any client load of another shared location
///    completes it.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_TSOROBUST_H
#define CASCC_ANALYSIS_TSOROBUST_H

#include "core/Program.h"
#include "x86/X86Asm.h"
#include "x86/X86Lang.h"

#include <optional>
#include <string>
#include <vector>

namespace ccc {
namespace analysis {

enum class TsoVerdict { Robust, NotRobust, Unknown };

const char *tsoVerdictName(TsoVerdict V);

/// How the analysis classified one memory access site.
enum class AccessClass {
  Confined,      ///< Thread-private frame slot — invisible to other threads.
  SharedKnown,   ///< A global cell with a resolved name.
  SharedUnknown, ///< Possibly shared, target unresolved.
};

/// One memory access site named by a witness or certificate.
struct TsoAccess {
  unsigned PC = 0;
  std::string Entry;  ///< Entry point whose CFG reaches the site.
  std::string Text;   ///< Instruction text (Instr::toString).
  std::string Global; ///< Resolved target cell, or "?" when unresolved.
  bool Write = false;
  AccessClass Cls = AccessClass::SharedUnknown;

  std::string describe() const;
};

/// A concrete robustness violation: an unfenced plain store to a shared
/// location, completed either by an in-module load of a (possibly)
/// different shared location, or by crossing the module boundary with the
/// store still buffered.
struct TriangularWitness {
  TsoAccess Store;
  /// The completing load; nullopt when the store escapes the boundary
  /// (Escape names the crossing instruction instead).
  std::optional<TsoAccess> Load;
  /// The boundary instruction (call/tcall/ret) the buffered store crosses.
  std::optional<TsoAccess> Escape;
  /// PC path from the store to the violation, fence-free by construction.
  std::vector<unsigned> Path;
  /// True when an unresolved target made this witness conservative — it
  /// degrades the verdict to Unknown instead of NotRobust.
  bool Tentative = false;

  std::string describe() const;
};

/// Per-store proof obligation discharged on a Robust module: the drain
/// point covering every path from the store.
struct FenceCert {
  std::string Entry;
  unsigned StorePC = 0;
  unsigned DrainPC = 0;
  std::string StoreText;
  std::string DrainText;

  std::string describe() const;
};

/// The per-module analysis result.
struct TsoRobustReport {
  TsoVerdict Verdict = TsoVerdict::Unknown;
  /// Concrete witnesses (NotRobust) and tentative ones (Unknown).
  std::vector<TriangularWitness> Witnesses;
  /// Per-store fence certificates; complete exactly when Robust.
  std::vector<FenceCert> Certificates;
  std::vector<std::string> Notes;

  unsigned SharedStores = 0;   ///< Plain stores to shared locations.
  unsigned SharedLoads = 0;    ///< Plain loads of shared locations.
  unsigned ConfinedAccesses = 0; ///< Frame-confined accesses (ignored).
  unsigned LockedOps = 0;      ///< Lock-prefixed accesses (drain points).
  unsigned Entries = 0;        ///< Entry points analyzed.

  bool robust() const { return Verdict == TsoVerdict::Robust; }
  std::string toString() const;
};

/// Runs the robustness analysis on one x86 module.
TsoRobustReport tsoRobustness(const x86::Module &M);

/// One x86 module of a linked program, with its verdict.
struct ModuleTsoInfo {
  std::string Name;
  bool ObjectMode = false;
  x86::MemModel Model = x86::MemModel::SC;
  TsoRobustReport Report;
  /// Set by the caller once an object-refinement check (refinesTraces
  /// against the module's abstract spec) covers the weak behaviours —
  /// the "flagged-but-allowed" state of a benign NotRobust module.
  bool AllowedByRefinement = false;
};

/// Program-level summary: the robustness verdict of every x86 module.
struct ProgramTsoReport {
  std::vector<ModuleTsoInfo> Modules;

  /// True when the program has x86 modules and every one is Robust.
  bool allRobust() const;
  /// True when some x86-TSO module is certified Robust (SC fast path
  /// applicable to it).
  bool anyScSwitchable() const;
  std::string toString() const;
};

/// Analyzes every x86 module of \p P.
ProgramTsoReport programTsoRobustness(const Program &P);

/// Downgrades every certified-Robust x86-TSO module of \p P to
/// MemModel::SC: by robustness its TSO behaviours are SC-explainable, so
/// the store-buffer dimension of the explorer's state space is redundant.
/// Returns the number of modules switched. \p P may be linked; module
/// global bindings are preserved.
unsigned applyScFastPath(Program &P, const ProgramTsoReport &R);

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_TSOROBUST_H
