//===- tests/BinResidueTest.cpp - Binary residue differential --------------===//
//
// Differential test of the binary tree-compressed state store against the
// legacy string-keyed representation: across tens of thousands of real
// workload states, two states receive equal (residue root, memory root)
// pairs exactly when their legacy key() strings are equal; decoded word
// vectors agree with a test-side flat map of the same states; and the
// DebugHashBits collision hook plus the VerifyResidues cross-check keep
// the exact-verify fallback honest.
//
//===----------------------------------------------------------------------===//

#include "core/BinResidue.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

using namespace ccc;

namespace {

using RootPair = std::pair<uint32_t, uint32_t>;

/// Re-encodes every explored state of \p P into a fresh StateStore and
/// checks the store's contract against the legacy string keys:
///  - distinct explorer states (which are deduped, hence pairwise
///    distinct) get pairwise distinct root pairs AND pairwise distinct
///    legacy keys — equal roots iff equal keys, over all state pairs;
///  - re-encoding a state (reverse order, warm caches) reproduces the
///    same roots — interning is deterministic and cache-transparent;
///  - decoded word vectors form a flat map that is in bijection with the
///    tree root ids (the injectivity invariant, DESIGN.md §4h).
template <typename WorldT>
void differentialFamily(const Program &P, const char *Name) {
  ExploreOptions Opts;
  Opts.Threads = 2;
  Explorer<WorldT> E(Opts);
  if constexpr (std::is_same_v<WorldT, NPWorld>)
    E.build(NPWorld::loadAll(P));
  else
    E.build(WorldT::load(P, 0));
  ASSERT_GT(E.numStates(), 0u) << Name;

  StateStore Store;
  ResidueBuf Buf(Store);
  auto encode = [&](const WorldT &W) -> RootPair {
    W.residueBytes(Buf);
    uint32_t R = Buf.takeRoot();
    uint32_t M = W.mem().residueRoot(Buf);
    return {R, M};
  };

  std::vector<RootPair> Roots(E.numStates());
  std::map<std::string, RootPair> ByKey;
  std::map<RootPair, std::string> ByRoot;
  for (std::size_t I = 0; I < E.numStates(); ++I) {
    const WorldT &W = E.world(I);
    Roots[I] = encode(W);
    std::string K = W.key();
    // The explorer dedups on the binary roots, so every stored state
    // must carry a fresh key (or the binary store merged two states the
    // legacy representation distinguishes)...
    EXPECT_TRUE(ByKey.emplace(K, Roots[I]).second)
        << Name << ": states " << I << " share a legacy key";
    // ...and a fresh root pair (or the legacy keys distinguish states
    // the binary store cannot).
    EXPECT_TRUE(ByRoot.emplace(Roots[I], K).second)
        << Name << ": state " << I << " shares roots with the state keyed "
        << ByRoot[Roots[I]];
  }

  // Reverse-order second pass: same store, warm sub-intern caches; every
  // state must reproduce its first-pass roots exactly.
  for (std::size_t I = E.numStates(); I-- > 0;) {
    RootPair Again = encode(E.world(I));
    EXPECT_EQ(Again, Roots[I]) << Name << ": state " << I
                               << " re-encoded to different roots";
  }

  // Flat-map cross-check: decode every root into its word vector; the
  // map decoded-vectors -> root-pair must be a bijection (equal vectors
  // iff equal ids).
  std::map<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>, RootPair>
      Flat;
  for (std::size_t I = 0; I < E.numStates(); ++I) {
    std::vector<uint32_t> R, M;
    Store.Tree.decode(Roots[I].first, R);
    Store.Tree.decode(Roots[I].second, M);
    auto [It, New] = Flat.emplace(std::make_pair(std::move(R), std::move(M)),
                                  Roots[I]);
    if (!New)
      EXPECT_EQ(It->second, Roots[I])
          << Name << ": distinct roots decode to equal word vectors";
    else
      EXPECT_TRUE(New);
  }
  EXPECT_EQ(Flat.size(), E.numStates()) << Name;
}

} // namespace

TEST(BinResidue, DifferentialAgainstLegacyKeys) {
  // ~29k states across every world type and memory model: the CImp
  // preemptive families (including the 24885-state locked t=3), the
  // non-preemptive world, Clight, and the x86-TSO litmus workloads.
  differentialFamily<World>(workload::lockedCounter(3, 1, 0), "locked t=3");
  differentialFamily<World>(workload::racyCounter(2), "racy t=2");
  differentialFamily<World>(workload::atomicCounter(3, 3), "atomic t=3 w=3");
  differentialFamily<World>(workload::clightLockedCounter(2),
                            "clight locked t=2");
  differentialFamily<World>(workload::sbLitmus(x86::MemModel::TSO, false),
                            "sb tso");
  differentialFamily<World>(workload::fencedPingPong(x86::MemModel::TSO, 2),
                            "pingpong tso");
  differentialFamily<NPWorld>(workload::lockedCounter(2, 1, 0),
                              "locked t=2 [np]");
}

TEST(BinResidue, ForcedHashCollisionsExactVerify) {
  // DebugHashBits=4 leaves 16 distinct hashes for 850 states: nearly
  // every probe meets a same-hash different-state entry and must be
  // saved by the exact binary comparison. With VerifyResidues on, every
  // probe additionally cross-checks the tree verdict against legacy
  // string equality and aborts on divergence — so a green run certifies
  // agreement on thousands of collision probes. Results must be
  // bit-identical to the full-hash run.
  Program P = workload::lockedCounter(2, 1, 0);

  ExploreOptions Full;
  Explorer<World> EFull(Full);
  EFull.build(World::load(P, 0));

  ExploreOptions Collide;
  Collide.DebugHashBits = 4;
  Collide.VerifyResidues = true;
  Explorer<World> ECol(Collide);
  ECol.build(World::load(P, 0));

  EXPECT_EQ(ECol.numStates(), EFull.numStates());
  EXPECT_EQ(ECol.traces().toString(), EFull.traces().toString());
  EXPECT_GT(ECol.stats().HashCollisions, 0u);
  EXPECT_EQ(EFull.stats().HashCollisions, 0u);
  // The debug keys retained under VerifyResidues are charged to the
  // store accounting.
  EXPECT_GT(ECol.stats().RecBytes, EFull.stats().RecBytes);
}

TEST(BinResidue, TreeStoreInternsSpansInjectively) {
  TreeStore T;
  std::vector<std::vector<uint32_t>> Spans = {
      {},
      {0},
      {1},
      {1, 2},
      {2, 1},
      {1, 2, 3},
      {1, 2, 3, 4, 5, 6, 7},
      {1, 2, 3, 4, 5, 6, 7, 8},
      {0, 0, 0, 0},
      {0, 0, 0},
  };
  std::vector<uint32_t> Ids;
  for (const auto &S : Spans)
    Ids.push_back(T.internSpan(S.data(), S.size()));
  for (std::size_t I = 0; I < Spans.size(); ++I) {
    // Same span, same id; decode roundtrips.
    EXPECT_EQ(T.internSpan(Spans[I].data(), Spans[I].size()), Ids[I]);
    std::vector<uint32_t> Out;
    T.decode(Ids[I], Out);
    EXPECT_EQ(Out, Spans[I]);
    // Distinct spans, distinct ids.
    for (std::size_t J = I + 1; J < Spans.size(); ++J)
      EXPECT_NE(Ids[I], Ids[J]) << I << " vs " << J;
  }
  // Re-interning adds no nodes (hash-consing), and shared subtrees are
  // stored once: the node count is far below the sum of span lengths.
  std::size_t Nodes = T.numNodes();
  for (const auto &S : Spans)
    T.internSpan(S.data(), S.size());
  EXPECT_EQ(T.numNodes(), Nodes);
}

TEST(BinResidue, SharedSubtreesAreStoredOnce) {
  // Two long vectors differing only in the last element share the whole
  // left spine: interning the second adds only the right-edge path, not
  // a second copy of the tree.
  TreeStore T;
  std::vector<uint32_t> A(1024), B;
  for (std::size_t I = 0; I < A.size(); ++I)
    A[I] = static_cast<uint32_t>(I * 7 + 1);
  B = A;
  B.back() ^= 0xdeadbeef;
  uint32_t IdA = T.internSpan(A.data(), A.size());
  std::size_t AfterA = T.numNodes();
  uint32_t IdB = T.internSpan(B.data(), B.size());
  std::size_t AfterB = T.numNodes();
  EXPECT_NE(IdA, IdB);
  // log2(1024) = 10: only the rightmost root-to-leaf path differs.
  EXPECT_LE(AfterB - AfterA, 11u);
  std::vector<uint32_t> OutA, OutB;
  T.decode(IdA, OutA);
  T.decode(IdB, OutB);
  EXPECT_EQ(OutA, A);
  EXPECT_EQ(OutB, B);
}

TEST(BinResidue, StringInternerRoundtrips) {
  StringInterner S;
  uint32_t A = S.intern("alpha");
  uint32_t B = S.intern("beta");
  uint32_t Empty = S.intern("");
  EXPECT_NE(A, B);
  EXPECT_NE(A, Empty);
  EXPECT_EQ(S.intern("alpha"), A);
  EXPECT_EQ(S.intern(std::string("al") + "pha"), A);
  EXPECT_EQ(S.text(A), "alpha");
  EXPECT_EQ(S.text(B), "beta");
  EXPECT_EQ(S.text(Empty), "");
  // Enough strings to force table growth; ids stay dense and stable.
  for (unsigned I = 0; I < 1000; ++I)
    S.intern("str" + std::to_string(I));
  EXPECT_EQ(S.intern("alpha"), A);
  EXPECT_EQ(S.text(B), "beta");
}

TEST(BinResidue, CacheWordsAreEpochScoped) {
  // A cache word minted by one store never hits in another — the epoch
  // guard that lets shared Core/Page objects carry a single cached id
  // across Explorer instances.
  StateStore S1, S2;
  uint64_t W1 = S1.cacheWord(42);
  EXPECT_NE(W1, 0u) << "0 must remain the universal empty sentinel";
  uint32_t Id = 0;
  EXPECT_TRUE(S1.cacheHit(W1, Id));
  EXPECT_EQ(Id, 42u);
  EXPECT_FALSE(S2.cacheHit(W1, Id));
  EXPECT_FALSE(S1.cacheHit(0, Id));
  EXPECT_FALSE(S1.cacheHit(S2.cacheWord(42), Id));
}
