//===- tests/FrontendCorpusTest.cpp - Parsed-source fidelity gate ---------===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
// The hard gate of the text front end: every corpus `.ccc` file has a
// hand-coded generator twin, and the parsed program's exploration
// fingerprint — state count, edge set over canonical ids, complete trace
// set, confined-race count, and the tri-state safety/race verdicts —
// must be bit-identical to the twin's, POR-on and POR-off. A front end
// that compiles a module differently (wrong model, wrong object flag,
// wrong thread order, any semantic drift in the language parsers'
// round-trip) shows up here, not in production.
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "frontend/Workload.h"
#include "support/Hashing.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

using namespace ccc;

namespace {

/// Run-stable fingerprint of one exploration (node keys and witness
/// state keys embed per-Program core identities, so they are excluded —
/// the twin is a *different* Program object in the same process).
struct GraphFp {
  std::size_t States = 0;
  std::size_t Edges = 0;
  uint64_t EdgeHash = 0;
  uint64_t TraceHash = 0;
  std::size_t Races = 0;
  CheckVerdict Safety = CheckVerdict::Inconclusive;
  CheckVerdict Race = CheckVerdict::Inconclusive;

  bool operator==(const GraphFp &O) const = default;
};

GraphFp fingerprint(const Program &P, PorMode Por) {
  ExploreOptions Opts;
  Opts.Por = Por;
  Explorer<World> E(Opts);
  E.build(World::load(P, 0));

  GraphFp Out;
  Out.States = E.numStates();
  Hasher64 EdgeH;
  E.forEachEdge([&](unsigned From, unsigned To, GLabel::Kind K, int64_t Ev) {
    EdgeH.u32(From);
    EdgeH.u32(To);
    EdgeH.u32(static_cast<uint32_t>(K));
    EdgeH.u64(static_cast<uint64_t>(Ev));
    ++Out.Edges;
  });
  Out.EdgeHash = EdgeH.get();
  Out.TraceHash = hashString64(E.traces().toString());
  Out.Races = E.findRacesConfinedTo(P.objectAddrs()).size();
  Out.Safety = E.safetyVerdict();
  Out.Race = E.checkRace().verdict();
  return Out;
}

std::string readCorpusFile(const std::string &Name) {
  const std::string Path = std::string(CASCC_CORPUS_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot read corpus file " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

Program buildCorpusProgram(const std::string &Name) {
  frontend::ParseError PE;
  std::optional<frontend::WorkloadFile> W =
      frontend::parseWorkload(readCorpusFile(Name), PE);
  EXPECT_TRUE(W.has_value()) << Name << ": " << PE.str();
  std::string BuildErr;
  std::optional<Program> P = frontend::buildProgram(*W, BuildErr);
  EXPECT_TRUE(P.has_value()) << Name << ": " << BuildErr;
  return std::move(*P);
}

struct CorpusCase {
  const char *File;
  std::function<Program()> Twin;
};

const std::vector<CorpusCase> &corpus() {
  static const std::vector<CorpusCase> C = {
      {"locked_t2.ccc", [] { return workload::lockedCounter(2, 1, 0); }},
      {"locked_t3.ccc", [] { return workload::lockedCounter(3, 1, 0); }},
      {"racy_t2.ccc", [] { return workload::racyCounter(2); }},
      {"atomic_t2w2.ccc", [] { return workload::atomicCounter(2, 2); }},
      {"clight_locked_t2.ccc",
       [] { return workload::clightLockedCounter(2); }},
      {"sb_tso.ccc",
       [] { return workload::litmus("SB", MemModel::TSO, false); }},
      {"mp_tso.ccc", [] { return workload::mpLitmus(MemModel::TSO); }},
      {"lb_relaxed.ccc",
       [] { return workload::litmus("LB", MemModel::Relaxed, false); }},
      {"pingpong_tso_r2.ccc",
       [] { return workload::fencedPingPong(MemModel::TSO, 2); }},
      {"pingpong_tso_r2_unfenced.ccc",
       [] { return workload::unfencedPingPong(MemModel::TSO, 2); }},
      {"mixed_model.ccc", [] { return workload::mixedModelProgram(false); }},
  };
  return C;
}

TEST(FrontendCorpusTest, CorpusCoversAtLeastEightFamilies) {
  EXPECT_GE(corpus().size(), 8u);
}

TEST(FrontendCorpusTest, FingerprintsMatchGeneratorTwinsPorOff) {
  for (const CorpusCase &C : corpus()) {
    SCOPED_TRACE(C.File);
    const Program Parsed = buildCorpusProgram(C.File);
    const Program Twin = C.Twin();
    EXPECT_EQ(fingerprint(Parsed, PorMode::Off),
              fingerprint(Twin, PorMode::Off));
  }
}

TEST(FrontendCorpusTest, FingerprintsMatchGeneratorTwinsPorOn) {
  for (const CorpusCase &C : corpus()) {
    SCOPED_TRACE(C.File);
    const Program Parsed = buildCorpusProgram(C.File);
    const Program Twin = C.Twin();
    EXPECT_EQ(fingerprint(Parsed, PorMode::On),
              fingerprint(Twin, PorMode::On));
  }
}

// The structural half of fidelity: names, languages, models, object
// flags, and thread roots survive the front end exactly.
TEST(FrontendCorpusTest, MixedModelStructureSurvives) {
  const Program P = buildCorpusProgram("mixed_model.ccc");
  ASSERT_EQ(P.modules().size(), 3u);
  EXPECT_EQ(P.module(0).Name, "obsmod");
  EXPECT_EQ(P.module(1).Name, "sbmod");
  EXPECT_EQ(P.module(2).Name, "lbmod");
  ASSERT_EQ(P.numThreads(), 5u);
  EXPECT_EQ(P.threadEntry(0), "obs");
  EXPECT_EQ(P.threadEntry(4), "l2");
}

TEST(FrontendCorpusTest, ObjectAttributeConfinesLockGlobals) {
  // lockspec is declared `object`; its globals must land in the
  // object-owned region exactly like sync::addGammaLock's.
  const Program Parsed = buildCorpusProgram("locked_t2.ccc");
  const Program Twin = workload::lockedCounter(2, 1, 0);
  EXPECT_EQ(Parsed.objectAddrs().size(), Twin.objectAddrs().size());
  EXPECT_FALSE(Parsed.objectAddrs().empty());
}

} // namespace
