//===- bench/bench_extended.cpp - E6: the extended framework (Fig. 3) ------===//
//
// Regenerates the extended framework pipeline of Fig. 3:
//
//   P     = Clight clients + gamma_lock (CImp), SC
//   P_sc  = compiled x86 clients + gamma_lock, SC       (step 1)
//   P_rmm = same x86 clients + pi_lock, x86-TSO         (steps 2-3)
//
// and checks P_rmm refines' P_sc refines P, with the premises DRF(P) and
// DRF(P_sc), plus a control experiment: a racy source voids the guarantee
// (the compiled program exhibits an outcome the source never shows).
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "compiler/Compiler.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace ccc;

namespace {
/// Exploration options shared by every run in this binary; Por is set
/// from the --no-por escape hatch in main.
ExploreOptions BaseOpts;
} // namespace

namespace {

Program makeP(const compiler::CompileResult &R, unsigned Stage,
              bool PiLock, x86::MemModel Model, unsigned Threads) {
  Program P;
  compiler::addStage(P, R, Stage, "client");
  if (PiLock)
    sync::addPiLock(P, Model);
  else
    sync::addGammaLock(P);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (!Flags.Por)
    BaseOpts.Por = PorMode::Off;
  std::printf("E6 (Fig. 3): the extended framework with the racy TSO lock\n\n");
  bool AllGood = true;

  auto R = compiler::compileClightSource(workload::fig10cClientSource());

  benchtable::Timer TmAll;
  Program P = makeP(R, 0, /*PiLock=*/false, x86::MemModel::SC, 2);
  // Stage 12 is x86 under SC semantics. For P_rmm, the same assembly is
  // reinterpreted under TSO (syntactically the identity transformation,
  // Sec. 7).
  Program Psc = makeP(R, 12, /*PiLock=*/false, x86::MemModel::SC, 2);
  Program Prmm;
  {
    compiler::CompileResult RCopy = R; // same modules, TSO client below
    Prmm = Program();
    x86::addAsmModule(Prmm, "client", RCopy.Asm, x86::MemModel::TSO);
    sync::addPiLock(Prmm, x86::MemModel::TSO);
    Prmm.addThread("inc");
    Prmm.addThread("inc");
    Prmm.link();
  }

  bool DrfP = isDRF(P);
  bool DrfPsc = isDRF(Psc);
  ExploreStats SP, SPsc, SPrmm;
  TraceSet TP = preemptiveTraces(P, BaseOpts, &SP);
  TraceSet TPsc = preemptiveTraces(Psc, BaseOpts, &SPsc);
  TraceSet TPrmm = preemptiveTraces(Prmm, BaseOpts, &SPrmm);
  RefineResult Step1 = refinesTraces(TPsc, TP);
  RefineResult Step3 = refinesTraces(TPrmm, TPsc, /*TermInsensitive=*/true);
  RefineResult End2End = refinesTraces(TPrmm, TP, /*TermInsensitive=*/true);
  AllGood = AllGood && DrfP && DrfPsc && Step1.Holds && Step3.Holds &&
            End2End.Holds;

  benchtable::Table T({"check (Fig. 3)", "holds", "detail"});
  T.addRow({"DRF(P)", benchtable::yesNo(DrfP), "source clients race-free"});
  T.addRow({"step 1: P_sc refines P", benchtable::yesNo(Step1.Holds),
            std::to_string(TPsc.size()) + " vs " +
                std::to_string(TP.size()) + " traces"});
  T.addRow({"step 2: DRF(P_sc)", benchtable::yesNo(DrfPsc),
            "compiled clients stay race-free"});
  T.addRow({"step 3: P_rmm refines' P_sc", benchtable::yesNo(Step3.Holds),
            "pi_lock under TSO vs gamma_lock under SC"});
  T.addRow({"end-to-end: P_rmm refines' P", benchtable::yesNo(End2End.Holds),
            std::to_string(TPrmm.size()) + " impl traces"});
  T.print();

  std::printf("\ncontrol: a racy source voids the DRF-guarantee premise\n\n");
  {
    auto RBad = compiler::compileClightSource(R"(
      int x = 0;
      void t1() { int a; x = 1; a = x; print(a); }
      void t2() { x = 2; }
    )");
    Program SrcBad;
    compiler::addStage(SrcBad, RBad, 0, "client");
    SrcBad.addThread("t1");
    SrcBad.addThread("t2");
    SrcBad.link();
    bool BadDrf = isDRF(SrcBad);
    AllGood = AllGood && !BadDrf;
    benchtable::Table T2({"program", "DRF", "consequence"});
    T2.addRow({"racy two-writer client", benchtable::yesNo(BadDrf),
               "Theorem 15's premise 2 fails; no guarantee is claimed"});
    T2.print();
  }

  benchtable::JsonLog Log;
  Log.add("fig3_pipeline",
          "{\"drf_p\":" + std::string(DrfP ? "true" : "false") +
              ",\"drf_psc\":" + (DrfPsc ? "true" : "false") +
              ",\"step1_holds\":" + (Step1.Holds ? "true" : "false") +
              ",\"step3_holds\":" + (Step3.Holds ? "true" : "false") +
              ",\"end_to_end_holds\":" + (End2End.Holds ? "true" : "false") +
              ",\"total_ms\":" + std::to_string(TmAll.ms()) +
              ",\"p\":" + SP.toJson() + ",\"p_sc\":" + SPsc.toJson() +
              ",\"p_rmm\":" + SPrmm.toJson() + "}");
  if (!Log.write("BENCH_extended.json"))
    std::printf("\nwarning: could not write BENCH_extended.json\n");
  else
    std::printf("\nmachine-readable stats written to BENCH_extended.json\n");

  std::printf("\ntotal: %s (%.2f ms)\n", AllGood ? "PASS" : "FAIL",
              TmAll.ms());
  return AllGood ? 0 : 1;
}
