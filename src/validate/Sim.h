//===- validate/Sim.h - The footprint-preserving simulation -----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module-local footprint-preserving downward simulation of Defs. 2-3
/// as an executable checker: a memoized product-state-space search that
/// discharges, per source step,
///  - tau steps: the target answers with tau* (or stutters, bounded by a
///    well-foundedness budget standing in for the index i), accumulated
///    footprints stay in scope, and FPmatch(mu, Delta, delta) holds;
///  - non-silent steps: the target emits the same message after tau*,
///    LG holds (scope, closedness, FPmatch, Inv), and the relation is
///    re-established with cleared footprints under sampled Rely
///    environment steps (and sampled return values for external calls).
///
/// Correct(SeqComp) (Def. 10) for a pass is then: the simulation holds
/// between the pass's input and output module for every entry.
///
/// Deviations from the paper, documented in DESIGN.md: the address map
/// phi/mu.f is the identity (our linker lays out source and target
/// identically), and non-silent steps may carry argument-evaluation
/// footprints (our languages fuse argument reads with the emitting step).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_VALIDATE_SIM_H
#define CASCC_VALIDATE_SIM_H

#include "core/Program.h"

#include <string>
#include <vector>

namespace ccc {
namespace validate {

struct SimOptions {
  /// Max target tau steps answering one source step.
  unsigned MaxTargetSteps = 512;
  /// Max consecutive source steps the target may stutter (the index i).
  unsigned MaxStutter = 8;
  /// Max product states explored.
  unsigned MaxStates = 2000000;
  /// Environment interference samples at each switch point.
  unsigned RelySamples = 2;
  /// Return values fed to both sides after an external call.
  std::vector<Value> RetSamples = {Value::makeInt(0), Value::makeInt(1),
                                   Value::makeInt(42)};
};

struct SimReport {
  bool Holds = false;
  std::string FailReason;
  unsigned ProductStates = 0;
  /// Obligations discharged (source steps matched).
  unsigned Obligations = 0;
  /// Warnings: vacuous branches (source aborted / HG premise failed).
  unsigned VacuousBranches = 0;
};

/// Checks (sl, ge, gamma) 4_phi (tl, ge', pi) for one entry point.
/// \p Src and \p Tgt are linked single-client programs whose module
/// \p SrcMod / \p TgtMod hold the source and target code; their global
/// layouts must agree (phi = identity).
SimReport simCheck(const Program &Src, unsigned SrcMod, const Program &Tgt,
                   unsigned TgtMod, const std::string &Entry,
                   const std::vector<Value> &Args, SimOptions Opts = {});

} // namespace validate
} // namespace ccc

#endif // CASCC_VALIDATE_SIM_H
