//===- core/Core.h - Abstract module-local core states ----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract "core" states (paper: kappa in Core, Fig. 4): the internal
/// state of a module's execution, such as a control continuation or a
/// register file. Cores are immutable and shared; every concrete language
/// provides its own subclass. A core must render a canonical key so the
/// exploration engines can memoize global states.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_CORE_H
#define CASCC_CORE_CORE_H

#include "support/Hashing.h"

#include <atomic>
#include <memory>
#include <string>

namespace ccc {

/// Base class of all language-specific core states.
class Core {
public:
  virtual ~Core();

  /// Canonical key uniquely identifying this core state within its module.
  virtual std::string key() const = 0;

  /// 64-bit hash of key(), computed once per core object and cached
  /// (cores are immutable once shared, so the key cannot change under the
  /// cache). Equal cores hash equally; the exploration engine never
  /// merges on hash alone.
  uint64_t keyHash() const {
    uint64_t H = CachedKeyHash.load(std::memory_order_relaxed);
    if (H == 0) {
      H = hashString64(key());
      H += H == 0; // reserve 0 as the "not yet computed" sentinel
      CachedKeyHash.store(H, std::memory_order_relaxed);
    }
    return H;
  }

  /// Human-readable rendering (defaults to the key).
  virtual std::string pretty() const { return key(); }

protected:
  Core() = default;
  /// Languages copy-construct a core and mutate it before sharing, so a
  /// copy must start with an empty hash cache (and the atomic member
  /// deletes the defaults).
  Core(const Core &) : Core() {}
  Core &operator=(const Core &) { return *this; }

private:
  /// Lazily computed keyHash(); 0 = not yet computed. Benignly racy:
  /// concurrent readers compute the same value.
  mutable std::atomic<uint64_t> CachedKeyHash{0};
};

using CoreRef = std::shared_ptr<const Core>;

} // namespace ccc

#endif // CASCC_CORE_CORE_H
