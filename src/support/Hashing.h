//===- support/Hashing.h - Hash combining utilities -------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining helpers used by canonical state keys.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_SUPPORT_HASHING_H
#define CASCC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace ccc {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style).
inline void hashCombine(std::size_t &Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes any standard-hashable value into \p Seed.
template <typename T> void hashCombineValue(std::size_t &Seed, const T &V) {
  hashCombine(Seed, std::hash<T>{}(V));
}

/// A streaming 64-bit FNV-1a hasher used for incremental state hashing.
///
/// The exploration engine keys its interning tables on a 64-bit hash of a
/// world's canonical key and falls back to a full string comparison only
/// when two keys share a hash (see Explorer). Worlds compute their hash
/// incrementally from the same components that make up key(), so the
/// expensive string materialization happens once per probe instead of
/// O(log n) times per map descent.
class Hasher64 {
public:
  Hasher64 &bytes(const void *Data, std::size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (std::size_t I = 0; I < N; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ULL;
    }
    return *this;
  }

  Hasher64 &u64(uint64_t V) { return bytes(&V, sizeof(V)); }
  Hasher64 &u32(uint32_t V) { return bytes(&V, sizeof(V)); }
  Hasher64 &b(bool V) { return u32(V ? 1u : 0u); }

  /// Length-prefixed so "ab"+"c" and "a"+"bc" hash differently.
  Hasher64 &str(const std::string &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  uint64_t get() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ULL; // FNV-1a offset basis
};

/// Hashes a whole string (FNV-1a, same stream as Hasher64::str without the
/// length prefix).
inline uint64_t hashString64(const std::string &S) {
  Hasher64 Hs;
  Hs.bytes(S.data(), S.size());
  return Hs.get();
}

} // namespace ccc

#endif // CASCC_SUPPORT_HASHING_H
