//===- frontend/Workload.cpp - Text front end for workload files ----------===//

#include "frontend/Workload.h"

#include "cimp/CImpLang.h"
#include "cimp/CImpParser.h"
#include "clight/ClightLang.h"
#include "clight/ClightParser.h"
#include "compiler/Compiler.h"
#include "x86/X86Lang.h"
#include "x86/X86Parser.h"

#include <cctype>
#include <cstdlib>

using namespace ccc;
using namespace ccc::frontend;

const char *ccc::frontend::srcLangName(SrcLang L) {
  switch (L) {
  case SrcLang::Clight:
    return "clight";
  case SrcLang::CImp:
    return "cimp";
  case SrcLang::X86:
    return "x86";
  }
  return "?";
}

std::optional<SrcLang> ccc::frontend::parseSrcLang(const std::string &S) {
  if (S == "clight")
    return SrcLang::Clight;
  if (S == "cimp")
    return SrcLang::CImp;
  if (S == "x86")
    return SrcLang::X86;
  return std::nullopt;
}

const char *ccc::frontend::checkKindName(CheckKind K) {
  switch (K) {
  case CheckKind::Explore:
    return "explore";
  case CheckKind::Drf:
    return "drf";
  case CheckKind::Robustness:
    return "robustness";
  case CheckKind::FenceSynth:
    return "fence-synth";
  case CheckKind::Passes:
    return "passes";
  }
  return "?";
}

std::optional<CheckKind> ccc::frontend::parseCheckKind(const std::string &S) {
  if (S == "explore")
    return CheckKind::Explore;
  if (S == "drf")
    return CheckKind::Drf;
  if (S == "robustness")
    return CheckKind::Robustness;
  if (S == "fence-synth")
    return CheckKind::FenceSynth;
  if (S == "passes")
    return CheckKind::Passes;
  return std::nullopt;
}

namespace {

/// A cursor over the description text. Directives are line-oriented;
/// module bodies are captured verbatim by brace balance.
class Cursor {
public:
  explicit Cursor(const std::string &Text) : Text(Text) {}

  unsigned line() const { return Line; }
  bool atEnd() const { return Pos >= Text.size(); }

  /// Skips whitespace and `#`/`//` comments (which run to end of line).
  void skipTrivia() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#' || (C == '/' && Pos + 1 < Text.size() &&
                              Text[Pos + 1] == '/')) {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        return;
      }
    }
  }

  /// Reads one word: a maximal run of non-space, non-brace characters.
  /// Empty at end of input or before a brace.
  std::string word() {
    skipTrivia();
    std::string W;
    while (Pos < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])) &&
           Text[Pos] != '{' && Text[Pos] != '}' && Text[Pos] != '#')
      W += Text[Pos++];
    return W;
  }

  /// True when the next non-trivia character is \p C; consumes it.
  bool eat(char C) {
    skipTrivia();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  /// True when the rest of the current line (before any comment) is
  /// blank. Directives must not carry trailing junk.
  bool restOfLineBlank() {
    std::size_t P = Pos;
    while (P < Text.size() && Text[P] != '\n') {
      char C = Text[P];
      if (C == '#' || (C == '/' && P + 1 < Text.size() && Text[P + 1] == '/'))
        return true;
      if (!std::isspace(static_cast<unsigned char>(C)))
        return false;
      ++P;
    }
    return true;
  }

  /// Captures everything up to the brace matching an already-consumed
  /// `{`, verbatim; consumes the closing brace. Returns false at EOF
  /// (unterminated body).
  bool body(std::string &Out) {
    unsigned Depth = 1;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '{')
        ++Depth;
      else if (C == '}' && --Depth == 0) {
        ++Pos;
        return true;
      } else if (C == '\n')
        ++Line;
      Out += C;
      ++Pos;
    }
    return false;
  }

private:
  const std::string &Text;
  std::size_t Pos = 0;
  unsigned Line = 1;
};

bool fail(ParseError &Err, unsigned Line, std::string Msg) {
  Err.Message = std::move(Msg);
  Err.Line = Line;
  return false;
}

bool parseModuleDecl(Cursor &C, WorkloadFile &W, ParseError &Err) {
  ModuleSpec M;
  const unsigned DeclLine = C.line();
  M.Name = C.word();
  if (M.Name.empty())
    return fail(Err, C.line(), "expected module name after 'module'");
  for (const ModuleSpec &Prev : W.Modules)
    if (Prev.Name == M.Name)
      return fail(Err, DeclLine, "duplicate module name '" + M.Name + "'");

  const std::string LangWord = C.word();
  std::optional<SrcLang> L = parseSrcLang(LangWord);
  if (!L)
    return fail(Err, C.line(),
                "unknown module language '" + LangWord +
                    "' (expected clight|cimp|x86)");
  M.Lang = *L;

  // Attributes until the opening brace.
  for (;;) {
    if (C.eat('{'))
      break;
    const std::string Attr = C.word();
    if (Attr.empty())
      return fail(Err, C.line(),
                  "expected attribute or '{' in module '" + M.Name + "'");
    if (Attr == "model") {
      const std::string Val = C.word();
      std::optional<MemModel> MM = parseMemModel(Val);
      if (!MM)
        return fail(Err, C.line(),
                    "unknown memory model '" + Val +
                        "' (expected sc|tso|relaxed)");
      if (M.Model)
        return fail(Err, C.line(),
                    "duplicate 'model' attribute in module '" + M.Name + "'");
      M.Model = MM;
    } else if (Attr == "object") {
      if (M.Object)
        return fail(Err, C.line(),
                    "duplicate 'object' attribute in module '" + M.Name +
                        "'");
      M.Object = true;
    } else if (Attr == "compile") {
      if (M.Compile)
        return fail(Err, C.line(),
                    "duplicate 'compile' attribute in module '" + M.Name +
                        "'");
      M.Compile = true;
    } else {
      return fail(Err, C.line(),
                  "unknown module attribute '" + Attr +
                      "' (expected model|object|compile)");
    }
  }

  if (M.Compile && M.Lang != SrcLang::Clight)
    return fail(Err, DeclLine,
                "'compile' requires a clight module ('" + M.Name + "' is " +
                    srcLangName(M.Lang) + ")");
  if (M.Model && M.Lang != SrcLang::X86 && !M.Compile)
    return fail(Err, DeclLine,
                "'model' applies to x86 or compiled clight modules only "
                "('" +
                    M.Name + "' is interpreted " + srcLangName(M.Lang) + ")");
  if (M.Object && M.Lang == SrcLang::Clight)
    return fail(Err, DeclLine,
                "'object' applies to cimp or x86 modules only ('" + M.Name +
                    "' is clight)");

  if (!C.body(M.Source))
    return fail(Err, DeclLine,
                "unterminated body of module '" + M.Name +
                    "' (missing '}')");
  W.Modules.push_back(std::move(M));
  return true;
}

bool parseThreadDecl(Cursor &C, WorkloadFile &W, ParseError &Err) {
  ThreadSpec T;
  T.Entry = C.word();
  if (T.Entry.empty())
    return fail(Err, C.line(), "expected entry name after 'thread'");
  while (!C.restOfLineBlank()) {
    const unsigned Line = C.line();
    const std::string Arg = C.word();
    char *End = nullptr;
    long V = std::strtol(Arg.c_str(), &End, 10);
    if (Arg.empty() || End == Arg.c_str() || *End != '\0')
      return fail(Err, Line,
                  "bad thread argument '" + Arg + "' (expected an integer)");
    T.Args.push_back(static_cast<int32_t>(V));
  }
  W.Threads.push_back(std::move(T));
  return true;
}

} // namespace

std::optional<WorkloadFile>
ccc::frontend::parseWorkload(const std::string &Text, ParseError &Err) {
  WorkloadFile W;
  Cursor C(Text);
  bool SawName = false;
  for (;;) {
    C.skipTrivia();
    if (C.atEnd())
      break;
    const unsigned Line = C.line();
    const std::string Kw = C.word();
    if (Kw == "workload") {
      if (SawName) {
        fail(Err, Line, "duplicate 'workload' directive");
        return std::nullopt;
      }
      // The name must sit on the same line as the directive — otherwise
      // "workload\nmodule ..." would swallow the next keyword as a name.
      if (C.restOfLineBlank() || (W.Name = C.word()).empty()) {
        fail(Err, Line, "expected workload name after 'workload'");
        return std::nullopt;
      }
      SawName = true;
    } else if (Kw == "module") {
      if (!parseModuleDecl(C, W, Err))
        return std::nullopt;
    } else if (Kw == "thread") {
      if (!parseThreadDecl(C, W, Err))
        return std::nullopt;
    } else if (Kw == "check") {
      const std::string Name = C.word();
      std::optional<CheckKind> K = parseCheckKind(Name);
      if (!K) {
        fail(Err, Line,
             "unknown check '" + Name +
                 "' (expected explore|drf|robustness|fence-synth|passes)");
        return std::nullopt;
      }
      W.Checks.push_back(*K);
    } else {
      fail(Err, Line,
           Kw.empty() ? "unexpected character"
                      : "unknown directive '" + Kw +
                            "' (expected workload|module|thread|check)");
      return std::nullopt;
    }
  }
  if (W.Modules.empty()) {
    fail(Err, C.line(), "workload declares no modules");
    return std::nullopt;
  }
  if (W.Threads.empty()) {
    fail(Err, C.line(), "workload declares no threads");
    return std::nullopt;
  }
  return W;
}

std::string ccc::frontend::printWorkload(const WorkloadFile &W) {
  std::string Out;
  if (!W.Name.empty())
    Out += "workload " + W.Name + "\n\n";
  for (const ModuleSpec &M : W.Modules) {
    Out += "module " + M.Name + " " + srcLangName(M.Lang);
    if (M.Model)
      Out += std::string(" model ") + memModelName(*M.Model);
    if (M.Object)
      Out += " object";
    if (M.Compile)
      Out += " compile";
    Out += " {" + M.Source + "}\n\n";
  }
  for (const ThreadSpec &T : W.Threads) {
    Out += "thread " + T.Entry;
    for (int32_t A : T.Args)
      Out += " " + std::to_string(A);
    Out += "\n";
  }
  if (!W.Threads.empty() && !W.Checks.empty())
    Out += "\n";
  for (CheckKind K : W.Checks)
    Out += std::string("check ") + checkKindName(K) + "\n";
  return Out;
}

std::optional<Program> ccc::frontend::buildProgram(const WorkloadFile &W,
                                                   std::string &Err) {
  Program P;
  for (const ModuleSpec &M : W.Modules) {
    std::string LangErr;
    switch (M.Lang) {
    case SrcLang::Clight: {
      std::shared_ptr<clight::Module> Mod =
          clight::parseModule(M.Source, LangErr);
      if (!Mod) {
        Err = "module '" + M.Name + "': " + LangErr;
        return std::nullopt;
      }
      if (M.Compile) {
        compiler::CompileResult R = compiler::compileClight(Mod);
        if (!R.VerifyErrors.empty()) {
          Err = "module '" + M.Name +
                "': compile-pipeline verifier: " + R.VerifyErrors.front();
          return std::nullopt;
        }
        x86::addAsmModule(P, M.Name, R.Asm,
                          M.Model.value_or(MemModel::TSO));
      } else {
        clight::addClightModule(P, M.Name, Mod);
      }
      break;
    }
    case SrcLang::CImp: {
      // No parsed-module registration overload exists for CImp; validate
      // first so a bad body surfaces here as an error, then register by
      // source (the helper re-parses the now known-good text).
      if (!cimp::parseModule(M.Source, LangErr)) {
        Err = "module '" + M.Name + "': " + LangErr;
        return std::nullopt;
      }
      cimp::addCImpModule(P, M.Name, M.Source, M.Object);
      break;
    }
    case SrcLang::X86: {
      std::shared_ptr<x86::Module> Mod = x86::parseAsm(M.Source, LangErr);
      if (!Mod) {
        Err = "module '" + M.Name + "': " + LangErr;
        return std::nullopt;
      }
      x86::addAsmModule(P, M.Name, Mod, M.Model.value_or(MemModel::TSO),
                        M.Object);
      break;
    }
    }
  }
  for (const ThreadSpec &T : W.Threads) {
    std::vector<Value> Args;
    for (int32_t A : T.Args)
      Args.push_back(Value::makeInt(A));
    P.addThread(T.Entry, std::move(Args));
  }
  P.link();
  for (const ThreadSpec &T : W.Threads) {
    std::vector<Value> Args;
    for (int32_t A : T.Args)
      Args.push_back(Value::makeInt(A));
    if (!P.resolveEntry(T.Entry, Args)) {
      Err = "thread entry '" + T.Entry + "' is not defined by any module";
      return std::nullopt;
    }
  }
  return P;
}
