file(REMOVE_RECURSE
  "libcascc.a"
)
