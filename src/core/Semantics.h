//===- core/Semantics.h - Whole-program semantics façade --------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry points tying Programs to the exploration engine:
/// preemptive and non-preemptive trace sets, DRF / NPDRF checks (Sec. 5),
/// and Safe(P).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_SEMANTICS_H
#define CASCC_CORE_SEMANTICS_H

#include "core/Explorer.h"
#include "core/NPWorld.h"
#include "core/Program.h"
#include "core/World.h"

#include <optional>

namespace ccc {

// ExploreStats lives in core/Explorer.h alongside the engine.

/// Etr of the preemptive semantics (P = let Pi in f1 || ... || fn).
TraceSet preemptiveTraces(const Program &P, ExploreOptions Opts = {},
                          ExploreStats *Stats = nullptr);

/// Etr of the non-preemptive semantics (P = let Pi in f1 | ... | fn).
TraceSet nonPreemptiveTraces(const Program &P, ExploreOptions Opts = {},
                             ExploreStats *Stats = nullptr);

/// DRF(P) (Sec. 5): no reachable preemptive state predicts conflicting
/// footprints of two threads. Returns the witness when racy.
std::optional<RaceWitness> findDataRace(const Program &P,
                                        ExploreOptions Opts = {});

/// Tri-state DRF(P): Certified / Refuted (with witness) / Inconclusive
/// when the exploration hit MaxStates without finding a race.
RaceCheck checkDRF(const Program &P, ExploreOptions Opts = {});

/// True only when DRF(P) is *certified*: a truncated exploration that
/// found no race is inconclusive and reports false.
bool isDRF(const Program &P, ExploreOptions Opts = {});

/// NPDRF(P): the non-preemptive analogue.
std::optional<RaceWitness> findNPDataRace(const Program &P,
                                          ExploreOptions Opts = {});
RaceCheck checkNPDRF(const Program &P, ExploreOptions Opts = {});
bool isNPDRF(const Program &P, ExploreOptions Opts = {});

/// Tri-state Safe(P): Certified / Refuted (with \p Reason filled) /
/// Inconclusive when the exploration was truncated.
CheckVerdict checkSafe(const Program &P, ExploreOptions Opts = {},
                       std::string *Reason = nullptr);

/// True only when Safe(P) is *certified*: no reachable preemptive state
/// is aborted AND the exploration was exhaustive.
bool isSafe(const Program &P, ExploreOptions Opts = {},
            std::string *Reason = nullptr);

} // namespace ccc

#endif // CASCC_CORE_SEMANTICS_H
