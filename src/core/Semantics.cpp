//===- core/Semantics.cpp - Whole-program semantics façade ----------------===//

#include "core/Semantics.h"

using namespace ccc;

TraceSet ccc::preemptiveTraces(const Program &P, ExploreOptions Opts,
                               ExploreStats *Stats) {
  Explorer<World> E(Opts);
  E.build(World::load(P));
  if (Stats) {
    Stats->States = E.numStates();
    Stats->Truncated = E.truncated();
  }
  return E.traces();
}

TraceSet ccc::nonPreemptiveTraces(const Program &P, ExploreOptions Opts,
                                  ExploreStats *Stats) {
  Explorer<NPWorld> E(Opts);
  E.build(NPWorld::loadAll(P));
  if (Stats) {
    Stats->States = E.numStates();
    Stats->Truncated = E.truncated();
  }
  return E.traces();
}

std::optional<RaceWitness> ccc::findDataRace(const Program &P,
                                             ExploreOptions Opts) {
  Explorer<World> E(Opts);
  E.build(World::load(P));
  return E.findRace();
}

bool ccc::isDRF(const Program &P, ExploreOptions Opts) {
  return !findDataRace(P, Opts).has_value();
}

std::optional<RaceWitness> ccc::findNPDataRace(const Program &P,
                                               ExploreOptions Opts) {
  Explorer<NPWorld> E(Opts);
  E.build(NPWorld::loadAll(P));
  return E.findRace();
}

bool ccc::isNPDRF(const Program &P, ExploreOptions Opts) {
  return !findNPDataRace(P, Opts).has_value();
}

bool ccc::isSafe(const Program &P, ExploreOptions Opts, std::string *Reason) {
  Explorer<World> E(Opts);
  E.build(World::load(P));
  auto R = E.abortReason();
  if (R && Reason)
    *Reason = *R;
  return !R.has_value();
}
