//===- core/Explorer.h - Exhaustive state-space exploration -----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exhaustive exploration engine that stands in for the paper's
/// whole-program proofs: it builds the reachable global-state graph of a
/// World (preemptive) or NPWorld (non-preemptive), computes the complete
/// event-trace set Etr(P, B) via epsilon-closure subset construction
/// (including silent divergence), and runs the Race rule of Fig. 9 over
/// every reachable state.
///
/// The engine is hash-interned and layer-parallel:
///
///  - States are interned by a 64-bit maintained hash (World::hashKey,
///    assembled from the Mem's incrementally-maintained hash and cached
///    per-thread hashes) into a sharded unordered map; behind the hash
///    lives a compact canonical record — the COW memory snapshot plus
///    the serialized non-memory residue — compared exactly whenever two
///    states share a hash, so a collision can never merge distinct
///    states.
///  - The BFS frontier is expanded one layer at a time by a small worker
///    pool. Workers intern successors into the shards under per-shard
///    locks and receive provisional node ids; at the layer barrier the
///    new ids are canonicalized to the (parent order, successor index)
///    discovery order, which is exactly the id order of a serial FIFO
///    exploration. Node ids, edges, traces and race verdicts are
///    therefore bit-identical for every Threads value, and Threads = 1
///    runs the very same code inline.
///  - findRace / findRacesConfinedTo / the per-closure work of traces()
///    fan out over the same pool, with results merged in deterministic
///    node (resp. queue) order.
///
/// A truncated exploration (MaxStates hit) can never masquerade as a
/// certificate: safetyVerdict() and checkRace() return Inconclusive
/// instead of "no abort / no race".
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_EXPLORER_H
#define CASCC_CORE_EXPLORER_H

#include "core/BinResidue.h"
#include "core/PorOracle.h"
#include "core/StatePool.h"
#include "core/Trace.h"
#include "core/WorldCommon.h"
#include "mem/Mem.h"
#include "support/Hashing.h"
#include "support/Parallel.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ccc {

/// Exploration limits and engine configuration.
struct ExploreOptions {
  /// Maximum number of distinct global states to expand.
  unsigned MaxStates = 2000000;
  /// Wall-clock budget for build(), in milliseconds (0 = unlimited).
  /// Checked at layer boundaries; a tripped budget truncates the
  /// exploration exactly like MaxStates — verdicts become Inconclusive,
  /// never certificates — with ExploreStats::TruncatedBy = "time".
  double MaxBuildMs = 0.0;
  /// Intern-store byte budget (0 = unlimited): the same quantity
  /// ExploreStats::StateBytes reports (shard tables + records + tree/
  /// string arenas at capacity). Checked at layer boundaries; tripping
  /// it truncates with TruncatedBy = "memory".
  std::size_t MaxStateBytes = 0;
  /// Maximum number of observable events per trace.
  unsigned MaxEvents = 64;
  /// Worker-pool width. 1 (the default) explores serially; any value
  /// produces bit-identical results.
  unsigned Threads = 1;
  /// Test hook: keep only the low N bits of every state hash, forcing
  /// hash collisions so the exact-verify fallback (binary residue root +
  /// memory subtree comparison) is exercised. 64 (the default) keeps the
  /// full hash.
  unsigned DebugHashBits = 64;
  /// Debug flag: additionally retain the legacy key() string per intern
  /// record and cross-check every probe's tree-compression verdict
  /// against string equality, aborting on divergence. Off by default —
  /// this reintroduces exactly the per-state string cost the binary
  /// store removes.
  bool VerifyResidues = false;
  /// Partial-order reduction: ample-set selection plus sleep sets driven
  /// by the static independence certifier (analysis/Independence.h). On
  /// by default; only world types opting in via PorTraits are reduced,
  /// and the reduced graph yields the same trace set, safety verdict,
  /// race verdict and divergence flags as a PorMode::Off exploration.
  PorMode Por = PorMode::On;
};

/// Partial-order-reduction counters of one exploration. All zero when POR
/// is off or the world type does not support it.
struct PorStats {
  /// True when an independence oracle was built and consulted.
  bool Enabled = false;
  /// States expanded with an ample set: only the scheduled thread's step
  /// successors, every switch edge provably deferrable.
  std::size_t AmpleHits = 0;
  /// States expanded with the full successor set.
  std::size_t FullExpansions = 0;
  /// Ample candidates demoted to a full expansion by the cycle proviso
  /// (a step successor closed a cycle back into the explored graph).
  std::size_t ProvisoFallbacks = 0;
  /// Switch edges suppressed because the target thread was asleep.
  std::size_t SleepPrunes = 0;
  /// Suppressed switch edges restored when a sleep mask later weakened.
  std::size_t SleepReadds = 0;
  /// Successor edges never enumerated (ample skips plus net sleep prunes):
  /// each avoided edge is a state expansion the engine may never pay for.
  std::size_t EdgesAvoided = 0;
};

/// Observability counters of one exploration.
struct ExploreStats {
  /// Distinct states interned (== numStates()).
  std::size_t States = 0;
  /// States actually expanded (< States when truncated).
  std::size_t Expanded = 0;
  /// Intern probes (one per successor enumerated).
  std::size_t Probes = 0;
  /// Probes that resolved to an already-interned state.
  std::size_t DedupHits = 0;
  /// Probes that met a same-hash different-state entry (exact-verified).
  std::size_t HashCollisions = 0;
  /// Widest BFS layer expanded.
  std::size_t PeakFrontier = 0;
  /// Bytes retained by the intern store, accounted exactly:
  /// TableBytes + RecBytes + ArenaCapacityBytes. This is the marginal
  /// cost of remembering one more distinct state (bytes_per_state), and
  /// is deterministic for a given workload across Threads values
  /// (hash-consing makes the tree-node set order-independent).
  std::size_t StateBytes = 0;
  /// Open-addressed intern shard tables (slot arrays, as reserved).
  std::size_t TableBytes = 0;
  /// Intern record slabs (24-byte records, slab capacity).
  std::size_t RecBytes = 0;
  /// Tree-node and string arenas of the state store, as reserved —
  /// slab capacity plus the store's internal index tables.
  std::size_t ArenaCapacityBytes = 0;
  /// Bytes of the same arenas actually occupied by live nodes/strings
  /// (ArenaLiveBytes <= ArenaCapacityBytes always; the difference is
  /// slab slack the process still pays for).
  std::size_t ArenaLiveBytes = 0;
  /// Hash-consed tree nodes interned by this exploration's store.
  std::size_t TreeNodes = 0;
  /// Process-wide COW page pool, as reserved (slabs are recycled, never
  /// returned, so this is a high-water mark across explorations).
  std::size_t PagePoolCapacityBytes = 0;
  /// Pages of the pool currently live (referenced by some Mem).
  std::size_t PagePoolLiveBytes = 0;
  /// Bytes retained by the state graph itself (node worlds): per-node
  /// shallow memory snapshots plus each distinct COW page counted once.
  /// Separate from StateBytes — the graph keeps full worlds for trace /
  /// race reconstruction, the store only dedups.
  std::size_t GraphBytes = 0;
  /// Distinct page objects across all node worlds.
  std::size_t UniqueMemPages = 0;
  /// Sum of per-node page references (this / UniqueMemPages = sharing).
  std::size_t TotalPageRefs = 0;
  /// Process peak resident set size, in KiB (0 where unsupported).
  long PeakRssKb = 0;
  /// Partial-order-reduction counters (see PorStats).
  PorStats Por;
  bool Truncated = false;
  /// Which budget truncated the exploration: "" (not truncated),
  /// "states" (MaxStates), "time" (MaxBuildMs) or "memory"
  /// (MaxStateBytes). The first budget that tripped wins.
  const char *TruncatedBy = "";
  double BuildMs = 0.0;
  double DivergenceMs = 0.0;
  double TraceMs = 0.0;
  double RaceMs = 0.0;

  double dedupHitRate() const {
    return Probes ? static_cast<double>(DedupHits) /
                        static_cast<double>(Probes)
                  : 0.0;
  }

  double statesPerSec() const {
    return BuildMs > 0.0 ? static_cast<double>(Expanded) * 1000.0 / BuildMs
                         : 0.0;
  }

  /// Shared intern-table bytes per state (COW pages deduplicated).
  double bytesPerState() const {
    return States ? static_cast<double>(StateBytes) /
                        static_cast<double>(States)
                  : 0.0;
  }

  /// Machine-readable rendering for BENCH_*.json trajectories.
  std::string toJson() const {
    std::string J = "{";
    auto Field = [&J](const char *Name, const std::string &V, bool Last = false) {
      J += std::string("\"") + Name + "\":" + V + (Last ? "" : ",");
    };
    Field("states", std::to_string(States));
    Field("expanded", std::to_string(Expanded));
    Field("probes", std::to_string(Probes));
    Field("dedup_hits", std::to_string(DedupHits));
    Field("hash_collisions", std::to_string(HashCollisions));
    Field("peak_frontier", std::to_string(PeakFrontier));
    Field("state_bytes", std::to_string(StateBytes));
    Field("bytes_per_state", std::to_string(bytesPerState()));
    Field("table_bytes", std::to_string(TableBytes));
    Field("rec_bytes", std::to_string(RecBytes));
    Field("arena_capacity_bytes", std::to_string(ArenaCapacityBytes));
    Field("arena_live_bytes", std::to_string(ArenaLiveBytes));
    Field("tree_nodes", std::to_string(TreeNodes));
    Field("page_pool_capacity_bytes", std::to_string(PagePoolCapacityBytes));
    Field("page_pool_live_bytes", std::to_string(PagePoolLiveBytes));
    Field("graph_bytes", std::to_string(GraphBytes));
    Field("unique_mem_pages", std::to_string(UniqueMemPages));
    Field("total_page_refs", std::to_string(TotalPageRefs));
    Field("peak_rss_kb", std::to_string(PeakRssKb));
    Field("por_enabled", Por.Enabled ? "true" : "false");
    Field("por_ample_hits", std::to_string(Por.AmpleHits));
    Field("por_full_expansions", std::to_string(Por.FullExpansions));
    Field("por_proviso_fallbacks", std::to_string(Por.ProvisoFallbacks));
    Field("por_sleep_prunes", std::to_string(Por.SleepPrunes));
    Field("por_sleep_readds", std::to_string(Por.SleepReadds));
    Field("por_edges_avoided", std::to_string(Por.EdgesAvoided));
    Field("truncated", Truncated ? "true" : "false");
    Field("truncated_by", std::string("\"") + TruncatedBy + "\"");
    Field("build_ms", std::to_string(BuildMs));
    Field("divergence_ms", std::to_string(DivergenceMs));
    Field("trace_ms", std::to_string(TraceMs));
    Field("race_ms", std::to_string(RaceMs));
    Field("states_per_sec", std::to_string(statesPerSec()), /*Last=*/true);
    J += "}";
    return J;
  }
};

/// Tri-state outcome of a bounded check: a capped exploration that found
/// nothing is Inconclusive, never Certified.
enum class CheckVerdict { Certified, Refuted, Inconclusive };

inline const char *checkVerdictName(CheckVerdict V) {
  switch (V) {
  case CheckVerdict::Certified:
    return "certified";
  case CheckVerdict::Refuted:
    return "refuted";
  case CheckVerdict::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

/// A data race witness (the Race rule of Fig. 9).
struct RaceWitness {
  std::string StateKey;
  ThreadId T1 = 0;
  ThreadId T2 = 0;
  InstrFootprint FP1;
  InstrFootprint FP2;
  /// True when both footprints lie entirely inside a designated region
  /// (set by confinement analysis; see raceConfinedTo).
  bool Confined = false;
};

/// Result of a race check with its conclusiveness.
struct RaceCheck {
  std::optional<RaceWitness> Witness;
  /// False when the exploration was truncated and no witness was found,
  /// i.e. "no race" is only a bound, not a certificate.
  bool Conclusive = true;

  CheckVerdict verdict() const {
    if (Witness)
      return CheckVerdict::Refuted;
    return Conclusive ? CheckVerdict::Certified : CheckVerdict::Inconclusive;
  }
};

/// Exhaustive explorer over a world type (World or NPWorld).
template <typename WorldT> class Explorer {
public:
  explicit Explorer(ExploreOptions Opts = {}) : Opts(Opts) {}

  Explorer(const Explorer &) = delete;
  Explorer &operator=(const Explorer &) = delete;

  /// Builds the reachable state graph from the given initial worlds.
  void build(const std::vector<WorldT> &Inits) {
    auto BuildStart = std::chrono::steady_clock::now();
    if constexpr (PorTraits<WorldT>::Enabled) {
      if (Opts.Por == PorMode::On && !Inits.empty()) {
        Oracle = PorTraits<WorldT>::make(Inits.front());
        Stats.Por.Enabled = Oracle != nullptr;
      }
    }
    WorkerState InitWs(Store);
    std::deque<unsigned> Work;
    for (const WorldT &W : Inits) {
      unsigned Idx = intern(W, InitWs);
      Work.push_back(Idx);
      InitIdx.push_back(Idx);
    }
    // Initial worlds interned serially: provisional ids are already
    // canonical, append them in id order.
    std::sort(InitWs.News.begin(), InitWs.News.end(),
              [](const Pending &A, const Pending &B) {
                return A.ProvId < B.ProvId;
              });
    for (Pending &P : InitWs.News)
      Nodes.push_back(Node{std::move(P.W), {}, false, false, false});
    // Roots have no incoming edges: their sleep sets are empty, not the
    // "no constraint yet" sentinel new nodes start from.
    for (unsigned I : InitIdx)
      Nodes[I].Sleep = 0;
    mergeCounters(InitWs);

    std::vector<unsigned> Batch;
    const char *BudgetHit = nullptr;
    while (!Work.empty()) {
      // Time/memory budgets are checked once per layer; a tripped budget
      // behaves exactly like the state cap — the remaining queue becomes
      // frontier nodes and the exploration reports Truncated, so no
      // verdict downstream can masquerade as a certificate.
      if (!BudgetHit && Opts.MaxBuildMs > 0.0 &&
          msSince(BuildStart) >= Opts.MaxBuildMs)
        BudgetHit = "time";
      if (!BudgetHit && Opts.MaxStateBytes > 0 &&
          storeBytes() >= Opts.MaxStateBytes)
        BudgetHit = "memory";
      // Form the layer exactly as the serial FIFO engine forms its pops:
      // drain in order, skip already-expanded nodes, and once the state
      // cap is reached mark the rest as frontier instead of expanding.
      Batch.clear();
      while (!Work.empty()) {
        unsigned Idx = Work.front();
        Work.pop_front();
        if (Nodes[Idx].Expanded)
          continue;
        if (NumExpanded >= Opts.MaxStates || BudgetHit) {
          Truncated = true;
          if (Stats.TruncatedBy[0] == '\0')
            Stats.TruncatedBy = BudgetHit ? BudgetHit : "states";
          Nodes[Idx].Frontier = true;
          continue;
        }
        ++NumExpanded;
        Nodes[Idx].Expanded = true;
        Batch.push_back(Idx);
      }
      Stats.PeakFrontier = std::max(Stats.PeakFrontier, Batch.size());
      if (Batch.empty())
        break;
      expandLayer(Batch, Work);
    }

    Stats.Expanded = NumExpanded;
    Stats.States = Nodes.size();
    Stats.Truncated = Truncated;
    Stats.BuildMs = msSince(BuildStart);
    measureRepresentation();

    auto DivStart = std::chrono::steady_clock::now();
    computeDivergence();
    Stats.DivergenceMs = msSince(DivStart);
  }

  /// Convenience: build from a single initial world.
  void build(const WorldT &Init) { build(std::vector<WorldT>{Init}); }

  std::size_t numStates() const { return Nodes.size(); }
  bool truncated() const { return Truncated; }
  const ExploreStats &stats() const { return Stats; }

  /// The interned world of node \p I (ids are canonical discovery order).
  const WorldT &world(std::size_t I) const { return Nodes[I].W; }

  /// Walks every edge of the state graph in deterministic order: source
  /// nodes ascending, out-edges in successor enumeration order. \p Fn is
  /// called as Fn(From, To, Kind, EventVal). Used by the representation-
  /// swap differential tests to fingerprint the exact graph.
  template <typename Fn> void forEachEdge(Fn &&F) const {
    for (std::size_t I = 0; I < Nodes.size(); ++I)
      for (const Edge &E : Nodes[I].Out)
        F(static_cast<unsigned>(I), E.To, E.K, E.Ev);
  }

  /// True if an aborted state is reachable (the paper's Safe(P) is the
  /// negation of this). NOTE: on a truncated exploration, false only
  /// means "no abort within the explored prefix" — use safetyVerdict()
  /// for a result that cannot masquerade as a certificate.
  bool anyAbort() const {
    for (const Node &N : Nodes)
      if (N.W.aborted())
        return true;
    return false;
  }

  /// Returns the abort reason of some reachable aborted state, if any.
  std::optional<std::string> abortReason() const {
    for (const Node &N : Nodes)
      if (N.W.aborted())
        return N.W.abortReason();
    return std::nullopt;
  }

  /// Tri-state Safe(P): Refuted when an abort is reachable, Inconclusive
  /// when the exploration was truncated without finding one.
  CheckVerdict safetyVerdict() const {
    if (anyAbort())
      return CheckVerdict::Refuted;
    return Truncated ? CheckVerdict::Inconclusive : CheckVerdict::Certified;
  }

  /// Computes the complete trace set via subset construction over silent
  /// edges. The per-closure work (closure scans, successor closures) of
  /// each queue wave runs on the worker pool.
  TraceSet traces() const {
    auto Start = std::chrono::steady_clock::now();
    TraceSet Out;
    if (Nodes.empty())
      return Out;

    using Closure = std::vector<unsigned>;
    auto closureOf = [&](const std::vector<unsigned> &Seed) {
      std::set<unsigned> Seen(Seed.begin(), Seed.end());
      std::deque<unsigned> Work(Seed.begin(), Seed.end());
      while (!Work.empty()) {
        unsigned I = Work.front();
        Work.pop_front();
        for (const Edge &E : Nodes[I].Out) {
          if (E.K == GLabel::Kind::Event)
            continue;
          if (Seen.insert(E.To).second)
            Work.push_back(E.To);
        }
      }
      return Closure(Seen.begin(), Seen.end());
    };

    struct Item {
      Closure C;
      std::vector<int64_t> Prefix;
    };

    // Visited set keyed by the 64-bit hash of (closure, prefix), with the
    // exact pair kept behind the hash for collision verification.
    std::unordered_map<uint64_t,
                       std::vector<std::pair<Closure, std::vector<int64_t>>>>
        Visited;
    auto visit = [&](const Item &It) {
      Hasher64 H;
      H.u64(It.C.size());
      for (unsigned I : It.C)
        H.u32(I);
      for (int64_t E : It.Prefix)
        H.u64(static_cast<uint64_t>(E));
      auto &Cands = Visited[maskHash(H.get())];
      for (const auto &C : Cands)
        if (C.first == It.C && C.second == It.Prefix)
          return false;
      Cands.emplace_back(It.C, It.Prefix);
      return true;
    };

    struct ItemOut {
      std::vector<Trace> Emit;
      std::vector<Item> Next;
    };
    auto processItem = [&](const Item &Cur) {
      ItemOut R;
      bool SawDone = false, SawAbort = false, SawDiv = false, SawCut = false;
      std::map<int64_t, std::vector<unsigned>> EventSuccs;
      for (unsigned I : Cur.C) {
        const Node &N = Nodes[I];
        if (N.W.done())
          SawDone = true;
        if (N.W.aborted())
          SawAbort = true;
        if (N.Div)
          SawDiv = true;
        if (N.Frontier)
          SawCut = true;
        for (const Edge &E : N.Out)
          if (E.K == GLabel::Kind::Event)
            EventSuccs[E.Ev].push_back(E.To);
      }
      if (SawDone)
        R.Emit.push_back(Trace{Cur.Prefix, TraceEnd::Done});
      if (SawAbort)
        R.Emit.push_back(Trace{Cur.Prefix, TraceEnd::Abort});
      if (SawDiv)
        R.Emit.push_back(Trace{Cur.Prefix, TraceEnd::Div});
      if (SawCut)
        R.Emit.push_back(Trace{Cur.Prefix, TraceEnd::Cut});
      for (auto &KV : EventSuccs) {
        if (Cur.Prefix.size() >= Opts.MaxEvents) {
          R.Emit.push_back(Trace{Cur.Prefix, TraceEnd::Cut});
          break;
        }
        Item Next;
        Next.C = closureOf(KV.second);
        Next.Prefix = Cur.Prefix;
        Next.Prefix.push_back(KV.first);
        R.Next.push_back(std::move(Next));
      }
      return R;
    };

    std::deque<Item> Work;
    {
      Item Init;
      Init.C = closureOf(InitIdx);
      Work.push_back(std::move(Init));
    }
    std::vector<Item> Wave;
    std::vector<ItemOut> Results;
    while (!Work.empty()) {
      // Drain the queue in FIFO order (the serial engine's pop order),
      // deduplicating against the visited set.
      Wave.clear();
      while (!Work.empty()) {
        Item It = std::move(Work.front());
        Work.pop_front();
        if (visit(It))
          Wave.push_back(std::move(It));
      }
      Results.assign(Wave.size(), ItemOut{});
      parallelChunks(Opts.Threads, Wave.size(),
                     [&](std::size_t B, std::size_t E, unsigned) {
                       for (std::size_t I = B; I < E; ++I)
                         Results[I] = processItem(Wave[I]);
                     });
      // Merge in wave order so the queue evolves exactly as serially.
      for (ItemOut &R : Results) {
        for (Trace &T : R.Emit)
          Out.insert(std::move(T));
        for (Item &N : R.Next)
          Work.push_back(std::move(N));
      }
    }
    Stats.TraceMs += msSince(Start);
    return Out;
  }

  /// Runs the Race rule of Fig. 9 over every reachable state; returns the
  /// first witness found (lowest node id, same as a serial scan), or
  /// nullopt when no reachable state predicts a race. See checkRace()
  /// for the truncation-aware variant.
  std::optional<RaceWitness> findRace() const { return checkRace().Witness; }

  /// Race rule with conclusiveness: a truncated exploration that found
  /// no witness reports Conclusive = false (verdict Inconclusive).
  RaceCheck checkRace() const {
    auto Start = std::chrono::steady_clock::now();
    RaceCheck Out;
    const std::size_t N = Nodes.size();
    const unsigned MaxWorkers = std::max(1u, Opts.Threads);
    struct Hit {
      std::size_t Idx = 0;
      RaceWitness W;
    };
    std::vector<std::optional<Hit>> Hits(MaxWorkers);
    std::atomic<std::size_t> Best{N};
    parallelChunks(Opts.Threads, N,
                   [&](std::size_t B, std::size_t E, unsigned Worker) {
                     for (std::size_t I = B; I < E; ++I) {
                       // A hit below this chunk supersedes anything here.
                       if (Best.load(std::memory_order_relaxed) < B)
                         break;
                       std::optional<RaceWitness> W = raceAt(Nodes[I]);
                       if (W) {
                         Hits[Worker] = Hit{I, std::move(*W)};
                         std::size_t Prev =
                             Best.load(std::memory_order_relaxed);
                         while (Prev > I && !Best.compare_exchange_weak(
                                                Prev, I,
                                                std::memory_order_relaxed)) {
                         }
                         break;
                       }
                     }
                   });
    const Hit *BestHit = nullptr;
    for (const auto &H : Hits)
      if (H && (!BestHit || H->Idx < BestHit->Idx))
        BestHit = &*H;
    if (BestHit)
      Out.Witness = BestHit->W;
    Out.Conclusive = Out.Witness.has_value() || !Truncated;
    Stats.RaceMs += msSince(Start);
    return Out;
  }

  /// Finds all races and classifies each as confined iff both conflicting
  /// footprints touch only addresses in \p Region (the object data of
  /// Sec. 7.1; such races are the paper's confined benign races).
  std::vector<RaceWitness> findRacesConfinedTo(const AddrSet &Region) const {
    auto Start = std::chrono::steady_clock::now();
    const unsigned MaxWorkers = std::max(1u, Opts.Threads);
    struct Cand {
      std::size_t NodeIdx;
      RaceWitness W;
      std::string Key;
    };
    std::vector<std::vector<Cand>> PerChunk(MaxWorkers);
    parallelChunks(
        Opts.Threads, Nodes.size(),
        [&](std::size_t B, std::size_t E, unsigned Worker) {
          std::vector<Cand> &Local = PerChunk[Worker];
          for (std::size_t I = B; I < E; ++I) {
            const Node &N = Nodes[I];
            if (!N.W.racePredictable())
              continue;
            unsigned NT = N.W.numThreads();
            std::vector<std::vector<InstrFootprint>> Preds(NT);
            for (ThreadId T = 0; T < NT; ++T)
              Preds[T] = N.W.predictFor(T);
            for (ThreadId T1 = 0; T1 < NT; ++T1) {
              for (ThreadId T2 = T1 + 1; T2 < NT; ++T2) {
                for (const InstrFootprint &F1 : Preds[T1]) {
                  for (const InstrFootprint &F2 : Preds[T2]) {
                    if (!F1.conflictsWith(F2))
                      continue;
                    Cand C;
                    C.NodeIdx = I;
                    C.W.T1 = T1;
                    C.W.T2 = T2;
                    C.W.FP1 = F1;
                    C.W.FP2 = F2;
                    C.W.Confined = F1.FP.asSet().subsetOf(Region) &&
                                   F2.FP.asSet().subsetOf(Region);
                    // Unambiguous dedup key: thread pair, atomic bits and
                    // footprints, '|'-delimited so distinct pairs (e.g.
                    // same footprints with different atomic bits) can
                    // never collide and drop a witness.
                    C.Key = std::to_string(T1) + "/" + std::to_string(T2) +
                            ":" + (F1.InAtomic ? "A" : "-") +
                            F1.FP.toString() + "|" +
                            (F2.InAtomic ? "A" : "-") + F2.FP.toString();
                    Local.push_back(std::move(C));
                  }
                }
              }
            }
          }
        });
    // Merge per-chunk candidates in ascending node order; the dedup set
    // keeps the first occurrence, exactly as a serial scan would.
    std::vector<RaceWitness> Out;
    std::set<std::string> Dedup;
    for (std::vector<Cand> &Chunk : PerChunk) {
      for (Cand &C : Chunk) {
        if (Dedup.insert(C.Key).second) {
          C.W.StateKey = Nodes[C.NodeIdx].W.key();
          Out.push_back(std::move(C.W));
        }
      }
    }
    Stats.RaceMs += msSince(Start);
    return Out;
  }

private:
  struct Edge {
    unsigned To = 0;
    GLabel::Kind K = GLabel::Kind::Tau;
    int64_t Ev = 0;
  };

  struct Node {
    WorldT W;
    std::vector<Edge> Out;
    bool Expanded = false;
    bool Frontier = false;
    bool Div = false;
    /// Sleep mask (PorMode::On): bit t set means thread t's next step need
    /// not be re-explored from here because an equivalent interleaving
    /// already ran it on an earlier sibling branch. Intersected over all
    /// incoming edges at the layer barriers; all-ones until the first
    /// incoming edge seeds it (roots are reset to the empty mask).
    uint64_t Sleep = ~uint64_t(0);
    /// Switch edges suppressed under Sleep at expansion time, kept so a
    /// later weakening of Sleep can restore exactly the missing edges.
    uint64_t Pruned = 0;
    /// Whether this node had any step successor, and whether all of them
    /// were clean (Tau-labeled, no abort, no spawn): the preconditions
    /// for entering the scheduled thread into a sibling's sleep mask.
    bool HasSteps = false;
    bool StepsClean = false;
  };

  /// A state interned during the current layer, waiting for its canonical
  /// id at the barrier.
  struct Pending {
    unsigned ProvId = 0;
    WorldT W;
    uint64_t Hash = 0;
  };

  /// Worker-private interning state, merged at each barrier. Carries the
  /// worker's reusable residue-encoding buffer (word vector + the store
  /// handle), so encoding a state allocates nothing on the steady path.
  struct WorkerState {
    explicit WorkerState(StateStore &S) : Buf(S) {}
    ResidueBuf Buf;
    std::vector<Pending> News;
    std::size_t Probes = 0;
    std::size_t DedupHits = 0;
    std::size_t HashCollisions = 0;
    std::size_t AmpleHits = 0;
    std::size_t FullExpansions = 0;
    std::size_t ProvisoFallbacks = 0;
    std::size_t SleepPrunes = 0;
    std::size_t EdgesAvoided = 0;
  };

  /// A binary canonical state record kept behind the hash: the tree-
  /// interned root of the world's residue encoding plus the root of its
  /// memory encoding. Root equality coincides exactly with the legacy
  /// (residue string, structural Mem) comparison, so a hash collision
  /// can never merge distinct states — and the exact-verify step is two
  /// integer compares against a 24-byte record instead of a string
  /// compare plus a page walk.
  struct InternRec {
    uint64_t H = 0;
    unsigned Id = 0;
    uint32_t RRoot = 0;
    uint32_t MRoot = 0;
  };

  /// One shard of the interning table: an open-addressed power-of-two
  /// slot array over a slab-allocated record vector (slots hold record
  /// index + 1, 0 = empty). The maintained 64-bit state hashes are
  /// already well mixed, so slot = H & Mask with linear probing;
  /// compared to a chained unordered_map this avoids the prime-modulo
  /// division and node allocation on every probe, which profiled as the
  /// single largest cost of exploration. Records live in the shard so
  /// concurrent probes can verify same-hash entries (including ones
  /// interned earlier in the same layer).
  struct Shard {
    std::mutex Mu;
    /// Small slabs (128 records = 3 KiB) keep the capacity-accounted
    /// bytes honest on tiny explorations.
    SlabVector<InternRec, 7> Recs;
    std::vector<uint32_t> Table = std::vector<uint32_t>(256, 0);
    uint32_t Mask = 255;
    /// Parallel legacy key() strings, populated only under
    /// ExploreOptions::VerifyResidues.
    std::vector<std::string> DebugKeys;

    /// Keeps the load factor under 0.7 so probe chains stay short and an
    /// empty slot always terminates the walk. Called with Mu held.
    void growIfNeeded() {
      if ((Recs.size() + 1) * 10 < static_cast<std::size_t>(Mask + 1) * 7)
        return;
      const uint32_t NewMask = (Mask + 1) * 2 - 1;
      std::vector<uint32_t> NewTable(NewMask + 1, 0);
      for (uint32_t R = 0; R < Recs.size(); ++R) {
        uint32_t I = static_cast<uint32_t>(Recs[R].H) & NewMask;
        while (NewTable[I] != 0)
          I = (I + 1) & NewMask;
        NewTable[I] = R + 1;
      }
      Table = std::move(NewTable);
      Mask = NewMask;
    }
  };
  static constexpr unsigned NumShards = 16;

  static double msSince(std::chrono::steady_clock::time_point Start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

  /// The intern store's current retained bytes (the quantity StateBytes
  /// reports), cheap enough to poll at layer boundaries for the
  /// MaxStateBytes budget: 16 shard tables/slab headers plus the store's
  /// pool accounting.
  std::size_t storeBytes() const {
    std::size_t Bytes = 0;
    for (const Shard &S : Shards)
      Bytes += S.Table.capacity() * sizeof(uint32_t) +
               S.Recs.stats().CapacityBytes;
    const StoreStats SS = Store.stats();
    return Bytes + SS.ArenaCapacityBytes + SS.TableBytes;
  }

  /// Fills the representation-cost counters. StateBytes is the exact
  /// retained footprint of the intern store — shard tables, record
  /// slabs, and the tree/string arenas at capacity — so bytes_per_state
  /// reports what remembering one more distinct state costs. The state
  /// graph's own retention (node worlds: shallow snapshots plus each
  /// distinct COW page once) is reported separately as GraphBytes. Runs
  /// single-threaded at the end of build(), after BuildMs is taken, so
  /// it never skews throughput.
  void measureRepresentation() {
    std::size_t TableBytes = 0, RecBytes = 0;
    for (const Shard &S : Shards) {
      TableBytes += S.Table.capacity() * sizeof(uint32_t);
      RecBytes += S.Recs.stats().CapacityBytes;
      for (const std::string &K : S.DebugKeys)
        RecBytes += K.capacity(); // VerifyResidues debug mode only
    }
    const StoreStats SS = Store.stats();
    Stats.TableBytes = TableBytes;
    Stats.RecBytes = RecBytes;
    Stats.ArenaCapacityBytes = SS.ArenaCapacityBytes + SS.TableBytes;
    Stats.ArenaLiveBytes = SS.ArenaLiveBytes;
    Stats.TreeNodes = SS.TreeNodes;
    Stats.StateBytes = TableBytes + RecBytes + Stats.ArenaCapacityBytes;

    std::unordered_set<const void *> UniquePages;
    std::size_t GraphBytes = 0, Refs = 0;
    for (const Node &N : Nodes) {
      GraphBytes += N.W.mem().shallowBytes();
      N.W.mem().forEachPageId([&](const void *P) {
        ++Refs;
        if (UniquePages.insert(P).second)
          GraphBytes += Mem::pageBytes();
      });
    }
    Stats.GraphBytes = GraphBytes;
    Stats.UniqueMemPages = UniquePages.size();
    Stats.TotalPageRefs = Refs;

    const PoolStats PP = Mem::pagePoolStats();
    Stats.PagePoolCapacityBytes = PP.CapacityBytes;
    Stats.PagePoolLiveBytes = PP.LiveBytes;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage RU {};
    if (getrusage(RUSAGE_SELF, &RU) == 0) {
#if defined(__APPLE__)
      Stats.PeakRssKb = RU.ru_maxrss / 1024;
#else
      Stats.PeakRssKb = RU.ru_maxrss;
#endif
    }
#endif
  }

  uint64_t maskHash(uint64_t H) const {
    if (Opts.DebugHashBits >= 64)
      return H;
    if (Opts.DebugHashBits == 0)
      return 0;
    return H & ((uint64_t(1) << Opts.DebugHashBits) - 1);
  }

  /// Interns \p W, returning its (possibly provisional) node id. Safe to
  /// call concurrently; new states are recorded in \p Ws and placed into
  /// Nodes at the next barrier. The state is identified by the tree-
  /// interned roots of its binary residue and memory encodings; the
  /// exact-verify step against a same-hash entry is two integer
  /// compares (root equality <=> legacy residue+Mem equality).
  unsigned intern(const WorldT &W, WorkerState &Ws) {
    ++Ws.Probes;
    const uint64_t H = maskHash(W.hashKey());
    W.residueBytes(Ws.Buf);
    const uint32_t RRoot = Ws.Buf.takeRoot();
    const uint32_t MRoot = W.mem().residueRoot(Ws.Buf);
    std::string DbgKey;
    if (Opts.VerifyResidues)
      DbgKey = W.key();
    Shard &S = Shards[H % NumShards];
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.growIfNeeded();
    bool Collided = false;
    uint32_t I = static_cast<uint32_t>(H) & S.Mask;
    for (; S.Table[I] != 0; I = (I + 1) & S.Mask) {
      const InternRec &Entry = S.Recs[S.Table[I] - 1];
      if (Entry.H != H)
        continue;
      const bool TreeEq = Entry.RRoot == RRoot && Entry.MRoot == MRoot;
      if (Opts.VerifyResidues)
        verifyResidueVerdict(TreeEq,
                             S.DebugKeys[S.Table[I] - 1] == DbgKey);
      if (TreeEq) {
        ++Ws.DedupHits;
        if (Collided)
          ++Ws.HashCollisions;
        return Entry.Id;
      }
      Collided = true;
    }
    if (Collided)
      ++Ws.HashCollisions;
    unsigned Id = NextId.fetch_add(1, std::memory_order_relaxed);
    S.Recs.push_back(InternRec{H, Id, RRoot, MRoot});
    S.Table[I] = static_cast<uint32_t>(S.Recs.size());
    if (Opts.VerifyResidues) {
      S.DebugKeys.resize(S.Recs.size());
      S.DebugKeys[S.Recs.size() - 1] = std::move(DbgKey);
    }
    Ws.News.push_back(Pending{Id, W, H});
    return Id;
  }

  /// VerifyResidues cross-check: the tree store's equality verdict must
  /// agree with legacy key() string equality on every probe. A hard
  /// abort (not assert) so the check also fires in NDEBUG builds.
  static void verifyResidueVerdict(bool TreeEq, bool KeyEq) {
    if (TreeEq != KeyEq) {
      std::fprintf(stderr,
                   "FATAL: binary residue verdict (%d) disagrees with "
                   "legacy key() equality (%d)\n",
                   int(TreeEq), int(KeyEq));
      std::abort();
    }
  }

  void mergeCounters(const WorkerState &Ws) {
    Stats.Probes += Ws.Probes;
    Stats.DedupHits += Ws.DedupHits;
    Stats.HashCollisions += Ws.HashCollisions;
    Stats.Por.AmpleHits += Ws.AmpleHits;
    Stats.Por.FullExpansions += Ws.FullExpansions;
    Stats.Por.ProvisoFallbacks += Ws.ProvisoFallbacks;
    Stats.Por.SleepPrunes += Ws.SleepPrunes;
    Stats.Por.EdgesAvoided += Ws.EdgesAvoided;
  }

  /// Expands one BFS layer: workers enumerate successors and intern them
  /// into the shards; the barrier canonicalizes the new ids to serial
  /// discovery order, appends the new nodes, and refills the queue.
  void expandLayer(const std::vector<unsigned> &Batch,
                   std::deque<unsigned> &Work) {
    const unsigned LayerBase = NextId.load(std::memory_order_relaxed);
    const unsigned MaxWorkers = std::max(1u, Opts.Threads);
    std::vector<WorkerState> Ws(MaxWorkers, WorkerState(Store));

    parallelChunks(Opts.Threads, Batch.size(),
                   [&](std::size_t B, std::size_t E, unsigned Worker) {
                     WorkerState &Local = Ws[Worker];
                     for (std::size_t I = B; I < E; ++I) {
                       if constexpr (PorTraits<WorldT>::Enabled) {
                         if (Oracle) {
                           expandNodePor(Batch[I], Local, LayerBase);
                           continue;
                         }
                       }
                       Node &N = Nodes[Batch[I]];
                       // Note: succ() of an aborted or done world is empty.
                       auto Succs = N.W.succ();
                       N.Out.reserve(Succs.size());
                       for (auto &S : Succs) {
                         Edge Ed;
                         Ed.To = intern(S.Next, Local);
                         Ed.K = S.L.K;
                         Ed.Ev = S.L.EventVal;
                         N.Out.push_back(Ed);
                       }
                     }
                   });

    // --- Barrier: canonicalize this layer's provisional ids. ---
    const unsigned LayerEnd = NextId.load(std::memory_order_relaxed);
    const unsigned NumNew = LayerEnd - LayerBase;

    // Index pending records by provisional id.
    std::vector<Pending *> ByProv(NumNew, nullptr);
    for (WorkerState &W : Ws) {
      for (Pending &P : W.News)
        ByProv[P.ProvId - LayerBase] = &P;
      mergeCounters(W);
    }

    // Canonical rank = order of first discovery scanning parents in layer
    // order and successors in succ() order — the serial intern order.
    constexpr unsigned Unranked = ~0u;
    std::vector<unsigned> Remap(NumNew, Unranked);
    std::vector<unsigned> CanonToProv;
    CanonToProv.reserve(NumNew);
    unsigned NextCanon = LayerBase;
    for (unsigned Parent : Batch) {
      for (const Edge &E : Nodes[Parent].Out) {
        if (E.To >= LayerBase && Remap[E.To - LayerBase] == Unranked) {
          Remap[E.To - LayerBase] = NextCanon++;
          CanonToProv.push_back(E.To);
        }
      }
    }

    // Rewrite edge targets to canonical ids.
    for (unsigned Parent : Batch)
      for (Edge &E : Nodes[Parent].Out)
        if (E.To >= LayerBase)
          E.To = Remap[E.To - LayerBase];

    // Rewrite shard entries and append the new nodes in canonical order.
    for (unsigned Prov : CanonToProv) {
      Pending &P = *ByProv[Prov - LayerBase];
      Shard &S = Shards[P.Hash % NumShards];
      for (uint32_t I = static_cast<uint32_t>(P.Hash) & S.Mask;
           S.Table[I] != 0; I = (I + 1) & S.Mask) {
        InternRec &Entry = S.Recs[S.Table[I] - 1];
        if (Entry.H == P.Hash && Entry.Id == P.ProvId) {
          Entry.Id = Remap[P.ProvId - LayerBase];
          break;
        }
      }
      Nodes.push_back(Node{std::move(P.W), {}, false, false, false});
    }

    // Sleep-mask propagation runs serially after ids are canonical, so
    // masks and any re-added edges are identical for every Threads value.
    if constexpr (PorTraits<WorldT>::Enabled)
      if (Oracle)
        porBarrier(Batch, Work);

    // Refill the queue exactly as the serial engine: one push per edge
    // whose target is not yet expanded (duplicates included).
    for (unsigned Parent : Batch)
      for (const Edge &E : Nodes[Parent].Out)
        if (!Nodes[E.To].Expanded)
          Work.push_back(E.To);
  }

  static constexpr uint64_t bitOf(ThreadId T) { return uint64_t(1) << T; }

  /// POR expansion of one node. Always emits the scheduled thread's step
  /// successors; switch successors are elided entirely when the pending
  /// step is an ample set (statically independent of every other live
  /// thread's entire future, clean, and not closing a cycle), and
  /// individually when the target thread is asleep. Only instantiated for
  /// world types whose PorTraits opt in.
  void expandNodePor(unsigned Idx, WorkerState &Local, unsigned LayerBase) {
    Node &N = Nodes[Idx];
    auto Steps = N.W.stepSuccs();
    N.HasSteps = !Steps.empty();
    bool Clean = N.HasSteps;
    for (const auto &S : Steps)
      if (S.L.K != GLabel::Kind::Tau || S.Next.aborted() ||
          S.Next.numThreads() != N.W.numThreads())
        Clean = false;
    N.StepsClean = Clean;

    N.Out.reserve(Steps.size());
    for (auto &S : Steps) {
      Edge Ed;
      Ed.To = intern(S.Next, Local);
      Ed.K = S.L.K;
      Ed.Ev = S.L.EventVal;
      N.Out.push_back(Ed);
    }

    // No switch successors exist from aborted/done/atomic states.
    if (N.W.aborted() || N.W.done() || N.W.inAtomic())
      return;

    const ThreadId Cur = N.W.curThread();
    const unsigned NT = N.W.numThreads();
    unsigned NumSw = 0;
    for (ThreadId T = 0; T < NT; ++T)
      if (T != Cur && !N.W.thread(T).finished())
        ++NumSw;

    if (Clean && NumSw > 0) {
      const EffectSummary PendCur = Oracle->pendingOf(N.W.thread(Cur));
      bool Ample = true;
      for (ThreadId T = 0; T < NT && Ample; ++T) {
        if (T == Cur || N.W.thread(T).finished())
          continue;
        if (summariesConflict(PendCur, Cur, Oracle->futureOf(N.W.thread(T)),
                              T))
          Ample = false;
      }
      if (Ample) {
        // Cycle proviso: an ample step may not close a cycle back into
        // the explored graph, or deferred threads could be starved around
        // it forever. Provisional ids never fall below LayerBase, so the
        // test is deterministic for every Threads value.
        for (const Edge &Ed : N.Out)
          if (Ed.To < LayerBase) {
            Ample = false;
            ++Local.ProvisoFallbacks;
            break;
          }
      }
      if (Ample) {
        ++Local.AmpleHits;
        Local.EdgesAvoided += NumSw;
        return;
      }
    }

    ++Local.FullExpansions;
    auto Sws = N.W.switchSuccs();
    for (auto &S : Sws) {
      const ThreadId T = S.Tid;
      // Sleep pruning only applies while the scheduled thread itself can
      // make progress; a stuck scheduler must keep every switch open.
      if (N.HasSteps && T < 64 && (N.Sleep & bitOf(T))) {
        N.Pruned |= bitOf(T);
        ++Local.SleepPrunes;
        ++Local.EdgesAvoided;
        continue;
      }
      Edge Ed;
      Ed.To = intern(S.Next, Local);
      Ed.K = S.L.K;
      Ed.Ev = S.L.EventVal;
      N.Out.push_back(Ed);
    }
  }

  /// The sleep mask edge \p E carries from node \p P into its target. An
  /// observable event or a spawn wakes everything (deferred steps must be
  /// re-explorable on both sides of it); a step keeps a thread asleep only
  /// while it is independent of the step just taken; a switch passes the
  /// mask through, drops the thread being scheduled, and puts the thread
  /// switched *away from* to sleep when its (clean) pending step is
  /// independent of the scheduled thread's — the step branch explored it
  /// already, so re-running it after the switch would be redundant.
  uint64_t carriedMask(unsigned P, const Edge &E) const {
    const Node &PN = Nodes[P];
    if (E.K == GLabel::Kind::Event)
      return 0;
    const WorldT &PW = PN.W;
    const WorldT &TW = Nodes[E.To].W;
    const ThreadId C = PW.curThread();
    if (E.K == GLabel::Kind::Sw) {
      const ThreadId To = TW.curThread();
      uint64_t M = PN.Sleep;
      if (To < 64)
        M &= ~bitOf(To);
      if (C < 64 && PN.HasSteps && PN.StepsClean &&
          !PW.thread(C).finished() &&
          !summariesConflict(Oracle->pendingOf(PW.thread(C)), C,
                             Oracle->pendingOf(PW.thread(To)), To))
        M |= bitOf(C);
      return M;
    }
    if (TW.numThreads() != PW.numThreads() || TW.aborted())
      return 0;
    uint64_t M = PN.Sleep;
    if (!M)
      return 0;
    const EffectSummary PendC = Oracle->pendingOf(PW.thread(C));
    uint64_t Out = 0;
    for (ThreadId T = 0; T < PW.numThreads() && T < 64; ++T) {
      if (!(M & bitOf(T)) || T == C || PW.thread(T).finished())
        continue;
      if (!summariesConflict(Oracle->pendingOf(PW.thread(T)), T, PendC, C))
        Out |= bitOf(T);
    }
    return Out;
  }

  /// Serial part of a POR layer: intersect each edge's carried mask into
  /// its target's sleep mask, and run the weakening fixpoint — when an
  /// already-expanded node's mask shrinks, restore the switch edges it
  /// pruned under bits no longer slept (interning their targets in
  /// deterministic order) and re-relax its out-edges. Masks only ever
  /// shrink, so the cascade terminates.
  void porBarrier(const std::vector<unsigned> &Batch,
                  std::deque<unsigned> &Work) {
    std::set<unsigned> Dirty;
    auto Relax = [&](unsigned P, const Edge &E) {
      const uint64_t CM = carriedMask(P, E);
      Node &T = Nodes[E.To];
      const uint64_t NewS = T.Sleep & CM;
      if (NewS != T.Sleep) {
        T.Sleep = NewS;
        if (T.Expanded)
          Dirty.insert(E.To);
      }
    };
    for (unsigned P : Batch)
      for (const Edge &E : Nodes[P].Out)
        Relax(P, E);
    while (!Dirty.empty()) {
      const unsigned NIdx = *Dirty.begin();
      Dirty.erase(Dirty.begin());
      const uint64_t ReAdd = Nodes[NIdx].Pruned & ~Nodes[NIdx].Sleep;
      if (ReAdd) {
        Nodes[NIdx].Pruned &= ~ReAdd;
        for (ThreadId T = 0; T < 64; ++T) {
          if (!(ReAdd & bitOf(T)))
            continue;
          WorldT SW = Nodes[NIdx].W.switchTo(T);
          WorkerState Tmp(Store);
          const unsigned Id = intern(SW, Tmp);
          mergeCounters(Tmp);
          // Serial intern: a fresh id equals the append position, so the
          // canonical-order invariant Nodes.size() == NextId holds.
          for (Pending &P : Tmp.News)
            Nodes.push_back(Node{std::move(P.W), {}, false, false, false});
          Nodes[NIdx].Out.push_back(Edge{Id, GLabel::Kind::Sw, 0});
          ++Stats.Por.SleepReadds;
          if (!Nodes[Id].Expanded)
            Work.push_back(Id);
        }
      }
      for (const Edge &E : Nodes[NIdx].Out)
        Relax(NIdx, E);
    }
  }

  std::optional<RaceWitness> raceAt(const Node &N) const {
    if (!N.W.racePredictable())
      return std::nullopt;
    unsigned NT = N.W.numThreads();
    std::vector<std::vector<InstrFootprint>> Preds(NT);
    for (ThreadId T = 0; T < NT; ++T)
      Preds[T] = N.W.predictFor(T);
    for (ThreadId T1 = 0; T1 < NT; ++T1) {
      for (ThreadId T2 = T1 + 1; T2 < NT; ++T2) {
        for (const InstrFootprint &F1 : Preds[T1]) {
          for (const InstrFootprint &F2 : Preds[T2]) {
            if (F1.conflictsWith(F2)) {
              RaceWitness W;
              W.StateKey = N.W.key();
              W.T1 = T1;
              W.T2 = T2;
              W.FP1 = F1;
              W.FP2 = F2;
              return W;
            }
          }
        }
      }
    }
    return std::nullopt;
  }

  /// Marks every node with an infinite silent path that makes real
  /// progress: nodes that can reach (via non-event edges) a cycle
  /// containing at least one tau step. Pure context-switch chatter (sw
  /// cycles) is not divergence — the paper's global messages distinguish
  /// tau from sw, and the equivalence of Lemma 9 is stated modulo
  /// switches. Uses iterative Tarjan SCC on the silent-edge subgraph.
  void computeDivergence() {
    const unsigned N = static_cast<unsigned>(Nodes.size());
    std::vector<std::vector<unsigned>> Silent(N);
    for (unsigned I = 0; I < N; ++I)
      for (const Edge &E : Nodes[I].Out)
        if (E.K != GLabel::Kind::Event)
          Silent[I].push_back(E.To);

    // Iterative Tarjan.
    std::vector<int> Index(N, -1), Low(N, 0), Comp(N, -1);
    std::vector<bool> OnStack(N, false);
    std::vector<unsigned> Stack;
    std::vector<bool> InCycle(N, false);
    int NextIndex = 0, NextComp = 0;
    struct DfsFrame {
      unsigned V;
      unsigned EdgeIdx;
    };
    for (unsigned Root = 0; Root < N; ++Root) {
      if (Index[Root] != -1)
        continue;
      std::vector<DfsFrame> Dfs;
      Dfs.push_back({Root, 0});
      Index[Root] = Low[Root] = NextIndex++;
      Stack.push_back(Root);
      OnStack[Root] = true;
      while (!Dfs.empty()) {
        DfsFrame &F = Dfs.back();
        if (F.EdgeIdx < Silent[F.V].size()) {
          unsigned W = Silent[F.V][F.EdgeIdx++];
          if (Index[W] == -1) {
            Index[W] = Low[W] = NextIndex++;
            Stack.push_back(W);
            OnStack[W] = true;
            Dfs.push_back({W, 0});
          } else if (OnStack[W]) {
            Low[F.V] = std::min(Low[F.V], Index[W]);
          }
        } else {
          if (Low[F.V] == Index[F.V]) {
            std::vector<unsigned> Members;
            while (true) {
              unsigned W = Stack.back();
              Stack.pop_back();
              OnStack[W] = false;
              Comp[W] = NextComp;
              Members.push_back(W);
              if (W == F.V)
                break;
            }
            ++NextComp;
            // The SCC diverges iff it contains an internal tau edge (any
            // internal edge of an SCC lies on a cycle).
            bool Cyclic = false;
            for (unsigned M : Members) {
              for (const Edge &E : Nodes[M].Out) {
                if (E.K == GLabel::Kind::Tau && Comp[E.To] == Comp[M]) {
                  Cyclic = true;
                  break;
                }
              }
              if (Cyclic)
                break;
            }
            if (Cyclic)
              for (unsigned M : Members)
                InCycle[M] = true;
          }
          unsigned V = F.V;
          Dfs.pop_back();
          if (!Dfs.empty())
            Low[Dfs.back().V] = std::min(Low[Dfs.back().V], Low[V]);
        }
      }
    }

    // Backward reachability: Div = can reach an in-cycle node silently.
    std::vector<std::vector<unsigned>> RevSilent(N);
    for (unsigned I = 0; I < N; ++I)
      for (unsigned S : Silent[I])
        RevSilent[S].push_back(I);
    std::deque<unsigned> Work;
    for (unsigned I = 0; I < N; ++I) {
      if (InCycle[I]) {
        Nodes[I].Div = true;
        Work.push_back(I);
      }
    }
    while (!Work.empty()) {
      unsigned I = Work.front();
      Work.pop_front();
      for (unsigned P : RevSilent[I]) {
        if (!Nodes[P].Div) {
          Nodes[P].Div = true;
          Work.push_back(P);
        }
      }
    }
  }

  ExploreOptions Opts;
  /// The static independence oracle; null when POR is off or the world
  /// type does not opt in, which routes every node to the full expansion.
  std::shared_ptr<const PorOracle> Oracle;
  std::vector<Node> Nodes;
  /// The tree/string store every intern record's roots point into; one
  /// per exploration (its epoch distinguishes this store's cached ids
  /// from other explorations' in shared Core/Page objects).
  StateStore Store;
  std::array<Shard, NumShards> Shards;
  std::atomic<unsigned> NextId{0};
  std::vector<unsigned> InitIdx;
  unsigned NumExpanded = 0;
  bool Truncated = false;
  mutable ExploreStats Stats;
};

} // namespace ccc

#endif // CASCC_CORE_EXPLORER_H
