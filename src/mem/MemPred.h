//===- mem/MemPred.h - Memory and footprint predicates ----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable transcriptions of the auxiliary state/footprint predicates
/// of Fig. 6 (forward, LEqPre, LEqPost, LEffect), Fig. 7 (closed), and
/// Fig. 8 (wf(mu), FPmatch, Inv, HG, LG, R, Rely). These are the exact
/// definitions the paper's well-definedness (Def. 1), simulation (Def. 3)
/// and ReachClose (Def. 4) obligations quantify over; our validation
/// engines evaluate them on concrete states.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_MEMPRED_H
#define CASCC_MEM_MEMPRED_H

#include "mem/Addr.h"
#include "mem/Footprint.h"
#include "mem/FreeList.h"
#include "mem/Mem.h"

#include <map>
#include <optional>

namespace ccc {

/// forward(sigma, sigma'): the memory domain only grows (Fig. 6).
bool memForward(const Mem &Before, const Mem &After);

/// LEqPre(sigma1, sigma2, delta, F) (Fig. 6): the two memories agree on the
/// read set, allocate the same write-set and free-list addresses.
bool lEqPre(const Mem &M1, const Mem &M2, const Footprint &FP,
            const FreeList &F);

/// LEqPost(sigma1, sigma2, delta, F) (Fig. 6): the two memories agree on
/// the write set and allocate the same free-list addresses.
bool lEqPost(const Mem &M1, const Mem &M2, const Footprint &FP,
             const FreeList &F);

/// LEffect(sigma1, sigma2, delta, F) (Fig. 6): the step changed nothing
/// outside the write set, and newly allocated addresses come from the
/// write set intersected with the free list.
bool lEffect(const Mem &Before, const Mem &After, const Footprint &FP,
             const FreeList &F);

/// closed(S, sigma) (Fig. 7): pointers stored at addresses in S stay in S.
bool closedOn(const AddrSet &S, const Mem &M);

/// closed(sigma) = closed(dom(sigma), sigma) (Fig. 7).
bool closedMem(const Mem &M);

/// The triple mu = (S, TS, f) of Fig. 8 recording the shared locations of
/// source (S) and target (TS) and the injective source-to-target address
/// mapping f.
struct Mu {
  AddrSet SrcShared;
  AddrSet TgtShared;
  std::map<Addr, Addr> F;

  /// f{{S}}: image of a set under f (Fig. 8).
  AddrSet image(const AddrSet &S) const;

  /// Applies f to an address; nullopt when outside dom(f).
  std::optional<Addr> apply(Addr A) const;

  /// Applies f to a value (Fig. 8's lifting of f to values): integers map
  /// to themselves, pointers through f.
  std::optional<Value> applyValue(const Value &V) const;

  /// Builds the identity mu over a shared set (used because our linker
  /// assigns identical global layouts to source and target; DESIGN.md).
  static Mu identity(const AddrSet &Shared);
};

/// wf(mu) (Fig. 8): f injective, dom(f) = S, f{{S}} = TS.
bool wfMu(const Mu &M);

/// FPmatch(mu, Delta, delta) (Fig. 8): the target footprint's shared
/// locations are covered by the source footprint's, modulo f; target
/// shared reads may come from source reads or writes, target shared writes
/// only from source writes.
bool fpMatch(const Mu &M, const Footprint &Src, const Footprint &Tgt);

/// Inv(f, Sigma, sigma) (Fig. 8): the memory-injection style invariant
/// relating source and target memory contents over dom(f).
bool invRel(const Mu &M, const Mem &Src, const Mem &Tgt);

/// HG(Delta, Sigma, F, S) (Fig. 8): the source-level guarantee — the
/// accumulated footprint stays inside F u S and the shared memory is
/// closed.
bool guaranteeHG(const Footprint &FP, const Mem &M, const FreeList &F,
                 const AddrSet &S);

/// LG(mu, (delta, sigma, F), (Delta, Sigma)) (Fig. 8): the target-level
/// guarantee — scoping, closedness, FPmatch and Inv.
bool guaranteeLG(const Mu &M, const Footprint &TgtFP, const Mem &TgtMem,
                 const FreeList &TgtF, const Footprint &SrcFP,
                 const Mem &SrcMem);

/// R(Sigma, Sigma', F, S) (Fig. 8): an environment step preserves the
/// module's free-list memory, keeps the shared memory closed, and only
/// grows the domain.
bool relyR(const Mem &Before, const Mem &After, const FreeList &F,
           const AddrSet &S);

/// Rely(mu, (Sigma, Sigma', F), (sigma, sigma', F)) (Fig. 8): environment
/// steps at both levels satisfy R and re-establish Inv.
bool relyRel(const Mu &M, const Mem &SrcBefore, const Mem &SrcAfter,
             const FreeList &SrcF, const Mem &TgtBefore, const Mem &TgtAfter,
             const FreeList &TgtF);

/// Checks that a set of addresses is within scope F u S (the side
/// condition "(delta0 u delta) subset (F u mu.S)" of Def. 3).
bool inScope(const Footprint &FP, const FreeList &F, const AddrSet &S);

} // namespace ccc

#endif // CASCC_MEM_MEMPRED_H
