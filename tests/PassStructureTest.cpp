//===- tests/PassStructureTest.cpp - Structural pass invariants ------------===//
//
// White-box tests of the invariants each pass establishes, beyond the
// semantic-preservation checks: Cminorgen leaves no slot addresses,
// Allocation never assigns reserved registers, Linearize resolves every
// branch, Stacking sizes frames to the spill count, Asmgen respects the
// calling convention.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

using namespace ccc;

namespace {

const char *RichSource = R"(
  extern void lock();
  extern void unlock();
  int g = 1;
  int h = 2;
  int combine(int a, int b, int c) {
    int t;
    t = a * b + c;
    while (t > 100) { t = t - g; }
    return t;
  }
  void main() {
    int v;
    int w;
    lock();
    v = combine(3, 4, 5);
    w = combine(v, v, v);
    g = v + w;
    unlock();
    print(g % 1000);
  }
)";

compiler::CompileResult compileRich() {
  return compiler::compileClightSource(RichSource);
}

} // namespace

TEST(PassStructure, CshmgenMakesAllVariableAccessExplicit) {
  auto R = compileRich();
  // Every variable occurrence is now under an explicit Load or Store; we
  // check there is at least one load per function that reads a variable.
  std::function<bool(const csharp::Expr &)> HasLoad =
      [&](const csharp::Expr &E) {
        if (E.K == csharp::Expr::Kind::Load)
          return true;
        if (E.L && HasLoad(*E.L))
          return true;
        return E.R && HasLoad(*E.R);
      };
  bool Found = false;
  std::function<void(const csharp::Block &)> Scan =
      [&](const csharp::Block &B) {
        for (const auto &S : B) {
          if (S->E1 && HasLoad(*S->E1))
            Found = true;
          if (S->E2 && HasLoad(*S->E2))
            Found = true;
          Scan(S->Body);
          Scan(S->Else);
        }
      };
  for (const auto &F : R.Csharpminor->Funcs)
    Scan(F.Body);
  EXPECT_TRUE(Found);
}

TEST(PassStructure, CminorgenEliminatesSlotAddresses) {
  auto R = compileRich();
  // After Cminorgen, no AddrSlot survives: locals are temps; the only
  // loads/stores target globals.
  std::function<void(const cminor::Expr &)> Check =
      [&](const cminor::Expr &E) {
        if (E.K == cminor::Expr::Kind::Load) {
          EXPECT_NE(E.L->K, cminor::Expr::Kind::Temp);
        }
        if (E.L)
          Check(*E.L);
        if (E.R)
          Check(*E.R);
      };
  std::function<void(const cminor::Block &)> Scan =
      [&](const cminor::Block &B) {
        for (const auto &S : B) {
          if (S->E1)
            Check(*S->E1);
          if (S->E2)
            Check(*S->E2);
          for (const auto &A : S->Args)
            Check(*A);
          Scan(S->Body);
          Scan(S->Else);
        }
      };
  for (const auto &F : R.Cminor->Funcs) {
    EXPECT_EQ(F.FrameSize, 0u); // no address-taken locals in the subset
    Scan(F.Body);
  }
}

TEST(PassStructure, RTLgenProducesAWellFormedCFG) {
  auto R = compileRich();
  for (const rtl::Function &F : R.RTL->Funcs) {
    ASSERT_TRUE(F.Graph.count(F.Entry));
    for (const auto &KV : F.Graph) {
      const rtl::Instr &I = KV.second;
      if (I.K == rtl::Instr::Kind::Return ||
          I.K == rtl::Instr::Kind::Tailcall)
        continue;
      EXPECT_TRUE(F.Graph.count(I.S1))
          << ir::toString(I) << " dangles in " << F.Name;
      if (I.K == rtl::Instr::Kind::Cond) {
        EXPECT_TRUE(F.Graph.count(I.S2));
      }
      // Register sanity.
      for (rtl::Reg A : I.Args)
        EXPECT_LT(A, F.NumRegs);
      if (I.HasDst) {
        EXPECT_LT(I.Dst, F.NumRegs);
      }
    }
  }
}

TEST(PassStructure, AllocationRespectsReservedRegisters) {
  auto R = compileRich();
  auto CheckLoc = [](const ltl::Loc &L) {
    if (!L.IsReg)
      return;
    // EAX appears only as the pinned call-result register; EDX/EDI/ESI/ESP
    // never hold program variables.
    EXPECT_NE(L.R, x86::Reg::EDX);
    EXPECT_NE(L.R, x86::Reg::EDI);
    EXPECT_NE(L.R, x86::Reg::ESI);
    EXPECT_NE(L.R, x86::Reg::ESP);
  };
  for (const ltl::Function &F : R.LTL->Funcs) {
    for (const auto &KV : F.Graph) {
      const ltl::Instr &I = KV.second;
      for (const ltl::Loc &A : I.Args)
        CheckLoc(A);
      if (I.HasDst && !(I.K == ltl::Instr::Kind::Call))
        CheckLoc(I.Dst);
      if (I.K == ltl::Instr::Kind::Call && I.HasDst) {
        EXPECT_EQ(I.Dst, ltl::Loc::reg(x86::Reg::EAX));
      }
    }
  }
}

TEST(PassStructure, TunnelingShortcutsNopChains) {
  auto R = compileRich();
  // After tunneling, no instruction's successor is a Nop that merely
  // forwards (unless it is part of a Nop cycle).
  for (const ltl::Function &F : R.LTLTunneled->Funcs) {
    for (const auto &KV : F.Graph) {
      const ltl::Instr &I = KV.second;
      if (I.K == ltl::Instr::Kind::Return ||
          I.K == ltl::Instr::Kind::Tailcall)
        continue;
      auto It = F.Graph.find(I.S1);
      if (It != F.Graph.end() && It->second.K == ltl::Instr::Kind::Nop) {
        EXPECT_EQ(It->second.S1, I.S1) << "untunneled chain in " << F.Name;
      }
    }
  }
}

TEST(PassStructure, LinearizeResolvesEveryBranch) {
  auto R = compileRich();
  for (const linear::Function &F : R.Linear->Funcs) {
    std::set<unsigned> Labels;
    for (const linear::Instr &I : F.Code)
      if (I.K == linear::Instr::Kind::Label)
        Labels.insert(I.Label);
    for (const linear::Instr &I : F.Code) {
      if (I.K == linear::Instr::Kind::Goto ||
          I.K == linear::Instr::Kind::Cond) {
        EXPECT_TRUE(Labels.count(I.Label))
            << "dangling label in " << F.Name;
      }
    }
  }
}

TEST(PassStructure, CleanupKeepsAllReferencedLabels) {
  auto R = compileRich();
  for (const linear::Function &F : R.LinearClean->Funcs) {
    std::set<unsigned> Labels, Referenced;
    for (const linear::Instr &I : F.Code) {
      if (I.K == linear::Instr::Kind::Label)
        Labels.insert(I.Label);
      if (I.K == linear::Instr::Kind::Goto ||
          I.K == linear::Instr::Kind::Cond)
        Referenced.insert(I.Label);
    }
    for (unsigned L : Referenced)
      EXPECT_TRUE(Labels.count(L));
    for (unsigned L : Labels)
      EXPECT_TRUE(Referenced.count(L)) << "unreferenced label survived";
  }
}

TEST(PassStructure, StackingSizesFramesToSpills) {
  auto R = compileRich();
  for (std::size_t I = 0; I < R.Mach->Funcs.size(); ++I) {
    EXPECT_EQ(R.Mach->Funcs[I].FrameSize,
              R.LinearClean->Funcs[I].NumSlots);
    // Every slot reference fits in the frame.
    for (const mach::Instr &In : R.Mach->Funcs[I].Code) {
      for (const mach::Loc &L : In.Args) {
        if (!L.IsReg) {
          EXPECT_LT(L.Slot, R.Mach->Funcs[I].FrameSize);
        }
      }
      if (In.HasDst && !In.Dst.IsReg) {
        EXPECT_LT(In.Dst.Slot, R.Mach->Funcs[I].FrameSize);
      }
    }
  }
}

TEST(PassStructure, AsmgenDeclaresEntriesAndExterns) {
  auto R = compileRich();
  EXPECT_TRUE(R.Asm->Entries.count("main"));
  EXPECT_TRUE(R.Asm->Entries.count("combine"));
  EXPECT_EQ(R.Asm->Entries.at("combine").Arity, 3u);
  EXPECT_TRUE(R.Asm->ExternArity.count("lock"));
  EXPECT_TRUE(R.Asm->ExternArity.count("unlock"));
  EXPECT_EQ(R.Asm->ExternArity.at("lock"), 0u);
}

TEST(PassStructure, PrintersRoundUpEveryInstruction) {
  auto R = compileRich();
  // Smoke: the printers cover every instruction form in the rich program
  // without crashing and produce non-trivial text.
  EXPECT_GT(ir::toString(*R.RTL).size(), 200u);
  EXPECT_GT(ir::toString(*R.LTL).size(), 200u);
  EXPECT_GT(ir::toString(*R.Linear).size(), 200u);
  EXPECT_GT(ir::toString(*R.Mach).size(), 200u);
  EXPECT_NE(ir::toString(*R.RTL).find("call combine"), std::string::npos);
}
