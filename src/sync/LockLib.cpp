//===- sync/LockLib.cpp - The synchronization object library --------------===//

#include "sync/LockLib.h"

#include "cimp/CImpLang.h"

using namespace ccc;

const std::string &ccc::sync::gammaLockSource() {
  static const std::string Src = R"(
    global L = 1;

    lock() {
      r := 0;
      while (r == 0) {
        < r := [L]; [L] := 0; >
      }
      return 0;
    }

    unlock() {
      < r := [L]; assert(r == 0); [L] := 1; >
      return 0;
    }
  )";
  return Src;
}

const std::string &ccc::sync::piLockSource() {
  // Fig. 10(b), adapted to our assembly subset. The acquire path uses a
  // lock-prefixed cmpxchg; the spin read and the releasing store are
  // deliberately not lock-prefixed (the confined benign race).
  static const std::string Src = R"(
    .data L 1
    .entry lock 0 0
    .entry unlock 0 0

    lock:
            movl    $L, %ecx
            movl    $0, %edx
    l_acq:
            movl    $1, %eax
            lock cmpxchgl %edx, (%ecx)
            je      enter
    spin:
            movl    (%ecx), %ebx
            cmpl    $0, %ebx
            je      spin
            jmp     l_acq
    enter:
            retl

    unlock:
            movl    $L, %eax
            movl    $1, (%eax)
            retl
  )";
  return Src;
}

const std::string &ccc::sync::piLockFencedSource() {
  // As piLockSource, with the release store fenced. Under the executable
  // model the mfence is redundant (ret drains the buffer), but it turns
  // the escaping release store into a certified one for the static
  // robustness pass — the Robust counterpart to pi_lock's NotRobust.
  static const std::string Src = R"(
    .data L 1
    .entry lock 0 0
    .entry unlock 0 0

    lock:
            movl    $L, %ecx
            movl    $0, %edx
    l_acq:
            movl    $1, %eax
            lock cmpxchgl %edx, (%ecx)
            je      enter
    spin:
            movl    (%ecx), %ebx
            cmpl    $0, %ebx
            je      spin
            jmp     l_acq
    enter:
            retl

    unlock:
            movl    $L, %eax
            movl    $1, (%eax)
            mfence
            retl
  )";
  return Src;
}

const std::string &ccc::sync::piLockRecursiveSource() {
  // As piLockSource, but the acquire spin loop is a recursive retry call
  // and the release store drains through a recursive flush helper. The
  // release store is pending across the same-module `call rflush`, so
  // only a summary that closes the recursive call group — every rflush
  // path ends in the mfence — can certify it; a memoized one-pass
  // summary turns the back-edge into a spurious boundary escape.
  static const std::string Src = R"(
    .data L 1
    .entry lock 0 0
    .entry unlock 0 0
    .entry rflush 0 0

    lock:
            movl    $L, %ecx
            movl    $0, %edx
            movl    $1, %eax
            lock cmpxchgl %edx, (%ecx)
            je      enter
            call    lock
    enter:
            retl

    unlock:
            movl    $1, L
            call    rflush
            retl

    rflush:
            movl    $0, %ecx
            cmpl    $0, %ecx
            je      rdone
            call    rflush
    rdone:
            mfence
            retl
  )";
  return Src;
}

const std::string &ccc::sync::piLockRecursiveUnfencedSource() {
  // piLockRecursiveSource with rflush's mfence dropped: the recursive
  // flush helper no longer flushes, so unlock's release store is pending
  // at its ret on every path — NotRobust through the summary fixpoint,
  // and the repair target for fence synthesis (hand reference: the one
  // mfence of piLockRecursiveSource).
  static const std::string Src = R"(
    .data L 1
    .entry lock 0 0
    .entry unlock 0 0
    .entry rflush 0 0

    lock:
            movl    $L, %ecx
            movl    $0, %edx
            movl    $1, %eax
            lock cmpxchgl %edx, (%ecx)
            je      enter
            call    lock
    enter:
            retl

    unlock:
            movl    $1, L
            call    rflush
            retl

    rflush:
            movl    $0, %ecx
            cmpl    $0, %ecx
            je      rdone
            call    rflush
    rdone:
            retl
  )";
  return Src;
}

unsigned ccc::sync::addGammaLock(Program &P) {
  return cimp::addCImpModule(P, "lockspec", gammaLockSource(),
                             /*ObjectMode=*/true);
}

unsigned ccc::sync::addPiLock(Program &P, x86::MemModel Model) {
  return x86::addAsmModule(P, "lockimpl", piLockSource(), Model,
                           /*ObjectMode=*/true);
}

unsigned ccc::sync::addPiLockFenced(Program &P, x86::MemModel Model) {
  return x86::addAsmModule(P, "lockimpl", piLockFencedSource(), Model,
                           /*ObjectMode=*/true);
}

unsigned ccc::sync::addPiLockRecursive(Program &P, x86::MemModel Model) {
  return x86::addAsmModule(P, "lockimpl", piLockRecursiveSource(), Model,
                           /*ObjectMode=*/true);
}

unsigned ccc::sync::addPiLockRecursiveUnfenced(Program &P,
                                               x86::MemModel Model) {
  return x86::addAsmModule(P, "lockimpl", piLockRecursiveUnfencedSource(),
                           Model, /*ObjectMode=*/true);
}
