//===- bench/bench_tso.cpp - E3: the Fig. 10 spin-lock case study ----------===//
//
// Regenerates the Fig. 10 case study: the abstract lock gamma_lock (CImp,
// SC) versus the efficient TTAS implementation pi_lock (x86-TSO) under
// the counter clients, plus the TSO litmus landscape.
//
// Expected shape:
//  - the TSO program with pi_lock refines (termination-insensitively) the
//    SC program with gamma_lock — the strengthened DRF-guarantee of
//    Lemma 16;
//  - pi_lock is racy, but every race is confined to the object's data L
//    (the paper's "confined benign races");
//  - the store-buffering litmus exhibits the relaxed (0,0) outcome under
//    TSO and not under SC; mfence removes it; message passing is
//    preserved by TSO's FIFO buffers.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace ccc;

static Trace doneTrace(std::vector<int64_t> Ev) {
  return Trace{std::move(Ev), TraceEnd::Done};
}

int main() {
  bool AllGood = true;

  std::printf("E3 (Fig. 10): gamma_lock vs pi_lock\n\n");
  {
    benchtable::Table T({"configuration", "states", "mutex holds",
                         "races", "all confined to L", "ms"});
    struct Row {
      std::string Name;
      Program P;
      bool ExpectRaces;
    };
    std::vector<Row> Rows;
    Rows.push_back({"gamma_lock (CImp, SC) x2",
                    workload::lockedCounter(2, 1, 0), false});
    Rows.push_back({"pi_lock (x86-SC) x2",
                    workload::asmCounterWithPiLock(x86::MemModel::SC, 2),
                    true});
    Rows.push_back({"pi_lock (x86-TSO) x2",
                    workload::asmCounterWithPiLock(x86::MemModel::TSO, 2),
                    true});
    for (Row &R : Rows) {
      benchtable::Timer Tm;
      Explorer<World> E;
      E.build(World::load(R.P));
      TraceSet Tr = E.traces();
      // Mutual exclusion: every terminating trace prints a permutation of
      // 0..n-1 (each increment observes a distinct value).
      bool Mutex = !Tr.hasAbort() && Tr.contains(doneTrace({0, 1})) &&
                   Tr.contains(doneTrace({1, 0}));
      for (const Trace &X : Tr.traces())
        if (X.End == TraceEnd::Done &&
            !(X.Events == std::vector<int64_t>{0, 1} ||
              X.Events == std::vector<int64_t>{1, 0}))
          Mutex = false;
      auto Races = E.findRacesConfinedTo(R.P.objectAddrs());
      bool AllConfined = true;
      for (const RaceWitness &W : Races)
        AllConfined = AllConfined && W.Confined;
      AllGood = AllGood && Mutex && (R.ExpectRaces == !Races.empty()) &&
                AllConfined;
      T.addRow({R.Name, std::to_string(E.numStates()),
                benchtable::yesNo(Mutex), std::to_string(Races.size()),
                Races.empty() ? "n/a" : benchtable::yesNo(AllConfined),
                benchtable::fmtMs(Tm.ms())});
    }
    T.print();
  }

  std::printf("\nLemma 16 (strengthened DRF guarantee): P_tso(pi_lock) "
              "refines' P_sc(gamma_lock)\n\n");
  {
    benchtable::Table T({"impl", "spec", "refines'", "ms"});
    benchtable::Timer Tm;
    TraceSet Impl = preemptiveTraces(
        workload::asmCounterWithPiLock(x86::MemModel::TSO, 2));
    TraceSet Spec = preemptiveTraces(workload::lockedCounter(2, 1, 0));
    RefineResult R = refinesTraces(Impl, Spec, /*TermInsensitive=*/true);
    AllGood = AllGood && R.Holds;
    T.addRow({"asm client + pi_lock (TSO)",
              "CImp client + gamma_lock (SC)", benchtable::yesNo(R.Holds),
              benchtable::fmtMs(Tm.ms())});
    T.print();
  }

  std::printf("\nTSO litmus landscape\n\n");
  {
    benchtable::Table T(
        {"litmus", "model", "relaxed outcome observable", "ms"});
    struct L {
      std::string Name, Model;
      Program P;
      std::vector<int64_t> Relaxed;
      bool Expect;
    };
    std::vector<L> Ls;
    Ls.push_back({"SB", "SC", workload::sbLitmus(x86::MemModel::SC, false),
                  {0, 0}, false});
    Ls.push_back({"SB", "TSO",
                  workload::sbLitmus(x86::MemModel::TSO, false),
                  {0, 0}, true});
    Ls.push_back({"SB+mfence", "TSO",
                  workload::sbLitmus(x86::MemModel::TSO, true),
                  {0, 0}, false});
    // MP: the relaxed outcome would be reading stale data (0) after the
    // flag; TSO forbids it (FIFO buffers).
    Ls.push_back({"MP", "TSO", workload::mpLitmus(x86::MemModel::TSO),
                  {0}, false});
    for (L &X : Ls) {
      benchtable::Timer Tm;
      TraceSet Tr = preemptiveTraces(X.P);
      bool Seen = Tr.contains(doneTrace(X.Relaxed));
      AllGood = AllGood && Seen == X.Expect;
      T.addRow({X.Name, X.Model, benchtable::yesNo(Seen),
                benchtable::fmtMs(Tm.ms())});
    }
    T.print();
  }

  std::printf("\nresult: %s\n", AllGood ? "PASS" : "FAIL");
  return AllGood ? 0 : 1;
}
