//===- mem/Mem.h - The global memory state ----------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global memory state (paper: sigma in State, a finite partial map
/// from addresses to values, Fig. 4). Memory only ever grows (the paper's
/// forward property); allocation extends the domain, there is no free.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_MEM_H
#define CASCC_MEM_MEM_H

#include "mem/Addr.h"
#include "mem/Value.h"

#include <map>
#include <optional>
#include <string>

namespace ccc {

/// A finite partial map from addresses to values.
class Mem {
public:
  Mem() = default;

  /// Returns the value at \p A, or nullopt if unallocated.
  std::optional<Value> load(Addr A) const {
    auto It = Data.find(A);
    if (It == Data.end())
      return std::nullopt;
    return It->second;
  }

  bool allocated(Addr A) const { return Data.count(A) != 0; }

  /// Stores \p V at the already-allocated address \p A. Returns false if the
  /// address is not allocated (the caller reports abort).
  bool store(Addr A, const Value &V) {
    auto It = Data.find(A);
    if (It == Data.end())
      return false;
    It->second = V;
    return true;
  }

  /// Allocates \p A (possibly already allocated, which is an error) with an
  /// initial value.
  void alloc(Addr A, const Value &Init) { Data[A] = Init; }

  /// The domain of the memory as an address set.
  AddrSet dom() const {
    AddrSet Out;
    std::vector<Addr> Elems;
    Elems.reserve(Data.size());
    for (const auto &KV : Data)
      Elems.push_back(KV.first);
    return AddrSet(std::move(Elems));
  }

  std::size_t domSize() const { return Data.size(); }

  bool operator==(const Mem &Other) const { return Data == Other.Data; }
  bool operator!=(const Mem &Other) const { return !(*this == Other); }

  /// Returns true if this memory and \p Other agree on every address in
  /// \p Set per the paper's sigma =rs= sigma' relation (Fig. 6): each
  /// address is either outside both domains, or inside both with equal
  /// values.
  bool eqOn(const Mem &Other, const AddrSet &Set) const;

  /// Canonical key for memoized state exploration.
  std::string key() const;

  /// 64-bit incremental hash of the canonical key's content, computed
  /// without materializing the string. Equal memories hash equally;
  /// colliding hashes are disambiguated by comparing key() strings.
  uint64_t hashKey() const;

  /// Human-readable dump.
  std::string toString() const;

  const std::map<Addr, Value> &data() const { return Data; }

private:
  std::map<Addr, Value> Data;
};

} // namespace ccc

#endif // CASCC_MEM_MEM_H
