//===- bench/bench_tso.cpp - E3: the Fig. 10 spin-lock case study ----------===//
//
// Regenerates the Fig. 10 case study: the abstract lock gamma_lock (CImp,
// SC) versus the efficient TTAS implementation pi_lock (x86-TSO) under
// the counter clients, plus the litmus matrix across all three memory
// models (SC / TSO / Relaxed), the static per-model robustness verdicts,
// the SC fast path they license, and the mixed-model linked program.
//
// Expected shape:
//  - the TSO program with pi_lock refines (termination-insensitively) the
//    SC program with gamma_lock — the strengthened DRF-guarantee of
//    Lemma 16;
//  - pi_lock is racy, but every race is confined to the object's data L
//    (the paper's "confined benign races");
//  - the store-buffering litmus exhibits the relaxed (0,0) outcome under
//    TSO and not under SC; mfence removes it; message passing is
//    preserved by TSO's FIFO buffers;
//  - the robustness pass certifies the fenced workloads — and, with the
//    store-order-aware criterion, MP and its publication idioms — Robust,
//    and flags pi_lock NotRobust at its release store — which the
//    Lemma 16 refinement then allows ("flagged but allowed");
//  - running certified-Robust modules under MemModel::SC preserves the
//    trace set exactly while shrinking the explored state space.
//
// Results are emitted machine-readably to BENCH_tso.json.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "analysis/FenceSynth.h"
#include "analysis/Robustness.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>

using namespace ccc;

namespace {
/// Exploration options shared by every run in this binary; Por is set
/// from the --no-por escape hatch in main.
ExploreOptions BaseOpts;
} // namespace

namespace {

Trace doneTrace(std::vector<int64_t> Ev) {
  return Trace{std::move(Ev), TraceEnd::Done};
}

/// Fig. 10 configurations: mutual exclusion and confined benign races.
bool benchFig10(benchtable::JsonLog &Log) {
  std::printf("E3 (Fig. 10): gamma_lock vs pi_lock\n\n");
  benchtable::Table T({"configuration", "states", "mutex holds", "races",
                       "all confined to L", "ms"});
  struct Row {
    std::string Name;
    Program P;
    bool ExpectRaces;
  };
  std::vector<Row> Rows;
  Rows.push_back({"gamma_lock (CImp, SC) x2",
                  workload::lockedCounter(2, 1, 0), false});
  Rows.push_back({"pi_lock (x86-SC) x2",
                  workload::asmCounterWithPiLock(x86::MemModel::SC, 2),
                  true});
  Rows.push_back({"pi_lock (x86-TSO) x2",
                  workload::asmCounterWithPiLock(x86::MemModel::TSO, 2),
                  true});
  bool Good = true;
  for (Row &R : Rows) {
    benchtable::Timer Tm;
    Explorer<World> E(BaseOpts);
    E.build(World::load(R.P));
    TraceSet Tr = E.traces();
    // Mutual exclusion: every terminating trace prints a permutation of
    // 0..n-1 (each increment observes a distinct value).
    bool Mutex = !Tr.hasAbort() && Tr.contains(doneTrace({0, 1})) &&
                 Tr.contains(doneTrace({1, 0}));
    for (const Trace &X : Tr.traces())
      if (X.End == TraceEnd::Done &&
          !(X.Events == std::vector<int64_t>{0, 1} ||
            X.Events == std::vector<int64_t>{1, 0}))
        Mutex = false;
    auto Races = E.findRacesConfinedTo(R.P.objectAddrs());
    bool AllConfined = true;
    for (const RaceWitness &W : Races)
      AllConfined = AllConfined && W.Confined;
    Good = Good && Mutex && (R.ExpectRaces == !Races.empty()) && AllConfined;
    T.addRow({R.Name, std::to_string(E.numStates()),
              benchtable::yesNo(Mutex), std::to_string(Races.size()),
              Races.empty() ? "n/a" : benchtable::yesNo(AllConfined),
              benchtable::fmtMs(Tm.ms())});
    Log.add("fig10", "{\"config\":" + benchtable::jsonStr(R.Name) +
                         ",\"states\":" + std::to_string(E.numStates()) +
                         ",\"mutex\":" + (Mutex ? "true" : "false") +
                         ",\"races\":" + std::to_string(Races.size()) +
                         ",\"confined\":" + (AllConfined ? "true" : "false") +
                         "}");
  }
  T.print();
  return Good;
}

/// Lemma 16: the TSO implementation refines the SC specification.
bool benchLemma16(benchtable::JsonLog &Log, bool &PiLockRefines) {
  std::printf("\nLemma 16 (strengthened DRF guarantee): P_tso(pi_lock) "
              "refines' P_sc(gamma_lock)\n\n");
  benchtable::Table T({"impl", "spec", "refines'", "ms"});
  benchtable::Timer Tm;
  TraceSet Impl = preemptiveTraces(
      workload::asmCounterWithPiLock(x86::MemModel::TSO, 2), BaseOpts);
  TraceSet Spec = preemptiveTraces(workload::lockedCounter(2, 1, 0), BaseOpts);
  RefineResult R = refinesTraces(Impl, Spec, /*TermInsensitive=*/true);
  PiLockRefines = R.Holds && R.Definitive;
  T.addRow({"asm client + pi_lock (TSO)", "CImp client + gamma_lock (SC)",
            benchtable::yesNo(R.Holds), benchtable::fmtMs(Tm.ms())});
  T.print();
  Log.add("lemma16", std::string("{\"refines\":") +
                         (R.Holds ? "true" : "false") + "}");
  return R.Holds;
}

/// True when some complete trace's event multiset contains all of \p Ev.
bool someTraceContains(const TraceSet &T, const std::vector<int64_t> &Ev) {
  for (const Trace &Tr : T.traces()) {
    bool All = true;
    for (int64_t E : Ev) {
      if (std::count(Tr.Events.begin(), Tr.Events.end(), E) <
          std::count(Ev.begin(), Ev.end(), E)) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

using ccc::json::traceSetHash;

/// The litmus matrix: every registry shape under every selected memory
/// model, fenced and unfenced. Hard gates per cell: the distinguishing
/// weak outcome is observable exactly when the model is weak enough and
/// the fences are absent, and the static per-model robustness verdict
/// agrees with dynamic SC-equivalence (Robust iff the cell's trace set
/// equals the SC cell's). Across cells (full sweep only): SC ⊆ TSO ⊆
/// Relaxed trace inclusion, and fenced siblings identical in all models.
bool benchLitmusMatrix(benchtable::JsonLog &Log,
                       const std::vector<MemModel> &Models) {
  std::printf("\nlitmus matrix across memory models\n\n");
  struct Shape {
    const char *Name;
    std::vector<int64_t> Weak; ///< Empty: no weak outcome in any model.
    MemModel Needs;            ///< Weakest model reaching Weak.
  };
  const Shape Shapes[] = {
      {"SB", {0, 0}, MemModel::TSO},
      {"MP", {}, MemModel::SC},
      {"LB", {11, 21}, MemModel::Relaxed},
      {"IRIW", {12, 22}, MemModel::Relaxed},
  };
  benchtable::Table T({"litmus", "model", "fenced", "weak outcome",
                       "verdict", "states", "ms"});
  bool Good = true;
  for (const Shape &S : Shapes) {
    std::map<std::pair<int, bool>, TraceSet> Cells;
    for (MemModel M : Models) {
      for (bool Fenced : {false, true}) {
        benchtable::Timer Tm;
        Program P = workload::litmus(S.Name, M, Fenced);
        ExploreStats St;
        TraceSet Tr = preemptiveTraces(P, BaseOpts, &St);
        Cells.emplace(std::make_pair(static_cast<int>(M), Fenced), Tr);

        const bool WeakSeen =
            !S.Weak.empty() && someTraceContains(Tr, S.Weak);
        const bool WeakExpected = !S.Weak.empty() && !Fenced &&
                                  static_cast<int>(M) >=
                                      static_cast<int>(S.Needs) &&
                                  S.Needs != MemModel::SC;
        if (WeakSeen != WeakExpected) {
          std::printf("ERROR: %s under %s fenced=%d: weak outcome %s\n",
                      S.Name, memModelName(M), Fenced ? 1 : 0,
                      WeakSeen ? "observable" : "unreachable");
          Good = false;
        }

        // Static verdict under the declared model, soundness-checked
        // against dynamic SC-equivalence of the cell: Robust must imply
        // SC-equal traces (the converse may fail — the certifier is
        // conservative, e.g. LB under TSO flags the store escaping to
        // the print even though TSO alone cannot realize the wedge).
        auto Ctxs = analysis::robustContexts(P);
        const auto *L =
            dynamic_cast<const x86::X86Lang *>(P.modules()[0].Lang.get());
        auto It = Ctxs.find(P.modules()[0].Name);
        analysis::RobustReport Rep = analysis::robustness(
            L->module(), It == Ctxs.end() ? nullptr : &It->second, M);
        bool ScEqual =
            Tr == preemptiveTraces(workload::litmus(S.Name, MemModel::SC,
                                                    Fenced),
                                   BaseOpts);
        if (Rep.robust() && !ScEqual) {
          std::printf("ERROR: %s under %s fenced=%d: certified Robust "
                      "but the trace set differs from SC — unsound "
                      "certificate\n",
                      S.Name, memModelName(M), Fenced ? 1 : 0);
          Good = false;
        }

        T.addRow({S.Name, memModelName(M), benchtable::yesNo(Fenced),
                  S.Weak.empty() ? "n/a" : benchtable::yesNo(WeakSeen),
                  analysis::robustVerdictName(Rep.Verdict),
                  std::to_string(St.States), benchtable::fmtMs(Tm.ms())});
        Log.add("litmus_matrix",
                "{\"litmus\":" + benchtable::jsonStr(S.Name) +
                    ",\"model\":" +
                    benchtable::jsonStr(memModelName(M)) +
                    ",\"fenced\":" + (Fenced ? "true" : "false") +
                    ",\"weak\":" + (WeakSeen ? "true" : "false") +
                    ",\"verdict\":" +
                    benchtable::jsonStr(
                        analysis::robustVerdictName(Rep.Verdict)) +
                    ",\"trace_hash\":" +
                    benchtable::jsonStr(traceSetHash(Tr)) +
                    ",\"stats\":" + St.toJson() + "}");
      }
    }
    // The N-model inclusion gate (needs the full sweep).
    if (Models.size() == 3) {
      const TraceSet &Sc = Cells.at({static_cast<int>(MemModel::SC), false});
      const TraceSet &Tso =
          Cells.at({static_cast<int>(MemModel::TSO), false});
      const TraceSet &Rlx =
          Cells.at({static_cast<int>(MemModel::Relaxed), false});
      if (!Sc.subsetOf(Tso) || !Tso.subsetOf(Rlx)) {
        std::printf("ERROR: %s: SC ⊆ TSO ⊆ Relaxed inclusion broken\n",
                    S.Name);
        Good = false;
      }
      const TraceSet &FSc = Cells.at({static_cast<int>(MemModel::SC), true});
      if (!(FSc == Cells.at({static_cast<int>(MemModel::TSO), true})) ||
          !(FSc == Cells.at({static_cast<int>(MemModel::Relaxed), true}))) {
        std::printf("ERROR: %s: fenced siblings differ across models\n",
                    S.Name);
        Good = false;
      }
    }
  }
  T.print();
  std::printf("\neach weaker model only adds behaviours; a Robust verdict "
              "must imply dynamic SC-equality per cell (hard gates).\n");
  return Good;
}

/// The heterogeneous-model gate: one linked program holding an SC Clight
/// observer, the SB pair as an x86-TSO module, and the LB pair as an
/// x86-Relaxed module. POR-on and POR-off explorations must produce
/// bit-identical trace sets (both modes run regardless of --no-por —
/// this is the soundness gate for cross-model independence), both weak
/// wedges must appear unfenced and vanish after the repair pipeline, and
/// repair must land every module on SC.
bool benchMixedModel(benchtable::JsonLog &Log) {
  std::printf("\nmixed-model program: SC Clight + x86-TSO SB + x86-Relaxed "
              "LB (POR-on/off bit-identical, hard gate)\n\n");
  benchtable::Table T({"variant", "por states", "full states", "identical",
                       "sb wedge", "lb wedge", "repaired", "switched",
                       "ms"});
  bool Good = true;
  for (bool Fenced : {false, true}) {
    benchtable::Timer Tm;
    Program P1 = workload::mixedModelProgram(Fenced);
    ExploreOptions PorOpts = BaseOpts;
    PorOpts.Por = PorMode::On;
    ExploreStats S1;
    TraceSet Por = preemptiveTraces(P1, PorOpts, &S1);
    Program P2 = workload::mixedModelProgram(Fenced);
    ExploreOptions FullOpts = BaseOpts;
    FullOpts.Por = PorMode::Off;
    ExploreStats S2;
    TraceSet Full = preemptiveTraces(P2, FullOpts, &S2);
    const bool Identical = Por == Full;
    const bool SbWedge = someTraceContains(Por, {100, 200});
    const bool LbWedge = someTraceContains(Por, {11, 21});

    // Declared models must survive linking, and each x86 module is
    // judged under its own model.
    analysis::ProgramRobustReport Rep = analysis::programRobustness(P1);
    std::string VerdictsJson = "[";
    for (std::size_t I = 0; I < Rep.Modules.size(); ++I)
      VerdictsJson +=
          std::string(I ? "," : "") + "{\"module\":" +
          benchtable::jsonStr(Rep.Modules[I].Name) + ",\"model\":" +
          benchtable::jsonStr(memModelName(Rep.Modules[I].Model)) +
          ",\"verdict\":" +
          benchtable::jsonStr(analysis::robustVerdictName(
              Rep.Modules[I].Report.Verdict)) +
          "}";
    VerdictsJson += "]";

    // Repair the weak modules under their own models; everything must
    // land on SC and the wedges must be gone.
    Program P3 = workload::mixedModelProgram(Fenced);
    analysis::ProgramRepairReport RepairRep;
    unsigned Switched = analysis::repairAndApplyScFastPath(P3, &RepairRep);
    bool AllSc = true;
    for (const ModuleDecl &D : P3.modules())
      AllSc = AllSc && D.Lang->memModel() == MemModel::SC;
    TraceSet Repaired = preemptiveTraces(P3, PorOpts);
    const bool WedgesGone = !someTraceContains(Repaired, {100, 200}) &&
                            !someTraceContains(Repaired, {11, 21});

    Good = Good && Identical && SbWedge == !Fenced && LbWedge == !Fenced &&
           RepairRep.ModulesRepaired == (Fenced ? 0u : 2u) &&
           Switched == 2 && AllSc && WedgesGone && S1.States <= S2.States;
    T.addRow({Fenced ? "fenced" : "unfenced", std::to_string(S1.States),
              std::to_string(S2.States), benchtable::yesNo(Identical),
              benchtable::yesNo(SbWedge), benchtable::yesNo(LbWedge),
              std::to_string(RepairRep.ModulesRepaired),
              std::to_string(Switched), benchtable::fmtMs(Tm.ms())});
    Log.add("mixed_model",
            "{\"variant\":" +
                benchtable::jsonStr(Fenced ? "fenced" : "unfenced") +
                ",\"identical\":" + (Identical ? "true" : "false") +
                ",\"sb_wedge\":" + (SbWedge ? "true" : "false") +
                ",\"lb_wedge\":" + (LbWedge ? "true" : "false") +
                ",\"verdicts\":" + VerdictsJson +
                ",\"repaired\":" +
                std::to_string(RepairRep.ModulesRepaired) +
                ",\"switched\":" + std::to_string(Switched) +
                ",\"trace_hash\":" +
                benchtable::jsonStr(traceSetHash(Por)) +
                ",\"por\":" + S1.toJson() + ",\"full\":" + S2.toJson() +
                "}");
  }
  T.print();
  std::printf("\nfive threads, three memory models, one linker: the "
              "reduction must stay exact when store-buffer, pending-load "
              "and SC steps mix.\n");
  return Good;
}

/// Static robustness verdicts over the x86 workloads, each cross-checked
/// against dynamic TSO-vs-SC trace equivalence: Robust must imply equal
/// trace sets; for concrete NotRobust litmuses the models must differ.
/// MP certifies Robust since the store-order-aware criterion (the FIFO
/// cover rule), and the same-module-summary / points-to workloads pin
/// the other two precision upgrades. Any divergence between a Robust
/// verdict and the dynamic trace sets is a hard failure — a certifier
/// regression must fail CI, not print a table.
bool benchVerdicts(benchtable::JsonLog &Log, bool PiLockRefines) {
  std::printf("\nStatic TSO robustness verdicts (cross-checked against "
              "dynamic TSO-vs-SC equivalence)\n\n");
  struct Row {
    const char *Name;
    std::function<Program(x86::MemModel)> Make;
    analysis::RobustVerdict Expect;
    /// nullopt: no dynamic expectation (conservative verdict).
    std::optional<bool> ExpectEquiv;
  };
  const Row Rows[] = {
      {"SB",
       [](x86::MemModel M) { return workload::sbLitmus(M, false); },
       analysis::RobustVerdict::NotRobust, false},
      {"SB+mfence",
       [](x86::MemModel M) { return workload::sbLitmus(M, true); },
       analysis::RobustVerdict::Robust, true},
      {"MP",
       [](x86::MemModel M) { return workload::mpLitmus(M); },
       analysis::RobustVerdict::Robust, true},
      {"MP+readback",
       [](x86::MemModel M) { return workload::mpPublishReadback(M); },
       analysis::RobustVerdict::Robust, true},
      {"lock-then-publish",
       [](x86::MemModel M) { return workload::lockThenPublish(M); },
       analysis::RobustVerdict::Robust, true},
      {"pointer-chain",
       [](x86::MemModel M) { return workload::pointerChainClient(M); },
       analysis::RobustVerdict::Robust, true},
      {"ping-pong r=2",
       [](x86::MemModel M) { return workload::fencedPingPong(M, 2); },
       analysis::RobustVerdict::Robust, true},
      {"counter+pi_lock",
       [](x86::MemModel M) {
         return workload::asmCounterWithPiLock(M, 2);
       },
       analysis::RobustVerdict::NotRobust, std::nullopt},
      {"counter+pi_lock_f",
       [](x86::MemModel M) {
         return workload::asmCounterWithPiLockFenced(M, 2);
       },
       analysis::RobustVerdict::Robust, true},
  };
  benchtable::Table T({"workload", "module", "verdict", "witnesses",
                       "fence certs", "tso=sc traces", "allowed"});
  bool Good = true;
  for (const Row &R : Rows) {
    Program P = R.Make(x86::MemModel::TSO);
    analysis::ProgramRobustReport Rep = analysis::programRobustness(P);

    bool Equiv = preemptiveTraces(P, BaseOpts) ==
                 preemptiveTraces(R.Make(x86::MemModel::SC), BaseOpts);
    if (R.ExpectEquiv)
      Good = Good && Equiv == *R.ExpectEquiv;

    for (analysis::ModuleRobustInfo &M : Rep.Modules) {
      // The flagged-but-allowed state: pi_lock's NotRobust release store
      // is admitted because Lemma 16's refinement covers it.
      if (M.Name == "lockimpl" && !M.Report.robust())
        M.AllowedByRefinement = PiLockRefines;
      bool MatchesExpectation =
          M.Name == "lockimpl"
              ? true // the lock module's verdict is checked via pi_lock rows
              : M.Report.Verdict == R.Expect;
      // Soundness cross-check: a Robust verdict must imply dynamic
      // equivalence of the whole program whenever every module is Robust.
      // A divergence here is a certifier regression — hard failure.
      if (Rep.allRobust() && !Equiv) {
        std::printf("ERROR: workload '%s': every module certified Robust "
                    "but the TSO and SC trace sets differ — unsound "
                    "certificate\n",
                    R.Name);
        Good = false;
      }
      Good = Good && MatchesExpectation;
      std::string Allowed = M.Report.robust()
                                ? "n/a"
                                : (M.AllowedByRefinement ? "by refinement"
                                                         : "no");
      T.addRow({R.Name, M.Name,
                analysis::robustVerdictName(M.Report.Verdict),
                std::to_string(M.Report.Witnesses.size()),
                std::to_string(M.Report.Certificates.size()),
                benchtable::yesNo(Equiv), Allowed});
      Log.add("robustness",
              "{\"workload\":" + benchtable::jsonStr(R.Name) +
                  ",\"module\":" + benchtable::jsonStr(M.Name) +
                  ",\"verdict\":" +
                  benchtable::jsonStr(
                      analysis::robustVerdictName(M.Report.Verdict)) +
                  ",\"witnesses\":" +
                  std::to_string(M.Report.Witnesses.size()) +
                  ",\"certs\":" +
                  std::to_string(M.Report.Certificates.size()) +
                  ",\"tso_eq_sc\":" + (Equiv ? "true" : "false") + "}");
    }

    // pi_lock acceptance check: the witness names the unfenced release
    // store escaping at the module boundary.
    if (std::string(R.Name) == "counter+pi_lock") {
      bool Named = false;
      for (const analysis::ModuleRobustInfo &M : Rep.Modules)
        if (M.Name == "lockimpl")
          for (const analysis::TriangularWitness &W : M.Report.Witnesses)
            Named = Named || (W.Store.Entry == "unlock" &&
                              W.Store.Global == "L" && W.Escape);
      Good = Good && Named;
    }
  }
  T.print();
  std::printf("\npi_lock stays NotRobust (its release store escapes "
              "unfenced) but is allowed: Lemma 16's refinement covers the "
              "weak behaviour.\n");
  return Good;
}

/// The SC fast path: certified-Robust TSO modules re-run under
/// MemModel::SC. The trace sets must be bit-identical; the explored
/// state space and wall time shrink (EXPERIMENTS.md E3c).
bool benchScFastPath(benchtable::JsonLog &Log) {
  std::printf("\nSC fast path on certified-Robust modules (identical "
              "traces required)\n\n");
  struct Row {
    const char *Name;
    std::function<Program()> Make;
  };
  const Row Rows[] = {
      {"SB+mfence",
       [] { return workload::sbLitmus(x86::MemModel::TSO, true); }},
      {"MP",
       [] { return workload::mpLitmus(x86::MemModel::TSO); }},
      {"MP+readback",
       [] { return workload::mpPublishReadback(x86::MemModel::TSO); }},
      {"lock-then-publish",
       [] { return workload::lockThenPublish(x86::MemModel::TSO); }},
      {"pointer-chain",
       [] { return workload::pointerChainClient(x86::MemModel::TSO); }},
      {"ping-pong r=2",
       [] { return workload::fencedPingPong(x86::MemModel::TSO, 2); }},
      {"ping-pong r=3",
       [] { return workload::fencedPingPong(x86::MemModel::TSO, 3); }},
      {"counter+pi_lock_f",
       [] {
         return workload::asmCounterWithPiLockFenced(x86::MemModel::TSO, 2);
       }},
  };
  benchtable::Table T({"workload", "switched", "tso states", "tso ms",
                       "sc states", "sc ms", "state reduction",
                       "identical traces"});
  bool Good = true;
  for (const Row &R : Rows) {
    Program Tso = R.Make();
    benchtable::Timer T1;
    ExploreStats S1;
    TraceSet TsoTraces = preemptiveTraces(Tso, BaseOpts, &S1);
    double TsoMs = T1.ms();

    Program Sc = R.Make();
    benchtable::Timer T2;
    analysis::ProgramRobustReport Rep = analysis::programRobustness(Sc);
    unsigned Switched = analysis::switchRobustToSc(Sc, Rep);
    ExploreStats S2;
    TraceSet ScTraces = preemptiveTraces(Sc, BaseOpts, &S2);
    double ScMs = T2.ms();

    bool Identical = TsoTraces == ScTraces;
    Good = Good && Identical && Switched > 0 && S2.States <= S1.States;
    double Reduction =
        S2.States ? static_cast<double>(S1.States) /
                        static_cast<double>(S2.States)
                  : 0.0;
    char RedBuf[32];
    std::snprintf(RedBuf, sizeof(RedBuf), "%.2fx", Reduction);
    T.addRow({R.Name, std::to_string(Switched),
              std::to_string(S1.States), benchtable::fmtMs(TsoMs),
              std::to_string(S2.States), benchtable::fmtMs(ScMs), RedBuf,
              benchtable::yesNo(Identical)});
    Log.add("sc_fast_path",
            "{\"workload\":" + benchtable::jsonStr(R.Name) +
                ",\"switched\":" + std::to_string(Switched) +
                ",\"tso_ms\":" + std::to_string(TsoMs) +
                ",\"sc_ms\":" + std::to_string(ScMs) +
                ",\"identical\":" + (Identical ? "true" : "false") +
                ",\"tso\":" + S1.toJson() + ",\"sc\":" + S2.toJson() + "}");
  }
  T.print();
  std::printf("\nthe 'sc states' column is what the explorer actually "
              "visits once the robustness certificate retires the store "
              "buffers.\n");
  return Good;
}

/// Fence synthesis: repair the seed NotRobust workloads, verify
/// minimality by single-fence-removal re-analysis, hard-fail unless the
/// repaired program's TSO and SC trace sets coincide, and report the SC
/// fast-path state reduction the repair unlocks (EXPERIMENTS.md E3d).
bool benchFenceSynth(benchtable::JsonLog &Log) {
  std::printf("\nfence synthesis: repairing the NotRobust workloads under "
              "their declared models (minimality + model-vs-SC "
              "cross-check hard-fail)\n\n");
  struct Row {
    const char *Name;
    std::function<Program()> Make;
    unsigned HandFences; ///< Fence count of the hand-fenced reference.
  };
  const Row Rows[] = {
      {"pingpong-unf r=2",
       [] { return workload::unfencedPingPong(x86::MemModel::TSO, 2); }, 2},
      {"pingpong-unf r=3",
       [] { return workload::unfencedPingPong(x86::MemModel::TSO, 3); }, 2},
      {"counter+pi_lock",
       [] { return workload::asmCounterWithPiLock(x86::MemModel::TSO, 2); },
       2},
      {"counter+rec_lock-unf",
       [] {
         return workload::asmCounterWithRecLockUnfenced(x86::MemModel::TSO,
                                                        2);
       },
       2},
      // The Relaxed repairs: the load axis is NotRobust here, and the
      // same mfence placements (full barriers on both axes) repair it.
      // Hand references: the fenced litmus siblings.
      {"SB relaxed",
       [] { return workload::litmus("SB", MemModel::Relaxed, false); }, 2},
      {"LB relaxed",
       [] { return workload::litmus("LB", MemModel::Relaxed, false); }, 4},
      {"IRIW relaxed",
       [] { return workload::litmus("IRIW", MemModel::Relaxed, false); },
       2},
  };
  benchtable::Table T({"workload", "fences", "hand", "repaired robust",
                       "minimal", "tso states", "sc states",
                       "state reduction", "tso=sc traces"});
  bool Good = true;
  for (const Row &R : Rows) {
    // Repair a fresh instance, keeping the original modules + contexts
    // for the minimality re-analysis.
    Program Tso = R.Make();
    std::map<std::string, analysis::RobustContext> Ctxs =
        analysis::robustContexts(Tso);
    std::map<std::string, std::shared_ptr<const x86::Module>> Originals;
    std::map<std::string, MemModel> Declared;
    for (const ModuleDecl &D : Tso.modules())
      if (const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get())) {
        Originals[D.Name] = L->modulePtr();
        Declared[D.Name] = L->memModel();
      }
    analysis::ProgramRepairReport Rep = analysis::repairRobustness(Tso);
    bool AllRepaired =
        Rep.allRepaired() && Rep.ModulesRepaired == Rep.Modules.size() &&
        Rep.ModulesRepaired > 0;
    bool AfterRobust = analysis::programRobustness(Tso).allRobust();

    bool Minimal = true;
    for (const analysis::ProgramRepairReport::ModuleRepair &M :
         Rep.Modules) {
      auto It = Ctxs.find(M.Name);
      std::string Why;
      Minimal = Minimal &&
                analysis::verifyFenceMinimality(
                    *Originals.at(M.Name),
                    It == Ctxs.end() ? nullptr : &It->second, M.Synth, &Why,
                    Declared.at(M.Name));
      if (!Why.empty())
        std::printf("  minimality FAILED for %s/%s: %s\n", R.Name,
                    M.Name.c_str(), Why.c_str());
    }

    // Dynamic cross-check on the repaired program: the declared (weak)
    // model vs the SC fast path must produce identical trace sets.
    ExploreStats S1;
    TraceSet TsoTraces = preemptiveTraces(Tso, BaseOpts, &S1);
    Program Sc = R.Make();
    unsigned Switched = analysis::repairAndApplyScFastPath(Sc);
    ExploreStats S2;
    TraceSet ScTraces = preemptiveTraces(Sc, BaseOpts, &S2);
    bool Identical = TsoTraces == ScTraces;

    Good = Good && AllRepaired && AfterRobust && Minimal && Identical &&
           Switched > 0 && Rep.FencesInserted <= R.HandFences &&
           S2.States <= S1.States;
    double Reduction = S2.States ? static_cast<double>(S1.States) /
                                       static_cast<double>(S2.States)
                                 : 0.0;
    char RedBuf[32];
    std::snprintf(RedBuf, sizeof(RedBuf), "%.2fx", Reduction);
    T.addRow({R.Name, std::to_string(Rep.FencesInserted),
              std::to_string(R.HandFences), benchtable::yesNo(AfterRobust),
              benchtable::yesNo(Minimal), std::to_string(S1.States),
              std::to_string(S2.States), RedBuf,
              benchtable::yesNo(Identical)});

    std::string ModulesJson = "[";
    for (std::size_t I = 0; I < Rep.Modules.size(); ++I) {
      const auto &M = Rep.Modules[I];
      ModulesJson +=
          std::string(I ? "," : "") + "{\"module\":" +
          benchtable::jsonStr(M.Name) + ",\"fences\":" +
          std::to_string(M.Synth.Fences.size()) + ",\"repaired_verdict\":" +
          benchtable::jsonStr(
              analysis::robustVerdictName(M.Synth.After.Verdict)) +
          "}";
    }
    ModulesJson += "]";
    Log.add("fence_synth",
            "{\"workload\":" + benchtable::jsonStr(R.Name) +
                ",\"fences_inserted\":" + std::to_string(Rep.FencesInserted) +
                ",\"hand_fences\":" + std::to_string(R.HandFences) +
                ",\"modules\":" + ModulesJson +
                ",\"minimal\":" + (Minimal ? "true" : "false") +
                ",\"identical\":" + (Identical ? "true" : "false") +
                ",\"switched\":" + std::to_string(Switched) +
                ",\"trace_hash\":" +
                benchtable::jsonStr(traceSetHash(TsoTraces)) +
                ",\"tso\":" + S1.toJson() + ",\"sc\":" + S2.toJson() + "}");
  }
  T.print();
  std::printf("\nformerly NotRobust workloads now certify Robust and "
              "collect the SC fast-path reduction; 'fences <= hand' and "
              "trace equality are hard gates.\n");
  return Good;
}

} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (!Flags.Por)
    BaseOpts.Por = PorMode::Off;
  const std::vector<MemModel> Models =
      Flags.Model ? std::vector<MemModel>{*Flags.Model}
                  : std::vector<MemModel>{MemModel::SC, MemModel::TSO,
                                          MemModel::Relaxed};
  benchtable::JsonLog Log;
  bool AllGood = true;

  AllGood = benchFig10(Log) && AllGood;

  bool PiLockRefines = false;
  AllGood = benchLemma16(Log, PiLockRefines) && AllGood;

  AllGood = benchLitmusMatrix(Log, Models) && AllGood;
  AllGood = benchMixedModel(Log) && AllGood;
  AllGood = benchVerdicts(Log, PiLockRefines) && AllGood;
  AllGood = benchScFastPath(Log) && AllGood;
  if (Flags.FenceSynth)
    AllGood = benchFenceSynth(Log) && AllGood;
  else
    std::printf("\nfence synthesis skipped (--no-fence-synth)\n");

  if (!Log.write("BENCH_tso.json"))
    std::printf("\nwarning: could not write BENCH_tso.json\n");
  else
    std::printf("\nmachine-readable stats written to BENCH_tso.json\n");

  std::printf("\nresult: %s\n", AllGood ? "PASS" : "FAIL");
  return AllGood ? 0 : 1;
}
