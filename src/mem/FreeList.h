//===- mem/FreeList.h - Per-thread allocation regions -----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free lists (paper: F in FList, Sec. 3.1). A free list is conceptually an
/// infinite set of addresses reserved for a module's local allocations
/// (stack frames). We model a free list as a contiguous address region;
/// disjointness of different threads' (and frames') free lists is by
/// construction, which is exactly the property the paper's memory model
/// needs so that allocation in one thread does not affect others (Sec. 2.3).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_FREELIST_H
#define CASCC_MEM_FREELIST_H

#include "mem/Addr.h"

#include <cassert>

namespace ccc {

/// A contiguous region of addresses reserved for local allocation.
class FreeList {
public:
  FreeList() : Base(0), Size(0) {}
  FreeList(Addr Base, uint32_t Size) : Base(Base), Size(Size) {}

  Addr base() const { return Base; }
  uint32_t size() const { return Size; }
  bool valid() const { return Size != 0; }

  /// Returns the \p I-th address of this free list.
  Addr at(uint32_t I) const {
    assert(I < Size && "free list exhausted");
    return Base + I;
  }

  bool contains(Addr A) const { return A >= Base && A < Base + Size; }

  /// Returns true if this free list and \p Other overlap.
  bool overlaps(const FreeList &Other) const {
    if (!valid() || !Other.valid())
      return false;
    return Base < Other.Base + Other.Size && Other.Base < Base + Size;
  }

  /// Splits off a sub-region of \p SubSize addresses starting at offset
  /// \p Offset. Used to hand each stack frame of a thread its own disjoint
  /// free list (paper footnote 5: the thread pool maps each thread to a
  /// stack of (tl, F, kappa) triples).
  FreeList subRegion(uint32_t Offset, uint32_t SubSize) const {
    assert(Offset + SubSize <= Size && "sub-region out of range");
    return FreeList(Base + Offset, SubSize);
  }

  bool operator==(const FreeList &Other) const {
    return Base == Other.Base && Size == Other.Size;
  }

private:
  Addr Base;
  uint32_t Size;
};

} // namespace ccc

#endif // CASCC_MEM_FREELIST_H
