#!/usr/bin/env python3
"""Gate bytes_per_state across the BENCH_*.json files the bench binaries emit.

Accepts any number of bench JSON files in one invocation and reports
*every* family violating a bar across all of them before exiting
nonzero — one run, one complete report, instead of stopping at the
first failing file.

Gated sections (a file must carry at least one):

- por_cross_check (bench_drf): full ExploreStats for the POR-off
  "full" and POR-on "por" run of every workload family;
- sc_fast_path and fence_synth (bench_tso): ExploreStats for the
  "tso" baseline run and the "sc" fast-path run of every workload, so
  the TSO path sits under the same memory gate as the DRF families;
- serve (ccc_serve): the ExploreStats embedded in each explore-check
  verdict record, gating the .ccc corpus server runs.

Two hard-failing checks over every (family, run) pair:

1. Absolute bar: every *counter family* (family name contains locked/
   racy/atomic — the lockedCounter/racyCounter/atomicCounter workload
   generators) must stay under MAX_COUNTER_BYTES bytes per state. The
   intern store's capacity accounting has a small fixed floor (slab
   chunks and minimum table sizes across the 16 shards, ~tens of KiB),
   so the bar is only meaningful once enough states amortize it; runs
   below MIN_STATES are exempt from the absolute bar (the relative
   check still covers them).
2. Relative bar: no family's bytes_per_state may regress more than
   ALLOWED_REGRESSION above the committed baseline
   (tools/bench_memory_baseline.json). Families absent from the
   baseline are reported but do not fail, so adding a workload does not
   break CI; refresh the baseline with --update-baseline (measurements
   from the given files are merged over the existing baseline, so a
   partial update does not drop the other binaries' families).

Also asserts the accounting coherence invariant on every entry:
state_bytes == table_bytes + rec_bytes + arena_capacity_bytes and
arena_live_bytes <= arena_capacity_bytes.

Usage:
  check_bench_memory.py BENCH_drf.json [BENCH_tso.json ...]
                        [--baseline FILE] [--update-baseline]
"""

import json
import os
import sys

MAX_COUNTER_BYTES = 100.0
MIN_STATES = 2000
ALLOWED_REGRESSION = 0.10
COUNTER_MARKERS = ("locked", "racy", "atomic")
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "bench_memory_baseline.json"
)


def is_counter_family(name):
    return any(m in name for m in COUNTER_MARKERS)


def check_coherence(family, run, stats, errors):
    parts = (
        stats["table_bytes"] + stats["rec_bytes"] + stats["arena_capacity_bytes"]
    )
    if stats["state_bytes"] != parts:
        errors.append(
            f"{family} [{run}]: state_bytes {stats['state_bytes']} != "
            f"table+rec+arena {parts} (accounting incoherent)"
        )
    if stats["arena_live_bytes"] > stats["arena_capacity_bytes"]:
        errors.append(
            f"{family} [{run}]: arena_live_bytes "
            f"{stats['arena_live_bytes']} > arena_capacity_bytes "
            f"{stats['arena_capacity_bytes']}"
        )


def gated_runs(bench):
    """Yields (family, run, stats) for every gated entry of one file."""
    for e in bench.get("por_cross_check", []):
        for run in ("full", "por"):
            yield e["family"], run, e[run]
    for section in ("sc_fast_path", "fence_synth"):
        for e in bench.get(section, []):
            for run in ("tso", "sc"):
                if run in e:
                    # Unlike por_cross_check, the same (workload, run) is
                    # emitted by both the POR-on and POR-off bench
                    # invocation with genuinely different amortization, so
                    # the POR mode must be part of the baseline key.
                    mode = "por" if e[run].get("por_enabled") else "full"
                    yield e["workload"], f"{run}/{mode}", e[run]
    for e in bench.get("litmus_matrix", []):
        # One stats block per cell; the POR-on and POR-off invocation emit
        # the same cell, so the mode goes into the key like fence_synth.
        mode = "por" if e["stats"].get("por_enabled") else "full"
        fencing = "fenced" if e["fenced"] else "plain"
        yield f"litmus {e['litmus']} {e['model']} {fencing}", mode, e["stats"]
    for e in bench.get("mixed_model", []):
        # Both modes run in every invocation (the POR exactness gate), so
        # both stats blocks are always present.
        yield f"mixed {e['variant']}", "por", e["por"]
        yield f"mixed {e['variant']}", "full", e["full"]
    for e in bench.get("serve", []):
        # ccc_serve explore checks embed full ExploreStats, so server
        # runs over the .ccc corpus sit under the same memory gate as
        # the hand-coded generator families. Other check kinds carry no
        # stats block and are skipped.
        if "explore" in e:
            mode = "por" if e["explore"].get("por_enabled") else "full"
            yield f"serve {e['job']}", mode, e["explore"]


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    update = "--update-baseline" in argv
    baseline_path = DEFAULT_BASELINE
    if "--baseline" in argv:
        baseline_path = argv[argv.index("--baseline") + 1]
    if not args:
        print(f"usage: {argv[0]} <BENCH_*.json>... [--baseline FILE]"
              " [--update-baseline]")
        return 2

    baseline = {}
    if os.path.exists(baseline_path):
        with open(baseline_path) as f:
            baseline = json.load(f)

    errors, notes, measured = [], [], {}
    for path in args:
        with open(path) as f:
            bench = json.load(f)
        runs = list(gated_runs(bench))
        if not runs:
            errors.append(f"{path}: no gated section"
                          " (por_cross_check/sc_fast_path/fence_synth/serve)")
            continue
        for family, run, stats in runs:
            check_coherence(family, run, stats, errors)
            bps = stats["bytes_per_state"]
            states = stats["states"]
            key = f"{family} [{run}]"
            measured[key] = bps
            if is_counter_family(family):
                if states >= MIN_STATES and bps > MAX_COUNTER_BYTES:
                    errors.append(
                        f"{key}: {bps:.1f} B/state > {MAX_COUNTER_BYTES:.0f} B"
                        f" bar ({states} states)"
                    )
                elif states < MIN_STATES:
                    notes.append(
                        f"{key}: {bps:.1f} B/state over {states} states"
                        f" (< {MIN_STATES}, absolute bar not applied)"
                    )
            if update:
                continue
            if key in baseline:
                allowed = baseline[key] * (1.0 + ALLOWED_REGRESSION)
                if bps > allowed and states >= MIN_STATES:
                    errors.append(
                        f"{key}: {bps:.1f} B/state regressed >"
                        f" {ALLOWED_REGRESSION:.0%} vs baseline"
                        f" {baseline[key]:.1f}"
                    )
            elif baseline:
                notes.append(f"{key}: not in baseline (new family?)")

    if update:
        merged = dict(baseline)
        merged.update(measured)
        with open(baseline_path, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {baseline_path} ({len(measured)} runs"
              f" measured, {len(merged)} total)")
        return 0

    for n in notes:
        print(f"note: {n}")
    if errors:
        print(f"FAIL: memory gate over {', '.join(args)}:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(
        f"OK: {', '.join(args)} — {len(measured)} runs within the"
        f" {MAX_COUNTER_BYTES:.0f} B counter bar and"
        f" {ALLOWED_REGRESSION:.0%} baseline envelope"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
