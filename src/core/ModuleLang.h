//===- core/ModuleLang.h - The abstract module language ---------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract module language (paper: tl = (Module, Core, InitCore, |->),
/// Fig. 4). A ModuleLang bundles a module's code with its footprint-
/// instrumented local transition relation: each step, given the module's
/// free list, current core and global memory, yields a set of successor
/// configurations labelled with a message and a footprint, or abort.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_MODULELANG_H
#define CASCC_CORE_MODULELANG_H

#include "core/Core.h"
#include "core/Msg.h"
#include "mem/Footprint.h"
#include "mem/FreeList.h"
#include "mem/GlobalEnv.h"
#include "mem/Mem.h"

#include <string>
#include <vector>

namespace ccc {

/// One module-local step: F |- (kappa, sigma) -iota/delta-> (kappa',sigma')
/// or abort (Fig. 4).
struct LocalStep {
  Msg M;
  Footprint FP;
  CoreRef Next;
  Mem NextMem;
  bool Abort = false;
  /// Diagnostic attached to abort steps.
  std::string AbortReason;

  static LocalStep abort(std::string Reason) {
    LocalStep S;
    S.Abort = true;
    S.AbortReason = std::move(Reason);
    return S;
  }
};

/// The abstract module language interface every concrete language
/// (CImp, Clight, the compiler IRs, x86-SC, x86-TSO) instantiates.
class ModuleLang {
public:
  virtual ~ModuleLang();

  /// The language's name ("Clight", "RTL", "x86-TSO", ...).
  virtual std::string name() const = 0;

  /// InitCore (Fig. 4): builds the initial core for entry \p Entry with
  /// arguments \p Args, or null if this module does not define the entry.
  virtual CoreRef initCore(const std::string &Entry,
                           const std::vector<Value> &Args) const = 0;

  /// The local transition relation: all successor configurations of
  /// (\p C, \p M) under free list \p F. An empty result means the core is
  /// stuck (the global semantics reports abort).
  virtual std::vector<LocalStep> step(const FreeList &F, const Core &C,
                                      const Mem &M) const = 0;

  /// Resumes a caller core after an external call returned \p V
  /// (Compositional CompCert's after-external).
  virtual CoreRef applyReturn(const Core &C, const Value &V) const = 0;

  /// Binds the module's resolved global environment after linking.
  void bindGlobals(const GlobalEnv *GE) { Globals = GE; }
  const GlobalEnv *globals() const { return Globals; }

  /// Resolves a global name to its linked address; asserts on failure.
  Addr globalAddr(const std::string &Name) const;

protected:
  ModuleLang() = default;
  const GlobalEnv *Globals = nullptr;
};

} // namespace ccc

#endif // CASCC_CORE_MODULELANG_H
