//===- examples/spinlock_tso.cpp - Confined benign races on x86-TSO --------===//
//
// The paper's headline extension (Sec. 7.3): linking compiled clients
// with the hand-written TTAS spin lock of Fig. 10(b), whose unfenced spin
// read and releasing store race benignly — and showing that under
// x86-TSO the whole program still refines the program that uses the
// abstract lock specification under SC (the strengthened DRF guarantee,
// Lemma 16).
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace ccc;

int main() {
  std::printf("The Fig. 10(b) TTAS spin lock on x86-TSO\n");
  std::printf("=========================================\n\n");
  std::printf("lock implementation (pi_lock):\n%s\n",
              sync::piLockSource().c_str());

  // The implementation program: assembly clients + pi_lock, both under
  // the TSO semantics with per-thread store buffers.
  Program Impl = workload::asmCounterWithPiLock(x86::MemModel::TSO, 2);
  // The specification program: CImp clients + the atomic gamma_lock
  // specification, under SC.
  Program Spec = workload::lockedCounter(2, 1, 0);

  Explorer<World> E;
  E.build(World::load(Impl));
  std::printf("TSO exploration: %zu states\n", E.numStates());

  // The lock is racy — by design. The detector finds the races; all of
  // them touch only the object's own data (the lock word L): the paper's
  // *confined benign races*.
  auto Races = E.findRacesConfinedTo(Impl.objectAddrs());
  std::printf("races found in pi_lock: %zu\n", Races.size());
  bool AllConfined = true;
  for (const RaceWitness &W : Races) {
    std::printf("  threads %u/%u: %s vs %s  [%s]\n", W.T1, W.T2,
                W.FP1.FP.toString().c_str(), W.FP2.FP.toString().c_str(),
                W.Confined ? "confined to object data" : "NOT CONFINED");
    AllConfined = AllConfined && W.Confined;
  }

  // The strengthened DRF guarantee: the racy TSO implementation program
  // behaves like the DRF SC specification program (termination
  // insensitively — the spin loop may diverge under unfair schedules).
  TraceSet ImplTraces = E.traces();
  TraceSet SpecTraces = preemptiveTraces(Spec);
  RefineResult R =
      refinesTraces(ImplTraces, SpecTraces, /*TermInsensitive=*/true);
  std::printf("\nimpl (TSO) traces: %s\n", ImplTraces.toString().c_str());
  std::printf("spec (SC)  traces: %s\n", SpecTraces.toString().c_str());
  std::printf("\nP_tso(pi_lock) refines' P_sc(gamma_lock): %s\n",
              R.Holds ? "yes" : "no");

  // Contrast: a lock without the atomic instruction is simply broken.
  std::printf("\ncontrol experiment — remove the lock-prefixed cmpxchg:\n");
  Program Broken;
  x86::addAsmModule(Broken, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            call unlock
            printl %ebx
            retl
  )",
                    x86::MemModel::SC);
  x86::addAsmModule(Broken, "lockimpl", R"(
    .data L 1
    .entry lock 0 0
    .entry unlock 0 0
    lock:
    spin:
            movl L, %eax
            cmpl $0, %eax
            je spin
            movl $0, L
            retl
    unlock:
            movl $1, L
            retl
  )",
                    x86::MemModel::SC, /*ObjectMode=*/true);
  Broken.addThread("inc");
  Broken.addThread("inc");
  Broken.link();
  TraceSet BrokenTraces = preemptiveTraces(Broken);
  bool MutexBroken =
      BrokenTraces.contains(Trace{{0, 0}, TraceEnd::Done});
  std::printf("  both threads can print 0 (mutual exclusion broken): %s\n",
              MutexBroken ? "yes" : "no");

  bool Ok = AllConfined && R.Holds && MutexBroken && !Races.empty();
  std::printf("\n%s\n", Ok ? "All checks passed." : "CHECKS FAILED.");
  return Ok ? 0 : 1;
}
