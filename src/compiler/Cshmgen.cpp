//===- compiler/Cshmgen.cpp - Clight to C#minor ----------------------------===//

#include "compiler/Passes.h"

#include <cassert>
#include <map>

using namespace ccc;
using namespace ccc::compiler;

namespace {

struct FnCtx {
  const clight::Function *F = nullptr;
  std::map<std::string, unsigned> SlotOf;
  unsigned ScratchSlot = 0;
  bool NeedScratch = false;
  unsigned NumSlots = 0;
};

csharp::ExprPtr trExpr(const clight::Expr &E, const FnCtx &Ctx);

csharp::ExprPtr mkLoad(csharp::ExprPtr Addr) {
  auto L = std::make_unique<csharp::Expr>();
  L->K = csharp::Expr::Kind::Load;
  L->L = std::move(Addr);
  return L;
}

/// The address expression of variable \p Name: a frame slot if local,
/// otherwise the module global.
csharp::ExprPtr varAddr(const std::string &Name, const FnCtx &Ctx) {
  auto E = std::make_unique<csharp::Expr>();
  auto It = Ctx.SlotOf.find(Name);
  if (It != Ctx.SlotOf.end()) {
    E->K = csharp::Expr::Kind::AddrSlot;
    E->Slot = It->second;
  } else {
    E->K = csharp::Expr::Kind::AddrGlobal;
    E->Global = Name;
  }
  return E;
}

csharp::ExprPtr trExpr(const clight::Expr &E, const FnCtx &Ctx) {
  auto Out = std::make_unique<csharp::Expr>();
  switch (E.K) {
  case clight::Expr::Kind::IntLit:
    Out->K = csharp::Expr::Kind::Const;
    Out->IntVal = E.IntVal;
    return Out;
  case clight::Expr::Kind::Var:
    return mkLoad(varAddr(E.Name, Ctx));
  case clight::Expr::Kind::AddrOfGlobal:
    Out->K = csharp::Expr::Kind::AddrGlobal;
    Out->Global = E.Name;
    return Out;
  case clight::Expr::Kind::Un:
    if (E.U == clight::UnOp::Deref)
      return mkLoad(trExpr(*E.L, Ctx));
    Out->K = csharp::Expr::Kind::Un;
    Out->U = E.U;
    Out->L = trExpr(*E.L, Ctx);
    return Out;
  case clight::Expr::Kind::Bin:
    Out->K = csharp::Expr::Kind::Bin;
    Out->B = E.B;
    Out->L = trExpr(*E.L, Ctx);
    Out->R = trExpr(*E.R, Ctx);
    return Out;
  }
  return Out;
}

void trBlock(const clight::Block &In, csharp::Block &Out, FnCtx &Ctx);

csharp::StmtPtr mkStore(csharp::ExprPtr Addr, csharp::ExprPtr Val) {
  auto S = std::make_unique<csharp::Stmt>();
  S->K = csharp::Stmt::Kind::Store;
  S->E1 = std::move(Addr);
  S->E2 = std::move(Val);
  return S;
}

void trStmt(const clight::Stmt &St, csharp::Block &Out, FnCtx &Ctx) {
  using CK = clight::Stmt::Kind;
  switch (St.K) {
  case CK::Skip: {
    auto S = std::make_unique<csharp::Stmt>();
    S->K = csharp::Stmt::Kind::Skip;
    Out.push_back(std::move(S));
    break;
  }
  case CK::AssignVar:
    Out.push_back(mkStore(varAddr(St.Dst, Ctx), trExpr(*St.E1, Ctx)));
    break;
  case CK::AssignDeref:
    Out.push_back(mkStore(trExpr(*St.E1, Ctx), trExpr(*St.E2, Ctx)));
    break;
  case CK::If: {
    auto S = std::make_unique<csharp::Stmt>();
    S->K = csharp::Stmt::Kind::If;
    S->E1 = trExpr(*St.E1, Ctx);
    trBlock(St.Body, S->Body, Ctx);
    trBlock(St.Else, S->Else, Ctx);
    Out.push_back(std::move(S));
    break;
  }
  case CK::While: {
    auto S = std::make_unique<csharp::Stmt>();
    S->K = csharp::Stmt::Kind::While;
    S->E1 = trExpr(*St.E1, Ctx);
    trBlock(St.Body, S->Body, Ctx);
    Out.push_back(std::move(S));
    break;
  }
  case CK::Call: {
    auto S = std::make_unique<csharp::Stmt>();
    S->K = csharp::Stmt::Kind::Call;
    S->Callee = St.Callee;
    for (const auto &A : St.Args)
      S->Args.push_back(trExpr(*A, Ctx));
    if (!St.Dst.empty()) {
      auto It = Ctx.SlotOf.find(St.Dst);
      if (It != Ctx.SlotOf.end()) {
        S->HasDst = true;
        S->DstSlot = It->second;
        Out.push_back(std::move(S));
      } else {
        // Result goes to a global: route through the scratch slot.
        Ctx.NeedScratch = true;
        S->HasDst = true;
        S->DstSlot = Ctx.ScratchSlot;
        Out.push_back(std::move(S));
        auto Slot = std::make_unique<csharp::Expr>();
        Slot->K = csharp::Expr::Kind::AddrSlot;
        Slot->Slot = Ctx.ScratchSlot;
        auto G = std::make_unique<csharp::Expr>();
        G->K = csharp::Expr::Kind::AddrGlobal;
        G->Global = St.Dst;
        Out.push_back(mkStore(std::move(G), mkLoad(std::move(Slot))));
      }
    } else {
      Out.push_back(std::move(S));
    }
    break;
  }
  case CK::Return: {
    auto S = std::make_unique<csharp::Stmt>();
    S->K = csharp::Stmt::Kind::Return;
    if (St.E1)
      S->E1 = trExpr(*St.E1, Ctx);
    Out.push_back(std::move(S));
    break;
  }
  case CK::Print: {
    auto S = std::make_unique<csharp::Stmt>();
    S->K = csharp::Stmt::Kind::Print;
    S->E1 = trExpr(*St.E1, Ctx);
    Out.push_back(std::move(S));
    break;
  }
  }
}

void trBlock(const clight::Block &In, csharp::Block &Out, FnCtx &Ctx) {
  for (const auto &S : In)
    trStmt(*S, Out, Ctx);
}

} // namespace

std::shared_ptr<csharp::Module>
ccc::compiler::cshmgen(const clight::Module &M) {
  auto Out = std::make_shared<csharp::Module>();
  Out->Globals = M.Globals;
  for (const clight::Function &F : M.Funcs) {
    FnCtx Ctx;
    Ctx.F = &F;
    unsigned Slot = 0;
    for (const clight::VarDecl &P : F.Params)
      Ctx.SlotOf[P.Name] = Slot++;
    for (const clight::VarDecl &L : F.Locals)
      Ctx.SlotOf[L.Name] = Slot++;
    Ctx.ScratchSlot = Slot;
    Ctx.NumSlots = Slot;

    csharp::Function CF;
    CF.Name = F.Name;
    CF.RetVoid = F.RetTy == clight::Ty::Void;
    CF.NumParams = static_cast<unsigned>(F.Params.size());
    trBlock(F.Body, CF.Body, Ctx);
    CF.NumSlots = Ctx.NumSlots + (Ctx.NeedScratch ? 1 : 0);
    Out->Funcs.push_back(std::move(CF));
  }
  return Out;
}
