//===- core/BinResidue.h - Binary tree-compressed state store ---*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary residue encoding and the tree-compressed state store that
/// replaces the string-keyed intern path (DIVINE's ntreehashset shape):
///
///  - ResidueBuf: an append-only word buffer the World/ThreadState/Core
///    encoders emit fixed-width fields into. Nested components intern
///    their own word span as a subtree (subIntern) and contribute only
///    the resulting 32-bit node id to the enclosing encoding, so
///    near-identical states share every unchanged subtree.
///  - TreeStore: hash-consed recursive interning of word vectors into
///    binary tree nodes ((A,B,tag) triples) across 16 mutex-sharded
///    open-addressed tables. Two vectors receive the same root id iff
///    they are element-wise equal (see the injectivity note below), so
///    the Explorer's exact-verify step becomes two integer compares.
///  - StringInterner: residual strings (CImp register names, pending-ret
///    destinations, and the default Core::key() fallback) interned once
///    into a slab arena; encodings carry the 32-bit string id.
///
/// Injectivity invariant (the tree-node sharing invariant, DESIGN.md
/// §4h): node ids are hash-consed on the exact triple (tag, A, B), and
/// the split point of a vector of length N is determined by N alone
/// (mid = (N+1)/2). By induction, equal root ids imply equal tags at
/// every node, hence equal shapes, hence equal leaf sequences — and
/// unequal vectors differ in some leaf or in length (different shape),
/// so they can never hash-cons to the same root. Ids depend on arrival
/// order across threads, but only id *equality* is ever observed, and
/// the node *count* per explored state set is order-independent, which
/// keeps StateBytes deterministic across Threads values.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_BINRESIDUE_H
#define CASCC_CORE_BINRESIDUE_H

#include "core/StatePool.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace ccc {

/// One hash-consed tree node: leaves carry raw words, inner nodes carry
/// child node ids. The tag disambiguates, so a leaf word that happens to
/// equal a node id can never be confused with a child reference.
enum class TreeTag : uint8_t {
  Inner = 0, ///< A, B are node ids of the two halves.
  Leaf1 = 1, ///< A is the single word; B unused (0).
  Leaf2 = 2, ///< A, B are two consecutive words.
  Empty = 3, ///< The empty vector; A, B unused (0).
};

/// Hash-consed recursive tree interning of u32 vectors, 16-way sharded.
/// Node ids are dense per shard: id = (indexInShard << 4) | shard.
class TreeStore {
public:
  static constexpr unsigned NumShards = 16;

  /// Interns \p N words at \p V; equal spans get equal root ids.
  uint32_t internSpan(const uint32_t *V, std::size_t N) {
    if (N == 0)
      return node(TreeTag::Empty, 0, 0);
    if (N == 1)
      return node(TreeTag::Leaf1, V[0], 0);
    if (N == 2)
      return node(TreeTag::Leaf2, V[0], V[1]);
    std::size_t Mid = (N + 1) / 2;
    uint32_t A = internSpan(V, Mid);
    uint32_t B = internSpan(V + Mid, N - Mid);
    return node(TreeTag::Inner, A, B);
  }

  /// Reconstructs the word vector behind \p Root (tests and debugging;
  /// the engine itself never decodes).
  void decode(uint32_t Root, std::vector<uint32_t> &Out) const {
    const Shard &S = Shards[Root & (NumShards - 1)];
    std::size_t Idx = Root >> 4;
    uint64_t Packed = S.AB[Idx];
    uint32_t A = static_cast<uint32_t>(Packed >> 32);
    uint32_t B = static_cast<uint32_t>(Packed);
    switch (static_cast<TreeTag>(S.Tags[Idx])) {
    case TreeTag::Empty:
      return;
    case TreeTag::Leaf1:
      Out.push_back(A);
      return;
    case TreeTag::Leaf2:
      Out.push_back(A);
      Out.push_back(B);
      return;
    case TreeTag::Inner:
      decode(A, Out);
      decode(B, Out);
      return;
    }
  }

  std::size_t numNodes() const {
    std::size_t N = 0;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      N += S.AB.size();
    }
    return N;
  }

  /// Exact retained bytes: node slabs (capacity/live) plus the
  /// open-addressed tables.
  void accumStats(PoolStats &Arena, std::size_t &TableBytes) const {
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      PoolStats AB = S.AB.stats(), Tags = S.Tags.stats();
      Arena.CapacityBytes += AB.CapacityBytes + Tags.CapacityBytes;
      Arena.LiveBytes += AB.LiveBytes + Tags.LiveBytes;
      Arena.LiveObjects += AB.LiveObjects;
      TableBytes += S.Table.capacity() * sizeof(uint32_t);
    }
  }

private:
  struct Shard {
    mutable std::mutex Mu;
    /// Small slabs (512 nodes = 4 KiB + 512 B) keep capacity-accounted
    /// bytes honest on tiny explorations.
    SlabVector<uint64_t, 9> AB;  ///< (A << 32) | B per node.
    SlabVector<uint8_t, 9> Tags; ///< TreeTag per node.
    std::vector<uint32_t> Table; ///< Open-addressed: node index + 1.
    std::size_t Entries = 0;
  };

  static uint64_t mix64(uint64_t X) {
    // splitmix64 finalizer.
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  static uint64_t hashNode(TreeTag Tag, uint32_t A, uint32_t B) {
    return mix64((uint64_t(A) << 32 | B) + (uint64_t(Tag) << 56)) ^
           mix64(uint64_t(Tag) + 0x517cc1b727220a95ull);
  }

  uint32_t node(TreeTag Tag, uint32_t A, uint32_t B) {
    uint64_t H = hashNode(Tag, A, B);
    unsigned ShardIdx = H & (NumShards - 1);
    Shard &S = Shards[ShardIdx];
    uint64_t Packed = uint64_t(A) << 32 | B;
    std::lock_guard<std::mutex> Lock(S.Mu);
    growIfNeeded(S);
    std::size_t Mask = S.Table.size() - 1;
    std::size_t Slot = (H >> 4) & Mask;
    while (uint32_t E = S.Table[Slot]) {
      std::size_t Idx = E - 1;
      if (S.AB[Idx] == Packed && S.Tags[Idx] == uint8_t(Tag))
        return static_cast<uint32_t>(Idx << 4 | ShardIdx);
      Slot = (Slot + 1) & Mask;
    }
    std::size_t Idx = S.AB.size();
    assert(Idx < (std::size_t(1) << 28) && "tree shard full");
    S.AB.push_back(Packed);
    S.Tags.push_back(uint8_t(Tag));
    S.Table[Slot] = static_cast<uint32_t>(Idx + 1);
    ++S.Entries;
    return static_cast<uint32_t>(Idx << 4 | ShardIdx);
  }

  static void growIfNeeded(Shard &S) {
    if (S.Table.empty()) {
      S.Table.assign(256, 0);
      return;
    }
    if (S.Entries * 10 < S.Table.size() * 7)
      return;
    std::vector<uint32_t> Old = std::move(S.Table);
    S.Table.assign(Old.size() * 2, 0);
    std::size_t Mask = S.Table.size() - 1;
    for (uint32_t E : Old) {
      if (!E)
        continue;
      std::size_t Idx = E - 1;
      uint64_t Packed = S.AB[Idx];
      uint64_t H = hashNode(static_cast<TreeTag>(S.Tags[Idx]),
                            static_cast<uint32_t>(Packed >> 32),
                            static_cast<uint32_t>(Packed));
      std::size_t Slot = (H >> 4) & Mask;
      while (S.Table[Slot])
        Slot = (Slot + 1) & Mask;
      S.Table[Slot] = E;
    }
  }

  std::array<Shard, NumShards> Shards;
};

/// Interns strings into a slab arena; equal strings get equal u32 ids.
/// Hot encodings avoid strings entirely — this covers CImp register
/// names / pending-ret destinations and the default Core::key() fallback.
class StringInterner {
public:
  uint32_t intern(std::string_view S) {
    uint64_t H = fnv(S);
    std::lock_guard<std::mutex> Lock(Mu);
    growIfNeeded();
    std::size_t Mask = Table.size() - 1;
    std::size_t Slot = H & Mask;
    while (uint32_t E = Table[Slot]) {
      std::size_t Idx = E - 1;
      if (equals(Idx, S))
        return static_cast<uint32_t>(Idx);
      Slot = (Slot + 1) & Mask;
    }
    std::size_t Idx = Recs.size();
    Recs.push_back(Rec{Chars.size(), static_cast<uint32_t>(S.size())});
    for (char C : S)
      Chars.push_back(C);
    Table[Slot] = static_cast<uint32_t>(Idx + 1);
    return static_cast<uint32_t>(Idx);
  }

  /// Reconstructs string \p Id (tests and debugging only).
  std::string text(uint32_t Id) const {
    std::lock_guard<std::mutex> Lock(Mu);
    const Rec &R = Recs[Id];
    std::string S;
    S.reserve(R.Len);
    for (uint32_t I = 0; I < R.Len; ++I)
      S.push_back(Chars[R.Off + I]);
    return S;
  }

  void accumStats(PoolStats &Arena, std::size_t &TableBytes) const {
    std::lock_guard<std::mutex> Lock(Mu);
    PoolStats C = Chars.stats(), R = Recs.stats();
    Arena.CapacityBytes += C.CapacityBytes + R.CapacityBytes;
    Arena.LiveBytes += C.LiveBytes + R.LiveBytes;
    TableBytes += Table.capacity() * sizeof(uint32_t);
  }

private:
  struct Rec {
    std::size_t Off = 0;
    uint32_t Len = 0;
  };

  static uint64_t fnv(std::string_view S) {
    uint64_t H = 1469598103934665603ull;
    for (char C : S)
      H = (H ^ static_cast<uint8_t>(C)) * 1099511628211ull;
    return H;
  }

  bool equals(std::size_t Idx, std::string_view S) const {
    const Rec &R = Recs[Idx];
    if (R.Len != S.size())
      return false;
    for (uint32_t I = 0; I < R.Len; ++I)
      if (Chars[R.Off + I] != S[I])
        return false;
    return true;
  }

  void growIfNeeded() {
    if (Table.empty()) {
      Table.assign(256, 0);
      return;
    }
    if (Recs.size() * 10 < Table.size() * 7)
      return;
    std::vector<uint32_t> Old = std::move(Table);
    Table.assign(Old.size() * 2, 0);
    std::size_t Mask = Table.size() - 1;
    for (uint32_t E : Old) {
      if (!E)
        continue;
      const Rec &R = Recs[E - 1];
      uint64_t H = 1469598103934665603ull;
      for (uint32_t I = 0; I < R.Len; ++I)
        H = (H ^ static_cast<uint8_t>(Chars[R.Off + I])) * 1099511628211ull;
      std::size_t Slot = H & Mask;
      while (Table[Slot])
        Slot = (Slot + 1) & Mask;
      Table[Slot] = E;
    }
  }

  mutable std::mutex Mu;
  SlabVector<char, 10> Chars;
  SlabVector<Rec, 6> Recs;
  std::vector<uint32_t> Table;
};

/// Aggregated retained-byte accounting of one StateStore.
struct StoreStats {
  std::size_t TreeNodes = 0;
  std::size_t ArenaCapacityBytes = 0; ///< Node/string slabs as reserved.
  std::size_t ArenaLiveBytes = 0;     ///< Node/string bytes actually live.
  std::size_t TableBytes = 0;         ///< Internal open-addressed tables.
};

/// One exploration's tree + string store. Each store draws a distinct
/// epoch so the residue-id caches embedded in shared Core/Page objects
/// can tell which store their cached id belongs to (cores and pages
/// outlive and cross Explorer instances).
class StateStore {
public:
  StateStore() : Epoch(NextEpoch.fetch_add(1, std::memory_order_relaxed)) {}

  StateStore(const StateStore &) = delete;
  StateStore &operator=(const StateStore &) = delete;

  /// Packs node id \p Id into a cache word no other store ever matches.
  /// Never 0 (epochs start at 1), so 0 is the universal empty sentinel.
  uint64_t cacheWord(uint32_t Id) const {
    return (uint64_t(Epoch) << 32) | Id;
  }

  /// Decodes a cache word; false if it belongs to another store (or is
  /// the empty sentinel).
  bool cacheHit(uint64_t W, uint32_t &Id) const {
    if ((W >> 32) != Epoch)
      return false;
    Id = static_cast<uint32_t>(W);
    return true;
  }

  StoreStats stats() const {
    StoreStats S;
    PoolStats Arena;
    Tree.accumStats(Arena, S.TableBytes);
    S.TreeNodes = Arena.LiveObjects;
    Strings.accumStats(Arena, S.TableBytes);
    S.ArenaCapacityBytes = Arena.CapacityBytes;
    S.ArenaLiveBytes = Arena.LiveBytes;
    return S;
  }

  TreeStore Tree;
  StringInterner Strings;

private:
  uint32_t Epoch;
  static inline std::atomic<uint32_t> NextEpoch{1};
};

/// The word buffer an encoder emits into. One ResidueBuf lives per
/// worker thread and is reused across states; nested components intern
/// their span via subIntern and leave only a node id behind.
class ResidueBuf {
public:
  explicit ResidueBuf(StateStore &S) : Store(&S) {}

  StateStore &store() { return *Store; }

  void word(uint32_t W) { Words.push_back(W); }

  void word64(uint64_t W) {
    word(static_cast<uint32_t>(W));
    word(static_cast<uint32_t>(W >> 32));
  }

  void ptr(const void *P) {
    word64(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(P)));
  }

  /// Interns \p S and returns its id (the caller emits it with word()).
  uint32_t internString(std::string_view S) {
    return Store->Strings.intern(S);
  }

  /// Runs \p Fill, interns exactly the words it emitted as one subtree,
  /// and removes them from the buffer. Nests arbitrarily.
  template <typename F> uint32_t subIntern(F &&Fill) {
    std::size_t Start = Words.size();
    Fill();
    uint32_t Id = Store->Tree.internSpan(Words.data() + Start,
                                         Words.size() - Start);
    Words.resize(Start);
    return Id;
  }

  /// Interns the whole buffered encoding as the root and resets the
  /// buffer for the next state.
  uint32_t takeRoot() {
    uint32_t Id = Store->Tree.internSpan(Words.data(), Words.size());
    Words.clear();
    return Id;
  }

private:
  StateStore *Store;
  std::vector<uint32_t> Words;
};

} // namespace ccc

#endif // CASCC_CORE_BINRESIDUE_H
