//===- compiler/Selection.cpp - Cminor to CminorSel ------------------------===//

#include "compiler/Passes.h"

#include <cassert>

using namespace ccc;
using namespace ccc::compiler;
using ir::Cmp;
using ir::Oper;

namespace {

cminorsel::ExprPtr trExpr(const cminor::Expr &E);

cminorsel::ExprPtr mkOp(Oper O) {
  auto E = std::make_unique<cminorsel::Expr>();
  E->K = cminorsel::Expr::Kind::Op;
  E->O = O;
  return E;
}

cminorsel::ExprPtr mkOp1(Oper O, cminorsel::ExprPtr A) {
  auto E = mkOp(O);
  E->Args.push_back(std::move(A));
  return E;
}

cminorsel::ExprPtr mkOp2(Oper O, cminorsel::ExprPtr A,
                         cminorsel::ExprPtr B) {
  auto E = mkOp(O);
  E->Args.push_back(std::move(A));
  E->Args.push_back(std::move(B));
  return E;
}

bool isConst(const cminor::Expr &E, int32_t &Out) {
  if (E.K != cminor::Expr::Kind::Const)
    return false;
  Out = E.IntVal;
  return true;
}

/// log2 of a positive power of two, or -1.
int log2Exact(int32_t V) {
  if (V <= 0 || (V & (V - 1)) != 0)
    return -1;
  int K = 0;
  while ((1 << K) != V)
    ++K;
  return K;
}

std::optional<Cmp> cmpOfBinop(clight::BinOp B) {
  switch (B) {
  case clight::BinOp::Eq:
    return Cmp::Eq;
  case clight::BinOp::Ne:
    return Cmp::Ne;
  case clight::BinOp::Lt:
    return Cmp::Lt;
  case clight::BinOp::Le:
    return Cmp::Le;
  case clight::BinOp::Gt:
    return Cmp::Gt;
  case clight::BinOp::Ge:
    return Cmp::Ge;
  default:
    return std::nullopt;
  }
}

cminorsel::ExprPtr trBinop(const cminor::Expr &E) {
  using clight::BinOp;
  int32_t K = 0;

  // Comparison operators in value position.
  if (auto C = cmpOfBinop(E.B)) {
    if (isConst(*E.R, K)) {
      auto Out = mkOp1(Oper::CmpImm, trExpr(*E.L));
      Out->C = *C;
      Out->Imm = K;
      return Out;
    }
    auto Out = mkOp2(Oper::Cmp, trExpr(*E.L), trExpr(*E.R));
    Out->C = *C;
    return Out;
  }

  switch (E.B) {
  case BinOp::Add:
    if (isConst(*E.R, K)) {
      auto Out = mkOp1(Oper::AddImm, trExpr(*E.L));
      Out->Imm = K;
      return Out;
    }
    if (isConst(*E.L, K)) {
      auto Out = mkOp1(Oper::AddImm, trExpr(*E.R));
      Out->Imm = K;
      return Out;
    }
    return mkOp2(Oper::Add, trExpr(*E.L), trExpr(*E.R));
  case BinOp::Sub:
    if (isConst(*E.R, K) && K != INT32_MIN) {
      auto Out = mkOp1(Oper::AddImm, trExpr(*E.L));
      Out->Imm = -K;
      return Out;
    }
    return mkOp2(Oper::Sub, trExpr(*E.L), trExpr(*E.R));
  case BinOp::Mul: {
    const cminor::Expr *Var = nullptr;
    if (isConst(*E.R, K))
      Var = E.L.get();
    else if (isConst(*E.L, K))
      Var = E.R.get();
    if (Var) {
      int Sh = log2Exact(K);
      if (Sh >= 0) {
        // Strength reduction: multiply by 2^k becomes a shift.
        auto Out = mkOp1(Oper::ShlImm, trExpr(*Var));
        Out->Imm = Sh;
        return Out;
      }
      auto Out = mkOp1(Oper::MulImm, trExpr(*Var));
      Out->Imm = K;
      return Out;
    }
    return mkOp2(Oper::Mul, trExpr(*E.L), trExpr(*E.R));
  }
  case BinOp::Div:
    return mkOp2(Oper::Div, trExpr(*E.L), trExpr(*E.R));
  case BinOp::Mod:
    return mkOp2(Oper::Mod, trExpr(*E.L), trExpr(*E.R));
  case BinOp::And: {
    // Boolean and/or: (a != 0) & (b != 0) via Cmp ops and bitwise And —
    // both operands are 0/1 after BoolNot-style normalization, so use
    // CmpImm Ne 0 on each side and a bitwise And.
    auto A = mkOp1(Oper::CmpImm, trExpr(*E.L));
    A->C = Cmp::Ne;
    A->Imm = 0;
    auto B = mkOp1(Oper::CmpImm, trExpr(*E.R));
    B->C = Cmp::Ne;
    B->Imm = 0;
    return mkOp2(Oper::And, std::move(A), std::move(B));
  }
  case BinOp::Or: {
    auto A = mkOp1(Oper::CmpImm, trExpr(*E.L));
    A->C = Cmp::Ne;
    A->Imm = 0;
    auto B = mkOp1(Oper::CmpImm, trExpr(*E.R));
    B->C = Cmp::Ne;
    B->Imm = 0;
    return mkOp2(Oper::Or, std::move(A), std::move(B));
  }
  default:
    assert(false && "unhandled binop in Selection");
    return nullptr;
  }
}

cminorsel::ExprPtr trExpr(const cminor::Expr &E) {
  switch (E.K) {
  case cminor::Expr::Kind::Const: {
    auto Out = mkOp(Oper::Intconst);
    Out->Imm = E.IntVal;
    return Out;
  }
  case cminor::Expr::Kind::Temp: {
    auto Out = std::make_unique<cminorsel::Expr>();
    Out->K = cminorsel::Expr::Kind::Temp;
    Out->Temp = E.Temp;
    return Out;
  }
  case cminor::Expr::Kind::AddrGlobal: {
    auto Out = mkOp(Oper::Addrglobal);
    Out->Global = E.Global;
    return Out;
  }
  case cminor::Expr::Kind::Load: {
    auto Out = std::make_unique<cminorsel::Expr>();
    Out->K = cminorsel::Expr::Kind::Load;
    Out->Args.push_back(trExpr(*E.L));
    return Out;
  }
  case cminor::Expr::Kind::Un: {
    if (E.U == clight::UnOp::Neg)
      return mkOp1(Oper::Neg, trExpr(*E.L));
    return mkOp1(Oper::BoolNot, trExpr(*E.L));
  }
  case cminor::Expr::Kind::Bin:
    return trBinop(E);
  }
  return nullptr;
}

/// Fuses a Cminor condition expression into a CondExpr — comparisons
/// branch directly instead of materializing a boolean.
cminorsel::CondExpr trCond(const cminor::Expr &E) {
  cminorsel::CondExpr C;
  if (E.K == cminor::Expr::Kind::Bin) {
    if (auto Cm = cmpOfBinop(E.B)) {
      C.C = *Cm;
      int32_t K = 0;
      if (isConst(*E.R, K)) {
        C.OneArg = true;
        C.Imm = K;
        C.Args.push_back(trExpr(*E.L));
        return C;
      }
      C.Args.push_back(trExpr(*E.L));
      C.Args.push_back(trExpr(*E.R));
      return C;
    }
  }
  if (E.K == cminor::Expr::Kind::Un && E.U == clight::UnOp::Not) {
    // if (!e) ... tests e == 0.
    C.C = Cmp::Eq;
    C.OneArg = true;
    C.Imm = 0;
    C.Args.push_back(trExpr(*E.L));
    return C;
  }
  C.C = Cmp::Ne;
  C.OneArg = true;
  C.Imm = 0;
  C.Args.push_back(trExpr(E));
  return C;
}

void trBlock(const cminor::Block &In, cminorsel::Block &Out);

void trStmt(const cminor::Stmt &St, cminorsel::Block &Out) {
  using SK = cminor::Stmt::Kind;
  auto S = std::make_unique<cminorsel::Stmt>();
  switch (St.K) {
  case SK::Skip:
    S->K = cminorsel::Stmt::Kind::Skip;
    break;
  case SK::SetTemp:
    S->K = cminorsel::Stmt::Kind::SetTemp;
    S->Dst = St.Dst;
    S->E1 = trExpr(*St.E1);
    break;
  case SK::Store:
    S->K = cminorsel::Stmt::Kind::Store;
    S->E1 = trExpr(*St.E1);
    S->E2 = trExpr(*St.E2);
    break;
  case SK::If:
    S->K = cminorsel::Stmt::Kind::If;
    S->Cond = trCond(*St.E1);
    trBlock(St.Body, S->Body);
    trBlock(St.Else, S->Else);
    break;
  case SK::While:
    S->K = cminorsel::Stmt::Kind::While;
    S->Cond = trCond(*St.E1);
    trBlock(St.Body, S->Body);
    break;
  case SK::Call:
    S->K = cminorsel::Stmt::Kind::Call;
    S->Callee = St.Callee;
    S->HasDst = St.HasDst;
    S->Dst = St.Dst;
    for (const auto &A : St.Args)
      S->Args.push_back(trExpr(*A));
    break;
  case SK::Return:
    S->K = cminorsel::Stmt::Kind::Return;
    if (St.E1)
      S->E1 = trExpr(*St.E1);
    break;
  case SK::Print:
    S->K = cminorsel::Stmt::Kind::Print;
    S->E1 = trExpr(*St.E1);
    break;
  }
  Out.push_back(std::move(S));
}

void trBlock(const cminor::Block &In, cminorsel::Block &Out) {
  for (const auto &S : In)
    trStmt(*S, Out);
}

} // namespace

std::shared_ptr<cminorsel::Module>
ccc::compiler::selection(const cminor::Module &M) {
  auto Out = std::make_shared<cminorsel::Module>();
  Out->Globals = M.Globals;
  for (const cminor::Function &F : M.Funcs) {
    cminorsel::Function SF;
    SF.Name = F.Name;
    SF.RetVoid = F.RetVoid;
    SF.NumParams = F.NumParams;
    SF.NumTemps = F.NumTemps;
    SF.FrameSize = F.FrameSize;
    trBlock(F.Body, SF.Body);
    Out->Funcs.push_back(std::move(SF));
  }
  return Out;
}
