//===- tests/DrfGuaranteeTest.cpp - The classic TSO DRF guarantee ----------===//
//
// The paper observes (after Lemma 16) that instantiating the object with
// skip yields the classic DRF-guarantee of x86-TSO: data-race-free
// programs have exactly their SC behaviors under TSO. This parameterized
// suite checks that on a family of DRF assembly programs — and that the
// racy SB litmus is precisely the kind of program where the guarantee
// does NOT apply.
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "workload/Workloads.h"
#include "x86/X86Lang.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::x86;

namespace {

struct DrfCase {
  const char *Name;
  const char *Source;
  std::vector<std::string> Threads;
};

const DrfCase Cases[] = {
    {"disjoint_data", R"(
      .data a 0
      .data b 0
      .entry t1 0 0
      .entry t2 0 0
      t1:
              movl $1, a
              movl a, %eax
              printl %eax
              retl
      t2:
              movl $2, b
              movl b, %ebx
              printl %ebx
              retl
    )",
     {"t1", "t2"}},
    {"read_only_sharing", R"(
      .data c 9
      .entry t1 0 0
      .entry t2 0 0
      t1:
              movl c, %eax
              printl %eax
              retl
      t2:
              movl c, %ebx
              printl %ebx
              retl
    )",
     {"t1", "t2"}},
    {"cas_synchronized", R"(
      .data c 0
      .entry t 0 0
      t:
              movl $c, %ecx
      retry:
              movl $0, %edx
              movl c, %eax
              movl %eax, %ebx
              addl $1, %ebx
              lock cmpxchgl %ebx, (%ecx)
              jne fixup
              printl %eax
              retl
      fixup:
              jmp retry
    )",
     {"t"}},
};

class DrfGuarantee : public ::testing::TestWithParam<int> {};

Program build(const DrfCase &C, MemModel Model) {
  Program P;
  addAsmModule(P, "m", C.Source, Model);
  for (const std::string &T : C.Threads)
    P.addThread(T);
  P.link();
  return P;
}

} // namespace

TEST_P(DrfGuarantee, ScAndTsoBehaviorsCoincide) {
  const DrfCase &C = Cases[GetParam()];
  Program Sc = build(C, MemModel::SC);
  Program Tso = build(C, MemModel::TSO);
  ASSERT_TRUE(isDRF(Sc)) << C.Name << " is unexpectedly racy";
  TraceSet TSc = preemptiveTraces(Sc);
  TraceSet TTso = preemptiveTraces(Tso);
  RefineResult R = equivTraces(TSc, TTso);
  EXPECT_TRUE(R.Holds) << C.Name << " cex: " << R.CounterExample
                       << "\nSC  " << TSc.toString() << "\nTSO "
                       << TTso.toString();
}

INSTANTIATE_TEST_SUITE_P(Family, DrfGuarantee, ::testing::Range(0, 3),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return std::string(Cases[I.param].Name);
                         });

TEST(DrfGuarantee, FailsExactlyOnRacyPrograms) {
  // The SB litmus is racy, and indeed TSO shows behaviors SC cannot:
  // the guarantee's DRF premise is essential.
  Program Sc = workload::sbLitmus(MemModel::SC, false);
  Program Tso = workload::sbLitmus(MemModel::TSO, false);
  ASSERT_FALSE(isDRF(Sc));
  TraceSet TSc = preemptiveTraces(Sc);
  TraceSet TTso = preemptiveTraces(Tso);
  EXPECT_FALSE(equivTraces(TSc, TTso).Holds);
  // But even racy TSO programs only ADD behaviors, never lose SC ones.
  EXPECT_TRUE(refinesTraces(TSc, TTso).Holds);
}

TEST(DrfGuarantee, FencedRacyProgramRegainsScBehaviors) {
  Program Sc = workload::sbLitmus(MemModel::SC, true);
  Program Tso = workload::sbLitmus(MemModel::TSO, true);
  RefineResult R =
      equivTraces(preemptiveTraces(Sc), preemptiveTraces(Tso));
  EXPECT_TRUE(R.Holds) << R.CounterExample;
}
