//===- tests/ExplorerBudgetTest.cpp - Budgeted exploration tests ----------===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
// The per-job budget axis added for the batch server: wall-clock
// (MaxBuildMs) and intern-store byte (MaxStateBytes) budgets must
// truncate exactly like the state cap — tri-state verdicts, never a
// certificate — and ExploreStats::TruncatedBy must name the budget that
// tripped. Before these budgets existed, only MaxStates could truncate;
// the tests also re-pin that original path so the discipline is audited
// end to end.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetector.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <functional>

using namespace ccc;

namespace {

void withExplorer(const Program &P, ExploreOptions Opts,
                  const std::function<void(const Explorer<World> &)> &Check) {
  Explorer<World> E(Opts);
  E.build(World::load(P, 0));
  Check(E);
}

TEST(ExplorerBudgetTest, UnlimitedBudgetsDoNotTruncate) {
  const Program P = workload::lockedCounter(2, 1, 0);
  withExplorer(P, {}, [](const Explorer<World> &E) {
    EXPECT_FALSE(E.truncated());
    EXPECT_STREQ(E.stats().TruncatedBy, "");
    EXPECT_EQ(E.safetyVerdict(), CheckVerdict::Certified);
  });
}

TEST(ExplorerBudgetTest, StateCapTruncatesWithStates) {
  const Program P = workload::lockedCounter(2, 1, 0);
  ExploreOptions Opts;
  Opts.MaxStates = 5;
  withExplorer(P, Opts, [](const Explorer<World> &E) {
    EXPECT_TRUE(E.truncated());
    EXPECT_STREQ(E.stats().TruncatedBy, "states");
    EXPECT_EQ(E.safetyVerdict(), CheckVerdict::Inconclusive);
    EXPECT_EQ(E.checkRace().verdict(), CheckVerdict::Inconclusive);
    EXPECT_FALSE(E.checkRace().Conclusive);
  });
}

TEST(ExplorerBudgetTest, TimeBudgetTruncatesWithTime) {
  const Program P = workload::lockedCounter(2, 1, 0);
  ExploreOptions Opts;
  Opts.MaxBuildMs = 1e-6; // trips at the first layer boundary
  withExplorer(P, Opts, [](const Explorer<World> &E) {
    EXPECT_TRUE(E.truncated());
    EXPECT_STREQ(E.stats().TruncatedBy, "time");
    EXPECT_EQ(E.safetyVerdict(), CheckVerdict::Inconclusive);
    EXPECT_EQ(E.checkRace().verdict(), CheckVerdict::Inconclusive);
  });
}

TEST(ExplorerBudgetTest, MemoryBudgetTruncatesWithMemory) {
  const Program P = workload::lockedCounter(2, 1, 0);
  ExploreOptions Opts;
  Opts.MaxStateBytes = 1; // any interned state exceeds one byte
  withExplorer(P, Opts, [](const Explorer<World> &E) {
    EXPECT_TRUE(E.truncated());
    EXPECT_STREQ(E.stats().TruncatedBy, "memory");
    EXPECT_EQ(E.safetyVerdict(), CheckVerdict::Inconclusive);
  });
}

TEST(ExplorerBudgetTest, FirstTrippedBudgetWins) {
  // Both the state cap and the byte budget would trip; the per-layer
  // budget checks run before the cap, so the byte budget is charged.
  const Program P = workload::lockedCounter(2, 1, 0);
  ExploreOptions Opts;
  Opts.MaxStates = 5;
  Opts.MaxStateBytes = 1;
  withExplorer(P, Opts, [](const Explorer<World> &E) {
    EXPECT_TRUE(E.truncated());
    EXPECT_STREQ(E.stats().TruncatedBy, "memory");
  });
}

TEST(ExplorerBudgetTest, TruncatedByReachesTheJsonStats) {
  const Program P = workload::lockedCounter(2, 1, 0);
  ExploreOptions Opts;
  Opts.MaxStateBytes = 1;
  withExplorer(P, Opts, [](const Explorer<World> &E) {
    EXPECT_NE(E.stats().toJson().find("\"truncated_by\":\"memory\""),
              std::string::npos)
        << E.stats().toJson();
  });
}

TEST(ExplorerBudgetTest, BudgetsAreVerdictSoundAtEveryWorkerWidth) {
  const Program P = workload::lockedCounter(2, 1, 0);
  for (unsigned Threads : {1u, 2u, 4u}) {
    ExploreOptions Opts;
    Opts.Threads = Threads;
    Opts.MaxStates = 5;
    withExplorer(P, Opts, [&](const Explorer<World> &E) {
      EXPECT_TRUE(E.truncated()) << Threads;
      EXPECT_EQ(E.safetyVerdict(), CheckVerdict::Inconclusive) << Threads;
    });
  }
}

// The detector-level audit (satellite of PR 10): a truncated dynamic
// exploration must surface Conclusive=false through DetectResult, for
// every budget kind. With the static fast path off the exploration is
// the only decider, so the locked counter — genuinely DRF — must come
// back Inconclusive, not Certified.
TEST(ExplorerBudgetTest, DetectRacesSurfacesEveryBudgetTruncation) {
  const Program P = workload::lockedCounter(2, 1, 0);
  for (int Kind = 0; Kind < 3; ++Kind) {
    analysis::DetectOptions O;
    O.UseStaticFastPath = false;
    O.UseTsoFastPath = false;
    if (Kind == 0)
      O.Explore.MaxStates = 5;
    else if (Kind == 1)
      O.Explore.MaxBuildMs = 1e-6;
    else
      O.Explore.MaxStateBytes = 1;
    const analysis::DetectResult R = analysis::detectRaces(P, O);
    EXPECT_FALSE(R.Conclusive) << Kind;
    EXPECT_FALSE(R.Drf) << Kind;
    EXPECT_EQ(R.verdict(), CheckVerdict::Inconclusive) << Kind;
    const char *Want = Kind == 0 ? "states" : Kind == 1 ? "time" : "memory";
    EXPECT_STREQ(R.Explore.TruncatedBy, Want) << Kind;
  }
}

TEST(ExplorerBudgetTest, WitnessWithinBudgetStillRefutes) {
  // Truncation must not weaken an actual counterexample found inside
  // the explored prefix.
  const Program P = workload::racyCounter(2);
  analysis::DetectOptions O;
  O.UseStaticFastPath = false;
  const analysis::DetectResult R = analysis::detectRaces(P, O);
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_EQ(R.verdict(), CheckVerdict::Refuted);
}

} // namespace
