//===- x86/X86Lang.h - x86-SC and x86-TSO machines ---------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The x86 machine as an instantiation of the abstract module language,
/// in two memory models (Sec. 7):
///  - x86-SC: sequentially consistent; every store is immediately visible.
///  - x86-TSO (Sewell et al.): each hardware thread has a FIFO store
///    buffer; loads snoop the own buffer; buffered stores flush to shared
///    memory non-deterministically; lock-prefixed instructions and mfence
///    drain the buffer first and execute atomically.
///
///  - x86-Relaxed (IMM-flavoured): the TSO store buffer plus bounded
///    load reordering — plain register loads may be deferred and
///    completed out of program order (see core/MemModel.h).
///
/// Syntactically a module is identical under all models (the Fig. 3
/// "identity transformation" from x86-SC to x86-TSO changes only the
/// semantics) — all are served by this class, selected by MemModel.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_X86_X86LANG_H
#define CASCC_X86_X86LANG_H

#include "core/MemModel.h"
#include "core/ModuleLang.h"
#include "core/Program.h"
#include "x86/X86Asm.h"

#include <memory>

namespace ccc {
namespace x86 {

/// The model axis is program-level now (core/MemModel.h); this alias
/// keeps the historical x86::MemModel spelling working.
using MemModel = ccc::MemModel;

/// x86 as a ModuleLang.
class X86Lang : public ModuleLang {
public:
  /// \p ObjectMode restricts memory accesses to the module's own globals
  /// plus the frame free list (Sec. 7.1 object-data confinement).
  X86Lang(std::shared_ptr<const Module> M, MemModel Model,
          bool ObjectMode = false);
  ~X86Lang() override;

  std::string name() const override {
    switch (Model) {
    case MemModel::SC:
      return "x86-SC";
    case MemModel::TSO:
      return "x86-TSO";
    case MemModel::Relaxed:
      return "x86-Relaxed";
    }
    return "x86-?";
  }

  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;

  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;

  CoreRef applyReturn(const Core &C, const Value &V) const override;

  /// POR points: the single continuation point is the current PC (token =
  /// the Instr slot, Aux = PC index). Pending TSO store-buffer entries
  /// are reported as concrete writes in \p Extra; an unallocated frame
  /// contributes own-frame writes.
  bool porPoints(const FreeList &F, const Core &C, std::vector<PorPoint> &Out,
                 EffectSummary &Extra) const override;

  const Module &module() const { return *Mod; }
  std::shared_ptr<const Module> modulePtr() const { return Mod; }
  MemModel memModel() const override { return Model; }
  bool objectMode() const { return ObjectMode; }

  /// The argument-passing registers of our simplified calling convention.
  static constexpr Reg ArgRegs[3] = {Reg::EDI, Reg::ESI, Reg::EDX};

private:
  std::shared_ptr<const Module> Mod;
  MemModel Model;
  bool ObjectMode;
};

/// Registers an x86 module parsed from \p Source with \p P.
unsigned addAsmModule(Program &P, const std::string &Name,
                      const std::string &Source, MemModel Model,
                      bool ObjectMode = false);

/// Registers an already-built x86 module (e.g. compiler output) with \p P.
unsigned addAsmModule(Program &P, const std::string &Name,
                      std::shared_ptr<const Module> M, MemModel Model,
                      bool ObjectMode = false);

} // namespace x86
} // namespace ccc

#endif // CASCC_X86_X86LANG_H
