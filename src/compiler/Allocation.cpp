//===- compiler/Allocation.cpp - RTL to LTL register allocation ------------===//

#include "compiler/Passes.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace ccc;
using namespace ccc::compiler;
using ltl::Loc;

namespace {

/// The registers the allocator may assign to program variables. EAX and
/// EDX are reserved as Asmgen scratch; EDI/ESI/EDX carry call arguments;
/// ESP is the frame pointer.
const x86::Reg Allocatable[] = {x86::Reg::EBX, x86::Reg::ECX,
                                x86::Reg::EBP};

struct UseDef {
  std::vector<rtl::Reg> Use;
  std::vector<rtl::Reg> Def;
};

UseDef useDef(const rtl::Instr &I) {
  UseDef UD;
  auto useAM = [&UD](const rtl::AddrMode<rtl::Reg> &AM) {
    if (AM.K == rtl::AddrMode<rtl::Reg>::Kind::Base)
      UD.Use.push_back(AM.Base);
  };
  switch (I.K) {
  case rtl::Instr::Kind::Nop:
    break;
  case rtl::Instr::Kind::Op:
    UD.Use = I.Args;
    UD.Def.push_back(I.Dst);
    break;
  case rtl::Instr::Kind::Load:
    useAM(I.AM);
    UD.Def.push_back(I.Dst);
    break;
  case rtl::Instr::Kind::Store:
    useAM(I.AM);
    UD.Use.push_back(I.Args[0]);
    break;
  case rtl::Instr::Kind::Call:
    UD.Use = I.Args;
    if (I.HasDst)
      UD.Def.push_back(I.Dst);
    break;
  case rtl::Instr::Kind::Tailcall:
    UD.Use = I.Args;
    break;
  case rtl::Instr::Kind::Cond:
    UD.Use = I.Args;
    break;
  case rtl::Instr::Kind::Return:
    if (I.HasArg)
      UD.Use = I.Args;
    break;
  case rtl::Instr::Kind::Print:
    UD.Use = I.Args;
    break;
  }
  return UD;
}

std::vector<unsigned> successors(const rtl::Instr &I) {
  switch (I.K) {
  case rtl::Instr::Kind::Return:
  case rtl::Instr::Kind::Tailcall:
    return {};
  case rtl::Instr::Kind::Cond:
    return {I.S1, I.S2};
  default:
    return {I.S1};
  }
}

/// Backward liveness fixpoint over the CFG.
std::map<unsigned, std::set<rtl::Reg>>
liveness(const rtl::Function &F) {
  std::map<unsigned, std::set<rtl::Reg>> LiveOut, LiveIn;
  std::map<unsigned, std::vector<unsigned>> Preds;
  for (const auto &KV : F.Graph)
    for (unsigned S : successors(KV.second))
      Preds[S].push_back(KV.first);

  std::deque<unsigned> Work;
  for (const auto &KV : F.Graph)
    Work.push_back(KV.first);
  while (!Work.empty()) {
    unsigned N = Work.front();
    Work.pop_front();
    const rtl::Instr &I = F.Graph.at(N);
    UseDef UD = useDef(I);
    std::set<rtl::Reg> In = LiveOut[N];
    for (rtl::Reg D : UD.Def)
      In.erase(D);
    for (rtl::Reg U : UD.Use)
      In.insert(U);
    if (In == LiveIn[N])
      continue;
    LiveIn[N] = In;
    for (unsigned P : Preds[N]) {
      std::size_t Before = LiveOut[P].size();
      LiveOut[P].insert(In.begin(), In.end());
      if (LiveOut[P].size() != Before)
        Work.push_back(P);
    }
  }
  return LiveOut;
}

} // namespace

std::shared_ptr<ltl::Module>
ccc::compiler::allocation(const rtl::Module &M) {
  auto Out = std::make_shared<ltl::Module>();
  Out->Globals = M.Globals;

  for (const rtl::Function &F : M.Funcs) {
    auto LiveOut = liveness(F);

    // Interference graph. A definition interferes with everything live
    // across it (move sources excepted, the classic coalescing rule).
    std::vector<std::set<rtl::Reg>> Adj(F.NumRegs);
    auto addEdge = [&Adj](rtl::Reg A, rtl::Reg B) {
      if (A == B)
        return;
      Adj[A].insert(B);
      Adj[B].insert(A);
    };
    for (const auto &KV : F.Graph) {
      const rtl::Instr &I = KV.second;
      UseDef UD = useDef(I);
      for (rtl::Reg D : UD.Def) {
        for (rtl::Reg L : LiveOut.at(KV.first)) {
          if (I.K == rtl::Instr::Kind::Op && I.O == ir::Oper::Move &&
              L == I.Args[0])
            continue;
          addEdge(D, L);
        }
      }
    }
    // Parameters are simultaneously live at entry.
    for (unsigned A = 0; A < F.NumParams; ++A)
      for (unsigned B = A + 1; B < F.NumParams; ++B)
        addEdge(A, B);

    // Greedy coloring; spills get a private slot each.
    std::vector<Loc> Color(F.NumRegs, Loc::reg(x86::Reg::EBX));
    std::vector<bool> Colored(F.NumRegs, false);
    unsigned NumSlots = 0;
    for (rtl::Reg R = 0; R < F.NumRegs; ++R) {
      std::set<unsigned> Taken;
      for (rtl::Reg N : Adj[R])
        if (Colored[N] && Color[N].IsReg)
          Taken.insert(static_cast<unsigned>(Color[N].R));
      bool Assigned = false;
      for (x86::Reg Cand : Allocatable) {
        if (!Taken.count(static_cast<unsigned>(Cand))) {
          Color[R] = Loc::reg(Cand);
          Assigned = true;
          break;
        }
      }
      if (!Assigned)
        Color[R] = Loc::slot(NumSlots++);
      Colored[R] = true;
    }

    // Rewrite the graph with locations; pin call results to EAX and move
    // them to their allocated home right after the call.
    ltl::Function NF;
    NF.Name = F.Name;
    NF.RetVoid = F.RetVoid;
    NF.NumParams = F.NumParams;
    NF.Entry = F.Entry;
    NF.NumSlots = NumSlots;
    for (unsigned A = 0; A < F.NumParams; ++A)
      NF.ParamHomes.push_back(Color[A]);

    unsigned NextNode = 0;
    for (const auto &KV : F.Graph)
      NextNode = std::max(NextNode, KV.first + 1);

    for (const auto &KV : F.Graph) {
      const rtl::Instr &I = KV.second;
      ltl::Instr NI;
      NI.K = static_cast<ltl::Instr::Kind>(I.K);
      NI.O = I.O;
      NI.C = I.C;
      NI.Imm = I.Imm;
      NI.Global = I.Global;
      NI.Callee = I.Callee;
      NI.CondOneArg = I.CondOneArg;
      NI.HasArg = I.HasArg;
      NI.HasDst = I.HasDst;
      NI.S1 = I.S1;
      NI.S2 = I.S2;
      for (rtl::Reg R : I.Args)
        NI.Args.push_back(Color[R]);
      if (I.HasDst)
        NI.Dst = Color[I.Dst];
      if (I.AM.K == rtl::AddrMode<rtl::Reg>::Kind::Global)
        NI.AM = ltl::AddrMode::global(I.AM.Global);
      else
        NI.AM = ltl::AddrMode::base(Color[I.AM.Base]);

      if (I.K == rtl::Instr::Kind::Call && I.HasDst) {
        Loc Home = Color[I.Dst];
        Loc ResultReg = Loc::reg(x86::Reg::EAX);
        NI.Dst = ResultReg;
        if (!(Home == ResultReg)) {
          unsigned MoveNode = NextNode++;
          ltl::Instr Mv;
          Mv.K = ltl::Instr::Kind::Op;
          Mv.O = ir::Oper::Move;
          Mv.Args.push_back(ResultReg);
          Mv.Dst = Home;
          Mv.HasDst = true;
          Mv.S1 = I.S1;
          NI.S1 = MoveNode;
          NF.Graph[MoveNode] = std::move(Mv);
        }
      }
      NF.Graph[KV.first] = std::move(NI);
    }
    Out->Funcs.push_back(std::move(NF));
  }
  return Out;
}
