//===- tests/SimNegativeTest.cpp - The simulation's teeth ------------------===//
//
// Adversarial tests: deliberately wrong "compilations" that the
// footprint-preserving simulation (Defs. 2-3) must refute. Each case
// isolates one obligation of Def. 3: message equality, footprint
// matching (FPmatch/LG), memory invariance (Inv), robustness under Rely
// interference, and termination preservation (the well-founded index).
//
//===----------------------------------------------------------------------===//

#include "clight/ClightLang.h"
#include "validate/Sim.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::validate;

namespace {

SimReport checkClight(const char *Src, const char *Tgt,
                      const std::string &Entry = "main") {
  Program S, T;
  clight::addClightModule(S, "m", Src);
  clight::addClightModule(T, "m", Tgt);
  S.link();
  T.link();
  return simCheck(S, 0, T, 0, Entry, {});
}

} // namespace

TEST(SimRefutes, WrongEventValue) {
  SimReport R = checkClight("void main() { print(1); }",
                            "void main() { print(2); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, DroppedEvent) {
  SimReport R = checkClight("void main() { print(1); print(2); }",
                            "void main() { print(1); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, DuplicatedEvent) {
  SimReport R = checkClight("void main() { print(1); }",
                            "void main() { print(1); print(1); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, ReorderedEvents) {
  SimReport R = checkClight("void main() { print(1); print(2); }",
                            "void main() { print(2); print(1); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, WrongCallee) {
  SimReport R = checkClight(
      "extern void lock(); void main() { lock(); print(1); }",
      "extern void unlock(); void main() { unlock(); print(1); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, DroppedExternalCall) {
  SimReport R = checkClight(
      "extern void lock(); void main() { lock(); print(1); }",
      "void main() { print(1); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, WrongReturnValue) {
  SimReport R = checkClight("int main() { return 4; }",
                            "int main() { return 5; }", "main");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, ExtraSharedWrite) {
  // The target writes a global the source does not: caught by FPmatch
  // inside LG even though no event differs.
  SimReport R = checkClight(
      "int g = 0; void main() { int a = 1; print(a); }",
      "int g = 0; void main() { g = 9; print(1); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, WrongSharedValueAtSwitchPoint) {
  // Both write g, so FPmatch passes — but the values differ, which Inv
  // (inside LG) catches at the event.
  SimReport R = checkClight(
      "int g = 0; void main() { g = 1; print(7); }",
      "int g = 0; void main() { g = 2; print(7); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, CachingAcrossCallUnderRely) {
  // The classic unsound optimization: reusing a pre-call read after the
  // call. Sequentially indistinguishable; refuted under Rely.
  SimReport R = checkClight(R"(
    extern void sync();
    int g = 0;
    void main() {
      int a;
      int b;
      a = g;
      sync();
      b = g;
      print(a + b);
    }
  )",
                            R"(
    extern void sync();
    int g = 0;
    void main() {
      int a;
      int b;
      a = g;
      sync();
      b = a;
      print(a + b);
    }
  )");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, TerminationViolation) {
  // The target diverges silently where the source terminates: the
  // stuttering budget (the well-founded index of Def. 3) runs out.
  SimReport R = checkClight("void main() { print(3); }",
                            "void main() { while (1) { } print(3); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimRefutes, TargetAbortsWhereSourceIsSafe) {
  SimReport R = checkClight(
      "void main() { int a = 4; print(a); }",
      "void main() { int a = 4; int b = 0; print(a / b); }");
  EXPECT_FALSE(R.Holds);
}

TEST(SimAccepts, HarmlessRefactorings) {
  // Sanity: semantically equal rewrites are accepted.
  SimReport R1 = checkClight(
      "void main() { int a = 2; int b = 3; print(a + b); }",
      "void main() { int b = 3; int a = 2; print(b + a); }");
  EXPECT_TRUE(R1.Holds) << R1.FailReason;

  SimReport R2 = checkClight(
      "int g = 0; void main() { g = 1; g = 2; print(g); }",
      "int g = 0; void main() { g = 2; print(2); }");
  // Removing the dead store to g: target writes subset of source writes,
  // same final shared state at the event — accepted.
  EXPECT_TRUE(R2.Holds) << R2.FailReason;
}

TEST(SimAccepts, WriteToReadWeakening) {
  // FPmatch allows the target to *read* what the source wrote. The
  // source writes g unconditionally; the target re-reads it afterwards.
  SimReport R = checkClight(
      "int g = 0; void main() { g = 5; print(5); }",
      "int g = 0; void main() { int t; g = 5; t = g; print(t); }");
  EXPECT_TRUE(R.Holds) << R.FailReason;
}
