//===- analysis/StaticRace.cpp - Static DRF certification ------------------===//

#include "analysis/StaticRace.h"

#include "cimp/CImpLang.h"
#include "clight/ClightLang.h"
#include "support/StrUtil.h"
#include "x86/X86Lang.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace ccc;
using namespace ccc::analysis;

namespace {

/// The pseudo-token held inside a CImp atomic block.
const char *const AtomicToken = "<atomic>";

std::string lockSetToString(const LockSet &S) {
  if (S.empty())
    return "{}";
  std::string Out = "{";
  bool First = true;
  for (const std::string &T : S) {
    if (!First)
      Out += ",";
    Out += T;
    First = false;
  }
  return Out + "}";
}

LockSet intersect(const LockSet &A, const LockSet &B) {
  LockSet Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::inserter(Out, Out.begin()));
  return Out;
}

/// Lock-entry naming convention: `lock` / `lock_<x>` acquire the token
/// "L:<x>"; `unlock` / `unlock_<x>` release it.
std::optional<std::string> acquireToken(const std::string &Callee) {
  if (Callee == "lock")
    return std::string("L:");
  if (Callee.rfind("lock_", 0) == 0)
    return "L:" + Callee.substr(5);
  return std::nullopt;
}

std::optional<std::string> releaseToken(const std::string &Callee) {
  if (Callee == "unlock")
    return std::string("L:");
  if (Callee.rfind("unlock_", 0) == 0)
    return "L:" + Callee.substr(7);
  return std::nullopt;
}

/// How a callee name resolves against the program's modules.
struct CalleeInfo {
  enum class Kind {
    LockAcquire,   ///< lock entry of a sync object
    LockRelease,   ///< unlock entry of a sync object
    ClightFn,      ///< client Clight function — descend
    CImpFn,        ///< client CImp function — descend
    ObjectOpaque,  ///< object-confined entry — skip (Sec. 7.1)
    NonAnalyzable, ///< defined in a language we cannot traverse
    Unknown,       ///< undefined extern
  };
  Kind K = Kind::Unknown;
  std::string Token;
  unsigned ModIdx = 0;
  const clight::Function *ClightF = nullptr;
  const cimp::Function *CImpF = nullptr;
  /// Lock/unlock resolved into an x86 object module: the token still
  /// models the client's mutual exclusion, but the assembly body is not
  /// walked, so its memory discipline is outside this certificate.
  bool X86Impl = false;
};

/// A points-to value: a set of global names, or "anything".
struct Pointees {
  std::set<std::string> Cells;
  bool Wild = false;

  bool empty() const { return !Wild && Cells.empty(); }
  bool operator==(const Pointees &O) const {
    return Wild == O.Wild && Cells == O.Cells;
  }
  void join(const Pointees &O) {
    Wild = Wild || O.Wild;
    Cells.insert(O.Cells.begin(), O.Cells.end());
  }
  static Pointees wild() {
    Pointees P;
    P.Wild = true;
    return P;
  }
};

/// One thread root: the code one program thread (or spawnee) starts in.
struct Root {
  unsigned ModIdx = 0;
  std::string Entry;
  unsigned Instances = 1; ///< Number of threads running this root.
};

struct Analyzer {
  const Program &P;
  StaticDrfReport &R;

  /// Distinct roots, deduplicated by (module, entry).
  std::vector<Root> Roots;

  /// Sites keyed by (stmt identity, root, cell, is-write); locksets of
  /// repeated walks of the same site merge by intersection, so the stored
  /// set is what is *always* held there.
  using SiteKey = std::tuple<const void *, unsigned, std::string, bool>;
  std::map<SiteKey, AccessSite> Sites;

  /// Call-string guard (module index / function name pairs).
  std::vector<std::pair<unsigned, std::string>> CallStack;

  bool Applicable = true;    ///< False: some thread code is unanalyzable.
  bool Certifiable = true;   ///< False: conservative gaps forbid a
                             ///< certificate even with no flagged race.
  unsigned CurRoot = 0;

  explicit Analyzer(const Program &Prog, StaticDrfReport &Rep)
      : P(Prog), R(Rep) {}

  void note(std::string N) {
    if (std::find(R.Notes.begin(), R.Notes.end(), N) == R.Notes.end())
      R.Notes.push_back(std::move(N));
  }

  void inapplicable(std::string Why) {
    Applicable = false;
    note(std::move(Why));
  }

  // --- module helpers ---------------------------------------------------

  const cimp::CImpLang *asCImp(unsigned Idx) const {
    return dynamic_cast<const cimp::CImpLang *>(P.module(Idx).Lang.get());
  }
  const clight::ClightLang *asClight(unsigned Idx) const {
    return dynamic_cast<const clight::ClightLang *>(
        P.module(Idx).Lang.get());
  }
  const x86::X86Lang *asX86(unsigned Idx) const {
    return dynamic_cast<const x86::X86Lang *>(P.module(Idx).Lang.get());
  }

  CalleeInfo resolveCallee(const std::string &Callee) const {
    for (unsigned I = 0; I < P.modules().size(); ++I) {
      if (const cimp::CImpLang *L = asCImp(I)) {
        const cimp::Function *F = L->module().find(Callee);
        if (!F)
          continue;
        CalleeInfo CI;
        CI.ModIdx = I;
        if (L->objectMode()) {
          if (auto T = acquireToken(Callee)) {
            CI.K = CalleeInfo::Kind::LockAcquire;
            CI.Token = *T;
          } else if (auto T2 = releaseToken(Callee)) {
            CI.K = CalleeInfo::Kind::LockRelease;
            CI.Token = *T2;
          } else {
            CI.K = CalleeInfo::Kind::ObjectOpaque;
          }
        } else {
          CI.K = CalleeInfo::Kind::CImpFn;
          CI.CImpF = F;
        }
        return CI;
      }
      if (const clight::ClightLang *L = asClight(I)) {
        const clight::Function *F = L->module().find(Callee);
        if (!F)
          continue;
        CalleeInfo CI;
        CI.ModIdx = I;
        CI.K = CalleeInfo::Kind::ClightFn;
        CI.ClightF = F;
        return CI;
      }
      if (const x86::X86Lang *L = asX86(I)) {
        if (!L->module().Entries.count(Callee))
          continue;
        // A lock implemented in assembly (pi_lock, Fig. 10b) still acts
        // as a lock for the *client's* DRF obligation: its internal races
        // are confined to object data.
        CalleeInfo CI;
        CI.ModIdx = I;
        CI.X86Impl = true;
        if (auto T = acquireToken(Callee)) {
          CI.K = CalleeInfo::Kind::LockAcquire;
          CI.Token = *T;
        } else if (auto T2 = releaseToken(Callee)) {
          CI.K = CalleeInfo::Kind::LockRelease;
          CI.Token = *T2;
        } else {
          CI.K = CalleeInfo::Kind::NonAnalyzable;
        }
        return CI;
      }
    }
    // Undefined extern: lock/unlock by convention, otherwise unknown.
    CalleeInfo CI;
    if (auto T = acquireToken(Callee)) {
      CI.K = CalleeInfo::Kind::LockAcquire;
      CI.Token = *T;
    } else if (auto T2 = releaseToken(Callee)) {
      CI.K = CalleeInfo::Kind::LockRelease;
      CI.Token = *T2;
    }
    return CI;
  }

  // --- access recording -------------------------------------------------

  void record(const void *Site, const std::string &Cell, bool Write,
              bool Wildcard, const LockSet &Held, unsigned ModIdx,
              const std::string &Func) {
    SiteKey Key{Site, CurRoot, Cell, Write};
    auto It = Sites.find(Key);
    if (It == Sites.end()) {
      AccessSite A;
      A.Global = Cell;
      A.Write = Write;
      A.Wildcard = Wildcard;
      A.Held = Held;
      A.Module = P.module(ModIdx).Name;
      A.Func = Func;
      A.Root = CurRoot;
      // RootInstances is resolved in run() once all walks are done:
      // a later root (or this one) may still spawn more instances.
      Sites.emplace(std::move(Key), std::move(A));
    } else {
      It->second.Held = intersect(It->second.Held, Held);
    }
  }

  void recordPointees(const void *Site, const Pointees &Pt, bool Write,
                      const LockSet &Held, unsigned ModIdx,
                      const std::string &Func) {
    // An empty pointee set at a deref does NOT mean no access: it means
    // the address could not be resolved at all (e.g. a deref of an
    // int-valued global holding &x, which the dynamic semantics
    // executes). Degrade to an access to every client cell rather than
    // recording nothing — recording nothing could certify a racy program.
    if (Pt.Wild || Pt.empty()) {
      record(Site, "*", Write, /*Wildcard=*/true, Held, ModIdx, Func);
      note("unresolved pointer target in " + P.module(ModIdx).Name + "." +
           Func + " — treated as an access to every client cell");
    }
    for (const std::string &C : Pt.Cells)
      record(Site, C, Write, /*Wildcard=*/false, Held, ModIdx, Func);
  }

  // --- Clight ----------------------------------------------------------

  /// Flow-insensitive per-function points-to for pointer locals: the
  /// union over every assignment's right-hand side, with unresolved
  /// sources going to "anything". Parameters are "anything" (no
  /// inter-procedural flow; footnote 6 rules out escaping stack slots,
  /// so only global addresses flow through pointers anyway).
  using PtMap = std::map<std::string, Pointees>;

  Pointees clightPointees(const clight::Expr &E, const PtMap &Pt,
                          const clight::Module &M) const {
    switch (E.K) {
    case clight::Expr::Kind::IntLit:
      return {};
    case clight::Expr::Kind::AddrOfGlobal: {
      Pointees Out;
      Out.Cells.insert(E.Name);
      return Out;
    }
    case clight::Expr::Kind::Var: {
      if (M.isGlobal(E.Name))
        return {}; // int-valued global; not a pointer in this model
      auto It = Pt.find(E.Name);
      if (It != Pt.end())
        return It->second;
      return {};
    }
    case clight::Expr::Kind::Un:
    case clight::Expr::Kind::Bin: {
      Pointees Out;
      if (E.L)
        Out.join(clightPointees(*E.L, Pt, M));
      if (E.R)
        Out.join(clightPointees(*E.R, Pt, M));
      if (!Out.empty())
        return Pointees::wild(); // pointer arithmetic: give up precisely
      return {};
    }
    }
    return Pointees::wild();
  }

  void clightPtOfBlock(const clight::Block &B, PtMap &Pt,
                       const clight::Module &M) const {
    for (const clight::StmtPtr &S : B) {
      switch (S->K) {
      case clight::Stmt::Kind::AssignVar:
        if (!M.isGlobal(S->Dst) && S->E1) {
          Pointees Rhs = clightPointees(*S->E1, Pt, M);
          if (!Rhs.empty())
            Pt[S->Dst].join(Rhs);
        }
        break;
      case clight::Stmt::Kind::Call:
        // A call result assigned to a pointer-typed local could hold any
        // address; our Clight subset returns ints, but stay conservative.
        if (!S->Dst.empty() && !M.isGlobal(S->Dst))
          Pt[S->Dst].join(Pointees::wild());
        break;
      case clight::Stmt::Kind::If:
      case clight::Stmt::Kind::While:
        clightPtOfBlock(S->Body, Pt, M);
        clightPtOfBlock(S->Else, Pt, M);
        break;
      default:
        break;
      }
    }
  }

  PtMap clightPt(const clight::Function &F, const clight::Module &M) const {
    PtMap Pt;
    for (const clight::VarDecl &V : F.Params)
      if (V.Type == clight::Ty::IntPtr)
        Pt[V.Name] = Pointees::wild();
    // Iterate the flow-insensitive transfer to a fixpoint: a backward
    // copy chain needs one round per link, and pointee sets only grow
    // under join (bounded by the module's globals), so this terminates.
    for (;;) {
      PtMap Before = Pt;
      clightPtOfBlock(F.Body, Pt, M);
      if (Pt == Before)
        break;
    }
    return Pt;
  }

  void clightReads(const clight::Expr &E, const PtMap &Pt,
                   const clight::Module &M, const LockSet &Held,
                   unsigned ModIdx, const std::string &Func) {
    switch (E.K) {
    case clight::Expr::Kind::IntLit:
    case clight::Expr::Kind::AddrOfGlobal:
      return;
    case clight::Expr::Kind::Var:
      if (M.isGlobal(E.Name))
        record(&E, E.Name, /*Write=*/false, false, Held, ModIdx, Func);
      return;
    case clight::Expr::Kind::Un:
      if (E.L)
        clightReads(*E.L, Pt, M, Held, ModIdx, Func);
      if (E.U == clight::UnOp::Deref && E.L)
        recordPointees(&E, clightPointees(*E.L, Pt, M), /*Write=*/false,
                       Held, ModIdx, Func);
      return;
    case clight::Expr::Kind::Bin:
      if (E.L)
        clightReads(*E.L, Pt, M, Held, ModIdx, Func);
      if (E.R)
        clightReads(*E.R, Pt, M, Held, ModIdx, Func);
      return;
    }
  }

  LockSet clightBlock(const clight::Block &B, LockSet Held,
                      const clight::Module &M, const PtMap &Pt,
                      unsigned ModIdx, const std::string &Func) {
    for (const clight::StmtPtr &SP : B) {
      const clight::Stmt &S = *SP;
      switch (S.K) {
      case clight::Stmt::Kind::Skip:
        break;
      case clight::Stmt::Kind::AssignVar:
        if (S.E1)
          clightReads(*S.E1, Pt, M, Held, ModIdx, Func);
        if (M.isGlobal(S.Dst))
          record(&S, S.Dst, /*Write=*/true, false, Held, ModIdx, Func);
        break;
      case clight::Stmt::Kind::AssignDeref:
        if (S.E1)
          clightReads(*S.E1, Pt, M, Held, ModIdx, Func);
        if (S.E2)
          clightReads(*S.E2, Pt, M, Held, ModIdx, Func);
        if (S.E1)
          recordPointees(&S, clightPointees(*S.E1, Pt, M), /*Write=*/true,
                         Held, ModIdx, Func);
        break;
      case clight::Stmt::Kind::If: {
        if (S.E1)
          clightReads(*S.E1, Pt, M, Held, ModIdx, Func);
        LockSet A = clightBlock(S.Body, Held, M, Pt, ModIdx, Func);
        LockSet Bs = clightBlock(S.Else, Held, M, Pt, ModIdx, Func);
        Held = intersect(A, Bs);
        break;
      }
      case clight::Stmt::Kind::While: {
        // Loop-head fixpoint: must-held sets only shrink under ∩, so
        // iterate to stability (bounded by the lockset height).
        LockSet H = Held;
        for (unsigned Iter = 0; Iter < 8; ++Iter) {
          if (S.E1)
            clightReads(*S.E1, Pt, M, H, ModIdx, Func);
          LockSet Out = clightBlock(S.Body, H, M, Pt, ModIdx, Func);
          LockSet Next = intersect(H, Out);
          if (Next == H)
            break;
          H = std::move(Next);
        }
        Held = H;
        break;
      }
      case clight::Stmt::Kind::Call: {
        for (const clight::ExprPtr &A : S.Args)
          if (A)
            clightReads(*A, Pt, M, Held, ModIdx, Func);
        Held = applyCall(&S, S.Callee, Held);
        // The dynamic semantics stores the call result with a write
        // footprint (StoreRet), so `g = f()` writes g after the call
        // returns — under the post-call lockset.
        if (!S.Dst.empty() && M.isGlobal(S.Dst))
          record(&S, S.Dst, /*Write=*/true, false, Held, ModIdx, Func);
        break;
      }
      case clight::Stmt::Kind::Return:
      case clight::Stmt::Kind::Print:
        if (S.E1)
          clightReads(*S.E1, Pt, M, Held, ModIdx, Func);
        break;
      }
    }
    return Held;
  }

  LockSet walkClightFn(unsigned ModIdx, const clight::Function &F,
                       LockSet Held) {
    const clight::Module &M = asClight(ModIdx)->module();
    PtMap Pt = clightPt(F, M);
    return clightBlock(F.Body, std::move(Held), M, Pt, ModIdx, F.Name);
  }

  // --- CImp ------------------------------------------------------------

  Pointees cimpPointees(const cimp::Expr &E, const PtMap &Pt) const {
    switch (E.K) {
    case cimp::Expr::Kind::IntConst:
      return {};
    case cimp::Expr::Kind::GlobalAddr: {
      Pointees Out;
      Out.Cells.insert(E.Name);
      return Out;
    }
    case cimp::Expr::Kind::Reg: {
      auto It = Pt.find(E.Name);
      if (It != Pt.end())
        return It->second;
      return {};
    }
    case cimp::Expr::Kind::Un:
    case cimp::Expr::Kind::Bin: {
      Pointees Out;
      if (E.L)
        Out.join(cimpPointees(*E.L, Pt));
      if (E.R)
        Out.join(cimpPointees(*E.R, Pt));
      if (!Out.empty())
        return Pointees::wild();
      return {};
    }
    }
    return Pointees::wild();
  }

  void cimpPtOfBlock(const cimp::Block &B, PtMap &Pt) const {
    for (const cimp::StmtPtr &S : B) {
      switch (S->K) {
      case cimp::Stmt::Kind::Assign:
        if (S->E1) {
          Pointees Rhs = cimpPointees(*S->E1, Pt);
          if (!Rhs.empty())
            Pt[S->Dst].join(Rhs);
        }
        break;
      case cimp::Stmt::Kind::Load:
      case cimp::Stmt::Kind::Call:
        // A loaded or returned value used later as an address is beyond
        // this analysis — only matters if the register feeds [e].
        if (!S->Dst.empty())
          Pt[S->Dst].join(Pointees::wild());
        break;
      case cimp::Stmt::Kind::If:
      case cimp::Stmt::Kind::While:
      case cimp::Stmt::Kind::Atomic:
        cimpPtOfBlock(S->Body, Pt);
        cimpPtOfBlock(S->Else, Pt);
        break;
      default:
        break;
      }
    }
  }

  PtMap cimpPt(const cimp::Function &F) const {
    PtMap Pt;
    for (const std::string &Param : F.Params)
      Pt[Param] = Pointees::wild();
    // Fixpoint, for the same reason as clightPt.
    for (;;) {
      PtMap Before = Pt;
      cimpPtOfBlock(F.Body, Pt);
      if (Pt == Before)
        break;
    }
    return Pt;
  }

  LockSet cimpBlock(const cimp::Block &B, LockSet Held, const PtMap &Pt,
                    unsigned ModIdx, const std::string &Func) {
    for (const cimp::StmtPtr &SP : B) {
      const cimp::Stmt &S = *SP;
      switch (S.K) {
      case cimp::Stmt::Kind::Skip:
      case cimp::Stmt::Kind::Assign: // register-pure: no memory access
      case cimp::Stmt::Kind::Assert:
      case cimp::Stmt::Kind::Print:
      case cimp::Stmt::Kind::Return:
        break;
      case cimp::Stmt::Kind::Load:
        if (S.E1)
          recordPointees(&S, cimpPointees(*S.E1, Pt), /*Write=*/false,
                         Held, ModIdx, Func);
        break;
      case cimp::Stmt::Kind::Store:
        if (S.E1)
          recordPointees(&S, cimpPointees(*S.E1, Pt), /*Write=*/true,
                         Held, ModIdx, Func);
        break;
      case cimp::Stmt::Kind::If: {
        LockSet A = cimpBlock(S.Body, Held, Pt, ModIdx, Func);
        LockSet Bs = cimpBlock(S.Else, Held, Pt, ModIdx, Func);
        Held = intersect(A, Bs);
        break;
      }
      case cimp::Stmt::Kind::While: {
        LockSet H = Held;
        for (unsigned Iter = 0; Iter < 8; ++Iter) {
          LockSet Out = cimpBlock(S.Body, H, Pt, ModIdx, Func);
          LockSet Next = intersect(H, Out);
          if (Next == H)
            break;
          H = std::move(Next);
        }
        Held = H;
        break;
      }
      case cimp::Stmt::Kind::Atomic: {
        LockSet Inner = Held;
        Inner.insert(AtomicToken);
        LockSet Out = cimpBlock(S.Body, std::move(Inner), Pt, ModIdx, Func);
        Out.erase(AtomicToken);
        Held = std::move(Out);
        break;
      }
      case cimp::Stmt::Kind::Call:
        Held = applyCall(&S, S.Callee, Held);
        break;
      case cimp::Stmt::Kind::Spawn:
        addSpawnRoot(S.Callee);
        break;
      }
    }
    return Held;
  }

  LockSet walkCImpFn(unsigned ModIdx, const cimp::Function &F,
                     LockSet Held) {
    PtMap Pt = cimpPt(F);
    return cimpBlock(F.Body, std::move(Held), Pt, ModIdx, F.Name);
  }

  // --- call dispatch ----------------------------------------------------

  LockSet applyCall(const void *Site, const std::string &Callee,
                    LockSet Held) {
    (void)Site;
    CalleeInfo CI = resolveCallee(Callee);
    switch (CI.K) {
    case CalleeInfo::Kind::LockAcquire:
    case CalleeInfo::Kind::LockRelease:
      if (CI.X86Impl) {
        // The client's lockset still tracks the token, but the external
        // assembly body is never walked: its own accesses (and their
        // TSO weak behaviours) are invisible here, so no certificate
        // may silently vouch for them. The dynamic detector — or an
        // object refinement proof plus the TSO robustness pass — must
        // cover the object side.
        Certifiable = false;
        note("lock entry '" + Callee +
             "' is implemented in x86 assembly — its body is outside "
             "the lockset walk, certificate declined");
      }
      if (CI.K == CalleeInfo::Kind::LockAcquire)
        Held.insert(CI.Token);
      else
        Held.erase(CI.Token);
      return Held;
    case CalleeInfo::Kind::ObjectOpaque:
      note("call to object-confined entry '" + Callee +
           "' skipped (Sec. 7.1 confinement)");
      return Held;
    case CalleeInfo::Kind::NonAnalyzable:
      inapplicable("thread code calls '" + Callee +
                   "', defined in a non-analyzable language");
      return Held;
    case CalleeInfo::Kind::Unknown:
      Certifiable = false;
      note("unknown extern '" + Callee +
           "' — cannot certify (unmodeled effects)");
      return Held;
    case CalleeInfo::Kind::ClightFn:
    case CalleeInfo::Kind::CImpFn:
      break;
    }

    auto Frame = std::make_pair(CI.ModIdx, Callee);
    if (std::find(CallStack.begin(), CallStack.end(), Frame) !=
        CallStack.end()) {
      Certifiable = false;
      note("recursive call to '" + Callee +
           "' — lockset analysis does not model recursion");
      return Held;
    }
    if (CallStack.size() > 64) {
      Certifiable = false;
      note("call depth limit reached at '" + Callee + "'");
      return Held;
    }
    CallStack.push_back(Frame);
    LockSet Out = CI.K == CalleeInfo::Kind::ClightFn
                      ? walkClightFn(CI.ModIdx, *CI.ClightF, std::move(Held))
                      : walkCImpFn(CI.ModIdx, *CI.CImpF, std::move(Held));
    CallStack.pop_back();
    return Out;
  }

  // --- roots -----------------------------------------------------------

  /// Adds a thread root for (module of) \p Entry; \p Instances counts the
  /// threads that run it. Roots found twice accumulate instances.
  void addRoot(const std::string &Entry, unsigned Instances) {
    CalleeInfo CI = resolveCallee(Entry);
    if (CI.K != CalleeInfo::Kind::ClightFn &&
        CI.K != CalleeInfo::Kind::CImpFn) {
      inapplicable("thread entry '" + Entry +
                   "' is not client Clight/CImp code");
      return;
    }
    for (Root &Rt : Roots) {
      if (Rt.ModIdx == CI.ModIdx && Rt.Entry == Entry) {
        Rt.Instances += Instances;
        return;
      }
    }
    Roots.push_back({CI.ModIdx, Entry, Instances});
  }

  /// Spawned threads may be created arbitrarily often (e.g. in a loop),
  /// so a spawn root conservatively counts as two instances.
  void addSpawnRoot(const std::string &Entry) {
    note("spawn of '" + Entry +
         "' — spawnee analyzed as a (replicated) thread root");
    addRoot(Entry, 2);
  }

  // --- the lockset consistency rule ------------------------------------

  void run() {
    for (unsigned T = 0; T < P.numThreads(); ++T)
      addRoot(P.threadEntry(T), 1);

    if (!Applicable)
      return;

    // Roots may grow while walking (spawn).
    for (unsigned RI = 0; RI < Roots.size(); ++RI) {
      CurRoot = RI;
      CalleeInfo CI = resolveCallee(Roots[RI].Entry);
      if (CI.K == CalleeInfo::Kind::ClightFn) {
        CallStack.push_back({CI.ModIdx, Roots[RI].Entry});
        walkClightFn(CI.ModIdx, *CI.ClightF, {});
        CallStack.pop_back();
      } else if (CI.K == CalleeInfo::Kind::CImpFn) {
        CallStack.push_back({CI.ModIdx, Roots[RI].Entry});
        walkCImpFn(CI.ModIdx, *CI.CImpF, {});
        CallStack.pop_back();
      }
      if (!Applicable)
        return;
    }

    // A root's instance count can grow after it was walked (a later root
    // spawning an earlier root's entry, or a root spawning itself), so
    // site instance counts are only meaningful now that all walks are
    // done. The walked sites themselves need no refresh: a merged spawn
    // runs the same code from the same empty lockset.
    for (auto &KV : Sites)
      KV.second.RootInstances = Roots[KV.second.Root].Instances;

    R.ThreadRoots = static_cast<unsigned>(Roots.size());
    R.AccessSites = static_cast<unsigned>(Sites.size());

    // Group sites by cell, expanding wildcard sites to every named cell.
    std::set<std::string> AllCells;
    for (const auto &KV : Sites)
      if (!KV.second.Wildcard)
        AllCells.insert(KV.second.Global);
    std::map<std::string, std::vector<const AccessSite *>> ByCell;
    for (const auto &KV : Sites) {
      const AccessSite &A = KV.second;
      if (A.Wildcard) {
        for (const std::string &C : AllCells)
          ByCell[C].push_back(&A);
        if (AllCells.empty())
          ByCell["*"].push_back(&A);
      } else {
        ByCell[A.Global].push_back(&A);
      }
    }

    for (const auto &Cell : ByCell) {
      const std::vector<const AccessSite *> &S = Cell.second;
      // Thread-escape filter: how many thread instances can reach it?
      std::set<unsigned> RootsHere;
      unsigned MaxInstances = 0;
      bool AnyWrite = false;
      for (const AccessSite *A : S) {
        RootsHere.insert(A->Root);
        MaxInstances = std::max(MaxInstances, A->RootInstances);
        AnyWrite = AnyWrite || A->Write;
      }
      bool MultiThread = RootsHere.size() >= 2 || MaxInstances >= 2;
      if (!MultiThread)
        continue; // thread-confined
      ++R.SharedCells;
      if (!AnyWrite)
        continue; // read-shared

      bool CellProtected = true;
      for (unsigned I = 0; I < S.size(); ++I) {
        for (unsigned J = I; J < S.size(); ++J) {
          const AccessSite &A = *S[I];
          const AccessSite &B = *S[J];
          // A site conflicts with itself only when its root is
          // replicated (two threads run the same code).
          bool Concurrent =
              A.Root != B.Root || A.RootInstances >= 2;
          if (&A == &B && A.RootInstances < 2)
            continue;
          if (!Concurrent || (!A.Write && !B.Write))
            continue;
          if (!intersect(A.Held, B.Held).empty())
            continue;
          CellProtected = false;
          PotentialRace PR;
          PR.Global = Cell.first;
          PR.A = A;
          PR.B = B;
          bool BothWrite = A.Write && B.Write;
          bool BothUnlocked = A.Held.empty() && B.Held.empty();
          bool OneUnlocked = A.Held.empty() || B.Held.empty();
          if (BothWrite && BothUnlocked)
            PR.Rank = 3;
          else if (BothUnlocked || (BothWrite && OneUnlocked))
            PR.Rank = 2;
          else
            PR.Rank = 1;
          R.Races.push_back(std::move(PR));
        }
      }
      if (CellProtected)
        ++R.ProtectedCells;
    }

    std::stable_sort(R.Races.begin(), R.Races.end(),
                     [](const PotentialRace &A, const PotentialRace &B) {
                       if (A.Rank != B.Rank)
                         return A.Rank > B.Rank;
                       return A.Global < B.Global;
                     });
  }
};

} // namespace

std::string AccessSite::describe() const {
  std::string Out = Module + "." + Func + ": " +
                    (Write ? "write " : "read ") +
                    (Wildcard ? "[*]" : Global) + " held=" +
                    lockSetToString(Held);
  if (RootInstances >= 2)
    Out += " (x" + std::to_string(RootInstances) + " threads)";
  return Out;
}

std::string PotentialRace::describe() const {
  return "cell '" + Global + "' rank " + std::to_string(Rank) + ": [" +
         A.describe() + "] vs [" + B.describe() + "]";
}

const char *ccc::analysis::verdictName(StaticVerdict V) {
  switch (V) {
  case StaticVerdict::Certified:
    return "certified-DRF";
  case StaticVerdict::Racy:
    return "potentially-racy";
  case StaticVerdict::Inapplicable:
    return "inapplicable";
  }
  return "?";
}

std::string StaticDrfReport::toString() const {
  StrBuilder B;
  B << "static DRF verdict: " << verdictName(Verdict) << " (roots "
    << ThreadRoots << ", sites " << AccessSites << ", shared "
    << SharedCells << ", protected " << ProtectedCells << ")\n";
  for (const PotentialRace &R : Races)
    B << "  potential race: " << R.describe() << "\n";
  for (const std::string &N : Notes)
    B << "  note: " << N << "\n";
  return B.take();
}

StaticDrfReport ccc::analysis::staticRaceAnalysis(const Program &P) {
  StaticDrfReport R;
  if (!P.linked()) {
    R.Verdict = StaticVerdict::Inapplicable;
    R.Notes.push_back("program is not linked");
    return R;
  }
  Analyzer A(P, R);
  A.run();
  if (!A.Applicable)
    R.Verdict = StaticVerdict::Inapplicable;
  else if (!R.Races.empty())
    R.Verdict = StaticVerdict::Racy;
  else if (!A.Certifiable)
    R.Verdict = StaticVerdict::Inapplicable;
  else
    R.Verdict = StaticVerdict::Certified;
  return R;
}
