//===- compiler/Asmgen.cpp - Mach to x86 assembly --------------------------===//

#include "compiler/Passes.h"

#include "x86/X86Lang.h"

#include <cassert>
#include <map>
#include <set>

using namespace ccc;
using namespace ccc::compiler;
using namespace ccc::x86;
using mach::Loc;

namespace {

class FnEmitter {
public:
  FnEmitter(const mach::Function &F, Module &Out) : F(F), Out(Out) {}

  void emitFunction() {
    label(F.Name);
    EntryInfo E;
    E.FrameSize = F.FrameSize;
    E.Arity = F.NumParams;
    Out.Entries[F.Name] = E;

    // Prologue: arguments arrive in EDI/ESI/EDX and move to their homes
    // (the allocator never assigns those registers, so no clobbering).
    for (unsigned I = 0; I < F.NumParams; ++I)
      emitMove(Operand::reg(X86Lang::ArgRegs[I]), locOp(F.ParamHomes[I]));

    for (const mach::Instr &I : F.Code)
      emitInstr(I);
  }

private:
  static constexpr Reg Scratch = Reg::EAX;
  static constexpr Reg Scratch2 = Reg::EDX;

  Operand locOp(const Loc &L) const {
    if (L.IsReg)
      return Operand::reg(L.R);
    return Operand::memBase(Reg::ESP, static_cast<int32_t>(L.Slot));
  }

  std::string labelName(unsigned Id) const {
    return F.Name + "_L" + std::to_string(Id);
  }

  void push(Instr I) { Out.Code.push_back(std::move(I)); }

  void label(const std::string &Name) {
    Instr I;
    I.K = Instr::Kind::Label;
    I.Name = Name;
    Out.Labels[Name] = static_cast<unsigned>(Out.Code.size());
    push(std::move(I));
  }

  void bin(Instr::Kind K, Operand Src, Operand Dst) {
    Instr I;
    I.K = K;
    I.Src = std::move(Src);
    I.Dst = std::move(Dst);
    push(std::move(I));
  }

  /// movl with the one-memory-operand constraint handled via EAX.
  void emitMove(Operand Src, Operand Dst) {
    if (Src.isMem() && Dst.isMem()) {
      bin(Instr::Kind::Mov, Src, Operand::reg(Scratch));
      bin(Instr::Kind::Mov, Operand::reg(Scratch), Dst);
      return;
    }
    bin(Instr::Kind::Mov, std::move(Src), std::move(Dst));
  }

  void jump(const std::string &Target) {
    Instr I;
    I.K = Instr::Kind::Jmp;
    I.Name = Target;
    push(std::move(I));
  }

  Cond condOf(ir::Cmp C) const {
    switch (C) {
    case ir::Cmp::Eq:
      return Cond::E;
    case ir::Cmp::Ne:
      return Cond::NE;
    case ir::Cmp::Lt:
      return Cond::L;
    case ir::Cmp::Le:
      return Cond::LE;
    case ir::Cmp::Gt:
      return Cond::G;
    case ir::Cmp::Ge:
      return Cond::GE;
    }
    return Cond::E;
  }

  void setcc(ir::Cmp C, Reg R) {
    Instr I;
    I.K = Instr::Kind::Setcc;
    I.CC = condOf(C);
    I.Dst = Operand::reg(R);
    push(std::move(I));
  }

  void emitOp(const mach::Instr &I) {
    using ir::Oper;
    Operand Dst = locOp(I.Dst);
    auto A = [&]() { return locOp(I.Args[0]); };
    auto B = [&]() { return locOp(I.Args[1]); };
    Operand Acc = Operand::reg(Scratch);

    auto viaAcc = [&](Instr::Kind K, Operand Rhs) {
      emitMove(A(), Acc);
      bin(K, std::move(Rhs), Acc);
      emitMove(Acc, Dst);
    };

    switch (I.O) {
    case Oper::Intconst:
      emitMove(Operand::imm(I.Imm), Dst);
      break;
    case Oper::Addrglobal:
      emitMove(Operand::globalImm(I.Global), Dst);
      break;
    case Oper::Move:
      emitMove(A(), Dst);
      break;
    case Oper::Neg: {
      emitMove(A(), Acc);
      Instr N;
      N.K = Instr::Kind::Neg;
      N.Dst = Acc;
      push(std::move(N));
      emitMove(Acc, Dst);
      break;
    }
    case Oper::BoolNot:
      emitMove(A(), Acc);
      bin(Instr::Kind::Cmp, Operand::imm(0), Acc);
      setcc(ir::Cmp::Eq, Scratch);
      emitMove(Acc, Dst);
      break;
    case Oper::AddImm:
      viaAcc(Instr::Kind::Add, Operand::imm(I.Imm));
      break;
    case Oper::MulImm:
      viaAcc(Instr::Kind::Imul, Operand::imm(I.Imm));
      break;
    case Oper::ShlImm:
      viaAcc(Instr::Kind::Shl, Operand::imm(I.Imm));
      break;
    case Oper::SarImm:
      viaAcc(Instr::Kind::Sar, Operand::imm(I.Imm));
      break;
    case Oper::CmpImm:
      emitMove(A(), Acc);
      bin(Instr::Kind::Cmp, Operand::imm(I.Imm), Acc);
      setcc(I.C, Scratch);
      emitMove(Acc, Dst);
      break;
    case Oper::Cmp:
      emitMove(A(), Acc);
      bin(Instr::Kind::Cmp, B(), Acc);
      setcc(I.C, Scratch);
      emitMove(Acc, Dst);
      break;
    case Oper::Add:
      viaAcc(Instr::Kind::Add, B());
      break;
    case Oper::Sub:
      viaAcc(Instr::Kind::Sub, B());
      break;
    case Oper::Mul:
      viaAcc(Instr::Kind::Imul, B());
      break;
    case Oper::And:
      viaAcc(Instr::Kind::And, B());
      break;
    case Oper::Or:
      viaAcc(Instr::Kind::Or, B());
      break;
    case Oper::Xor:
      viaAcc(Instr::Kind::Xor, B());
      break;
    case Oper::Div:
      viaAcc(Instr::Kind::Div, B());
      break;
    case Oper::Mod: {
      // dst = a - (a/b)*b, via the EAX/EDX scratch pair.
      emitMove(A(), Acc);
      bin(Instr::Kind::Div, B(), Acc);
      bin(Instr::Kind::Imul, B(), Acc);
      emitMove(A(), Operand::reg(Scratch2));
      bin(Instr::Kind::Sub, Acc, Operand::reg(Scratch2));
      emitMove(Operand::reg(Scratch2), Dst);
      break;
    }
    }
  }

  void emitInstr(const mach::Instr &I) {
    using K = mach::Instr::Kind;
    switch (I.K) {
    case K::Label:
      label(labelName(I.Label));
      break;
    case K::Goto:
      jump(labelName(I.Label));
      break;
    case K::Op:
      emitOp(I);
      break;
    case K::Load: {
      Operand Acc = Operand::reg(Scratch);
      if (I.AM.K == linear::AddrMode::Kind::Global) {
        emitMove(Operand::memGlobal(I.AM.Global), Acc);
      } else {
        emitMove(locOp(I.AM.Base), Operand::reg(Scratch2));
        bin(Instr::Kind::Mov, Operand::memBase(Scratch2, 0), Acc);
      }
      emitMove(Acc, locOp(I.Dst));
      break;
    }
    case K::Store: {
      Operand Acc = Operand::reg(Scratch);
      emitMove(locOp(I.Args[0]), Acc);
      if (I.AM.K == linear::AddrMode::Kind::Global) {
        bin(Instr::Kind::Mov, Acc, Operand::memGlobal(I.AM.Global));
      } else {
        emitMove(locOp(I.AM.Base), Operand::reg(Scratch2));
        bin(Instr::Kind::Mov, Acc, Operand::memBase(Scratch2, 0));
      }
      break;
    }
    case K::Call:
    case K::Tailcall: {
      for (std::size_t A = 0; A < I.Args.size(); ++A)
        emitMove(locOp(I.Args[A]), Operand::reg(X86Lang::ArgRegs[A]));
      CallArity[I.Callee] = static_cast<unsigned>(I.Args.size());
      Instr C;
      C.K = I.K == K::Call ? Instr::Kind::Call : Instr::Kind::TailCall;
      C.Name = I.Callee;
      push(std::move(C));
      if (I.K == K::Call && I.HasDst &&
          !(I.Dst == Loc::reg(Reg::EAX)))
        emitMove(Operand::reg(Reg::EAX), locOp(I.Dst));
      break;
    }
    case K::Cond: {
      Operand Acc = Operand::reg(Scratch);
      emitMove(locOp(I.Args[0]), Acc);
      Operand Rhs = I.CondOneArg ? Operand::imm(I.Imm) : locOp(I.Args[1]);
      bin(Instr::Kind::Cmp, std::move(Rhs), Acc);
      Instr J;
      J.K = Instr::Kind::Jcc;
      J.CC = condOf(I.C);
      J.Name = labelName(I.Label);
      push(std::move(J));
      break;
    }
    case K::Return: {
      if (I.HasArg)
        emitMove(locOp(I.Args[0]), Operand::reg(Reg::EAX));
      else
        emitMove(Operand::imm(0), Operand::reg(Reg::EAX));
      Instr R;
      R.K = Instr::Kind::Ret;
      push(std::move(R));
      break;
    }
    case K::Print: {
      Instr P;
      P.K = Instr::Kind::Print;
      P.Src = locOp(I.Args[0]);
      push(std::move(P));
      break;
    }
    }
  }

  const mach::Function &F;
  Module &Out;

public:
  std::map<std::string, unsigned> CallArity;
};

} // namespace

std::shared_ptr<Module> ccc::compiler::asmgen(const mach::Module &M) {
  auto Out = std::make_shared<Module>();
  Out->Globals = M.Globals;
  std::map<std::string, unsigned> CallArities;
  for (const mach::Function &F : M.Funcs) {
    FnEmitter E(F, *Out);
    E.emitFunction();
    for (const auto &KV : E.CallArity) {
      assert((!CallArities.count(KV.first) ||
              CallArities[KV.first] == KV.second) &&
             "inconsistent callee arity");
      CallArities[KV.first] = KV.second;
    }
  }
  // Callees not defined here are externs.
  for (const auto &KV : CallArities)
    if (!Out->Entries.count(KV.first))
      Out->ExternArity[KV.first] = KV.second;
  // Fix entry PC indices.
  for (auto &E : Out->Entries)
    E.second.PCIndex = Out->Labels.at(E.first);
  return Out;
}
