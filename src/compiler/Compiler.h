//===- compiler/Compiler.h - The CASCompCert driver -------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation driver (Sec. 7.2): CompCert(gamma) runs the twelve
/// passes of Fig. 11 on one Clight module, retaining every intermediate
/// module so each pass can be validated separately; IdTrans is the
/// identity transformation used for the CImp object module.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_COMPILER_COMPILER_H
#define CASCC_COMPILER_COMPILER_H

#include "compiler/Passes.h"
#include "core/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace ccc {
namespace compiler {

/// All stages of one module's compilation, in pipeline order.
struct CompileResult {
  std::shared_ptr<const clight::Module> Clight;
  std::shared_ptr<csharp::Module> Csharpminor;
  std::shared_ptr<cminor::Module> Cminor;
  std::shared_ptr<cminorsel::Module> CminorSel;
  std::shared_ptr<rtl::Module> RTL;
  std::shared_ptr<rtl::Module> RTLTailcall;
  std::shared_ptr<rtl::Module> RTLRenumber;
  std::shared_ptr<ltl::Module> LTL;
  std::shared_ptr<ltl::Module> LTLTunneled;
  std::shared_ptr<linear::Module> Linear;
  std::shared_ptr<linear::Module> LinearClean;
  std::shared_ptr<mach::Module> Mach;
  std::shared_ptr<x86::Module> Asm;

  /// Findings of the per-IR structural verifiers (analysis/IRVerifier.h),
  /// run by compileClight over every stage; empty when all stages are
  /// well-formed. Consumers that go on to validate or execute stages
  /// should treat a nonempty list as a compiler bug.
  std::vector<std::string> VerifyErrors;
};

/// The ordered pass names of Fig. 11 (also the row labels of Fig. 13).
const std::vector<std::string> &passNames();

/// Runs the full pipeline on one Clight module.
CompileResult compileClight(std::shared_ptr<const clight::Module> M);

/// Convenience: parse + compile Clight source, aborting on parse errors.
CompileResult compileClightSource(const std::string &Source);

/// Number of pipeline stages (Clight + one per pass = 13).
unsigned numStages();

/// The stage's language name ("Clight", "Csharpminor", ..., "x86-SC").
const std::string &stageName(unsigned Stage);

/// Registers stage \p Stage of \p R as a module of \p P (x86 runs under
/// SC); returns the module index.
unsigned addStage(Program &P, const CompileResult &R, unsigned Stage,
                  const std::string &Name);

} // namespace compiler
} // namespace ccc

#endif // CASCC_COMPILER_COMPILER_H
