# Empty compiler generated dependencies file for separate_compilation.
# This may be replaced when dependencies are built.
