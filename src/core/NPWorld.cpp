//===- core/NPWorld.cpp - The non-preemptive global semantics -------------===//

#include "core/NPWorld.h"

#include "mem/MemPred.h"
#include "support/Hashing.h"
#include "support/StrUtil.h"

#include <cassert>
#include <deque>
#include <set>

using namespace ccc;

std::vector<NPWorld> NPWorld::loadAll(const Program &P) {
  std::vector<NPWorld> Out;
  for (ThreadId T = 0; T < P.numThreads(); ++T)
    Out.push_back(load(P, T));
  return Out;
}

NPWorld NPWorld::load(const Program &P, ThreadId Start) {
  assert(P.linked() && "link the program before loading");
  NPWorld W;
  W.Prog = &P;
  W.M = P.initialMem();
  W.Cur = Start;
  for (ThreadId T = 0; T < P.numThreads(); ++T) {
    ThreadState TS;
    auto Resolved = P.resolveEntry(P.threadEntry(T), P.threadArgs(T));
    if (!Resolved) {
      W.Abort = true;
      W.AbortReason = "unknown thread entry: " + P.threadEntry(T);
      return W;
    }
    FreeList Region = P.threadRegion(T);
    TS.pushFrame(Frame{Resolved->first, Resolved->second,
                       Region.subRegion(0, Program::FrameRegionSize)},
                 Program::FrameRegionSize);
    W.Threads.push_back(std::move(TS));
    W.DBits.push_back(0);
  }
  if (!closedMem(W.M)) {
    W.Abort = true;
    W.AbortReason = "initial memory not closed";
  }
  return W;
}

bool NPWorld::done() const {
  if (Abort)
    return false;
  for (const ThreadState &T : Threads)
    if (!T.finished())
      return false;
  return true;
}

GSucc<NPWorld> NPWorld::makeAbort(std::string Reason) const {
  NPWorld Next = *this;
  Next.Abort = true;
  Next.AbortReason = std::move(Reason);
  return GSucc<NPWorld>{GLabel::tau(), Footprint::emp(), Cur,
                        std::move(Next)};
}

void NPWorld::pushSwitches(std::vector<GSucc<NPWorld>> &Out,
                           const NPWorld &Base, GLabel L,
                           const Footprint &FP) const {
  bool Any = false;
  for (ThreadId T = 0; T < Base.Threads.size(); ++T) {
    if (Base.Threads[T].finished())
      continue;
    NPWorld Next = Base;
    Next.Cur = T;
    Out.push_back(GSucc<NPWorld>{L, FP, T, std::move(Next)});
    Any = true;
  }
  if (!Any) {
    // No runnable thread remains: keep the post-step world (it is done).
    Out.push_back(GSucc<NPWorld>{L, FP, Base.Cur, Base});
  }
}

std::vector<GSucc<NPWorld>> NPWorld::succ() const {
  std::vector<GSucc<NPWorld>> Out;
  if (Abort || done())
    return Out;

  const ThreadState &CurT = Threads[Cur];
  assert(!CurT.finished() && "current thread of an NP world is finished");
  const ModuleDecl &Mod = Prog->module(CurT.top().ModIdx);
  auto Steps = Mod.Lang->step(CurT.top().F, *CurT.top().C, M);
  if (Steps.empty())
    Out.push_back(makeAbort("thread stuck"));

  for (const LocalStep &LS : Steps) {
    if (LS.Abort) {
      Out.push_back(makeAbort(LS.AbortReason));
      continue;
    }
    switch (LS.M.K) {
    case Msg::Kind::EntAtom: {
      // EntAt-np: step, set dd(t) := 1, then switch.
      if (DBits[Cur]) {
        Out.push_back(makeAbort("nested atomic block"));
        break;
      }
      NPWorld Base = *this;
      Base.DBits[Cur] = 1;
      Base.Threads[Cur].setTopCore(LS.Next);
      pushSwitches(Out, Base, GLabel::sw(), LS.FP);
      break;
    }
    case Msg::Kind::ExtAtom: {
      // ExtAt-np: step, set dd(t) := 0, then switch.
      if (!DBits[Cur]) {
        Out.push_back(makeAbort("ExtAtom outside atomic block"));
        break;
      }
      NPWorld Base = *this;
      Base.DBits[Cur] = 0;
      Base.Threads[Cur].setTopCore(LS.Next);
      pushSwitches(Out, Base, GLabel::sw(), LS.FP);
      break;
    }
    case Msg::Kind::Event: {
      // Observable events are interaction points: emit then switch.
      NPWorld Base = *this;
      Base.Threads[Cur].setTopCore(LS.Next);
      Base.M = LS.NextMem;
      pushSwitches(Out, Base, GLabel::event(LS.M.EventVal), LS.FP);
      break;
    }
    case Msg::Kind::Spawn: {
      // Spawn is an interaction point in the non-preemptive semantics:
      // the new thread becomes schedulable immediately.
      NPWorld Base = *this;
      std::string Reason;
      if (!spawnThread(*Prog, Base.Threads, LS.M, Reason)) {
        Out.push_back(makeAbort(Reason));
        break;
      }
      Base.DBits.push_back(0);
      Base.Threads[Cur].setTopCore(LS.Next);
      Base.M = LS.NextMem;
      pushSwitches(Out, Base, GLabel::sw(), LS.FP);
      break;
    }
    default: {
      NPWorld Base = *this;
      std::string Reason;
      FrameStepStatus St =
          applyFrameStep(*Prog, Base.Threads[Cur], Prog->threadRegion(Cur),
                         LS, Base.M, Reason);
      if (St == FrameStepStatus::Abort) {
        Out.push_back(makeAbort(Reason));
        break;
      }
      if (St == FrameStepStatus::ThreadFinished) {
        if (DBits[Cur]) {
          Out.push_back(makeAbort("thread terminated inside atomic block"));
          break;
        }
        // Thread termination is a switch point.
        pushSwitches(Out, Base, GLabel::sw(), LS.FP);
        break;
      }
      // Internal step: the same thread continues (no preemption).
      Out.push_back(
          GSucc<NPWorld>{GLabel::tau(), LS.FP, Cur, std::move(Base)});
      break;
    }
    }
  }
  return Out;
}

std::string NPWorld::residueKey() const {
  StrBuilder B;
  if (Abort)
    B << "ABORT|";
  B << 't' << Cur << 'd';
  for (uint8_t D : DBits)
    B << (D ? '1' : '0');
  for (const ThreadState &T : Threads)
    B << '[' << threadKey(T) << ']';
  return B.take();
}

void NPWorld::residueBytes(ResidueBuf &B) const {
  // Mirrors residueKey(): abort flag (not the reason), scheduler
  // pointer, the per-thread atomic bits (length-prefixed, packed 32 per
  // word), then one subtree per thread.
  B.word(Abort ? 1u : 0u);
  B.word(Cur);
  B.word(static_cast<uint32_t>(DBits.size()));
  for (std::size_t Base = 0; Base < DBits.size(); Base += 32) {
    uint32_t W = 0;
    for (std::size_t I = Base; I < DBits.size() && I < Base + 32; ++I)
      W |= uint32_t(DBits[I] ? 1 : 0) << (I - Base);
    B.word(W);
  }
  for (const ThreadState &T : Threads)
    B.word(T.residueRoot(B));
}

std::string NPWorld::key() const {
  StrBuilder B;
  B << residueKey() << '#' << M.key();
  return B.take();
}

uint64_t NPWorld::hashKey() const {
  Hasher64 H;
  H.b(Abort);
  H.u32(Cur);
  for (uint8_t D : DBits)
    H.b(D != 0);
  for (const ThreadState &T : Threads)
    H.u64(threadHash(T));
  H.u64(M.hashKey());
  return H.get();
}

std::vector<InstrFootprint> NPWorld::predictFor(ThreadId T) const {
  // NPDRF prediction (Sec. 5): in the non-preemptive semantics a thread
  // runs a whole synchronization-free chunk between switch points, so the
  // predicted footprint is the accumulated footprint of the thread's next
  // chunk (cf. DRFx's region conflicts, which the paper relates to
  // NPDRF). Chunks never span atomic-block boundaries because EntAtom and
  // ExtAtom are switch points, so the whole chunk carries the thread's
  // current atomic bit.
  std::vector<InstrFootprint> Out;
  if (Abort || Threads[T].finished())
    return Out;
  const bool InAtomic = DBits[T] != 0;

  NPWorld Start = *this;
  Start.Cur = T;
  struct Item {
    NPWorld W;
    Footprint Acc;
  };
  std::deque<Item> Work;
  std::set<std::string> Seen;
  std::set<std::string> Recorded;
  Work.push_back({std::move(Start), Footprint::emp()});
  unsigned Visited = 0;
  const unsigned MaxStates = 4096;

  auto record = [&](const Footprint &FP) {
    if (Recorded.insert(FP.toString()).second)
      Out.push_back(InstrFootprint{FP, InAtomic});
  };

  while (!Work.empty()) {
    Item Cur = std::move(Work.front());
    Work.pop_front();
    if (++Visited > MaxStates) {
      record(Cur.Acc); // conservative cutoff
      continue;
    }
    // Dedup on (state, accumulated footprint), not the state alone: two
    // paths of the chunk can converge on one state while having touched
    // different locations, and dropping the second path's Acc would
    // under-approximate the Predict set (and miss NPDRF races). The pair
    // space is finite (states x subsets of touched addresses), and the
    // Visited cap above still bounds the walk conservatively.
    if (!Seen.insert(Cur.W.key() + '\x1f' + Cur.Acc.toString()).second)
      continue;
    auto Succs = Cur.W.succ();
    if (Succs.empty()) {
      record(Cur.Acc);
      continue;
    }
    for (auto &S : Succs) {
      Footprint Acc = Cur.Acc.unioned(S.FP);
      if (S.L.K != GLabel::Kind::Tau || S.Next.aborted()) {
        // A switch point (or abort) ends the chunk.
        record(Acc);
        continue;
      }
      Work.push_back({std::move(S.Next), std::move(Acc)});
    }
  }
  return Out;
}
