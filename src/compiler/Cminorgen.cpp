//===- compiler/Cminorgen.cpp - C#minor to Cminor --------------------------===//

#include "compiler/Passes.h"

#include <cassert>

using namespace ccc;
using namespace ccc::compiler;

namespace {

cminor::ExprPtr trExpr(const csharp::Expr &E);

cminor::ExprPtr trExprPtr(const csharp::ExprPtr &E) {
  return E ? trExpr(*E) : nullptr;
}

cminor::ExprPtr trExpr(const csharp::Expr &E) {
  auto Out = std::make_unique<cminor::Expr>();
  switch (E.K) {
  case csharp::Expr::Kind::Const:
    Out->K = cminor::Expr::Kind::Const;
    Out->IntVal = E.IntVal;
    return Out;
  case csharp::Expr::Kind::AddrSlot:
    // Slot addresses must only appear directly under Load/Store (our
    // Clight subset has no address-taken locals); those are rewritten in
    // trLoadStore below.
    assert(false && "escaping slot address after Cshmgen");
    return Out;
  case csharp::Expr::Kind::AddrGlobal:
    Out->K = cminor::Expr::Kind::AddrGlobal;
    Out->Global = E.Global;
    return Out;
  case csharp::Expr::Kind::Load:
    // Load(AddrSlot i) becomes a temporary read; other loads stay loads.
    if (E.L->K == csharp::Expr::Kind::AddrSlot) {
      Out->K = cminor::Expr::Kind::Temp;
      Out->Temp = E.L->Slot;
      return Out;
    }
    Out->K = cminor::Expr::Kind::Load;
    Out->L = trExpr(*E.L);
    return Out;
  case csharp::Expr::Kind::Un:
    Out->K = cminor::Expr::Kind::Un;
    Out->U = E.U;
    Out->L = trExpr(*E.L);
    return Out;
  case csharp::Expr::Kind::Bin:
    Out->K = cminor::Expr::Kind::Bin;
    Out->B = E.B;
    Out->L = trExpr(*E.L);
    Out->R = trExpr(*E.R);
    return Out;
  }
  return Out;
}

void trBlock(const csharp::Block &In, cminor::Block &Out);

void trStmt(const csharp::Stmt &St, cminor::Block &Out) {
  using SK = csharp::Stmt::Kind;
  auto S = std::make_unique<cminor::Stmt>();
  switch (St.K) {
  case SK::Skip:
    S->K = cminor::Stmt::Kind::Skip;
    break;
  case SK::Store:
    // Store(AddrSlot i, e) becomes SetTemp; other stores stay stores.
    if (St.E1->K == csharp::Expr::Kind::AddrSlot) {
      S->K = cminor::Stmt::Kind::SetTemp;
      S->Dst = St.E1->Slot;
      S->E1 = trExpr(*St.E2);
    } else {
      S->K = cminor::Stmt::Kind::Store;
      S->E1 = trExpr(*St.E1);
      S->E2 = trExpr(*St.E2);
    }
    break;
  case SK::If:
    S->K = cminor::Stmt::Kind::If;
    S->E1 = trExpr(*St.E1);
    trBlock(St.Body, S->Body);
    trBlock(St.Else, S->Else);
    break;
  case SK::While:
    S->K = cminor::Stmt::Kind::While;
    S->E1 = trExpr(*St.E1);
    trBlock(St.Body, S->Body);
    break;
  case SK::Call:
    S->K = cminor::Stmt::Kind::Call;
    S->Callee = St.Callee;
    S->HasDst = St.HasDst;
    S->Dst = St.DstSlot;
    for (const auto &A : St.Args)
      S->Args.push_back(trExpr(*A));
    break;
  case SK::Return:
    S->K = cminor::Stmt::Kind::Return;
    S->E1 = trExprPtr(St.E1);
    break;
  case SK::Print:
    S->K = cminor::Stmt::Kind::Print;
    S->E1 = trExpr(*St.E1);
    break;
  }
  Out.push_back(std::move(S));
}

void trBlock(const csharp::Block &In, cminor::Block &Out) {
  for (const auto &S : In)
    trStmt(*S, Out);
}

} // namespace

std::shared_ptr<cminor::Module>
ccc::compiler::cminorgen(const csharp::Module &M) {
  auto Out = std::make_shared<cminor::Module>();
  Out->Globals = M.Globals;
  for (const csharp::Function &F : M.Funcs) {
    cminor::Function CF;
    CF.Name = F.Name;
    CF.RetVoid = F.RetVoid;
    CF.NumParams = F.NumParams;
    CF.NumTemps = F.NumSlots;
    CF.FrameSize = 0; // no address-taken locals in the subset
    trBlock(F.Body, CF.Body);
    Out->Funcs.push_back(std::move(CF));
  }
  return Out;
}
