//===- bench/BenchTable.h - Console tables for the benchmark harness ------===//
//
// Shared helpers for the experiment binaries: fixed-width console tables
// and wall-clock timing.
//
//===----------------------------------------------------------------------===//

#ifndef CASCC_BENCH_BENCHTABLE_H
#define CASCC_BENCH_BENCHTABLE_H

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace benchtable {

class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  void print() const {
    std::vector<std::size_t> Width(Headers.size());
    for (std::size_t I = 0; I < Headers.size(); ++I)
      Width[I] = Headers[I].size();
    for (const auto &Row : Rows)
      for (std::size_t I = 0; I < Row.size() && I < Width.size(); ++I)
        Width[I] = std::max(Width[I], Row[I].size());

    auto printRow = [&](const std::vector<std::string> &Row) {
      std::printf("|");
      for (std::size_t I = 0; I < Width.size(); ++I) {
        const std::string &Cell = I < Row.size() ? Row[I] : std::string();
        std::printf(" %-*s |", static_cast<int>(Width[I]), Cell.c_str());
      }
      std::printf("\n");
    };
    auto printSep = [&]() {
      std::printf("+");
      for (std::size_t I = 0; I < Width.size(); ++I) {
        for (std::size_t J = 0; J < Width[I] + 2; ++J)
          std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    printSep();
    printRow(Headers);
    printSep();
    for (const auto &Row : Rows)
      printRow(Row);
    printSep();
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

private:
  std::chrono::steady_clock::time_point Start;
};

inline std::string fmtMs(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Ms);
  return Buf;
}

inline std::string yesNo(bool B) { return B ? "yes" : "no"; }

} // namespace benchtable

#endif // CASCC_BENCH_BENCHTABLE_H
