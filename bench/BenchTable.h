//===- bench/BenchTable.h - Console tables for the benchmark harness ------===//
//
// Shared helpers for the experiment binaries: fixed-width console tables
// and wall-clock timing.
//
//===----------------------------------------------------------------------===//

#ifndef CASCC_BENCH_BENCHTABLE_H
#define CASCC_BENCH_BENCHTABLE_H

#include "core/MemModel.h"
#include "support/JsonOut.h"

#include <chrono>
#include <optional>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace benchtable {

/// The command-line options shared by every bench binary. Each binary
/// used to hand-roll its own `--no-por` scan (and bench_drf its own
/// `--capacity`); the one parser below is the single place a new shared
/// flag is added.
struct BenchFlags {
  /// Partial-order reduction on (off with `--no-por`, so reduced and
  /// full runs can be archived and diffed by tooling).
  bool Por = true;
  /// Fence synthesis enabled (off with `--no-fence-synth`): bench_tso's
  /// escape hatch to skip the repair pipeline and report raw NotRobust
  /// workloads only.
  bool FenceSynth = true;
  /// bench_drf's `--capacity` soak mode (ignored by the other binaries).
  bool Capacity = false;
  /// `--model=sc|tso|relaxed`: the memory model for the model-parametric
  /// workloads/sections of a binary. Unset means the binary's default —
  /// bench_tso's litmus matrix then sweeps every model; bench_drf's x86
  /// POR families run under TSO. Binaries whose expectations are pinned
  /// to one model (the E3 goldens, the refinement gates) accept and
  /// ignore it.
  std::optional<ccc::MemModel> Model;
};

inline void printBenchHelp(const char *Prog) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Options shared by all bench binaries:\n"
      "  --no-por          explore without partial-order reduction (full\n"
      "                    state spaces, for POR-on/off diffing)\n"
      "  --no-fence-synth  skip the fence-synthesis repair pipeline\n"
      "                    (bench_tso only; others accept and ignore it)\n"
      "  --capacity        run the state-store capacity soak instead of\n"
      "                    the benchmark (bench_drf only)\n"
      "  --model=MODEL     memory model (sc|tso|relaxed) for the\n"
      "                    model-parametric sections: restricts\n"
      "                    bench_tso's litmus matrix to one model and\n"
      "                    sets the model of bench_drf's x86 POR\n"
      "                    families; pinned-model sections ignore it\n"
      "  --help            show this text\n",
      Prog);
}

/// The exit-free core of the shared flag parser, testable in-process.
/// Returns the parsed flags, or nullopt with \p Err naming the offending
/// flag. Rejected (each with its own message):
///  - unknown arguments,
///  - `--model=` values other than sc/tso/relaxed (including empty),
///  - duplicate occurrences of any flag (`--no-por --no-por`),
///  - conflicting `--model=` values (`--model=sc --model=tso`) — a
///    repeated flag used to silently last-win, so a typo'd script could
///    run under the wrong model without any diagnostic.
/// `--help` is NOT consumed here; the exiting wrapper handles it.
inline std::optional<BenchFlags>
tryParseBenchFlags(const std::vector<std::string> &Args, std::string &Err) {
  BenchFlags F;
  bool SawPor = false, SawFenceSynth = false, SawCapacity = false;
  std::string ModelArg;
  for (const std::string &Arg : Args) {
    if (Arg == "--no-por") {
      if (SawPor) {
        Err = "duplicate flag '--no-por'";
        return std::nullopt;
      }
      SawPor = true;
      F.Por = false;
    } else if (Arg == "--no-fence-synth") {
      if (SawFenceSynth) {
        Err = "duplicate flag '--no-fence-synth'";
        return std::nullopt;
      }
      SawFenceSynth = true;
      F.FenceSynth = false;
    } else if (Arg == "--capacity") {
      if (SawCapacity) {
        Err = "duplicate flag '--capacity'";
        return std::nullopt;
      }
      SawCapacity = true;
      F.Capacity = true;
    } else if (Arg.rfind("--model=", 0) == 0) {
      const std::string Val = Arg.substr(8);
      if (!ModelArg.empty()) {
        Err = ModelArg == Arg
                  ? "duplicate flag '" + Arg + "'"
                  : "conflicting flags '" + ModelArg + "' and '" + Arg + "'";
        return std::nullopt;
      }
      F.Model = ccc::parseMemModel(Val);
      if (!F.Model) {
        Err = "unknown memory model '" + Val + "' in '" + Arg +
              "' (expected sc|tso|relaxed)";
        return std::nullopt;
      }
      ModelArg = Arg;
    } else {
      Err = "unknown argument '" + Arg + "'";
      return std::nullopt;
    }
  }
  return F;
}

/// Parses the shared flag set. `--help` prints the shared help text and
/// exits 0; any rejected argument (see tryParseBenchFlags) prints a
/// message naming the offending flag and exits 2.
inline BenchFlags parseBenchFlags(int argc, char **argv) {
  const char *Prog = argc > 0 ? argv[0] : "bench";
  std::vector<std::string> Args;
  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printBenchHelp(Prog);
      std::exit(0);
    }
    Args.push_back(Arg);
  }
  std::string Err;
  std::optional<BenchFlags> F = tryParseBenchFlags(Args, Err);
  if (!F) {
    std::fprintf(stderr, "%s\n\n", Err.c_str());
    printBenchHelp(Prog);
    std::exit(2);
  }
  return *F;
}

/// Escapes a string for embedding in a JSON document (shared emission
/// layer: support/JsonOut.h).
inline std::string jsonStr(const std::string &S) { return ccc::json::str(S); }

/// The sectioned JSON document writer, shared with the batch server.
using JsonLog = ccc::json::Log;

class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  void print() const {
    std::vector<std::size_t> Width(Headers.size());
    for (std::size_t I = 0; I < Headers.size(); ++I)
      Width[I] = Headers[I].size();
    for (const auto &Row : Rows)
      for (std::size_t I = 0; I < Row.size() && I < Width.size(); ++I)
        Width[I] = std::max(Width[I], Row[I].size());

    auto printRow = [&](const std::vector<std::string> &Row) {
      std::printf("|");
      for (std::size_t I = 0; I < Width.size(); ++I) {
        const std::string &Cell = I < Row.size() ? Row[I] : std::string();
        std::printf(" %-*s |", static_cast<int>(Width[I]), Cell.c_str());
      }
      std::printf("\n");
    };
    auto printSep = [&]() {
      std::printf("+");
      for (std::size_t I = 0; I < Width.size(); ++I) {
        for (std::size_t J = 0; J < Width[I] + 2; ++J)
          std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    printSep();
    printRow(Headers);
    printSep();
    for (const auto &Row : Rows)
      printRow(Row);
    printSep();
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

private:
  std::chrono::steady_clock::time_point Start;
};

inline std::string fmtMs(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Ms);
  return Buf;
}

inline std::string yesNo(bool B) { return B ? "yes" : "no"; }

} // namespace benchtable

#endif // CASCC_BENCH_BENCHTABLE_H
