//===- mem/MemPred.cpp - Memory and footprint predicates ------------------===//

#include "mem/MemPred.h"

using namespace ccc;

bool ccc::memForward(const Mem &Before, const Mem &After) {
  for (const auto &KV : Before.data())
    if (!After.allocated(KV.first))
      return false;
  return true;
}

/// dom(M) restricted to the addresses of \p Set.
static AddrSet domOn(const Mem &M, const AddrSet &Set) {
  AddrSet Out;
  for (Addr A : Set)
    if (M.allocated(A))
      Out.insert(A);
  return Out;
}

/// dom(M) restricted to a free-list region.
static AddrSet domOnFreeList(const Mem &M, const FreeList &F) {
  AddrSet Out;
  for (const auto &KV : M.data())
    if (F.contains(KV.first))
      Out.insert(KV.first);
  return Out;
}

bool ccc::lEqPre(const Mem &M1, const Mem &M2, const Footprint &FP,
                 const FreeList &F) {
  if (!M1.eqOn(M2, FP.reads()))
    return false;
  if (domOn(M1, FP.writes()) != domOn(M2, FP.writes()))
    return false;
  return domOnFreeList(M1, F) == domOnFreeList(M2, F);
}

bool ccc::lEqPost(const Mem &M1, const Mem &M2, const Footprint &FP,
                  const FreeList &F) {
  if (!M1.eqOn(M2, FP.writes()))
    return false;
  return domOnFreeList(M1, F) == domOnFreeList(M2, F);
}

bool ccc::lEffect(const Mem &Before, const Mem &After, const Footprint &FP,
                  const FreeList &F) {
  // sigma1 ={dom(sigma1) - ws}= sigma2.
  AddrSet Untouched = Before.dom().minus(FP.writes());
  if (!Before.eqOn(After, Untouched))
    return false;
  // (dom(sigma2) - dom(sigma1)) subset (ws n F).
  AddrSet Fresh = After.dom().minus(Before.dom());
  for (Addr A : Fresh)
    if (!FP.writes().contains(A) || !F.contains(A))
      return false;
  return true;
}

bool ccc::closedOn(const AddrSet &S, const Mem &M) {
  for (Addr A : S) {
    auto V = M.load(A);
    if (!V)
      continue;
    if (V->isPtr() && !S.contains(V->asPtr()))
      return false;
  }
  return true;
}

bool ccc::closedMem(const Mem &M) { return closedOn(M.dom(), M); }

AddrSet Mu::image(const AddrSet &S) const {
  AddrSet Out;
  for (Addr A : S) {
    auto It = F.find(A);
    if (It != F.end())
      Out.insert(It->second);
  }
  return Out;
}

std::optional<Addr> Mu::apply(Addr A) const {
  auto It = F.find(A);
  if (It == F.end())
    return std::nullopt;
  return It->second;
}

std::optional<Value> Mu::applyValue(const Value &V) const {
  if (!V.isPtr())
    return V;
  auto A = apply(V.asPtr());
  if (!A)
    return std::nullopt;
  return Value::makePtr(*A);
}

Mu Mu::identity(const AddrSet &Shared) {
  Mu Out;
  Out.SrcShared = Shared;
  Out.TgtShared = Shared;
  for (Addr A : Shared)
    Out.F[A] = A;
  return Out;
}

bool ccc::wfMu(const Mu &M) {
  // dom(f) = S.
  AddrSet Dom;
  AddrSet Range;
  for (const auto &KV : M.F) {
    Dom.insert(KV.first);
    Range.insert(KV.second);
  }
  if (Dom != M.SrcShared)
    return false;
  // injective(f): range size equals dom size.
  if (Range.size() != Dom.size())
    return false;
  // f{{S}} = TS.
  return Range == M.TgtShared;
}

bool ccc::fpMatch(const Mu &M, const Footprint &Src, const Footprint &Tgt) {
  // delta.rs n mu.TS subset f{{Delta.rs u Delta.ws}}.
  AddrSet SrcTouched = Src.reads();
  SrcTouched.unionWith(Src.writes());
  AddrSet AllowedReads = M.image(SrcTouched);
  if (!Tgt.reads().intersect(M.TgtShared).subsetOf(AllowedReads))
    return false;
  // delta.ws n mu.TS subset f{{Delta.ws}}.
  AddrSet AllowedWrites = M.image(Src.writes());
  return Tgt.writes().intersect(M.TgtShared).subsetOf(AllowedWrites);
}

bool ccc::invRel(const Mu &M, const Mem &Src, const Mem &Tgt) {
  for (const auto &KV : M.F) {
    auto SrcVal = Src.load(KV.first);
    if (!SrcVal)
      continue;
    auto TgtVal = Tgt.load(KV.second);
    if (!TgtVal)
      return false;
    auto Mapped = M.applyValue(*SrcVal);
    if (!Mapped || *Mapped != *TgtVal)
      return false;
  }
  return true;
}

bool ccc::guaranteeHG(const Footprint &FP, const Mem &M, const FreeList &F,
                      const AddrSet &S) {
  return inScope(FP, F, S) && closedOn(S, M);
}

bool ccc::guaranteeLG(const Mu &M, const Footprint &TgtFP, const Mem &TgtMem,
                      const FreeList &TgtF, const Footprint &SrcFP,
                      const Mem &SrcMem) {
  if (!inScope(TgtFP, TgtF, M.TgtShared))
    return false;
  if (!closedOn(M.TgtShared, TgtMem))
    return false;
  if (!fpMatch(M, SrcFP, TgtFP))
    return false;
  return invRel(M, SrcMem, TgtMem);
}

bool ccc::relyR(const Mem &Before, const Mem &After, const FreeList &F,
                const AddrSet &S) {
  // Sigma ={F}= Sigma'.
  for (const auto &KV : Before.data()) {
    if (!F.contains(KV.first))
      continue;
    auto V = After.load(KV.first);
    if (!V || *V != KV.second)
      return false;
  }
  for (const auto &KV : After.data())
    if (F.contains(KV.first) && !Before.allocated(KV.first))
      return false;
  return closedOn(S, After) && memForward(Before, After);
}

bool ccc::relyRel(const Mu &M, const Mem &SrcBefore, const Mem &SrcAfter,
                  const FreeList &SrcF, const Mem &TgtBefore,
                  const Mem &TgtAfter, const FreeList &TgtF) {
  return relyR(SrcBefore, SrcAfter, SrcF, M.SrcShared) &&
         relyR(TgtBefore, TgtAfter, TgtF, M.TgtShared) &&
         invRel(M, SrcAfter, TgtAfter);
}

bool ccc::inScope(const Footprint &FP, const FreeList &F, const AddrSet &S) {
  for (Addr A : FP.asSet())
    if (!F.contains(A) && !S.contains(A))
      return false;
  return true;
}
