//===- compiler/Lineage.cpp - Tunneling, Linearize, CleanupLabels, Stacking ===//

#include "compiler/Passes.h"

#include <cassert>
#include <map>
#include <set>

using namespace ccc;
using namespace ccc::compiler;

// ---------------------------------------------------------------------------
// Tunneling: shortcut chains of Nop nodes.
// ---------------------------------------------------------------------------

namespace {

/// Resolves the tunnel target of \p Node: follows Nop chains, stopping at
/// a non-Nop node or when a cycle is detected (an intentional infinite
/// loop must be preserved).
unsigned tunnelTarget(const ltl::Function &F, unsigned Node) {
  std::set<unsigned> SeenNodes;
  unsigned Cur = Node;
  while (true) {
    auto It = F.Graph.find(Cur);
    if (It == F.Graph.end() || It->second.K != ltl::Instr::Kind::Nop)
      return Cur;
    if (!SeenNodes.insert(Cur).second)
      return Cur; // Nop cycle: leave as is.
    Cur = It->second.S1;
  }
}

} // namespace

std::shared_ptr<ltl::Module>
ccc::compiler::tunneling(const ltl::Module &M) {
  auto Out = std::make_shared<ltl::Module>(M);
  for (ltl::Function &F : Out->Funcs) {
    for (auto &KV : F.Graph) {
      ltl::Instr &I = KV.second;
      if (I.K == ltl::Instr::Kind::Return ||
          I.K == ltl::Instr::Kind::Tailcall)
        continue;
      I.S1 = tunnelTarget(F, I.S1);
      if (I.K == ltl::Instr::Kind::Cond)
        I.S2 = tunnelTarget(F, I.S2);
    }
    F.Entry = tunnelTarget(F, F.Entry);
  }
  return Out;
}

// ---------------------------------------------------------------------------
// Linearize: order the CFG into an instruction list.
// ---------------------------------------------------------------------------

namespace {

void dfsOrder(const ltl::Function &F, unsigned Node,
              std::set<unsigned> &Seen, std::vector<unsigned> &Order) {
  if (!Seen.insert(Node).second || !F.Graph.count(Node))
    return;
  Order.push_back(Node);
  const ltl::Instr &I = F.Graph.at(Node);
  if (I.K == ltl::Instr::Kind::Return ||
      I.K == ltl::Instr::Kind::Tailcall)
    return;
  // Visit the fall-through successor first so it lands adjacently.
  if (I.K == ltl::Instr::Kind::Cond) {
    dfsOrder(F, I.S2, Seen, Order);
    dfsOrder(F, I.S1, Seen, Order);
  } else {
    dfsOrder(F, I.S1, Seen, Order);
  }
}

} // namespace

std::shared_ptr<linear::Module>
ccc::compiler::linearize(const ltl::Module &M) {
  auto Out = std::make_shared<linear::Module>();
  Out->Globals = M.Globals;
  for (const ltl::Function &F : M.Funcs) {
    linear::Function NF;
    NF.Name = F.Name;
    NF.RetVoid = F.RetVoid;
    NF.NumParams = F.NumParams;
    NF.ParamHomes = F.ParamHomes;
    NF.NumSlots = F.NumSlots;

    std::vector<unsigned> Order;
    std::set<unsigned> Seen;
    dfsOrder(F, F.Entry, Seen, Order);

    std::map<unsigned, unsigned> PosOf;
    for (unsigned I = 0; I < Order.size(); ++I)
      PosOf[Order[I]] = I;

    auto emitLabel = [&NF](unsigned Node) {
      linear::Instr L;
      L.K = linear::Instr::Kind::Label;
      L.Label = Node;
      NF.Code.push_back(std::move(L));
    };
    auto emitGoto = [&NF](unsigned Node) {
      linear::Instr G;
      G.K = linear::Instr::Kind::Goto;
      G.Label = Node;
      NF.Code.push_back(std::move(G));
    };

    // The entry must be first; Order starts with it by construction.
    for (unsigned Idx = 0; Idx < Order.size(); ++Idx) {
      unsigned Node = Order[Idx];
      const ltl::Instr &I = F.Graph.at(Node);
      emitLabel(Node);
      bool FallsTo = Idx + 1 < Order.size();
      unsigned NextNode = FallsTo ? Order[Idx + 1] : 0;

      linear::Instr NI;
      switch (I.K) {
      case ltl::Instr::Kind::Nop:
        if (!FallsTo || I.S1 != NextNode)
          emitGoto(I.S1);
        continue;
      case ltl::Instr::Kind::Op:
      case ltl::Instr::Kind::Load:
      case ltl::Instr::Kind::Store:
      case ltl::Instr::Kind::Call:
      case ltl::Instr::Kind::Print: {
        NI.K = static_cast<linear::Instr::Kind>(0); // set below
        switch (I.K) {
        case ltl::Instr::Kind::Op:
          NI.K = linear::Instr::Kind::Op;
          break;
        case ltl::Instr::Kind::Load:
          NI.K = linear::Instr::Kind::Load;
          break;
        case ltl::Instr::Kind::Store:
          NI.K = linear::Instr::Kind::Store;
          break;
        case ltl::Instr::Kind::Call:
          NI.K = linear::Instr::Kind::Call;
          break;
        default:
          NI.K = linear::Instr::Kind::Print;
          break;
        }
        NI.O = I.O;
        NI.C = I.C;
        NI.Imm = I.Imm;
        NI.Global = I.Global;
        NI.Args = I.Args;
        NI.Dst = I.Dst;
        NI.HasDst = I.HasDst;
        NI.AM = I.AM;
        NI.Callee = I.Callee;
        NF.Code.push_back(std::move(NI));
        if (!FallsTo || I.S1 != NextNode)
          emitGoto(I.S1);
        continue;
      }
      case ltl::Instr::Kind::Cond: {
        NI.K = linear::Instr::Kind::Cond;
        NI.C = I.C;
        NI.CondOneArg = I.CondOneArg;
        NI.Imm = I.Imm;
        NI.Args = I.Args;
        NI.Label = I.S1;
        NF.Code.push_back(std::move(NI));
        if (!FallsTo || I.S2 != NextNode)
          emitGoto(I.S2);
        continue;
      }
      case ltl::Instr::Kind::Tailcall: {
        NI.K = linear::Instr::Kind::Tailcall;
        NI.Callee = I.Callee;
        NI.Args = I.Args;
        NF.Code.push_back(std::move(NI));
        continue;
      }
      case ltl::Instr::Kind::Return: {
        NI.K = linear::Instr::Kind::Return;
        NI.HasArg = I.HasArg;
        NI.Args = I.Args;
        NF.Code.push_back(std::move(NI));
        continue;
      }
      }
    }
    Out->Funcs.push_back(std::move(NF));
  }
  return Out;
}

// ---------------------------------------------------------------------------
// CleanupLabels: drop labels that no branch references.
// ---------------------------------------------------------------------------

std::shared_ptr<linear::Module>
ccc::compiler::cleanupLabels(const linear::Module &M) {
  auto Out = std::make_shared<linear::Module>();
  Out->Globals = M.Globals;
  for (const linear::Function &F : M.Funcs) {
    std::set<unsigned> Referenced;
    for (const linear::Instr &I : F.Code)
      if (I.K == linear::Instr::Kind::Goto ||
          I.K == linear::Instr::Kind::Cond)
        Referenced.insert(I.Label);

    linear::Function NF;
    NF.Name = F.Name;
    NF.RetVoid = F.RetVoid;
    NF.NumParams = F.NumParams;
    NF.ParamHomes = F.ParamHomes;
    NF.NumSlots = F.NumSlots;
    for (const linear::Instr &I : F.Code) {
      if (I.K == linear::Instr::Kind::Label && !Referenced.count(I.Label))
        continue;
      NF.Code.push_back(I);
    }
    Out->Funcs.push_back(std::move(NF));
  }
  return Out;
}

// ---------------------------------------------------------------------------
// Stacking: abstract slots become concrete frame cells.
// ---------------------------------------------------------------------------

std::shared_ptr<mach::Module>
ccc::compiler::stacking(const linear::Module &M) {
  auto Out = std::make_shared<mach::Module>();
  Out->Globals = M.Globals;
  for (const linear::Function &F : M.Funcs) {
    mach::Function NF;
    NF.Name = F.Name;
    NF.RetVoid = F.RetVoid;
    NF.NumParams = F.NumParams;
    NF.ParamHomes = F.ParamHomes;
    // Frame layout: slot i occupies frame cell i; the frame size is the
    // number of slots the allocator spilled.
    NF.FrameSize = F.NumSlots;
    NF.Code = F.Code;
    Out->Funcs.push_back(std::move(NF));
  }
  return Out;
}
