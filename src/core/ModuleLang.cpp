//===- core/ModuleLang.cpp - The abstract module language -----------------===//

#include "core/ModuleLang.h"

#include <cassert>

using namespace ccc;

Core::~Core() = default;

ModuleLang::~ModuleLang() = default;

Addr ModuleLang::globalAddr(const std::string &Name) const {
  assert(Globals && "module globals not bound; link the program first");
  auto A = Globals->lookup(Name);
  assert(A && "unknown global variable");
  return *A;
}

std::string Msg::toString() const {
  switch (K) {
  case Kind::Tau:
    return "tau";
  case Kind::Event:
    return "ev(" + std::to_string(EventVal) + ")";
  case Kind::Ret:
    return "ret(" + RetVal.toString() + ")";
  case Kind::EntAtom:
    return "EntAtom";
  case Kind::ExtAtom:
    return "ExtAtom";
  case Kind::ExtCall:
    return "call(" + Callee + ")";
  case Kind::TailCall:
    return "tailcall(" + Callee + ")";
  case Kind::Spawn:
    return "spawn(" + Callee + ")";
  }
  return "?";
}
