//===- core/Trace.cpp - Observable event traces ----------------------------===//

#include "core/Trace.h"

#include "support/StrUtil.h"

using namespace ccc;

static const char *endName(TraceEnd E) {
  switch (E) {
  case TraceEnd::Done:
    return "done";
  case TraceEnd::Abort:
    return "abort";
  case TraceEnd::Div:
    return "div";
  case TraceEnd::Cut:
    return "cut";
  }
  return "?";
}

std::string Trace::toString() const {
  StrBuilder B;
  for (int64_t E : Events)
    B << E << ':';
  B << endName(End);
  return B.take();
}

bool TraceSet::truncated() const {
  for (const Trace &T : Traces)
    if (T.End == TraceEnd::Cut)
      return true;
  return false;
}

bool TraceSet::hasAbort() const {
  for (const Trace &T : Traces)
    if (T.End == TraceEnd::Abort)
      return true;
  return false;
}

TraceSet TraceSet::collapseTermination() const {
  TraceSet Out;
  for (Trace T : Traces) {
    if (T.End == TraceEnd::Div)
      T.End = TraceEnd::Done;
    Out.insert(std::move(T));
  }
  return Out;
}

bool TraceSet::subsetOf(const TraceSet &Other) const {
  for (const Trace &T : Traces)
    if (!Other.contains(T))
      return false;
  return true;
}

std::string TraceSet::toString() const {
  StrBuilder B;
  B << '{';
  bool First = true;
  for (const Trace &T : Traces) {
    if (!First)
      B << ", ";
    First = false;
    B << T.toString();
  }
  B << '}';
  return B.take();
}

RefineResult ccc::refinesTraces(const TraceSet &Impl, const TraceSet &Spec,
                                bool TermInsensitive) {
  RefineResult R;
  R.Definitive = !Impl.truncated() && !Spec.truncated();
  const TraceSet ImplC =
      TermInsensitive ? Impl.collapseTermination() : Impl;
  const TraceSet SpecC =
      TermInsensitive ? Spec.collapseTermination() : Spec;
  for (const Trace &T : ImplC.traces()) {
    if (T.End == TraceEnd::Cut)
      continue;
    if (!SpecC.contains(T)) {
      R.Holds = false;
      R.CounterExample = T.toString();
      return R;
    }
  }
  R.Holds = true;
  return R;
}

RefineResult ccc::equivTraces(const TraceSet &A, const TraceSet &B) {
  RefineResult Fwd = refinesTraces(A, B);
  if (!Fwd.Holds)
    return Fwd;
  RefineResult Bwd = refinesTraces(B, A);
  Bwd.Definitive = Fwd.Definitive && Bwd.Definitive;
  return Bwd;
}
