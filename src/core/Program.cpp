//===- core/Program.cpp - Whole programs and linking ----------------------===//

#include "core/Program.h"

#include <cassert>

using namespace ccc;

unsigned Program::addModule(std::string Name,
                            std::unique_ptr<ModuleLang> Lang, GlobalEnv GE) {
  assert(!Linked && "cannot add modules after linking");
  Modules.push_back(ModuleDecl{std::move(Name), std::move(Lang),
                               std::move(GE)});
  return static_cast<unsigned>(Modules.size() - 1);
}

void Program::addThread(std::string Entry, std::vector<Value> Args) {
  Entries.push_back({std::move(Entry), std::move(Args)});
}

void Program::link() {
  assert(!Linked && "program already linked");
  Addr Next = GlobalBase;
  for (ModuleDecl &M : Modules) {
    for (GlobalVar &G : M.GE.vars()) {
      G.Address = Next++;
      Shared.insert(G.Address);
      if (G.Owner == DataOwner::Object)
        ObjectOwned.insert(G.Address);
    }
    M.Lang->bindGlobals(&M.GE);
  }
  Linked = true;
}

std::optional<std::pair<unsigned, CoreRef>>
Program::resolveEntry(const std::string &Name,
                      const std::vector<Value> &Args) const {
  for (unsigned I = 0; I < Modules.size(); ++I) {
    if (CoreRef C = Modules[I].Lang->initCore(Name, Args))
      return std::make_pair(I, C);
  }
  return std::nullopt;
}

Mem Program::initialMem() const {
  assert(Linked && "link the program before loading");
  Mem M;
  for (const ModuleDecl &Mod : Modules)
    Mod.GE.installInto(M);
  return M;
}
