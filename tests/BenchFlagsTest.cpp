//===- tests/BenchFlagsTest.cpp - Shared bench flag parser rejections -----===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
// Regression tests for the exit-free core of benchtable::parseBenchFlags.
// The pre-fix parser silently accepted duplicate flags and let a repeated
// `--model=` last-win, so `--model=sc --model=tso` ran under TSO with no
// diagnostic; every rejection path below names the offending flag.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchTable.h"

#include "gtest/gtest.h"

namespace {

using benchtable::BenchFlags;
using benchtable::tryParseBenchFlags;

std::optional<BenchFlags> parse(std::vector<std::string> Args,
                                std::string &Err) {
  Err.clear();
  return tryParseBenchFlags(Args, Err);
}

TEST(BenchFlagsTest, DefaultsWithNoArgs) {
  std::string Err;
  auto F = parse({}, Err);
  ASSERT_TRUE(F.has_value()) << Err;
  EXPECT_TRUE(F->Por);
  EXPECT_TRUE(F->FenceSynth);
  EXPECT_FALSE(F->Capacity);
  EXPECT_FALSE(F->Model.has_value());
}

TEST(BenchFlagsTest, AcceptsEachFlagOnce) {
  std::string Err;
  auto F = parse({"--no-por", "--no-fence-synth", "--capacity",
                  "--model=relaxed"},
                 Err);
  ASSERT_TRUE(F.has_value()) << Err;
  EXPECT_FALSE(F->Por);
  EXPECT_FALSE(F->FenceSynth);
  EXPECT_TRUE(F->Capacity);
  ASSERT_TRUE(F->Model.has_value());
  EXPECT_EQ(*F->Model, ccc::MemModel::Relaxed);
}

TEST(BenchFlagsTest, ParsesEveryModelName) {
  std::string Err;
  auto Sc = parse({"--model=sc"}, Err);
  ASSERT_TRUE(Sc.has_value()) << Err;
  EXPECT_EQ(*Sc->Model, ccc::MemModel::SC);
  auto Tso = parse({"--model=tso"}, Err);
  ASSERT_TRUE(Tso.has_value()) << Err;
  EXPECT_EQ(*Tso->Model, ccc::MemModel::TSO);
}

TEST(BenchFlagsTest, RejectsUnknownArgumentNamingIt) {
  std::string Err;
  EXPECT_FALSE(parse({"--frobnicate"}, Err).has_value());
  EXPECT_NE(Err.find("--frobnicate"), std::string::npos) << Err;
}

TEST(BenchFlagsTest, RejectsTrailingJunkAfterValidFlags) {
  std::string Err;
  EXPECT_FALSE(parse({"--no-por", "extra"}, Err).has_value());
  EXPECT_NE(Err.find("extra"), std::string::npos) << Err;
}

TEST(BenchFlagsTest, RejectsUnknownModelValueNamingFlag) {
  std::string Err;
  EXPECT_FALSE(parse({"--model=pso"}, Err).has_value());
  EXPECT_NE(Err.find("--model=pso"), std::string::npos) << Err;
  EXPECT_NE(Err.find("sc|tso|relaxed"), std::string::npos) << Err;
}

TEST(BenchFlagsTest, RejectsEmptyModelValue) {
  std::string Err;
  EXPECT_FALSE(parse({"--model="}, Err).has_value());
  EXPECT_NE(Err.find("--model="), std::string::npos) << Err;
}

TEST(BenchFlagsTest, RejectsDuplicateBooleanFlags) {
  std::string Err;
  EXPECT_FALSE(parse({"--no-por", "--no-por"}, Err).has_value());
  EXPECT_NE(Err.find("duplicate"), std::string::npos) << Err;
  EXPECT_NE(Err.find("--no-por"), std::string::npos) << Err;

  EXPECT_FALSE(
      parse({"--no-fence-synth", "--no-fence-synth"}, Err).has_value());
  EXPECT_NE(Err.find("--no-fence-synth"), std::string::npos) << Err;

  EXPECT_FALSE(parse({"--capacity", "--capacity"}, Err).has_value());
  EXPECT_NE(Err.find("--capacity"), std::string::npos) << Err;
}

TEST(BenchFlagsTest, RejectsDuplicateModel) {
  std::string Err;
  EXPECT_FALSE(parse({"--model=tso", "--model=tso"}, Err).has_value());
  EXPECT_NE(Err.find("duplicate"), std::string::npos) << Err;
  EXPECT_NE(Err.find("--model=tso"), std::string::npos) << Err;
}

TEST(BenchFlagsTest, RejectsConflictingModels) {
  // Pre-fix behaviour: last model silently won, so a typo'd script ran
  // under the wrong model. Both values must appear in the message.
  std::string Err;
  EXPECT_FALSE(parse({"--model=sc", "--model=tso"}, Err).has_value());
  EXPECT_NE(Err.find("conflicting"), std::string::npos) << Err;
  EXPECT_NE(Err.find("--model=sc"), std::string::npos) << Err;
  EXPECT_NE(Err.find("--model=tso"), std::string::npos) << Err;
}

TEST(BenchFlagsTest, RejectionStopsAtFirstOffender) {
  // The first bad flag is reported even when later args are also bad.
  std::string Err;
  EXPECT_FALSE(parse({"--model=bogus", "--junk"}, Err).has_value());
  EXPECT_NE(Err.find("--model=bogus"), std::string::npos) << Err;
  EXPECT_EQ(Err.find("--junk"), std::string::npos) << Err;
}

} // namespace
