//===- ir/Csharpminor.h - The C#minor IR ------------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C#minor: the first IR of the pipeline (Fig. 11). Structured control
/// flow like Clight, but every variable access is an explicit memory load
/// or store: locals are numbered slots in the frame (still allocated from
/// the free list), and addresses are first-class expressions.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_CSHARPMINOR_H
#define CASCC_IR_CSHARPMINOR_H

#include "clight/ClightAst.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccc {
namespace csharp {

/// Expressions: explicit loads, slot/global addresses.
struct Expr {
  enum class Kind { Const, AddrSlot, AddrGlobal, Load, Un, Bin };

  Kind K = Kind::Const;
  int32_t IntVal = 0;
  unsigned Slot = 0;
  std::string Global;
  clight::UnOp U = clight::UnOp::Neg; // Neg / Not (Deref becomes Load)
  clight::BinOp B = clight::BinOp::Add;
  std::unique_ptr<Expr> L, R;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
  enum class Kind { Skip, Store, If, While, Call, Return, Print };

  Kind K = Kind::Skip;
  ExprPtr E1, E2; // Store(addr, val) / conditions / return / print
  Block Body, Else;
  std::string Callee;
  std::vector<ExprPtr> Args;
  bool HasDst = false;
  unsigned DstSlot = 0; // call result slot
};

struct Function {
  std::string Name;
  bool RetVoid = true;
  unsigned NumParams = 0;
  unsigned NumSlots = 0; // params + locals
  Block Body;
};

struct Module {
  std::vector<std::pair<std::string, int32_t>> Globals;
  std::vector<Function> Funcs;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace csharp
} // namespace ccc

#endif // CASCC_IR_CSHARPMINOR_H
