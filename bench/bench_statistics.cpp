//===- bench/bench_statistics.cpp - E5: the effort table (Fig. 13) ---------===//
//
// Regenerates the structure of Fig. 13 — the paper's per-pass and
// framework-lemma effort table. The paper reports Coq lines of spec and
// proof; a C++ reproduction cannot re-measure Coq effort, so per
// DESIGN.md the executable analogue is reported: for each pass, the
// number of validation obligations discharged and product states searched
// by the simulation checker (our "proof"), and for the framework lemmas,
// the size of the state-space arguments that replace them.
//
// The paper's original numbers are included for side-by-side shape
// comparison: rows are identical; absolute units differ by construction.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "core/Semantics.h"
#include "validate/PassValidator.h"
#include "workload/Workloads.h"

#include <cstdio>
#include <map>

using namespace ccc;

namespace {
/// Exploration options shared by every run in this binary; Por is set
/// from the --no-por escape hatch in main.
ExploreOptions BaseOpts;
} // namespace
using namespace ccc::validate;

namespace {

/// Fig. 13 of the paper: (spec LoC ours, proof LoC ours) per pass.
const std::map<std::string, std::pair<int, int>> PaperLoC = {
    {"Cshmgen", {1021, 1503}},   {"Cminorgen", {1556, 1251}},
    {"Selection", {500, 783}},   {"RTLgen", {543, 862}},
    {"Tailcall", {328, 405}},    {"Renumber", {245, 358}},
    {"Allocation", {785, 1700}}, {"Tunneling", {339, 475}},
    {"Linearize", {371, 733}},   {"CleanupLabels", {387, 388}},
    {"Stacking", {1038, 2135}},  {"Asmgen", {338, 1128}},
};

} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (!Flags.Por)
    BaseOpts.Por = PorMode::Off;
  std::printf("E5 (Fig. 13): per-pass effort — Coq proof lines (paper) vs "
              "validation obligations (this reproduction)\n\n");

  // Use the richest client as the validation workload.
  auto R = compiler::compileClightSource(workload::fig10cClientSource());
  auto Extra = compiler::compileClightSource(
      "int f(int x) { return x * x + 1; } "
      "void main() { int v; int i = 0; v = f(6); while (i < 4) "
      "{ v = v + i % 3; i = i + 1; } print(v); }");

  std::map<std::string, PassResult> Agg;
  for (auto *CR : {&R, &Extra}) {
    auto Results = validatePipeline(*CR, defaultSamples(*CR->Clight));
    for (const PassResult &PR : Results) {
      PassResult &A = Agg[PR.PassName];
      A.PassName = PR.PassName;
      A.Holds = A.Holds && PR.Holds;
      A.EntriesChecked += PR.EntriesChecked;
      A.Obligations += PR.Obligations;
      A.ProductStates += PR.ProductStates;
      A.Millis += PR.Millis;
    }
  }

  benchtable::Table T({"pass (Fig. 13 row)", "paper spec LoC",
                       "paper proof LoC", "obligations", "product states",
                       "validated", "ms"});
  bool AllGood = true;
  benchtable::JsonLog Log;
  for (const std::string &Name : compiler::passNames()) {
    const PassResult &A = Agg[Name];
    auto P = PaperLoC.at(Name);
    AllGood = AllGood && A.Holds;
    T.addRow({Name, std::to_string(P.first), std::to_string(P.second),
              std::to_string(A.Obligations),
              std::to_string(A.ProductStates), benchtable::yesNo(A.Holds),
              benchtable::fmtMs(A.Millis)});
    Log.add("effort_table",
            "{\"pass\":" + benchtable::jsonStr(Name) +
                ",\"paper_spec_loc\":" + std::to_string(P.first) +
                ",\"paper_proof_loc\":" + std::to_string(P.second) +
                ",\"obligations\":" + std::to_string(A.Obligations) +
                ",\"product_states\":" + std::to_string(A.ProductStates) +
                ",\"validated\":" + (A.Holds ? "true" : "false") +
                ",\"ms\":" + std::to_string(A.Millis) + "}");
  }
  T.print();

  std::printf("\nframework lemma rows (paper: Coq LoC; here: state-space "
              "argument sizes on the lock-client family)\n\n");
  benchtable::Table T2({"framework row (Fig. 13)", "paper spec LoC",
                        "paper proof LoC", "replaced by",
                        "states explored", "holds"});
  {
    Program P = workload::lockedCounter(2, 1, 0);
    ExploreStats PreS, NpS;
    TraceSet Pre = preemptiveTraces(P, BaseOpts, &PreS);
    TraceSet Np = nonPreemptiveTraces(P, BaseOpts, &NpS);
    bool Equiv = equivTraces(Pre, Np).Holds;
    bool Drf = isDRF(P), NpDrf = isNPDRF(P);
    AllGood = AllGood && Equiv && Drf && NpDrf;
    T2.addRow({"Compositionality (Lem. 6)", "580", "2249",
               "per-module sim + whole-program traces",
               std::to_string(PreS.States), benchtable::yesNo(Equiv)});
    T2.addRow({"DRF preservation (Lem. 8)", "358", "1142",
               "DRF of source and target stages",
               std::to_string(PreS.States),
               benchtable::yesNo(Drf && NpDrf)});
    T2.addRow({"Semantics equiv. (Lem. 9)", "1540", "4718",
               "preemptive == non-preemptive trace sets",
               std::to_string(PreS.States + NpS.States),
               benchtable::yesNo(Equiv)});
    Log.add("framework_lemmas",
            "{\"workload\":\"locked t=2\",\"equiv\":" +
                std::string(Equiv ? "true" : "false") +
                ",\"drf\":" + (Drf ? "true" : "false") +
                ",\"npdrf\":" + (NpDrf ? "true" : "false") +
                ",\"preemptive\":" + PreS.toJson() +
                ",\"non_preemptive\":" + NpS.toJson() + "}");
  }
  T2.print();

  std::printf("\nresult: %s\n", AllGood ? "PASS" : "FAIL");
  if (!Log.write("BENCH_statistics.json"))
    std::printf("warning: could not write BENCH_statistics.json\n");
  else
    std::printf("machine-readable stats written to BENCH_statistics.json\n");
  return AllGood ? 0 : 1;
}
