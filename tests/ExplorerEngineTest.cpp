//===- tests/ExplorerEngineTest.cpp - Parallel engine and dedup tests ------===//
//
// Regression and equivalence tests for the hash-interned parallel
// exploration engine:
//
//  - NPWorld::predictFor must dedup chunk items on (state, accumulated
//    footprint), not the state alone (two converging paths can carry
//    different footprints).
//  - findRacesConfinedTo's dedup key must distinguish the atomic bits of
//    the footprint pair, not just the footprint strings.
//  - A truncated exploration must report Inconclusive, never a DRF/Safe
//    certificate.
//  - traces(), findRace() and numStates() are bit-identical for any
//    Threads value, and with hash collisions forced the string-verify
//    fallback keeps states distinct.
//
// The first two scenarios need in-thread nondeterminism that CImp does
// not produce, so they use a scripted FakeLang test double.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetector.h"
#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

using namespace ccc;

namespace {

//===----------------------------------------------------------------------===//
// FakeLang: a scripted module language. Each core is a named state; the
// script maps a state to its local steps (message, footprint over global
// names, successor state). Used to build the nondeterministic shapes the
// dedup regressions need.
//===----------------------------------------------------------------------===//

class FakeCore : public Core {
public:
  explicit FakeCore(std::string Name) : Name(std::move(Name)) {}
  std::string key() const override { return Name; }

private:
  std::string Name;
};

struct FakeStep {
  Msg M;
  std::vector<std::string> ReadNames;
  std::vector<std::string> WriteNames;
  std::string NextState; // ignored for Ret steps
};

class FakeLang : public ModuleLang {
public:
  std::map<std::string, std::vector<FakeStep>> Script;
  std::map<std::string, std::string> EntryState;

  std::string name() const override { return "Fake"; }

  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &) const override {
    auto It = EntryState.find(Entry);
    if (It == EntryState.end())
      return nullptr;
    return std::make_shared<FakeCore>(It->second);
  }

  std::vector<LocalStep> step(const FreeList &, const Core &C,
                              const Mem &M) const override {
    std::vector<LocalStep> Out;
    auto It = Script.find(C.key());
    if (It == Script.end())
      return Out; // stuck
    for (const FakeStep &S : It->second) {
      LocalStep LS;
      LS.M = S.M;
      AddrSet R, W;
      for (const std::string &N : S.ReadNames)
        R.insert(globalAddr(N));
      for (const std::string &N : S.WriteNames)
        W.insert(globalAddr(N));
      LS.FP = Footprint(R, W);
      LS.NextMem = M;
      if (S.M.K != Msg::Kind::Ret)
        LS.Next = std::make_shared<FakeCore>(S.NextState);
      Out.push_back(std::move(LS));
    }
    return Out;
  }

  CoreRef applyReturn(const Core &, const Value &) const override {
    return nullptr;
  }
};

Program fakeProgram(std::unique_ptr<FakeLang> Lang, GlobalEnv GE,
                    std::vector<std::string> Entries) {
  Program P;
  P.addModule("fake", std::move(Lang), std::move(GE));
  for (std::string &E : Entries)
    P.addThread(std::move(E));
  P.link();
  return P;
}

//===----------------------------------------------------------------------===//
// Satellite regression 1: predictFor must not drop a footprint when two
// chunk paths converge on one state.
//===----------------------------------------------------------------------===//

TEST(PredictForDedup, ConvergingPathsKeepBothFootprints) {
  // One thread; from s0 two tau paths (reading x resp. y, memory
  // untouched) converge on the identical state s1, where the chunk ends.
  auto Lang = std::make_unique<FakeLang>();
  Lang->EntryState["d"] = "s0";
  Lang->Script["s0"] = {
      FakeStep{Msg::tau(), {"x"}, {}, "s1"},
      FakeStep{Msg::tau(), {"y"}, {}, "s1"},
  };
  Lang->Script["s1"] = {FakeStep{Msg::ret(Value::makeInt(0)), {}, {}, ""}};
  GlobalEnv GE;
  GE.declare("x", Value::makeInt(0));
  GE.declare("y", Value::makeInt(0));
  Program P = fakeProgram(std::move(Lang), std::move(GE), {"d"});

  Addr XA = *P.module(0).GE.lookup("x");
  Addr YA = *P.module(0).GE.lookup("y");

  NPWorld W = NPWorld::load(P, 0);
  std::vector<InstrFootprint> FPs = W.predictFor(0);

  // A dedup on the world key alone drops the y-path at s1 and predicts
  // only r{x}; the (state, footprint) dedup keeps both chunk footprints.
  ASSERT_EQ(FPs.size(), 2u);
  std::set<std::string> Got;
  for (const InstrFootprint &F : FPs) {
    EXPECT_FALSE(F.InAtomic);
    Got.insert(F.FP.toString());
  }
  std::set<std::string> Want = {Footprint::ofRead(XA).toString(),
                                Footprint::ofRead(YA).toString()};
  EXPECT_EQ(Got, Want);
}

//===----------------------------------------------------------------------===//
// Satellite regression 2: findRacesConfinedTo must not merge witness
// pairs that differ only in their atomic bits.
//===----------------------------------------------------------------------===//

TEST(ConfinedRaceDedup, AtomicBitDistinguishesWitnesses) {
  // Thread a nondeterministically either enters an atomic block writing x
  // or writes x with a plain step: two predicted footprints with the same
  // footprint string but different atomic bits. Thread b plainly writes
  // x. Both pairs conflict, and a dedup key built only from the footprint
  // strings would collapse them into one witness.
  auto Lang = std::make_unique<FakeLang>();
  Lang->EntryState["a"] = "a0";
  Lang->EntryState["b"] = "b0";
  Lang->Script["a0"] = {
      FakeStep{Msg::entAtom(), {}, {}, "a1"},
      FakeStep{Msg::tau(), {}, {"x"}, "afin"},
  };
  Lang->Script["a1"] = {FakeStep{Msg::extAtom(), {}, {"x"}, "afin"}};
  Lang->Script["afin"] = {FakeStep{Msg::ret(Value::makeInt(0)), {}, {}, ""}};
  Lang->Script["b0"] = {FakeStep{Msg::tau(), {}, {"x"}, "bfin"}};
  Lang->Script["bfin"] = {FakeStep{Msg::ret(Value::makeInt(0)), {}, {}, ""}};
  GlobalEnv GE;
  GE.declare("x", Value::makeInt(0));
  Program P = fakeProgram(std::move(Lang), std::move(GE), {"a", "b"});

  Explorer<World> E;
  E.build(World::load(P));
  std::vector<RaceWitness> Races = E.findRacesConfinedTo(AddrSet{});

  unsigned AtomicPairs = 0, PlainPairs = 0;
  for (const RaceWitness &W : Races) {
    EXPECT_EQ(W.T1, 0u);
    EXPECT_EQ(W.T2, 1u);
    EXPECT_FALSE(W.FP2.InAtomic);
    EXPECT_FALSE(W.Confined);
    if (W.FP1.InAtomic)
      ++AtomicPairs;
    else
      ++PlainPairs;
  }
  // Both variants of the pair must survive deduplication.
  EXPECT_EQ(AtomicPairs, 1u);
  EXPECT_EQ(PlainPairs, 1u);
  EXPECT_EQ(Races.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Satellite regression 3: a truncated exploration is Inconclusive, not a
// certificate.
//===----------------------------------------------------------------------===//

namespace {
Program slowRacyPair() {
  // Each thread does private work before the unsynchronized store, so the
  // race-predicting states sit several layers deep and a tiny state cap
  // cannot reach them.
  Program P;
  cimp::addCImpModule(P, "m", R"(
    global x = 0;
    t1() { a := 1; b := a; [x] := b; }
    t2() { a := 1; b := a; [x] := b; }
  )");
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}
} // namespace

TEST(TruncatedVerdicts, CappedDrfCheckIsInconclusiveNotCertified) {
  Program P = slowRacyPair();

  // The full exploration refutes DRF.
  RaceCheck Full = checkDRF(P);
  EXPECT_EQ(Full.verdict(), CheckVerdict::Refuted);
  ASSERT_TRUE(Full.Witness.has_value());

  // With a tiny state cap the explorer cannot reach the racy region; the
  // absence of a witness must surface as Inconclusive, and the boolean
  // facade must not read as verified.
  ExploreOptions Tiny;
  Tiny.MaxStates = 4;
  RaceCheck Capped = checkDRF(P, Tiny);
  EXPECT_FALSE(Capped.Witness.has_value());
  EXPECT_FALSE(Capped.Conclusive);
  EXPECT_EQ(Capped.verdict(), CheckVerdict::Inconclusive);
  EXPECT_FALSE(isDRF(P, Tiny));

  // Same for the non-preemptive check and the combined detector.
  EXPECT_FALSE(isNPDRF(P, Tiny));
  analysis::DetectOptions DO;
  DO.UseStaticFastPath = false;
  DO.Explore = Tiny;
  analysis::DetectResult DR = analysis::detectRaces(P, DO);
  if (!DR.Witness) {
    EXPECT_FALSE(DR.Conclusive);
    EXPECT_FALSE(DR.Drf);
    EXPECT_EQ(DR.verdict(), CheckVerdict::Inconclusive);
  }
}

TEST(TruncatedVerdicts, CappedSafetyCheckIsInconclusive) {
  // A perfectly safe program: the capped exploration still must not
  // certify Safe(P).
  Program P;
  cimp::addCImpModule(P, "m",
                      "main() { n := 0; while (n < 40) { n := n + 1; } }");
  P.addThread("main");
  P.link();

  EXPECT_TRUE(isSafe(P));
  ExploreOptions Tiny;
  Tiny.MaxStates = 3;
  EXPECT_EQ(checkSafe(P, Tiny), CheckVerdict::Inconclusive);
  EXPECT_FALSE(isSafe(P, Tiny));
}

//===----------------------------------------------------------------------===//
// Satellite 4: parallel-vs-serial equivalence and collision injection.
//===----------------------------------------------------------------------===//

namespace {

struct EngineFingerprint {
  std::size_t States = 0;
  bool Truncated = false;
  std::string Traces;
  std::string Race;
  std::vector<std::string> ConfinedRaces;
};

std::string witnessString(const RaceWitness &W) {
  return W.StateKey + "|" + std::to_string(W.T1) + "/" +
         std::to_string(W.T2) + "|" + (W.FP1.InAtomic ? "A" : "-") +
         W.FP1.FP.toString() + "|" + (W.FP2.InAtomic ? "A" : "-") +
         W.FP2.FP.toString() + "|" + (W.Confined ? "c" : "u");
}

template <typename WorldT>
EngineFingerprint fingerprint(const Program &P, ExploreOptions Opts) {
  Explorer<WorldT> E(Opts);
  if constexpr (std::is_same_v<WorldT, NPWorld>)
    E.build(NPWorld::loadAll(P));
  else
    E.build(WorldT::load(P, 0));
  EngineFingerprint F;
  F.States = E.numStates();
  F.Truncated = E.truncated();
  F.Traces = E.traces().toString();
  auto W = E.findRace();
  F.Race = W ? witnessString(*W) : "none";
  for (const RaceWitness &R : E.findRacesConfinedTo(P.objectAddrs()))
    F.ConfinedRaces.push_back(witnessString(R));
  return F;
}

template <typename WorldT>
void expectEngineDeterminism(const Program &P, ExploreOptions Base = {}) {
  EngineFingerprint Serial = fingerprint<WorldT>(P, Base);
  for (unsigned Threads : {2u, 8u}) {
    ExploreOptions Opts = Base;
    Opts.Threads = Threads;
    EngineFingerprint Par = fingerprint<WorldT>(P, Opts);
    EXPECT_EQ(Par.States, Serial.States) << "Threads=" << Threads;
    EXPECT_EQ(Par.Truncated, Serial.Truncated) << "Threads=" << Threads;
    EXPECT_EQ(Par.Traces, Serial.Traces) << "Threads=" << Threads;
    EXPECT_EQ(Par.Race, Serial.Race) << "Threads=" << Threads;
    EXPECT_EQ(Par.ConfinedRaces, Serial.ConfinedRaces)
        << "Threads=" << Threads;
  }
}

} // namespace

TEST(ParallelEquivalence, AtomicCounterPreemptive) {
  Program P = workload::atomicCounter(2, 2);
  expectEngineDeterminism<World>(P);
}

TEST(ParallelEquivalence, AtomicCounterNonPreemptive) {
  Program P = workload::atomicCounter(2, 2);
  expectEngineDeterminism<NPWorld>(P);
}

TEST(ParallelEquivalence, RacyCounterBothSemantics) {
  Program P1 = workload::racyCounter(2);
  expectEngineDeterminism<World>(P1);
  Program P2 = workload::racyCounter(2);
  expectEngineDeterminism<NPWorld>(P2);
}

TEST(ParallelEquivalence, LockedCounterPreemptive) {
  Program P = workload::lockedCounter(2, 1, 0);
  expectEngineDeterminism<World>(P);
}

TEST(ParallelEquivalence, TruncatedExplorationIsDeterministicToo) {
  Program P = workload::atomicCounter(3, 1);
  ExploreOptions Opts;
  Opts.MaxStates = 40;
  expectEngineDeterminism<World>(P, Opts);
}

TEST(HashCollisions, MaskedHashesFallBackToStringVerify) {
  // With 2-bit hashes almost every intern probe collides; the engine must
  // keep distinct states distinct via the exact key strings kept behind
  // the hash, producing the identical graph.
  Program P = workload::atomicCounter(2, 2);
  EngineFingerprint Full = fingerprint<World>(P, ExploreOptions{});

  ExploreOptions Masked;
  Masked.DebugHashBits = 2;
  EngineFingerprint Collided = fingerprint<World>(P, Masked);
  EXPECT_EQ(Collided.States, Full.States);
  EXPECT_EQ(Collided.Traces, Full.Traces);
  EXPECT_EQ(Collided.Race, Full.Race);

  Explorer<World> E(Masked);
  E.build(World::load(P));
  EXPECT_GT(E.stats().HashCollisions, 0u);

  // And collisions plus parallelism still agree with the serial engine.
  for (unsigned Threads : {2u, 8u}) {
    ExploreOptions Opts = Masked;
    Opts.Threads = Threads;
    EngineFingerprint Par = fingerprint<World>(P, Opts);
    EXPECT_EQ(Par.States, Full.States) << "Threads=" << Threads;
    EXPECT_EQ(Par.Traces, Full.Traces) << "Threads=" << Threads;
  }
}

TEST(EngineStats, CountersAreCoherent) {
  Program P = workload::atomicCounter(2, 2);
  Explorer<World> E;
  E.build(World::load(P));
  (void)E.traces();
  const ExploreStats &S = E.stats();
  EXPECT_EQ(S.States, E.numStates());
  EXPECT_LE(S.Expanded, S.States);
  EXPECT_GT(S.Expanded, 0u);
  EXPECT_GE(S.Probes, S.DedupHits);
  // Every interned state is either the target of a dedup hit or new:
  // probes = dedup hits + fresh interns (minus nothing; inits are
  // probed too).
  EXPECT_EQ(S.Probes - S.DedupHits, S.States);
  EXPECT_GE(S.dedupHitRate(), 0.0);
  EXPECT_LE(S.dedupHitRate(), 1.0);
  EXPECT_GE(S.PeakFrontier, 1u);
  EXPECT_FALSE(S.Truncated);
  std::string J = S.toJson();
  EXPECT_NE(J.find("\"states\":"), std::string::npos);
  EXPECT_NE(J.find("\"dedup_hits\":"), std::string::npos);
  EXPECT_NE(J.find("\"truncated\":false"), std::string::npos);
}

TEST(EngineStats, StateBytesAccountingIsCoherent) {
  // StateBytes is the exact retained cost of the intern store and must
  // decompose into its three published components; the arena and page
  // pool live/capacity pairs must respect capacity >= live. The page
  // pool is process-wide (slabs are recycled across explorations), so it
  // is deliberately *not* part of StateBytes.
  Program P = workload::lockedCounter(2, 1, 0);
  Explorer<World> E;
  E.build(World::load(P));
  const ExploreStats &S = E.stats();
  EXPECT_EQ(S.StateBytes,
            S.TableBytes + S.RecBytes + S.ArenaCapacityBytes);
  EXPECT_GT(S.TableBytes, 0u);
  EXPECT_GT(S.RecBytes, 0u);
  EXPECT_GT(S.TreeNodes, 0u);
  EXPECT_LE(S.ArenaLiveBytes, S.ArenaCapacityBytes);
  EXPECT_GT(S.ArenaLiveBytes, 0u);
  EXPECT_LE(S.PagePoolLiveBytes, S.PagePoolCapacityBytes);
  // The graph's retained worlds are accounted separately from the store.
  EXPECT_GT(S.GraphBytes, 0u);
  EXPECT_GT(S.UniqueMemPages, 0u);
  EXPECT_GE(S.TotalPageRefs, S.UniqueMemPages);
  std::string J = S.toJson();
  EXPECT_NE(J.find("\"table_bytes\":"), std::string::npos);
  EXPECT_NE(J.find("\"rec_bytes\":"), std::string::npos);
  EXPECT_NE(J.find("\"arena_capacity_bytes\":"), std::string::npos);
  EXPECT_NE(J.find("\"arena_live_bytes\":"), std::string::npos);
  EXPECT_NE(J.find("\"tree_nodes\":"), std::string::npos);
  EXPECT_NE(J.find("\"page_pool_capacity_bytes\":"), std::string::npos);
  EXPECT_NE(J.find("\"page_pool_live_bytes\":"), std::string::npos);
}

TEST(EngineStats, StateBytesIsDeterministicAcrossWidths) {
  // Hash-consing makes the tree-node set (and hence every StateBytes
  // component) a function of the explored state set, not of worker
  // interleaving: the store accounting must be bit-equal at every pool
  // width.
  Program P = workload::atomicCounter(3, 3);
  auto storeBytes = [&](unsigned Threads) {
    ExploreOptions Opts;
    Opts.Threads = Threads;
    Explorer<World> E(Opts);
    E.build(World::load(P));
    const ExploreStats &S = E.stats();
    EXPECT_EQ(S.StateBytes,
              S.TableBytes + S.RecBytes + S.ArenaCapacityBytes)
        << "Threads=" << Threads;
    return std::tuple(S.StateBytes, S.TableBytes, S.RecBytes,
                      S.ArenaCapacityBytes, S.TreeNodes);
  };
  auto Serial = storeBytes(1);
  EXPECT_EQ(storeBytes(2), Serial);
  EXPECT_EQ(storeBytes(8), Serial);
}

} // namespace
