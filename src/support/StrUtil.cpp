//===- support/StrUtil.cpp - String formatting helpers --------------------===//

#include "support/StrUtil.h"

using namespace ccc;

std::string ccc::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Out;
  for (std::size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool ccc::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::vector<std::string> ccc::splitString(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  Out.push_back(Cur);
  return Out;
}
