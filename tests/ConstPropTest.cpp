//===- tests/ConstPropTest.cpp - Constant-propagation extension pass -------===//
//
// The paper leaves further optimization passes as future work (Sec. 8);
// this suite shows the framework validates them with no new machinery:
// the extension pass folds constants and branches, and the footprint-
// preserving simulation certifies it — including the crucial negative
// property that it never folds across loads or external calls.
//
//===----------------------------------------------------------------------===//

#include "clight/ClightLang.h"
#include "compiler/Compiler.h"
#include "core/Semantics.h"
#include "ir/IRLangs.h"
#include "validate/Sim.h"
#include "x86/X86Lang.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::validate;

namespace {

/// Builds source/target programs around an RTL module and its constprop
/// output and checks the Defs. 2-3 simulation.
SimReport validateConstProp(const std::string &ClightSrc,
                            const std::string &Entry,
                            std::shared_ptr<rtl::Module> *OutBefore = nullptr,
                            std::shared_ptr<rtl::Module> *OutAfter = nullptr) {
  auto R = compiler::compileClightSource(ClightSrc);
  auto After = compiler::constprop(*R.RTLRenumber);
  if (OutBefore)
    *OutBefore = R.RTLRenumber;
  if (OutAfter)
    *OutAfter = After;
  Program Src, Tgt;
  unsigned SM = ir::addRTLModule(Src, "m", R.RTLRenumber);
  unsigned TM = ir::addRTLModule(Tgt, "m", After);
  Src.link();
  Tgt.link();
  return simCheck(Src, SM, Tgt, TM, Entry, {});
}

unsigned countOps(const rtl::Module &M, rtl::Instr::Kind K, ir::Oper O) {
  unsigned N = 0;
  for (const rtl::Function &F : M.Funcs)
    for (const auto &KV : F.Graph)
      if (KV.second.K == K &&
          (K != rtl::Instr::Kind::Op || KV.second.O == O))
        ++N;
  return N;
}

} // namespace

TEST(ConstProp, FoldsConstantArithmetic) {
  std::shared_ptr<rtl::Module> Before, After;
  SimReport Rep = validateConstProp(
      "void main() { int a = 6; int b = 7; print(a * b); }", "main",
      &Before, &After);
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
  // The multiply becomes a constant.
  EXPECT_GT(countOps(*After, rtl::Instr::Kind::Op, ir::Oper::Intconst),
            countOps(*Before, rtl::Instr::Kind::Op, ir::Oper::Intconst));
}

TEST(ConstProp, FoldsDecidableBranches) {
  std::shared_ptr<rtl::Module> Before, After;
  SimReport Rep = validateConstProp(
      "void main() { int a = 3; if (a < 5) { print(1); } else { print(2); "
      "} }",
      "main", &Before, &After);
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
  unsigned CondsBefore = 0, CondsAfter = 0;
  for (const auto &F : Before->Funcs)
    for (const auto &KV : F.Graph)
      if (KV.second.K == rtl::Instr::Kind::Cond)
        ++CondsBefore;
  for (const auto &F : After->Funcs)
    for (const auto &KV : F.Graph)
      if (KV.second.K == rtl::Instr::Kind::Cond)
        ++CondsAfter;
  EXPECT_LT(CondsAfter, CondsBefore);
}

TEST(ConstProp, DoesNotFoldAcrossLoads) {
  // g's value must not be treated as the constant 0 even though that is
  // its initial value — another thread may have changed it.
  std::shared_ptr<rtl::Module> Before, After;
  SimReport Rep = validateConstProp(
      "int g = 0; void main() { int a; a = g; print(a + 1); }", "main",
      &Before, &After);
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
  // The load survives.
  unsigned Loads = 0;
  for (const auto &F : After->Funcs)
    for (const auto &KV : F.Graph)
      if (KV.second.K == rtl::Instr::Kind::Load)
        ++Loads;
  EXPECT_GE(Loads, 1u);
}

TEST(ConstProp, DoesNotFoldAcrossCalls) {
  std::shared_ptr<rtl::Module> Before, After;
  SimReport Rep = validateConstProp(R"(
    extern void sync();
    int g = 0;
    void main() {
      int a;
      int b;
      a = g;
      sync();
      b = g;
      print(a + b);
    }
  )",
                                    "main", &Before, &After);
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
  // Both loads of g survive (the Sec. 2.2 miscompilation scenario).
  unsigned Loads = 0;
  for (const auto &F : After->Funcs)
    for (const auto &KV : F.Graph)
      if (KV.second.K == rtl::Instr::Kind::Load)
        ++Loads;
  EXPECT_EQ(Loads, 2u);
}

TEST(ConstProp, JoinPointsMeetToTop) {
  // After the if, v is 1 or 2: not a constant; print must not fold.
  SimReport Rep = validateConstProp(R"(
    int g = 0;
    void main() {
      int v = 0;
      if (g == 0) { v = 1; } else { v = 2; }
      print(v);
    }
  )",
                                    "main");
  EXPECT_TRUE(Rep.Holds) << Rep.FailReason;
}

TEST(ConstProp, WholePipelineWithConstPropPreservesTraces) {
  const char *Src = R"(
    int g = 5;
    void main() {
      int a = 2;
      int b = a * 8 + 1;
      if (b == 17) { g = g + b; } else { g = 0; }
      print(g);
      print(b % 10);
    }
  )";
  auto R = compiler::compileClightSource(Src);
  auto Optimized = compiler::constprop(*R.RTLRenumber);

  // Continue the pipeline from the optimized RTL.
  auto LTL = compiler::allocation(*Optimized);
  auto Tunneled = compiler::tunneling(*LTL);
  auto Linear = compiler::linearize(*Tunneled);
  auto Clean = compiler::cleanupLabels(*Linear);
  auto Mach = compiler::stacking(*Clean);
  auto Asm = compiler::asmgen(*Mach);

  Program PSrc, PTgt;
  clight::addClightModule(PSrc, "m", Src);
  PSrc.addThread("main");
  PSrc.link();
  x86::addAsmModule(PTgt, "m", Asm, x86::MemModel::SC);
  PTgt.addThread("main");
  PTgt.link();

  RefineResult Res =
      equivTraces(preemptiveTraces(PTgt), preemptiveTraces(PSrc));
  EXPECT_TRUE(Res.Holds) << Res.CounterExample;
}
