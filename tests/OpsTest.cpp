//===- tests/OpsTest.cpp - Shared IR operator semantics --------------------===//
//
// Parameterized sweep over the shared operator evaluator (ir::evalOper /
// ir::evalCmp) used by CminorSel, RTL, LTL, Linear and Mach: arithmetic
// (with 32-bit wrap), immediates, shifts, comparisons, condition
// negation/swap laws, and dynamic type errors.
//
//===----------------------------------------------------------------------===//

#include "ir/Ops.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::ir;

namespace {

Value iv(int64_t V) { return Value::makeInt(static_cast<int32_t>(V)); }

struct OperCase {
  const char *Name;
  Oper O;
  ir::Cmp C;
  int32_t Imm;
  int32_t A, B;
  int32_t Expected;
};

class OperSweep : public ::testing::TestWithParam<OperCase> {};

} // namespace

TEST_P(OperSweep, EvaluatesAsExpected) {
  const OperCase &T = GetParam();
  auto R = evalOper(T.O, T.C, T.Imm, 0, iv(T.A), iv(T.B));
  ASSERT_TRUE(R.has_value()) << T.Name;
  ASSERT_TRUE(R->isInt()) << T.Name;
  EXPECT_EQ(R->asInt(), T.Expected) << T.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Table, OperSweep,
    ::testing::Values(
        OperCase{"intconst", Oper::Intconst, Cmp::Eq, 42, 0, 0, 42},
        OperCase{"move", Oper::Move, Cmp::Eq, 0, 7, 0, 7},
        OperCase{"neg", Oper::Neg, Cmp::Eq, 0, 5, 0, -5},
        OperCase{"neg_min", Oper::Neg, Cmp::Eq, 0, INT32_MIN, 0,
                 INT32_MIN},
        OperCase{"boolnot0", Oper::BoolNot, Cmp::Eq, 0, 0, 0, 1},
        OperCase{"boolnot7", Oper::BoolNot, Cmp::Eq, 0, 7, 0, 0},
        OperCase{"addimm", Oper::AddImm, Cmp::Eq, 10, 5, 0, 15},
        OperCase{"addimm_wrap", Oper::AddImm, Cmp::Eq, 1, INT32_MAX, 0,
                 INT32_MIN},
        OperCase{"mulimm", Oper::MulImm, Cmp::Eq, 3, -4, 0, -12},
        OperCase{"shlimm", Oper::ShlImm, Cmp::Eq, 4, 3, 0, 48},
        OperCase{"sarimm", Oper::SarImm, Cmp::Eq, 2, -16, 0, -4},
        OperCase{"cmpimm_lt", Oper::CmpImm, Cmp::Lt, 5, 3, 0, 1},
        OperCase{"cmpimm_ge", Oper::CmpImm, Cmp::Ge, 5, 3, 0, 0},
        OperCase{"add", Oper::Add, Cmp::Eq, 0, 2, 3, 5},
        OperCase{"sub", Oper::Sub, Cmp::Eq, 0, 2, 3, -1},
        OperCase{"mul_wrap", Oper::Mul, Cmp::Eq, 0, 65536, 65536, 0},
        OperCase{"div_trunc", Oper::Div, Cmp::Eq, 0, -7, 2, -3},
        OperCase{"mod_sign", Oper::Mod, Cmp::Eq, 0, -7, 2, -1},
        OperCase{"and", Oper::And, Cmp::Eq, 0, 12, 10, 8},
        OperCase{"or", Oper::Or, Cmp::Eq, 0, 12, 3, 15},
        OperCase{"xor", Oper::Xor, Cmp::Eq, 0, 12, 10, 6},
        OperCase{"cmp_eq", Oper::Cmp, Cmp::Eq, 0, 4, 4, 1},
        OperCase{"cmp_ne", Oper::Cmp, Cmp::Ne, 0, 4, 4, 0},
        OperCase{"cmp_le", Oper::Cmp, Cmp::Le, 0, -1, 0, 1},
        OperCase{"cmp_gt", Oper::Cmp, Cmp::Gt, 0, -1, 0, 0}),
    [](const ::testing::TestParamInfo<OperCase> &I) {
      return std::string(I.param.Name);
    });

TEST(OperErrors, DivisionAndModByZero) {
  EXPECT_FALSE(
      evalOper(Oper::Div, Cmp::Eq, 0, 0, iv(4), iv(0)).has_value());
  EXPECT_FALSE(
      evalOper(Oper::Mod, Cmp::Eq, 0, 0, iv(4), iv(0)).has_value());
}

TEST(OperErrors, TypeErrorsOnUndefAndPointers) {
  Value U = Value::makeUndef();
  Value P = Value::makePtr(0x1000);
  EXPECT_FALSE(evalOper(Oper::Mul, Cmp::Eq, 0, 0, U, iv(1)).has_value());
  EXPECT_FALSE(evalOper(Oper::Sub, Cmp::Eq, 0, 0, P, P).has_value());
  // Pointer + int is address arithmetic and is allowed.
  auto R = evalOper(Oper::Add, Cmp::Eq, 0, 0, P, iv(4));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->isPtr());
  EXPECT_EQ(R->asPtr(), 0x1004u);
}

TEST(OperErrors, AddrglobalProducesPointer) {
  auto R = evalOper(Oper::Addrglobal, Cmp::Eq, 0, 0x2000, Value(), Value());
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->asPtr(), 0x2000u);
}

TEST(CmpLaws, SwapAndNegateAreInvolutive) {
  for (Cmp C : {Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge}) {
    EXPECT_EQ(cmpSwap(cmpSwap(C)), C);
    EXPECT_EQ(cmpNegate(cmpNegate(C)), C);
  }
}

TEST(CmpLaws, SemanticLaws) {
  // For all small int pairs: cmp(C, a, b) == cmp(swap(C), b, a) and
  // cmp(C, a, b) == !cmp(negate(C), a, b).
  for (Cmp C : {Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge}) {
    for (int A = -2; A <= 2; ++A) {
      for (int B = -2; B <= 2; ++B) {
        auto Direct = evalCmp(C, iv(A), iv(B));
        auto Swapped = evalCmp(cmpSwap(C), iv(B), iv(A));
        auto Negated = evalCmp(cmpNegate(C), iv(A), iv(B));
        ASSERT_TRUE(Direct && Swapped && Negated);
        EXPECT_EQ(*Direct, *Swapped) << cmpName(C) << A << "," << B;
        EXPECT_EQ(*Direct, !*Negated) << cmpName(C) << A << "," << B;
      }
    }
  }
}

TEST(CmpLaws, PointersCompareByIdentityOnly) {
  Value P = Value::makePtr(8), Q = Value::makePtr(9);
  EXPECT_EQ(evalCmp(Cmp::Eq, P, P), std::optional<bool>(true));
  EXPECT_EQ(evalCmp(Cmp::Eq, P, Q), std::optional<bool>(false));
  EXPECT_EQ(evalCmp(Cmp::Ne, P, Q), std::optional<bool>(true));
  EXPECT_FALSE(evalCmp(Cmp::Lt, P, Q).has_value());
}

TEST(OperMeta, ArityTableIsConsistent) {
  EXPECT_EQ(operArity(Oper::Intconst), 0u);
  EXPECT_EQ(operArity(Oper::Addrglobal), 0u);
  EXPECT_EQ(operArity(Oper::Move), 1u);
  EXPECT_EQ(operArity(Oper::CmpImm), 1u);
  EXPECT_EQ(operArity(Oper::Cmp), 2u);
  EXPECT_EQ(operArity(Oper::Mod), 2u);
}
