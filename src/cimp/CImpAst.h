//===- cimp/CImpAst.h - The CImp object language AST ------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CImp language (Sec. 7.1): the simple imperative language in which
/// abstract specifications of synchronization objects are written. CImp
/// has register locals, explicit memory loads/stores ([e]), atomic blocks
/// <C>, assert, and (as a convenience for writing clients in tests)
/// external calls and print. Fig. 10(a)'s lock specification is written
/// in this language.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CIMP_CIMPAST_H
#define CASCC_CIMP_CIMPAST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccc {
namespace cimp {

enum class UnOp { Neg, Not };
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// A register-pure expression (memory access is statement-level in CImp).
struct Expr {
  enum class Kind { IntConst, Reg, GlobalAddr, Un, Bin };

  Kind K = Kind::IntConst;
  int32_t IntVal = 0;
  std::string Name; // Reg / GlobalAddr
  UnOp U = UnOp::Neg;
  BinOp B = BinOp::Add;
  std::unique_ptr<Expr> L, R;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

/// A CImp statement.
struct Stmt {
  enum class Kind {
    Skip,
    Assign, ///< Dst := E1
    Load,   ///< Dst := [E1]
    Store,  ///< [E1] := E2
    If,     ///< if (E1) Body else Else
    While,  ///< while (E1) Body
    Atomic, ///< < Body >
    Assert, ///< assert(E1)
    Print,  ///< print(E1) — emits an observable event
    Return, ///< return E1 (E1 may be null)
    Call,   ///< [Dst :=] Callee(Args)
    Spawn,  ///< spawn Callee(Args) — thread creation (paper Sec. 8)
  };

  Kind K = Kind::Skip;
  std::string Dst;
  ExprPtr E1, E2;
  Block Body, Else;
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// A CImp function.
struct Function {
  std::string Name;
  std::vector<std::string> Params;
  Block Body;
};

/// A CImp module: functions plus global declarations.
struct Module {
  std::vector<Function> Funcs;
  /// Declared globals with initial values (owner decided by the module's
  /// object/client mode when registered with a Program).
  std::vector<std::pair<std::string, int32_t>> Globals;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace cimp
} // namespace ccc

#endif // CASCC_CIMP_CIMPAST_H
