//===- support/Lexer.cpp - A small shared tokenizer ------------------------===//

#include "support/Lexer.h"

#include <algorithm>
#include <cctype>

using namespace ccc;

bool ccc::tokenize(const std::string &Source,
                   const std::vector<std::string> &Symbols,
                   std::vector<Token> &Out, std::string &Error) {
  // Longest-match-first symbol table.
  std::vector<std::string> Syms = Symbols;
  std::sort(Syms.begin(), Syms.end(),
            [](const std::string &A, const std::string &B) {
              return A.size() > B.size();
            });

  unsigned Line = 1;
  std::size_t I = 0;
  const std::size_t N = Source.size();
  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '#' || (C == '/' && I + 1 < N && Source[I + 1] == '/')) {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
        C == '.' || C == '%' || C == '$') {
      // Identifier-ish: assembly needs ".L0", "%eax", "$5" handled by the
      // caller; we lex '%'/'$'/'.' as part of identifiers when they start
      // one and are followed by an identifier character.
      if ((C == '%' || C == '$' || C == '.') &&
          !(I + 1 < N &&
            (std::isalnum(static_cast<unsigned char>(Source[I + 1])) ||
             Source[I + 1] == '_'))) {
        // Fall through to symbol handling below.
      } else {
        std::size_t Start = I++;
        while (I < N &&
               (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                Source[I] == '_'))
          ++I;
        std::string Text = Source.substr(Start, I - Start);
        // "$123" is an integer literal in assembly.
        if (Text.size() > 1 && Text[0] == '$' &&
            std::all_of(Text.begin() + 1, Text.end(), [](char D) {
              return std::isdigit(static_cast<unsigned char>(D));
            })) {
          Token T;
          T.K = Token::Kind::Int;
          T.Text = Text;
          T.IntVal = std::stoll(Text.substr(1));
          T.Line = Line;
          Out.push_back(std::move(T));
          continue;
        }
        Token T;
        T.K = Token::Kind::Ident;
        T.Text = std::move(Text);
        T.Line = Line;
        Out.push_back(std::move(T));
        continue;
      }
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::size_t Start = I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      Token T;
      T.K = Token::Kind::Int;
      T.Text = Source.substr(Start, I - Start);
      T.IntVal = std::stoll(T.Text);
      T.Line = Line;
      Out.push_back(std::move(T));
      continue;
    }
    bool Matched = false;
    for (const std::string &S : Syms) {
      if (Source.compare(I, S.size(), S) == 0) {
        Token T;
        T.K = Token::Kind::Symbol;
        T.Text = S;
        T.Line = Line;
        Out.push_back(std::move(T));
        I += S.size();
        Matched = true;
        break;
      }
    }
    if (!Matched) {
      Error = "line " + std::to_string(Line) + ": unexpected character '" +
              std::string(1, C) + "'";
      return false;
    }
  }
  return true;
}
