//===- analysis/TsoRobust.cpp - Static TSO robustness ----------------------===//

#include "analysis/TsoRobust.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace ccc;
using namespace ccc::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Register abstract values
//===----------------------------------------------------------------------===//

/// What a register may hold at a program point. The lattice is
/// Bot < {NonPtr, Global(g), Frame} < Top; joins of unequal non-Bot
/// values go to Top. Alongside the kind, FrameDeriv tracks whether the
/// value may be derived from this entry's own frame address (the taint
/// that decides frame-pointer escape): Frame is always derived, and the
/// taint survives Mov and pointer arithmetic even after the kind has
/// been joined away to Top.
struct AbsVal {
  enum class Kind : uint8_t { Bot, NonPtr, Global, Frame, Top };
  Kind K = Kind::Bot;
  bool FrameDeriv = false;
  std::string Name; // Global only

  static AbsVal bot() { return {}; }
  static AbsVal nonPtr() { return {Kind::NonPtr, false, {}}; }
  static AbsVal global(std::string G) {
    return {Kind::Global, false, std::move(G)};
  }
  static AbsVal frame() { return {Kind::Frame, true, {}}; }
  static AbsVal top() { return {Kind::Top, false, {}}; }

  /// May this value carry the entry's frame address (or a pointer
  /// computed from it)?
  bool frameDerived() const { return K == Kind::Frame || FrameDeriv; }

  bool operator==(const AbsVal &O) const {
    return K == O.K && FrameDeriv == O.FrameDeriv &&
           (K != Kind::Global || Name == O.Name);
  }

  AbsVal join(const AbsVal &O) const {
    if (K == Kind::Bot)
      return O;
    if (O.K == Kind::Bot)
      return *this;
    AbsVal J = *this == O ? *this : top();
    J.FrameDeriv = FrameDeriv || O.FrameDeriv;
    return J;
  }
};

using RegState = std::array<AbsVal, x86::NumRegs>;

RegState joinStates(const RegState &A, const RegState &B) {
  RegState Out;
  for (unsigned I = 0; I < x86::NumRegs; ++I)
    Out[I] = A[I].join(B[I]);
  return Out;
}

AbsVal &regOf(RegState &S, x86::Reg R) {
  return S[static_cast<unsigned>(R)];
}
const AbsVal &regOf(const RegState &S, x86::Reg R) {
  return S[static_cast<unsigned>(R)];
}

/// Abstract evaluation of a readable operand.
AbsVal evalOperand(const x86::Operand &O, const RegState &S) {
  using OK = x86::Operand::Kind;
  switch (O.K) {
  case OK::Imm:
    return AbsVal::nonPtr();
  case OK::GlobalImm:
    return AbsVal::global(O.Global);
  case OK::Reg:
    return regOf(S, O.R);
  case OK::MemBase:
  case OK::MemGlobal:
    // A loaded value: beyond this analysis (could be any address). It is
    // treated as not frame-derived: the frame is freshly allocated at
    // entry, so memory can only hold its address after an escape store —
    // and the escape scan flags that store itself, degrading the whole
    // entry before this assumption is ever relied on.
    return AbsVal::top();
  }
  return AbsVal::top();
}

/// The register transfer of one instruction (memory effects are handled
/// by the robustness walk, not here).
RegState transfer(const x86::Instr &I, RegState S) {
  using IK = x86::Instr::Kind;
  auto setReg = [&S](const x86::Operand &Dst, AbsVal V) {
    if (Dst.K == x86::Operand::Kind::Reg)
      regOf(S, Dst.R) = std::move(V);
  };
  switch (I.K) {
  case IK::Mov:
    setReg(I.Dst, evalOperand(I.Src, S));
    break;
  case IK::Add:
  case IK::Sub: {
    if (I.Dst.K == x86::Operand::Kind::Reg) {
      const AbsVal &D = regOf(S, I.Dst.R);
      // Pointer arithmetic yields a pointer to an unknown cell; pure
      // integer arithmetic stays non-pointer. The frame taint survives:
      // frame + k still points into (or near) the frame.
      AbsVal Src = evalOperand(I.Src, S);
      bool Deriv = D.frameDerived() || Src.frameDerived();
      if (D.K == AbsVal::Kind::NonPtr && Src.K == AbsVal::Kind::NonPtr)
        regOf(S, I.Dst.R) = AbsVal::nonPtr();
      else {
        AbsVal V = AbsVal::top();
        V.FrameDeriv = Deriv;
        regOf(S, I.Dst.R) = std::move(V);
      }
    }
    break;
  }
  case IK::Imul:
  case IK::Div:
  case IK::And:
  case IK::Or:
  case IK::Xor:
  case IK::Shl:
  case IK::Sar:
  case IK::Neg:
  case IK::Not:
    // Integer-only in the dynamic semantics (pointer operands abort), so
    // the result can never be a usable pointer — the frame taint is
    // cleared along with the kind.
    setReg(I.Dst, AbsVal::nonPtr());
    break;
  case IK::Setcc:
    setReg(I.Dst, AbsVal::nonPtr());
    break;
  case IK::Call:
    // applyReturn writes the return value into EAX and preserves every
    // other register.
    regOf(S, x86::Reg::EAX) = AbsVal::top();
    break;
  case IK::LockCmpxchg:
    // On failure the memory value is loaded into EAX.
    regOf(S, x86::Reg::EAX) = AbsVal::top();
    break;
  default:
    break;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Per-entry analysis
//===----------------------------------------------------------------------===//

/// One classified memory access site: (PC, effect slot) with its class.
struct SiteInfo {
  TsoAccess Acc;
  bool Locked = false;
};

struct EntryAnalysis {
  const x86::Module &M;
  const std::string Entry;
  const x86::EntryInfo &EI;
  TsoRobustReport &R;

  /// Reachable PCs of this entry, in BFS discovery order.
  std::vector<unsigned> Reachable;
  /// Register abstract state at each reachable PC (fixpoint).
  std::map<unsigned, RegState> RegAt;
  /// True when the frame address may become visible to another thread
  /// (stored to memory, passed as a call argument, or returned): frame
  /// cells are then no longer thread-private, and classify() treats them
  /// as SharedUnknown instead of Confined.
  bool FrameEscaped = false;

  EntryAnalysis(const x86::Module &Mod, std::string E,
                const x86::EntryInfo &Info, TsoRobustReport &Rep)
      : M(Mod), Entry(std::move(E)), EI(Info), R(Rep) {}

  void computeReachable() {
    std::set<unsigned> Seen;
    std::deque<unsigned> Work{EI.PCIndex};
    Seen.insert(EI.PCIndex);
    while (!Work.empty()) {
      unsigned PC = Work.front();
      Work.pop_front();
      Reachable.push_back(PC);
      for (unsigned S : x86::successors(M, PC))
        if (Seen.insert(S).second)
          Work.push_back(S);
    }
  }

  void fixpointRegs() {
    RegState Init;
    for (unsigned I = 0; I < x86::NumRegs; ++I)
      Init[I] = AbsVal::top();
    // The implicit frame-allocation step materializes the frame pointer.
    if (EI.FrameSize > 0)
      regOf(Init, x86::Reg::ESP) = AbsVal::frame();
    RegAt[EI.PCIndex] = Init;

    std::deque<unsigned> Work{EI.PCIndex};
    std::set<unsigned> InWork{EI.PCIndex};
    while (!Work.empty()) {
      unsigned PC = Work.front();
      Work.pop_front();
      InWork.erase(PC);
      RegState Out = transfer(M.Code[PC], RegAt[PC]);
      for (unsigned S : x86::successors(M, PC)) {
        auto It = RegAt.find(S);
        RegState Joined =
            It == RegAt.end() ? Out : joinStates(It->second, Out);
        if (It == RegAt.end() || !(Joined == It->second)) {
          RegAt[S] = std::move(Joined);
          if (InWork.insert(S).second)
            Work.push_back(S);
        }
      }
    }
  }

  /// Scans the reachable instructions for a point where a frame-derived
  /// value leaves the thread's registers: stored to any memory operand
  /// (including the frame itself — the address can be laundered back out
  /// through a load), published by a lock-prefixed cmpxchg, passed in an
  /// argument register at a call/tcall, or live in EAX at ret. Any such
  /// point means a peer thread may learn the frame address and race on
  /// frame cells, so frame confinement is forfeited for the whole entry.
  /// Sound by induction on execution steps: the *first* concrete escape
  /// flows from ESP purely through register operations, which the
  /// fixpoint taint over-approximates (loads and call returns can only
  /// yield the frame address after some earlier escape).
  bool frameEscapes() const {
    for (unsigned PC : Reachable) {
      const x86::Instr &I = M.Code[PC];
      auto It = RegAt.find(PC);
      if (It == RegAt.end())
        continue;
      const RegState &S = It->second;
      using IK = x86::Instr::Kind;
      switch (I.K) {
      case IK::Mov:
        if (I.Dst.isMem() && evalOperand(I.Src, S).frameDerived())
          return true;
        break;
      case IK::LockCmpxchg:
        if (I.Src.K == x86::Operand::Kind::Reg &&
            regOf(S, I.Src.R).frameDerived())
          return true;
        break;
      case IK::Call:
      case IK::TailCall: {
        auto Arity = M.arityOf(I.Name);
        unsigned N = Arity ? std::min<unsigned>(*Arity, 3u) : 3u;
        for (unsigned A = 0; A < N; ++A)
          if (regOf(S, x86::X86Lang::ArgRegs[A]).frameDerived())
            return true;
        break;
      }
      case IK::Ret:
        if (regOf(S, x86::Reg::EAX).frameDerived())
          return true;
        break;
      default:
        // ALU stores cannot publish a register-held pointer: the only
        // pointer-producing forms are add/sub with the pointer in the
        // *destination*, and a pointer ALU source aborts. printl aborts
        // on pointers outright.
        break;
      }
    }
    return false;
  }

  /// Classifies one memory operand at \p PC under the fixpoint state.
  TsoAccess classify(unsigned PC, const x86::Operand &Op, bool Write) const {
    TsoAccess A;
    A.PC = PC;
    A.Entry = Entry;
    A.Text = M.Code[PC].toString();
    A.Write = Write;
    using OK = x86::Operand::Kind;
    if (Op.K == OK::MemGlobal) {
      A.Cls = AccessClass::SharedKnown;
      A.Global = Op.Global;
      return A;
    }
    assert(Op.K == OK::MemBase && "not a memory operand");
    auto It = RegAt.find(PC);
    const AbsVal Base = It == RegAt.end() ? AbsVal::top()
                                          : regOf(It->second, Op.R);
    switch (Base.K) {
    case AbsVal::Kind::Global:
      if (Op.Disp == 0) {
        A.Cls = AccessClass::SharedKnown;
        A.Global = Base.Name;
      } else {
        // A displaced global points at a neighbouring cell of the linked
        // layout — shared, name unknown.
        A.Cls = AccessClass::SharedUnknown;
        A.Global = "?";
      }
      return A;
    case AbsVal::Kind::Frame:
      if (FrameEscaped) {
        // The frame address may be known to a peer thread: frame cells
        // are shared memory like any other, with unresolved identity.
        A.Cls = AccessClass::SharedUnknown;
        A.Global = "<escaped frame+" + std::to_string(Op.Disp) + ">";
      } else if (Op.Disp >= 0 &&
                 static_cast<uint32_t>(Op.Disp) < EI.FrameSize) {
        A.Cls = AccessClass::Confined;
        A.Global = "<frame+" + std::to_string(Op.Disp) + ">";
      } else {
        A.Cls = AccessClass::SharedUnknown;
        A.Global = "?";
      }
      return A;
    default:
      A.Cls = AccessClass::SharedUnknown;
      A.Global = "?";
      return A;
    }
  }

  /// Reconstructs a drain-free PC path from \p From to \p To for witness
  /// reporting (BFS over non-draining instructions). Module-boundary
  /// instructions are skipped too — the dataflow clears the pending set
  /// there (emitting an escape), so a path routed through a call would
  /// not be one on which the store is still buffered. \p To itself may be
  /// a boundary instruction (the escape point of an escape witness).
  std::vector<unsigned> findPath(unsigned From, unsigned To) const {
    std::map<unsigned, unsigned> Parent;
    std::deque<unsigned> Work{From};
    Parent[From] = From;
    while (!Work.empty()) {
      unsigned PC = Work.front();
      Work.pop_front();
      if (PC == To)
        break;
      if (PC != From && (x86::drainsStoreBuffer(M.Code[PC]) ||
                         x86::crossesModuleBoundary(M.Code[PC])))
        continue;
      for (unsigned S : x86::successors(M, PC))
        if (Parent.emplace(S, PC).second)
          Work.push_back(S);
    }
    std::vector<unsigned> Path;
    if (!Parent.count(To))
      return Path;
    for (unsigned PC = To;; PC = Parent[PC]) {
      Path.push_back(PC);
      if (PC == Parent[PC])
        break;
    }
    std::reverse(Path.begin(), Path.end());
    return Path;
  }

  void run() {
    computeReachable();
    if (Reachable.empty())
      return;
    fixpointRegs();
    FrameEscaped = EI.FrameSize > 0 && frameEscapes();
    if (FrameEscaped)
      R.Notes.push_back("entry '" + Entry +
                        "': frame address may escape to another thread — "
                        "frame accesses treated as shared (verdict at "
                        "most Unknown for them)");

    // Collect and count the access sites once (stats are per site, not
    // per dataflow visit), and assign ids to the plain shared stores.
    struct StoreSite {
      TsoAccess Acc;
    };
    std::vector<StoreSite> Stores;
    std::map<std::pair<unsigned, unsigned>, unsigned> StoreId;
    for (unsigned PC : Reachable) {
      auto Effects = x86::memEffects(M.Code[PC]);
      for (unsigned EIx = 0; EIx < Effects.size(); ++EIx) {
        const x86::MemEffect &E = Effects[EIx];
        TsoAccess A = classify(PC, *E.Op, E.IsStore);
        if (E.Locked) {
          ++R.LockedOps;
          continue;
        }
        if (A.Cls == AccessClass::Confined) {
          ++R.ConfinedAccesses;
          continue;
        }
        if (E.IsStore) {
          ++R.SharedStores;
          StoreId[{PC, EIx}] = static_cast<unsigned>(Stores.size());
          Stores.push_back({A});
        }
        if (E.IsLoad)
          ++R.SharedLoads;
      }
    }

    // Pending-store dataflow: the fact at a PC is the set of unfenced
    // shared stores that may still sit in the buffer when control
    // reaches it. Union join; monotone; finite.
    std::map<unsigned, std::set<unsigned>> PendingAt;
    PendingAt[EI.PCIndex] = {};
    std::deque<unsigned> Work{EI.PCIndex};
    std::set<unsigned> InWork{EI.PCIndex};

    // Witness / certificate dedup across dataflow revisits.
    std::set<std::pair<unsigned, unsigned>> SeenTriangles; // (store, load PC)
    std::set<std::pair<unsigned, unsigned>> SeenEscapes;   // (store, exit PC)
    std::set<std::pair<unsigned, unsigned>> SeenCerts;     // (store, drain PC)
    std::set<unsigned> Witnessed;                          // store ids

    auto emitTriangle = [&](unsigned StoreIdx, const TsoAccess &Load) {
      if (!SeenTriangles.insert({StoreIdx, Load.PC}).second)
        return;
      Witnessed.insert(StoreIdx);
      TriangularWitness W;
      W.Store = Stores[StoreIdx].Acc;
      W.Load = Load;
      W.Path = findPath(W.Store.PC, Load.PC);
      W.Tentative = W.Store.Cls == AccessClass::SharedUnknown ||
                    Load.Cls == AccessClass::SharedUnknown;
      R.Witnesses.push_back(std::move(W));
    };
    auto emitEscape = [&](unsigned StoreIdx, unsigned ExitPC) {
      if (!SeenEscapes.insert({StoreIdx, ExitPC}).second)
        return;
      Witnessed.insert(StoreIdx);
      TriangularWitness W;
      W.Store = Stores[StoreIdx].Acc;
      TsoAccess Exit;
      Exit.PC = ExitPC;
      Exit.Entry = Entry;
      Exit.Text = M.Code[ExitPC].toString();
      Exit.Cls = AccessClass::SharedUnknown;
      Exit.Global = "?";
      W.Escape = std::move(Exit);
      W.Path = findPath(W.Store.PC, ExitPC);
      W.Tentative = W.Store.Cls == AccessClass::SharedUnknown;
      R.Witnesses.push_back(std::move(W));
    };
    auto emitCert = [&](unsigned StoreIdx, unsigned DrainPC) {
      if (!SeenCerts.insert({StoreIdx, DrainPC}).second)
        return;
      FenceCert C;
      C.Entry = Entry;
      C.StorePC = Stores[StoreIdx].Acc.PC;
      C.DrainPC = DrainPC;
      C.StoreText = Stores[StoreIdx].Acc.Text;
      C.DrainText = M.Code[DrainPC].toString();
      R.Certificates.push_back(std::move(C));
    };

    while (!Work.empty()) {
      unsigned PC = Work.front();
      Work.pop_front();
      InWork.erase(PC);
      const x86::Instr &I = M.Code[PC];
      std::set<unsigned> Out = PendingAt[PC];

      if (x86::drainsStoreBuffer(I)) {
        for (unsigned S : Out)
          emitCert(S, PC);
        Out.clear();
      } else if (x86::crossesModuleBoundary(I)) {
        // The executable model drains here, but the analysis does not
        // credit it: the buffered store escapes into the caller/callee.
        for (unsigned S : Out)
          emitEscape(S, PC);
        Out.clear();
      } else {
        auto Effects = x86::memEffects(I);
        for (unsigned EIx = 0; EIx < Effects.size(); ++EIx) {
          const x86::MemEffect &E = Effects[EIx];
          TsoAccess A = classify(PC, *E.Op, E.IsStore);
          if (A.Cls == AccessClass::Confined)
            continue;
          if (E.IsLoad) {
            for (unsigned S : Out) {
              const TsoAccess &St = Stores[S].Acc;
              // Same known cell: the load snoops the buffered value —
              // SC-explainable (flush immediately after the store).
              if (St.Cls == AccessClass::SharedKnown &&
                  A.Cls == AccessClass::SharedKnown && St.Global == A.Global)
                continue;
              TsoAccess LoadA = A;
              LoadA.Write = false;
              emitTriangle(S, LoadA);
            }
          }
          if (E.IsStore)
            Out.insert(StoreId.at({PC, EIx}));
        }
      }

      for (unsigned S : x86::successors(M, PC)) {
        auto It = PendingAt.find(S);
        if (It == PendingAt.end()) {
          PendingAt[S] = Out;
          if (InWork.insert(S).second)
            Work.push_back(S);
        } else {
          std::set<unsigned> Joined = It->second;
          Joined.insert(Out.begin(), Out.end());
          if (Joined != It->second) {
            It->second = std::move(Joined);
            if (InWork.insert(S).second)
              Work.push_back(S);
          }
        }
      }
    }

    // A store never fenced and never witnessed can only sit on a path
    // that silently diverges before the next shared access — with no
    // subsequent load the flush point is a valid linearization point.
    std::set<unsigned> Certified;
    for (const auto &KV : SeenCerts)
      Certified.insert(KV.first);
    for (unsigned S = 0; S < Stores.size(); ++S)
      if (!Certified.count(S) && !Witnessed.count(S))
        R.Notes.push_back("entry '" + Entry + "': store at PC " +
                          std::to_string(Stores[S].Acc.PC) + " (" +
                          Stores[S].Acc.Text +
                          ") only reaches divergent paths — " +
                          "SC-explainable without a fence");
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

const char *ccc::analysis::tsoVerdictName(TsoVerdict V) {
  switch (V) {
  case TsoVerdict::Robust:
    return "robust";
  case TsoVerdict::NotRobust:
    return "not-robust";
  case TsoVerdict::Unknown:
    return "unknown";
  }
  return "?";
}

std::string TsoAccess::describe() const {
  std::string Cl = Cls == AccessClass::Confined
                       ? "confined"
                       : (Cls == AccessClass::SharedKnown ? "shared"
                                                          : "shared?");
  return Entry + "+" + std::to_string(PC) + ": " +
         (Write ? "store " : "load ") + Global + " [" + Cl + "] (" + Text +
         ")";
}

std::string TriangularWitness::describe() const {
  StrBuilder B;
  B << (Tentative ? "tentative " : "") << "triangular race: unfenced "
    << Store.describe();
  if (Load)
    B << " followed by " << Load->describe();
  if (Escape)
    B << " buffered across module boundary at " << Escape->Entry << '+'
      << Escape->PC << " (" << Escape->Text << ")";
  if (!Path.empty()) {
    B << " via path [";
    for (std::size_t I = 0; I < Path.size(); ++I)
      B << (I ? "," : "") << Path[I];
    B << ']';
  }
  return B.take();
}

std::string FenceCert::describe() const {
  return Entry + ": store at PC " + std::to_string(StorePC) + " (" +
         StoreText + ") drained at PC " + std::to_string(DrainPC) + " (" +
         DrainText + ")";
}

std::string TsoRobustReport::toString() const {
  StrBuilder B;
  B << "TSO robustness verdict: " << tsoVerdictName(Verdict) << " (entries "
    << Entries << ", shared stores " << SharedStores << ", shared loads "
    << SharedLoads << ", confined " << ConfinedAccesses << ", locked "
    << LockedOps << ")\n";
  for (const TriangularWitness &W : Witnesses)
    B << "  witness: " << W.describe() << '\n';
  for (const FenceCert &C : Certificates)
    B << "  fence: " << C.describe() << '\n';
  for (const std::string &N : Notes)
    B << "  note: " << N << '\n';
  return B.take();
}

TsoRobustReport ccc::analysis::tsoRobustness(const x86::Module &M) {
  TsoRobustReport R;
  R.Entries = static_cast<unsigned>(M.Entries.size());
  for (const auto &E : M.Entries) {
    EntryAnalysis A(M, E.first, E.second, R);
    A.run();
  }
  bool AnyHard = false, AnyTentative = false;
  for (const TriangularWitness &W : R.Witnesses)
    (W.Tentative ? AnyTentative : AnyHard) = true;
  if (AnyHard)
    R.Verdict = TsoVerdict::NotRobust;
  else if (AnyTentative)
    R.Verdict = TsoVerdict::Unknown;
  else
    R.Verdict = TsoVerdict::Robust;
  return R;
}

bool ProgramTsoReport::allRobust() const {
  if (Modules.empty())
    return false;
  for (const ModuleTsoInfo &M : Modules)
    if (!M.Report.robust())
      return false;
  return true;
}

bool ProgramTsoReport::anyScSwitchable() const {
  for (const ModuleTsoInfo &M : Modules)
    if (M.Model == x86::MemModel::TSO && M.Report.robust())
      return true;
  return false;
}

std::string ProgramTsoReport::toString() const {
  StrBuilder B;
  for (const ModuleTsoInfo &M : Modules) {
    B << "module '" << M.Name << "' ("
      << (M.Model == x86::MemModel::TSO ? "x86-TSO" : "x86-SC")
      << (M.ObjectMode ? ", object" : "") << "): "
      << tsoVerdictName(M.Report.Verdict);
    if (M.AllowedByRefinement)
      B << " [allowed by refinement]";
    B << '\n' << M.Report.toString();
  }
  return B.take();
}

ProgramTsoReport ccc::analysis::programTsoRobustness(const Program &P) {
  ProgramTsoReport R;
  for (const ModuleDecl &D : P.modules()) {
    const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
    if (!L)
      continue;
    ModuleTsoInfo Info;
    Info.Name = D.Name;
    Info.ObjectMode = L->objectMode();
    Info.Model = L->memModel();
    Info.Report = tsoRobustness(L->module());
    R.Modules.push_back(std::move(Info));
  }
  return R;
}

unsigned ccc::analysis::applyScFastPath(Program &P,
                                        const ProgramTsoReport &R) {
  unsigned Switched = 0;
  for (const ModuleTsoInfo &Info : R.Modules) {
    if (Info.Model != x86::MemModel::TSO || !Info.Report.robust())
      continue;
    for (unsigned I = 0; I < P.modules().size(); ++I) {
      ModuleDecl &D = P.module(I);
      auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
      if (!L || D.Name != Info.Name || L->memModel() != x86::MemModel::TSO)
        continue;
      D.Lang = std::make_unique<x86::X86Lang>(
          L->modulePtr(), x86::MemModel::SC, L->objectMode());
      if (P.linked())
        D.Lang->bindGlobals(&D.GE);
      ++Switched;
    }
  }
  return Switched;
}
