//===- tests/JobRunnerTest.cpp - Batch check dispatch tests ---------------===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
// Dispatch coverage for every check kind, and the budget-soundness hard
// gate: an under-budgeted job must report Inconclusive with
// conclusive=false and the budget that tripped — a certificate from a
// truncated job is the regression these tests exist to catch.
//
//===----------------------------------------------------------------------===//

#include "frontend/JobRunner.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::frontend;

namespace {

WorkloadFile parseOrDie(const std::string &Text) {
  ParseError Err;
  std::optional<WorkloadFile> W = parseWorkload(Text, Err);
  EXPECT_TRUE(W.has_value()) << Err.str();
  return std::move(*W);
}

const char *RacyText = "module client cimp {\n"
                       "  global x = 0;\n"
                       "  inc() { tmp := [x]; [x] := tmp + 1; print(tmp); }\n"
                       "}\n"
                       "thread inc\nthread inc\n";

const char *LockedText =
    "module client cimp {\n"
    "  global x = 0;\n"
    "  inc() { lock(); tmp := [x]; [x] := tmp + 1; unlock(); }\n"
    "}\n"
    "module lockspec cimp object {\n"
    "  global L = 1;\n"
    "  lock() { r := 0; while (r == 0) { < r := [L]; [L] := 0; > }\n"
    "           return 0; }\n"
    "  unlock() { < r := [L]; assert(r == 0); [L] := 1; > return 0; }\n"
    "}\n"
    "thread inc\nthread inc\n";

const char *UnfencedSbText = "module m x86 model tso {\n"
                             "  .data x 0\n  .data y 0\n"
                             "  .entry t1 0 0\n  .entry t2 0 0\n"
                             "  t1:\n          movl $1, x\n"
                             "          movl y, %eax\n"
                             "          printl %eax\n          retl\n"
                             "  t2:\n          movl $1, y\n"
                             "          movl x, %ebx\n"
                             "          printl %ebx\n          retl\n"
                             "}\n"
                             "thread t1\nthread t2\n";

JobSpec spec(const std::string &Text, std::vector<CheckKind> Checks) {
  JobSpec S;
  S.Name = "job";
  S.W = parseOrDie(Text);
  S.W.Checks = std::move(Checks);
  return S;
}

TEST(JobRunnerTest, DrfRefutesTheRacyCounter) {
  const std::vector<JobOutcome> Outs =
      runJob(spec(RacyText, {CheckKind::Drf}));
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Check, "drf");
  EXPECT_EQ(Outs[0].Verdict, "refuted");
  EXPECT_TRUE(Outs[0].Conclusive);
  EXPECT_EQ(Outs[0].TruncatedBy, "");
}

TEST(JobRunnerTest, DrfCertifiesTheLockedCounter) {
  const std::vector<JobOutcome> Outs =
      runJob(spec(LockedText, {CheckKind::Drf, CheckKind::Explore}));
  ASSERT_EQ(Outs.size(), 2u);
  EXPECT_EQ(Outs[0].Verdict, "certified");
  EXPECT_TRUE(Outs[0].Conclusive);
  EXPECT_EQ(Outs[1].Check, "explore");
  EXPECT_EQ(Outs[1].Verdict, "certified");
  EXPECT_TRUE(Outs[1].Conclusive);
  // A full exploration carries the trace hash the verdict differ pins.
  EXPECT_EQ(Outs[1].TraceHash.size(), 16u);
}

TEST(JobRunnerTest, RobustnessAndRepairOnUnfencedSb) {
  const std::vector<JobOutcome> Outs = runJob(
      spec(UnfencedSbText, {CheckKind::Robustness, CheckKind::FenceSynth}));
  ASSERT_EQ(Outs.size(), 2u);
  EXPECT_EQ(Outs[0].Check, "robustness");
  EXPECT_EQ(Outs[0].Verdict, "not-robust");
  EXPECT_TRUE(Outs[0].Conclusive);
  EXPECT_EQ(Outs[1].Check, "fence-synth");
  EXPECT_EQ(Outs[1].Verdict, "certified");
  EXPECT_TRUE(Outs[1].Conclusive);
}

TEST(JobRunnerTest, PassesValidateAClightModule) {
  const std::vector<JobOutcome> Outs = runJob(spec(
      "module c clight {\n"
      "  int x = 0;\n"
      "  void f() {\n    int32_t t;\n    t = x;\n    x = t + 1;\n  }\n"
      "}\n"
      "thread f\n",
      {CheckKind::Passes}));
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Verdict, "certified");
  EXPECT_TRUE(Outs[0].Conclusive);
}

TEST(JobRunnerTest, PassesWithoutClightModulesIsInconclusive) {
  const std::vector<JobOutcome> Outs =
      runJob(spec(RacyText, {CheckKind::Passes}));
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Verdict, "inconclusive");
  EXPECT_FALSE(Outs[0].Conclusive);
}

TEST(JobRunnerTest, NoChecksDefaultsToOneExplore) {
  const std::vector<JobOutcome> Outs = runJob(spec(RacyText, {}));
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Check, "explore");
}

TEST(JobRunnerTest, BuildFailureYieldsErrorOutcomePerCheck) {
  JobSpec S = spec("module a cimp { f() { return 0; } }\nthread missing\n",
                   {CheckKind::Drf, CheckKind::Explore});
  const std::vector<JobOutcome> Outs = runJob(S);
  ASSERT_EQ(Outs.size(), 2u);
  for (const JobOutcome &Out : Outs) {
    EXPECT_EQ(Out.Verdict, "error");
    EXPECT_FALSE(Out.Conclusive);
    EXPECT_FALSE(Out.Error.empty());
  }
}

//===--------------------------------------------------------------------===//
// Budget soundness: the acceptance-criteria hard gate.
//===--------------------------------------------------------------------===//

TEST(JobRunnerTest, StateBudgetTruncationIsNeverACertificate) {
  // The locked counter is genuinely DRF; an under-budgeted job must NOT
  // say so. Fast paths off: with the static lockset certificate in play
  // the verdict would be legitimately (and soundly) Certified without
  // exploring — here the budgeted exploration must be the decider.
  JobSpec S = spec(LockedText, {CheckKind::Drf, CheckKind::Explore});
  S.FastPaths = false;
  S.Budget.MaxStates = 5;
  const std::vector<JobOutcome> Outs = runJob(S);
  ASSERT_EQ(Outs.size(), 2u);
  for (const JobOutcome &Out : Outs) {
    EXPECT_EQ(Out.Verdict, "inconclusive") << Out.Check;
    EXPECT_FALSE(Out.Conclusive) << Out.Check;
    EXPECT_EQ(Out.TruncatedBy, "states") << Out.Check;
    // No trace hash from a truncated exploration: the prefix trace set
    // is a bound, not the program's behaviour.
    EXPECT_TRUE(Out.TraceHash.empty()) << Out.Check;
  }
}

TEST(JobRunnerTest, TimeBudgetTruncationReportsTime) {
  JobSpec S = spec(LockedText, {CheckKind::Explore});
  S.Budget.MaxMs = 1e-6; // trips at the first layer boundary
  const std::vector<JobOutcome> Outs = runJob(S);
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Verdict, "inconclusive");
  EXPECT_FALSE(Outs[0].Conclusive);
  EXPECT_EQ(Outs[0].TruncatedBy, "time");
}

TEST(JobRunnerTest, MemoryBudgetTruncationReportsMemory) {
  JobSpec S = spec(LockedText, {CheckKind::Explore});
  S.Budget.MaxStateBytes = 1;
  const std::vector<JobOutcome> Outs = runJob(S);
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Verdict, "inconclusive");
  EXPECT_FALSE(Outs[0].Conclusive);
  EXPECT_EQ(Outs[0].TruncatedBy, "memory");
}

TEST(JobRunnerTest, TruncatedRefutationIsStillARefutation) {
  // A race found within the budget is a witness — truncation does not
  // weaken an actual counterexample.
  JobSpec S = spec(RacyText, {CheckKind::Drf});
  S.Budget.MaxStates = 2000000;
  const std::vector<JobOutcome> Outs = runJob(S);
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Verdict, "refuted");
  EXPECT_TRUE(Outs[0].Conclusive);
}

TEST(JobRunnerTest, JsonRecordCarriesTheTriState) {
  JobSpec S = spec(LockedText, {CheckKind::Drf});
  S.FastPaths = false; // exploration must be the decider
  S.Budget.MaxStates = 5;
  const std::vector<JobOutcome> Outs = runJob(S);
  ASSERT_EQ(Outs.size(), 1u);
  const std::string J = Outs[0].toJson();
  EXPECT_NE(J.find("\"verdict\": \"inconclusive\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"conclusive\": false"), std::string::npos) << J;
  EXPECT_NE(J.find("\"truncated_by\": \"states\""), std::string::npos) << J;
}

TEST(JobRunnerTest, WorkerWidthDoesNotChangeVerdicts) {
  for (unsigned Workers : {1u, 2u, 8u}) {
    JobSpec S = spec(LockedText, {CheckKind::Drf});
    S.Workers = Workers;
    const std::vector<JobOutcome> Outs = runJob(S);
    ASSERT_EQ(Outs.size(), 1u);
    EXPECT_EQ(Outs[0].Verdict, "certified") << Workers;
  }
}

} // namespace
