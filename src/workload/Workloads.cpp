//===- workload/Workloads.cpp - Benchmark workload generators --------------===//

#include "workload/Workloads.h"

#include "cimp/CImpLang.h"
#include "clight/ClightLang.h"
#include "support/StrUtil.h"
#include "sync/LockLib.h"

#include <cassert>

using namespace ccc;
using namespace ccc::workload;

std::string ccc::workload::fig10cClientSource() {
  return R"(
    extern void lock();
    extern void unlock();
    int x = 0;
    void inc() {
      int32_t tmp;
      lock();
      tmp = x;
      x = x + 1;
      unlock();
      print(tmp);
    }
  )";
}

std::string ccc::workload::cimpLockClientSource(unsigned Increments,
                                                unsigned CsExtra) {
  StrBuilder B;
  B << "global x = 0;\n";
  B << "inc() {\n";
  B << "  n := 0;\n";
  B << "  while (n < " << Increments << ") {\n";
  B << "    lock();\n";
  for (unsigned I = 0; I < CsExtra; ++I)
    B << "    pad" << I << " := n + " << I << ";\n";
  B << "    tmp := [x];\n";
  B << "    [x] := tmp + 1;\n";
  B << "    unlock();\n";
  B << "    print(tmp);\n";
  B << "    n := n + 1;\n";
  B << "  }\n";
  B << "}\n";
  return B.take();
}

Program ccc::workload::lockedCounter(unsigned Threads, unsigned Increments,
                                     unsigned CsExtra) {
  Program P;
  cimp::addCImpModule(P, "client",
                      cimpLockClientSource(Increments, CsExtra));
  sync::addGammaLock(P);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::racyCounter(unsigned Threads) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    global x = 0;
    inc() { tmp := [x]; [x] := tmp + 1; print(tmp); }
  )");
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::atomicCounter(unsigned Threads, unsigned Work) {
  StrBuilder B;
  B << "global x = 0;\n";
  B << "inc() {\n";
  for (unsigned I = 0; I < Work; ++I)
    B << "  w" << I << " := " << I << " + 1;\n";
  B << "  < v := [x]; [x] := v + 1; >\n";
  B << "}\n";
  Program P;
  cimp::addCImpModule(P, "client", B.take());
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::clightLockedCounter(unsigned Threads) {
  Program P;
  clight::addClightModule(P, "client", fig10cClientSource());
  sync::addGammaLock(P);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::asmCounterWithPiLock(x86::MemModel Model,
                                            unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLock(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::asmCounterWithPiLockFenced(x86::MemModel Model,
                                                  unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            mfence
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLockFenced(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

Program ccc::workload::asmCounterWithRecLock(x86::MemModel Model,
                                             unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            mfence
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLockRecursive(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

namespace {

Program pingPongProgram(x86::MemModel Model, unsigned Rounds, bool Fenced) {
  StrBuilder B;
  B << "    .data x 0\n"
    << "    .data y 0\n"
    << "    .entry t1 0 0\n"
    << "    .entry t2 0 0\n";
  auto thread = [&B, Rounds, Fenced](const char *Entry, const char *Own,
                                     const char *Peer) {
    B << Entry << ":\n"
      << "            movl $" << Rounds << ", %ecx\n"
      << Entry << "_loop:\n"
      << "            movl %ecx, " << Own << "\n";
    if (Fenced)
      B << "            mfence\n";
    B << "            movl " << Peer << ", %eax\n"
      << "            printl %eax\n"
      << "            subl $1, %ecx\n"
      << "            cmpl $0, %ecx\n"
      << "            jne " << Entry << "_loop\n"
      << "            retl\n";
  };
  thread("t1", "x", "y");
  thread("t2", "y", "x");
  Program P;
  x86::addAsmModule(P, "m", B.take(), Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

} // namespace

Program ccc::workload::fencedPingPong(x86::MemModel Model, unsigned Rounds) {
  return pingPongProgram(Model, Rounds, /*Fenced=*/true);
}

Program ccc::workload::unfencedPingPong(x86::MemModel Model,
                                        unsigned Rounds) {
  return pingPongProgram(Model, Rounds, /*Fenced=*/false);
}

Program ccc::workload::asmCounterWithRecLockUnfenced(x86::MemModel Model,
                                                     unsigned Threads) {
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .entry inc 0 0
    .extern lock 0
    .extern unlock 0
    inc:
            call lock
            movl x, %ebx
            movl %ebx, %ecx
            addl $1, %ecx
            movl %ecx, x
            call unlock
            printl %ebx
            retl
  )",
                    Model);
  sync::addPiLockRecursiveUnfenced(P, Model);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("inc");
  P.link();
  return P;
}

namespace {

/// One row of the litmus registry: name, plain and fully fenced assembly
/// sources, and the thread entries to spawn (in order).
struct LitmusSpec {
  const char *Name;
  const char *Plain;
  const char *Fenced;
  std::vector<const char *> Entries;
};

const std::vector<LitmusSpec> &litmusTable() {
  static const std::vector<LitmusSpec> Table = {
      {"SB",
       R"(
    .data x 0
    .data y 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $1, x
            movl y, %eax
            printl %eax
            retl
    t2:
            movl $1, y
            movl x, %ebx
            printl %ebx
            retl
  )",
       R"(
    .data x 0
    .data y 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $1, x
            mfence
            movl y, %eax
            printl %eax
            retl
    t2:
            movl $1, y
            mfence
            movl x, %ebx
            printl %ebx
            retl
  )",
       {"t1", "t2"}},
      {"MP",
       R"(
    .data data 0
    .data flag 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $42, data
            movl $1, flag
            retl
    t2:
    spin:
            movl flag, %eax
            cmpl $1, %eax
            jne spin
            movl data, %ebx
            printl %ebx
            retl
  )",
       R"(
    .data data 0
    .data flag 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $42, data
            mfence
            movl $1, flag
            retl
    t2:
    spin:
            movl flag, %eax
            cmpl $1, %eax
            jne spin
            mfence
            movl data, %ebx
            printl %ebx
            retl
  )",
       {"t1", "t2"}},
      // LB: each thread loads the peer's cell *then* stores its own. The
      // both-one outcome (prints 1,1) requires the load to be satisfied
      // after the program-later store — load buffering. t1 prints
      // 10+r1, t2 prints 20+r2 so the outcome is readable off the trace.
      {"LB",
       R"(
    .data x 0
    .data y 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl y, %eax
            movl $1, x
            addl $10, %eax
            printl %eax
            retl
    t2:
            movl x, %ebx
            movl $1, y
            addl $20, %ebx
            printl %ebx
            retl
  )",
       R"(
    .data x 0
    .data y 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl y, %eax
            mfence
            movl $1, x
            mfence
            addl $10, %eax
            printl %eax
            retl
    t2:
            movl x, %ebx
            mfence
            movl $1, y
            mfence
            addl $20, %ebx
            printl %ebx
            retl
  )",
       {"t1", "t2"}},
      // IRIW: two writers to independent cells, two readers scanning
      // them in opposite orders. r1 prints 10+2*x+y, r2 prints
      // 20+2*y+x; the readers-disagree outcome {12, 22} (r1 saw x
      // first, r2 saw y first) requires load-load reordering, which
      // TSO's total store visibility forbids.
      {"IRIW",
       R"(
    .data x 0
    .data y 0
    .entry w1 0 0
    .entry w2 0 0
    .entry r1 0 0
    .entry r2 0 0
    w1:
            movl $1, x
            retl
    w2:
            movl $1, y
            retl
    r1:
            movl x, %eax
            movl y, %ebx
            imull $2, %eax
            addl %ebx, %eax
            addl $10, %eax
            printl %eax
            retl
    r2:
            movl y, %ecx
            movl x, %edx
            imull $2, %ecx
            addl %edx, %ecx
            addl $20, %ecx
            printl %ecx
            retl
  )",
       R"(
    .data x 0
    .data y 0
    .entry w1 0 0
    .entry w2 0 0
    .entry r1 0 0
    .entry r2 0 0
    w1:
            movl $1, x
            retl
    w2:
            movl $1, y
            retl
    r1:
            movl x, %eax
            mfence
            movl y, %ebx
            imull $2, %eax
            addl %ebx, %eax
            addl $10, %eax
            printl %eax
            retl
    r2:
            movl y, %ecx
            mfence
            movl x, %edx
            imull $2, %ecx
            addl %edx, %ecx
            addl $20, %ecx
            printl %ecx
            retl
  )",
       {"w1", "w2", "r1", "r2"}},
  };
  return Table;
}

} // namespace

std::vector<std::string> ccc::workload::litmusNames() {
  std::vector<std::string> Names;
  for (const auto &S : litmusTable())
    Names.push_back(S.Name);
  return Names;
}

Program ccc::workload::litmus(const std::string &Name, x86::MemModel Model,
                              bool Fenced) {
  for (const auto &S : litmusTable()) {
    if (Name != S.Name)
      continue;
    Program P;
    x86::addAsmModule(P, "m", Fenced ? S.Fenced : S.Plain, Model);
    for (const char *E : S.Entries)
      P.addThread(E);
    P.link();
    return P;
  }
  assert(false && "unknown litmus name");
  return Program();
}

Program ccc::workload::mixedModelProgram(bool Fenced) {
  Program P;
  // SC observer: a Clight module whose single print interleaves with the
  // weak-memory pairs below — the models compose in one linked program.
  clight::addClightModule(P, "obsmod", R"(
    void obs() {
      print(7);
    }
  )");
  // The SB pair under TSO: both-zero shows up as {100, 200}.
  x86::addAsmModule(P, "sbmod",
                    Fenced ? R"(
    .data sx 0
    .data sy 0
    .entry s1 0 0
    .entry s2 0 0
    s1:
            movl $1, sx
            mfence
            movl sy, %eax
            addl $100, %eax
            printl %eax
            retl
    s2:
            movl $1, sy
            mfence
            movl sx, %ebx
            addl $200, %ebx
            printl %ebx
            retl
  )"
                           : R"(
    .data sx 0
    .data sy 0
    .entry s1 0 0
    .entry s2 0 0
    s1:
            movl $1, sx
            movl sy, %eax
            addl $100, %eax
            printl %eax
            retl
    s2:
            movl $1, sy
            movl sx, %ebx
            addl $200, %ebx
            printl %ebx
            retl
  )",
                    x86::MemModel::TSO);
  // The LB pair under Relaxed: both-one shows up as {11, 21}.
  x86::addAsmModule(P, "lbmod",
                    Fenced ? R"(
    .data lx 0
    .data ly 0
    .entry l1 0 0
    .entry l2 0 0
    l1:
            movl ly, %eax
            mfence
            movl $1, lx
            mfence
            addl $10, %eax
            printl %eax
            retl
    l2:
            movl lx, %ebx
            mfence
            movl $1, ly
            mfence
            addl $20, %ebx
            printl %ebx
            retl
  )"
                           : R"(
    .data lx 0
    .data ly 0
    .entry l1 0 0
    .entry l2 0 0
    l1:
            movl ly, %eax
            movl $1, lx
            addl $10, %eax
            printl %eax
            retl
    l2:
            movl lx, %ebx
            movl $1, ly
            addl $20, %ebx
            printl %ebx
            retl
  )",
                    x86::MemModel::Relaxed);
  P.addThread("obs");
  P.addThread("s1");
  P.addThread("s2");
  P.addThread("l1");
  P.addThread("l2");
  P.link();
  return P;
}

Program ccc::workload::sbLitmus(x86::MemModel Model, bool Fenced) {
  return litmus("SB", Model, Fenced);
}

Program ccc::workload::mpLitmus(x86::MemModel Model) {
  return litmus("MP", Model, /*Fenced=*/false);
}

Program ccc::workload::mpPublishReadback(x86::MemModel Model) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data data 0
    .data flag 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $42, data
            movl $1, flag
            movl flag, %eax
            mfence
            printl %eax
            retl
    t2:
    spin:
            movl flag, %eax
            cmpl $1, %eax
            jne spin
            movl data, %ebx
            printl %ebx
            retl
  )",
                    Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

Program ccc::workload::lockThenPublish(x86::MemModel Model) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data data 0
    .data flag 0
    .entry t1 0 0
    .entry t2 0 0
    .entry pub 0 0
    t1:
            movl $42, data
            call pub
            retl
    pub:
            movl $1, flag
            mfence
            retl
    t2:
    spin:
            movl flag, %eax
            cmpl $1, %eax
            jne spin
            movl data, %ebx
            printl %ebx
            retl
  )",
                    Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}

Program ccc::workload::pointerChainClient(x86::MemModel Model) {
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data x 0
    .data y 0
    .data p 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $x, p
            mfence
            movl $1, x
            mfence
            retl
    t2:
    spin:
            movl p, %eax
            cmpl $0, %eax
            je spin
            movl $2, (%eax)
            mfence
            movl y, %ebx
            printl %ebx
            retl
  )",
                    Model);
  P.addThread("t1");
  P.addThread("t2");
  P.link();
  return P;
}
