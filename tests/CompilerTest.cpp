//===- tests/CompilerTest.cpp - Pipeline semantic-preservation tests -------===//
//
// Compiles a suite of Clight programs through every pass of Fig. 11 and
// checks that each stage's whole-program trace set equals the source's —
// the executable counterpart of per-pass semantic preservation. Also
// checks pass-specific facts (tail calls introduced, labels removed,
// footprints shrink at Cminorgen).
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::compiler;

namespace {

struct Scenario {
  const char *Name;
  const char *Source;
  std::vector<std::string> Threads;
  bool NeedsLock = false;
};

const Scenario Scenarios[] = {
    {"arith", R"(
      void main() {
        int a = 6;
        int b = 7;
        print(a * b);
        print(a + b * 2);
        print((a - b) * 4);
        print(a / 2 + b % 3);
      }
     )",
     {"main"},
     false},
    {"control", R"(
      void main() {
        int i = 0;
        int s = 0;
        while (i < 8) {
          if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
          i = i + 1;
        }
        print(s);
        if (s > 0 && s < 100) { print(1); } else { print(0); }
      }
     )",
     {"main"},
     false},
    {"calls", R"(
      int square(int x) { return x * x; }
      int addup(int n) {
        int s = 0;
        int i = 1;
        while (i <= n) { s = s + i; i = i + 1; }
        return s;
      }
      void main() {
        int r;
        r = square(9);
        print(r);
        r = addup(10);
        print(r);
      }
     )",
     {"main"},
     false},
    {"tailcall", R"(
      int helper(int x) { return x + 1; }
      int wrapper(int x) {
        int r;
        r = helper(x);
        return r;
      }
      void main() {
        int v;
        v = wrapper(41);
        print(v);
      }
     )",
     {"main"},
     false},
    {"globals", R"(
      int g = 5;
      int h = 0;
      void main() {
        int *p;
        p = &g;
        h = *p + 2;
        *p = h * 3;
        print(g);
        print(h);
      }
     )",
     {"main"},
     false},
    {"lockinc", R"(
      extern void lock();
      extern void unlock();
      int x = 0;
      void inc() {
        int32_t tmp;
        lock();
        tmp = x;
        x = x + 1;
        unlock();
        print(tmp);
      }
     )",
     {"inc", "inc"},
     true},
};

TraceSet stageTraces(const Scenario &Sc, const CompileResult &R,
                     unsigned Stage, ExploreStats *Stats = nullptr) {
  Program P;
  addStage(P, R, Stage, "client");
  if (Sc.NeedsLock)
    sync::addGammaLock(P);
  for (const std::string &T : Sc.Threads)
    P.addThread(T);
  P.link();
  return preemptiveTraces(P, {}, Stats);
}

class PipelineTest : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(PipelineTest, EveryStagePreservesTraces) {
  const Scenario &Sc = Scenarios[GetParam()];
  CompileResult R = compileClightSource(Sc.Source);
  TraceSet Src = stageTraces(Sc, R, 0);
  ASSERT_FALSE(Src.hasAbort()) << Sc.Name << ": source program aborts";
  for (unsigned Stage = 1; Stage < numStages(); ++Stage) {
    TraceSet Tgt = stageTraces(Sc, R, Stage);
    RefineResult Res = equivTraces(Tgt, Src);
    EXPECT_TRUE(Res.Holds)
        << Sc.Name << " diverges at stage " << stageName(Stage)
        << "\ncounterexample: " << Res.CounterExample
        << "\nsource: " << Src.toString() << "\ntarget: " << Tgt.toString();
    if (!Res.Holds)
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, PipelineTest,
                         ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return Scenarios[Info.param].Name;
                         });

TEST(CompilerPasses, TailcallIntroducesTailCalls) {
  CompileResult R = compileClightSource(Scenarios[3].Source);
  unsigned Before = 0, After = 0;
  for (const rtl::Function &F : R.RTL->Funcs)
    for (const auto &KV : F.Graph)
      if (KV.second.K == rtl::Instr::Kind::Tailcall)
        ++Before;
  for (const rtl::Function &F : R.RTLTailcall->Funcs)
    for (const auto &KV : F.Graph)
      if (KV.second.K == rtl::Instr::Kind::Tailcall)
        ++After;
  EXPECT_EQ(Before, 0u);
  EXPECT_GE(After, 1u);
}

TEST(CompilerPasses, RenumberProducesDenseIds) {
  CompileResult R = compileClightSource(Scenarios[1].Source);
  for (const rtl::Function &F : R.RTLRenumber->Funcs) {
    unsigned Expect = 0;
    for (const auto &KV : F.Graph)
      EXPECT_EQ(KV.first, Expect++);
  }
}

TEST(CompilerPasses, CleanupRemovesUnreferencedLabels) {
  CompileResult R = compileClightSource(Scenarios[1].Source);
  auto countLabels = [](const linear::Module &M) {
    unsigned N = 0;
    for (const linear::Function &F : M.Funcs)
      for (const linear::Instr &I : F.Code)
        if (I.K == linear::Instr::Kind::Label)
          ++N;
    return N;
  };
  EXPECT_LT(countLabels(*R.LinearClean), countLabels(*R.Linear));
}

TEST(CompilerPasses, SelectionStrengthReducesMultiplication) {
  CompileResult R = compileClightSource(R"(
    void main() { int a = 3; print(a * 8); }
  )");
  bool FoundShift = false;
  std::function<void(const cminorsel::Expr &)> Scan =
      [&](const cminorsel::Expr &E) {
        if (E.K == cminorsel::Expr::Kind::Op && E.O == ir::Oper::ShlImm)
          FoundShift = true;
        for (const auto &A : E.Args)
          Scan(*A);
      };
  std::function<void(const cminorsel::Block &)> ScanBlock =
      [&](const cminorsel::Block &B) {
        for (const auto &S : B) {
          if (S->E1)
            Scan(*S->E1);
          if (S->E2)
            Scan(*S->E2);
          for (const auto &A : S->Args)
            Scan(*A);
          for (const auto &A : S->Cond.Args)
            Scan(*A);
          ScanBlock(S->Body);
          ScanBlock(S->Else);
        }
      };
  for (const auto &F : R.CminorSel->Funcs)
    ScanBlock(F.Body);
  EXPECT_TRUE(FoundShift);
}

TEST(CompilerPasses, AsmOutputIsParsableText) {
  CompileResult R = compileClightSource(Scenarios[2].Source);
  std::string Text = R.Asm->toString();
  EXPECT_NE(Text.find("square:"), std::string::npos);
  EXPECT_NE(Text.find(".entry"), std::string::npos);
}

TEST(CompilerPasses, CompiledLockClientStaysDRF) {
  // DRF preservation (Lemma 8 / path 6-7-8 of Fig. 2) observed on the
  // compiled program: the x86 target of the race-free lock client is
  // itself race free.
  const Scenario &Sc = Scenarios[5];
  CompileResult R = compileClightSource(Sc.Source);

  Program Src;
  addStage(Src, R, 0, "client");
  sync::addGammaLock(Src);
  Src.addThread("inc");
  Src.addThread("inc");
  Src.link();
  ASSERT_TRUE(isDRF(Src));

  Program Tgt;
  addStage(Tgt, R, 12, "client");
  sync::addGammaLock(Tgt);
  Tgt.addThread("inc");
  Tgt.addThread("inc");
  Tgt.link();
  EXPECT_TRUE(isDRF(Tgt));
}

TEST(CompilerPasses, RacySourceStaysRacyUnderCompilation) {
  // Footprint preservation in the other direction: compilation does not
  // mask the race of a racy source (the footprints it needs are kept).
  CompileResult R = compileClightSource(R"(
    int x = 0;
    void t1() { x = 1; }
    void t2() { x = 2; }
  )");
  Program Tgt;
  addStage(Tgt, R, 12, "client");
  Tgt.addThread("t1");
  Tgt.addThread("t2");
  Tgt.link();
  EXPECT_FALSE(isDRF(Tgt));
}
