//===- core/World.h - The preemptive global semantics -----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The preemptive global semantics (paper: W = (T, t, d, sigma) and the
/// rules Load, tau-step, EntAt, ExtAt, Switch of Fig. 7). Context switch
/// may occur at any program point outside atomic blocks.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_WORLD_H
#define CASCC_CORE_WORLD_H

#include "core/PorOracle.h"
#include "core/WorldCommon.h"

#include <memory>
#include <string>
#include <vector>

namespace ccc {

/// A preemptive world.
class World {
public:
  /// The Load rule (Fig. 7): initializes the world from \p P starting at
  /// thread \p Start. The rule's closed(sigma) side condition is checked
  /// and failure turns into an aborted world.
  static World load(const Program &P, ThreadId Start = 0);

  /// All global successors per Fig. 7 (tau-step, EntAt, ExtAt, Switch).
  /// Exactly stepSuccs() followed by switchSuccs().
  std::vector<GSucc<World>> succ() const;

  /// The current thread's own step successors (tau-step, EntAt, ExtAt;
  /// empty when the current thread has finished).
  std::vector<GSucc<World>> stepSuccs() const;

  /// The Switch-rule successors (one per other live thread when d = 0).
  std::vector<GSucc<World>> switchSuccs() const;

  /// The Switch-rule successor scheduling thread \p T (same state, new
  /// scheduler pointer). Used by the engine to restore switch edges it
  /// pruned under a sleep mask that later weakened.
  World switchTo(ThreadId T) const;

  /// True when every thread has terminated (the done marker).
  bool done() const;

  /// True when the world aborted (stuck thread or explicit abort step).
  bool aborted() const { return Abort; }
  const std::string &abortReason() const { return AbortReason; }

  /// Canonical key for memoized exploration
  /// (== residueKey() + '#' + mem().key()).
  std::string key() const;

  /// The non-memory part of the canonical key: scheduling state and
  /// per-thread keys. The exploration engine's intern records pair this
  /// short residue with the COW memory snapshot itself, so the memory is
  /// compared structurally (page-granular) instead of through key()
  /// strings.
  std::string residueKey() const;

  /// Binary residue encoding: emits the same components as residueKey()
  /// as fixed-width words (abort/atomic flags, scheduler pointer, one
  /// interned subtree id per thread) into \p B. Word-sequence equality
  /// coincides exactly with residueKey() equality; the engine interns
  /// the span via B.takeRoot() and dedups on the resulting node id.
  void residueBytes(ResidueBuf &B) const;

  /// 64-bit hash over the same components as key(), assembled from the
  /// maintained Mem hash and the cached per-thread hashes; equal worlds
  /// hash equally, collisions are resolved by exact comparison.
  uint64_t hashKey() const;

  /// The Predict rules of Fig. 9: the instrumented footprints thread \p T
  /// may generate next from this world. Only meaningful when the world's
  /// atomic bit is 0 (the Race rule's precondition).
  std::vector<InstrFootprint> predictFor(ThreadId T) const;

  /// True when the Race rule's precondition d = 0 holds here.
  bool racePredictable() const { return !AtomBit && !Abort; }

  ThreadId curThread() const { return Cur; }
  bool inAtomic() const { return AtomBit; }
  const Mem &mem() const { return M; }
  const Program &program() const { return *Prog; }
  unsigned numThreads() const { return static_cast<unsigned>(Threads.size()); }
  const ThreadState &thread(ThreadId T) const { return Threads[T]; }

private:
  const Program *Prog = nullptr;
  std::vector<ThreadState> Threads;
  ThreadId Cur = 0;
  bool AtomBit = false;
  Mem M;
  bool Abort = false;
  std::string AbortReason;

  GSucc<World> makeAbort(std::string Reason) const;
};

/// Builds the static independence oracle for \p P (implemented by the
/// analysis layer, src/analysis/Independence.cpp).
std::shared_ptr<const PorOracle> buildIndependenceOracle(const Program &P);

/// The preemptive World supports ample/sleep-set POR; the oracle is the
/// static independence certifier over the program's modules.
template <> struct PorTraits<World> {
  static constexpr bool Enabled = true;
  static std::shared_ptr<const PorOracle> make(const World &W) {
    return buildIndependenceOracle(W.program());
  }
};

} // namespace ccc

#endif // CASCC_CORE_WORLD_H
