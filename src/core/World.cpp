//===- core/World.cpp - The preemptive global semantics -------------------===//

#include "core/World.h"

#include "mem/MemPred.h"
#include "support/Hashing.h"
#include "support/StrUtil.h"

#include <cassert>

using namespace ccc;

World World::load(const Program &P, ThreadId Start) {
  assert(P.linked() && "link the program before loading");
  World W;
  W.Prog = &P;
  W.M = P.initialMem();
  W.Cur = Start;
  for (ThreadId T = 0; T < P.numThreads(); ++T) {
    ThreadState TS;
    auto Resolved = P.resolveEntry(P.threadEntry(T), P.threadArgs(T));
    if (!Resolved) {
      W.Abort = true;
      W.AbortReason = "unknown thread entry: " + P.threadEntry(T);
      return W;
    }
    FreeList Region = P.threadRegion(T);
    TS.pushFrame(Frame{Resolved->first, Resolved->second,
                       Region.subRegion(0, Program::FrameRegionSize)},
                 Program::FrameRegionSize);
    W.Threads.push_back(std::move(TS));
  }
  // Load side condition: the initial memory contains no wild pointers.
  if (!closedMem(W.M)) {
    W.Abort = true;
    W.AbortReason = "initial memory not closed";
  }
  return W;
}

bool World::done() const {
  if (Abort)
    return false;
  for (const ThreadState &T : Threads)
    if (!T.finished())
      return false;
  return true;
}

GSucc<World> World::makeAbort(std::string Reason) const {
  World Next = *this;
  Next.Abort = true;
  Next.AbortReason = std::move(Reason);
  return GSucc<World>{GLabel::tau(), Footprint::emp(), Cur,
                      std::move(Next)};
}

std::vector<GSucc<World>> World::succ() const {
  std::vector<GSucc<World>> Out = stepSuccs();
  std::vector<GSucc<World>> Sw = switchSuccs();
  for (GSucc<World> &S : Sw)
    Out.push_back(std::move(S));
  return Out;
}

std::vector<GSucc<World>> World::stepSuccs() const {
  std::vector<GSucc<World>> Out;
  if (Abort || done())
    return Out;

  const ThreadState &CurT = Threads[Cur];
  if (!CurT.finished()) {
    const ModuleDecl &Mod = Prog->module(CurT.top().ModIdx);
    auto Steps = Mod.Lang->step(CurT.top().F, *CurT.top().C, M);
    if (Steps.empty()) {
      Out.push_back(makeAbort("thread stuck"));
    }
    for (const LocalStep &LS : Steps) {
      if (LS.Abort) {
        Out.push_back(makeAbort(LS.AbortReason));
        continue;
      }
      switch (LS.M.K) {
      case Msg::Kind::EntAtom: {
        // EntAt rule: requires d = 0.
        if (AtomBit) {
          Out.push_back(makeAbort("nested atomic block"));
          break;
        }
        World Next = *this;
        Next.AtomBit = true;
        Next.Threads[Cur].setTopCore(LS.Next);
        Out.push_back(
            GSucc<World>{GLabel::tau(), LS.FP, Cur, std::move(Next)});
        break;
      }
      case Msg::Kind::ExtAtom: {
        // ExtAt rule: requires d = 1.
        if (!AtomBit) {
          Out.push_back(makeAbort("ExtAtom outside atomic block"));
          break;
        }
        World Next = *this;
        Next.AtomBit = false;
        Next.Threads[Cur].setTopCore(LS.Next);
        Out.push_back(
            GSucc<World>{GLabel::tau(), LS.FP, Cur, std::move(Next)});
        break;
      }
      case Msg::Kind::Spawn: {
        // Spawn rule (extension): create a thread with a fresh free list;
        // the spawner continues.
        World Next = *this;
        std::string Reason;
        if (!spawnThread(*Prog, Next.Threads, LS.M, Reason)) {
          Out.push_back(makeAbort(Reason));
          break;
        }
        Next.Threads[Cur].setTopCore(LS.Next);
        Next.M = LS.NextMem;
        Out.push_back(
            GSucc<World>{GLabel::tau(), LS.FP, Cur, std::move(Next)});
        break;
      }
      default: {
        World Next = *this;
        std::string Reason;
        FrameStepStatus St =
            applyFrameStep(*Prog, Next.Threads[Cur], Prog->threadRegion(Cur),
                           LS, Next.M, Reason);
        if (St == FrameStepStatus::Abort) {
          Out.push_back(makeAbort(Reason));
          break;
        }
        if (St == FrameStepStatus::ThreadFinished && AtomBit) {
          Out.push_back(makeAbort("thread terminated inside atomic block"));
          break;
        }
        GLabel L = LS.M.K == Msg::Kind::Event ? GLabel::event(LS.M.EventVal)
                                              : GLabel::tau();
        Out.push_back(GSucc<World>{L, LS.FP, Cur, std::move(Next)});
        break;
      }
      }
    }
  }
  return Out;
}

std::vector<GSucc<World>> World::switchSuccs() const {
  std::vector<GSucc<World>> Out;
  if (Abort || done())
    return Out;
  // Switch rule: any live thread may be scheduled when d = 0.
  if (!AtomBit) {
    for (ThreadId T = 0; T < Threads.size(); ++T) {
      if (T == Cur || Threads[T].finished())
        continue;
      Out.push_back(GSucc<World>{GLabel::sw(), Footprint::emp(), T,
                                 switchTo(T)});
    }
  }
  return Out;
}

World World::switchTo(ThreadId T) const {
  World Next = *this;
  Next.Cur = T;
  return Next;
}

std::string World::residueKey() const {
  StrBuilder B;
  if (Abort)
    B << "ABORT|";
  B << 't' << Cur << 'd' << (AtomBit ? 1 : 0);
  for (const ThreadState &T : Threads)
    B << '[' << threadKey(T) << ']';
  return B.take();
}

void World::residueBytes(ResidueBuf &B) const {
  // Mirrors residueKey(): the abort *flag* is part of the key, the
  // abort reason is not (two aborted worlds with different reasons are
  // key-equal, and the binary encoding must agree).
  B.word((Abort ? 1u : 0u) | (AtomBit ? 2u : 0u));
  B.word(Cur);
  for (const ThreadState &T : Threads)
    B.word(T.residueRoot(B));
}

std::string World::key() const {
  StrBuilder B;
  B << residueKey() << '#' << M.key();
  return B.take();
}

uint64_t World::hashKey() const {
  Hasher64 H;
  H.b(Abort);
  H.u32(Cur);
  H.b(AtomBit);
  for (const ThreadState &T : Threads)
    H.u64(threadHash(T));
  H.u64(M.hashKey());
  return H.get();
}

std::vector<InstrFootprint> World::predictFor(ThreadId T) const {
  std::vector<InstrFootprint> Out;
  const ThreadState &TS = Threads[T];
  if (TS.finished() || Abort)
    return Out;
  const ModuleDecl &Mod = Prog->module(TS.top().ModIdx);
  auto Steps = Mod.Lang->step(TS.top().F, *TS.top().C, M);
  for (const LocalStep &LS : Steps) {
    if (LS.Abort)
      continue;
    if (LS.M.K == Msg::Kind::EntAtom) {
      // Predict-1: the whole atomic block's footprint, bit 1.
      for (const Footprint &FP :
           predictAtomicBlock(*Mod.Lang, TS.top().F, LS.Next, M))
        Out.push_back(InstrFootprint{FP, /*InAtomic=*/true});
      continue;
    }
    // Predict-0: one step outside an atomic block, bit 0.
    if (!LS.FP.empty())
      Out.push_back(InstrFootprint{LS.FP, /*InAtomic=*/false});
  }
  return Out;
}
