//===- bench/bench_framework.cpp - E1: the basic framework (Fig. 2) --------===//
//
// Regenerates the evidence for the proof steps of the paper's basic
// framework (Fig. 2) on a family of lock-synchronized DRF programs and
// racy controls:
//   steps 1/2 — equivalence of preemptive and non-preemptive semantics
//               for DRF programs (Lemma 9);
//   steps 6/8 — DRF <=> NPDRF;
//   (the remaining steps — simulation composition, flip, soundness — are
//   exercised per-module by bench_passes and the validation engines.)
//
// Expected shape: every DRF program has identical preemptive and
// non-preemptive trace sets; every racy control is flagged by both
// detectors; the equivalence is never even attempted on racy programs
// (the theorem's precondition).
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace ccc;

namespace {
/// Exploration options shared by every run in this binary; Por is set
/// from the --no-por escape hatch in main.
ExploreOptions BaseOpts;
} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (!Flags.Por)
    BaseOpts.Por = PorMode::Off;
  std::printf("E1 (Fig. 2): preemptive/non-preemptive equivalence and "
              "DRF <=> NPDRF\n\n");

  struct Item {
    std::string Name;
    Program P;
    bool ExpectDRF;
  };
  std::vector<Item> Items;
  Items.push_back({"locked 2x1", workload::lockedCounter(2, 1, 0), true});
  Items.push_back({"locked 2x2", workload::lockedCounter(2, 2, 0), true});
  Items.push_back({"locked 2x1+cs2", workload::lockedCounter(2, 1, 2),
                   true});
  Items.push_back({"locked 3x1", workload::lockedCounter(3, 1, 0), true});
  Items.push_back({"atomic 2 w2", workload::atomicCounter(2, 2), true});
  Items.push_back({"atomic 3 w1", workload::atomicCounter(3, 1), true});
  Items.push_back({"clight locked 2", workload::clightLockedCounter(2),
                   true});
  Items.push_back({"racy 2", workload::racyCounter(2), false});
  Items.push_back({"racy 3", workload::racyCounter(3), false});

  benchtable::Table T({"program", "DRF", "NPDRF", "DRF<=>NPDRF",
                       "pre states", "np states", "pre == np", "ms"});
  bool AllGood = true;
  benchtable::JsonLog Log;
  for (Item &It : Items) {
    benchtable::Timer Tm;
    bool Drf = isDRF(It.P);
    bool NpDrf = isNPDRF(It.P);
    bool Agree = Drf == NpDrf;
    std::string EquivCell = "n/a (racy)";
    ExploreStats PreS, NpS;
    if (Drf) {
      TraceSet Pre = preemptiveTraces(It.P, BaseOpts, &PreS);
      TraceSet Np = nonPreemptiveTraces(It.P, BaseOpts, &NpS);
      RefineResult R = equivTraces(Pre, Np);
      EquivCell = benchtable::yesNo(R.Holds);
      AllGood = AllGood && R.Holds && R.Definitive;
    } else {
      (void)preemptiveTraces(It.P, BaseOpts, &PreS);
      (void)nonPreemptiveTraces(It.P, BaseOpts, &NpS);
    }
    AllGood = AllGood && Agree && (Drf == It.ExpectDRF);
    T.addRow({It.Name, benchtable::yesNo(Drf), benchtable::yesNo(NpDrf),
              benchtable::yesNo(Agree), std::to_string(PreS.States),
              std::to_string(NpS.States), EquivCell,
              benchtable::fmtMs(Tm.ms())});
    Log.add("equivalence",
            "{\"program\":" + benchtable::jsonStr(It.Name) +
                ",\"drf\":" + (Drf ? "true" : "false") +
                ",\"npdrf\":" + (NpDrf ? "true" : "false") +
                ",\"total_ms\":" + std::to_string(Tm.ms()) +
                ",\"preemptive\":" + PreS.toJson() +
                ",\"non_preemptive\":" + NpS.toJson() + "}");
  }
  T.print();
  std::printf("\nresult: %s — DRF programs behave identically under both "
              "semantics; NPDRF coincides with DRF on every sample\n",
              AllGood ? "PASS" : "FAIL");
  if (!Log.write("BENCH_framework.json"))
    std::printf("warning: could not write BENCH_framework.json\n");
  else
    std::printf("machine-readable stats written to BENCH_framework.json\n");
  return AllGood ? 0 : 1;
}
