# Empty compiler generated dependencies file for spinlock_tso.
# This may be replaced when dependencies are built.
