//===- support/Parallel.h - Deterministic fork-join helpers -----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork-join helper for the exploration engine. Work is split
/// into contiguous index ranges, one per worker; callers own determinism
/// by writing results into disjoint, preallocated slots and merging them
/// in index order after the join. With Threads <= 1 (or a batch too small
/// to amortize thread start-up) the body runs inline on the calling
/// thread, which makes the single-threaded configuration byte-identical
/// to a build without this header.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_SUPPORT_PARALLEL_H
#define CASCC_SUPPORT_PARALLEL_H

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace ccc {

/// Minimum items per worker before forking is worth the thread start-up.
inline constexpr std::size_t ParallelGrainSize = 16;

/// Runs \p Fn(Begin, End, Worker) over [0, N) split into at most
/// \p Threads contiguous chunks. Chunk boundaries depend only on
/// (Threads, N), never on timing. Fn must write only to worker-private or
/// per-index state; the call joins every worker before returning.
template <typename Fn>
void parallelChunks(unsigned Threads, std::size_t N, const Fn &Body) {
  if (N == 0)
    return;
  std::size_t UseThreads =
      std::min<std::size_t>(Threads ? Threads : 1,
                            std::max<std::size_t>(1, N / ParallelGrainSize));
  if (UseThreads <= 1) {
    Body(static_cast<std::size_t>(0), N, 0u);
    return;
  }
  std::vector<std::thread> Workers;
  Workers.reserve(UseThreads - 1);
  auto ChunkBounds = [&](std::size_t W) {
    // Even split; the first N % UseThreads chunks get one extra item.
    std::size_t Base = N / UseThreads, Extra = N % UseThreads;
    std::size_t Begin = W * Base + std::min(W, Extra);
    std::size_t End = Begin + Base + (W < Extra ? 1 : 0);
    return std::make_pair(Begin, End);
  };
  for (std::size_t W = 1; W < UseThreads; ++W) {
    auto [Begin, End] = ChunkBounds(W);
    Workers.emplace_back([&Body, Begin, End, W] {
      Body(Begin, End, static_cast<unsigned>(W));
    });
  }
  auto [Begin, End] = ChunkBounds(0);
  Body(Begin, End, 0u);
  for (std::thread &T : Workers)
    T.join();
}

} // namespace ccc

#endif // CASCC_SUPPORT_PARALLEL_H
