//===- x86/X86Asm.cpp - The x86 assembly subset ----------------------------===//

#include "x86/X86Asm.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace ccc;
using namespace ccc::x86;

const char *ccc::x86::regName(Reg R) {
  switch (R) {
  case Reg::EAX:
    return "%eax";
  case Reg::EBX:
    return "%ebx";
  case Reg::ECX:
    return "%ecx";
  case Reg::EDX:
    return "%edx";
  case Reg::ESI:
    return "%esi";
  case Reg::EDI:
    return "%edi";
  case Reg::EBP:
    return "%ebp";
  case Reg::ESP:
    return "%esp";
  }
  return "%?";
}

std::optional<Reg> ccc::x86::regByName(const std::string &Name) {
  static const std::pair<const char *, Reg> Table[] = {
      {"%eax", Reg::EAX}, {"%ebx", Reg::EBX}, {"%ecx", Reg::ECX},
      {"%edx", Reg::EDX}, {"%esi", Reg::ESI}, {"%edi", Reg::EDI},
      {"%ebp", Reg::EBP}, {"%esp", Reg::ESP}};
  for (const auto &E : Table)
    if (Name == E.first)
      return E.second;
  return std::nullopt;
}

const char *ccc::x86::condSuffix(Cond C) {
  switch (C) {
  case Cond::E:
    return "e";
  case Cond::NE:
    return "ne";
  case Cond::L:
    return "l";
  case Cond::LE:
    return "le";
  case Cond::G:
    return "g";
  case Cond::GE:
    return "ge";
  }
  return "?";
}

std::string Operand::toString() const {
  switch (K) {
  case Kind::Imm:
    return "$" + std::to_string(Imm);
  case Kind::GlobalImm:
    return "$" + Global;
  case Kind::Reg:
    return regName(R);
  case Kind::MemBase:
    if (Disp != 0)
      return std::to_string(Disp) + "(" + regName(R) + ")";
    return std::string("(") + regName(R) + ")";
  case Kind::MemGlobal:
    return Global;
  }
  return "?";
}

std::string Instr::toString() const {
  auto Bin = [this](const char *Mn) {
    return std::string(Mn) + " " + Src.toString() + ", " + Dst.toString();
  };
  auto Un = [this](const char *Mn) {
    return std::string(Mn) + " " + Dst.toString();
  };
  switch (K) {
  case Kind::Mov:
    return Bin("movl");
  case Kind::Add:
    return Bin("addl");
  case Kind::Sub:
    return Bin("subl");
  case Kind::Imul:
    return Bin("imull");
  case Kind::Div:
    return Bin("divl");
  case Kind::And:
    return Bin("andl");
  case Kind::Or:
    return Bin("orl");
  case Kind::Xor:
    return Bin("xorl");
  case Kind::Shl:
    return Bin("shll");
  case Kind::Sar:
    return Bin("sarl");
  case Kind::Neg:
    return Un("negl");
  case Kind::Not:
    return Un("notl");
  case Kind::Cmp:
    return Bin("cmpl");
  case Kind::Setcc:
    return std::string("set") + condSuffix(CC) + " " + Dst.toString();
  case Kind::Jmp:
    return "jmp " + Name;
  case Kind::Jcc:
    return std::string("j") + condSuffix(CC) + " " + Name;
  case Kind::Call:
    return "call " + Name;
  case Kind::TailCall:
    return "tcall " + Name;
  case Kind::Ret:
    return "retl";
  case Kind::LockCmpxchg:
    return "lock cmpxchgl " + Src.toString() + ", " + Dst.toString();
  case Kind::Mfence:
    return "mfence";
  case Kind::Print:
    return "printl " + Src.toString();
  case Kind::Label:
    return Name + ":";
  }
  return "?";
}

std::vector<MemEffect> ccc::x86::memEffects(const Instr &I) {
  std::vector<MemEffect> Out;
  auto add = [&Out](const Operand &O, bool Load, bool Store,
                    bool Locked = false) {
    if (O.isMem())
      Out.push_back(MemEffect{&O, Load, Store, Locked});
  };
  switch (I.K) {
  case Instr::Kind::Mov:
    add(I.Src, /*Load=*/true, /*Store=*/false);
    add(I.Dst, /*Load=*/false, /*Store=*/true);
    break;
  case Instr::Kind::Add:
  case Instr::Kind::Sub:
  case Instr::Kind::Imul:
  case Instr::Kind::Div:
  case Instr::Kind::And:
  case Instr::Kind::Or:
  case Instr::Kind::Xor:
  case Instr::Kind::Shl:
  case Instr::Kind::Sar:
    add(I.Src, /*Load=*/true, /*Store=*/false);
    add(I.Dst, /*Load=*/true, /*Store=*/true);
    break;
  case Instr::Kind::Neg:
  case Instr::Kind::Not:
    add(I.Dst, /*Load=*/true, /*Store=*/true);
    break;
  case Instr::Kind::Cmp:
    add(I.Src, /*Load=*/true, /*Store=*/false);
    add(I.Dst, /*Load=*/true, /*Store=*/false);
    break;
  case Instr::Kind::Setcc:
    add(I.Dst, /*Load=*/false, /*Store=*/true);
    break;
  case Instr::Kind::LockCmpxchg:
    add(I.Dst, /*Load=*/true, /*Store=*/true, /*Locked=*/true);
    break;
  case Instr::Kind::Print:
    add(I.Src, /*Load=*/true, /*Store=*/false);
    break;
  case Instr::Kind::Jmp:
  case Instr::Kind::Jcc:
  case Instr::Kind::Call:
  case Instr::Kind::TailCall:
  case Instr::Kind::Ret:
  case Instr::Kind::Mfence:
  case Instr::Kind::Label:
    break;
  }
  return Out;
}

bool ccc::x86::drainsStoreBuffer(const Instr &I) {
  return I.K == Instr::Kind::Mfence || I.K == Instr::Kind::LockCmpxchg;
}

bool ccc::x86::crossesModuleBoundary(const Instr &I) {
  return I.K == Instr::Kind::Call || I.K == Instr::Kind::TailCall ||
         I.K == Instr::Kind::Ret;
}

std::vector<unsigned> ccc::x86::successors(const Module &M, unsigned PC) {
  std::vector<unsigned> Out;
  if (PC >= M.Code.size())
    return Out;
  const Instr &I = M.Code[PC];
  auto fallThrough = [&] {
    if (PC + 1 < M.Code.size())
      Out.push_back(PC + 1);
  };
  switch (I.K) {
  case Instr::Kind::Jmp:
    if (auto L = M.label(I.Name))
      Out.push_back(*L);
    break;
  case Instr::Kind::Jcc:
    if (auto L = M.label(I.Name))
      Out.push_back(*L);
    fallThrough();
    break;
  case Instr::Kind::Ret:
  case Instr::Kind::TailCall:
    break;
  default:
    fallThrough();
    break;
  }
  return Out;
}

void ccc::x86::recomputeFrameExtents(Module &M) {
  for (auto &E : M.Entries) {
    uint32_t Extent = E.second.FrameSize;
    std::vector<bool> Seen(M.Code.size(), false);
    std::vector<unsigned> Work;
    if (E.second.PCIndex < M.Code.size()) {
      Seen[E.second.PCIndex] = true;
      Work.push_back(E.second.PCIndex);
    }
    while (!Work.empty()) {
      unsigned PC = Work.back();
      Work.pop_back();
      for (const MemEffect &Ef : memEffects(M.Code[PC])) {
        const Operand &Op = *Ef.Op;
        if (Op.K == Operand::Kind::MemBase && Op.R == Reg::ESP &&
            Op.Disp >= 0)
          Extent = std::max(Extent, static_cast<uint32_t>(Op.Disp) + 1);
      }
      for (unsigned S : successors(M, PC))
        if (S < M.Code.size() && !Seen[S]) {
          Seen[S] = true;
          Work.push_back(S);
        }
    }
    E.second.FrameExtent = Extent;
  }
}

std::shared_ptr<Module>
ccc::x86::insertFences(const Module &M,
                       const std::vector<unsigned> &BeforePCs) {
  std::vector<unsigned> Points = BeforePCs;
  std::sort(Points.begin(), Points.end());
  Points.erase(std::unique(Points.begin(), Points.end()), Points.end());

  auto Out = std::make_shared<Module>();
  Out->ExternArity = M.ExternArity;
  Out->Globals = M.Globals;

  // Old PC -> new PC of the same instruction: each original slot shifts
  // by the number of fences inserted at or before it.
  std::vector<unsigned> NewPC(M.Code.size() + 1);
  {
    std::size_t Next = 0;
    unsigned Shift = 0;
    for (unsigned PC = 0; PC <= M.Code.size(); ++PC) {
      if (Next < Points.size() && Points[Next] == PC) {
        assert(PC < M.Code.size() &&
               M.Code[PC].K != Instr::Kind::Label &&
               "fence insertion points must be non-label instructions");
        ++Shift;
        ++Next;
      }
      NewPC[PC] = PC + Shift;
    }
  }

  Out->Code.reserve(M.Code.size() + Points.size());
  {
    std::size_t Next = 0;
    for (unsigned PC = 0; PC < M.Code.size(); ++PC) {
      if (Next < Points.size() && Points[Next] == PC) {
        Instr F;
        F.K = Instr::Kind::Mfence;
        Out->Code.push_back(std::move(F));
        ++Next;
      }
      Out->Code.push_back(M.Code[PC]);
    }
  }

  for (const auto &L : M.Labels)
    Out->Labels[L.first] = NewPC[L.second];
  for (const auto &E : M.Entries) {
    EntryInfo EI = E.second;
    EI.PCIndex = NewPC[EI.PCIndex];
    Out->Entries[E.first] = EI;
  }
  // Branch targets are label names, remapped through Labels above; the
  // successor graph of the original instructions is therefore preserved
  // with the fences spliced onto every incoming path. Extents cannot
  // change (mfence has no operands) but are recomputed to keep the
  // parser-established invariant explicit.
  recomputeFrameExtents(*Out);
  return Out;
}

std::string Module::toString() const {
  StrBuilder B;
  for (const auto &G : Globals)
    B << ".data " << G.first << ' ' << G.second << '\n';
  for (const auto &E : Entries)
    B << ".entry " << E.first << ' '
      << static_cast<uint64_t>(E.second.FrameSize) << ' ' << E.second.Arity
      << '\n';
  for (const auto &E : ExternArity)
    B << ".extern " << E.first << ' ' << E.second << '\n';
  for (const Instr &I : Code) {
    if (I.K != Instr::Kind::Label)
      B << "        ";
    B << I.toString() << '\n';
  }
  return B.take();
}
