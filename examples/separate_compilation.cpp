//===- examples/separate_compilation.cpp - Example 2.1 of the paper --------===//
//
// Separate compilation of interacting modules: S1's function f calls
// S2's external function g, which writes through a pointer into S1's
// data. The two modules are compiled independently; the linked target
// must preserve the linked source's behavior — in particular the
// compiler may NOT constant-fold b to 0 across the external call.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Semantics.h"
#include "validate/PassValidator.h"

#include <cstdio>

using namespace ccc;

int main() {
  std::printf("Separate compilation (example 2.1)\n");
  std::printf("==================================\n\n");

  const char *S1 = R"(
    extern void g(int *x);
    int a = 0;
    int b = 0;
    int f() {
      a = 0;
      b = 0;
      g(&b);
      return a + b;
    }
    void main() {
      int r;
      r = f();
      print(r);
    }
  )";
  const char *S2 = R"(
    void g(int *x) {
      *x = 3;
    }
  )";
  std::printf("// Module S1\n%s\n// Module S2\n%s\n", S1, S2);

  // Compile each module independently (separate compiler invocations).
  auto R1 = compiler::compileClightSource(S1);
  auto R2 = compiler::compileClightSource(S2);

  auto linked = [&](unsigned Stage1, unsigned Stage2) {
    Program P;
    compiler::addStage(P, R1, Stage1, "S1");
    compiler::addStage(P, R2, Stage2, "S2");
    P.addThread("main");
    P.link();
    return preemptiveTraces(P);
  };

  TraceSet Src = linked(0, 0);
  TraceSet Tgt = linked(12, 12);
  TraceSet Mixed = linked(12, 0); // x86 S1 calling Clight S2

  std::printf("source  S1 o S2 : %s\n", Src.toString().c_str());
  std::printf("target  S1 o S2 : %s\n", Tgt.toString().c_str());
  std::printf("mixed   S1 o S2 : %s   (cross-language linking)\n\n",
              Mixed.toString().c_str());

  bool Ok = equivTraces(Tgt, Src).Holds && equivTraces(Mixed, Src).Holds;
  std::printf("f() returns 3 everywhere — the write through g's pointer "
              "is preserved: %s\n\n",
              Ok ? "yes" : "NO");

  // Each module's compilation satisfies the module-local simulation, so
  // correctness composes under linking (Lemma 6).
  for (auto Item : {std::make_pair("S1", &R1), std::make_pair("S2", &R2)}) {
    auto Results = validate::validatePipeline(
        *Item.second, validate::defaultSamples(*Item.second->Clight));
    unsigned Good = 0;
    for (const auto &PR : Results)
      if (PR.Holds)
        ++Good;
    std::printf("module %s: %u/%zu passes satisfy the footprint-preserving "
                "simulation\n",
                Item.first, Good, Results.size());
    Ok = Ok && Good == Results.size();
  }
  std::printf("\n%s\n", Ok ? "All checks passed." : "CHECKS FAILED.");
  return Ok ? 0 : 1;
}
