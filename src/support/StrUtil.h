//===- support/StrUtil.h - String formatting helpers ------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities: joining, numeric formatting, and a tiny
/// printf-free string builder used by pretty-printers and state keys.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_SUPPORT_STRUTIL_H
#define CASCC_SUPPORT_STRUTIL_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace ccc {

/// Joins the elements of \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Splits \p S on character \p Sep (no empty-trailing suppression).
std::vector<std::string> splitString(const std::string &S, char Sep);

/// A minimal chainable string builder for building canonical keys and
/// human-readable dumps without iostream in headers.
class StrBuilder {
public:
  StrBuilder &operator<<(const std::string &S) {
    Out += S;
    return *this;
  }
  StrBuilder &operator<<(const char *S) {
    Out += S;
    return *this;
  }
  StrBuilder &operator<<(char C) {
    Out += C;
    return *this;
  }
  StrBuilder &operator<<(int64_t V) {
    Out += std::to_string(V);
    return *this;
  }
  StrBuilder &operator<<(uint64_t V) {
    Out += std::to_string(V);
    return *this;
  }
  StrBuilder &operator<<(int V) {
    Out += std::to_string(V);
    return *this;
  }
  StrBuilder &operator<<(unsigned V) {
    Out += std::to_string(V);
    return *this;
  }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  std::string Out;
};

} // namespace ccc

#endif // CASCC_SUPPORT_STRUTIL_H
