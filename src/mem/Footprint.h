//===- mem/Footprint.h - Step footprints ------------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Footprints (paper: delta = (rs, ws) in FtPrt, Fig. 4): the read and
/// write sets of memory locations accessed by a local step. Includes the
/// footprint algebra of Fig. 6 (union, subset) and the conflict relation
/// of Sec. 5 used to define data races.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_FOOTPRINT_H
#define CASCC_MEM_FOOTPRINT_H

#include "mem/Addr.h"

#include <string>

namespace ccc {

/// A step footprint: the sets of addresses read and written.
class Footprint {
public:
  Footprint() = default;
  Footprint(AddrSet Reads, AddrSet Writes)
      : Reads(std::move(Reads)), Writes(std::move(Writes)) {}

  /// The empty footprint (paper: emp).
  static Footprint emp() { return Footprint(); }

  static Footprint ofRead(Addr A) { return Footprint({A}, {}); }
  static Footprint ofWrite(Addr A) { return Footprint({}, {A}); }
  static Footprint ofReadWrite(Addr A) { return Footprint({A}, {A}); }

  const AddrSet &reads() const { return Reads; }
  const AddrSet &writes() const { return Writes; }

  bool empty() const { return Reads.empty() && Writes.empty(); }

  void addRead(Addr A) { Reads.insert(A); }
  void addWrite(Addr A) { Writes.insert(A); }

  /// Footprint union (paper: delta u delta', Fig. 6).
  void unionWith(const Footprint &Other) {
    Reads.unionWith(Other.Reads);
    Writes.unionWith(Other.Writes);
  }

  Footprint unioned(const Footprint &Other) const {
    Footprint Out = *this;
    Out.unionWith(Other);
    return Out;
  }

  /// Footprint inclusion (paper: delta subset delta', Fig. 6).
  bool subsetOf(const Footprint &Other) const {
    return Reads.subsetOf(Other.Reads) && Writes.subsetOf(Other.Writes);
  }

  /// All touched locations, rs u ws (the paper's "delta used as a set").
  AddrSet asSet() const {
    AddrSet Out = Reads;
    Out.unionWith(Writes);
    return Out;
  }

  /// Footprint conflict (Sec. 5): delta1 and delta2 conflict iff one's
  /// write set intersects the other's touched set.
  bool conflictsWith(const Footprint &Other) const {
    return Writes.intersects(Other.asSet()) ||
           Other.Writes.intersects(asSet());
  }

  bool operator==(const Footprint &Other) const {
    return Reads == Other.Reads && Writes == Other.Writes;
  }

  std::string toString() const {
    return "(r" + Reads.toString() + ",w" + Writes.toString() + ")";
  }

private:
  AddrSet Reads;
  AddrSet Writes;
};

/// An instrumented footprint (Sec. 5): a footprint paired with the atomic
/// bit d recording whether it was generated inside an atomic block.
struct InstrFootprint {
  Footprint FP;
  bool InAtomic = false;

  /// Conflict of instrumented footprints: the footprints conflict and at
  /// least one of them is outside an atomic block (Sec. 5).
  bool conflictsWith(const InstrFootprint &Other) const {
    return FP.conflictsWith(Other.FP) && (!InAtomic || !Other.InAtomic);
  }
};

} // namespace ccc

#endif // CASCC_MEM_FOOTPRINT_H
