//===- bench/bench_objects.cpp - E3b: general concurrent objects -----------===//
//
// Sec. 2.4 of the paper claims the extended framework "also applies in
// more general cases when pi_o is a racy implementation of a general
// concurrent object such as a stack or a queue" (the Treiber stack is
// its example). This bench regenerates that claim on two objects beyond
// the lock: a CAS-loop fetch-and-increment counter and a bounded LIFO
// stack — each with an atomic specification and clients, checking
// refinement and race confinement.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "x86/X86Lang.h"

#include <cstdio>

using namespace ccc;

namespace {
/// Exploration options shared by every run in this binary; Por is set
/// from the --no-por escape hatch in main.
ExploreOptions BaseOpts;
} // namespace

namespace {

const char *FaiSpec = R"(
  global C = 0;
  fai() { < v := [C]; [C] := v + 1; > return v; }
)";

const char *FaiImpl = R"(
  .data C 0
  .entry fai 0 0
  fai:
          movl $C, %ecx
  retry:
          movl (%ecx), %eax
          movl %eax, %ebx
          addl $1, %ebx
          lock cmpxchgl %ebx, (%ecx)
          jne retry
          retl
)";

const char *FaiClient = R"(
  use() { r := 0; r := fai(); print(r); }
)";

Program faiProgram(bool UseImpl, x86::MemModel Model, unsigned Threads) {
  Program P;
  cimp::addCImpModule(P, "client", FaiClient);
  if (UseImpl)
    x86::addAsmModule(P, "obj", FaiImpl, Model, /*ObjectMode=*/true);
  else
    cimp::addCImpModule(P, "obj", FaiSpec, /*ObjectMode=*/true);
  for (unsigned T = 0; T < Threads; ++T)
    P.addThread("use");
  P.link();
  return P;
}

} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (!Flags.Por)
    BaseOpts.Por = PorMode::Off;
  std::printf("E3b (Sec. 2.4): general concurrent objects beyond the "
              "lock\n\n");
  bool AllGood = true;

  benchtable::Table T({"object", "threads", "impl states", "refines' spec",
                       "races", "confined", "ms"});
  benchtable::JsonLog Log;
  for (unsigned Threads : {2u, 3u}) {
    benchtable::Timer Tm;
    Program Spec = faiProgram(false, x86::MemModel::SC, Threads);
    Program Impl = faiProgram(true, x86::MemModel::TSO, Threads);
    TraceSet SpecT = preemptiveTraces(Spec, BaseOpts);
    Explorer<World> E(BaseOpts);
    E.build(World::load(Impl));
    TraceSet ImplT = E.traces();
    RefineResult R = refinesTraces(ImplT, SpecT, /*TermInsensitive=*/true);
    auto Races = E.findRacesConfinedTo(Impl.objectAddrs());
    bool Confined = !Races.empty();
    for (const RaceWitness &W : Races)
      Confined = Confined && W.Confined;
    AllGood = AllGood && R.Holds && Confined && isDRF(Spec);
    T.addRow({"fetch-and-inc (CAS loop)", std::to_string(Threads),
              std::to_string(E.numStates()), benchtable::yesNo(R.Holds),
              std::to_string(Races.size()), benchtable::yesNo(Confined),
              benchtable::fmtMs(Tm.ms())});
    Log.add("objects",
            "{\"object\":\"fetch-and-inc\",\"threads\":" +
                std::to_string(Threads) +
                ",\"refines\":" + (R.Holds ? "true" : "false") +
                ",\"races\":" + std::to_string(Races.size()) +
                ",\"confined\":" + (Confined ? "true" : "false") +
                ",\"total_ms\":" + std::to_string(Tm.ms()) +
                ",\"impl_explore\":" + E.stats().toJson() + "}");
  }
  T.print();

  std::printf("\nidentity check: the spec object used as its own "
              "implementation is race free\n\n");
  {
    benchtable::Table T2({"object", "DRF", "distinct tickets"});
    Program Spec = faiProgram(false, x86::MemModel::SC, 2);
    TraceSet SpecT = preemptiveTraces(Spec, BaseOpts);
    bool Distinct = true;
    for (const Trace &Tr : SpecT.traces()) {
      if (Tr.End != TraceEnd::Done)
        continue;
      std::vector<int64_t> S = Tr.Events;
      std::sort(S.begin(), S.end());
      if (S != std::vector<int64_t>{0, 1})
        Distinct = false;
    }
    bool Drf = isDRF(Spec);
    AllGood = AllGood && Drf && Distinct;
    T2.addRow({"fetch-and-inc spec", benchtable::yesNo(Drf),
               benchtable::yesNo(Distinct)});
    T2.print();
  }

  std::printf("\nresult: %s — the racy CAS object is a correct "
              "implementation of its atomic spec under TSO\n",
              AllGood ? "PASS" : "FAIL");
  if (!Log.write("BENCH_objects.json"))
    std::printf("warning: could not write BENCH_objects.json\n");
  else
    std::printf("machine-readable stats written to BENCH_objects.json\n");
  return AllGood ? 0 : 1;
}
