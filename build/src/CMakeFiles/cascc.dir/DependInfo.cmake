
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cimp/CImpLang.cpp" "src/CMakeFiles/cascc.dir/cimp/CImpLang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/cimp/CImpLang.cpp.o.d"
  "/root/repo/src/cimp/CImpParser.cpp" "src/CMakeFiles/cascc.dir/cimp/CImpParser.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/cimp/CImpParser.cpp.o.d"
  "/root/repo/src/clight/ClightLang.cpp" "src/CMakeFiles/cascc.dir/clight/ClightLang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/clight/ClightLang.cpp.o.d"
  "/root/repo/src/clight/ClightParser.cpp" "src/CMakeFiles/cascc.dir/clight/ClightParser.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/clight/ClightParser.cpp.o.d"
  "/root/repo/src/compiler/Allocation.cpp" "src/CMakeFiles/cascc.dir/compiler/Allocation.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/Allocation.cpp.o.d"
  "/root/repo/src/compiler/Asmgen.cpp" "src/CMakeFiles/cascc.dir/compiler/Asmgen.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/Asmgen.cpp.o.d"
  "/root/repo/src/compiler/Cminorgen.cpp" "src/CMakeFiles/cascc.dir/compiler/Cminorgen.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/Cminorgen.cpp.o.d"
  "/root/repo/src/compiler/Compiler.cpp" "src/CMakeFiles/cascc.dir/compiler/Compiler.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/Compiler.cpp.o.d"
  "/root/repo/src/compiler/ConstProp.cpp" "src/CMakeFiles/cascc.dir/compiler/ConstProp.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/ConstProp.cpp.o.d"
  "/root/repo/src/compiler/Cshmgen.cpp" "src/CMakeFiles/cascc.dir/compiler/Cshmgen.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/Cshmgen.cpp.o.d"
  "/root/repo/src/compiler/Lineage.cpp" "src/CMakeFiles/cascc.dir/compiler/Lineage.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/Lineage.cpp.o.d"
  "/root/repo/src/compiler/RTLOpt.cpp" "src/CMakeFiles/cascc.dir/compiler/RTLOpt.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/RTLOpt.cpp.o.d"
  "/root/repo/src/compiler/RTLgen.cpp" "src/CMakeFiles/cascc.dir/compiler/RTLgen.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/RTLgen.cpp.o.d"
  "/root/repo/src/compiler/Selection.cpp" "src/CMakeFiles/cascc.dir/compiler/Selection.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/compiler/Selection.cpp.o.d"
  "/root/repo/src/core/ModuleLang.cpp" "src/CMakeFiles/cascc.dir/core/ModuleLang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/core/ModuleLang.cpp.o.d"
  "/root/repo/src/core/NPWorld.cpp" "src/CMakeFiles/cascc.dir/core/NPWorld.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/core/NPWorld.cpp.o.d"
  "/root/repo/src/core/Program.cpp" "src/CMakeFiles/cascc.dir/core/Program.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/core/Program.cpp.o.d"
  "/root/repo/src/core/Semantics.cpp" "src/CMakeFiles/cascc.dir/core/Semantics.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/core/Semantics.cpp.o.d"
  "/root/repo/src/core/Trace.cpp" "src/CMakeFiles/cascc.dir/core/Trace.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/core/Trace.cpp.o.d"
  "/root/repo/src/core/World.cpp" "src/CMakeFiles/cascc.dir/core/World.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/core/World.cpp.o.d"
  "/root/repo/src/core/WorldCommon.cpp" "src/CMakeFiles/cascc.dir/core/WorldCommon.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/core/WorldCommon.cpp.o.d"
  "/root/repo/src/ir/CminorLang.cpp" "src/CMakeFiles/cascc.dir/ir/CminorLang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/ir/CminorLang.cpp.o.d"
  "/root/repo/src/ir/CsharpminorLang.cpp" "src/CMakeFiles/cascc.dir/ir/CsharpminorLang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/ir/CsharpminorLang.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/CMakeFiles/cascc.dir/ir/IRPrinter.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/ir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/LinearLang.cpp" "src/CMakeFiles/cascc.dir/ir/LinearLang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/ir/LinearLang.cpp.o.d"
  "/root/repo/src/ir/Ops.cpp" "src/CMakeFiles/cascc.dir/ir/Ops.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/ir/Ops.cpp.o.d"
  "/root/repo/src/ir/RTLLang.cpp" "src/CMakeFiles/cascc.dir/ir/RTLLang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/ir/RTLLang.cpp.o.d"
  "/root/repo/src/mem/Mem.cpp" "src/CMakeFiles/cascc.dir/mem/Mem.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/mem/Mem.cpp.o.d"
  "/root/repo/src/mem/MemPred.cpp" "src/CMakeFiles/cascc.dir/mem/MemPred.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/mem/MemPred.cpp.o.d"
  "/root/repo/src/support/Lexer.cpp" "src/CMakeFiles/cascc.dir/support/Lexer.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/support/Lexer.cpp.o.d"
  "/root/repo/src/support/StrUtil.cpp" "src/CMakeFiles/cascc.dir/support/StrUtil.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/support/StrUtil.cpp.o.d"
  "/root/repo/src/sync/LockLib.cpp" "src/CMakeFiles/cascc.dir/sync/LockLib.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/sync/LockLib.cpp.o.d"
  "/root/repo/src/validate/PassValidator.cpp" "src/CMakeFiles/cascc.dir/validate/PassValidator.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/validate/PassValidator.cpp.o.d"
  "/root/repo/src/validate/Sim.cpp" "src/CMakeFiles/cascc.dir/validate/Sim.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/validate/Sim.cpp.o.d"
  "/root/repo/src/validate/Wd.cpp" "src/CMakeFiles/cascc.dir/validate/Wd.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/validate/Wd.cpp.o.d"
  "/root/repo/src/workload/Workloads.cpp" "src/CMakeFiles/cascc.dir/workload/Workloads.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/workload/Workloads.cpp.o.d"
  "/root/repo/src/x86/X86Asm.cpp" "src/CMakeFiles/cascc.dir/x86/X86Asm.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/x86/X86Asm.cpp.o.d"
  "/root/repo/src/x86/X86Lang.cpp" "src/CMakeFiles/cascc.dir/x86/X86Lang.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/x86/X86Lang.cpp.o.d"
  "/root/repo/src/x86/X86Parser.cpp" "src/CMakeFiles/cascc.dir/x86/X86Parser.cpp.o" "gcc" "src/CMakeFiles/cascc.dir/x86/X86Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
