//===- tests/FrontendWorkloadTest.cpp - Front-end parser tests ------------===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
// Round-trip fixpoint (print→parse→print) over the corpus, and a
// malformed-source sweep — truncations at every byte offset, bad model
// attributes, duplicate module names, attribute misuse — asserting
// graceful ParseErrors, never a crash. The suite runs under ASan/UBSan
// in CI, so "never a crash" includes "never an out-of-bounds read".
//
//===----------------------------------------------------------------------===//

#include "frontend/Workload.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ccc;
using namespace ccc::frontend;

namespace {

std::vector<std::string> corpusTexts() {
  std::vector<std::string> Texts;
  for (const auto &Entry :
       std::filesystem::directory_iterator(CASCC_CORPUS_DIR)) {
    if (Entry.path().extension() != ".ccc")
      continue;
    std::ifstream In(Entry.path());
    std::ostringstream SS;
    SS << In.rdbuf();
    Texts.push_back(SS.str());
  }
  return Texts;
}

TEST(FrontendWorkloadTest, RoundTripIsAFixpointOnTheCorpus) {
  const std::vector<std::string> Texts = corpusTexts();
  ASSERT_GE(Texts.size(), 8u);
  for (const std::string &Text : Texts) {
    ParseError Err;
    std::optional<WorkloadFile> W = parseWorkload(Text, Err);
    ASSERT_TRUE(W.has_value()) << Err.str();
    const std::string P1 = printWorkload(*W);
    std::optional<WorkloadFile> W2 = parseWorkload(P1, Err);
    ASSERT_TRUE(W2.has_value()) << Err.str() << "\n" << P1;
    EXPECT_EQ(printWorkload(*W2), P1);
  }
}

TEST(FrontendWorkloadTest, ParsePreservesEverything) {
  const std::string Text = "workload w\n"
                           "module a cimp object {\n  global g = 0;\n"
                           "  f() { return 0; }\n}\n"
                           "module b x86 model relaxed {\n  .entry e 0 0\n"
                           "  e:\n          retl\n}\n"
                           "thread e\nthread f 3 -7\n"
                           "check drf\ncheck fence-synth\n";
  ParseError Err;
  std::optional<WorkloadFile> W = parseWorkload(Text, Err);
  ASSERT_TRUE(W.has_value()) << Err.str();
  EXPECT_EQ(W->Name, "w");
  ASSERT_EQ(W->Modules.size(), 2u);
  EXPECT_EQ(W->Modules[0].Name, "a");
  EXPECT_EQ(W->Modules[0].Lang, SrcLang::CImp);
  EXPECT_TRUE(W->Modules[0].Object);
  EXPECT_FALSE(W->Modules[0].Model.has_value());
  EXPECT_EQ(W->Modules[1].Lang, SrcLang::X86);
  ASSERT_TRUE(W->Modules[1].Model.has_value());
  EXPECT_EQ(*W->Modules[1].Model, MemModel::Relaxed);
  ASSERT_EQ(W->Threads.size(), 2u);
  EXPECT_EQ(W->Threads[1].Entry, "f");
  EXPECT_EQ(W->Threads[1].Args, (std::vector<int32_t>{3, -7}));
  EXPECT_EQ(W->Checks,
            (std::vector<CheckKind>{CheckKind::Drf, CheckKind::FenceSynth}));
}

/// Every rejection carries a message and a line, and none of them crash.
void expectRejected(const std::string &Text, const std::string &NeedleInMsg) {
  ParseError Err;
  std::optional<WorkloadFile> W = parseWorkload(Text, Err);
  EXPECT_FALSE(W.has_value()) << "accepted:\n" << Text;
  if (!W.has_value()) {
    EXPECT_FALSE(Err.Message.empty());
    EXPECT_GE(Err.Line, 1u);
    EXPECT_NE(Err.Message.find(NeedleInMsg), std::string::npos)
        << Err.str() << " (wanted '" << NeedleInMsg << "')";
  }
}

TEST(FrontendWorkloadTest, MalformedSourcesAreRejectedGracefully) {
  expectRejected("", "no modules");
  expectRejected("module a cimp { f() {} }\n", "no threads");
  expectRejected("thread t\n", "no modules");
  expectRejected("module\n", "expected module name");
  expectRejected("module a\n", "unknown module language");
  expectRejected("module a fortran { }\n", "unknown module language");
  expectRejected("module a cimp\n", "expected attribute or '{'");
  expectRejected("module a cimp {\n f() {}\n", "unterminated body");
  expectRejected("module a x86 model pso { }\n", "unknown memory model");
  expectRejected("module a x86 model { }\n", "unknown memory model");
  expectRejected("module a x86 model tso model sc { }\n",
                 "duplicate 'model'");
  expectRejected("module a cimp object object { }\n", "duplicate 'object'");
  expectRejected("module a cimp model tso { }\nthread t\n",
                 "'model' applies to x86 or compiled clight");
  expectRejected("module a x86 compile { }\nthread t\n",
                 "'compile' requires a clight module");
  expectRejected("module a clight object { }\nthread t\n",
                 "'object' applies to cimp or x86");
  expectRejected("module a cimp { }\nmodule a cimp { }\nthread t\n",
                 "duplicate module name");
  expectRejected("module a cimp frobnicate { }\n",
                 "unknown module attribute");
  expectRejected("module a cimp { }\nthread\n", "expected entry name");
  expectRejected("module a cimp { }\nthread t one\n",
                 "bad thread argument");
  expectRejected("module a cimp { }\nthread t 1 2 x\n",
                 "bad thread argument");
  expectRejected("module a cimp { }\nthread t\ncheck bogus\n",
                 "unknown check");
  expectRejected("workload\nmodule a cimp { }\nthread t\n",
                 "expected workload name");
  expectRejected("workload a\nworkload b\n", "duplicate 'workload'");
  expectRejected("frobnicate\n", "unknown directive");
  expectRejected("}\n", "unexpected character");
}

TEST(FrontendWorkloadTest, ErrorsCarryTheRightLine) {
  ParseError Err;
  EXPECT_FALSE(
      parseWorkload("# comment\n\nmodule a cimp { }\n\ncheck bogus\n", Err)
          .has_value());
  EXPECT_EQ(Err.Line, 5u);
}

// Deterministic truncation fuzz: every prefix of a representative file
// must parse or fail gracefully — no crash, no hang, no uninitialized
// error.
TEST(FrontendWorkloadTest, EveryTruncationIsGraceful) {
  const std::string Text = "workload w\n"
                           "module client cimp {\n"
                           "  global x = 0;\n"
                           "  inc() { tmp := [x]; [x] := tmp + 1; }\n"
                           "}\n"
                           "module m x86 model tso object {\n"
                           "  .entry e 0 0\n  e:\n          retl\n"
                           "}\n"
                           "thread inc 1\n"
                           "check drf\n";
  for (std::size_t Len = 0; Len <= Text.size(); ++Len) {
    ParseError Err;
    std::optional<WorkloadFile> W = parseWorkload(Text.substr(0, Len), Err);
    if (!W.has_value()) {
      EXPECT_FALSE(Err.Message.empty()) << "at length " << Len;
      EXPECT_GE(Err.Line, 1u) << "at length " << Len;
    }
  }
}

TEST(FrontendWorkloadTest, BuildRejectsBadBodiesAndUnknownEntries) {
  ParseError PE;
  std::string Err;

  // A structurally fine file whose CImp body is garbage: the language
  // parser's message surfaces through buildProgram.
  std::optional<WorkloadFile> W = parseWorkload(
      "module a cimp { this is not cimp }\nthread t\n", PE);
  ASSERT_TRUE(W.has_value()) << PE.str();
  EXPECT_FALSE(buildProgram(*W, Err).has_value());
  EXPECT_NE(Err.find("module 'a'"), std::string::npos) << Err;

  // Bad x86 body.
  W = parseWorkload("module a x86 { bogus instruction }\nthread t\n", PE);
  ASSERT_TRUE(W.has_value()) << PE.str();
  EXPECT_FALSE(buildProgram(*W, Err).has_value());

  // Bad clight body.
  W = parseWorkload("module a clight { void f( }\nthread f\n", PE);
  ASSERT_TRUE(W.has_value()) << PE.str();
  EXPECT_FALSE(buildProgram(*W, Err).has_value());

  // Valid modules, unknown thread root.
  W = parseWorkload(
      "module a cimp { f() { return 0; } }\nthread missing\n", PE);
  ASSERT_TRUE(W.has_value()) << PE.str();
  EXPECT_FALSE(buildProgram(*W, Err).has_value());
  EXPECT_NE(Err.find("missing"), std::string::npos) << Err;
}

} // namespace
