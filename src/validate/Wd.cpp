//===- validate/Wd.cpp - Well-definedness and determinism checkers ---------===//

#include "validate/Wd.h"

#include "mem/MemPred.h"

#include <deque>
#include <functional>
#include <set>

using namespace ccc;
using namespace ccc::validate;

namespace {

struct LocalCfg {
  CoreRef C;
  Mem M;
};

/// Explores the module-local configurations reachable from an entry,
/// invoking \p Visit on every configuration. Paths stop at ExtCall/Ret
/// (where control leaves the module) and at aborts. Returns true when
/// the MaxStates bound stopped the walk with work still pending — the
/// visited set is then a prefix of the reachable set, and the caller
/// must not present its verdict as a certificate (tri-state
/// discipline).
bool exploreLocal(const Program &P, unsigned ModIdx,
                  const std::string &Entry, const std::vector<Value> &Args,
                  unsigned MaxStates,
                  const std::function<void(const LocalCfg &,
                                           const FreeList &)> &Visit) {
  const ModuleDecl &Mod = P.module(ModIdx);
  FreeList F = P.threadRegion(0).subRegion(0, Program::FrameRegionSize);
  CoreRef C0 = Mod.Lang->initCore(Entry, Args);
  if (!C0)
    return false;
  std::deque<LocalCfg> Work;
  std::set<std::string> Seen;
  Work.push_back({C0, P.initialMem()});
  unsigned Visited = 0;
  while (!Work.empty() && Visited < MaxStates) {
    LocalCfg Cfg = std::move(Work.front());
    Work.pop_front();
    std::string Key = Cfg.C->key() + "#" + Cfg.M.key();
    if (!Seen.insert(Key).second)
      continue;
    ++Visited;
    Visit(Cfg, F);
    for (const LocalStep &S : Mod.Lang->step(F, *Cfg.C, Cfg.M)) {
      if (S.Abort || S.M.K == Msg::Kind::Ret ||
          S.M.K == Msg::Kind::ExtCall || S.M.K == Msg::Kind::TailCall)
        continue;
      Work.push_back({S.Next, S.NextMem});
    }
  }
  // Pending duplicates are not truncation; only an unseen configuration
  // left behind means the reachable set was not exhausted.
  for (const LocalCfg &Cfg : Work)
    if (!Seen.count(Cfg.C->key() + "#" + Cfg.M.key()))
      return true;
  return false;
}

/// Stamps a truncated exploration into the report: Truncated plus an Ok
/// veto, so a prefix check never reads as a pass.
void noteTruncation(CheckReport &R, bool Truncated, unsigned MaxStates) {
  if (!Truncated)
    return;
  R.Truncated = true;
  R.violate("state bound exceeded (MaxStates=" + std::to_string(MaxStates) +
            "): truncated run checks a prefix, not a certificate");
}

/// Perturbations of \p M that keep LEqPre(M, M', FP, F): change values at
/// allocated addresses outside the read set (and outside F so frame
/// contents stay fixed, which also keeps item (4)'s premise easy to
/// satisfy), or allocate a fresh address outside ws u F.
std::vector<Mem> lEqPrePerturbations(const Mem &M, const Footprint &FP,
                                     const FreeList &F, unsigned MaxOut) {
  std::vector<Mem> Out;
  M.forEach([&](Addr A, const Value &V) {
    if (Out.size() >= MaxOut)
      return;
    if (FP.reads().contains(A) || F.contains(A))
      return;
    if (!V.isInt())
      return;
    Mem M2 = M;
    M2.store(A, Value::makeInt(V.asInt() + 1));
    Out.push_back(std::move(M2));
  });
  if (Out.size() < MaxOut) {
    // Fresh allocation far away from everything.
    Mem M2 = M;
    Addr Fresh = 0xFFFFFF0;
    if (!M2.allocated(Fresh) && !F.contains(Fresh) &&
        !FP.writes().contains(Fresh)) {
      M2.alloc(Fresh, Value::makeInt(12345));
      Out.push_back(std::move(M2));
    }
  }
  return Out;
}

bool sameMsg(const Msg &A, const Msg &B) {
  return A.K == B.K && A.EventVal == B.EventVal && A.RetVal == B.RetVal &&
         A.Callee == B.Callee && A.Args == B.Args;
}

} // namespace

CheckReport ccc::validate::wdCheck(const Program &P, unsigned ModIdx,
                                   const std::string &Entry,
                                   const std::vector<Value> &Args,
                                   CheckOptions Opts) {
  CheckReport R;
  const ModuleDecl &Mod = P.module(ModIdx);
  const bool Truncated =
      exploreLocal(P, ModIdx, Entry, Args, Opts.MaxStates,
                   [&](const LocalCfg &Cfg, const FreeList &F) {
    ++R.StatesChecked;
    auto Steps = Mod.Lang->step(F, *Cfg.C, Cfg.M);

    // delta0: union of the possible step footprints (item (4)). The paper
    // takes tau steps only because its non-silent steps carry emp
    // footprints; our languages fuse argument evaluation into the
    // emitting step, so their read sets belong in delta0 too (see
    // DESIGN.md, deviations).
    Footprint Delta0;
    for (const LocalStep &S : Steps)
      if (!S.Abort)
        Delta0.unionWith(S.FP);

    for (const LocalStep &S : Steps) {
      if (S.Abort)
        continue;
      ++R.StepsChecked;
      // (1) forward.
      if (!memForward(Cfg.M, S.NextMem))
        R.violate("forward violated at " + Cfg.C->key());
      // (2) LEffect.
      if (!lEffect(Cfg.M, S.NextMem, S.FP, F))
        R.violate("LEffect violated at " + Cfg.C->key() + " fp " +
                  S.FP.toString());
      // (3) the step replays on LEqPre-equivalent memories.
      for (const Mem &M2 :
           lEqPrePerturbations(Cfg.M, S.FP, F, Opts.PerturbSamples)) {
        if (!lEqPre(Cfg.M, M2, S.FP, F))
          continue; // perturbation generator was too aggressive
        bool Found = false;
        for (const LocalStep &S2 : Mod.Lang->step(F, *Cfg.C, M2)) {
          if (S2.Abort || !sameMsg(S2.M, S.M) || !(S2.FP == S.FP))
            continue;
          if (S2.Next->key() == S.Next->key() &&
              lEqPost(S.NextMem, S2.NextMem, S.FP, F)) {
            Found = true;
            break;
          }
        }
        if (!Found)
          R.violate("Def.1(3): step not reproducible under LEqPre "
                    "perturbation at " +
                    Cfg.C->key());
      }
    }

    // (4) non-determinism independent of out-of-footprint memory.
    for (const Mem &M2 :
         lEqPrePerturbations(Cfg.M, Delta0, F, Opts.PerturbSamples)) {
      if (!lEqPre(Cfg.M, M2, Delta0, F))
        continue;
      for (const LocalStep &S2 : Mod.Lang->step(F, *Cfg.C, M2)) {
        if (S2.Abort)
          continue;
        bool Found = false;
        for (const LocalStep &S : Steps) {
          if (!S.Abort && sameMsg(S.M, S2.M) && S.FP == S2.FP &&
              S.Next->key() == S2.Next->key()) {
            Found = true;
            break;
          }
        }
        if (!Found)
          R.violate("Def.1(4): extra step appears under perturbation at " +
                    Cfg.C->key());
      }
    }
  });
  noteTruncation(R, Truncated, Opts.MaxStates);
  return R;
}

CheckReport ccc::validate::detCheck(const Program &P, unsigned ModIdx,
                                    const std::string &Entry,
                                    const std::vector<Value> &Args,
                                    CheckOptions Opts) {
  CheckReport R;
  const ModuleDecl &Mod = P.module(ModIdx);
  const bool Truncated =
      exploreLocal(P, ModIdx, Entry, Args, Opts.MaxStates,
                   [&](const LocalCfg &Cfg, const FreeList &F) {
    ++R.StatesChecked;
    auto Steps = Mod.Lang->step(F, *Cfg.C, Cfg.M);
    R.StepsChecked += static_cast<unsigned>(Steps.size());
    if (Steps.size() > 1)
      R.violate("non-deterministic configuration: " + Cfg.C->key());
  });
  noteTruncation(R, Truncated, Opts.MaxStates);
  return R;
}

CheckReport ccc::validate::reachCloseCheck(const Program &P,
                                           unsigned ModIdx,
                                           const std::string &Entry,
                                           const std::vector<Value> &Args,
                                           CheckOptions Opts) {
  CheckReport R;
  const ModuleDecl &Mod = P.module(ModIdx);
  const AddrSet &S = P.sharedAddrs();

  // Rely-compatible interference: mutate integer-valued shared cells
  // (closedness is preserved because no pointers are introduced).
  auto relyVariants = [&](const Mem &M) {
    std::vector<Mem> Out;
    Out.push_back(M); // the identity environment step
    for (Addr A : S) {
      if (Out.size() > Opts.RelySamples)
        break;
      auto V = M.load(A);
      if (!V || !V->isInt())
        continue;
      Mem M2 = M;
      M2.store(A, Value::makeInt(V->asInt() + 1));
      Out.push_back(std::move(M2));
    }
    return Out;
  };

  const bool Truncated =
      exploreLocal(P, ModIdx, Entry, Args, Opts.MaxStates,
                   [&](const LocalCfg &Cfg, const FreeList &F) {
    ++R.StatesChecked;
    for (const Mem &M2 : relyVariants(Cfg.M)) {
      if (!relyR(Cfg.M, M2, F, S))
        continue;
      for (const LocalStep &St : Mod.Lang->step(F, *Cfg.C, M2)) {
        if (St.Abort)
          continue;
        ++R.StepsChecked;
        if (!guaranteeHG(St.FP, St.NextMem, F, S))
          R.violate("HG violated at " + Cfg.C->key() + " fp " +
                    St.FP.toString());
      }
    }
  });
  noteTruncation(R, Truncated, Opts.MaxStates);
  return R;
}
