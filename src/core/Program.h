//===- core/Program.h - Whole programs and linking --------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole programs (paper: P = let Pi in f1 || ... || fn, Fig. 4): a set of
/// module declarations plus one entry per thread. Linking assigns global
/// addresses (GE(Pi) of the Load rule, Fig. 7), carves disjoint per-thread
/// free-list regions (Sec. 3's memory model), and records the shared
/// location set S and the object-owned subset used for confinement checks
/// (Sec. 7.1).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_PROGRAM_H
#define CASCC_CORE_PROGRAM_H

#include "core/ModuleLang.h"
#include "mem/GlobalEnv.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ccc {

/// A module declaration (paper: (tl, ge, pi) in MdSet).
struct ModuleDecl {
  std::string Name;
  std::unique_ptr<ModuleLang> Lang;
  GlobalEnv GE;
};

/// A whole concurrent program.
class Program {
public:
  /// Address-space layout constants (see DESIGN.md).
  static constexpr Addr GlobalBase = 0x1000;
  static constexpr Addr ThreadRegionBase = 0x100000;
  static constexpr uint32_t ThreadRegionSize = 0x10000;
  static constexpr uint32_t FrameRegionSize = 0x100;

  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  /// Adds a module; returns its index.
  unsigned addModule(std::string Name, std::unique_ptr<ModuleLang> Lang,
                     GlobalEnv GE);

  /// Adds a thread with the given entry function (and optional arguments).
  void addThread(std::string Entry, std::vector<Value> Args = {});

  /// Assigns global addresses, binds each module's globals, and records
  /// the shared/object location sets. Must be called exactly once before
  /// loading.
  void link();

  bool linked() const { return Linked; }

  const std::vector<ModuleDecl> &modules() const { return Modules; }
  ModuleDecl &module(unsigned Idx) { return Modules[Idx]; }
  const ModuleDecl &module(unsigned Idx) const { return Modules[Idx]; }

  unsigned numThreads() const { return static_cast<unsigned>(Entries.size()); }
  const std::string &threadEntry(unsigned T) const { return Entries[T].Name; }
  const std::vector<Value> &threadArgs(unsigned T) const {
    return Entries[T].Args;
  }

  /// Finds the module defining entry \p Name (first match wins), together
  /// with the initial core, or nullopt if no module defines it.
  std::optional<std::pair<unsigned, CoreRef>>
  resolveEntry(const std::string &Name, const std::vector<Value> &Args) const;

  /// The shared memory locations S (all globals of all modules).
  const AddrSet &sharedAddrs() const { return Shared; }

  /// The object-owned subset of S (Sec. 7.1 confinement).
  const AddrSet &objectAddrs() const { return ObjectOwned; }

  /// The initial memory GE(Pi) (Fig. 7 Load).
  Mem initialMem() const;

  /// The free-list region reserved for thread \p T.
  FreeList threadRegion(ThreadId T) const {
    return FreeList(ThreadRegionBase + T * ThreadRegionSize,
                    ThreadRegionSize);
  }

private:
  struct Entry {
    std::string Name;
    std::vector<Value> Args;
  };

  std::vector<ModuleDecl> Modules;
  std::vector<Entry> Entries;
  AddrSet Shared;
  AddrSet ObjectOwned;
  bool Linked = false;
};

} // namespace ccc

#endif // CASCC_CORE_PROGRAM_H
