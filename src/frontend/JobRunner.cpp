//===- frontend/JobRunner.cpp - Batch check dispatch ----------------------===//

#include "frontend/JobRunner.h"

#include "analysis/FenceSynth.h"
#include "analysis/RaceDetector.h"
#include "analysis/Robustness.h"
#include "clight/ClightParser.h"
#include "compiler/Compiler.h"
#include "core/Semantics.h"
#include "support/JsonOut.h"
#include "validate/PassValidator.h"

#include <chrono>

using namespace ccc;
using namespace ccc::frontend;

std::string JobOutcome::toJson() const {
  std::string J = "{";
  J += "\"job\": " + json::str(Job);
  J += ", \"check\": " + json::str(Check);
  J += ", \"verdict\": " + json::str(Verdict);
  J += std::string(", \"conclusive\": ") + (Conclusive ? "true" : "false");
  J += ", \"truncated_by\": " + json::str(TruncatedBy);
  if (!TraceHash.empty())
    J += ", \"trace_hash\": " + json::str(TraceHash);
  // "explored_states" varies between runs of a time/memory-budgeted job,
  // so its name deliberately carries the differ's "states" drop marker.
  J += ", \"explored_states\": " + std::to_string(ExploredStates);
  J += ", \"ms\": " + std::to_string(Ms);
  if (!Error.empty())
    J += ", \"error\": " + json::str(Error);
  if (!ExploreStatsJson.empty())
    J += ", \"explore\": " + ExploreStatsJson;
  J += "}";
  return J;
}

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

ExploreOptions exploreOptions(const JobSpec &S) {
  ExploreOptions O;
  O.MaxStates = S.Budget.MaxStates;
  O.MaxBuildMs = S.Budget.MaxMs;
  O.MaxStateBytes = S.Budget.MaxStateBytes;
  O.Threads = S.Workers;
  O.Por = S.Por ? PorMode::On : PorMode::Off;
  return O;
}

void runExplore(const JobSpec &S, Program &P, JobOutcome &Out) {
  Explorer<World> E(exploreOptions(S));
  E.build(World::load(P, 0));
  const CheckVerdict V = E.safetyVerdict();
  Out.Verdict = checkVerdictName(V);
  Out.Conclusive = V != CheckVerdict::Inconclusive;
  Out.TruncatedBy = E.stats().TruncatedBy;
  Out.ExploredStates = E.numStates();
  // The trace set of a truncated exploration is a prefix bound, not the
  // program's trace set; hash it only when it is the real thing.
  if (!E.truncated())
    Out.TraceHash = json::traceSetHash(E.traces());
  Out.ExploreStatsJson = E.stats().toJson();
}

void runDrf(const JobSpec &S, Program &P, JobOutcome &Out) {
  analysis::DetectOptions O;
  O.UseStaticFastPath = S.FastPaths;
  O.UseTsoFastPath = S.FastPaths;
  O.Explore = exploreOptions(S);
  const analysis::DetectResult R = analysis::detectRaces(P, O);
  const CheckVerdict V = R.verdict();
  Out.Verdict = checkVerdictName(V);
  Out.Conclusive = V != CheckVerdict::Inconclusive;
  Out.TruncatedBy = R.Explore.TruncatedBy;
  Out.ExploredStates = R.ExploredStates;
}

void runRobustness(Program &P, JobOutcome &Out) {
  const analysis::ProgramRobustReport R = analysis::programRobustness(P);
  bool AnyNotRobust = false, AnyUnknown = false;
  for (const analysis::ModuleRobustInfo &M : R.Modules) {
    AnyNotRobust |= M.Report.Verdict == analysis::RobustVerdict::NotRobust;
    AnyUnknown |= M.Report.Verdict == analysis::RobustVerdict::Unknown;
  }
  Out.Verdict =
      AnyNotRobust ? "not-robust" : AnyUnknown ? "unknown" : "robust";
  Out.Conclusive = !AnyUnknown;
}

void runFenceSynth(Program &P, JobOutcome &Out) {
  analysis::ProgramRepairReport Rep;
  analysis::repairAndApplyScFastPath(P, &Rep);
  Out.Verdict = Rep.allRepaired()
                    ? checkVerdictName(CheckVerdict::Certified)
                    : checkVerdictName(CheckVerdict::Inconclusive);
  Out.Conclusive = Rep.allRepaired();
}

void runPasses(const JobSpec &S, JobOutcome &Out) {
  unsigned Validated = 0;
  for (const ModuleSpec &M : S.W.Modules) {
    if (M.Lang != SrcLang::Clight)
      continue;
    std::string LangErr;
    std::shared_ptr<clight::Module> Mod =
        clight::parseModule(M.Source, LangErr);
    if (!Mod) {
      Out.Verdict = "error";
      Out.Error = "module '" + M.Name + "': " + LangErr;
      return;
    }
    const compiler::CompileResult R = compiler::compileClight(Mod);
    if (!R.VerifyErrors.empty()) {
      Out.Verdict = checkVerdictName(CheckVerdict::Refuted);
      Out.Error =
          "module '" + M.Name + "': " + R.VerifyErrors.front();
      return;
    }
    for (const validate::PassResult &PR :
         validate::validatePipeline(R, validate::defaultSamples(*Mod))) {
      if (!PR.Holds) {
        Out.Verdict = checkVerdictName(CheckVerdict::Refuted);
        Out.Error = "module '" + M.Name + "', pass " + PR.PassName + ": " +
                    PR.FailReason;
        return;
      }
    }
    ++Validated;
  }
  if (Validated == 0) {
    Out.Verdict = checkVerdictName(CheckVerdict::Inconclusive);
    Out.Error = "no clight modules to validate";
    return;
  }
  Out.Verdict = checkVerdictName(CheckVerdict::Certified);
  Out.Conclusive = true;
}

} // namespace

std::vector<JobOutcome> ccc::frontend::runJob(const JobSpec &S) {
  std::vector<CheckKind> Checks = S.W.Checks;
  if (Checks.empty())
    Checks.push_back(CheckKind::Explore);

  std::vector<JobOutcome> Outs;
  for (CheckKind K : Checks) {
    JobOutcome Out;
    Out.Job = S.Name;
    Out.Check = checkKindName(K);
    const auto Start = std::chrono::steady_clock::now();

    // Each check gets a fresh build: fence synthesis and the robustness
    // SC fast path mutate the program in place.
    std::string BuildErr;
    std::optional<Program> P = buildProgram(S.W, BuildErr);
    if (!P) {
      Out.Verdict = "error";
      Out.Error = BuildErr;
      Out.Ms = msSince(Start);
      Outs.push_back(std::move(Out));
      continue;
    }

    switch (K) {
    case CheckKind::Explore:
      runExplore(S, *P, Out);
      break;
    case CheckKind::Drf:
      runDrf(S, *P, Out);
      break;
    case CheckKind::Robustness:
      runRobustness(*P, Out);
      break;
    case CheckKind::FenceSynth:
      runFenceSynth(*P, Out);
      break;
    case CheckKind::Passes:
      runPasses(S, Out);
      break;
    }
    Out.Ms = msSince(Start);
    Outs.push_back(std::move(Out));
  }
  return Outs;
}
