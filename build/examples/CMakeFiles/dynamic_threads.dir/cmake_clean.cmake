file(REMOVE_RECURSE
  "CMakeFiles/dynamic_threads.dir/dynamic_threads.cpp.o"
  "CMakeFiles/dynamic_threads.dir/dynamic_threads.cpp.o.d"
  "dynamic_threads"
  "dynamic_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
