//===- tests/FenceSynthTest.cpp - Static minimal-fence synthesis -----------===//
//
// The repair pass: the x86 fence-insertion rewrite layer, synthesis on
// the seed NotRobust workloads (with hand-fenced reference counts),
// certifier-backed minimality, idempotence, repair through the
// recursive-summary fixpoint, and the dynamic repaired-TSO-vs-SC trace
// cross-check that backs the whole pipeline.
//
//===----------------------------------------------------------------------===//

#include "analysis/FenceSynth.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"
#include "x86/X86Lang.h"
#include "x86/X86Parser.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>

using namespace ccc;
using namespace ccc::analysis;

namespace {

/// Synthesis result for a standalone module (no program context).
FenceSynthResult synthSource(const std::string &Src) {
  return synthesizeFences(*x86::parseAsmOrDie(Src));
}

/// The x86 module registered under \p Name in \p P, or null.
std::shared_ptr<const x86::Module> moduleOf(const Program &P,
                                            const std::string &Name) {
  for (const ModuleDecl &D : P.modules()) {
    if (D.Name != Name)
      continue;
    if (const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get()))
      return L->modulePtr();
  }
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// The rewrite layer: insertFences / recomputeFrameExtents
//===----------------------------------------------------------------------===//

TEST(FenceInsert, RemapsLabelsEntriesAndBranches) {
  auto M = x86::parseAsmOrDie(R"(
    .data x 0
    .entry f 0 0
    f:
            movl $1, x
            movl x, %eax
            cmpl $0, %eax
            jne f_out
            movl $2, x
    f_out:
            retl
  )");
  // Fences before the load (PC 2) and the second store (PC 5).
  auto R = x86::insertFences(*M, {2, 5});
  ASSERT_EQ(R->Code.size(), M->Code.size() + 2);
  EXPECT_EQ(R->Code[2].K, x86::Instr::Kind::Mfence);
  EXPECT_EQ(R->Code[3].K, x86::Instr::Kind::Mov);   // the shifted load
  EXPECT_EQ(R->Code[6].K, x86::Instr::Kind::Mfence);
  EXPECT_EQ(R->Code[7].K, x86::Instr::Kind::Mov);   // the shifted store
  // Labels and entries shift with their instructions.
  EXPECT_EQ(R->Labels.at("f"), M->Labels.at("f"));
  EXPECT_EQ(R->Labels.at("f_out"), M->Labels.at("f_out") + 2);
  EXPECT_EQ(R->Entries.at("f").PCIndex, M->Entries.at("f").PCIndex);
  // The jump still lands on its label, past both fences.
  auto Succ = x86::successors(*R, 4 + 1); // the shifted jne
  ASSERT_EQ(Succ.size(), 2u);
  EXPECT_EQ(Succ[0], R->Labels.at("f_out"));
  // The rewritten module round-trips through the printer and parser.
  auto Reparsed = x86::parseAsmOrDie(R->toString());
  EXPECT_EQ(Reparsed->Code.size(), R->Code.size());
  EXPECT_EQ(Reparsed->Labels, R->Labels);
}

TEST(FenceInsert, DuplicatesCollapseAndOrderIsIrrelevant) {
  auto M = x86::parseAsmOrDie(R"(
    .data x 0
    .entry f 0 0
    f:
            movl $1, x
            movl x, %eax
            retl
  )");
  auto A = x86::insertFences(*M, {2, 1, 2});
  auto B = x86::insertFences(*M, {1, 2});
  EXPECT_EQ(A->toString(), B->toString());
  EXPECT_EQ(A->Code.size(), M->Code.size() + 2);
}

TEST(FenceInsert, FrameExtentsSurviveRewriting) {
  auto M = x86::parseAsmOrDie(R"(
    .data x 0
    .entry f 2 0
    f:
            movl $7, 3(%esp)
            movl $1, x
            retl
  )");
  ASSERT_EQ(M->Entries.at("f").FrameExtent, 4u);
  auto R = x86::insertFences(*M, {2});
  EXPECT_EQ(R->Entries.at("f").FrameExtent, 4u);
}

//===----------------------------------------------------------------------===//
// Synthesis vs the hand-fenced references
//===----------------------------------------------------------------------===//

TEST(FenceSynth, PiLockRepairMatchesHandFence) {
  FenceSynthResult R = synthSource(sync::piLockSource());
  ASSERT_EQ(R.Outcome, RepairOutcome::Repaired) << R.toString();
  EXPECT_TRUE(R.After.robust());
  // The hand-fenced pi_lock carries exactly one mfence; synthesis must
  // not need more.
  unsigned Hand = mfenceCount(*x86::parseAsmOrDie(sync::piLockFencedSource()));
  EXPECT_EQ(Hand, 1u);
  EXPECT_LE(R.Fences.size(), Hand);
  EXPECT_EQ(mfenceCount(*R.RepairedModule), Hand);
  // And it lands in unlock, guarding the escaping release store.
  ASSERT_EQ(R.Fences.size(), 1u);
  EXPECT_EQ(R.Fences[0].Entry, "unlock") << R.Fences[0].describe();
}

TEST(FenceSynth, UnfencedPingPongRepairMatchesHandFences) {
  Program Unf = workload::unfencedPingPong(x86::MemModel::TSO, 2);
  Program Hand = workload::fencedPingPong(x86::MemModel::TSO, 2);
  auto MU = moduleOf(Unf, "m");
  auto MH = moduleOf(Hand, "m");
  ASSERT_TRUE(MU && MH);
  std::map<std::string, TsoModuleContext> Ctxs = tsoModuleContexts(Unf);
  const TsoModuleContext *Ctx =
      Ctxs.count("m") ? &Ctxs.at("m") : nullptr;
  FenceSynthResult R = synthesizeFences(*MU, Ctx);
  ASSERT_EQ(R.Outcome, RepairOutcome::Repaired) << R.toString();
  // Two hand fences (one per thread); synthesis needs no more — and the
  // repaired module is exactly as fenced as the reference.
  EXPECT_EQ(mfenceCount(*MH), 2u);
  EXPECT_LE(R.Fences.size(), mfenceCount(*MH));
  EXPECT_EQ(mfenceCount(*R.RepairedModule), mfenceCount(*MH));
}

TEST(FenceSynth, AlreadyRobustModulesGetNoFences) {
  FenceSynthResult R = synthSource(sync::piLockFencedSource());
  EXPECT_EQ(R.Outcome, RepairOutcome::AlreadyRobust) << R.toString();
  EXPECT_TRUE(R.Fences.empty());
  EXPECT_EQ(R.RepairedModule, nullptr);
}

//===----------------------------------------------------------------------===//
// Minimality and idempotence
//===----------------------------------------------------------------------===//

TEST(FenceSynth, RemovingAnySynthesizedFenceRevertsTheVerdict) {
  const std::string Sources[] = {
      sync::piLockSource(),
      sync::piLockRecursiveUnfencedSource(),
  };
  for (const std::string &Src : Sources) {
    auto M = x86::parseAsmOrDie(Src);
    FenceSynthResult R = synthesizeFences(*M);
    ASSERT_EQ(R.Outcome, RepairOutcome::Repaired) << R.toString();
    std::string Why;
    EXPECT_TRUE(verifyFenceMinimality(*M, nullptr, R, &Why)) << Why;
  }
}

TEST(FenceSynth, MinimalityHoldsUnderProgramContext) {
  Program P = workload::unfencedPingPong(x86::MemModel::TSO, 2);
  auto M = moduleOf(P, "m");
  ASSERT_TRUE(M);
  std::map<std::string, TsoModuleContext> Ctxs = tsoModuleContexts(P);
  const TsoModuleContext *Ctx = Ctxs.count("m") ? &Ctxs.at("m") : nullptr;
  FenceSynthResult R = synthesizeFences(*M, Ctx);
  ASSERT_EQ(R.Outcome, RepairOutcome::Repaired) << R.toString();
  std::string Why;
  EXPECT_TRUE(verifyFenceMinimality(*M, Ctx, R, &Why)) << Why;
}

TEST(FenceSynth, SynthesisIsIdempotent) {
  const std::string Sources[] = {
      sync::piLockSource(),
      sync::piLockRecursiveUnfencedSource(),
  };
  for (const std::string &Src : Sources) {
    FenceSynthResult R = synthSource(Src);
    ASSERT_EQ(R.Outcome, RepairOutcome::Repaired) << R.toString();
    FenceSynthResult R2 = synthesizeFences(*R.RepairedModule);
    EXPECT_EQ(R2.Outcome, RepairOutcome::AlreadyRobust) << R2.toString();
    EXPECT_TRUE(R2.Fences.empty());
  }
}

TEST(FenceSynth, SynthesisIsDeterministic) {
  FenceSynthResult A = synthSource(sync::piLockSource());
  FenceSynthResult B = synthSource(sync::piLockSource());
  ASSERT_EQ(A.Fences.size(), B.Fences.size());
  for (std::size_t I = 0; I < A.Fences.size(); ++I) {
    EXPECT_EQ(A.Fences[I].BeforePC, B.Fences[I].BeforePC);
    EXPECT_EQ(A.Fences[I].RepairedPC, B.Fences[I].RepairedPC);
  }
}

//===----------------------------------------------------------------------===//
// Repair through the recursive-summary fixpoint
//===----------------------------------------------------------------------===//

TEST(FenceSynth, RecursiveLockRepairsThroughSummaryFixpoint) {
  // In the closed program the unfenced recursive lock's `call rflush` is
  // a summarized same-module call, so both the witness (the release
  // store pending through the recursive group to unlock's ret) and the
  // repaired certificate must be established through the summary
  // fixpoint — and the synthesized fence count must not exceed the
  // hand-fenced recursive variant's one mfence.
  Program P = workload::asmCounterWithRecLockUnfenced(x86::MemModel::TSO, 2);
  auto M = moduleOf(P, "lockimpl");
  ASSERT_TRUE(M);
  std::map<std::string, TsoModuleContext> Ctxs = tsoModuleContexts(P);
  ASSERT_TRUE(Ctxs.count("lockimpl"));
  const TsoModuleContext *Ctx = &Ctxs.at("lockimpl");
  ASSERT_TRUE(Ctx->SelfResolvedEntries.count("rflush"));
  FenceSynthResult R = synthesizeFences(*M, Ctx);
  ASSERT_EQ(R.Outcome, RepairOutcome::Repaired) << R.toString();
  unsigned Hand =
      mfenceCount(*x86::parseAsmOrDie(sync::piLockRecursiveSource()));
  EXPECT_EQ(Hand, 1u);
  EXPECT_LE(R.Fences.size(), Hand);
  std::string Why;
  EXPECT_TRUE(verifyFenceMinimality(*M, Ctx, R, &Why)) << Why;
}

//===----------------------------------------------------------------------===//
// Program-level repair and the dynamic TSO-vs-SC cross-check
//===----------------------------------------------------------------------===//

namespace {

/// Repairs \p Make's program, requires every module Robust afterwards,
/// and cross-checks repaired-TSO against repaired-SC trace equality.
void checkRepairPipeline(const char *Name,
                         const std::function<Program()> &Make,
                         unsigned ExpectRepairedModules) {
  // Repair alone: every attempted module must end Repaired, and the
  // repaired program must certify all-Robust.
  Program Tso = Make();
  ProgramRepairReport Rep = repairTsoRobustness(Tso);
  EXPECT_EQ(Rep.ModulesRepaired, ExpectRepairedModules)
      << Name << ": " << Rep.toString();
  EXPECT_TRUE(Rep.allRepaired()) << Name << ": " << Rep.toString();
  ProgramTsoReport After = programTsoRobustness(Tso);
  EXPECT_TRUE(After.allRobust()) << Name << ": " << After.toString();

  // Dynamic cross-check: the repaired program explored under TSO equals
  // the repaired program on the SC fast path, trace for trace.
  TraceSet TsoTraces = preemptiveTraces(Tso);
  Program Sc = Make();
  ProgramRepairReport Rep2;
  unsigned Switched = repairAndApplyScFastPath(Sc, &Rep2);
  EXPECT_GT(Switched, 0u) << Name;
  TraceSet ScTraces = preemptiveTraces(Sc);
  EXPECT_TRUE(TsoTraces == ScTraces)
      << Name << ": repaired-TSO vs SC trace sets differ\nTSO:\n"
      << TsoTraces.toString() << "SC:\n"
      << ScTraces.toString();
}

} // namespace

TEST(FenceSynth, RepairedPingPongTsoEqualsSc) {
  checkRepairPipeline(
      "pingpong-unfenced r=2",
      [] { return workload::unfencedPingPong(x86::MemModel::TSO, 2); },
      /*ExpectRepairedModules=*/1);
}

TEST(FenceSynth, RepairedPiLockCounterTsoEqualsSc) {
  // Both the client (counter store pending across `call unlock`) and
  // pi_lock (escaping release store) need repair.
  checkRepairPipeline(
      "counter+pi_lock",
      [] { return workload::asmCounterWithPiLock(x86::MemModel::TSO, 2); },
      /*ExpectRepairedModules=*/2);
}

TEST(FenceSynth, RepairedRecursiveLockCounterTsoEqualsSc) {
  checkRepairPipeline(
      "counter+rec_lock-unfenced",
      [] {
        return workload::asmCounterWithRecLockUnfenced(x86::MemModel::TSO,
                                                       2);
      },
      /*ExpectRepairedModules=*/2);
}

TEST(FenceSynth, RepairShrinksTheStateSpace) {
  // The point of the exercise: a formerly NotRobust workload collects
  // the SC fast path's state reduction after repair.
  Program Tso = workload::unfencedPingPong(x86::MemModel::TSO, 2);
  repairTsoRobustness(Tso);
  ExploreStats S1;
  preemptiveTraces(Tso, {}, &S1);

  Program Sc = workload::unfencedPingPong(x86::MemModel::TSO, 2);
  repairAndApplyScFastPath(Sc);
  ExploreStats S2;
  preemptiveTraces(Sc, {}, &S2);
  EXPECT_LE(S2.States, S1.States);
}

TEST(FenceSynth, RepairLeavesRobustProgramsUntouched) {
  Program P = workload::fencedPingPong(x86::MemModel::TSO, 2);
  ProgramRepairReport Rep = repairTsoRobustness(P);
  EXPECT_EQ(Rep.ModulesRepaired, 0u);
  EXPECT_EQ(Rep.FencesInserted, 0u);
  EXPECT_TRUE(Rep.Modules.empty()) << Rep.toString();
}
