//===- compiler/Passes.h - The CASCompCert compilation passes ---*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twelve compilation passes of Fig. 11 — the same pass names and
/// pass boundaries as the CompCert-3.0.1 pipeline verified by
/// CASCompCert:
///
///   Clight -Cshmgen-> C#minor -Cminorgen-> Cminor -Selection-> CminorSel
///   -RTLgen-> RTL -Tailcall-> RTL -Renumber-> RTL -Allocation-> LTL
///   -Tunneling-> LTL -Linearize-> Linear -CleanupLabels-> Linear
///   -Stacking-> Mach -Asmgen-> x86
///
/// Each pass is total on the Clight subset accepted by the frontend; the
/// per-pass correctness obligation (Def. 10, footprint-preserving
/// module-local simulation) is discharged by the validation engines.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_COMPILER_PASSES_H
#define CASCC_COMPILER_PASSES_H

#include "clight/ClightAst.h"
#include "ir/Cminor.h"
#include "ir/CminorSel.h"
#include "ir/Csharpminor.h"
#include "ir/Linear.h"
#include "ir/RTL.h"
#include "x86/X86Asm.h"

#include <memory>

namespace ccc {
namespace compiler {

/// Clight -> C#minor: make every variable access an explicit memory
/// operation; locals become numbered frame slots.
std::shared_ptr<csharp::Module>
cshmgen(const clight::Module &M);

/// C#minor -> Cminor: promote (non-addressed) locals from frame slots to
/// temporaries; compute the (empty) residual frame. This is the pass
/// where target footprints become strictly smaller than source
/// footprints, exercising the FPmatch weakening of Fig. 8.
std::shared_ptr<cminor::Module> cminorgen(const csharp::Module &M);

/// Cminor -> CminorSel: instruction selection — immediate forms,
/// strength reduction (multiply/shift), and fused branch conditions.
std::shared_ptr<cminorsel::Module> selection(const cminor::Module &M);

/// CminorSel -> RTL: construct the control-flow graph, one three-address
/// instruction per node, expressions flattened into pseudo-registers.
std::shared_ptr<rtl::Module> rtlgen(const cminorsel::Module &M);

/// RTL -> RTL: turn call-followed-by-return into tail calls.
std::shared_ptr<rtl::Module> tailcall(const rtl::Module &M);

/// RTL -> RTL: renumber CFG nodes densely in depth-first order, dropping
/// unreachable nodes.
std::shared_ptr<rtl::Module> renumber(const rtl::Module &M);

/// RTL -> RTL (extension pass, not in the Fig. 11 set): intra-procedural
/// constant propagation and branch folding. The paper leaves further
/// optimization passes as future work; this one demonstrates that the
/// validation machinery covers optimizations that remove computations
/// (footprints only shrink, which FPmatch permits).
std::shared_ptr<rtl::Module> constprop(const rtl::Module &M);

/// RTL -> LTL: register allocation by liveness-based graph coloring over
/// the allocatable registers {EBX, ECX, EBP}, spilling to abstract stack
/// slots; call results are pinned to EAX.
std::shared_ptr<ltl::Module> allocation(const rtl::Module &M);

/// LTL -> LTL: shortcut chains of Nop nodes (branch tunneling).
std::shared_ptr<ltl::Module> tunneling(const ltl::Module &M);

/// LTL -> Linear: order the CFG into an instruction list with explicit
/// labels and conditional fall-through.
std::shared_ptr<linear::Module> linearize(const ltl::Module &M);

/// Linear -> Linear: remove labels that no branch references.
std::shared_ptr<linear::Module> cleanupLabels(const linear::Module &M);

/// Linear -> Mach: lay out the stack frame — abstract slots become
/// concrete frame cells allocated from the thread's free list.
std::shared_ptr<mach::Module> stacking(const linear::Module &M);

/// Mach -> x86: emit assembly; two-address fixups via the EAX/EDX
/// scratch registers, argument marshalling into EDI/ESI/EDX, results in
/// EAX.
std::shared_ptr<x86::Module> asmgen(const mach::Module &M);

} // namespace compiler
} // namespace ccc

#endif // CASCC_COMPILER_PASSES_H
