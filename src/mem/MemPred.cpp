//===- mem/MemPred.cpp - Memory and footprint predicates ------------------===//

#include "mem/MemPred.h"

using namespace ccc;

bool ccc::memForward(const Mem &Before, const Mem &After) {
  // dom(Before) subset dom(After): any diff slot allocated only in Before
  // violates it. The diff walk skips pages the two memories share.
  bool Fwd = true;
  Mem::forEachDiff(Before, After,
                   [&Fwd](Addr, const Value *B, const Value *A) {
                     if (B && !A) {
                       Fwd = false;
                       return false;
                     }
                     return true;
                   });
  return Fwd;
}

/// dom(M) restricted to the addresses of \p Set.
static AddrSet domOn(const Mem &M, const AddrSet &Set) {
  AddrSet Out;
  for (Addr A : Set)
    if (M.allocated(A))
      Out.insert(A);
  return Out;
}

/// dom(M1) and dom(M2) agree on the free-list region. Page-aware: only
/// slots where the two memories differ (never slots on shared pages) are
/// consulted, instead of materializing both restricted domains.
static bool domEqOnFreeList(const Mem &M1, const Mem &M2, const FreeList &F) {
  bool Eq = true;
  Mem::forEachDiff(M1, M2, [&](Addr A, const Value *B, const Value *C) {
    if ((B == nullptr) != (C == nullptr) && F.contains(A)) {
      Eq = false;
      return false;
    }
    return true;
  });
  return Eq;
}

bool ccc::lEqPre(const Mem &M1, const Mem &M2, const Footprint &FP,
                 const FreeList &F) {
  if (!M1.eqOn(M2, FP.reads()))
    return false;
  if (domOn(M1, FP.writes()) != domOn(M2, FP.writes()))
    return false;
  return domEqOnFreeList(M1, M2, F);
}

bool ccc::lEqPost(const Mem &M1, const Mem &M2, const Footprint &FP,
                  const FreeList &F) {
  if (!M1.eqOn(M2, FP.writes()))
    return false;
  return domEqOnFreeList(M1, M2, F);
}

bool ccc::lEffect(const Mem &Before, const Mem &After, const Footprint &FP,
                  const FreeList &F) {
  // sigma1 ={dom(sigma1) - ws}= sigma2 and
  // (dom(sigma2) - dom(sigma1)) subset (ws n F), in one diff walk: every
  // slot that changed or vanished must sit inside ws, and every fresh
  // slot inside ws n F.
  bool Ok = true;
  Mem::forEachDiff(Before, After,
                   [&](Addr A, const Value *B, const Value *C) {
                     if (B ? !FP.writes().contains(A)
                           : (!FP.writes().contains(A) || !F.contains(A))) {
                       Ok = false;
                       return false;
                     }
                     (void)C;
                     return true;
                   });
  return Ok;
}

bool ccc::closedOn(const AddrSet &S, const Mem &M) {
  for (Addr A : S) {
    auto V = M.load(A);
    if (!V)
      continue;
    if (V->isPtr() && !S.contains(V->asPtr()))
      return false;
  }
  return true;
}

bool ccc::closedMem(const Mem &M) {
  // closedOn(dom(M), M) without materializing the domain: a pointer value
  // is in-domain iff its target is allocated.
  bool Closed = true;
  M.forEach([&](Addr, const Value &V) {
    if (V.isPtr() && !M.allocated(V.asPtr()))
      Closed = false;
  });
  return Closed;
}

AddrSet Mu::image(const AddrSet &S) const {
  AddrSet Out;
  for (Addr A : S) {
    auto It = F.find(A);
    if (It != F.end())
      Out.insert(It->second);
  }
  return Out;
}

std::optional<Addr> Mu::apply(Addr A) const {
  auto It = F.find(A);
  if (It == F.end())
    return std::nullopt;
  return It->second;
}

std::optional<Value> Mu::applyValue(const Value &V) const {
  if (!V.isPtr())
    return V;
  auto A = apply(V.asPtr());
  if (!A)
    return std::nullopt;
  return Value::makePtr(*A);
}

Mu Mu::identity(const AddrSet &Shared) {
  Mu Out;
  Out.SrcShared = Shared;
  Out.TgtShared = Shared;
  for (Addr A : Shared)
    Out.F[A] = A;
  return Out;
}

bool ccc::wfMu(const Mu &M) {
  // dom(f) = S.
  AddrSet Dom;
  AddrSet Range;
  for (const auto &KV : M.F) {
    Dom.insert(KV.first);
    Range.insert(KV.second);
  }
  if (Dom != M.SrcShared)
    return false;
  // injective(f): range size equals dom size.
  if (Range.size() != Dom.size())
    return false;
  // f{{S}} = TS.
  return Range == M.TgtShared;
}

bool ccc::fpMatch(const Mu &M, const Footprint &Src, const Footprint &Tgt) {
  // delta.rs n mu.TS subset f{{Delta.rs u Delta.ws}}.
  AddrSet SrcTouched = Src.reads();
  SrcTouched.unionWith(Src.writes());
  AddrSet AllowedReads = M.image(SrcTouched);
  if (!Tgt.reads().intersect(M.TgtShared).subsetOf(AllowedReads))
    return false;
  // delta.ws n mu.TS subset f{{Delta.ws}}.
  AddrSet AllowedWrites = M.image(Src.writes());
  return Tgt.writes().intersect(M.TgtShared).subsetOf(AllowedWrites);
}

bool ccc::invRel(const Mu &M, const Mem &Src, const Mem &Tgt) {
  for (const auto &KV : M.F) {
    auto SrcVal = Src.load(KV.first);
    if (!SrcVal)
      continue;
    auto TgtVal = Tgt.load(KV.second);
    if (!TgtVal)
      return false;
    auto Mapped = M.applyValue(*SrcVal);
    if (!Mapped || *Mapped != *TgtVal)
      return false;
  }
  return true;
}

bool ccc::guaranteeHG(const Footprint &FP, const Mem &M, const FreeList &F,
                      const AddrSet &S) {
  return inScope(FP, F, S) && closedOn(S, M);
}

bool ccc::guaranteeLG(const Mu &M, const Footprint &TgtFP, const Mem &TgtMem,
                      const FreeList &TgtF, const Footprint &SrcFP,
                      const Mem &SrcMem) {
  if (!inScope(TgtFP, TgtF, M.TgtShared))
    return false;
  if (!closedOn(M.TgtShared, TgtMem))
    return false;
  if (!fpMatch(M, SrcFP, TgtFP))
    return false;
  return invRel(M, SrcMem, TgtMem);
}

bool ccc::relyR(const Mem &Before, const Mem &After, const FreeList &F,
                const AddrSet &S) {
  // Sigma ={F}= Sigma' (no diff of any kind inside F) and forward
  // (nothing vanishes anywhere), in one page-aware diff walk.
  bool Ok = true;
  Mem::forEachDiff(Before, After,
                   [&](Addr A, const Value *B, const Value *C) {
                     if ((B && !C) || F.contains(A)) {
                       Ok = false;
                       return false;
                     }
                     return true;
                   });
  return Ok && closedOn(S, After);
}

bool ccc::relyRel(const Mu &M, const Mem &SrcBefore, const Mem &SrcAfter,
                  const FreeList &SrcF, const Mem &TgtBefore,
                  const Mem &TgtAfter, const FreeList &TgtF) {
  return relyR(SrcBefore, SrcAfter, SrcF, M.SrcShared) &&
         relyR(TgtBefore, TgtAfter, TgtF, M.TgtShared) &&
         invRel(M, SrcAfter, TgtAfter);
}

bool ccc::inScope(const Footprint &FP, const FreeList &F, const AddrSet &S) {
  for (Addr A : FP.asSet())
    if (!F.contains(A) && !S.contains(A))
      return false;
  return true;
}
