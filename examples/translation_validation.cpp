//===- examples/translation_validation.cpp - Catching a miscompilation -----===//
//
// Uses the footprint-preserving simulation (Defs. 2-3) as a translation
// validator. A plausible-looking but wrong "optimization" — caching a
// shared global in a register across an external call — produces code
// whose sequential traces coincide with the source on many inputs, yet
// the simulation refutes it, exactly because the paper's Rely steps let
// the environment change shared memory at the call.
//
//===----------------------------------------------------------------------===//

#include "clight/ClightLang.h"
#include "core/Semantics.h"
#include "validate/Sim.h"
#include "x86/X86Lang.h"

#include <cstdio>

using namespace ccc;

int main() {
  std::printf("Translation validation with the footprint-preserving "
              "simulation\n");
  std::printf("=============================================================="
              "\n\n");

  // Source: read the shared global g twice, with an external call (to an
  // unknown module — say a lock, a logger, anything) in between.
  const char *Source = R"(
    extern void sync();
    int g = 0;
    void observe() {
      int a;
      int b;
      a = g;
      sync();
      b = g;
      print(a + b);
    }
  )";
  std::printf("source:\n%s\n", Source);

  // A correct hand compilation: reload g after the call.
  const char *GoodAsm = R"(
    .data g 0
    .entry observe 0 0
    .extern sync 0
    observe:
            movl g, %ebx
            call sync
            movl g, %ecx
            movl %ebx, %eax
            addl %ecx, %eax
            printl %eax
            movl $0, %eax
            retl
  )";

  // The "optimized" (wrong) compilation: b = a, assuming g is unchanged
  // across the call — the miscompilation Sec. 2.2 warns about.
  const char *BadAsm = R"(
    .data g 0
    .entry observe 0 0
    .extern sync 0
    observe:
            movl g, %ebx
            call sync
            movl %ebx, %eax
            addl %ebx, %eax
            printl %eax
            movl $0, %eax
            retl
  )";

  Program Src;
  clight::addClightModule(Src, "m", Source);
  Src.link();

  auto check = [&](const char *Name, const char *Asm) {
    Program Tgt;
    x86::addAsmModule(Tgt, "m", Asm, x86::MemModel::SC);
    Tgt.link();
    validate::SimReport R = validate::simCheck(Src, 0, Tgt, 0, "observe",
                                               {});
    std::printf("%-22s : %s%s%s\n", Name,
                R.Holds ? "simulation holds" : "REFUTED",
                R.Holds ? "" : " — ",
                R.Holds ? "" : R.FailReason.c_str());
    return R.Holds;
  };

  bool GoodOk = check("faithful compilation", GoodAsm);
  bool BadOk = check("caching 'optimization'", BadAsm);

  std::printf("\nThe wrong version is indistinguishable in a sequential "
              "run (sync() that\nchanges nothing), but another thread may "
              "write g inside sync(): the\nsimulation's Rely step exposes "
              "it.\n");
  bool Ok = GoodOk && !BadOk;
  std::printf("\n%s\n", Ok ? "All checks passed." : "CHECKS FAILED.");
  return Ok ? 0 : 1;
}
