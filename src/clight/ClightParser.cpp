//===- clight/ClightParser.cpp - Parser for the Clight subset -------------===//

#include "clight/ClightParser.h"

#include "support/Lexer.h"

#include <cstdio>
#include <cstdlib>

using namespace ccc;
using namespace ccc::clight;

namespace {

class Parser {
public:
  Parser(TokenStream Toks, std::string &Error)
      : Toks(std::move(Toks)), Error(Error) {}

  std::shared_ptr<Module> parse() {
    auto M = std::make_shared<Module>();
    Mod = M.get();
    while (!Toks.atEnd()) {
      if (Toks.acceptIdent("extern")) {
        if (!parseExtern())
          return nullptr;
        continue;
      }
      // 'int' ident (';' | '=' | '(') decides global vs function.
      if (Toks.peek().isIdent("int") &&
          Toks.peek(1).is(Token::Kind::Ident) &&
          (Toks.peek(2).isSymbol(";") || Toks.peek(2).isSymbol("="))) {
        if (!parseGlobal())
          return nullptr;
        continue;
      }
      if (!parseFunction())
        return nullptr;
    }
    return M;
  }

private:
  bool fail(const std::string &Msg) {
    Error = "Clight parse error (line " + std::to_string(Toks.line()) +
            "): " + Msg;
    return false;
  }

  bool expect(const std::string &Sym) {
    if (Toks.accept(Sym))
      return true;
    return fail("expected '" + Sym + "', got '" + Toks.peek().Text + "'");
  }

  bool expectIdent(std::string &Out) {
    if (!Toks.peek().is(Token::Kind::Ident))
      return fail("expected identifier, got '" + Toks.peek().Text + "'");
    Out = Toks.next().Text;
    return true;
  }

  bool parseGlobal() {
    Toks.next(); // int
    std::string Name;
    if (!expectIdent(Name))
      return false;
    int64_t Init = 0;
    if (Toks.accept("=")) {
      bool Neg = Toks.accept("-");
      if (!Toks.peek().is(Token::Kind::Int))
        return fail("expected integer initializer");
      Init = Toks.next().IntVal;
      if (Neg)
        Init = -Init;
    }
    if (!expect(";"))
      return false;
    Mod->Globals.emplace_back(Name, static_cast<int32_t>(Init));
    return true;
  }

  bool parseRetTy(Ty &Out) {
    if (Toks.acceptIdent("void")) {
      Out = Ty::Void;
      return true;
    }
    if (Toks.acceptIdent("int")) {
      Out = Ty::Int;
      return true;
    }
    return fail("expected 'int' or 'void'");
  }

  bool parseExtern() {
    Ty Ret;
    std::string Name;
    if (!parseRetTy(Ret) || !expectIdent(Name) || !expect("("))
      return false;
    unsigned Arity = 0;
    if (!Toks.accept(")")) {
      while (true) {
        if (!Toks.acceptIdent("int"))
          return fail("expected parameter type");
        Toks.accept("*");
        // Parameter name is optional in an extern declaration.
        if (Toks.peek().is(Token::Kind::Ident))
          Toks.next();
        ++Arity;
        if (Toks.accept(")"))
          break;
        if (!expect(","))
          return false;
      }
    }
    if (!expect(";"))
      return false;
    Mod->Externs.push_back({Name, Arity});
    return true;
  }

  bool parseParam(VarDecl &Out) {
    if (!Toks.acceptIdent("int"))
      return fail("expected parameter type 'int'");
    Out.Type = Toks.accept("*") ? Ty::IntPtr : Ty::Int;
    return expectIdent(Out.Name);
  }

  bool parseFunction() {
    Function F;
    if (!parseRetTy(F.RetTy) || !expectIdent(F.Name) || !expect("("))
      return false;
    if (!Toks.accept(")")) {
      while (true) {
        VarDecl P;
        if (!parseParam(P))
          return false;
        F.Params.push_back(P);
        if (Toks.accept(")"))
          break;
        if (!expect(","))
          return false;
      }
    }
    if (!expect("{"))
      return false;

    // Local declarations first (C89 style); initializers desugar into
    // assignments at the start of the body.
    Block InitStmts;
    while (Toks.peek().isIdent("int") || Toks.peek().isIdent("int32_t")) {
      Toks.next();
      VarDecl D;
      D.Type = Toks.accept("*") ? Ty::IntPtr : Ty::Int;
      if (!expectIdent(D.Name))
        return false;
      if (Toks.accept("=")) {
        auto S = std::make_unique<Stmt>();
        S->K = Stmt::Kind::AssignVar;
        S->Dst = D.Name;
        S->E1 = parseExpr();
        if (!S->E1)
          return false;
        InitStmts.push_back(std::move(S));
      }
      if (!expect(";"))
        return false;
      F.Locals.push_back(std::move(D));
    }
    for (auto &S : InitStmts)
      F.Body.push_back(std::move(S));
    if (!parseStmts(F.Body, "}"))
      return false;
    Mod->Funcs.push_back(std::move(F));
    return true;
  }

  bool parseStmts(Block &Out, const std::string &Closer) {
    while (!Toks.accept(Closer)) {
      if (Toks.atEnd())
        return fail("unexpected end of input; missing '" + Closer + "'");
      StmtPtr S = parseStmt();
      if (!S)
        return false;
      if (S->K != Stmt::Kind::Skip || true)
        Out.push_back(std::move(S));
    }
    return true;
  }

  StmtPtr parseStmt() {
    auto S = std::make_unique<Stmt>();
    const Token &T = Toks.peek();

    if (T.isSymbol(";")) {
      Toks.next();
      S->K = Stmt::Kind::Skip;
      return S;
    }
    if (T.isIdent("if")) {
      Toks.next();
      S->K = Stmt::Kind::If;
      if (!expect("("))
        return nullptr;
      S->E1 = parseExpr();
      if (!S->E1 || !expect(")") || !expect("{"))
        return nullptr;
      if (!parseStmts(S->Body, "}"))
        return nullptr;
      if (Toks.acceptIdent("else")) {
        if (!expect("{") || !parseStmts(S->Else, "}"))
          return nullptr;
      }
      return S;
    }
    if (T.isIdent("while")) {
      Toks.next();
      S->K = Stmt::Kind::While;
      if (!expect("("))
        return nullptr;
      S->E1 = parseExpr();
      if (!S->E1 || !expect(")") || !expect("{"))
        return nullptr;
      if (!parseStmts(S->Body, "}"))
        return nullptr;
      return S;
    }
    if (T.isIdent("return")) {
      Toks.next();
      S->K = Stmt::Kind::Return;
      if (!Toks.peek().isSymbol(";")) {
        S->E1 = parseExpr();
        if (!S->E1)
          return nullptr;
      }
      if (!expect(";"))
        return nullptr;
      return S;
    }
    if (T.isIdent("print")) {
      Toks.next();
      S->K = Stmt::Kind::Print;
      if (!expect("("))
        return nullptr;
      S->E1 = parseExpr();
      if (!S->E1 || !expect(")") || !expect(";"))
        return nullptr;
      return S;
    }
    if (T.isSymbol("*")) {
      Toks.next();
      S->K = Stmt::Kind::AssignDeref;
      S->E1 = parseUnary();
      if (!S->E1 || !expect("=") || !(S->E2 = parseExpr()) || !expect(";"))
        return nullptr;
      return S;
    }
    if (T.is(Token::Kind::Ident)) {
      std::string Name = Toks.next().Text;
      if (Toks.accept("=")) {
        if (Toks.peek().is(Token::Kind::Ident) &&
            Toks.peek(1).isSymbol("(") && !isBuiltinExprHead()) {
          S->K = Stmt::Kind::Call;
          S->Dst = Name;
          S->Callee = Toks.next().Text;
          if (!parseCallArgs(*S))
            return nullptr;
          return S;
        }
        S->K = Stmt::Kind::AssignVar;
        S->Dst = Name;
        S->E1 = parseExpr();
        if (!S->E1 || !expect(";"))
          return nullptr;
        return S;
      }
      if (Toks.peek().isSymbol("(")) {
        S->K = Stmt::Kind::Call;
        S->Callee = Name;
        if (!parseCallArgs(*S))
          return nullptr;
        return S;
      }
      fail("unexpected identifier '" + Name + "'");
      return nullptr;
    }
    fail("unexpected token '" + T.Text + "'");
    return nullptr;
  }

  /// There are no expression-position builtins taking '('-led syntax other
  /// than calls, so this is always false; kept for clarity.
  bool isBuiltinExprHead() const { return false; }

  bool parseCallArgs(Stmt &S) {
    if (!expect("("))
      return false;
    if (!Toks.accept(")")) {
      while (true) {
        ExprPtr A = parseExpr();
        if (!A)
          return false;
        S.Args.push_back(std::move(A));
        if (Toks.accept(")"))
          break;
        if (!expect(","))
          return false;
      }
    }
    return expect(";");
  }

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (L && Toks.accept("||"))
      L = makeBin(BinOp::Or, std::move(L), parseAnd());
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseCmp();
    while (L && Toks.accept("&&"))
      L = makeBin(BinOp::And, std::move(L), parseCmp());
    return L;
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    while (L) {
      if (Toks.accept("=="))
        L = makeBin(BinOp::Eq, std::move(L), parseAdd());
      else if (Toks.accept("!="))
        L = makeBin(BinOp::Ne, std::move(L), parseAdd());
      else if (Toks.accept("<="))
        L = makeBin(BinOp::Le, std::move(L), parseAdd());
      else if (Toks.accept(">="))
        L = makeBin(BinOp::Ge, std::move(L), parseAdd());
      else if (Toks.accept("<"))
        L = makeBin(BinOp::Lt, std::move(L), parseAdd());
      else if (Toks.accept(">"))
        L = makeBin(BinOp::Gt, std::move(L), parseAdd());
      else
        break;
    }
    return L;
  }

  ExprPtr parseAdd() {
    ExprPtr L = parseMul();
    while (L) {
      if (Toks.accept("+"))
        L = makeBin(BinOp::Add, std::move(L), parseMul());
      else if (Toks.accept("-"))
        L = makeBin(BinOp::Sub, std::move(L), parseMul());
      else
        break;
    }
    return L;
  }

  ExprPtr parseMul() {
    ExprPtr L = parseUnary();
    while (L) {
      if (Toks.accept("*"))
        L = makeBin(BinOp::Mul, std::move(L), parseUnary());
      else if (Toks.accept("/"))
        L = makeBin(BinOp::Div, std::move(L), parseUnary());
      else if (Toks.accept("%"))
        L = makeBin(BinOp::Mod, std::move(L), parseUnary());
      else
        break;
    }
    return L;
  }

  ExprPtr parseUnary() {
    auto mkUn = [this](UnOp U) -> ExprPtr {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Un;
      E->U = U;
      E->L = parseUnary();
      return E->L ? std::move(E) : nullptr;
    };
    if (Toks.accept("-"))
      return mkUn(UnOp::Neg);
    if (Toks.accept("!"))
      return mkUn(UnOp::Not);
    if (Toks.accept("*"))
      return mkUn(UnOp::Deref);
    if (Toks.accept("&")) {
      std::string Name;
      if (!expectIdent(Name))
        return nullptr;
      if (!Mod->isGlobal(Name)) {
        fail("'&' applies to globals only (no stack-pointer escape; "
             "paper footnote 6)");
        return nullptr;
      }
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::AddrOfGlobal;
      E->Name = std::move(Name);
      return E;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token &T = Toks.peek();
    if (T.is(Token::Kind::Int)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::IntLit;
      E->IntVal = static_cast<int32_t>(Toks.next().IntVal);
      return E;
    }
    if (T.is(Token::Kind::Ident)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Var;
      E->Name = Toks.next().Text;
      return E;
    }
    if (Toks.accept("(")) {
      ExprPtr E = parseExpr();
      if (!E || !expect(")"))
        return nullptr;
      return E;
    }
    fail("expected expression, got '" + T.Text + "'");
    return nullptr;
  }

  ExprPtr makeBin(BinOp B, ExprPtr L, ExprPtr R) {
    if (!L || !R)
      return nullptr;
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Bin;
    E->B = B;
    E->L = std::move(L);
    E->R = std::move(R);
    return E;
  }

  TokenStream Toks;
  std::string &Error;
  Module *Mod = nullptr;
};

} // namespace

std::shared_ptr<Module>
ccc::clight::parseModule(const std::string &Source, std::string &Error) {
  static const std::vector<std::string> Symbols = {
      "(",  ")",  "{",  "}",  ";",  ",",  "==", "!=", "<=", ">=",
      "&&", "||", "<",  ">",  "+",  "-",  "*",  "/",  "%",  "!",
      "&",  "="};
  std::vector<Token> Toks;
  if (!tokenize(Source, Symbols, Toks, Error))
    return nullptr;
  Parser P(TokenStream(std::move(Toks)), Error);
  return P.parse();
}

std::shared_ptr<Module>
ccc::clight::parseModuleOrDie(const std::string &Source) {
  std::string Error;
  auto M = parseModule(Source, Error);
  if (!M) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    std::abort();
  }
  return M;
}
