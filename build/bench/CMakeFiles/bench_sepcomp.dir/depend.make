# Empty dependencies file for bench_sepcomp.
# This may be replaced when dependencies are built.
