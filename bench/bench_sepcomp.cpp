//===- bench/bench_sepcomp.cpp - E7: separate compilation (example 2.1) ----===//
//
// Regenerates the separate-compilation scenario of Sec. 2.2 (example 2.1):
// two modules that call across module boundaries are compiled
// independently — S1 by the full pipeline, S2 by the full pipeline in a
// separate run — and the linked target program must preserve the linked
// source's semantics. Additionally each module individually satisfies the
// footprint-preserving simulation against its own compilation.
//
// The compiler may not assume b is still 0 after g(&b) returns: the
// correct output is 3.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "core/Semantics.h"
#include "validate/PassValidator.h"

#include <cstdio>

using namespace ccc;

namespace {
/// Exploration options shared by every run in this binary; Por is set
/// from the --no-por escape hatch in main.
ExploreOptions BaseOpts;
} // namespace

namespace {

const char *S1Source = R"(
  extern void g(int *x);
  int a = 0;
  int b = 0;
  int f() {
    a = 0;
    b = 0;
    g(&b);
    return a + b;
  }
  void main() {
    int r;
    r = f();
    print(r);
  }
)";

const char *S2Source = R"(
  void g(int *x) {
    *x = 3;
  }
)";

} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (!Flags.Por)
    BaseOpts.Por = PorMode::Off;
  std::printf("E7 (Sec. 2.2): separate compilation of interacting modules "
              "(example 2.1)\n\n");
  bool AllGood = true;
  benchtable::JsonLog Log;

  // Compile the two modules independently.
  auto R1 = compiler::compileClightSource(S1Source);
  auto R2 = compiler::compileClightSource(S2Source);

  benchtable::Table T(
      {"configuration", "trace set", "equals source", "states", "ms"});

  auto runLinked = [&](unsigned Stage1, unsigned Stage2,
                       ExploreOptions Opts, ExploreStats *Stats) {
    Program P;
    compiler::addStage(P, R1, Stage1, "S1");
    compiler::addStage(P, R2, Stage2, "S2");
    P.addThread("main");
    P.link();
    return preemptiveTraces(P, Opts, Stats);
  };

  benchtable::Timer Tm0;
  ExploreStats SrcStats;
  TraceSet Src = runLinked(0, 0, BaseOpts, &SrcStats);
  T.addRow({"S1(Clight) o S2(Clight)", Src.toString(), "-",
            std::to_string(SrcStats.States), benchtable::fmtMs(Tm0.ms())});
  Log.add("e7", "{\"config\":\"S1(Clight) o S2(Clight)\",\"explore\":" +
                    SrcStats.toJson() + "}");

  struct Combo {
    const char *Name;
    unsigned St1, St2;
  };
  // Mixed-stage linking exercises cross-language compatibility: target
  // code of one module linked against source or IR code of the other.
  const Combo Combos[] = {
      {"S1(x86) o S2(x86)", 12, 12},
      {"S1(x86) o S2(Clight)", 12, 0},
      {"S1(Clight) o S2(x86)", 0, 12},
      {"S1(RTL) o S2(Mach)", 6, 11},
  };
  for (const Combo &C : Combos) {
    benchtable::Timer Tm;
    ExploreStats Stats;
    TraceSet Tgt = runLinked(C.St1, C.St2, BaseOpts, &Stats);
    RefineResult R = equivTraces(Tgt, Src);
    AllGood = AllGood && R.Holds;
    T.addRow({C.Name, Tgt.toString(), benchtable::yesNo(R.Holds),
              std::to_string(Stats.States), benchtable::fmtMs(Tm.ms())});
    Log.add("e7", "{\"config\":" + benchtable::jsonStr(C.Name) +
                      ",\"equals_source\":" + (R.Holds ? "true" : "false") +
                      ",\"explore\":" + Stats.toJson() + "}");
  }
  T.print();

  // Parallel engine check on the largest E7 state space: every thread
  // count must reproduce the serial trace set bit-for-bit.
  std::printf("\nparallel engine on S1(x86) o S2(x86)\n\n");
  benchtable::Table Tp(
      {"threads", "states", "build ms", "trace ms", "total ms", "identical"});
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ExploreOptions Opts = BaseOpts;
    Opts.Threads = Threads;
    benchtable::Timer Tm;
    ExploreStats Stats;
    TraceSet Tgt = runLinked(12, 12, Opts, &Stats);
    double TotalMs = Tm.ms();
    bool Identical = Tgt == Src;
    AllGood = AllGood && Identical;
    Tp.addRow({std::to_string(Threads), std::to_string(Stats.States),
               benchtable::fmtMs(Stats.BuildMs),
               benchtable::fmtMs(Stats.TraceMs), benchtable::fmtMs(TotalMs),
               benchtable::yesNo(Identical)});
    Log.add("scaling", "{\"threads\":" + std::to_string(Threads) +
                           ",\"total_ms\":" + std::to_string(TotalMs) +
                           ",\"identical\":" +
                           (Identical ? "true" : "false") +
                           ",\"explore\":" + Stats.toJson() + "}");
  }
  Tp.print();

  std::printf("\nper-module simulation (Correct for each SeqComp, "
              "Def. 10/11)\n\n");
  benchtable::Table T2({"module", "passes validated", "ms"});
  for (auto Item : {std::make_pair("S1", &R1), std::make_pair("S2", &R2)}) {
    benchtable::Timer Tm;
    auto Results = validate::validatePipeline(
        *Item.second, validate::defaultSamples(*Item.second->Clight));
    unsigned Ok = 0;
    for (const auto &PR : Results)
      if (PR.Holds)
        ++Ok;
    AllGood = AllGood && Ok == Results.size();
    T2.addRow({Item.first,
               std::to_string(Ok) + "/" + std::to_string(Results.size()),
               benchtable::fmtMs(Tm.ms())});
  }
  T2.print();

  if (!Log.write("BENCH_sepcomp.json"))
    std::printf("\nwarning: could not write BENCH_sepcomp.json\n");
  else
    std::printf("\nmachine-readable stats written to BENCH_sepcomp.json\n");

  std::printf("\nresult: %s — linked targets preserve the linked source "
              "(f returns 3, not 0)\n",
              AllGood ? "PASS" : "FAIL");
  return AllGood ? 0 : 1;
}
