//===- clight/ClightAst.h - The Clight-subset client language ---*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Clight subset in which client threads are written (Sec. 7.1): a
/// C-like structured language with int globals, memory-allocated locals
/// (from the thread's free list, as in CompCert Clight), pointers to
/// globals, external calls to synchronization objects (lock/unlock), and
/// the print intrinsic producing observable events.
///
/// Following the paper's footnote 6, stack-allocated locals may not have
/// their address taken (no cross-module escape of stack pointers):
/// address-of (&) applies to globals only.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CLIGHT_CLIGHTAST_H
#define CASCC_CLIGHT_CLIGHTAST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccc {
namespace clight {

/// The type system: int, int*, and void (function returns only).
enum class Ty : uint8_t { Int, IntPtr, Void };

enum class UnOp { Neg, Not, Deref };
enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

/// An expression. Variable reads access memory (locals live in the
/// thread's free-list region; globals in the shared region).
struct Expr {
  enum class Kind { IntLit, Var, AddrOfGlobal, Un, Bin };

  Kind K = Kind::IntLit;
  int32_t IntVal = 0;
  std::string Name; // Var / AddrOfGlobal
  UnOp U = UnOp::Neg;
  BinOp B = BinOp::Add;
  std::unique_ptr<Expr> L, R;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

/// A statement.
struct Stmt {
  enum class Kind {
    Skip,
    AssignVar,   ///< Name = E1
    AssignDeref, ///< *E1 = E2
    If,          ///< if (E1) Body else Else
    While,       ///< while (E1) Body
    Call,        ///< [Dst =] Callee(Args)
    Return,      ///< return [E1]
    Print,       ///< print(E1)
  };

  Kind K = Stmt::Kind::Skip;
  std::string Dst; // AssignVar / Call result
  ExprPtr E1, E2;
  Block Body, Else;
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// A local or parameter declaration.
struct VarDecl {
  std::string Name;
  Ty Type = Ty::Int;
};

/// A function definition.
struct Function {
  std::string Name;
  Ty RetTy = Ty::Void;
  std::vector<VarDecl> Params;
  std::vector<VarDecl> Locals;
  Block Body;

  unsigned numSlots() const {
    return static_cast<unsigned>(Params.size() + Locals.size());
  }
};

/// An external function declaration (arity only; used for call checking).
struct ExternDecl {
  std::string Name;
  unsigned Arity = 0;
};

/// A Clight module.
struct Module {
  std::vector<std::pair<std::string, int32_t>> Globals;
  std::vector<ExternDecl> Externs;
  std::vector<Function> Funcs;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  bool isGlobal(const std::string &Name) const {
    for (const auto &G : Globals)
      if (G.first == Name)
        return true;
    return false;
  }
};

} // namespace clight
} // namespace ccc

#endif // CASCC_CLIGHT_CLIGHTAST_H
