//===- clight/ClightParser.h - Parser for the Clight subset -----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser and light type checker for the Clight subset.
///
/// Grammar sketch:
///   module    := { 'int' ident ['=' ['-'] int] ';'        (global)
///               | 'extern' rettype ident '(' [ptypes] ')' ';'
///               | rettype ident '(' [params] ')' body }
///   body      := '{' {localdecl} {stmt} '}'
///   localdecl := 'int' ['*'] ident ['=' expr] ';'
///   stmt      := ident '=' expr ';' | ident '=' ident '(' args ')' ';'
///             | '*' unary '=' expr ';' | ident '(' args ')' ';'
///             | 'if' '(' expr ')' block ['else' block]
///             | 'while' '(' expr ')' block
///             | 'return' [expr] ';' | 'print' '(' expr ')' ';' | ';'
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CLIGHT_CLIGHTPARSER_H
#define CASCC_CLIGHT_CLIGHTPARSER_H

#include "clight/ClightAst.h"

#include <memory>
#include <string>

namespace ccc {
namespace clight {

/// Parses Clight source text; returns null and sets \p Error on failure.
std::shared_ptr<Module> parseModule(const std::string &Source,
                                    std::string &Error);

/// Parses or aborts; convenience for tests and examples.
std::shared_ptr<Module> parseModuleOrDie(const std::string &Source);

} // namespace clight
} // namespace ccc

#endif // CASCC_CLIGHT_CLIGHTPARSER_H
