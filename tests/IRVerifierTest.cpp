//===- tests/IRVerifierTest.cpp - Per-IR structural verifiers --------------===//
//
// The LLVM-verifier-style structural checks (analysis/IRVerifier.h):
// every stage produced by the 13-stage pipeline on the compile suite must
// verify cleanly, and hand-mutated malformed modules (dangling CFG
// successors, out-of-bounds registers, undefined labels, bad operator
// arity, broken calling convention, unresolved callees) must be rejected
// with a diagnostic naming the offense.
//
//===----------------------------------------------------------------------===//

#include "analysis/IRVerifier.h"
#include "compiler/Compiler.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::analysis;

namespace {

/// The compile suite: the same client shapes the pipeline tests sweep.
const char *const Suite[] = {
    "int g = 2; void main() { int a = 5; g = g * a; print(g + a); }",
    "void main() { int a = 4; if (a % 2 == 0) { print(a); } else { "
    "print(-a); } while (a > 0) { a = a - 1; } print(a); }",
    "int dbl(int x) { return x + x; } void main() { int v; v = dbl(8); "
    "print(v); }",
    "extern void lock(); extern void unlock(); int x = 0; void main() { "
    "lock(); x = x + 1; unlock(); print(x); }",
};

TEST(IRVerifier, AcceptsAllStagesOfTheCompileSuite) {
  for (const char *Source : Suite) {
    SCOPED_TRACE(Source);
    compiler::CompileResult R = compiler::compileClightSource(Source);
    EXPECT_TRUE(R.VerifyErrors.empty())
        << "compileClight self-check: " << R.VerifyErrors.front();
    std::vector<VerifyResult> All = verifyPipeline(R);
    ASSERT_EQ(All.size(), compiler::numStages());
    for (const VerifyResult &VR : All)
      EXPECT_TRUE(VR.ok()) << VR.toString();
  }
}

TEST(IRVerifier, AcceptsTheFig10cClient) {
  compiler::CompileResult R =
      compiler::compileClightSource(workload::fig10cClientSource());
  EXPECT_TRUE(R.VerifyErrors.empty());
  for (const VerifyResult &VR : verifyPipeline(R))
    EXPECT_TRUE(VR.ok()) << VR.toString();
}

// --- seeded malformed-IR mutations ---------------------------------------

compiler::CompileResult compileFirst() {
  return compiler::compileClightSource(Suite[0]);
}

TEST(IRVerifier, RejectsDanglingCfgSuccessor) {
  compiler::CompileResult R = compileFirst();
  rtl::Module M = *R.RTL;
  ASSERT_FALSE(M.Funcs.empty());
  ASSERT_FALSE(M.Funcs[0].Graph.empty());
  M.Funcs[0].Graph.begin()->second.S1 = 999999;
  VerifyResult VR = verifyRTL(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("successor"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsOutOfBoundsPseudoRegister) {
  compiler::CompileResult R = compileFirst();
  rtl::Module M = *R.RTL;
  for (auto &NodeInstr : M.Funcs[0].Graph) {
    if (NodeInstr.second.K == rtl::Instr::Kind::Op &&
        NodeInstr.second.HasDst) {
      NodeInstr.second.Dst = M.Funcs[0].NumRegs + 7;
      break;
    }
  }
  VerifyResult VR = verifyRTL(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("out of bounds"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsWrongOperatorArity) {
  compiler::CompileResult R = compileFirst();
  rtl::Module M = *R.RTL;
  bool Mutated = false;
  for (auto &NodeInstr : M.Funcs[0].Graph) {
    if (NodeInstr.second.K == rtl::Instr::Kind::Op &&
        ir::operArity(NodeInstr.second.O) > 0) {
      NodeInstr.second.Args.clear(); // semantics would index Args[0]: UB
      Mutated = true;
      break;
    }
  }
  ASSERT_TRUE(Mutated);
  VerifyResult VR = verifyRTL(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("argument"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsNonAllocatableRegisterInLTL) {
  compiler::CompileResult R = compileFirst();
  ltl::Module M = *R.LTL;
  bool Mutated = false;
  for (auto &NodeInstr : M.Funcs[0].Graph) {
    if (NodeInstr.second.K == ltl::Instr::Kind::Op &&
        NodeInstr.second.HasDst) {
      // ESP is the frame pointer; the allocator must never hand it out.
      NodeInstr.second.Dst = ltl::Loc::reg(x86::Reg::ESP);
      Mutated = true;
      break;
    }
  }
  ASSERT_TRUE(Mutated);
  VerifyResult VR = verifyLTL(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("allocatable"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsUndefinedLinearLabel) {
  compiler::CompileResult R = compileFirst();
  linear::Module M = *R.LinearClean;
  linear::Instr Goto;
  Goto.K = linear::Instr::Kind::Goto;
  Goto.Label = 424242;
  M.Funcs[0].Code.push_back(Goto);
  VerifyResult VR = verifyLinear(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("undefined label"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsCallResultNotPinnedToEAX) {
  compiler::CompileResult R = compiler::compileClightSource(Suite[2]);
  ltl::Module M = *R.LTL;
  bool Mutated = false;
  for (auto &F : M.Funcs) {
    for (auto &NodeInstr : F.Graph) {
      if (NodeInstr.second.K == ltl::Instr::Kind::Call &&
          NodeInstr.second.HasDst) {
        NodeInstr.second.Dst = ltl::Loc::reg(x86::Reg::EBX);
        Mutated = true;
        break;
      }
    }
  }
  ASSERT_TRUE(Mutated);
  VerifyResult VR = verifyLTL(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("EAX"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsJumpToMissingX86Label) {
  compiler::CompileResult R = compileFirst();
  x86::Module M = *R.Asm;
  x86::Instr J;
  J.K = x86::Instr::Kind::Jmp;
  J.Name = "no_such_label";
  M.Code.push_back(J);
  VerifyResult VR = verifyX86(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("undefined label"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsUnknownX86Callee) {
  compiler::CompileResult R = compileFirst();
  x86::Module M = *R.Asm;
  x86::Instr Call;
  Call.K = x86::Instr::Kind::Call;
  Call.Name = "mystery_fn";
  M.Code.push_back(Call);
  VerifyResult VR = verifyX86(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("mystery_fn"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, RejectsUndeclaredGlobalReference) {
  compiler::CompileResult R = compileFirst();
  rtl::Module M = *R.RTL;
  bool Mutated = false;
  for (auto &NodeInstr : M.Funcs[0].Graph) {
    if (NodeInstr.second.K == rtl::Instr::Kind::Load &&
        NodeInstr.second.AM.K == rtl::AddrMode<rtl::Reg>::Kind::Global) {
      NodeInstr.second.AM.Global = "phantom";
      Mutated = true;
      break;
    }
  }
  ASSERT_TRUE(Mutated);
  VerifyResult VR = verifyRTL(M);
  ASSERT_FALSE(VR.ok());
  EXPECT_NE(VR.Errors.front().find("phantom"), std::string::npos)
      << VR.toString();
}

TEST(IRVerifier, MalformedStageFailsPipelineValidationFast) {
  // End-to-end wiring: PassValidator must reject a malformed pass output
  // via the verifier, before any simulation checking.
  compiler::CompileResult R = compileFirst();
  R.RTLRenumber = std::make_shared<rtl::Module>(*R.RTLRenumber);
  R.RTLRenumber->Funcs[0].Graph.begin()->second.S1 = 777777;
  VerifyResult VR = verifyStage(R, 6);
  ASSERT_FALSE(VR.ok());
}

} // namespace
