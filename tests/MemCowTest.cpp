//===- tests/MemCowTest.cpp - COW paged memory tests -----------------------===//
//
// Tests of the copy-on-write paged Mem representation: a randomized
// differential check against a reference std::map model, snapshot
// isolation (child writes never leak into parent pages), maintained-hash
// invariants, and forced hash collisions routed through the Explorer's
// compact intern records.
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "mem/Mem.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace ccc;

namespace {

/// The pre-refactor reference semantics: a plain ordered map.
struct ModelMem {
  std::map<Addr, Value> Data;

  std::optional<Value> load(Addr A) const {
    auto It = Data.find(A);
    if (It == Data.end())
      return std::nullopt;
    return It->second;
  }
  bool store(Addr A, const Value &V) {
    auto It = Data.find(A);
    if (It == Data.end())
      return false;
    It->second = V;
    return true;
  }
  bool alloc(Addr A, const Value &Init) {
    return Data.emplace(A, Init).second;
  }
  bool eqOn(const ModelMem &Other, const AddrSet &Set) const {
    for (Addr A : Set) {
      auto L = load(A), R = Other.load(A);
      if (L.has_value() != R.has_value())
        return false;
      if (L && *L != *R)
        return false;
    }
    return true;
  }
  std::string key() const {
    std::string B;
    for (const auto &KV : Data)
      B += std::to_string(static_cast<uint64_t>(KV.first)) + '=' +
           KV.second.toString() + ';';
    return B;
  }
};

Value randomValue(std::mt19937 &Rng) {
  switch (Rng() % 3) {
  case 0:
    return Value::makeUndef();
  case 1:
    return Value::makeInt(static_cast<int32_t>(Rng() % 1000) - 500);
  default:
    return Value::makePtr(static_cast<Addr>(Rng() % 512));
  }
}

/// Addresses drawn from a few distinct pages plus a sparse far region, so
/// the walk exercises page boundaries, page creation, and the sorted
/// page-vector search.
Addr randomAddr(std::mt19937 &Rng) {
  if (Rng() % 8 == 0)
    return 0x100000 + static_cast<Addr>(Rng() % 96);
  return static_cast<Addr>(Rng() % 512);
}

} // namespace

TEST(MemCow, RandomizedDifferentialVsMapModel) {
  std::mt19937 Rng(0xC0FFEE);
  Mem M;
  ModelMem Ref;
  // Snapshots taken along the way; each pair must stay bit-identical to
  // its model forever (persistence).
  std::vector<std::pair<Mem, ModelMem>> Snaps;

  for (int Op = 0; Op < 10000; ++Op) {
    const Addr A = randomAddr(Rng);
    switch (Rng() % 5) {
    case 0: {
      const Value V = randomValue(Rng);
      EXPECT_EQ(M.alloc(A, V), Ref.alloc(A, V));
      break;
    }
    case 1: {
      const Value V = randomValue(Rng);
      EXPECT_EQ(M.store(A, V), Ref.store(A, V));
      break;
    }
    case 2: {
      auto L = M.load(A), R = Ref.load(A);
      EXPECT_EQ(L.has_value(), R.has_value());
      if (L && R) {
        EXPECT_EQ(*L, *R);
      }
      break;
    }
    case 3: {
      AddrSet Set{A, randomAddr(Rng), randomAddr(Rng)};
      if (!Snaps.empty()) {
        const auto &S = Snaps[Rng() % Snaps.size()];
        EXPECT_EQ(M.eqOn(S.first, Set), Ref.eqOn(S.second, Set));
      }
      break;
    }
    default:
      if (Snaps.size() < 32)
        Snaps.emplace_back(M, Ref);
      break;
    }
    if (Op % 1000 == 0) {
      ASSERT_EQ(M.key(), Ref.key()) << "divergence at op " << Op;
      ASSERT_EQ(M.domSize(), Ref.Data.size());
    }
  }
  EXPECT_EQ(M.key(), Ref.key());
  for (const auto &S : Snaps)
    EXPECT_EQ(S.first.key(), S.second.key());
}

TEST(MemCow, HashIsContentDetermined) {
  // Same contents reached through different mutation orders must agree on
  // hashKey() (the XOR-fold is order-independent) and on key().
  std::mt19937 Rng(42);
  std::vector<std::pair<Addr, Value>> Cells;
  for (int I = 0; I < 200; ++I)
    Cells.emplace_back(randomAddr(Rng), randomValue(Rng));

  Mem Fwd, Rev;
  for (const auto &C : Cells)
    Fwd.allocFrame(C.first, C.second);
  for (auto It = Cells.rbegin(); It != Cells.rend(); ++It) {
    // Reverse order keeps the FIRST occurrence of a duplicate address in
    // Rev, so overwrite duplicates to the forward-order winner after.
    Rev.allocFrame(It->first, It->second);
  }
  for (const auto &C : Cells)
    ASSERT_TRUE(Rev.store(C.first, C.second));

  EXPECT_EQ(Fwd.key(), Rev.key());
  EXPECT_EQ(Fwd.hashKey(), Rev.hashKey());
  EXPECT_TRUE(Fwd == Rev);

  // A store that changes a value changes the hash, and storing the old
  // value back restores it exactly.
  const uint64_t H0 = Fwd.hashKey();
  const Value Old = *Fwd.load(Cells[0].first);
  ASSERT_TRUE(Fwd.store(Cells[0].first, Value::makeInt(123456)));
  EXPECT_NE(Fwd.hashKey(), H0);
  ASSERT_TRUE(Fwd.store(Cells[0].first, Old));
  EXPECT_EQ(Fwd.hashKey(), H0);
}

TEST(MemCow, SnapshotIsolation) {
  Mem Parent;
  for (Addr A = 0; A < 128; ++A)
    ASSERT_TRUE(Parent.alloc(A, Value::makeInt(static_cast<int32_t>(A))));
  const std::string ParentKey = Parent.key();
  const uint64_t ParentHash = Parent.hashKey();

  Mem Child = Parent;
  // Freshly copied: every page is shared.
  EXPECT_TRUE(Child.sharesPageWith(Parent, 0));
  EXPECT_TRUE(Child.sharesPageWith(Parent, 127));

  // A child write clones only the touched page; the sibling page stays
  // shared and the parent sees nothing.
  ASSERT_TRUE(Child.store(3, Value::makeInt(999)));
  EXPECT_FALSE(Child.sharesPageWith(Parent, 3));
  EXPECT_TRUE(Child.sharesPageWith(Parent, 127));
  EXPECT_EQ(Parent.load(3)->asInt(), 3);
  EXPECT_EQ(Child.load(3)->asInt(), 999);
  EXPECT_EQ(Parent.key(), ParentKey);
  EXPECT_EQ(Parent.hashKey(), ParentHash);

  // A child allocation in a fresh page leaves the parent's page vector
  // untouched.
  ASSERT_TRUE(Child.alloc(0x100000, Value::makeInt(7)));
  EXPECT_FALSE(Parent.allocated(0x100000));
  EXPECT_EQ(Parent.key(), ParentKey);

  // eqOn over shared pages takes the pointer-equality fast path and must
  // still be correct on the cloned page.
  AddrSet All;
  for (Addr A = 0; A < 128; ++A)
    All.insert(A);
  EXPECT_FALSE(Parent.eqOn(Child, All));
  EXPECT_TRUE(Parent.eqOn(Child, All.minus(AddrSet{3})));
}

TEST(MemCow, ForcedHashCollisionsThroughCompactInternRecords) {
  // DebugHashBits=2 leaves four possible hashes, so almost every intern
  // probe hits a populated bucket and must disambiguate through the
  // compact records (residue string + structural Mem comparison). The
  // graph must be bit-identical to the full-hash run.
  Program P = workload::lockedCounter(2, 1, 0);

  ExploreOptions Full;
  Explorer<World> EF(Full);
  EF.build(World::load(P, 0));

  ExploreOptions Collide;
  Collide.DebugHashBits = 2;
  Explorer<World> EC(Collide);
  EC.build(World::load(P, 0));

  EXPECT_GT(EC.stats().HashCollisions, 0u);
  ASSERT_EQ(EC.numStates(), EF.numStates());
  for (std::size_t I = 0; I < EF.numStates(); ++I)
    ASSERT_EQ(EC.world(I).key(), EF.world(I).key()) << "node " << I;

  std::vector<std::tuple<unsigned, unsigned, int, int64_t>> EdgesF, EdgesC;
  EF.forEachEdge([&](unsigned F, unsigned T, GLabel::Kind K, int64_t Ev) {
    EdgesF.emplace_back(F, T, static_cast<int>(K), Ev);
  });
  EC.forEachEdge([&](unsigned F, unsigned T, GLabel::Kind K, int64_t Ev) {
    EdgesC.emplace_back(F, T, static_cast<int>(K), Ev);
  });
  EXPECT_EQ(EdgesF, EdgesC);
  EXPECT_EQ(EF.traces().toString(), EC.traces().toString());
}
