//===- analysis/TsoRobust.h - TSO aliases for Robustness.h ------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deprecated TSO-only spellings of the model-generic robustness API.
/// The analysis itself moved to analysis/Robustness.h when the memory
/// model axis became program-level (MemModel::Relaxed joined SC/TSO);
/// these aliases keep pre-existing clients compiling unchanged. New code
/// should include analysis/Robustness.h and pass the model explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_TSOROBUST_H
#define CASCC_ANALYSIS_TSOROBUST_H

#include "analysis/Robustness.h"

namespace ccc {
namespace analysis {

using TsoVerdict = RobustVerdict;
using TsoModuleContext = RobustContext;
using TsoRobustReport = RobustReport;
using ModuleTsoInfo = ModuleRobustInfo;
using ProgramTsoReport = ProgramRobustReport;

inline const char *tsoVerdictName(RobustVerdict V) {
  return robustVerdictName(V);
}

/// robustness() against the TSO reorder table.
inline RobustReport tsoRobustness(const x86::Module &M,
                                  const RobustContext *Ctx = nullptr) {
  return robustness(M, Ctx, MemModel::TSO);
}

inline std::map<std::string, RobustContext>
tsoModuleContexts(const Program &P) {
  return robustContexts(P);
}

inline ProgramRobustReport programTsoRobustness(const Program &P) {
  return programRobustness(P);
}

inline unsigned applyScFastPath(Program &P, const ProgramRobustReport &R) {
  return switchRobustToSc(P, R);
}

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_TSOROBUST_H
