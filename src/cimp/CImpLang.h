//===- cimp/CImpLang.h - CImp instantiation of the framework ----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CImp instantiation of the abstract module language (Sec. 7.1):
/// footprint-instrumented small-step semantics with atomic blocks mapping
/// to EntAtom/ExtAtom messages. In object mode the module may only access
/// its own (object-owned) globals, modeling the permission discipline that
/// partitions client data from object data; access outside aborts.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CIMP_CIMPLANG_H
#define CASCC_CIMP_CIMPLANG_H

#include "cimp/CImpAst.h"
#include "core/ModuleLang.h"
#include "core/Program.h"

#include <memory>

namespace ccc {
namespace cimp {

/// CImp as a ModuleLang.
class CImpLang : public ModuleLang {
public:
  /// \p ObjectMode restricts memory accesses to the module's own globals
  /// (Sec. 7.1's None-permission discipline for object code).
  CImpLang(std::shared_ptr<const Module> M, bool ObjectMode = false);
  ~CImpLang() override;

  std::string name() const override { return "CImp"; }

  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;

  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;

  CoreRef applyReturn(const Core &C, const Value &V) const override;

  /// POR points: one token per pending statement on the continuation
  /// stack (atomic-end and pending-return markers have no effect and are
  /// skipped). Tokens are Stmt pointers into module().
  bool porPoints(const FreeList &F, const Core &C, std::vector<PorPoint> &Out,
                 EffectSummary &Extra) const override;

  const Module &module() const { return *Mod; }
  bool objectMode() const { return ObjectMode; }

private:
  std::shared_ptr<const Module> Mod;
  bool ObjectMode;
};

/// Registers a CImp module parsed from \p Source with \p P. Globals are
/// tagged DataOwner::Object when \p ObjectMode. Returns the module index.
unsigned addCImpModule(Program &P, const std::string &Name,
                       const std::string &Source, bool ObjectMode = false);

} // namespace cimp
} // namespace ccc

#endif // CASCC_CIMP_CIMPLANG_H
