//===- support/Hashing.h - Hash combining utilities -------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining helpers used by canonical state keys.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_SUPPORT_HASHING_H
#define CASCC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace ccc {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style).
inline void hashCombine(std::size_t &Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes any standard-hashable value into \p Seed.
template <typename T> void hashCombineValue(std::size_t &Seed, const T &V) {
  hashCombine(Seed, std::hash<T>{}(V));
}

} // namespace ccc

#endif // CASCC_SUPPORT_HASHING_H
