//===- sync/LockLib.h - The synchronization object library ------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock object of Fig. 10: the abstract CImp specification gamma_lock
/// (Fig. 10a) and, once the x86-TSO backend is linked in, the efficient
/// TTAS implementation pi_lock (Fig. 10b). Threads written in client
/// languages synchronize by calling the external entries lock() and
/// unlock().
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_SYNC_LOCKLIB_H
#define CASCC_SYNC_LOCKLIB_H

#include "core/Program.h"
#include "x86/X86Lang.h"

#include <string>

namespace ccc {
namespace sync {

/// CImp source of the abstract lock specification gamma_lock (Fig. 10a).
/// The lock bit L is 1 when free; lock() atomically tests-and-clears it in
/// a spin loop; unlock() asserts the lock is held and sets it back to 1.
const std::string &gammaLockSource();

/// x86 source of the efficient TTAS lock implementation pi_lock
/// (Fig. 10b): a lock-prefixed cmpxchg acquire with an unfenced spin read,
/// and a plain (racy, benign) store release.
const std::string &piLockSource();

/// pi_lock with an mfence after the release store: semantically
/// equivalent (the model's ret drains the buffer anyway) but certifiable
/// by the static TSO robustness pass, which credits only mfence and
/// lock-prefixed instructions as drain points.
const std::string &piLockFencedSource();

/// Registers gamma_lock as an object module named "lockspec"; returns the
/// module index.
unsigned addGammaLock(Program &P);

/// Registers pi_lock (Fig. 10b) as an x86 object module named "lockimpl"
/// under the given memory model; returns the module index.
unsigned addPiLock(Program &P, x86::MemModel Model);

/// Registers the fenced pi_lock variant as an x86 object module named
/// "lockimpl"; returns the module index.
unsigned addPiLockFenced(Program &P, x86::MemModel Model);

/// pi_lock with the spin loop expressed as a recursive retry call and the
/// release store flushed through a recursive same-module helper: the
/// store is pending across `call rflush`, so certifying it requires the
/// robustness pass to close the recursive call group into a real summary
/// (every rflush path ends in an mfence) instead of degrading the
/// back-edge to a boundary escape.
const std::string &piLockRecursiveSource();

/// Registers the recursive pi_lock variant as an x86 object module named
/// "lockimpl" under the given memory model; returns the module index.
unsigned addPiLockRecursive(Program &P, x86::MemModel Model);

/// The recursive pi_lock variant with the flush helper's mfence removed:
/// the release store now escapes unlock's ret with no drain anywhere in
/// the recursive call group, so the module is NotRobust — the repair
/// target that exercises fence synthesis *through* the recursive-summary
/// fixpoint (the synthesized fence must re-certify via the closed call
/// group, and the hand-fenced piLockRecursiveSource is its one-fence
/// reference placement).
const std::string &piLockRecursiveUnfencedSource();

/// Registers the unfenced recursive pi_lock variant as an x86 object
/// module named "lockimpl"; returns the module index.
unsigned addPiLockRecursiveUnfenced(Program &P, x86::MemModel Model);

} // namespace sync
} // namespace ccc

#endif // CASCC_SYNC_LOCKLIB_H
