//===- validate/Sim.cpp - The footprint-preserving simulation --------------===//

#include "validate/Sim.h"

#include "mem/MemPred.h"

#include <map>

using namespace ccc;
using namespace ccc::validate;

namespace {

struct Cfg {
  CoreRef C;
  Mem M;
};

enum class MemoState { InProgress, True, False };

class SimChecker {
public:
  SimChecker(const Program &Src, unsigned SrcMod, const Program &Tgt,
             unsigned TgtMod, SimOptions Opts)
      : SrcLang(*Src.module(SrcMod).Lang), TgtLang(*Tgt.module(TgtMod).Lang),
        SrcF(Src.threadRegion(0).subRegion(0, Program::FrameRegionSize)),
        TgtF(Tgt.threadRegion(0).subRegion(0, Program::FrameRegionSize)),
        MuRel(Mu::identity(Src.sharedAddrs())), Opts(Opts) {
    LayoutOk = Src.sharedAddrs() == Tgt.sharedAddrs();
  }

  SimReport run(const Program &Src, const Program &Tgt,
                const std::string &Entry, const std::vector<Value> &Args) {
    SimReport R;
    if (!LayoutOk) {
      R.FailReason = "source/target global layouts differ (phi != id)";
      return R;
    }
    CoreRef SC = SrcLang.initCore(Entry, Args);
    CoreRef TC = TgtLang.initCore(Entry, Args);
    if (!SC || !TC) {
      R.FailReason = !SC ? "source InitCore failed" : "target InitCore failed";
      return R;
    }
    Cfg S{SC, Src.initialMem()};
    Cfg T{TC, Tgt.initialMem()};
    if (!invRel(MuRel, S.M, T.M)) {
      R.FailReason = "initial memories not Inv-related";
      return R;
    }
    bool Ok = canSim(S, T, Footprint::emp(), Footprint::emp(),
                     Opts.MaxStutter);
    R.Holds = Ok;
    R.ProductStates = static_cast<unsigned>(Memo.size());
    R.Obligations = Obligations;
    R.VacuousBranches = Vacuous;
    if (!Ok)
      R.FailReason = FailReason.empty() ? "simulation refuted" : FailReason;
    return R;
  }

private:
  std::string cfgKey(const Cfg &S, const Cfg &T, const Footprint &DS,
                     const Footprint &DT, unsigned Budget) const {
    return S.C->key() + "#" + S.M.key() + "|" + T.C->key() + "#" +
           T.M.key() + "|" + DS.toString() + DT.toString() + "|" +
           std::to_string(Budget);
  }

  void fail(const std::string &Why) {
    if (FailReason.empty())
      FailReason = Why;
  }

  /// Rely-compatible environment variants applied consistently to both
  /// memories (mu.f = id, so Inv is preserved by construction).
  std::vector<std::pair<Mem, Mem>> relyVariants(const Mem &SM,
                                                const Mem &TM) const {
    std::vector<std::pair<Mem, Mem>> Out;
    Out.emplace_back(SM, TM);
    for (Addr A : MuRel.SrcShared) {
      if (Out.size() > Opts.RelySamples)
        break;
      auto V = SM.load(A);
      if (!V || !V->isInt())
        continue;
      Mem SM2 = SM, TM2 = TM;
      Value NV = Value::makeInt(V->asInt() + 1);
      SM2.store(A, NV);
      TM2.store(A, NV);
      Out.emplace_back(std::move(SM2), std::move(TM2));
    }
    return Out;
  }

  /// The coinductive core of Def. 3.
  bool canSim(const Cfg &S, const Cfg &T, const Footprint &DS,
              const Footprint &DT, unsigned Budget) {
    if (Memo.size() >= Opts.MaxStates) {
      fail("product state bound exceeded");
      return false;
    }
    std::string Key = cfgKey(S, T, DS, DT, Budget);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second != MemoState::False;
    Memo[Key] = MemoState::InProgress;

    bool Ok = checkAllSourceSteps(S, T, DS, DT, Budget);
    Memo[Key] = Ok ? MemoState::True : MemoState::False;
    return Ok;
  }

  bool checkAllSourceSteps(const Cfg &S, const Cfg &T, const Footprint &DS,
                           const Footprint &DT, unsigned Budget) {
    auto Steps = SrcLang.step(SrcF, *S.C, S.M);
    if (Steps.empty()) {
      // Stuck source: outside Safe(P); vacuously simulated.
      ++Vacuous;
      return true;
    }
    for (const LocalStep &St : Steps) {
      if (St.Abort) {
        ++Vacuous; // source aborts: Def. 11 assumes Safe sources
        continue;
      }
      ++Obligations;
      if (!matchSourceStep(S, T, DS, DT, Budget, St))
        return false;
    }
    return true;
  }

  bool matchSourceStep(const Cfg &S, const Cfg &T, const Footprint &DS,
                       const Footprint &DT, unsigned Budget,
                       const LocalStep &St) {
    Footprint DS2 = DS.unioned(St.FP);
    Cfg SNext{St.Next, St.NextMem};

    if (St.M.isTau()) {
      // Case 1. Premise: accumulated source footprint in scope.
      if (!inScope(DS2, SrcF, MuRel.SrcShared)) {
        ++Vacuous;
        return true;
      }
      // 1-a: stutter with a decreasing index.
      if (Budget > 0 && canSim(SNext, T, DS2, DT, Budget - 1))
        return true;
      // 1-b: the target advances by tau+.
      Cfg TCur = T;
      Footprint DT2 = DT;
      for (unsigned N = 1; N <= Opts.MaxTargetSteps; ++N) {
        auto TSteps = TgtLang.step(TgtF, *TCur.C, TCur.M);
        if (TSteps.size() != 1 || TSteps[0].Abort ||
            !TSteps[0].M.isTau())
          break; // target stuck/non-silent/non-deterministic: stop
        DT2.unionWith(TSteps[0].FP);
        TCur = Cfg{TSteps[0].Next, TSteps[0].NextMem};
        if (!inScope(DT2, TgtF, MuRel.TgtShared) ||
            !fpMatch(MuRel, DS2, DT2))
          continue; // footprints not yet matched; let target continue
        if (canSim(SNext, TCur, DS2, DT2, Opts.MaxStutter))
          return true;
      }
      fail("no target answer for source tau step at " + S.C->key());
      return false;
    }

    // Case 2: non-silent source step. Premise: HG at the source.
    if (!guaranteeHG(DS2, St.NextMem, SrcF, MuRel.SrcShared)) {
      ++Vacuous;
      return true;
    }
    // Target: tau* then the same message.
    Cfg TCur = T;
    Footprint DT2 = DT;
    for (unsigned N = 0; N <= Opts.MaxTargetSteps; ++N) {
      auto TSteps = TgtLang.step(TgtF, *TCur.C, TCur.M);
      if (TSteps.size() != 1 || TSteps[0].Abort)
        break;
      const LocalStep &TS = TSteps[0];
      if (TS.M.isTau()) {
        DT2.unionWith(TS.FP);
        TCur = Cfg{TS.Next, TS.NextMem};
        continue;
      }
      if (!sameMsg(St.M, TS.M)) {
        fail("message mismatch: source " + St.M.toString() + " vs target " +
             TS.M.toString());
        return false;
      }
      DT2.unionWith(TS.FP);
      Cfg TNext{TS.Next, TS.NextMem};
      // LG: scope, closedness, FPmatch, Inv.
      if (!guaranteeLG(MuRel, DT2, TNext.M, TgtF, DS2, SNext.M)) {
        fail("LG violated after " + St.M.toString() + ": src fp " +
             DS2.toString() + " tgt fp " + DT2.toString());
        return false;
      }
      return continueAfterSwitch(SNext, TNext, St.M);
    }
    fail("target cannot emit " + St.M.toString());
    return false;
  }

  /// Case 2 continuation: after the switch point, re-establish the
  /// relation with cleared footprints under Rely interference.
  bool continueAfterSwitch(const Cfg &S, const Cfg &T, const Msg &M) {
    switch (M.K) {
    case Msg::Kind::Ret:
    case Msg::Kind::TailCall:
      // Control leaves the module for good: this invocation is simulated.
      return true;
    case Msg::Kind::ExtCall: {
      for (const Value &RV : Opts.RetSamples) {
        CoreRef SR = SrcLang.applyReturn(*S.C, RV);
        CoreRef TR = TgtLang.applyReturn(*T.C, RV);
        if (!SR || !TR) {
          fail("after-external resume failed");
          return false;
        }
        for (auto &MV : relyVariants(S.M, T.M)) {
          if (!canSim(Cfg{SR, MV.first}, Cfg{TR, MV.second},
                      Footprint::emp(), Footprint::emp(),
                      Opts.MaxStutter)) {
            return false;
          }
        }
      }
      return true;
    }
    default: {
      // Event / EntAtom / ExtAtom: same cores continue.
      for (auto &MV : relyVariants(S.M, T.M)) {
        if (!canSim(Cfg{S.C, MV.first}, Cfg{T.C, MV.second},
                    Footprint::emp(), Footprint::emp(), Opts.MaxStutter))
          return false;
      }
      return true;
    }
    }
  }

  static bool sameMsg(const Msg &A, const Msg &B) {
    return A.K == B.K && A.EventVal == B.EventVal && A.RetVal == B.RetVal &&
           A.Callee == B.Callee && A.Args == B.Args;
  }

  const ModuleLang &SrcLang;
  const ModuleLang &TgtLang;
  FreeList SrcF, TgtF;
  Mu MuRel;
  SimOptions Opts;
  bool LayoutOk = false;
  std::map<std::string, MemoState> Memo;
  unsigned Obligations = 0;
  unsigned Vacuous = 0;
  std::string FailReason;
};

} // namespace

SimReport ccc::validate::simCheck(const Program &Src, unsigned SrcMod,
                                  const Program &Tgt, unsigned TgtMod,
                                  const std::string &Entry,
                                  const std::vector<Value> &Args,
                                  SimOptions Opts) {
  SimChecker C(Src, SrcMod, Tgt, TgtMod, Opts);
  return C.run(Src, Tgt, Entry, Args);
}
