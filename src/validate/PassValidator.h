//===- validate/PassValidator.h - Per-pass translation validation -*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharges Correct(SeqComp) (Def. 10) for every pass of the pipeline:
/// for each pass, the footprint-preserving module-local simulation of
/// Defs. 2-3 is checked between the pass's input and output modules, for
/// every function entry and a sample of arguments. This is the executable
/// analogue of the per-pass Coq proofs tabulated in Fig. 13.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_VALIDATE_PASSVALIDATOR_H
#define CASCC_VALIDATE_PASSVALIDATOR_H

#include "compiler/Compiler.h"
#include "validate/Sim.h"

#include <string>
#include <vector>

namespace ccc {
namespace validate {

/// Validation outcome for one pass.
struct PassResult {
  std::string PassName;
  bool Holds = true;
  unsigned EntriesChecked = 0;
  unsigned Obligations = 0;
  unsigned ProductStates = 0;
  unsigned Vacuous = 0;
  double Millis = 0.0;
  std::string FailReason;
};

/// An entry point with one argument sample.
struct EntrySample {
  std::string Entry;
  std::vector<Value> Args;
};

/// Default argument samples for every function of a module: a couple of
/// small integers per int parameter.
std::vector<EntrySample> defaultSamples(const clight::Module &M);

/// Validates every pass of \p R on the given entry samples; returns one
/// result per pass, in Fig. 11 order.
std::vector<PassResult>
validatePipeline(const compiler::CompileResult &R,
                 const std::vector<EntrySample> &Samples,
                 SimOptions Opts = {});

} // namespace validate
} // namespace ccc

#endif // CASCC_VALIDATE_PASSVALIDATOR_H
