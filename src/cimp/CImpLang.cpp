//===- cimp/CImpLang.cpp - CImp instantiation of the framework ------------===//

#include "cimp/CImpLang.h"

#include "cimp/CImpParser.h"
#include "support/StrUtil.h"

#include <cassert>
#include <map>

using namespace ccc;
using namespace ccc::cimp;

namespace {

/// A continuation item: a statement to execute, the end of an atomic
/// block, or a pending external-call return slot.
struct KontItem {
  enum class Kind { Stmt, AtomicEnd, PendingRet };
  Kind K = Kind::Stmt;
  const Stmt *S = nullptr;
  std::string Dst; // PendingRet
};

/// The CImp core: a continuation stack plus register-allocated locals.
class CImpCore : public Core {
public:
  std::vector<KontItem> Kont; // back() is the next item
  std::map<std::string, Value> Regs;

  std::string key() const override {
    StrBuilder B;
    for (const KontItem &I : Kont) {
      switch (I.K) {
      case KontItem::Kind::Stmt:
        B << 's' << reinterpret_cast<uintptr_t>(I.S) << ';';
        break;
      case KontItem::Kind::AtomicEnd:
        B << "ae;";
        break;
      case KontItem::Kind::PendingRet:
        B << "pr:" << I.Dst << ';';
        break;
      }
    }
    B << '|';
    for (const auto &KV : Regs)
      B << KV.first << '=' << KV.second.toString() << ',';
    return B.take();
  }

  void residueBytes(ResidueBuf &B) const override {
    // Continuation: count-prefixed items, each a tag plus a payload
    // whose width the tag determines. No string is built per object —
    // statements encode as their interned-AST pointer and PendingRet
    // destinations as a one-time interned string id.
    B.word(static_cast<uint32_t>(Kont.size()));
    for (const KontItem &I : Kont) {
      B.word(static_cast<uint32_t>(I.K));
      switch (I.K) {
      case KontItem::Kind::Stmt:
        B.ptr(I.S);
        break;
      case KontItem::Kind::AtomicEnd:
        break;
      case KontItem::Kind::PendingRet:
        B.word(B.internString(I.Dst));
        break;
      }
    }
    // Registers in std::map order (the same order key() renders): the
    // interned name id and the value's (kind, bits).
    for (const auto &KV : Regs) {
      B.word(B.internString(KV.first));
      B.word(static_cast<uint32_t>(KV.second.kind()));
      B.word(KV.second.rawBits());
    }
  }
};

/// Pushes a block's statements so that the first statement is on top.
void pushBlock(std::vector<KontItem> &Kont, const Block &B) {
  for (auto It = B.rbegin(); It != B.rend(); ++It)
    Kont.push_back(KontItem{KontItem::Kind::Stmt, It->get(), {}});
}

} // namespace

CImpLang::CImpLang(std::shared_ptr<const Module> M, bool ObjectMode)
    : Mod(std::move(M)), ObjectMode(ObjectMode) {}

CImpLang::~CImpLang() = default;

CoreRef CImpLang::initCore(const std::string &Entry,
                           const std::vector<Value> &Args) const {
  const Function *F = Mod->find(Entry);
  if (!F || F->Params.size() != Args.size())
    return nullptr;
  auto C = std::make_shared<CImpCore>();
  for (std::size_t I = 0; I < Args.size(); ++I)
    C->Regs[F->Params[I]] = Args[I];
  pushBlock(C->Kont, F->Body);
  return C;
}

namespace {

/// Expression evaluation. CImp expressions are register-pure (no memory
/// access), so evaluation has an empty footprint. Returns nullopt on a
/// dynamic type error (which the caller turns into abort).
std::optional<Value> evalExpr(const Expr &E,
                              const std::map<std::string, Value> &Regs,
                              const ModuleLang &Lang) {
  switch (E.K) {
  case Expr::Kind::IntConst:
    return Value::makeInt(E.IntVal);
  case Expr::Kind::Reg: {
    auto It = Regs.find(E.Name);
    if (It == Regs.end())
      return std::nullopt;
    return It->second;
  }
  case Expr::Kind::GlobalAddr: {
    auto A = Lang.globals()->lookup(E.Name);
    if (!A)
      return std::nullopt;
    return Value::makePtr(*A);
  }
  case Expr::Kind::Un: {
    auto V = evalExpr(*E.L, Regs, Lang);
    if (!V || !V->isInt())
      return std::nullopt;
    if (E.U == UnOp::Neg)
      return Value::makeInt(static_cast<int32_t>(
          -static_cast<uint32_t>(V->asInt())));
    return Value::makeInt(V->asInt() == 0 ? 1 : 0);
  }
  case Expr::Kind::Bin: {
    auto L = evalExpr(*E.L, Regs, Lang);
    auto R = evalExpr(*E.R, Regs, Lang);
    if (!L || !R)
      return std::nullopt;
    // Pointer values support equality tests only.
    if (L->isPtr() || R->isPtr()) {
      if (E.B == BinOp::Eq)
        return Value::makeInt(*L == *R ? 1 : 0);
      if (E.B == BinOp::Ne)
        return Value::makeInt(*L == *R ? 0 : 1);
      return std::nullopt;
    }
    if (!L->isInt() || !R->isInt())
      return std::nullopt;
    int32_t A = L->asInt(), B = R->asInt();
    auto Wrap = [](int64_t V) {
      return Value::makeInt(static_cast<int32_t>(static_cast<uint32_t>(V)));
    };
    switch (E.B) {
    case BinOp::Add:
      return Wrap(static_cast<int64_t>(A) + B);
    case BinOp::Sub:
      return Wrap(static_cast<int64_t>(A) - B);
    case BinOp::Mul:
      return Wrap(static_cast<int64_t>(A) * B);
    case BinOp::Div:
      if (B == 0)
        return std::nullopt;
      return Wrap(static_cast<int64_t>(A) / B);
    case BinOp::Eq:
      return Value::makeInt(A == B ? 1 : 0);
    case BinOp::Ne:
      return Value::makeInt(A != B ? 1 : 0);
    case BinOp::Lt:
      return Value::makeInt(A < B ? 1 : 0);
    case BinOp::Le:
      return Value::makeInt(A <= B ? 1 : 0);
    case BinOp::Gt:
      return Value::makeInt(A > B ? 1 : 0);
    case BinOp::Ge:
      return Value::makeInt(A >= B ? 1 : 0);
    case BinOp::And:
      return Value::makeInt((A != 0 && B != 0) ? 1 : 0);
    case BinOp::Or:
      return Value::makeInt((A != 0 || B != 0) ? 1 : 0);
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

} // namespace

std::vector<LocalStep> CImpLang::step(const FreeList &F, const Core &C,
                                      const Mem &M) const {
  (void)F; // CImp locals live in registers; the free list is unused.
  const auto &Cr = static_cast<const CImpCore &>(C);
  std::vector<LocalStep> Out;

  auto single = [&Out](LocalStep S) {
    Out.push_back(std::move(S));
  };

  // Implicit return at the end of the function body.
  if (Cr.Kont.empty()) {
    LocalStep S;
    S.M = Msg::ret(Value::makeInt(0));
    S.NextMem = M;
    S.Next = std::make_shared<CImpCore>(Cr);
    single(std::move(S));
    return Out;
  }

  const KontItem Top = Cr.Kont.back();
  auto popped = [&Cr]() {
    auto N = std::make_shared<CImpCore>(Cr);
    N->Kont.pop_back();
    return N;
  };

  if (Top.K == KontItem::Kind::AtomicEnd) {
    LocalStep S;
    S.M = Msg::extAtom();
    S.NextMem = M;
    S.Next = popped();
    single(std::move(S));
    return Out;
  }
  if (Top.K == KontItem::Kind::PendingRet) {
    single(LocalStep::abort("CImp core stepped while awaiting a return"));
    return Out;
  }

  const Stmt &St = *Top.S;
  auto typeError = [&single]() {
    single(LocalStep::abort("CImp dynamic type error"));
  };

  /// Checks the access-permission discipline (Sec. 7.1): object code may
  /// only touch its own globals.
  auto accessAllowed = [this](Addr A) {
    if (!ObjectMode)
      return true;
    return Globals->addrs().contains(A);
  };

  switch (St.K) {
  case Stmt::Kind::Skip: {
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    S.Next = popped();
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Assign: {
    auto V = evalExpr(*St.E1, Cr.Regs, *this);
    if (!V) {
      typeError();
      break;
    }
    auto N = popped();
    N->Regs[St.Dst] = *V;
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    S.Next = std::move(N);
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Load: {
    auto A = evalExpr(*St.E1, Cr.Regs, *this);
    if (!A || !A->isPtr()) {
      typeError();
      break;
    }
    if (!accessAllowed(A->asPtr())) {
      single(LocalStep::abort("CImp permission violation on load"));
      break;
    }
    auto V = M.load(A->asPtr());
    if (!V) {
      single(LocalStep::abort("CImp load from unallocated address"));
      break;
    }
    auto N = popped();
    N->Regs[St.Dst] = *V;
    LocalStep S;
    S.M = Msg::tau();
    S.FP = Footprint::ofRead(A->asPtr());
    S.NextMem = M;
    S.Next = std::move(N);
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Store: {
    auto A = evalExpr(*St.E1, Cr.Regs, *this);
    auto V = evalExpr(*St.E2, Cr.Regs, *this);
    if (!A || !A->isPtr() || !V) {
      typeError();
      break;
    }
    if (!accessAllowed(A->asPtr())) {
      single(LocalStep::abort("CImp permission violation on store"));
      break;
    }
    Mem NM = M;
    if (!NM.store(A->asPtr(), *V)) {
      single(LocalStep::abort("CImp store to unallocated address"));
      break;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.FP = Footprint::ofWrite(A->asPtr());
    S.NextMem = std::move(NM);
    S.Next = popped();
    single(std::move(S));
    break;
  }
  case Stmt::Kind::If: {
    auto V = evalExpr(*St.E1, Cr.Regs, *this);
    if (!V || !V->isInt()) {
      typeError();
      break;
    }
    auto N = popped();
    pushBlock(N->Kont, V->asInt() != 0 ? St.Body : St.Else);
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    S.Next = std::move(N);
    single(std::move(S));
    break;
  }
  case Stmt::Kind::While: {
    auto V = evalExpr(*St.E1, Cr.Regs, *this);
    if (!V || !V->isInt()) {
      typeError();
      break;
    }
    auto N = std::make_shared<CImpCore>(Cr);
    if (V->asInt() != 0) {
      // Keep the While on the stack and run the body before it.
      pushBlock(N->Kont, St.Body);
    } else {
      N->Kont.pop_back();
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    S.Next = std::move(N);
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Atomic: {
    auto N = popped();
    N->Kont.push_back(KontItem{KontItem::Kind::AtomicEnd, nullptr, {}});
    pushBlock(N->Kont, St.Body);
    LocalStep S;
    S.M = Msg::entAtom();
    S.NextMem = M;
    S.Next = std::move(N);
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Assert: {
    auto V = evalExpr(*St.E1, Cr.Regs, *this);
    if (!V || !V->isInt()) {
      typeError();
      break;
    }
    if (V->asInt() == 0) {
      single(LocalStep::abort("CImp assertion failure"));
      break;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    S.Next = popped();
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Print: {
    auto V = evalExpr(*St.E1, Cr.Regs, *this);
    if (!V || !V->isInt()) {
      typeError();
      break;
    }
    LocalStep S;
    S.M = Msg::event(V->asInt());
    S.NextMem = M;
    S.Next = popped();
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Return: {
    Value V = Value::makeInt(0);
    if (St.E1) {
      auto E = evalExpr(*St.E1, Cr.Regs, *this);
      if (!E) {
        typeError();
        break;
      }
      V = *E;
    }
    LocalStep S;
    S.M = Msg::ret(V);
    S.NextMem = M;
    auto N = std::make_shared<CImpCore>(Cr);
    N->Kont.clear();
    S.Next = std::move(N);
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Spawn: {
    std::vector<Value> Args;
    bool Bad = false;
    for (const ExprPtr &A : St.Args) {
      auto V = evalExpr(*A, Cr.Regs, *this);
      if (!V) {
        Bad = true;
        break;
      }
      Args.push_back(*V);
    }
    if (Bad) {
      typeError();
      break;
    }
    LocalStep S;
    S.M = Msg::spawn(St.Callee, std::move(Args));
    S.NextMem = M;
    S.Next = popped();
    single(std::move(S));
    break;
  }
  case Stmt::Kind::Call: {
    std::vector<Value> Args;
    bool Bad = false;
    for (const ExprPtr &A : St.Args) {
      auto V = evalExpr(*A, Cr.Regs, *this);
      if (!V) {
        Bad = true;
        break;
      }
      Args.push_back(*V);
    }
    if (Bad) {
      typeError();
      break;
    }
    auto N = popped();
    N->Kont.push_back(KontItem{KontItem::Kind::PendingRet, nullptr, St.Dst});
    LocalStep S;
    S.M = Msg::extCall(St.Callee, std::move(Args));
    S.NextMem = M;
    S.Next = std::move(N);
    single(std::move(S));
    break;
  }
  }
  return Out;
}

bool CImpLang::porPoints(const FreeList &F, const Core &C,
                         std::vector<PorPoint> &Out,
                         EffectSummary &Extra) const {
  (void)F;
  (void)Extra; // CImp locals are registers; nothing outside the points.
  const auto &Cr = static_cast<const CImpCore &>(C);
  // back() is next: emit most-imminent first. AtomicEnd and PendingRet
  // markers step with an empty footprint (ExtAtom; the return value lands
  // in a register), so they carry no static point.
  for (auto It = Cr.Kont.rbegin(); It != Cr.Kont.rend(); ++It)
    if (It->K == KontItem::Kind::Stmt)
      Out.push_back(PorPoint{It->S, 0});
  return true;
}

CoreRef CImpLang::applyReturn(const Core &C, const Value &V) const {
  const auto &Cr = static_cast<const CImpCore &>(C);
  if (Cr.Kont.empty() || Cr.Kont.back().K != KontItem::Kind::PendingRet)
    return nullptr;
  auto N = std::make_shared<CImpCore>(Cr);
  std::string Dst = N->Kont.back().Dst;
  N->Kont.pop_back();
  if (!Dst.empty())
    N->Regs[Dst] = V;
  return N;
}

unsigned ccc::cimp::addCImpModule(Program &P, const std::string &Name,
                                  const std::string &Source,
                                  bool ObjectMode) {
  auto M = parseModuleOrDie(Source);
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second),
               ObjectMode ? DataOwner::Object : DataOwner::Client);
  return P.addModule(Name, std::make_unique<CImpLang>(M, ObjectMode),
                     std::move(GE));
}
