//===- analysis/Robustness.cpp - Model-generic static robustness -----------===//

#include "analysis/Robustness.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <limits>
#include <map>
#include <set>

using namespace ccc;
using namespace ccc::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Register abstract values
//===----------------------------------------------------------------------===//

/// What a register may hold at a program point. The lattice is
/// Bot < {NonPtr, Global(g), Frame} < Top; joins of unequal non-Bot
/// values go to Top. Alongside the kind, FrameDeriv tracks whether the
/// value may be derived from this entry's own frame address (the taint
/// that decides frame-pointer escape): Frame is always derived, and the
/// taint survives Mov and pointer arithmetic even after the kind has
/// been joined away to Top.
struct AbsVal {
  enum class Kind : uint8_t { Bot, NonPtr, Global, Frame, Top };
  Kind K = Kind::Bot;
  bool FrameDeriv = false;
  std::string Name; // Global only

  static AbsVal bot() { return {}; }
  static AbsVal nonPtr() { return {Kind::NonPtr, false, {}}; }
  static AbsVal global(std::string G) {
    return {Kind::Global, false, std::move(G)};
  }
  static AbsVal frame() { return {Kind::Frame, true, {}}; }
  static AbsVal top() { return {Kind::Top, false, {}}; }

  /// May this value carry the entry's frame address (or a pointer
  /// computed from it)?
  bool frameDerived() const { return K == Kind::Frame || FrameDeriv; }

  /// May this value be a usable pointer at all? NonPtr and Bot cannot;
  /// everything else conservatively may.
  bool mayBePtr() const { return K != Kind::NonPtr && K != Kind::Bot; }

  bool operator==(const AbsVal &O) const {
    return K == O.K && FrameDeriv == O.FrameDeriv &&
           (K != Kind::Global || Name == O.Name);
  }

  AbsVal join(const AbsVal &O) const {
    if (K == Kind::Bot)
      return O;
    if (O.K == Kind::Bot)
      return *this;
    AbsVal J = *this == O ? *this : top();
    J.FrameDeriv = FrameDeriv || O.FrameDeriv;
    return J;
  }
};

using RegState = std::array<AbsVal, x86::NumRegs>;

RegState joinStates(const RegState &A, const RegState &B) {
  RegState Out;
  for (unsigned I = 0; I < x86::NumRegs; ++I)
    Out[I] = A[I].join(B[I]);
  return Out;
}

AbsVal &regOf(RegState &S, x86::Reg R) {
  return S[static_cast<unsigned>(R)];
}
const AbsVal &regOf(const RegState &S, x86::Reg R) {
  return S[static_cast<unsigned>(R)];
}

/// The view onto a (possibly absent) global points-to map, consulted
/// when a load reads a named global cell: with a trusted map the result
/// refines to NonPtr (no pointer is ever stored there program-wide) or
/// to the address of the unique pointee; without one, Top.
struct PtsMap {
  const std::map<std::string, RobustContext::Pointees> *PT = nullptr;

  AbsVal load(const std::string &G) const {
    if (!PT)
      return AbsVal::top();
    auto It = PT->find(G);
    if (It == PT->end() || It->second.Wild)
      return AbsVal::top();
    if (It->second.Cells.empty())
      return AbsVal::nonPtr();
    if (It->second.Cells.size() == 1)
      return AbsVal::global(*It->second.Cells.begin());
    return AbsVal::top();
  }

  /// May the cell \p G hold a pointer?
  bool mayHoldPtr(const std::string &G) const {
    if (!PT)
      return true;
    auto It = PT->find(G);
    return It == PT->end() || It->second.Wild || !It->second.Cells.empty();
  }
};

/// Abstract evaluation of a readable operand.
AbsVal evalOperand(const x86::Operand &O, const RegState &S,
                   const PtsMap &Pts) {
  using OK = x86::Operand::Kind;
  switch (O.K) {
  case OK::Imm:
    return AbsVal::nonPtr();
  case OK::GlobalImm:
    return AbsVal::global(O.Global);
  case OK::MemGlobal:
    return Pts.load(O.Global);
  case OK::Reg:
    return regOf(S, O.R);
  case OK::MemBase: {
    // A loaded value. When the base resolves to a named cell (directly
    // or through the points-to map) the content refines like a direct
    // global load; otherwise it could be anything. Either way it is
    // treated as not frame-derived: the frame is freshly allocated at
    // entry, so memory can only hold its address after an escape store —
    // and the escape scan flags that store itself, degrading the whole
    // entry before this assumption is ever relied on.
    const AbsVal &Base = regOf(S, O.R);
    if (Base.K == AbsVal::Kind::Global && O.Disp == 0)
      return Pts.load(Base.Name);
    return AbsVal::top();
  }
  }
  return AbsVal::top();
}

/// The register transfer of one instruction (memory effects are handled
/// by the robustness walk, not here).
RegState transfer(const x86::Instr &I, RegState S, const PtsMap &Pts) {
  using IK = x86::Instr::Kind;
  auto setReg = [&S](const x86::Operand &Dst, AbsVal V) {
    if (Dst.K == x86::Operand::Kind::Reg)
      regOf(S, Dst.R) = std::move(V);
  };
  switch (I.K) {
  case IK::Mov:
    setReg(I.Dst, evalOperand(I.Src, S, Pts));
    break;
  case IK::Add:
  case IK::Sub: {
    if (I.Dst.K == x86::Operand::Kind::Reg) {
      const AbsVal &D = regOf(S, I.Dst.R);
      // Pointer arithmetic yields a pointer to an unknown cell; pure
      // integer arithmetic stays non-pointer. The frame taint survives:
      // frame + k still points into (or near) the frame.
      AbsVal Src = evalOperand(I.Src, S, Pts);
      bool Deriv = D.frameDerived() || Src.frameDerived();
      if (D.K == AbsVal::Kind::NonPtr && Src.K == AbsVal::Kind::NonPtr)
        regOf(S, I.Dst.R) = AbsVal::nonPtr();
      else {
        AbsVal V = AbsVal::top();
        V.FrameDeriv = Deriv;
        regOf(S, I.Dst.R) = std::move(V);
      }
    }
    break;
  }
  case IK::Imul:
  case IK::Div:
  case IK::And:
  case IK::Or:
  case IK::Xor:
  case IK::Shl:
  case IK::Sar:
  case IK::Neg:
  case IK::Not:
    // Integer-only in the dynamic semantics (pointer operands abort), so
    // the result can never be a usable pointer — the frame taint is
    // cleared along with the kind.
    setReg(I.Dst, AbsVal::nonPtr());
    break;
  case IK::Setcc:
    setReg(I.Dst, AbsVal::nonPtr());
    break;
  case IK::Call:
    // applyReturn writes the return value into EAX and preserves every
    // other register.
    regOf(S, x86::Reg::EAX) = AbsVal::top();
    break;
  case IK::LockCmpxchg:
    // On failure the memory value is loaded into EAX.
    regOf(S, x86::Reg::EAX) = AbsVal::top();
    break;
  default:
    break;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Shared CFG helpers
//===----------------------------------------------------------------------===//

std::vector<unsigned> reachableFrom(const x86::Module &M, unsigned Start) {
  std::vector<unsigned> Out;
  std::set<unsigned> Seen{Start};
  std::deque<unsigned> Work{Start};
  while (!Work.empty()) {
    unsigned PC = Work.front();
    Work.pop_front();
    Out.push_back(PC);
    for (unsigned S : x86::successors(M, PC))
      if (Seen.insert(S).second)
        Work.push_back(S);
  }
  return Out;
}

std::map<unsigned, RegState> fixpointRegsFor(const x86::Module &M,
                                             const x86::EntryInfo &EI,
                                             const PtsMap &Pts) {
  std::map<unsigned, RegState> RegAt;
  RegState Init;
  for (unsigned I = 0; I < x86::NumRegs; ++I)
    Init[I] = AbsVal::top();
  // The implicit frame-allocation step materializes the frame pointer.
  if (EI.FrameSize > 0)
    regOf(Init, x86::Reg::ESP) = AbsVal::frame();
  RegAt[EI.PCIndex] = Init;

  std::deque<unsigned> Work{EI.PCIndex};
  std::set<unsigned> InWork{EI.PCIndex};
  while (!Work.empty()) {
    unsigned PC = Work.front();
    Work.pop_front();
    InWork.erase(PC);
    RegState Out = transfer(M.Code[PC], RegAt[PC], Pts);
    for (unsigned S : x86::successors(M, PC)) {
      auto It = RegAt.find(S);
      RegState Joined = It == RegAt.end() ? Out : joinStates(It->second, Out);
      if (It == RegAt.end() || !(Joined == It->second)) {
        RegAt[S] = std::move(Joined);
        if (InWork.insert(S).second)
          Work.push_back(S);
      }
    }
  }
  return RegAt;
}

//===----------------------------------------------------------------------===//
// Module-local global points-to
//===----------------------------------------------------------------------===//

/// Per-module contribution to the program's flow-insensitive global
/// points-to. Two channels can launder a pointer into a cell behind the
/// module-local map's back (foreign cells cannot be named directly:
/// MemGlobal and GlobalImm bind to the module's own environment):
///
///  - Neighbours: stores through a base register holding a *named*
///    global's address with a nonzero displacement. Module-locally the
///    victim cell is unknown, but the linker's layout pins it exactly
///    (the address is addr(base) + disp), so the context builder can
///    resolve each such store and degrade just the affected cell.
///  - MayPtrUnresolved: a store of a may-pointer value through a
///    completely unknown base (Top) — it could land in any cell of any
///    module, so it still poisons every map.
///
/// Frame-derived targets are exempt from both: frames live in the
/// thread regions (0x100000+), disjoint from the globals (0x1000+) by
/// the linker's layout, so such a store can never land in a global cell.
struct PtsBuildResult {
  std::map<std::string, RobustContext::Pointees> PT;
  /// (base cell, displacement) -> what the store may publish there.
  std::map<std::pair<std::string, int32_t>, RobustContext::Pointees>
      Neighbours;
  bool MayPtrUnresolved = false;
};

/// Where a store effect may land.
enum class StoreTarget { Global, FrameLike, NoStore, Neighbour, Unresolved };

StoreTarget storeTargetOf(const x86::Operand &Op, const RegState &S,
                          std::string &GlobalOut) {
  using OK = x86::Operand::Kind;
  if (Op.K == OK::MemGlobal) {
    GlobalOut = Op.Global;
    return StoreTarget::Global;
  }
  assert(Op.K == OK::MemBase && "not a memory store target");
  const AbsVal &Base = regOf(S, Op.R);
  switch (Base.K) {
  case AbsVal::Kind::Global:
    GlobalOut = Base.Name;
    if (Op.Disp == 0)
      return StoreTarget::Global;
    // A neighbouring cell of the layout: unresolved here, but exactly
    // addr(GlobalOut) + Op.Disp once the linker has fixed addresses.
    return StoreTarget::Neighbour;
  case AbsVal::Kind::Frame:
    // Any displacement stays inside (or aborts outside) the thread
    // region — never a global cell.
    return StoreTarget::FrameLike;
  case AbsVal::Kind::NonPtr:
  case AbsVal::Kind::Bot:
    // Dereferencing a non-pointer aborts: the store never happens.
    return StoreTarget::NoStore;
  case AbsVal::Kind::Top:
    return StoreTarget::Unresolved;
  }
  return StoreTarget::Unresolved;
}

/// Optimistic fixpoint: PT starts empty (loads of globals evaluate to
/// NonPtr), each round re-runs every entry's register fixpoint under the
/// current map and folds the module's stores in, until stable. PT only
/// grows (cells accumulate, Wild latches) and evalOperand is monotone in
/// it, so the iteration terminates at the least map closed under the
/// module's own stores. \p Inject seeds cells with pointees published by
/// *other* stores the caller has resolved against the linked layout
/// (neighbour stores, possibly from other modules); the fixpoint then
/// closes the module's own flows over them.
PtsBuildResult computePointsTo(
    const x86::Module &M,
    const std::map<std::string, RobustContext::Pointees> *Inject =
        nullptr) {
  PtsBuildResult R;
  for (const auto &G : M.Globals)
    R.PT[G.first]; // declared cells start empty (hold only integers)
  if (Inject)
    for (const auto &[Name, Pt] : *Inject) {
      auto It = R.PT.find(Name);
      if (It == R.PT.end())
        continue; // victims are always declared cells of this module
      It->second.Wild = It->second.Wild || Pt.Wild;
      It->second.Cells.insert(Pt.Cells.begin(), Pt.Cells.end());
    }

  for (;;) {
    bool Changed = false;
    R.MayPtrUnresolved = false;
    R.Neighbours.clear();
    PtsMap View{&R.PT};

    auto markWild = [&](const std::string &G) {
      auto &P = R.PT[G];
      if (!P.Wild) {
        P.Wild = true;
        Changed = true;
      }
    };
    auto addCell = [&](const std::string &G, const std::string &Cell) {
      auto &P = R.PT[G];
      if (!P.Wild && P.Cells.insert(Cell).second)
        Changed = true;
    };
    auto storeValue = [&](const x86::Operand &Target, const RegState &S,
                          const AbsVal &V) {
      std::string G;
      switch (storeTargetOf(Target, S, G)) {
      case StoreTarget::Global:
        if (V.K == AbsVal::Kind::Global)
          addCell(G, V.Name);
        else if (V.mayBePtr())
          markWild(G);
        break;
      case StoreTarget::Neighbour: {
        if (!V.mayBePtr())
          break;
        auto &NP = R.Neighbours[{G, Target.Disp}];
        if (V.K == AbsVal::Kind::Global)
          NP.Cells.insert(V.Name);
        else
          NP.Wild = true;
        break;
      }
      case StoreTarget::Unresolved:
        if (V.mayBePtr())
          R.MayPtrUnresolved = true;
        break;
      case StoreTarget::FrameLike:
      case StoreTarget::NoStore:
        break;
      }
    };

    for (const auto &E : M.Entries) {
      std::vector<unsigned> Reach = reachableFrom(M, E.second.PCIndex);
      std::map<unsigned, RegState> RegAt = fixpointRegsFor(M, E.second, View);
      for (unsigned PC : Reach) {
        const x86::Instr &I = M.Code[PC];
        auto It = RegAt.find(PC);
        if (It == RegAt.end())
          continue;
        const RegState &S = It->second;
        using IK = x86::Instr::Kind;
        switch (I.K) {
        case IK::Mov:
          if (I.Dst.isMem())
            storeValue(I.Dst, S, evalOperand(I.Src, S, View));
          break;
        case IK::LockCmpxchg:
          // On success the Src register value is published into Dst.
          storeValue(I.Dst, S, evalOperand(I.Src, S, View));
          break;
        case IK::Add:
        case IK::Sub:
          // On a memory destination the loaded content is adjusted and
          // stored back: the result is a pointer whenever the cell may
          // hold one (pointer +- int stays a pointer) or the source may
          // be one (int + pointer too).
          if (I.Dst.isMem()) {
            std::string G;
            StoreTarget T = storeTargetOf(I.Dst, S, G);
            bool ContentMayPtr = T == StoreTarget::Global
                                     ? View.mayHoldPtr(G)
                                     : T == StoreTarget::Unresolved ||
                                           T == StoreTarget::Neighbour;
            bool MayPtr =
                ContentMayPtr || evalOperand(I.Src, S, View).mayBePtr();
            AbsVal V = MayPtr ? AbsVal::top() : AbsVal::nonPtr();
            storeValue(I.Dst, S, V);
          }
          break;
        case IK::Imul:
        case IK::Div:
        case IK::And:
        case IK::Or:
        case IK::Xor:
        case IK::Shl:
        case IK::Sar:
        case IK::Neg:
        case IK::Not:
        case IK::Setcc:
          // Integer-only results (pointer operands abort dynamically).
          if (I.Dst.isMem())
            storeValue(I.Dst, S, AbsVal::nonPtr());
          break;
        default:
          break;
        }
      }
    }

    if (!Changed)
      break;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Module analysis
//===----------------------------------------------------------------------===//

/// The pending-store dataflow fact: for every store that may still sit
/// unfenced in the buffer, the set of cells that *must* have been stored
/// after it and are still pending behind it (its covers). Join is union
/// on the keys (may-pending) and intersection on the covers of common
/// keys (must-covered); a one-sided key keeps its covers — on the paths
/// where the store is not pending the cover claim is vacuous.
using Fact = std::map<unsigned, std::set<std::string>>;

/// The virtual pending-store id standing for the caller's entire buffer
/// while an entry is walked in summary mode.
constexpr unsigned CallerToken = std::numeric_limits<unsigned>::max();

Fact joinFacts(const Fact &A, const Fact &B) {
  Fact Out = A;
  for (const auto &KV : B) {
    auto It = Out.find(KV.first);
    if (It == Out.end()) {
      Out.insert(KV);
      continue;
    }
    std::set<std::string> Inter;
    std::set_intersection(It->second.begin(), It->second.end(),
                          KV.second.begin(), KV.second.end(),
                          std::inserter(Inter, Inter.begin()));
    It->second = std::move(Inter);
  }
  return Out;
}

/// The memoized drain/pending/pre-drain-load effect of a same-module
/// callee, phrased against the CallerToken planted in its initial fact:
///  - PreLoads: shared loads the callee may execute while the caller's
///    buffer is (partly) undrained and that the callee's own must-stores
///    behind the whole buffer do not excuse;
///  - TokenDrainPCs: drain points the token reaches (the caller's buffer
///    is certified there on those paths);
///  - TokenEscapes: boundary crossings the token reaches (the caller's
///    buffer escapes there);
///  - AtRet: the joined fact at the callee's rets — the token's presence
///    means the caller's buffer may survive the call (with the token's
///    covers telling what the callee must-stored behind it), and real
///    ids are the callee's own stores still pending at return.
struct Summary {
  bool Valid = false;
  std::vector<RobustAccess> PreLoads;
  std::set<unsigned> PreLoadPCs;
  std::set<unsigned> TokenDrainPCs;
  std::map<unsigned, std::string> TokenEscapes; // PC -> entry name
  bool HasRet = false;
  Fact AtRet;
};

struct ModuleAnalysis {
  const x86::Module &M;
  const RobustContext *Ctx;
  RobustReport &R;
  /// The declared model's reordering capabilities: StoresLinger drives
  /// the (always-on here) pending-store dataflow, LoadsDefer additionally
  /// enables the deferable-load dataflow.
  const ReorderTable Table;
  PtsMap Pts;

  struct EntryState {
    const x86::EntryInfo *EI = nullptr;
    std::string Name;
    std::vector<unsigned> Reachable;
    std::map<unsigned, RegState> RegAt;
    /// True when the frame address may become visible to another thread
    /// (stored to memory, passed as a call argument, or returned): frame
    /// cells are then no longer thread-private, and classify() treats
    /// them as SharedUnknown instead of Confined.
    bool FrameEscaped = false;
    bool Prepared = false;
  };
  std::map<std::string, EntryState> Entries;

  /// Module-wide store site table: every plain shared store reachable
  /// from a walked entry, identified by (PC, effect index) and counted
  /// once no matter how many entries or summaries revisit it.
  std::vector<RobustAccess> Stores;
  std::map<std::pair<unsigned, unsigned>, unsigned> StoreId;
  std::set<std::pair<unsigned, unsigned>> CountedSites;

  /// Module-wide deferable-load site table (populated only when the
  /// model's table defers loads): every plain shared register load —
  /// exactly the sites the dynamic model may leave pending — with the
  /// destination register whose first use completion-forces it.
  std::vector<RobustAccess> Loads;
  std::vector<x86::Reg> LoadRegs;
  std::map<unsigned, unsigned> LoadId; // PC -> load id

  std::set<std::pair<unsigned, unsigned>> SeenTriangles; // (store, load PC)
  std::set<std::pair<unsigned, unsigned>> SeenEscapes;   // (store, exit PC)
  std::set<std::pair<unsigned, unsigned>> SeenCerts;     // (store, drain PC)
  std::set<unsigned> Witnessed;
  std::set<unsigned> Certified;

  std::set<std::pair<unsigned, unsigned>> SeenLoadPairs; // (load, cross PC)
  std::set<std::pair<unsigned, unsigned>> SeenLoadCerts; // (load, cert PC)
  std::set<unsigned> WitnessedLoadIds;
  std::set<unsigned> CertifiedLoadIds;
  std::set<std::string> NoteDedup;

  std::map<std::string, Summary> Summaries;
  Summary InvalidSummary;

  /// Gates the witness/certificate emitters (and their dedup sets) while
  /// the summary fixpoint iterates: intermediate walks run against
  /// under-approximate callee summaries, so anything they would report
  /// is re-derived — against the converged summaries — by the final
  /// emitting pass of getSummary or by the standalone walks.
  bool Emit = true;

  /// Bound on summary fixpoint rounds. The facts live in finite
  /// lattices (pending ids bounded by store sites, covers by global
  /// names), so Kleene iteration terminates; the cap is a widening
  /// backstop that degrades the whole group to the invalid summary —
  /// call sites then escape, which is the sound pre-fixpoint treatment.
  static constexpr unsigned MaxSummaryIters = 16;

  ModuleAnalysis(const x86::Module &Mod, const RobustContext *C,
                 RobustReport &Rep, ReorderTable T)
      : M(Mod), Ctx(C), R(Rep), Table(T) {
    if (Ctx && Ctx->Closed && Ctx->HasPointsTo)
      Pts.PT = &Ctx->GlobalPointsTo;
  }

  void note(std::string N) {
    if (NoteDedup.insert(N).second)
      R.Notes.push_back(std::move(N));
  }

  /// Scans the reachable instructions for a point where a frame-derived
  /// value leaves the thread's registers: stored to any memory operand
  /// (including the frame itself — the address can be laundered back out
  /// through a load), published by a lock-prefixed cmpxchg, passed in an
  /// argument register at a call/tcall, or live in EAX at ret. Any such
  /// point means a peer thread may learn the frame address and race on
  /// frame cells, so frame confinement is forfeited for the whole entry.
  /// Sound by induction on execution steps: the *first* concrete escape
  /// flows from ESP purely through register operations, which the
  /// fixpoint taint over-approximates (loads and call returns can only
  /// yield the frame address after some earlier escape).
  bool frameEscapes(const EntryState &E) const {
    for (unsigned PC : E.Reachable) {
      const x86::Instr &I = M.Code[PC];
      auto It = E.RegAt.find(PC);
      if (It == E.RegAt.end())
        continue;
      const RegState &S = It->second;
      using IK = x86::Instr::Kind;
      switch (I.K) {
      case IK::Mov:
        if (I.Dst.isMem() && evalOperand(I.Src, S, Pts).frameDerived())
          return true;
        break;
      case IK::LockCmpxchg:
        if (I.Src.K == x86::Operand::Kind::Reg &&
            regOf(S, I.Src.R).frameDerived())
          return true;
        break;
      case IK::Call:
      case IK::TailCall: {
        auto Arity = M.arityOf(I.Name);
        unsigned N = Arity ? std::min<unsigned>(*Arity, 3u) : 3u;
        for (unsigned A = 0; A < N; ++A)
          if (regOf(S, x86::X86Lang::ArgRegs[A]).frameDerived())
            return true;
        break;
      }
      case IK::Ret:
        if (regOf(S, x86::Reg::EAX).frameDerived())
          return true;
        break;
      default:
        // ALU stores cannot publish a register-held pointer: the only
        // pointer-producing forms are add/sub with the pointer in the
        // *destination*, and a pointer ALU source aborts. printl aborts
        // on pointers outright.
        break;
      }
    }
    return false;
  }

  /// The cell extent of \p E's private frame region: the recorded
  /// frame-layout extent (which covers the declared size), clamped to
  /// the fixed per-frame region — displacements at or past
  /// FrameRegionSize leave the frame's own block and may reach another
  /// thread's region, so the private claim stops there.
  static uint32_t frameExtentOf(const EntryState &E) {
    return std::min(std::max(E.EI->FrameSize, E.EI->FrameExtent),
                    Program::FrameRegionSize);
  }

  /// Classifies one memory operand at \p PC under the fixpoint state.
  RobustAccess classify(const EntryState &E, unsigned PC, const x86::Operand &Op,
                     bool Write) const {
    RobustAccess A;
    A.PC = PC;
    A.Entry = E.Name;
    A.Text = M.Code[PC].toString();
    A.Write = Write;
    using OK = x86::Operand::Kind;
    if (Op.K == OK::MemGlobal) {
      A.Cls = AccessClass::SharedKnown;
      A.Global = Op.Global;
      return A;
    }
    assert(Op.K == OK::MemBase && "not a memory operand");
    auto It = E.RegAt.find(PC);
    const AbsVal Base =
        It == E.RegAt.end() ? AbsVal::top() : regOf(It->second, Op.R);
    switch (Base.K) {
    case AbsVal::Kind::Global:
      if (Op.Disp == 0) {
        A.Cls = AccessClass::SharedKnown;
        A.Global = Base.Name;
      } else {
        // A displaced global points at a neighbouring cell of the linked
        // layout — shared, name unknown.
        A.Cls = AccessClass::SharedUnknown;
        A.Global = "?";
      }
      return A;
    case AbsVal::Kind::Frame:
      if (E.FrameEscaped) {
        // The frame address may be known to a peer thread: frame cells
        // are shared memory like any other, with unresolved identity.
        A.Cls = AccessClass::SharedUnknown;
        A.Global = "<escaped frame+" + std::to_string(Op.Disp) + ">";
      } else if (Op.Disp >= 0 &&
                 static_cast<uint32_t>(Op.Disp) < frameExtentOf(E)) {
        // In-extent frame cell. The bound is the recorded frame-layout
        // extent, not just the declared frame size: every frame is a
        // fixed FrameRegionSize block carved from the thread's own
        // region, so a positive displacement inside that block is
        // thread-private memory even past the declared frame (popped
        // deeper frames leave their cells allocated — the domain never
        // shrinks). Absent a frame escape no peer can name the address,
        // so the access can never witness a TSO reordering.
        A.Cls = AccessClass::Confined;
        A.Global = "<frame+" + std::to_string(Op.Disp) + ">";
      } else {
        A.Cls = AccessClass::SharedUnknown;
        A.Global = "?";
      }
      return A;
    default:
      A.Cls = AccessClass::SharedUnknown;
      A.Global = "?";
      return A;
    }
  }

  EntryState &prepareEntry(const std::string &Name) {
    EntryState &E = Entries[Name];
    if (E.Prepared)
      return E;
    E.Prepared = true;
    E.Name = Name;
    E.EI = &M.Entries.at(Name);
    E.Reachable = reachableFrom(M, E.EI->PCIndex);
    E.RegAt = fixpointRegsFor(M, *E.EI, Pts);
    E.FrameEscaped = E.EI->FrameSize > 0 && frameEscapes(E);
    if (E.FrameEscaped)
      note("entry '" + Name +
           "': frame address may escape to another thread — frame accesses "
           "treated as shared (verdict at most Unknown for them)");

    // Collect and count the access sites once (stats are per site, not
    // per dataflow visit), and assign ids to the plain shared stores.
    for (unsigned PC : E.Reachable) {
      auto Effects = x86::memEffects(M.Code[PC]);
      for (unsigned EIx = 0; EIx < Effects.size(); ++EIx) {
        if (!CountedSites.insert({PC, EIx}).second)
          continue;
        const x86::MemEffect &Ef = Effects[EIx];
        RobustAccess A = classify(E, PC, *Ef.Op, Ef.IsStore);
        noteOutOfFrame(E, PC, *Ef.Op);
        if (Ef.Locked) {
          ++R.LockedOps;
          continue;
        }
        if (A.Cls == AccessClass::Confined) {
          ++R.ConfinedAccesses;
          continue;
        }
        if (Ef.IsStore) {
          ++R.SharedStores;
          StoreId[{PC, EIx}] = static_cast<unsigned>(Stores.size());
          Stores.push_back(A);
        }
        if (Ef.IsLoad) {
          ++R.SharedLoads;
          const x86::Instr &I = M.Code[PC];
          if (Table.LoadsDefer && I.K == x86::Instr::Kind::Mov &&
              I.Dst.K == x86::Operand::Kind::Reg) {
            // Deferable site: exactly the loads the dynamic Relaxed
            // model may leave pending (a plain Mov of shared memory
            // into a register).
            ++R.DeferableLoads;
            LoadId[PC] = static_cast<unsigned>(Loads.size());
            Loads.push_back(A);
            LoadRegs.push_back(I.Dst.R);
          }
        }
      }
    }
    return E;
  }

  /// Diagnoses an out-of-region frame-relative access (disp outside
  /// [0, frameExtentOf(E))) so the SharedUnknown classification — and
  /// the Unknown verdict it induces — is explainable from the report
  /// alone.
  void noteOutOfFrame(const EntryState &E, unsigned PC,
                      const x86::Operand &Op) {
    if (Op.K != x86::Operand::Kind::MemBase || E.FrameEscaped)
      return;
    auto It = E.RegAt.find(PC);
    if (It == E.RegAt.end() ||
        regOf(It->second, Op.R).K != AbsVal::Kind::Frame)
      return;
    if (Op.Disp >= 0 && static_cast<uint32_t>(Op.Disp) < frameExtentOf(E))
      return;
    note("entry '" + E.Name + "': frame access at PC " + std::to_string(PC) +
         ": displacement " + std::to_string(Op.Disp) +
         " outside the private frame extent " +
         std::to_string(frameExtentOf(E)) + " (" + M.Code[PC].toString() +
         ")");
  }

  /// Reconstructs a drain-free PC path from \p From to \p To for witness
  /// reporting (BFS over non-draining instructions). Module-boundary
  /// instructions are skipped too — the dataflow clears the pending set
  /// there (emitting an escape), so a path routed through a call would
  /// not be one on which the store is still buffered. \p To itself may be
  /// a boundary instruction (the escape point of an escape witness).
  std::vector<unsigned> findPath(unsigned From, unsigned To) const {
    std::map<unsigned, unsigned> Parent;
    std::deque<unsigned> Work{From};
    Parent[From] = From;
    while (!Work.empty()) {
      unsigned PC = Work.front();
      Work.pop_front();
      if (PC == To)
        break;
      if (PC != From && (x86::drainsStoreBuffer(M.Code[PC]) ||
                         x86::crossesModuleBoundary(M.Code[PC])))
        continue;
      for (unsigned S : x86::successors(M, PC))
        if (Parent.emplace(S, PC).second)
          Work.push_back(S);
    }
    std::vector<unsigned> Path;
    if (!Parent.count(To))
      return Path;
    for (unsigned PC = To;; PC = Parent[PC]) {
      Path.push_back(PC);
      if (PC == Parent[PC])
        break;
    }
    std::reverse(Path.begin(), Path.end());
    return Path;
  }

  /// The buffer-order context of a violation: the other stores that may
  /// share the buffer with \p Self when it fires.
  std::vector<unsigned> bufferPCs(const Fact &F, unsigned Self) const {
    std::vector<unsigned> Out;
    for (const auto &KV : F)
      if (KV.first != Self && KV.first != CallerToken)
        Out.push_back(Stores[KV.first].PC);
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }

  void emitTriangle(unsigned Sid, const RobustAccess &Load, const Fact &F) {
    if (!Emit || !SeenTriangles.insert({Sid, Load.PC}).second)
      return;
    Witnessed.insert(Sid);
    TriangularWitness W;
    W.Store = Stores[Sid];
    W.Load = Load;
    if (W.Store.Entry == Load.Entry)
      W.Path = findPath(W.Store.PC, Load.PC);
    W.BufferPCs = bufferPCs(F, Sid);
    W.Tentative = W.Store.Cls == AccessClass::SharedUnknown ||
                  Load.Cls == AccessClass::SharedUnknown;
    R.Witnesses.push_back(std::move(W));
  }

  void emitEscape(unsigned Sid, unsigned ExitPC, const std::string &ExitEntry,
                  const Fact &F) {
    if (!Emit || !SeenEscapes.insert({Sid, ExitPC}).second)
      return;
    Witnessed.insert(Sid);
    TriangularWitness W;
    W.Store = Stores[Sid];
    RobustAccess Exit;
    Exit.PC = ExitPC;
    Exit.Entry = ExitEntry;
    Exit.Text = M.Code[ExitPC].toString();
    Exit.Cls = AccessClass::SharedUnknown;
    Exit.Global = "?";
    W.Escape = std::move(Exit);
    if (W.Store.Entry == ExitEntry)
      W.Path = findPath(W.Store.PC, ExitPC);
    W.BufferPCs = bufferPCs(F, Sid);
    W.Tentative = W.Store.Cls == AccessClass::SharedUnknown;
    R.Witnesses.push_back(std::move(W));
  }

  void emitCert(unsigned Sid, unsigned DrainPC, bool AtExit) {
    if (!Emit || !SeenCerts.insert({Sid, DrainPC}).second)
      return;
    Certified.insert(Sid);
    FenceCert C;
    C.Entry = Stores[Sid].Entry;
    C.StorePC = Stores[Sid].PC;
    C.DrainPC = DrainPC;
    C.StoreText = Stores[Sid].Text;
    C.DrainText = M.Code[DrainPC].toString();
    C.AtThreadExit = AtExit;
    R.Certificates.push_back(std::move(C));
  }

  void emitLoadWitness(unsigned Lid, const RobustAccess &Cross) {
    if (!Emit || !SeenLoadPairs.insert({Lid, Cross.PC}).second)
      return;
    WitnessedLoadIds.insert(Lid);
    TriangularWitness W;
    W.DeferredLoad = true;
    W.Store = Loads[Lid];
    W.Load = Cross;
    if (W.Store.Entry == Cross.Entry)
      W.Path = findPath(W.Store.PC, Cross.PC);
    W.Tentative = W.Store.Cls == AccessClass::SharedUnknown ||
                  Cross.Cls == AccessClass::SharedUnknown;
    R.Witnesses.push_back(std::move(W));
  }

  void emitLoadEscape(unsigned Lid, unsigned ExitPC,
                      const std::string &ExitEntry) {
    if (!Emit || !SeenLoadPairs.insert({Lid, ExitPC}).second)
      return;
    WitnessedLoadIds.insert(Lid);
    TriangularWitness W;
    W.DeferredLoad = true;
    W.Store = Loads[Lid];
    RobustAccess Exit;
    Exit.PC = ExitPC;
    Exit.Entry = ExitEntry;
    Exit.Text = M.Code[ExitPC].toString();
    Exit.Cls = AccessClass::SharedUnknown;
    Exit.Global = "?";
    W.Escape = std::move(Exit);
    if (W.Store.Entry == ExitEntry)
      W.Path = findPath(W.Store.PC, ExitPC);
    W.Tentative = W.Store.Cls == AccessClass::SharedUnknown;
    R.Witnesses.push_back(std::move(W));
  }

  void emitLoadCert(unsigned Lid, unsigned CertPC, bool AtExit,
                    bool Dependency) {
    if (!Emit || !SeenLoadCerts.insert({Lid, CertPC}).second)
      return;
    CertifiedLoadIds.insert(Lid);
    FenceCert C;
    C.DeferredLoad = true;
    C.Dependency = Dependency;
    C.Entry = Loads[Lid].Entry;
    C.StorePC = Loads[Lid].PC;
    C.DrainPC = CertPC;
    C.StoreText = Loads[Lid].Text;
    C.DrainText = M.Code[CertPC].toString();
    C.AtThreadExit = AtExit;
    R.Certificates.push_back(std::move(C));
  }

  /// The load-axis transfer of the (non-draining, non-boundary)
  /// instruction at \p PC over the pending deferable-load set. Mirrors
  /// the dynamic model's completion-forcing conflict gate, and order
  /// matters exactly as it does there: (1) kills strictly first — an
  /// operand naming a pending load's destination register, or an access
  /// that provably targets the pending load's own cell, forces the load
  /// to complete *before* this instruction executes (the dependency
  /// certificate); (2) then any surviving pending load crossing a shared
  /// access of a possibly different cell is a reordering a peer can
  /// observe (witness), and an observable event is an escape-style
  /// witness (divergence-sensitivity, as on the store axis); (3) finally
  /// the instruction's own deferable load goes pending. Loop re-entry is
  /// covered by (1): re-executing the site names its own destination
  /// register, completing the previous instance first.
  void stepPendingLoads(const EntryState &E, unsigned PC,
                        std::set<unsigned> &Pend) {
    const x86::Instr &I = M.Code[PC];
    std::vector<RobustAccess> Accs;
    for (const x86::MemEffect &Ef : x86::memEffects(I))
      Accs.push_back(classify(E, PC, *Ef.Op, Ef.IsStore));

    for (auto It = Pend.begin(); It != Pend.end();) {
      const unsigned Lid = *It;
      bool Kill = false;
      for (const x86::Operand *O : {&I.Src, &I.Dst})
        Kill = Kill || ((O->K == x86::Operand::Kind::Reg ||
                         O->K == x86::Operand::Kind::MemBase) &&
                        O->R == LoadRegs[Lid]);
      for (const RobustAccess &A : Accs)
        Kill = Kill || (A.Cls == AccessClass::SharedKnown &&
                        Loads[Lid].Cls == AccessClass::SharedKnown &&
                        A.Global == Loads[Lid].Global);
      if (Kill) {
        emitLoadCert(Lid, PC, /*AtExit=*/false, /*Dependency=*/true);
        It = Pend.erase(It);
      } else {
        ++It;
      }
    }

    for (unsigned Lid : Pend) {
      for (const RobustAccess &A : Accs)
        if (A.Cls != AccessClass::Confined)
          emitLoadWitness(Lid, A);
      if (I.K == x86::Instr::Kind::Print)
        emitLoadEscape(Lid, PC, E.Name); // stays pending, like stores
    }

    auto LIt = LoadId.find(PC);
    if (LIt != LoadId.end())
      Pend.insert(LIt->second);
  }

  void escapeAll(const Fact &F, unsigned PC, const std::string &Entry,
                 Summary *S) {
    for (const auto &KV : F) {
      if (KV.first == CallerToken)
        S->TokenEscapes.emplace(PC, Entry);
      else
        emitEscape(KV.first, PC, Entry, F);
    }
  }

  /// Change detection for the summary fixpoint. PreLoads is keyed by
  /// PreLoadPCs (the classification of a load PC is deterministic per
  /// entry), so comparing the PC set covers the vector.
  static bool summaryEq(const Summary &A, const Summary &B) {
    return A.Valid == B.Valid && A.PreLoadPCs == B.PreLoadPCs &&
           A.TokenDrainPCs == B.TokenDrainPCs &&
           A.TokenEscapes == B.TokenEscapes && A.HasRet == B.HasRet &&
           A.AtRet == B.AtRet;
  }

  /// Collects the not-yet-summarized same-module entries reachable from
  /// \p Root through summary-eligible call sites: the recursive group
  /// \p Root participates in, plus every unsummarized callee it pulls
  /// in. Solving them jointly lets mutual recursion converge too.
  std::vector<std::string> summaryGroup(const std::string &Root) {
    std::vector<std::string> Group;
    std::set<std::string> Seen{Root};
    std::deque<std::string> Work{Root};
    while (!Work.empty()) {
      std::string N = Work.front();
      Work.pop_front();
      Group.push_back(N);
      const EntryState &E = prepareEntry(N);
      for (unsigned PC : E.Reachable) {
        const x86::Instr &I = M.Code[PC];
        if (I.K == x86::Instr::Kind::Call && M.Entries.count(I.Name) &&
            Ctx && Ctx->Closed && Ctx->SelfResolvedEntries.count(I.Name) &&
            !Summaries.count(I.Name) && Seen.insert(I.Name).second)
          Work.push_back(I.Name);
      }
    }
    return Group;
  }

  /// Builds (and memoizes) the summary of same-module entry \p Name as
  /// a joint Kleene fixpoint over its recursive group. Every member
  /// starts at bottom ("does nothing, never returns" — the least
  /// element: preloads, drains, escapes and AtRet only grow from there,
  /// covers only shrink), walks re-run with emissions gated off until
  /// no member's summary changes, then one final emitting walk per
  /// member reports each member's own foreground effects exactly once
  /// against the converged summaries. A recursive spin-loop thus gets a
  /// real summary (and its caller a real verdict) instead of the old
  /// one-pass memoization's invalid summary, which capped every
  /// recursive or mutually-recursive callee at a boundary escape and
  /// the module at Unknown.
  const Summary &getSummary(const std::string &Name) {
    auto It = Summaries.find(Name);
    if (It != Summaries.end())
      return It->second;
    const std::vector<std::string> Group = summaryGroup(Name);
    for (const std::string &N : Group) {
      Summary Bottom;
      Bottom.Valid = true;
      Summaries.emplace(N, std::move(Bottom));
    }
    const bool SavedEmit = Emit;
    Emit = false;
    bool Converged = false;
    for (unsigned Iter = 0; Iter < MaxSummaryIters && !Converged; ++Iter) {
      Converged = true;
      for (const std::string &N : Group) {
        Summary S;
        walkEntry(N, /*SummaryMode=*/true, &S);
        S.Valid = true;
        Summary &Cur = Summaries[N];
        if (!summaryEq(Cur, S)) {
          Cur = std::move(S);
          Converged = false;
        }
      }
    }
    Emit = SavedEmit;
    if (!Converged) {
      note("summary fixpoint for the call group of entry '" + Name +
           "' did not settle within " + std::to_string(MaxSummaryIters) +
           " rounds — its call sites fall back to boundary escapes");
      for (const std::string &N : Group)
        Summaries[N] = InvalidSummary;
      return Summaries[Name];
    }
    // Final pass at the fixpoint: re-walk each member with emissions
    // live so its own triangles/certificates/escapes are reported once,
    // derived against the converged callee summaries.
    for (const std::string &N : Group) {
      Summary S;
      walkEntry(N, /*SummaryMode=*/true, &S);
      S.Valid = true;
      Summaries[N] = std::move(S);
    }
    return Summaries[Name];
  }

  /// Inlines a valid callee summary at a call site holding \p In and
  /// returns the fact after the call. \p S receives transitively
  /// recorded token interactions when the walk itself runs in summary
  /// mode (never dereferenced otherwise: the token id cannot occur in a
  /// standalone fact).
  Fact applySummary(const Summary &CS, const Fact &In, Summary *S) {
    // 1. Loads the callee may execute before the caller's buffer drains.
    for (const RobustAccess &L : CS.PreLoads) {
      for (const auto &KV : In) {
        unsigned Sid = KV.first;
        if (L.Cls == AccessClass::SharedKnown) {
          if (Sid != CallerToken &&
              Stores[Sid].Cls == AccessClass::SharedKnown &&
              Stores[Sid].Global == L.Global)
            continue; // same cell: the load forwards from the buffer
          if (KV.second.count(L.Global))
            continue; // a later pending store to the cell covers it
        }
        if (Sid == CallerToken) {
          if (S->PreLoadPCs.insert(L.PC).second)
            S->PreLoads.push_back(L);
        } else {
          emitTriangle(Sid, L, In);
        }
      }
    }
    // 2. Drain points the caller's buffer reaches inside the callee.
    for (unsigned D : CS.TokenDrainPCs)
      for (const auto &KV : In) {
        if (KV.first == CallerToken)
          S->TokenDrainPCs.insert(D);
        else
          emitCert(KV.first, D, /*AtExit=*/false);
      }
    // 3. Boundary crossings the caller's buffer reaches inside.
    for (const auto &Esc : CS.TokenEscapes)
      for (const auto &KV : In) {
        if (KV.first == CallerToken)
          S->TokenEscapes.insert(Esc);
        else
          emitEscape(KV.first, Esc.first, Esc.second, In);
      }
    // 4. The fact after the call: the caller's stores survive only when
    // the token reaches some ret undrained (gaining the callee's
    // must-stores behind the whole buffer as covers), and the callee's
    // own leftover pending stores join in.
    Fact Out;
    if (CS.HasRet) {
      auto TokIt = CS.AtRet.find(CallerToken);
      if (TokIt != CS.AtRet.end()) {
        for (const auto &KV : In) {
          std::set<std::string> Cov = KV.second;
          Cov.insert(TokIt->second.begin(), TokIt->second.end());
          Out[KV.first] = std::move(Cov);
        }
      }
      for (const auto &KV : CS.AtRet) {
        if (KV.first == CallerToken)
          continue;
        auto OIt = Out.find(KV.first);
        if (OIt == Out.end()) {
          Out[KV.first] = KV.second;
        } else {
          std::set<std::string> Inter;
          std::set_intersection(OIt->second.begin(), OIt->second.end(),
                                KV.second.begin(), KV.second.end(),
                                std::inserter(Inter, Inter.begin()));
          OIt->second = std::move(Inter);
        }
      }
    }
    return Out;
  }

  /// The ordered pending-store dataflow over one entry's CFG. In summary
  /// mode the initial fact carries the CallerToken and \p S records its
  /// interactions; in standalone mode \p S is unused.
  void walkEntry(const std::string &Name, bool SummaryMode, Summary *S) {
    EntryState &E = prepareEntry(Name);
    if (E.Reachable.empty())
      return;
    const bool Discharge = !SummaryMode && Ctx && Ctx->Closed &&
                           Ctx->RootOnlyEntries.count(Name) > 0;

    std::map<unsigned, Fact> FactAt;
    std::map<unsigned, std::set<unsigned>> PendAt;
    Fact Init;
    if (SummaryMode)
      Init[CallerToken];
    FactAt[E.EI->PCIndex] = Init;
    PendAt[E.EI->PCIndex];
    std::deque<unsigned> Work{E.EI->PCIndex};
    std::set<unsigned> InWork{E.EI->PCIndex};

    while (!Work.empty()) {
      unsigned PC = Work.front();
      Work.pop_front();
      InWork.erase(PC);
      const x86::Instr &I = M.Code[PC];
      Fact Out = FactAt[PC];
      std::set<unsigned> Pend = PendAt[PC];

      if (x86::drainsStoreBuffer(I)) {
        for (const auto &KV : Out) {
          if (KV.first == CallerToken)
            S->TokenDrainPCs.insert(PC);
          else
            emitCert(KV.first, PC, /*AtExit=*/false);
        }
        Out.clear();
        // Full barrier on the load axis too: the dynamic model refuses
        // to execute a drain with loads still pending, so completion is
        // forced before the barrier — a fence certificate.
        for (unsigned Lid : Pend)
          emitLoadCert(Lid, PC, /*AtExit=*/false, /*Dependency=*/false);
        Pend.clear();
      } else if (I.K == x86::Instr::Kind::Call && M.Entries.count(I.Name) &&
                 Ctx && Ctx->Closed &&
                 Ctx->SelfResolvedEntries.count(I.Name)) {
        // A call that provably dispatches to another entry of this very
        // module: inline its summarized effect instead of escaping.
        // Pending loads escape even here — the summaries cover the
        // store axis only (a deliberate conservatism; the dependency
        // window of a deferable load rarely spans a call).
        for (unsigned Lid : Pend)
          emitLoadEscape(Lid, PC, E.Name);
        Pend.clear();
        const Summary &CS = getSummary(I.Name);
        if (CS.Valid)
          Out = applySummary(CS, Out, S);
        else {
          escapeAll(Out, PC, E.Name, S);
          Out.clear();
        }
      } else if (x86::crossesModuleBoundary(I)) {
        if (I.K == x86::Instr::Kind::Ret && SummaryMode) {
          // The caller resumes here: hand the fact back through AtRet.
          S->AtRet = S->HasRet ? joinFacts(S->AtRet, Out) : Out;
          S->HasRet = true;
          Out.clear();
          for (unsigned Lid : Pend)
            emitLoadEscape(Lid, PC, E.Name);
          Pend.clear();
        } else if (I.K == x86::Instr::Kind::Ret && Discharge) {
          // Root-only entry: no call site anywhere names it, so every
          // activation is a thread root and this ret ends the thread.
          // The buffer drains with no later same-thread load possible —
          // the flush at exit is a valid linearization point.
          if (!Out.empty())
            note("entry '" + Name + "': pending store(s) retired at thread "
                 "exit (root-only entry: no call site names it, so ret "
                 "terminates the thread)");
          for (const auto &KV : Out)
            emitCert(KV.first, PC, /*AtExit=*/true);
          Out.clear();
          // A load still pending at thread exit is never used: no
          // dependent instruction follows, so its completion order is
          // unobservable — discharged like the stores.
          for (unsigned Lid : Pend)
            emitLoadCert(Lid, PC, /*AtExit=*/true, /*Dependency=*/false);
          Pend.clear();
        } else {
          // The executable model drains here, but the analysis does not
          // credit it: the buffered store escapes into the caller/callee.
          escapeAll(Out, PC, E.Name, S);
          Out.clear();
          for (unsigned Lid : Pend)
            emitLoadEscape(Lid, PC, E.Name);
          Pend.clear();
        }
      } else {
        auto Effects = x86::memEffects(I);
        for (unsigned EIx = 0; EIx < Effects.size(); ++EIx) {
          const x86::MemEffect &Ef = Effects[EIx];
          RobustAccess A = classify(E, PC, *Ef.Op, Ef.IsStore);
          if (A.Cls == AccessClass::Confined)
            continue;
          if (Ef.IsLoad) {
            RobustAccess LoadA = A;
            LoadA.Write = false;
            for (const auto &KV : Out) {
              unsigned Sid = KV.first;
              if (A.Cls == AccessClass::SharedKnown) {
                // Same known cell: the load snoops the buffered value —
                // SC-explainable (flush immediately after the store).
                if (Sid != CallerToken &&
                    Stores[Sid].Cls == AccessClass::SharedKnown &&
                    Stores[Sid].Global == A.Global)
                  continue;
                // FIFO cover: a store to the loaded cell must still be
                // pending behind Sid. Either it is still buffered when
                // this load executes (the load forwards from the buffer
                // and never reads memory) or — FIFO — Sid has already
                // been flushed. Both ways the pair is SC-explainable.
                if (KV.second.count(A.Global))
                  continue;
              }
              if (Sid == CallerToken) {
                if (S->PreLoadPCs.insert(LoadA.PC).second)
                  S->PreLoads.push_back(LoadA);
              } else {
                emitTriangle(Sid, LoadA, Out);
              }
            }
          }
          if (Ef.IsStore) {
            unsigned Sid = StoreId.at({PC, EIx});
            if (A.Cls == AccessClass::SharedKnown)
              for (auto &KV : Out)
                KV.second.insert(A.Global);
            // The newest instance of this site is itself uncovered
            // (reset on loop re-entry keeps the must-claim sound).
            Out[Sid].clear();
          }
        }
        if (I.K == x86::Instr::Kind::Print) {
          // An observable event with stores still buffered distinguishes
          // TSO from SC divergence-sensitively: the event proves the
          // thread progressed past the store, yet an unfair schedule can
          // starve the flush while a peer loops on the stale cell forever
          // — a divergence no SC schedule reproduces (under SC the store
          // hits memory before the event). The store stays pending (no
          // clear): the event does not retire it.
          escapeAll(Out, PC, E.Name, S);
        }
        if (Table.LoadsDefer)
          stepPendingLoads(E, PC, Pend);
      }

      for (unsigned Succ : x86::successors(M, PC)) {
        auto It = FactAt.find(Succ);
        if (It == FactAt.end()) {
          FactAt[Succ] = Out;
          PendAt[Succ] = Pend;
          if (InWork.insert(Succ).second)
            Work.push_back(Succ);
        } else {
          bool Changed = false;
          Fact Joined = joinFacts(It->second, Out);
          if (Joined != It->second) {
            It->second = std::move(Joined);
            Changed = true;
          }
          // Pending loads join by union (may-pending).
          std::set<unsigned> &PS = PendAt[Succ];
          for (unsigned Lid : Pend)
            Changed = PS.insert(Lid).second || Changed;
          if (Changed && InWork.insert(Succ).second)
            Work.push_back(Succ);
        }
      }
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

const char *ccc::analysis::robustVerdictName(RobustVerdict V) {
  switch (V) {
  case RobustVerdict::Robust:
    return "robust";
  case RobustVerdict::NotRobust:
    return "not-robust";
  case RobustVerdict::Unknown:
    return "unknown";
  }
  return "?";
}

std::string RobustAccess::describe() const {
  std::string Cl = Cls == AccessClass::Confined
                       ? "confined"
                       : (Cls == AccessClass::SharedKnown ? "shared"
                                                          : "shared?");
  return Entry + "+" + std::to_string(PC) + ": " +
         (Write ? "store " : "load ") + Global + " [" + Cl + "] (" + Text +
         ")";
}

std::string TriangularWitness::describe() const {
  StrBuilder B;
  B << (Tentative ? "tentative " : "")
    << (DeferredLoad ? "load-reorder race: deferable "
                     : "triangular race: unfenced ")
    << Store.describe();
  if (Load)
    B << " followed by " << Load->describe();
  if (Escape)
    B << " buffered across observable point at " << Escape->Entry << '+'
      << Escape->PC << " (" << Escape->Text << ")";
  if (!Path.empty()) {
    B << " via path [";
    for (std::size_t I = 0; I < Path.size(); ++I)
      B << (I ? "," : "") << Path[I];
    B << ']';
  }
  if (!BufferPCs.empty()) {
    B << " with buffer-mates at PCs [";
    for (std::size_t I = 0; I < BufferPCs.size(); ++I)
      B << (I ? "," : "") << BufferPCs[I];
    B << ']';
  }
  return B.take();
}

std::string FenceCert::describe() const {
  return Entry + (DeferredLoad ? ": deferable load at PC " : ": store at PC ") +
         std::to_string(StorePC) + " (" + StoreText + ") " +
         (Dependency ? "completion-forced" : "drained") + " at PC " +
         std::to_string(DrainPC) + " (" + DrainText + ")" +
         (AtThreadExit ? " [thread exit]" : "");
}

std::string RobustReport::inconsistency() const {
  switch (Verdict) {
  case RobustVerdict::Robust:
    if (!Witnesses.empty() || WitnessedStores != 0 || WitnessedLoads != 0)
      return "Robust verdict with witnessed accesses";
    if (CertifiedStores + DivergentStores != SharedStores)
      return "Robust verdict but certificates are incomplete: certified " +
             std::to_string(CertifiedStores) + " + divergent " +
             std::to_string(DivergentStores) + " != shared " +
             std::to_string(SharedStores);
    if (CertifiedLoads + DivergentLoads != DeferableLoads)
      return "Robust verdict but load certificates are incomplete: "
             "certified " +
             std::to_string(CertifiedLoads) + " + divergent " +
             std::to_string(DivergentLoads) + " != deferable " +
             std::to_string(DeferableLoads);
    break;
  case RobustVerdict::NotRobust: {
    bool AnyConcrete = false;
    for (const TriangularWitness &W : Witnesses)
      AnyConcrete = AnyConcrete || !W.Tentative;
    if (!AnyConcrete)
      return "NotRobust verdict without a concrete witness";
    break;
  }
  case RobustVerdict::Unknown:
    if (Witnesses.empty())
      return "Unknown verdict without a tentative witness";
    for (const TriangularWitness &W : Witnesses)
      if (!W.Tentative)
        return "Unknown verdict despite a concrete witness";
    break;
  }
  return {};
}

std::string RobustReport::toString() const {
  StrBuilder B;
  B << "robustness verdict under " << memModelName(Model) << ": "
    << robustVerdictName(Verdict) << " (entries " << Entries
    << ", shared stores " << SharedStores << " [certified "
    << CertifiedStores << ", witnessed " << WitnessedStores << ", divergent "
    << DivergentStores << "], shared loads " << SharedLoads;
  if (DeferableLoads != 0)
    B << " [deferable " << DeferableLoads << ": certified " << CertifiedLoads
      << ", witnessed " << WitnessedLoads << ", divergent " << DivergentLoads
      << "]";
  B << ", confined " << ConfinedAccesses << ", locked " << LockedOps
    << ")\n";
  for (const TriangularWitness &W : Witnesses)
    B << "  witness: " << W.describe() << '\n';
  for (const FenceCert &C : Certificates)
    B << "  fence: " << C.describe() << '\n';
  for (const std::string &N : Notes)
    B << "  note: " << N << '\n';
  return B.take();
}

RobustReport ccc::analysis::robustness(const x86::Module &M,
                                       const RobustContext *Ctx,
                                       MemModel Model) {
  RobustReport R;
  R.Model = Model;
  R.Entries = static_cast<unsigned>(M.Entries.size());
  const ReorderTable Table = reorderTableFor(Model);
  if (!Table.StoresLinger && !Table.LoadsDefer) {
    // The model reorders nothing: every trace is an SC trace verbatim.
    // No per-site accounting — the partition invariants of
    // inconsistency() hold vacuously (0 + 0 == 0).
    R.Verdict = RobustVerdict::Robust;
    R.Notes.push_back(std::string("declared model '") + memModelName(Model) +
                      "' permits no reordering — trivially SC-equivalent");
    return R;
  }
  ModuleAnalysis A(M, Ctx, R, Table);
  for (const auto &E : M.Entries) {
    // Entries reached only through same-module calls are fully accounted
    // for by the summaries their call sites inline: a standalone walk
    // would re-impose the unknown-caller worst case (escape at ret) the
    // context just ruled out.
    if (Ctx && Ctx->Closed && Ctx->SummaryOnlyEntries.count(E.first))
      continue;
    A.walkEntry(E.first, /*SummaryMode=*/false, nullptr);
  }

  for (unsigned Sid = 0; Sid < A.Stores.size(); ++Sid) {
    bool C = A.Certified.count(Sid) > 0;
    bool W = A.Witnessed.count(Sid) > 0;
    if (C)
      ++R.CertifiedStores;
    if (W)
      ++R.WitnessedStores;
    if (!C && !W) {
      // A store never fenced and never witnessed can only sit on a path
      // that silently diverges before the next shared access — with no
      // subsequent load the flush point is a valid linearization point.
      ++R.DivergentStores;
      R.Notes.push_back("entry '" + A.Stores[Sid].Entry + "': store at PC " +
                        std::to_string(A.Stores[Sid].PC) + " (" +
                        A.Stores[Sid].Text +
                        ") only reaches divergent paths — " +
                        "SC-explainable without a fence");
    }
  }

  for (unsigned Lid = 0; Lid < A.Loads.size(); ++Lid) {
    bool C = A.CertifiedLoadIds.count(Lid) > 0;
    bool W = A.WitnessedLoadIds.count(Lid) > 0;
    if (C)
      ++R.CertifiedLoads;
    if (W)
      ++R.WitnessedLoads;
    if (!C && !W) {
      // Mirrors the divergent-store case: a deferable load whose value
      // is never used on any path that reaches another shared access
      // can complete at any time without an observable difference.
      ++R.DivergentLoads;
      R.Notes.push_back("entry '" + A.Loads[Lid].Entry +
                        "': deferable load at PC " +
                        std::to_string(A.Loads[Lid].PC) + " (" +
                        A.Loads[Lid].Text +
                        ") only reaches divergent paths — " +
                        "SC-explainable without a dependency");
    }
  }

  bool AnyHard = false, AnyTentative = false;
  for (const TriangularWitness &W : R.Witnesses)
    (W.Tentative ? AnyTentative : AnyHard) = true;
  if (AnyHard)
    R.Verdict = RobustVerdict::NotRobust;
  else if (AnyTentative)
    R.Verdict = RobustVerdict::Unknown;
  else
    R.Verdict = RobustVerdict::Robust;

  std::string Err = R.inconsistency();
  if (!Err.empty()) {
    assert(false && "RobustReport invariant violated");
    R.Notes.push_back("internal consistency violation: " + Err);
    if (R.robust())
      R.Verdict = RobustVerdict::Unknown;
  }
  return R;
}

std::map<std::string, RobustContext>
ccc::analysis::robustContexts(const Program &P) {
  std::map<std::string, RobustContext> Out;
  std::vector<const x86::X86Lang *> Langs;
  for (const ModuleDecl &D : P.modules()) {
    const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
    if (!L)
      return {}; // open program: a non-x86 module hides call sites/stores
    Langs.push_back(L);
  }
  if (Langs.empty())
    return {};

  // Entry name -> first defining module (the program's resolution order).
  std::map<std::string, unsigned> FirstDef;
  for (unsigned I = 0; I < Langs.size(); ++I)
    for (const auto &E : Langs[I]->module().Entries)
      FirstDef.emplace(E.first, I);

  // Every call/tailcall site in the program, by callee name.
  struct SiteSet {
    bool TailCalled = false;
    std::set<unsigned> CallerMods;
  };
  std::map<std::string, SiteSet> Sites;
  for (unsigned I = 0; I < Langs.size(); ++I)
    for (const x86::Instr &In : Langs[I]->module().Code)
      if (In.K == x86::Instr::Kind::Call ||
          In.K == x86::Instr::Kind::TailCall) {
        SiteSet &SS = Sites[In.Name];
        SS.TailCalled = SS.TailCalled || In.K == x86::Instr::Kind::TailCall;
        SS.CallerMods.insert(I);
      }

  std::set<std::string> Roots;
  for (unsigned T = 0; T < P.numThreads(); ++T)
    Roots.insert(P.threadEntry(T));

  // Per-module local points-to, closed program-wide. A neighbour store
  // (pointer value written through a named global's address plus a
  // nonzero displacement) is module-locally unresolved, but the linker's
  // layout pins its victim exactly: resolve it here and degrade only the
  // affected cell — in whichever module owns it — then re-close every
  // map until no store publishes anything new. A foreign pointee is not
  // representable in the victim module's namespace, so a cross-module
  // injection degrades the victim cell to Wild; a same-module one keeps
  // the named pointees. Only a store of a may-pointer value through a
  // completely unknown base (Top) still distrusts every map: it could
  // land in any cell of any module. Termination: the injection sets only
  // grow and are bounded by cells x pointee names.
  std::map<Addr, std::pair<unsigned, std::string>> CellAt;
  if (P.linked())
    for (unsigned I = 0; I < Langs.size(); ++I)
      for (const GlobalVar &G : P.modules()[I].GE.vars())
        CellAt[G.Address] = {I, G.Name};

  std::vector<std::map<std::string, RobustContext::Pointees>> Inject(
      Langs.size());
  std::vector<PtsBuildResult> Pts;
  bool Contaminated = false;
  for (;;) {
    Pts.clear();
    Contaminated = false;
    for (unsigned I = 0; I < Langs.size(); ++I) {
      Pts.push_back(computePointsTo(Langs[I]->module(), &Inject[I]));
      Contaminated = Contaminated || Pts.back().MayPtrUnresolved;
      // Without linker addresses a neighbour store cannot be resolved to
      // its victim cell; fall back to distrusting every map.
      Contaminated =
          Contaminated || (!P.linked() && !Pts.back().Neighbours.empty());
    }
    if (Contaminated)
      break;
    bool Grew = false;
    for (unsigned I = 0; I < Langs.size(); ++I) {
      for (const auto &NS : Pts[I].Neighbours) {
        std::optional<Addr> Base = P.modules()[I].GE.lookup(NS.first.first);
        if (!Base)
          continue; // undeclared base: the address never materializes
        const int64_t VictimAddr = int64_t(*Base) + NS.first.second;
        auto It = VictimAddr >= 0 ? CellAt.find(Addr(VictimAddr))
                                  : CellAt.end();
        if (It == CellAt.end())
          continue; // outside every global cell: irrelevant to the maps
        const auto &[VMod, VName] = It->second;
        RobustContext::Pointees &Dst = Inject[VMod][VName];
        if (VMod != I || NS.second.Wild) {
          if (!Dst.Wild) {
            Dst.Wild = true;
            Grew = true;
          }
        } else {
          for (const std::string &C : NS.second.Cells)
            Grew = Dst.Cells.insert(C).second || Grew;
        }
      }
    }
    if (!Grew)
      break;
  }

  for (unsigned I = 0; I < Langs.size(); ++I) {
    const x86::Module &M = Langs[I]->module();
    RobustContext C;
    C.Closed = true;
    for (const auto &E : M.Entries) {
      const std::string &N = E.first;
      auto SI = Sites.find(N);
      if (SI == Sites.end())
        C.RootOnlyEntries.insert(N);
      if (FirstDef.at(N) == I)
        C.SelfResolvedEntries.insert(N);
      if (SI != Sites.end() && !SI->second.TailCalled && !Roots.count(N) &&
          FirstDef.at(N) == I && SI->second.CallerMods.size() == 1 &&
          *SI->second.CallerMods.begin() == I)
        C.SummaryOnlyEntries.insert(N);
    }
    C.HasPointsTo = !Contaminated;
    if (C.HasPointsTo)
      C.GlobalPointsTo = Pts[I].PT;
    Out[P.modules()[I].Name] = std::move(C);
  }
  return Out;
}

bool ProgramRobustReport::allRobust() const {
  if (Modules.empty())
    return false;
  for (const ModuleRobustInfo &M : Modules)
    if (!M.Report.robust())
      return false;
  return true;
}

bool ProgramRobustReport::anyScSwitchable() const {
  for (const ModuleRobustInfo &M : Modules)
    if (M.Model != x86::MemModel::SC && M.Report.robust())
      return true;
  return false;
}

std::string ProgramRobustReport::toString() const {
  StrBuilder B;
  for (const ModuleRobustInfo &M : Modules) {
    B << "module '" << M.Name << "' (x86-" << memModelName(M.Model)
      << (M.ObjectMode ? ", object" : "") << "): "
      << robustVerdictName(M.Report.Verdict);
    if (M.AllowedByRefinement)
      B << " [allowed by refinement]";
    B << '\n' << M.Report.toString();
  }
  return B.take();
}

ProgramRobustReport ccc::analysis::programRobustness(const Program &P) {
  ProgramRobustReport R;
  std::map<std::string, RobustContext> Ctxs = robustContexts(P);
  for (const ModuleDecl &D : P.modules()) {
    const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
    if (!L)
      continue;
    ModuleRobustInfo Info;
    Info.Name = D.Name;
    Info.ObjectMode = L->objectMode();
    Info.Model = L->memModel();
    auto It = Ctxs.find(D.Name);
    // Each module is certified against its own declared model's table —
    // except that an SC-declared module is analyzed under TSO rather
    // than trivially discharged: the certificates are what justify an
    // SC declaration (e.g. after an earlier fast-path switch), so the
    // report stays informative.
    const MemModel AnalysisModel = Info.Model == x86::MemModel::SC
                                       ? x86::MemModel::TSO
                                       : Info.Model;
    Info.Report = robustness(L->module(),
                             It == Ctxs.end() ? nullptr : &It->second,
                             AnalysisModel);
    R.Modules.push_back(std::move(Info));
  }
  return R;
}

unsigned ccc::analysis::switchRobustToSc(Program &P,
                                        const ProgramRobustReport &R) {
  unsigned Switched = 0;
  for (const ModuleRobustInfo &Info : R.Modules) {
    if (Info.Model == x86::MemModel::SC || !Info.Report.robust())
      continue;
    for (unsigned I = 0; I < P.modules().size(); ++I) {
      ModuleDecl &D = P.module(I);
      auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
      if (!L || D.Name != Info.Name || L->memModel() != Info.Model)
        continue;
      D.Lang = std::make_unique<x86::X86Lang>(
          L->modulePtr(), x86::MemModel::SC, L->objectMode());
      if (P.linked())
        D.Lang->bindGlobals(&D.GE);
      ++Switched;
    }
  }
  return Switched;
}
