//===- core/WorldCommon.cpp - Shared global-semantics machinery -----------===//

#include "core/WorldCommon.h"

#include "support/Hashing.h"
#include "support/StrUtil.h"

#include <cassert>
#include <deque>
#include <set>

using namespace ccc;

std::string GLabel::toString() const {
  switch (K) {
  case Kind::Tau:
    return "tau";
  case Kind::Event:
    return "ev(" + std::to_string(EventVal) + ")";
  case Kind::Sw:
    return "sw";
  }
  return "?";
}

FrameStepStatus ccc::applyFrameStep(const Program &P, ThreadState &T,
                                    const FreeList &ThreadRegion,
                                    const LocalStep &LS, Mem &M,
                                    std::string &AbortReason) {
  assert(!T.finished() && "stepping a finished thread");
  switch (LS.M.K) {
  case Msg::Kind::Tau:
  case Msg::Kind::Event:
    T.setTopCore(LS.Next);
    M = LS.NextMem;
    return FrameStepStatus::Ok;

  case Msg::Kind::Ret: {
    M = LS.NextMem;
    // Stack discipline: the frame's free-list region becomes reusable by
    // the next call. The memory cells stay allocated (the paper's
    // forward property — the domain never shrinks); re-entry overwrites
    // them at the allocation step.
    T.popFrame(Program::FrameRegionSize);
    if (T.numFrames() == 0) {
      T.setFinished();
      return FrameStepStatus::ThreadFinished;
    }
    const ModuleDecl &Caller = P.module(T.top().ModIdx);
    CoreRef Resumed = Caller.Lang->applyReturn(*T.top().C, LS.M.RetVal);
    if (!Resumed) {
      AbortReason = "caller cannot accept return value";
      return FrameStepStatus::Abort;
    }
    T.setTopCore(std::move(Resumed));
    return FrameStepStatus::Ok;
  }

  case Msg::Kind::ExtCall:
  case Msg::Kind::TailCall: {
    M = LS.NextMem;
    // The calling core has already stepped to its after-call continuation.
    T.setTopCore(LS.Next);
    if (LS.M.K == Msg::Kind::TailCall)
      T.popFrame(Program::FrameRegionSize);
    auto Resolved = P.resolveEntry(LS.M.Callee, LS.M.Args);
    if (!Resolved) {
      AbortReason = "unknown external entry: " + LS.M.Callee;
      return FrameStepStatus::Abort;
    }
    if (T.nextFrameOff() + Program::FrameRegionSize > ThreadRegion.size()) {
      AbortReason = "thread free list exhausted (call depth)";
      return FrameStepStatus::Abort;
    }
    FreeList FrameF =
        ThreadRegion.subRegion(T.nextFrameOff(), Program::FrameRegionSize);
    T.pushFrame(Frame{Resolved->first, Resolved->second, FrameF},
                Program::FrameRegionSize);
    return FrameStepStatus::Ok;
  }

  case Msg::Kind::EntAtom:
  case Msg::Kind::ExtAtom:
  case Msg::Kind::Spawn:
    assert(false && "atomic boundaries and spawn are handled by the caller");
    return FrameStepStatus::Abort;
  }
  return FrameStepStatus::Abort;
}

bool ccc::spawnThread(const Program &P, std::vector<ThreadState> &Threads,
                      const Msg &M, std::string &AbortReason) {
  auto Resolved = P.resolveEntry(M.Callee, M.Args);
  if (!Resolved) {
    AbortReason = "unknown spawn entry: " + M.Callee;
    return false;
  }
  ThreadId NewTid = static_cast<ThreadId>(Threads.size());
  FreeList Region = P.threadRegion(NewTid);
  ThreadState TS;
  TS.pushFrame(Frame{Resolved->first, Resolved->second,
                     Region.subRegion(0, Program::FrameRegionSize)},
               Program::FrameRegionSize);
  Threads.push_back(std::move(TS));
  return true;
}

const std::string &ThreadState::key() const {
  if (!CacheValid)
    hash(); // fills both cache members
  return KeyCache;
}

uint64_t ThreadState::hash() const {
  if (CacheValid)
    return HashCache;
  Hasher64 H;
  if (Finished) {
    KeyCache = "fin";
    H.b(true);
  } else {
    StrBuilder B;
    B << "o" << NextFrameOff;
    H.b(false);
    H.u32(NextFrameOff);
    for (const Frame &F : Stack) {
      B << "|m" << F.ModIdx << '@' << static_cast<uint64_t>(F.F.base())
        << ':' << F.C->key();
      H.u32(F.ModIdx);
      H.u32(F.F.base());
      H.u64(F.C->keyHash());
    }
    KeyCache = B.take();
  }
  HashCache = H.get();
  CacheValid = true;
  return HashCache;
}

uint32_t ThreadState::residueRoot(ResidueBuf &B) const {
  uint32_t Id;
  if (B.store().cacheHit(ResidueCache, Id))
    return Id;
  Id = B.subIntern([&] {
    if (Finished) {
      B.word(1);
    } else {
      // Mirrors key(): the frame cursor, then per frame the module
      // index, the frame region base, and the core's own subtree.
      // Frame sizes are fixed (Program::FrameRegionSize), so the base
      // plus the core pin the frame exactly as the string key does.
      B.word(0);
      B.word(NextFrameOff);
      for (const Frame &F : Stack) {
        B.word(F.ModIdx);
        B.word64(static_cast<uint64_t>(F.F.base()));
        B.word(F.C->residueRoot(B));
      }
    }
  });
  ResidueCache = B.store().cacheWord(Id);
  return Id;
}

std::vector<Footprint> ccc::predictAtomicBlock(const ModuleLang &Lang,
                                               const FreeList &F,
                                               const CoreRef &AfterEnt,
                                               const Mem &M,
                                               unsigned MaxStates) {
  struct Item {
    CoreRef C;
    Mem M;
    Footprint Acc;
  };
  std::vector<Footprint> Out;
  std::deque<Item> Work;
  std::set<std::string> Seen;
  Work.push_back({AfterEnt, M, Footprint::emp()});
  unsigned Visited = 0;
  while (!Work.empty()) {
    Item Cur = std::move(Work.front());
    Work.pop_front();
    if (++Visited > MaxStates) {
      // Conservative cutoff: report what was accumulated.
      Out.push_back(Cur.Acc);
      continue;
    }
    std::string Key = Cur.C->key() + "#" + Cur.M.key();
    if (!Seen.insert(Key).second)
      continue;
    auto Steps = Lang.step(F, *Cur.C, Cur.M);
    if (Steps.empty()) {
      Out.push_back(Cur.Acc);
      continue;
    }
    for (const LocalStep &LS : Steps) {
      Footprint Acc = Cur.Acc.unioned(LS.FP);
      if (LS.Abort || LS.M.K == Msg::Kind::ExtAtom ||
          LS.M.K != Msg::Kind::Tau) {
        // End of the block (or a non-silent step we do not follow).
        Out.push_back(Acc);
        continue;
      }
      Work.push_back({LS.Next, LS.NextMem, std::move(Acc)});
    }
  }
  return Out;
}
