//===- tests/GlobalSemanticsTest.cpp - Fig. 7 rule-level tests -------------===//
//
// Rule-level tests of the preemptive and non-preemptive global semantics
// (Fig. 7): atomic-bit discipline (EntAt/ExtAt), the Switch rule's side
// condition d = 0, non-preemptive switch points, and the shapes of
// successor sets, inspected directly through World::succ / NPWorld::succ.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/NPWorld.h"
#include "core/Semantics.h"
#include "core/World.h"

#include <gtest/gtest.h>

using namespace ccc;

namespace {

Program twoThreads(const std::string &Src, const std::string &E1,
                   const std::string &E2) {
  Program P;
  cimp::addCImpModule(P, "m", Src);
  P.addThread(E1);
  P.addThread(E2);
  P.link();
  return P;
}

unsigned countSw(const std::vector<GSucc<World>> &S) {
  unsigned N = 0;
  for (const auto &X : S)
    if (X.L.K == GLabel::Kind::Sw)
      ++N;
  return N;
}

/// Advances the world by the first non-switch successor.
World stepLocal(const World &W) {
  for (const auto &S : W.succ())
    if (S.L.K != GLabel::Kind::Sw)
      return S.Next;
  ADD_FAILURE() << "no local step available";
  return W;
}

} // namespace

TEST(PreemptiveRules, SwitchAvailableOutsideAtomicOnly) {
  Program P = twoThreads(R"(
    global x = 0;
    t1() { < [x] := 1; > }
    t2() { skip; }
  )",
                         "t1", "t2");
  World W = World::load(P);
  EXPECT_FALSE(W.inAtomic());
  // Outside the block: one local step plus one switch (to t2).
  EXPECT_EQ(countSw(W.succ()), 1u);

  // Step t1 into its atomic block: EntAtom sets d = 1; no switches.
  World In = stepLocal(W);
  EXPECT_TRUE(In.inAtomic());
  EXPECT_EQ(countSw(In.succ()), 0u);

  // Execute the store and leave the block: switches come back.
  World AfterStore = stepLocal(In);
  World Out = stepLocal(AfterStore);
  EXPECT_FALSE(Out.inAtomic());
  EXPECT_EQ(countSw(Out.succ()), 1u);
}

TEST(PreemptiveRules, SwitchTargetsOnlyLiveThreads) {
  Program P = twoThreads("t1() { print(1); }\nt2() { skip; }", "t1", "t2");
  World W = World::load(P);
  // Run t2 (switch there first) to completion: alloc-free CImp thread
  // finishes in two steps (skip, implicit ret).
  World AtT2 = W.succ().back().Next;
  ASSERT_EQ(AtT2.curThread(), 1u);
  World Fin = stepLocal(stepLocal(AtT2));
  EXPECT_TRUE(Fin.thread(1).finished());
  // Back at scheduling: t2 is finished, so no switch edge targets it.
  for (const auto &S : Fin.succ()) {
    if (S.L.K == GLabel::Kind::Sw) {
      EXPECT_NE(S.Next.curThread(), 1u);
    }
  }
}

TEST(PreemptiveRules, RacePredictionRequiresD0) {
  Program P = twoThreads(R"(
    global x = 0;
    t1() { < [x] := 1; [x] := 2; > }
    t2() { skip; }
  )",
                         "t1", "t2");
  World W = World::load(P);
  EXPECT_TRUE(W.racePredictable());
  World In = stepLocal(W); // inside the atomic block
  EXPECT_FALSE(In.racePredictable());
}

TEST(NonPreemptiveRules, TauStepsDoNotSwitch) {
  Program P = twoThreads(R"(
    t1() { a := 1; b := 2; c := a + b; }
    t2() { skip; }
  )",
                         "t1", "t2");
  NPWorld W = NPWorld::load(P, 0);
  // Plain assignments keep control in t1 with a single tau successor.
  for (int I = 0; I < 3; ++I) {
    auto S = W.succ();
    ASSERT_EQ(S.size(), 1u);
    EXPECT_EQ(S[0].L.K, GLabel::Kind::Tau);
    EXPECT_EQ(S[0].Next.curThread(), 0u);
    W = S[0].Next;
  }
}

TEST(NonPreemptiveRules, AtomicBoundariesAreSwitchPoints) {
  Program P = twoThreads(R"(
    global x = 0;
    t1() { < [x] := 1; > }
    t2() { skip; }
  )",
                         "t1", "t2");
  NPWorld W = NPWorld::load(P, 0);
  // The EntAtom step yields one successor per live thread (t1, t2).
  auto S = W.succ();
  ASSERT_EQ(S.size(), 2u);
  for (const auto &X : S) {
    EXPECT_EQ(X.L.K, GLabel::Kind::Sw);
    // The atomic-bit map records t1 inside its block either way.
    EXPECT_TRUE(X.Next.threadInAtomic(0));
  }
}

TEST(NonPreemptiveRules, EventsAreSwitchPoints) {
  Program P = twoThreads("t1() { print(5); }\nt2() { skip; }", "t1", "t2");
  NPWorld W = NPWorld::load(P, 0);
  auto S = W.succ();
  ASSERT_EQ(S.size(), 2u); // one per live thread
  for (const auto &X : S) {
    EXPECT_TRUE(X.L.isEvent());
    EXPECT_EQ(X.L.EventVal, 5);
  }
}

TEST(NonPreemptiveRules, MidAtomicThreadResumesItsBlock) {
  Program P = twoThreads(R"(
    global x = 0;
    t1() { < [x] := 1; [x] := 2; > print(9); }
    t2() { skip; }
  )",
                         "t1", "t2");
  NPWorld W = NPWorld::load(P, 0);
  // Enter the block, switch to t2.
  NPWorld AtT2 = W.succ()[1].Next;
  ASSERT_EQ(AtT2.curThread(), 1u);
  EXPECT_TRUE(AtT2.threadInAtomic(0));
  // t2's whole execution happens while t1 sits mid-block; the program
  // still terminates with print(9) — no deadlock, no abort.
  Explorer<NPWorld> E;
  E.build(AtT2);
  EXPECT_FALSE(E.anyAbort());
  TraceSet T = E.traces();
  EXPECT_TRUE(T.contains(Trace{{9}, TraceEnd::Done}));
}

TEST(GlobalRules, NestedAtomicAborts) {
  Program P = twoThreads(R"(
    t1() { < < skip; > > }
    t2() { skip; }
  )",
                         "t1", "t2");
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("nested"), std::string::npos);
}

TEST(GlobalRules, TerminationInsideAtomicAborts) {
  Program P = twoThreads(R"(
    t1() { < return 0; > }
    t2() { skip; }
  )",
                         "t1", "t2");
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("atomic"), std::string::npos);
}
