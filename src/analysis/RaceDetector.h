//===- analysis/RaceDetector.h - Combined DRF checking ----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The combined race detector: the static lockset certifier
/// (StaticRace.h) as a fast path in front of the exhaustive dynamic Race
/// rule of Fig. 9 (Explorer::findRace). When the static certificate
/// holds, the exponential preemptive exploration is skipped entirely (or,
/// under SampleConfirm, replaced by the far cheaper non-preemptive
/// exploration, which is equivalent for race detection by the paper's
/// NPDRF theorem). When the certificate is declined — potential races or
/// unanalyzable code — the detector falls back to the dynamic rule, whose
/// witness is ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_RACEDETECTOR_H
#define CASCC_ANALYSIS_RACEDETECTOR_H

#include "analysis/StaticRace.h"
#include "analysis/Robustness.h"
#include "core/Semantics.h"

#include <optional>

namespace ccc {
namespace analysis {

struct DetectOptions {
  /// Trust a static DRF certificate and skip exploration.
  bool UseStaticFastPath = true;
  /// When the fast path fires, still run the (cheap) non-preemptive
  /// exploration as a belt-and-braces confirmation of the certificate.
  bool SampleConfirm = false;
  /// Run the static robustness pass (Robustness.h) and — under
  /// detectRacesInPlace — execute certified-Robust buffered-model x86
  /// modules under MemModel::SC, pruning the store-buffer and
  /// pending-load dimensions of the explored state space. Sound by
  /// robustness: every TSO or Relaxed trace of a Robust module is
  /// SC-explainable, so race verdicts are unchanged.
  bool UseTsoFastPath = true;
  ExploreOptions Explore{};
};

struct DetectResult {
  StaticDrfReport Static;
  /// True when the static certificate short-circuited the preemptive
  /// exploration.
  bool FastPath = false;
  /// The final DRF verdict. False whenever Conclusive is false: a
  /// truncated exploration must not masquerade as a DRF certificate.
  bool Drf = false;
  /// False when the dynamic exploration hit its state cap without finding
  /// a witness — the verdict is then a bound, not a certificate.
  bool Conclusive = true;
  /// Dynamic witness, when the dynamic detector ran and found one.
  std::optional<RaceWitness> Witness;
  /// States explored dynamically (0 when the fast path skipped it).
  std::size_t ExploredStates = 0;
  /// Full engine statistics of the dynamic exploration, when it ran.
  ExploreStats Explore{};
  /// Robustness verdict of every x86 module (empty when the program has
  /// none). Populated by both entry points.
  ProgramRobustReport Tso;
  /// Modules actually downgraded to SC by detectRacesInPlace.
  unsigned ScSwitched = 0;
  double StaticMs = 0.0;
  double TsoMs = 0.0;
  double ExploreMs = 0.0;

  CheckVerdict verdict() const {
    if (Witness)
      return CheckVerdict::Refuted;
    return Conclusive ? CheckVerdict::Certified : CheckVerdict::Inconclusive;
  }
};

/// Runs the combined detector on a linked program. The TSO robustness
/// report is computed for the result, but the program is not modified.
DetectResult detectRaces(const Program &P, const DetectOptions &O = {});

/// As above, but when UseTsoFastPath is set, certified-Robust
/// buffered-model x86 modules of \p P are switched to MemModel::SC in
/// place before the exploration (switchRobustToSc) — the explorer then
/// never enumerates their store-buffer or pending-load interleavings. Deliberately a distinct name rather
/// than a non-const overload of detectRaces: mutating the caller's
/// program is opt-in, not something overload resolution should decide
/// from the constness of the argument.
DetectResult detectRacesInPlace(Program &P, const DetectOptions &O = {});

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_RACEDETECTOR_H
