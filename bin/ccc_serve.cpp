//===- bin/ccc_serve.cpp - Batch check server -----------------------------===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
// The verification-as-a-service entry point: a long-running binary that
// reads `.ccc` workload files — from a request list (`--requests`) and/or
// a watched job directory (`--jobs-dir`) — runs each file's check
// requests on the exploration worker pool under per-job budgets, and
// streams one BENCH-style JSON verdict record per check to stdout. The
// full run is also written as a sectioned JSON document (`--out`,
// section "serve") in exactly the BENCH_*.json shape, so
// tools/diff_bench_verdicts.py diffs a server run against checked-in
// goldens; the CI smoke test submits the corpus plus one deliberately
// under-budgeted job and fails on any certificate from a truncated run.
//
//===----------------------------------------------------------------------===//

#include "frontend/JobRunner.h"
#include "frontend/Workload.h"
#include "support/JsonOut.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace ccc;

namespace {

struct ServeOptions {
  std::string RequestsPath;
  std::string JobsDir;
  std::string OutPath = "BENCH_serve.json";
  unsigned Workers = 1;
  bool Por = true;
  bool FastPaths = true;
  bool Once = false;
  unsigned PollMs = 200;
  frontend::JobBudget DefaultBudget;
};

void printHelp(const char *Prog) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Batch check server: runs .ccc workload files' check requests and\n"
      "streams one JSON verdict record per check.\n"
      "\n"
      "  --requests FILE   request list, one job per line:\n"
      "                      <path.ccc> [name=ID] [states=N] [ms=X]\n"
      "                      [bytes=N]\n"
      "                    ('#' starts a comment; budgets override the\n"
      "                    --max-* defaults for that job)\n"
      "  --jobs-dir DIR    watch DIR for .ccc files; each job's verdicts\n"
      "                    are written next to it as <stem>.verdict.json\n"
      "                    (a job is skipped while its verdict file\n"
      "                    exists)\n"
      "  --once            process what is there now, then exit (instead\n"
      "                    of polling forever); implied by --requests\n"
      "                    alone\n"
      "  --out FILE        sectioned JSON document of the whole run\n"
      "                    (default BENCH_serve.json, section \"serve\")\n"
      "  --workers N       exploration worker-pool width (default 1;\n"
      "                    results are bit-identical at any width)\n"
      "  --no-por          explore without partial-order reduction\n"
      "  --no-fast-paths   dynamic-only DRF checks (skip the static\n"
      "                    lockset certificate and robustness SC switch,\n"
      "                    so budgets are always observable)\n"
      "  --max-states N    default per-job state budget (default 2000000)\n"
      "  --max-ms X        default per-job wall-clock budget in ms\n"
      "                    (default unlimited)\n"
      "  --max-bytes N     default per-job intern-store byte budget\n"
      "                    (default unlimited)\n"
      "  --poll-ms N       job-directory poll interval (default 200)\n"
      "  --help            show this text\n"
      "\n"
      "Truncated jobs report Inconclusive with the budget that tripped\n"
      "(truncated_by = states|time|memory), never a certificate.\n",
      Prog);
}

[[noreturn]] void usageError(const char *Prog, const std::string &Msg) {
  std::fprintf(stderr, "%s\n\n", Msg.c_str());
  printHelp(Prog);
  std::exit(2);
}

/// Parses `--flag=V` or `--flag V` style numeric option values.
bool numValue(const std::vector<std::string> &Args, std::size_t &I,
              const std::string &Flag, std::string &Out) {
  const std::string &Arg = Args[I];
  if (Arg == Flag) {
    if (I + 1 >= Args.size())
      return false;
    Out = Args[++I];
    return true;
  }
  if (Arg.rfind(Flag + "=", 0) == 0) {
    Out = Arg.substr(Flag.size() + 1);
    return !Out.empty();
  }
  return false;
}

ServeOptions parseArgs(int argc, char **argv) {
  const char *Prog = argc > 0 ? argv[0] : "ccc_serve";
  std::vector<std::string> Args(argv + 1, argv + argc);
  ServeOptions O;
  for (std::size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    std::string V;
    if (Arg == "--help" || Arg == "-h") {
      printHelp(Prog);
      std::exit(0);
    } else if (Arg == "--no-por") {
      O.Por = false;
    } else if (Arg == "--no-fast-paths") {
      O.FastPaths = false;
    } else if (Arg == "--once") {
      O.Once = true;
    } else if (numValue(Args, I, "--requests", V)) {
      O.RequestsPath = V;
    } else if (numValue(Args, I, "--jobs-dir", V)) {
      O.JobsDir = V;
    } else if (numValue(Args, I, "--out", V)) {
      O.OutPath = V;
    } else if (numValue(Args, I, "--workers", V)) {
      O.Workers = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
      if (O.Workers == 0)
        usageError(Prog, "bad value in '" + Arg + "'");
    } else if (numValue(Args, I, "--max-states", V)) {
      O.DefaultBudget.MaxStates =
          static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    } else if (numValue(Args, I, "--max-ms", V)) {
      O.DefaultBudget.MaxMs = std::strtod(V.c_str(), nullptr);
    } else if (numValue(Args, I, "--max-bytes", V)) {
      O.DefaultBudget.MaxStateBytes = std::strtoull(V.c_str(), nullptr, 10);
    } else if (numValue(Args, I, "--poll-ms", V)) {
      O.PollMs = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    } else {
      usageError(Prog, "unknown argument '" + Arg + "'");
    }
  }
  if (O.RequestsPath.empty() && O.JobsDir.empty())
    usageError(Prog, "one of --requests or --jobs-dir is required");
  return O;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Loads and runs one .ccc file; parse/build failures become one "Error"
/// outcome so every submitted job yields a record.
std::vector<frontend::JobOutcome> runFile(const ServeOptions &O,
                                          const std::string &Path,
                                          const std::string &Name,
                                          const frontend::JobBudget &Budget) {
  frontend::JobSpec S;
  S.Name = Name;
  S.Budget = Budget;
  S.Workers = O.Workers;
  S.Por = O.Por;
  S.FastPaths = O.FastPaths;

  std::string FailMsg;
  std::optional<std::string> Text = readFile(Path);
  if (!Text) {
    FailMsg = "cannot read '" + Path + "'";
  } else {
    frontend::ParseError PE;
    std::optional<frontend::WorkloadFile> W =
        frontend::parseWorkload(*Text, PE);
    if (!W)
      FailMsg = Path + ": " + PE.str();
    else
      S.W = std::move(*W);
  }
  if (!FailMsg.empty()) {
    frontend::JobOutcome Out;
    Out.Job = Name;
    Out.Check = "parse";
    Out.Verdict = "error";
    Out.Error = FailMsg;
    return {Out};
  }
  return frontend::runJob(S);
}

void emit(json::Log &Log, const std::vector<frontend::JobOutcome> &Outs) {
  for (const frontend::JobOutcome &Out : Outs) {
    const std::string J = Out.toJson();
    std::printf("%s\n", J.c_str());
    std::fflush(stdout);
    Log.add("serve", J);
  }
}

/// One request-list line: `<path> [name=ID] [states=N] [ms=X] [bytes=N]`.
bool runRequestLine(const ServeOptions &O, const std::string &Line,
                    unsigned LineNo, json::Log &Log) {
  std::istringstream SS(Line);
  std::string Path, Tok;
  if (!(SS >> Path) || Path[0] == '#')
    return true; // blank or comment line
  std::string Name = std::filesystem::path(Path).stem().string();
  frontend::JobBudget Budget = O.DefaultBudget;
  while (SS >> Tok) {
    if (Tok[0] == '#')
      break;
    const std::size_t Eq = Tok.find('=');
    const std::string Key = Tok.substr(0, Eq);
    const std::string Val = Eq == std::string::npos ? "" : Tok.substr(Eq + 1);
    if (Key == "name" && !Val.empty()) {
      Name = Val;
    } else if (Key == "states" && !Val.empty()) {
      Budget.MaxStates =
          static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Key == "ms" && !Val.empty()) {
      Budget.MaxMs = std::strtod(Val.c_str(), nullptr);
    } else if (Key == "bytes" && !Val.empty()) {
      Budget.MaxStateBytes = std::strtoull(Val.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "requests line %u: bad token '%s'\n", LineNo,
                   Tok.c_str());
      return false;
    }
  }
  emit(Log, runFile(O, Path, Name, Budget));
  return true;
}

bool drainRequests(const ServeOptions &O, json::Log &Log) {
  std::ifstream In(O.RequestsPath);
  if (!In) {
    std::fprintf(stderr, "cannot read request list '%s'\n",
                 O.RequestsPath.c_str());
    return false;
  }
  std::string Line;
  unsigned LineNo = 0;
  bool Ok = true;
  while (std::getline(In, Line))
    Ok &= runRequestLine(O, Line, ++LineNo, Log);
  return Ok;
}

/// One pass over the job directory: every .ccc file without a verdict
/// file gets run, its verdicts written next to it.
void pollJobsDir(const ServeOptions &O, json::Log &Log,
                 std::set<std::string> &Done) {
  std::error_code EC;
  for (const auto &Entry :
       std::filesystem::directory_iterator(O.JobsDir, EC)) {
    if (EC)
      return;
    const std::filesystem::path P = Entry.path();
    if (P.extension() != ".ccc" || Done.count(P.string()))
      continue;
    std::filesystem::path VerdictPath = P;
    VerdictPath.replace_extension(".verdict.json");
    if (std::filesystem::exists(VerdictPath)) {
      Done.insert(P.string());
      continue;
    }
    const std::vector<frontend::JobOutcome> Outs =
        runFile(O, P.string(), P.stem().string(), O.DefaultBudget);
    emit(Log, Outs);
    json::Log JobLog;
    for (const frontend::JobOutcome &Out : Outs)
      JobLog.add("serve", Out.toJson());
    JobLog.write(VerdictPath.string());
    Done.insert(P.string());
  }
}

} // namespace

int main(int argc, char **argv) {
  const ServeOptions O = parseArgs(argc, argv);
  json::Log Log;
  bool Ok = true;

  if (!O.RequestsPath.empty())
    Ok &= drainRequests(O, Log);

  if (!O.JobsDir.empty()) {
    std::set<std::string> Done;
    pollJobsDir(O, Log, Done);
    while (!O.Once) {
      std::this_thread::sleep_for(std::chrono::milliseconds(O.PollMs));
      pollJobsDir(O, Log, Done);
    }
  }

  if (!Log.write(O.OutPath)) {
    std::fprintf(stderr, "cannot write '%s'\n", O.OutPath.c_str());
    Ok = false;
  }
  return Ok ? 0 : 1;
}
