//===- tests/TsoRobustTest.cpp - Static TSO robustness ---------------------===//
//
// The static SC-equivalence (robustness) pass: verdicts on the litmus
// tests and the lock library, witness contents, the SC fast path, and —
// the soundness cross-check — that every certified-Robust module has
// bit-identical explorer behaviour under SC and TSO.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetector.h"
#include "analysis/TsoRobust.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"
#include "x86/X86Lang.h"
#include "x86/X86Parser.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::analysis;

namespace {

TsoRobustReport analyzeSource(const std::string &Src) {
  return tsoRobustness(*x86::parseAsmOrDie(Src));
}

/// The per-module reports of a program, by module name.
const TsoRobustReport *reportFor(const ProgramTsoReport &R,
                                 const std::string &Name) {
  for (const ModuleTsoInfo &M : R.Modules)
    if (M.Name == Name)
      return &M.Report;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Litmus verdicts
//===----------------------------------------------------------------------===//

TEST(TsoRobust, PlainStoreBufferingIsNotRobust) {
  Program P = workload::sbLitmus(x86::MemModel::TSO, /*Fenced=*/false);
  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  const TsoRobustReport &M = R.Modules[0].Report;
  EXPECT_EQ(M.Verdict, TsoVerdict::NotRobust);
  // Both entries exhibit the triangle: store x / load y and store y /
  // load x, each with a concrete (non-tentative) witness.
  ASSERT_FALSE(M.Witnesses.empty());
  for (const TriangularWitness &W : M.Witnesses)
    EXPECT_FALSE(W.Tentative) << W.describe();
}

TEST(TsoRobust, FencedStoreBufferingIsRobust) {
  Program P = workload::sbLitmus(x86::MemModel::TSO, /*Fenced=*/true);
  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  const TsoRobustReport &M = R.Modules[0].Report;
  EXPECT_EQ(M.Verdict, TsoVerdict::Robust) << M.toString();
  // Each thread's store is certified against its mfence.
  EXPECT_EQ(M.Certificates.size(), 2u);
  EXPECT_TRUE(R.anyScSwitchable());
}

TEST(TsoRobust, MessagePassingIsRobust) {
  // MP is SC-equivalent on real TSO (FIFO buffers preserve the
  // store-store order). The former per-location criterion flagged it (a
  // documented false positive); the store-order-aware dataflow plus
  // thread-exit discharge certify it: t1's two stores retire when the
  // root-only entry returns and the thread exits, with no same-thread
  // load in between.
  Program P = workload::mpLitmus(x86::MemModel::TSO);
  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  EXPECT_EQ(R.Modules[0].Report.Verdict, TsoVerdict::Robust)
      << R.toString();
  // t1's stores hold thread-exit certificates, not fence certificates.
  unsigned AtExit = 0;
  for (const FenceCert &C : R.Modules[0].Report.Certificates)
    if (C.AtThreadExit)
      ++AtExit;
  EXPECT_EQ(AtExit, 2u) << R.toString();

  // The upgraded verdict is backed dynamically: TSO and SC trace sets
  // are identical, and the SC fast path now switches the module.
  TraceSet Tso = preemptiveTraces(P);
  TraceSet Sc = preemptiveTraces(workload::mpLitmus(x86::MemModel::SC));
  EXPECT_TRUE(Tso == Sc);
  EXPECT_EQ(applyScFastPath(P, R), 1u);
}

TEST(TsoRobust, MpPublishReadbackIsRobust) {
  // store data; store flag; load flag — the load is excused against the
  // flag store by store forwarding and against the data store by the
  // FIFO cover rule (the flag store is pending *behind* it). Only the
  // store-order-aware criterion certifies this shape.
  Program P = workload::mpPublishReadback(x86::MemModel::TSO);
  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  EXPECT_EQ(R.Modules[0].Report.Verdict, TsoVerdict::Robust)
      << R.toString();
  EXPECT_EQ(R.Modules[0].Report.Witnesses.size(), 0u);
  TraceSet Tso = preemptiveTraces(P);
  TraceSet Sc =
      preemptiveTraces(workload::mpPublishReadback(x86::MemModel::SC));
  EXPECT_TRUE(Tso == Sc);
}

TEST(TsoRobust, ReadbackBeforeOlderStoreStaysFlagged) {
  // The FIFO cover rule only excuses a load against stores *ahead* of a
  // pending same-cell store in the buffer. Here the load of x races with
  // the *later* pending store to y (x's store sits in front of y's, so
  // nothing covers the pair) — the plain SB shape, still flagged.
  TsoRobustReport R = analyzeSource(R"(
    .data x 0
    .data y 0
    .entry f 0 0
    f:
            movl $1, x
            movl $1, y
            movl x, %eax
            mfence
            printl %eax
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::NotRobust) << R.toString();
  bool Found = false;
  for (const TriangularWitness &W : R.Witnesses)
    if (W.Store.Global == "y" && W.Load && W.Load->Global == "x" &&
        !W.Tentative)
      Found = true;
  EXPECT_TRUE(Found) << R.toString();
}

TEST(TsoRobust, EventWhilePendingStoreIsAWitness) {
  // Robustness is divergence-sensitive: an observable event emitted with
  // a store still buffered proves the thread progressed past the store,
  // while an unfair schedule can starve the flush and let a peer loop on
  // the stale cell forever — no SC schedule reproduces that divergence.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .entry f 0 0
    f:
            movl $0, %ebx
            movl $1, g
            printl %ebx
            mfence
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::NotRobust) << R.toString();
  bool Found = false;
  for (const TriangularWitness &W : R.Witnesses)
    if (W.Store.Global == "g" && W.Escape &&
        W.Escape->Text.find("printl") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << R.toString();
}

//===----------------------------------------------------------------------===//
// pi_lock: the acceptance-criterion verdicts
//===----------------------------------------------------------------------===//

TEST(TsoRobust, PiLockIsNotRobustNamingTheReleaseStore) {
  TsoRobustReport R = analyzeSource(sync::piLockSource());
  EXPECT_EQ(R.Verdict, TsoVerdict::NotRobust);
  // The witness must name the unfenced release store in unlock: the plain
  // store of 1 into L that is still buffered when ret crosses the module
  // boundary (the client may complete the triangle).
  bool Found = false;
  for (const TriangularWitness &W : R.Witnesses) {
    if (W.Store.Entry == "unlock" && W.Store.Write &&
        W.Store.Global == "L" && W.Escape) {
      Found = true;
      EXPECT_FALSE(W.Tentative) << W.describe();
      EXPECT_NE(W.Store.Text.find("movl $1"), std::string::npos)
          << W.Store.Text;
    }
  }
  EXPECT_TRUE(Found) << R.toString();
  // The acquire path is clean: the cmpxchg is lock-prefixed and the spin
  // read has no pending store, so no witness comes from 'lock'.
  for (const TriangularWitness &W : R.Witnesses)
    EXPECT_EQ(W.Store.Entry, "unlock") << W.describe();
}

TEST(TsoRobust, FencedPiLockIsRobust) {
  TsoRobustReport R = analyzeSource(sync::piLockFencedSource());
  EXPECT_EQ(R.Verdict, TsoVerdict::Robust) << R.toString();
  ASSERT_EQ(R.Certificates.size(), 1u);
  EXPECT_EQ(R.Certificates[0].Entry, "unlock");
  EXPECT_NE(R.Certificates[0].DrainText.find("mfence"), std::string::npos);
}

TEST(TsoRobust, PiLockWeakBehaviourIsAllowedByRefinement) {
  // The flagged-but-allowed state: pi_lock is NotRobust, but its TSO
  // traces refine gamma_lock's SC traces (Sec. 7.3), so the release-store
  // race is benign and the module is admitted with AllowedByRefinement.
  Program Impl = workload::asmCounterWithPiLock(x86::MemModel::TSO, 2);
  Program Spec = workload::lockedCounter(2, 1, 0);

  ProgramTsoReport R = programTsoRobustness(Impl);
  const TsoRobustReport *Lock = reportFor(R, "lockimpl");
  ASSERT_NE(Lock, nullptr);
  EXPECT_EQ(Lock->Verdict, TsoVerdict::NotRobust);

  RefineResult Ref = refinesTraces(preemptiveTraces(Impl),
                                   preemptiveTraces(Spec),
                                   /*TermInsensitive=*/true);
  ASSERT_TRUE(Ref.Definitive);
  EXPECT_TRUE(Ref.Holds) << Ref.CounterExample;
  for (ModuleTsoInfo &M : R.Modules)
    if (M.Name == "lockimpl")
      M.AllowedByRefinement = Ref.Holds;
  EXPECT_NE(R.toString().find("allowed by refinement"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Classification and Unknown verdicts
//===----------------------------------------------------------------------===//

TEST(TsoRobust, FrameAccessesAreConfined) {
  // Stores into the thread-private frame are invisible to other threads:
  // no fence needed even though a shared load follows.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .entry f 2 0
    f:
            movl $7, (%esp)
            movl $8, 1(%esp)
            movl g, %eax
            printl %eax
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Robust) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 2u);
  EXPECT_EQ(R.SharedLoads, 1u);
  EXPECT_EQ(R.SharedStores, 0u);
}

TEST(TsoRobust, FrameEscapeViaStoreForfeitsConfinement) {
  // The soundness counterexample for naive frame confinement: the frame
  // address is published through x, so a peer thread can load it and
  // race on the frame cell — the unfenced frame store before the load of
  // y is a real SB pattern. The escape must degrade frame accesses to
  // shared (verdict at most Unknown), keeping the SC fast path off.
  TsoRobustReport R = analyzeSource(R"(
    .data x 0
    .data y 0
    .entry f 1 0
    f:
            movl %esp, x
            mfence
            movl $1, (%esp)
            movl y, %eax
            printl %eax
            retl
  )");
  EXPECT_NE(R.Verdict, TsoVerdict::Robust) << R.toString();
  EXPECT_EQ(R.Verdict, TsoVerdict::Unknown) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 0u);
  // The frame store / load-of-y triangle is reported (tentatively: the
  // escaped frame cell has unresolved identity).
  bool FrameTriangle = false;
  for (const TriangularWitness &W : R.Witnesses)
    if (W.Store.Global.find("escaped frame") != std::string::npos && W.Load &&
        W.Load->Global == "y")
      FrameTriangle = true;
  EXPECT_TRUE(FrameTriangle) << R.toString();
}

TEST(TsoRobust, FrameEscapeViaCallArgumentForfeitsConfinement) {
  // Passing the frame address (here laundered through a mov and pointer
  // arithmetic) to an external callee lets the callee publish it.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .extern ext 1
    .entry f 2 0
    f:
            movl %esp, %edi
            addl $1, %edi
            movl $1, (%esp)
            movl g, %eax
            printl %eax
            mfence
            call ext
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Unknown) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 0u);
}

TEST(TsoRobust, FrameEscapeViaReturnValueForfeitsConfinement) {
  // Returning the frame address hands it to the caller.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .entry f 1 0
    f:
            movl $1, (%esp)
            movl g, %ebx
            printl %ebx
            movl %esp, %eax
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Unknown) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 0u);
}

TEST(TsoRobust, FrameEscapeLaunderedThroughOwnFrameIsCaught) {
  // Storing the frame address into the frame itself already counts as an
  // escape: a later load from that slot would carry the address with no
  // taint, so the scan must flag the publishing store, not the load.
  TsoRobustReport R = analyzeSource(R"(
    .data x 0
    .entry f 1 0
    f:
            movl %esp, (%esp)
            movl (%esp), %eax
            movl %eax, x
            mfence
            retl
  )");
  EXPECT_NE(R.Verdict, TsoVerdict::Robust) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 0u);
}

TEST(TsoRobust, FrameKeptByTheThreadStaysConfined) {
  // Moving the frame pointer between registers and indexing off the copy
  // is not an escape: the address never leaves the thread.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .entry f 2 0
    f:
            movl %esp, %ebx
            movl $7, 1(%ebx)
            movl g, %eax
            printl %eax
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Robust) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 1u);
}

TEST(TsoRobust, OutOfFrameDisplacementInRegionIsConfined) {
  // The declared frame is one cell but the code names 3(%esp). The
  // parser records the frame-layout extent, and every frame occupies a
  // fixed FrameRegionSize block of the thread's own region, so the
  // displaced cell is still thread-private: the store is confined and
  // the entry Robust. (Formerly classified SharedUnknown with no
  // frame-layout check, degrading the verdict to Unknown.)
  TsoRobustReport R = analyzeSource(R"(
    .entry f 1 0
    f:
            movl $7, 3(%esp)
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Robust) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 1u);
  EXPECT_EQ(R.SharedStores, 0u);
}

TEST(TsoRobust, BeyondFrameRegionDisplacementStaysShared) {
  // A displacement at or past FrameRegionSize leaves the frame's own
  // block — at maximal call depth the address can sit in another
  // thread's region — so the private claim stops and the access stays
  // SharedUnknown, escaping at ret.
  TsoRobustReport R = analyzeSource(R"(
    .entry f 1 0
    f:
            movl $7, 256(%esp)
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Unknown) << R.toString();
  ASSERT_EQ(R.Witnesses.size(), 1u);
  EXPECT_TRUE(R.Witnesses[0].Tentative);
}

TEST(TsoRobust, NegativeFrameDisplacementStaysShared) {
  // Below the frame base lies the previous frame (or the region edge):
  // no private claim, the store stays shared-unknown.
  TsoRobustReport R = analyzeSource(R"(
    .entry f 1 0
    f:
            movl $7, -1(%esp)
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Unknown) << R.toString();
  ASSERT_EQ(R.Witnesses.size(), 1u);
  EXPECT_TRUE(R.Witnesses[0].Tentative);
}

TEST(TsoRobust, EscapedFrameStillSharedWithinExtent) {
  // The extent upgrade never outruns the escape analysis: once the
  // frame address leaves the thread's registers, in-extent cells are
  // shared like any other memory.
  TsoRobustReport R = analyzeSource(R"(
    .data p 0
    .entry f 4 0
    f:
            movl %esp, p
            movl $7, 3(%esp)
            retl
  )");
  EXPECT_NE(R.Verdict, TsoVerdict::Robust) << R.toString();
  EXPECT_EQ(R.ConfinedAccesses, 0u);
}

TEST(TsoRobust, UnresolvedPointerStoreIsUnknown) {
  // The store target comes from a loaded value — unresolvable, so the
  // verdict degrades to Unknown (tentative witness), not NotRobust.
  TsoRobustReport R = analyzeSource(R"(
    .data p 0
    .data g 0
    .entry f 0 0
    f:
            movl p, %eax
            movl $1, (%eax)
            movl g, %ebx
            printl %ebx
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Unknown) << R.toString();
  bool AnyTentative = false;
  for (const TriangularWitness &W : R.Witnesses)
    AnyTentative = AnyTentative || W.Tentative;
  EXPECT_TRUE(AnyTentative);
}

TEST(TsoRobust, SameLocationReloadIsNotATriangle) {
  // A load of the *same* cell snoops the issuing thread's own buffered
  // store (store forwarding) — SC-explainable, no witness. The print sits
  // after the mfence: an event with the store still buffered would be a
  // genuine violation in its own right.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .entry f 0 0
    f:
            movl $1, g
            movl g, %eax
            mfence
            printl %eax
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Robust) << R.toString();
  ASSERT_EQ(R.Certificates.size(), 1u);
}

TEST(TsoRobust, DifferentLocationLoadIsATriangle) {
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .data h 0
    .entry f 0 0
    f:
            movl $1, g
            movl h, %eax
            printl %eax
            mfence
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::NotRobust) << R.toString();
  ASSERT_FALSE(R.Witnesses.empty());
  const TriangularWitness &W = R.Witnesses[0];
  EXPECT_EQ(W.Store.Global, "g");
  ASSERT_TRUE(W.Load.has_value());
  EXPECT_EQ(W.Load->Global, "h");
}

TEST(TsoRobust, BoundaryIsNotCreditedAsAFence) {
  // The executable model drains the buffer at call/ret (a documented
  // simplification); the analysis must not rely on it: a store pending at
  // a call is a witness even with no in-module load after it.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .entry f 0 0
    .extern ext 0
    f:
            movl $1, g
            call ext
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::NotRobust) << R.toString();
  ASSERT_FALSE(R.Witnesses.empty());
  EXPECT_TRUE(R.Witnesses[0].Escape.has_value());
  EXPECT_NE(R.Witnesses[0].Escape->Text.find("call"), std::string::npos);
}

TEST(TsoRobust, LockPrefixedStoreNeedsNoFence) {
  // Lock-prefixed RMWs never enter the store buffer: a cmpxchg followed
  // by an unrelated load is robust.
  TsoRobustReport R = analyzeSource(R"(
    .data g 0
    .data h 0
    .entry f 0 0
    f:
            movl $0, %eax
            movl $1, %edx
            lock cmpxchgl %edx, g
            movl h, %ebx
            printl %ebx
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Robust) << R.toString();
  EXPECT_EQ(R.LockedOps, 1u);
}

//===----------------------------------------------------------------------===//
// Closed-program refinements: same-module summaries and points-to
//===----------------------------------------------------------------------===//

TEST(TsoRobust, SameModuleCallSummaryCertifiesLockThenPublish) {
  // t1's data store is pending across `call pub`; the callee is another
  // entry of the same module, so the call inlines pub's summary instead
  // of escaping — and the summary says the caller's buffer drains at
  // pub's mfence. The data store's certificate names a drain point in a
  // *different* entry.
  Program P = workload::lockThenPublish(x86::MemModel::TSO);
  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  const TsoRobustReport &M = R.Modules[0].Report;
  EXPECT_EQ(M.Verdict, TsoVerdict::Robust) << M.toString();
  bool CrossEntryCert = false;
  for (const FenceCert &C : M.Certificates)
    if (C.Entry == "t1" &&
        C.DrainText.find("mfence") != std::string::npos)
      CrossEntryCert = true;
  EXPECT_TRUE(CrossEntryCert) << M.toString();

  TraceSet Tso = preemptiveTraces(P);
  TraceSet Sc =
      preemptiveTraces(workload::lockThenPublish(x86::MemModel::SC));
  EXPECT_TRUE(Tso == Sc);
  EXPECT_EQ(applyScFastPath(P, R), 1u);
}

TEST(TsoRobust, SummaryCarriesPendingStoresBackToCaller) {
  // The callee returns with its own store still buffered; the summary
  // hands it back to the caller, whose load of a different cell then
  // completes a *cross-entry* triangle. A boundary-escape treatment of
  // the call would have flagged the call site instead.
  Program P;
  x86::addAsmModule(P, "m", R"(
    .data g 0
    .data h 0
    .entry t1 0 0
    .entry leak 0 0
    t1:
            call leak
            movl h, %eax
            mfence
            printl %eax
            retl
    leak:
            movl $1, g
            retl
  )",
                    x86::MemModel::TSO);
  P.addThread("t1");
  P.link();
  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  const TsoRobustReport &M = R.Modules[0].Report;
  EXPECT_EQ(M.Verdict, TsoVerdict::NotRobust) << M.toString();
  bool CrossEntry = false;
  for (const TriangularWitness &W : M.Witnesses)
    if (W.Store.Entry == "leak" && W.Store.Global == "g" && W.Load &&
        W.Load->Entry == "t1" && W.Load->Global == "h" && !W.Tentative)
      CrossEntry = true;
  EXPECT_TRUE(CrossEntry) << M.toString();
}

TEST(TsoRobust, SameModuleSummaryDoesNotCrossModules) {
  // The client's counter store is pending at `call unlock`, whose target
  // lives in the *lockimpl* module: no summary applies and the escape
  // witness must survive — summaries are strictly same-module.
  Program P = workload::asmCounterWithPiLock(x86::MemModel::TSO, 2);
  ProgramTsoReport R = programTsoRobustness(P);
  const TsoRobustReport *Client = reportFor(R, "client");
  ASSERT_NE(Client, nullptr);
  EXPECT_EQ(Client->Verdict, TsoVerdict::NotRobust) << Client->toString();
  bool EscapeAtCall = false;
  for (const TriangularWitness &W : Client->Witnesses)
    if (W.Store.Global == "x" && W.Escape &&
        W.Escape->Text.find("call") != std::string::npos && !W.Tentative)
      EscapeAtCall = true;
  EXPECT_TRUE(EscapeAtCall) << Client->toString();
}

TEST(TsoRobust, SummaryFixpointCertifiesRecursiveFlush) {
  // unlock's release store is pending across `call rflush`, and rflush
  // calls *itself* before its mfence. A memoized one-pass summary caps
  // the back-edge with the invalid summary, escapes the caller's buffer
  // at the recursive call, and degrades the verdict to NotRobust; the
  // Kleene fixpoint closes the group — every rflush path ends in the
  // mfence — and certifies both pending stores there.
  auto build = [](x86::MemModel Model) {
    Program P;
    x86::addAsmModule(P, "m", R"(
      .data L 1
      .data x 0
      .entry t1 0 0
      .entry lock 0 0
      .entry unlock 0 0
      .entry rflush 0 0
      t1:
              call lock
              movl $1, x
              call unlock
              movl x, %eax
              printl %eax
              retl
      lock:
              movl $L, %ecx
              movl $0, %edx
              movl $1, %eax
              lock cmpxchgl %edx, (%ecx)
              je enter
              call lock
      enter:
              retl
      unlock:
              movl $1, L
              call rflush
              retl
      rflush:
              movl $0, %ecx
              cmpl $0, %ecx
              je rdone
              call rflush
      rdone:
              mfence
              retl
    )",
                      Model);
    P.addThread("t1");
    P.link();
    return P;
  };
  Program P = build(x86::MemModel::TSO);
  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  const TsoRobustReport &M = R.Modules[0].Report;
  EXPECT_EQ(M.Verdict, TsoVerdict::Robust) << M.toString();
  EXPECT_TRUE(M.Witnesses.empty()) << M.toString();
  // Both the client-visible x store and the release L store drain at
  // rflush's mfence, a drain point reached only through the closed
  // recursive group.
  unsigned MfenceCerts = 0;
  for (const FenceCert &C : M.Certificates)
    if (C.DrainText.find("mfence") != std::string::npos)
      ++MfenceCerts;
  EXPECT_GE(MfenceCerts, 2u) << M.toString();

  // The static verdict is backed dynamically: identical trace sets, and
  // the SC fast path switches the module.
  TraceSet Tso = preemptiveTraces(P);
  TraceSet Sc = preemptiveTraces(build(x86::MemModel::SC));
  EXPECT_TRUE(Tso == Sc);
  EXPECT_EQ(applyScFastPath(P, R), 1u);
}

TEST(TsoRobust, RecursiveLockLibraryModuleIsRobust) {
  // The library form of the same shape: the recursive pi_lock variant
  // linked under the fenced counter client. Pre-fix the lockimpl module
  // degraded to NotRobust (spurious boundary escape on the rflush
  // back-edge); the summary fixpoint certifies it, so the whole program
  // is Robust. Static-only: under contention the recursive retry can
  // exceed the model's call-depth bound, so no exploration here.
  Program P = workload::asmCounterWithRecLock(x86::MemModel::TSO, 2);
  ProgramTsoReport R = programTsoRobustness(P);
  const TsoRobustReport *Lock = reportFor(R, "lockimpl");
  ASSERT_NE(Lock, nullptr);
  EXPECT_EQ(Lock->Verdict, TsoVerdict::Robust) << Lock->toString();
  EXPECT_TRUE(Lock->Witnesses.empty()) << Lock->toString();
  const TsoRobustReport *Client = reportFor(R, "client");
  ASSERT_NE(Client, nullptr);
  EXPECT_EQ(Client->Verdict, TsoVerdict::Robust) << Client->toString();
  EXPECT_TRUE(R.allRobust()) << R.toString();
}

TEST(TsoRobust, PointerChainResolvesThroughGlobalPointsTo) {
  // `movl p, %eax; movl $2, (%eax)` — standalone the store target is
  // unresolvable (Unknown verdict, pinned by UnresolvedPointerStoreIs-
  // Unknown); inside the closed program the points-to knows p only ever
  // holds &x, the store resolves, and its mfence certifies it.
  Program P = workload::pointerChainClient(x86::MemModel::TSO);

  std::map<std::string, TsoModuleContext> Ctxs = tsoModuleContexts(P);
  ASSERT_EQ(Ctxs.size(), 1u);
  const TsoModuleContext &C = Ctxs.begin()->second;
  EXPECT_TRUE(C.HasPointsTo);
  auto It = C.GlobalPointsTo.find("p");
  ASSERT_NE(It, C.GlobalPointsTo.end());
  EXPECT_FALSE(It->second.Wild);
  EXPECT_EQ(It->second.Cells, std::set<std::string>{"x"});

  ProgramTsoReport R = programTsoRobustness(P);
  ASSERT_EQ(R.Modules.size(), 1u);
  EXPECT_EQ(R.Modules[0].Report.Verdict, TsoVerdict::Robust)
      << R.Modules[0].Report.toString();
  TraceSet Tso = preemptiveTraces(P);
  TraceSet Sc =
      preemptiveTraces(workload::pointerChainClient(x86::MemModel::SC));
  EXPECT_TRUE(Tso == Sc);
  EXPECT_EQ(applyScFastPath(P, R), 1u);
}

TEST(TsoRobust, NeighbourLaunderingDegradesOnlyTheAffectedCell) {
  // A second module stores a pointer through a computed neighbour target
  // (&a + 1). Formerly any such store distrusted every module's
  // points-to map program-wide (HasPointsTo false everywhere), so the
  // pointer-chain client regressed to Unknown. The linker pins the
  // victim exactly — the cell after a is the laundering module's own
  // pad — so only pad degrades: the client's map keeps p -> {x}, the
  // chain store still resolves, and the client certifies Robust.
  Program P;
  x86::addAsmModule(P, "client", R"(
    .data x 0
    .data y 0
    .data p 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $x, p
            mfence
            movl $1, x
            mfence
            retl
    t2:
    spin:
            movl p, %eax
            cmpl $0, %eax
            je spin
            movl $2, (%eax)
            mfence
            movl y, %ebx
            printl %ebx
            retl
  )",
                    x86::MemModel::TSO);
  x86::addAsmModule(P, "launder", R"(
    .data a 0
    .data pad 0
    .entry t3 0 0
    t3:
            movl $a, %eax
            movl $pad, 1(%eax)
            mfence
            retl
  )",
                    x86::MemModel::TSO);
  P.addThread("t1");
  P.addThread("t2");
  P.addThread("t3");
  P.link();

  std::map<std::string, TsoModuleContext> Ctxs = tsoModuleContexts(P);
  ASSERT_EQ(Ctxs.size(), 2u);
  const TsoModuleContext &Client = Ctxs.at("client");
  const TsoModuleContext &Launder = Ctxs.at("launder");

  // Both maps stay trusted; only the victim cell carries the laundered
  // pointee, resolved within the laundering module's own namespace.
  EXPECT_TRUE(Client.HasPointsTo);
  EXPECT_TRUE(Launder.HasPointsTo);
  auto PIt = Client.GlobalPointsTo.find("p");
  ASSERT_NE(PIt, Client.GlobalPointsTo.end());
  EXPECT_FALSE(PIt->second.Wild);
  EXPECT_EQ(PIt->second.Cells, std::set<std::string>{"x"});
  auto PadIt = Launder.GlobalPointsTo.find("pad");
  ASSERT_NE(PadIt, Launder.GlobalPointsTo.end());
  EXPECT_FALSE(PadIt->second.Wild);
  EXPECT_EQ(PadIt->second.Cells, std::set<std::string>{"pad"});

  ProgramTsoReport R = programTsoRobustness(P);
  const TsoRobustReport *ClientR = reportFor(R, "client");
  ASSERT_NE(ClientR, nullptr);
  EXPECT_EQ(ClientR->Verdict, TsoVerdict::Robust) << ClientR->toString();
}

TEST(TsoRobust, CrossModuleLaunderingWildsTheForeignVictimCell) {
  // When the neighbour store reaches past the laundering module's own
  // globals into the next module's first cell, the pointee cannot be
  // named in the victim's namespace: that one cell goes Wild, while
  // every other cell's facts — including the victim module's own
  // pointer chain — survive.
  Program P;
  x86::addAsmModule(P, "launder", R"(
    .data a 0
    .entry t3 0 0
    t3:
            movl $a, %eax
            movl $a, 1(%eax)
            mfence
            retl
  )",
                    x86::MemModel::TSO);
  x86::addAsmModule(P, "client", R"(
    .data scratch 0
    .data x 0
    .data y 0
    .data p 0
    .entry t1 0 0
    .entry t2 0 0
    t1:
            movl $x, p
            mfence
            movl $1, x
            mfence
            retl
    t2:
    spin:
            movl p, %eax
            cmpl $0, %eax
            je spin
            movl $2, (%eax)
            mfence
            movl y, %ebx
            printl %ebx
            retl
  )",
                    x86::MemModel::TSO);
  P.addThread("t1");
  P.addThread("t2");
  P.addThread("t3");
  P.link();

  std::map<std::string, TsoModuleContext> Ctxs = tsoModuleContexts(P);
  ASSERT_EQ(Ctxs.size(), 2u);
  const TsoModuleContext &Client = Ctxs.at("client");
  EXPECT_TRUE(Client.HasPointsTo);
  // a + 1 is the client's first cell: wilded, foreign pointee unnameable.
  auto ScratchIt = Client.GlobalPointsTo.find("scratch");
  ASSERT_NE(ScratchIt, Client.GlobalPointsTo.end());
  EXPECT_TRUE(ScratchIt->second.Wild);
  // The chain cell keeps its exact pointee regardless.
  auto PIt = Client.GlobalPointsTo.find("p");
  ASSERT_NE(PIt, Client.GlobalPointsTo.end());
  EXPECT_FALSE(PIt->second.Wild);
  EXPECT_EQ(PIt->second.Cells, std::set<std::string>{"x"});

  ProgramTsoReport R = programTsoRobustness(P);
  const TsoRobustReport *ClientR = reportFor(R, "client");
  ASSERT_NE(ClientR, nullptr);
  EXPECT_EQ(ClientR->Verdict, TsoVerdict::Robust) << ClientR->toString();
}

//===----------------------------------------------------------------------===//
// Report diagnostics and the consistency invariant
//===----------------------------------------------------------------------===//

TEST(TsoRobust, OutOfFrameDisplacementGetsNote) {
  // The SharedUnknown classification of a beyond-extent frame access
  // must be diagnosable from the report alone: a note names the entry,
  // the PC, the displacement, and the extent bound it violated.
  TsoRobustReport R = analyzeSource(R"(
    .entry f 1 0
    f:
            movl $7, 256(%esp)
            retl
  )");
  EXPECT_EQ(R.Verdict, TsoVerdict::Unknown) << R.toString();
  bool Found = false;
  for (const std::string &N : R.Notes)
    if (N.find("'f'") != std::string::npos &&
        N.find("PC 1") != std::string::npos &&
        N.find("displacement 256") != std::string::npos &&
        N.find("frame extent") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << R.toString();
}

TEST(TsoRobust, ConsistencyInvariantOnReports) {
  // inconsistency() pins "certificates complete exactly when Robust".
  TsoRobustReport R;
  R.Verdict = TsoVerdict::Robust;
  R.SharedStores = 2;
  R.CertifiedStores = 2;
  EXPECT_TRUE(R.inconsistency().empty()) << R.inconsistency();

  // Robust with a partial certificate list is inconsistent.
  R.CertifiedStores = 1;
  EXPECT_FALSE(R.inconsistency().empty());
  R.CertifiedStores = 1;
  R.DivergentStores = 1;
  EXPECT_TRUE(R.inconsistency().empty()) << R.inconsistency();

  // Robust with a witnessed store is inconsistent.
  R.WitnessedStores = 1;
  EXPECT_FALSE(R.inconsistency().empty());
  R.WitnessedStores = 0;

  // NotRobust needs a concrete witness; a tentative one is not enough.
  R.Verdict = TsoVerdict::NotRobust;
  EXPECT_FALSE(R.inconsistency().empty());
  TriangularWitness W;
  W.Tentative = true;
  R.Witnesses.push_back(W);
  EXPECT_FALSE(R.inconsistency().empty());
  R.Witnesses[0].Tentative = false;
  EXPECT_TRUE(R.inconsistency().empty()) << R.inconsistency();

  // Unknown needs a tentative witness and tolerates no concrete one.
  R.Verdict = TsoVerdict::Unknown;
  EXPECT_FALSE(R.inconsistency().empty());
  R.Witnesses[0].Tentative = true;
  EXPECT_TRUE(R.inconsistency().empty()) << R.inconsistency();
  R.Witnesses.clear();
  EXPECT_FALSE(R.inconsistency().empty());
}

TEST(TsoRobust, RealReportsSatisfyTheInvariant) {
  // Every report the analysis actually emits — across all verdict kinds —
  // passes its own consistency check.
  std::vector<Program> Ps;
  Ps.push_back(workload::sbLitmus(x86::MemModel::TSO, false));
  Ps.push_back(workload::sbLitmus(x86::MemModel::TSO, true));
  Ps.push_back(workload::mpLitmus(x86::MemModel::TSO));
  Ps.push_back(workload::mpPublishReadback(x86::MemModel::TSO));
  Ps.push_back(workload::lockThenPublish(x86::MemModel::TSO));
  Ps.push_back(workload::pointerChainClient(x86::MemModel::TSO));
  Ps.push_back(workload::asmCounterWithPiLock(x86::MemModel::TSO, 2));
  Ps.push_back(workload::asmCounterWithPiLockFenced(x86::MemModel::TSO, 2));
  for (const Program &P : Ps) {
    ProgramTsoReport R = programTsoRobustness(P);
    for (const ModuleTsoInfo &M : R.Modules)
      EXPECT_TRUE(M.Report.inconsistency().empty())
          << M.Name << ": " << M.Report.inconsistency() << "\n"
          << M.Report.toString();
  }
}

//===----------------------------------------------------------------------===//
// SC fast path
//===----------------------------------------------------------------------===//

TEST(TsoRobust, AllowedByRefinementModulesAreNeverScSwitched) {
  // "Allowed by refinement" means the object-refinement check covers the
  // module's weak behaviours — not that it has none. Switching it to SC
  // would erase exactly the behaviours the refinement licensed.
  Program P = workload::asmCounterWithPiLock(x86::MemModel::TSO, 2);
  ProgramTsoReport R = programTsoRobustness(P);
  for (ModuleTsoInfo &M : R.Modules)
    if (M.Name == "lockimpl" && !M.Report.robust())
      M.AllowedByRefinement = true;
  EXPECT_EQ(applyScFastPath(P, R), 0u);
  for (const ModuleDecl &D : P.modules()) {
    const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
    ASSERT_NE(L, nullptr);
    EXPECT_EQ(L->memModel(), x86::MemModel::TSO);
  }
}

TEST(TsoRobust, ScFastPathSwitchesOnlyRobustTsoModules) {
  Program P = workload::asmCounterWithPiLockFenced(x86::MemModel::TSO, 2);
  ProgramTsoReport R = programTsoRobustness(P);
  EXPECT_TRUE(R.allRobust()) << R.toString();
  unsigned Switched = applyScFastPath(P, R);
  EXPECT_EQ(Switched, 2u);
  for (const ModuleDecl &D : P.modules()) {
    const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
    ASSERT_NE(L, nullptr);
    EXPECT_EQ(L->memModel(), x86::MemModel::SC);
  }
}

TEST(TsoRobust, ScFastPathLeavesNotRobustModulesOnTso) {
  Program P = workload::asmCounterWithPiLock(x86::MemModel::TSO, 2);
  ProgramTsoReport R = programTsoRobustness(P);
  unsigned Switched = applyScFastPath(P, R);
  EXPECT_EQ(Switched, 0u);
  for (const ModuleDecl &D : P.modules()) {
    const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
    ASSERT_NE(L, nullptr);
    EXPECT_EQ(L->memModel(), x86::MemModel::TSO);
  }
}

TEST(TsoRobust, ScFastPathPreservesTracesAndShrinksStates) {
  // The soundness cross-check on a workload with real buffer pressure:
  // the fenced ping-pong under TSO and under the SC fast path must have
  // bit-identical trace sets, with strictly fewer explored states.
  Program Tso = workload::fencedPingPong(x86::MemModel::TSO, 2);
  Program Sc = workload::fencedPingPong(x86::MemModel::TSO, 2);
  ProgramTsoReport R = programTsoRobustness(Sc);
  ASSERT_TRUE(R.allRobust()) << R.toString();
  ASSERT_EQ(applyScFastPath(Sc, R), 1u);

  ExploreStats TsoStats, ScStats;
  TraceSet TsoT = preemptiveTraces(Tso, {}, &TsoStats);
  TraceSet ScT = preemptiveTraces(Sc, {}, &ScStats);
  ASSERT_FALSE(TsoT.truncated());
  ASSERT_FALSE(ScT.truncated());
  EXPECT_TRUE(TsoT == ScT);
  EXPECT_LT(ScStats.States, TsoStats.States);
}

TEST(TsoRobust, RobustVerdictsMatchDynamicEquivalence) {
  // Every verdict cross-checked against dynamic TSO-vs-SC exploration:
  // Robust must imply trace-set equality between the two memory models,
  // and for the NotRobust SB litmus the models genuinely differ.
  struct Case {
    const char *Name;
    Program Tso;
    Program Sc;
  };
  std::vector<Case> Cases;
  Cases.push_back({"sb_fenced",
                   workload::sbLitmus(x86::MemModel::TSO, true),
                   workload::sbLitmus(x86::MemModel::SC, true)});
  Cases.push_back({"pingpong",
                   workload::fencedPingPong(x86::MemModel::TSO, 2),
                   workload::fencedPingPong(x86::MemModel::SC, 2)});
  Cases.push_back({"counter_fenced",
                   workload::asmCounterWithPiLockFenced(x86::MemModel::TSO, 2),
                   workload::asmCounterWithPiLockFenced(x86::MemModel::SC, 2)});
  Cases.push_back({"mp", workload::mpLitmus(x86::MemModel::TSO),
                   workload::mpLitmus(x86::MemModel::SC)});
  Cases.push_back({"mp_readback",
                   workload::mpPublishReadback(x86::MemModel::TSO),
                   workload::mpPublishReadback(x86::MemModel::SC)});
  Cases.push_back({"lock_then_publish",
                   workload::lockThenPublish(x86::MemModel::TSO),
                   workload::lockThenPublish(x86::MemModel::SC)});
  Cases.push_back({"pointer_chain",
                   workload::pointerChainClient(x86::MemModel::TSO),
                   workload::pointerChainClient(x86::MemModel::SC)});
  for (Case &C : Cases) {
    ProgramTsoReport R = programTsoRobustness(C.Tso);
    ASSERT_TRUE(R.allRobust()) << C.Name << "\n" << R.toString();
    TraceSet A = preemptiveTraces(C.Tso);
    TraceSet B = preemptiveTraces(C.Sc);
    ASSERT_FALSE(A.truncated()) << C.Name;
    EXPECT_TRUE(A == B) << C.Name;
  }

  // NotRobust where the weak behaviour is real: plain SB differs.
  Program SbTso = workload::sbLitmus(x86::MemModel::TSO, false);
  Program SbSc = workload::sbLitmus(x86::MemModel::SC, false);
  ProgramTsoReport R = programTsoRobustness(SbTso);
  EXPECT_EQ(R.Modules[0].Report.Verdict, TsoVerdict::NotRobust);
  EXPECT_FALSE(preemptiveTraces(SbTso) == preemptiveTraces(SbSc));
}

//===----------------------------------------------------------------------===//
// detectRaces integration
//===----------------------------------------------------------------------===//

TEST(TsoRobust, DetectRacesAppliesTheFastPathInPlace) {
  Program P = workload::fencedPingPong(x86::MemModel::TSO, 2);
  Program Baseline = workload::fencedPingPong(x86::MemModel::TSO, 2);

  DetectOptions O;
  O.UseTsoFastPath = false;
  DetectResult Before = detectRaces(Baseline, O);

  DetectResult After = detectRacesInPlace(P);
  EXPECT_EQ(After.ScSwitched, 1u);
  ASSERT_EQ(After.Tso.Modules.size(), 1u);
  EXPECT_TRUE(After.Tso.Modules[0].Report.robust());
  // Same verdict (the ping-pong races on x and y), fewer states.
  EXPECT_EQ(Before.Witness.has_value(), After.Witness.has_value());
  EXPECT_LE(After.ExploredStates, Before.ExploredStates);
}

TEST(TsoRobust, DetectRacesDoesNotMutateEvenWithNonConstArgument) {
  // Regression for a former non-const overload of detectRaces that
  // silently captured non-const call sites and SC-switched their program
  // in place: only detectRacesInPlace may mutate.
  Program P = workload::fencedPingPong(x86::MemModel::TSO, 2);
  DetectResult R = detectRaces(P);
  EXPECT_EQ(R.ScSwitched, 0u);
  const auto *L =
      dynamic_cast<const x86::X86Lang *>(P.modules()[0].Lang.get());
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->memModel(), x86::MemModel::TSO);
}
