//===- tests/StateRepGoldenTest.cpp - Representation-swap goldens ----------===//
//
// Differential test of the exploration results against fingerprints
// captured from the seed engine (std::map memory, string-key interning)
// before the copy-on-write representation swap. The engine's results must
// be bit-identical: state counts, edges over canonical node ids (edge
// kinds and event values included), complete trace sets, and race-witness
// counts — at every worker-pool width.
//
// Node key strings and RaceWitness::StateKey embed core object identities
// (heap pointers), so their hashes are only stable within one process;
// the fingerprints below are the run-stable quantities. Within a process,
// full keys and witnesses are additionally asserted identical across
// Threads values.
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "support/Hashing.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

using namespace ccc;

namespace {

/// Run-stable fingerprint of one exploration.
struct GraphFp {
  std::size_t States = 0;
  std::size_t Edges = 0;
  uint64_t EdgeHash = 0; // over (From, To, Kind, Ev) in canonical order
  uint64_t TraceHash = 0;
  std::size_t TraceLen = 0;
  std::size_t Races = 0;

  bool operator==(const GraphFp &O) const = default;
};

/// Process-local fingerprint: adds the full node key sequence and race
/// witnesses, which are stable within one process only, plus the three
/// tri-state verdicts partial-order reduction must preserve.
struct LocalFp {
  GraphFp G;
  uint64_t NodeKeyHash = 0;
  uint64_t RaceHash = 0;
  CheckVerdict Safety = CheckVerdict::Inconclusive;
  CheckVerdict Race = CheckVerdict::Inconclusive;
  bool Truncated = false;

  bool operator==(const LocalFp &O) const = default;
};

std::string witnessString(const RaceWitness &W) {
  return W.StateKey + "|" + std::to_string(W.T1) + "/" +
         std::to_string(W.T2) + "|" + (W.FP1.InAtomic ? "A" : "-") +
         W.FP1.FP.toString() + "|" + (W.FP2.InAtomic ? "A" : "-") +
         W.FP2.FP.toString() + "|" + (W.Confined ? "c" : "u");
}

template <typename WorldT>
LocalFp fingerprint(const Program &P, unsigned Threads,
                    PorMode Por = PorMode::Off) {
  ExploreOptions Opts;
  Opts.Threads = Threads;
  Opts.Por = Por;
  Explorer<WorldT> E(Opts);
  if constexpr (std::is_same_v<WorldT, NPWorld>)
    E.build(NPWorld::loadAll(P));
  else
    E.build(WorldT::load(P, 0));

  LocalFp Out;
  Out.G.States = E.numStates();

  Hasher64 NodeH;
  for (std::size_t I = 0; I < E.numStates(); ++I)
    NodeH.str(E.world(I).key());
  Out.NodeKeyHash = NodeH.get();

  Hasher64 EdgeH;
  E.forEachEdge([&](unsigned From, unsigned To, GLabel::Kind K, int64_t Ev) {
    EdgeH.u32(From);
    EdgeH.u32(To);
    EdgeH.u32(static_cast<uint32_t>(K));
    EdgeH.u64(static_cast<uint64_t>(Ev));
    ++Out.G.Edges;
  });
  Out.G.EdgeHash = EdgeH.get();

  const std::string Traces = E.traces().toString();
  Out.G.TraceHash = hashString64(Traces);
  Out.G.TraceLen = Traces.size();

  Hasher64 RaceH;
  for (const RaceWitness &W : E.findRacesConfinedTo(P.objectAddrs())) {
    RaceH.str(witnessString(W));
    ++Out.G.Races;
  }
  Out.RaceHash = RaceH.get();
  Out.Safety = E.safetyVerdict();
  Out.Race = E.checkRace().verdict();
  Out.Truncated = E.truncated();
  return Out;
}

struct GoldenCase {
  const char *Name;
  std::function<Program()> Make;
  bool NonPreemptive;
  GraphFp Want;
};

/// Captured from the seed engine (commit 0004343) with the capture tool in
/// this test's header; one entry per workload family and semantics.
const std::vector<GoldenCase> &goldens() {
  static const std::vector<GoldenCase> G = {
      {"atomic t=2 w=2 [pre]", [] { return workload::atomicCounter(2, 2); },
       false, {86, 118, 0xf9aaf87405adfe17ULL, 0xe50db829bffe75edULL, 6, 0}},
      {"atomic t=2 w=2 [np]", [] { return workload::atomicCounter(2, 2); },
       true, {62, 72, 0x059db3ab576c5c6fULL, 0xe50db829bffe75edULL, 6, 0}},
      {"atomic t=3 w=3 [pre]", [] { return workload::atomicCounter(3, 3); },
       false,
       {1185, 2376, 0x222a106a18a58cc8ULL, 0xe50db829bffe75edULL, 6, 0}},
      {"atomic t=3 w=3 [np]", [] { return workload::atomicCounter(3, 3); },
       true, {525, 744, 0xf47059e054c7c4fbULL, 0xe50db829bffe75edULL, 6, 0}},
      {"locked t=2 [pre]", [] { return workload::lockedCounter(2, 1, 0); },
       false,
       {850, 1404, 0xb836bf179a8f9632ULL, 0x4a6b5d0e3ba6feb8ULL, 25, 0}},
      {"locked t=2 [np]", [] { return workload::lockedCounter(2, 1, 0); },
       true, {358, 418, 0xae4036a5bfc2b041ULL, 0x4a6b5d0e3ba6feb8ULL, 25, 0}},
      {"racy t=2 [pre]", [] { return workload::racyCounter(2); }, false,
       {96, 148, 0xa9cde544bbb22935ULL, 0x54fa296e29dac585ULL, 30, 3}},
      {"racy t=2 [np]", [] { return workload::racyCounter(2); }, true,
       {30, 32, 0xceb2a468b36bd879ULL, 0xd3f7e143c7a3260aULL, 10, 3}},
      {"clight locked t=2 [pre]",
       [] { return workload::clightLockedCounter(2); }, false,
       {712, 1154, 0x71873e7d1f882945ULL, 0x4a6b5d0e3ba6feb8ULL, 25, 0}},
      {"sb tso [pre]",
       [] { return workload::sbLitmus(x86::MemModel::TSO, false); }, false,
       {234, 460, 0x43883cf7d1d72292ULL, 0x9d1387aa07959b6dULL, 40, 2}},
      {"mp tso [pre]", [] { return workload::mpLitmus(x86::MemModel::TSO); },
       false, {156, 286, 0x293223d628868cbcULL, 0x066930f35f611092ULL, 14, 1}},
      {"fenced pingpong tso [pre]",
       [] { return workload::fencedPingPong(x86::MemModel::TSO, 2); }, false,
       {2520, 4840, 0xd553b0043cb1bcbcULL, 0x9161c48dd956d670ULL, 266, 2}},
  };
  return G;
}

} // namespace

TEST(StateRepGolden, BitIdenticalToSeedEngineAtEveryWidth) {
  for (const GoldenCase &C : goldens()) {
    Program P = C.Make();
    LocalFp Serial = C.NonPreemptive ? fingerprint<NPWorld>(P, 1)
                                     : fingerprint<World>(P, 1);
    EXPECT_EQ(Serial.G, C.Want) << C.Name << " (serial)";
    for (unsigned Threads : {2u, 8u}) {
      LocalFp Par = C.NonPreemptive ? fingerprint<NPWorld>(P, Threads)
                                    : fingerprint<World>(P, Threads);
      // Across widths the full process-local fingerprint must match,
      // including node key strings and race witnesses.
      EXPECT_EQ(Par, Serial) << C.Name << " Threads=" << Threads;
    }
  }
}

// Partial-order reduction must be invisible to every observable result:
// on each preemptive workload family the POR-on exploration yields the
// same complete trace set, safety verdict, race verdict, conclusiveness
// and confined-race count as the full exploration — while its own graph
// is bit-identical at every worker-pool width. (NPWorld does not opt
// into POR; its explorations are untouched by construction.)
TEST(StateRepGolden, PorOnVerdictsBitIdenticalToFullExploration) {
  for (const GoldenCase &C : goldens()) {
    if (C.NonPreemptive)
      continue;
    Program P = C.Make();
    LocalFp Off = fingerprint<World>(P, 1, PorMode::Off);
    LocalFp On = fingerprint<World>(P, 1, PorMode::On);
    EXPECT_EQ(On.G.TraceHash, Off.G.TraceHash) << C.Name;
    EXPECT_EQ(On.G.TraceLen, Off.G.TraceLen) << C.Name;
    EXPECT_EQ(On.G.Races, Off.G.Races) << C.Name;
    EXPECT_EQ(On.Safety, Off.Safety) << C.Name;
    EXPECT_EQ(On.Race, Off.Race) << C.Name;
    EXPECT_EQ(On.Truncated, Off.Truncated) << C.Name;
    EXPECT_LE(On.G.States, Off.G.States) << C.Name;
    for (unsigned Threads : {2u, 8u}) {
      LocalFp Par = fingerprint<World>(P, Threads, PorMode::On);
      EXPECT_EQ(Par, On) << C.Name << " Threads=" << Threads;
    }
  }
}
