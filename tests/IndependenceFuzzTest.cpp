//===- tests/IndependenceFuzzTest.cpp - Static summary soundness -----------===//
//
// End-to-end soundness fuzz of the static independence certifier
// (analysis/Independence.h) against the dynamic semantics: along
// randomized schedules of every workload family, the footprint of every
// step a thread can actually take must be contained in the oracle's
// static pending summary for that thread (and, transitively, in its
// future summary), and every pair of dynamically conflicting footprints
// of two different threads must be flagged as conflicting statically.
// This is exactly the over-approximation contract that makes ample-set
// selection and sleep-set pruning in the explorer sound: if any
// dynamically observed conflict were statically Independent, POR could
// prune a distinguishing interleaving.
//
// Seeds are fixed, so the walks (and the test) are deterministic.
//
//===----------------------------------------------------------------------===//

#include "core/PorOracle.h"
#include "core/World.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>
#include <vector>

using namespace ccc;

namespace {

/// True when the static summary \p S of thread \p T covers the dynamic
/// footprint \p FP: every read under R (or OwnR inside T's region), every
/// write under W (or OwnW inside T's region); Unknown covers everything.
bool covers(const EffectSummary &S, ThreadId T, const Footprint &FP) {
  if (S.Unknown)
    return true;
  const Addr Lo = Program::ThreadRegionBase + T * Program::ThreadRegionSize;
  const Addr Hi = Lo + Program::ThreadRegionSize;
  auto InOwn = [&](Addr A) { return A >= Lo && A < Hi; };
  for (Addr A : FP.reads())
    if (!S.R.contains(A) && !(S.OwnR && InOwn(A)))
      return false;
  for (Addr A : FP.writes())
    if (!S.W.contains(A) && !(S.OwnW && InOwn(A)))
      return false;
  return true;
}

std::string describe(const char *What, ThreadId T, const Footprint &FP) {
  return std::string(What) + " thread " + std::to_string(T) + " fp " +
         FP.toString();
}

/// One fuzzed workload: random walks over the preemptive semantics, with
/// the oracle's summaries checked at every visited state.
void fuzzWorkload(const char *Name, const Program &P, unsigned Walks,
                  unsigned Depth, uint32_t Seed) {
  SCOPED_TRACE(Name);
  auto Oracle = buildIndependenceOracle(P);
  ASSERT_TRUE(Oracle);

  for (unsigned Walk = 0; Walk < Walks; ++Walk) {
    std::mt19937 Rng(Seed + Walk * 7919u);
    World W = World::load(P, 0);
    for (unsigned Step = 0; Step < Depth; ++Step) {
      if (W.aborted() || W.done())
        break;

      // The per-thread dynamic step footprints observable at this state:
      // while an atomic block is open only the scheduled thread can move,
      // otherwise any live thread can be scheduled here.
      std::vector<std::pair<ThreadId, Footprint>> Observed;
      for (ThreadId T = 0; T < W.numThreads(); ++T) {
        if (W.thread(T).finished())
          continue;
        if (W.inAtomic() && T != W.curThread())
          continue;
        const World Here = T == W.curThread() ? W : W.switchTo(T);
        const EffectSummary Pend = Oracle->pendingOf(W.thread(T));
        const EffectSummary Fut = Oracle->futureOf(W.thread(T));
        for (const auto &S : Here.stepSuccs()) {
          EXPECT_TRUE(covers(Pend, T, S.FP))
              << describe("pending misses", T, S.FP);
          EXPECT_TRUE(covers(Fut, T, S.FP))
              << describe("future misses", T, S.FP);
          Observed.emplace_back(T, S.FP);
        }
      }

      // Every dynamically conflicting cross-thread pair must be flagged
      // by the static relation the explorer prunes with — on the pending
      // summaries (sleep sets) and pending-vs-future (ample sets).
      for (std::size_t I = 0; I < Observed.size(); ++I) {
        for (std::size_t J = I + 1; J < Observed.size(); ++J) {
          const auto &[TA, FA] = Observed[I];
          const auto &[TB, FB] = Observed[J];
          if (TA == TB || !FA.conflictsWith(FB))
            continue;
          const EffectSummary PA = Oracle->pendingOf(W.thread(TA));
          const EffectSummary PB = Oracle->pendingOf(W.thread(TB));
          EXPECT_TRUE(summariesConflict(PA, TA, PB, TB))
              << describe("pending/pending misses", TA, FA) << " vs "
              << describe("", TB, FB);
          EXPECT_TRUE(
              summariesConflict(PA, TA, Oracle->futureOf(W.thread(TB)), TB))
              << describe("pending/future misses", TA, FA) << " vs "
              << describe("", TB, FB);
        }
      }

      // Advance along a uniformly random successor.
      auto Succs = W.succ();
      if (Succs.empty())
        break;
      std::uniform_int_distribution<std::size_t> Pick(0, Succs.size() - 1);
      W = Succs[Pick(Rng)].Next;
    }
  }
}

} // namespace

TEST(IndependenceFuzz, DynamicConflictsAreStaticallyFlagged) {
  struct Case {
    const char *Name;
    std::function<Program()> Make;
  };
  const std::vector<Case> Cases = {
      {"lockedCounter(2,1,0)", [] { return workload::lockedCounter(2, 1, 0); }},
      {"lockedCounter(3,1,0)", [] { return workload::lockedCounter(3, 1, 0); }},
      {"lockedCounter(2,2,3)", [] { return workload::lockedCounter(2, 2, 3); }},
      {"racyCounter(2)", [] { return workload::racyCounter(2); }},
      {"atomicCounter(2,2)", [] { return workload::atomicCounter(2, 2); }},
      {"atomicCounter(3,1)", [] { return workload::atomicCounter(3, 1); }},
      {"clightLockedCounter(2)",
       [] { return workload::clightLockedCounter(2); }},
      {"asmCounterWithPiLock(TSO,2)",
       [] { return workload::asmCounterWithPiLock(x86::MemModel::TSO, 2); }},
      {"fencedPingPong(TSO,2)",
       [] { return workload::fencedPingPong(x86::MemModel::TSO, 2); }},
      {"sbLitmus(TSO)",
       [] { return workload::sbLitmus(x86::MemModel::TSO, false); }},
      {"mpLitmus(TSO)", [] { return workload::mpLitmus(x86::MemModel::TSO); }},
  };
  uint32_t Seed = 0x5eed;
  for (const Case &C : Cases) {
    Program P = C.Make();
    fuzzWorkload(C.Name, P, /*Walks=*/24, /*Depth=*/160, Seed);
    Seed += 0x9e3779b9u;
  }
}
