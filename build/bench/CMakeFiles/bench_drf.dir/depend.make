# Empty dependencies file for bench_drf.
# This may be replaced when dependencies are built.
