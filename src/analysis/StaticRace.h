//===- analysis/StaticRace.h - Static DRF certification ---------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Eraser-style static lockset analysis (Savage et al., TOCS 1997)
/// over the client languages (Clight and CImp): a sound, syntax-directed
/// approximation of the paper's DRF premise (Thm. 15). Every static
/// access site to a global cell is collected together with the must-held
/// lockset at that site (calls to the `lock`/`unlock` entries of a
/// synchronization object acquire/release a lock token; CImp atomic
/// blocks hold the distinguished token `<atomic>`). A cell is
/// consistently protected when every pair of concurrent accesses, at
/// least one of them a write, shares a common token.
///
/// The verdict is three-valued:
///  - Certified: every shared cell is thread-confined, read-shared, or
///    consistently protected — the program is statically DRF, and the
///    dynamic Race rule of Fig. 9 cannot fire (a DrfCertificate);
///  - Racy: at least one pair of access sites may conflict — reported as
///    ranked PotentialRace diagnostics;
///  - Inapplicable: some thread executes code outside the analyzable
///    client languages (e.g. hand-written x86 such as the pi_lock client
///    of Fig. 10b), or uses a feature the analysis does not model
///    (recursion, unknown externs) — no claim is made and callers must
///    fall back to dynamic exploration.
///
/// Object-mode modules (Sec. 7.1) are not traversed: their accesses are
/// confined to object-owned data by the permission discipline (clients
/// abort on touching it), so they cannot conflict with client accesses —
/// exactly the confinement argument the paper uses to keep object-internal
/// benign races (the pi_lock spin read) out of the client DRF obligation.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_STATICRACE_H
#define CASCC_ANALYSIS_STATICRACE_H

#include "core/Program.h"

#include <set>
#include <string>
#include <vector>

namespace ccc {
namespace analysis {

/// A must-held set of lock tokens ("L:<suffix>" for lock objects,
/// "<atomic>" for atomic blocks).
using LockSet = std::set<std::string>;

/// One static access site to a global cell.
struct AccessSite {
  std::string Global;  ///< Cell name ("*" for an unknown pointer target).
  bool Write = false;
  bool Wildcard = false; ///< May touch any client cell (unknown pointer).
  LockSet Held;          ///< Must-held lockset (∩ over all walks).
  std::string Module;    ///< Defining module of the enclosing function.
  std::string Func;      ///< Enclosing function.
  unsigned Root = 0;     ///< Thread-root index.
  unsigned RootInstances = 1; ///< Threads running this root's code.

  std::string describe() const;
};

/// A pair of access sites that may conflict (the static analogue of the
/// Race rule's conflicting footprints).
struct PotentialRace {
  std::string Global;
  AccessSite A, B;
  /// Severity rank: 3 = write/write with no protection at all, 2 =
  /// unprotected write/read (or protected-on-one-side write/write), 1 =
  /// lockset mismatch (both sides locked, but by different locks).
  int Rank = 1;

  std::string describe() const;
};

enum class StaticVerdict { Certified, Racy, Inapplicable };

const char *verdictName(StaticVerdict V);

/// The analysis result: a DRF certificate (Certified), ranked potential
/// races, or a declination with reasons.
struct StaticDrfReport {
  StaticVerdict Verdict = StaticVerdict::Inapplicable;
  /// Ranked most-severe-first; nonempty only when Racy.
  std::vector<PotentialRace> Races;
  /// Inapplicability reasons and conservative warnings.
  std::vector<std::string> Notes;

  unsigned ThreadRoots = 0;    ///< Distinct (module, entry) thread roots.
  unsigned AccessSites = 0;    ///< Distinct static access sites collected.
  unsigned SharedCells = 0;    ///< Cells accessed by >= 2 thread instances.
  unsigned ProtectedCells = 0; ///< Shared cells with a consistent lockset.

  bool certified() const { return Verdict == StaticVerdict::Certified; }
  std::string toString() const;
};

/// Runs the lockset analysis on a linked program.
StaticDrfReport staticRaceAnalysis(const Program &P);

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_STATICRACE_H
