//===- tests/MemTest.cpp - Memory-model unit tests -------------------------===//
//
// Unit tests for the memory substrate: address sets, values, memory,
// free lists, footprints, and the Fig. 6 / Fig. 8 predicates.
//
//===----------------------------------------------------------------------===//

#include "mem/Footprint.h"
#include "mem/FreeList.h"
#include "mem/Mem.h"
#include "mem/MemPred.h"

#include <gtest/gtest.h>

using namespace ccc;

TEST(AddrSet, BasicOps) {
  AddrSet A{3, 1, 2, 3};
  EXPECT_EQ(A.size(), 3u);
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(3));
  EXPECT_FALSE(A.contains(4));
  A.insert(4);
  EXPECT_TRUE(A.contains(4));
  A.insert(4);
  EXPECT_EQ(A.size(), 4u);
}

TEST(AddrSet, SetAlgebra) {
  AddrSet A{1, 2, 3};
  AddrSet B{3, 4};
  EXPECT_TRUE(A.intersects(B));
  EXPECT_EQ(A.intersect(B), (AddrSet{3}));
  EXPECT_EQ(A.minus(B), (AddrSet{1, 2}));
  AddrSet U = A;
  U.unionWith(B);
  EXPECT_EQ(U, (AddrSet{1, 2, 3, 4}));
  EXPECT_TRUE((AddrSet{1, 2}).subsetOf(A));
  EXPECT_FALSE(A.subsetOf(B));
  EXPECT_FALSE(AddrSet{}.intersects(A));
  EXPECT_TRUE(AddrSet{}.subsetOf(A));
}

TEST(Value, Kinds) {
  Value I = Value::makeInt(-7);
  Value P = Value::makePtr(0x1000);
  Value U = Value::makeUndef();
  EXPECT_TRUE(I.isInt());
  EXPECT_EQ(I.asInt(), -7);
  EXPECT_TRUE(P.isPtr());
  EXPECT_EQ(P.asPtr(), 0x1000u);
  EXPECT_TRUE(U.isUndef());
  EXPECT_NE(I, P);
  EXPECT_EQ(I, Value::makeInt(-7));
  // Int(4096) and Ptr(4096) are distinct values.
  EXPECT_NE(Value::makeInt(0x1000), Value::makePtr(0x1000));
}

TEST(Mem, LoadStoreAlloc) {
  Mem M;
  EXPECT_FALSE(M.load(1).has_value());
  EXPECT_FALSE(M.store(1, Value::makeInt(5)));
  M.alloc(1, Value::makeInt(0));
  EXPECT_TRUE(M.store(1, Value::makeInt(5)));
  ASSERT_TRUE(M.load(1).has_value());
  EXPECT_EQ(M.load(1)->asInt(), 5);
  EXPECT_EQ(M.dom(), (AddrSet{1}));
}

TEST(Mem, DoubleAllocIsCheckedFailure) {
  // Regression: alloc used to document double allocation as "an error"
  // but silently overwrite the cell (and would have corrupted the
  // maintained incremental hash). It must fail like store on an
  // unallocated address fails, leaving the memory untouched.
  Mem M;
  EXPECT_TRUE(M.alloc(7, Value::makeInt(1)));
  const std::string KeyBefore = M.key();
  const uint64_t HashBefore = M.hashKey();
  EXPECT_FALSE(M.alloc(7, Value::makeInt(2)));
  EXPECT_EQ(M.load(7)->asInt(), 1);
  EXPECT_EQ(M.domSize(), 1u);
  EXPECT_EQ(M.key(), KeyBefore);
  EXPECT_EQ(M.hashKey(), HashBefore);
}

TEST(Mem, AllocFrameOverwritesForStackReuse) {
  // Frame regions are reused after returns; allocFrame is the one path
  // allowed to overwrite an already-allocated cell.
  Mem M;
  M.allocFrame(0x100000, Value::makeInt(1));
  M.allocFrame(0x100000, Value::makeInt(2));
  EXPECT_EQ(M.load(0x100000)->asInt(), 2);
  EXPECT_EQ(M.domSize(), 1u);
}

TEST(Mem, EqOn) {
  Mem A, B;
  A.alloc(1, Value::makeInt(1));
  A.alloc(2, Value::makeInt(2));
  B.alloc(1, Value::makeInt(1));
  B.alloc(2, Value::makeInt(99));
  EXPECT_TRUE(A.eqOn(B, AddrSet{1}));
  EXPECT_FALSE(A.eqOn(B, AddrSet{2}));
  // Address outside both domains counts as equal.
  EXPECT_TRUE(A.eqOn(B, AddrSet{7}));
  // Address in one domain only does not.
  B.alloc(3, Value::makeInt(0));
  EXPECT_FALSE(A.eqOn(B, AddrSet{3}));
}

TEST(FreeList, RegionsAndSubRegions) {
  FreeList F(100, 50);
  EXPECT_TRUE(F.contains(100));
  EXPECT_TRUE(F.contains(149));
  EXPECT_FALSE(F.contains(150));
  EXPECT_EQ(F.at(0), 100u);
  EXPECT_EQ(F.at(49), 149u);
  FreeList Sub = F.subRegion(10, 5);
  EXPECT_EQ(Sub.base(), 110u);
  EXPECT_TRUE(Sub.contains(114));
  EXPECT_FALSE(Sub.contains(115));
  FreeList G(150, 10);
  EXPECT_FALSE(F.overlaps(G));
  FreeList H(149, 10);
  EXPECT_TRUE(F.overlaps(H));
}

TEST(Footprint, UnionSubsetConflict) {
  Footprint A({1, 2}, {3});
  Footprint B({2}, {3, 4});
  Footprint U = A.unioned(B);
  EXPECT_EQ(U.reads(), (AddrSet{1, 2}));
  EXPECT_EQ(U.writes(), (AddrSet{3, 4}));
  EXPECT_TRUE(A.subsetOf(U));
  EXPECT_TRUE(B.subsetOf(U));
  EXPECT_FALSE(U.subsetOf(A));

  // Conflicts: write/write and write/read, but not read/read.
  Footprint R1({5}, {});
  Footprint R2({5}, {});
  EXPECT_FALSE(R1.conflictsWith(R2));
  Footprint W1({}, {5});
  EXPECT_TRUE(W1.conflictsWith(R1));
  EXPECT_TRUE(W1.conflictsWith(W1));
}

TEST(Footprint, InstrumentedConflictRespectsAtomicBits) {
  InstrFootprint A{Footprint({}, {5}), /*InAtomic=*/true};
  InstrFootprint B{Footprint({5}, {}), /*InAtomic=*/true};
  // Both inside atomic blocks: not a race (Sec. 5).
  EXPECT_FALSE(A.conflictsWith(B));
  B.InAtomic = false;
  EXPECT_TRUE(A.conflictsWith(B));
}

TEST(MemPred, Forward) {
  Mem A;
  A.alloc(1, Value::makeInt(0));
  Mem B = A;
  B.alloc(2, Value::makeInt(0));
  EXPECT_TRUE(memForward(A, B));
  EXPECT_FALSE(memForward(B, A));
}

TEST(MemPred, LEffectDetectsOutOfFootprintWrites) {
  FreeList F(100, 10);
  Mem Before;
  Before.alloc(1, Value::makeInt(0));
  Before.alloc(2, Value::makeInt(0));

  Mem After = Before;
  After.store(1, Value::makeInt(7));
  Footprint FP({}, {1});
  EXPECT_TRUE(lEffect(Before, After, FP, F));

  // Writing outside the declared write set violates LEffect.
  Mem Bad = Before;
  Bad.store(2, Value::makeInt(7));
  EXPECT_FALSE(lEffect(Before, Bad, FP, F));

  // Allocation from the free list must be inside ws n F.
  Mem Alloc = Before;
  Alloc.alloc(100, Value::makeInt(0));
  Footprint AllocFP({}, {100});
  EXPECT_TRUE(lEffect(Before, Alloc, AllocFP, F));
  Mem AllocBad = Before;
  AllocBad.alloc(50, Value::makeInt(0)); // not in F
  Footprint AllocBadFP({}, {50});
  EXPECT_FALSE(lEffect(Before, AllocBad, AllocBadFP, F));
}

TEST(MemPred, LEqPreAndPost) {
  FreeList F(100, 10);
  Footprint FP({1}, {2});
  Mem A;
  A.alloc(1, Value::makeInt(5));
  A.alloc(2, Value::makeInt(0));
  A.alloc(3, Value::makeInt(9));
  Mem B = A;
  B.store(3, Value::makeInt(42)); // differs outside rs/ws/F only
  EXPECT_TRUE(lEqPre(A, B, FP, F));
  B.store(1, Value::makeInt(6));
  EXPECT_FALSE(lEqPre(A, B, FP, F));

  Mem C = A;
  C.store(1, Value::makeInt(77)); // differs outside ws
  EXPECT_TRUE(lEqPost(A, C, FP, F));
  C.store(2, Value::makeInt(1));
  EXPECT_FALSE(lEqPost(A, C, FP, F));
}

TEST(MemPred, Closed) {
  Mem M;
  M.alloc(1, Value::makePtr(2));
  M.alloc(2, Value::makeInt(0));
  EXPECT_TRUE(closedMem(M));
  EXPECT_TRUE(closedOn(AddrSet{1, 2}, M));
  // A pointer escaping the set breaks closedness.
  EXPECT_FALSE(closedOn(AddrSet{1}, M));
  M.store(1, Value::makePtr(999));
  EXPECT_FALSE(closedMem(M));
}

TEST(MemPred, MuIdentityAndFPmatch) {
  Mu M = Mu::identity(AddrSet{10, 11});
  EXPECT_TRUE(wfMu(M));
  EXPECT_EQ(M.image(AddrSet{10}), (AddrSet{10}));

  // Target footprint within the (mapped) source footprint: match.
  Footprint Src({10}, {11});
  Footprint TgtOk({10}, {11});
  EXPECT_TRUE(fpMatch(M, Src, TgtOk));

  // Target may read what the source wrote (write-to-read weakening).
  Footprint TgtRW({11}, {});
  EXPECT_TRUE(fpMatch(M, Src, TgtRW));

  // Target may not write what the source only read.
  Footprint TgtBad({}, {10});
  EXPECT_FALSE(fpMatch(M, Src, TgtBad));

  // Non-shared locations are unconstrained.
  Footprint TgtLocal({500}, {501});
  EXPECT_TRUE(fpMatch(M, Src, TgtLocal));
}

TEST(MemPred, InvRelatesSharedContents) {
  Mu Map = Mu::identity(AddrSet{10});
  Mem S, T;
  S.alloc(10, Value::makeInt(3));
  T.alloc(10, Value::makeInt(3));
  EXPECT_TRUE(invRel(Map, S, T));
  T.store(10, Value::makeInt(4));
  EXPECT_FALSE(invRel(Map, S, T));
}

TEST(MemPred, RelyRPreservesFreeListMemory) {
  FreeList F(100, 10);
  AddrSet S{10};
  Mem Before;
  Before.alloc(10, Value::makeInt(0));
  Before.alloc(100, Value::makeInt(1));
  Mem After = Before;
  After.store(10, Value::makeInt(5)); // environment may change shared data
  EXPECT_TRUE(relyR(Before, After, F, S));
  After.store(100, Value::makeInt(9)); // but not our local memory
  EXPECT_FALSE(relyR(Before, After, F, S));
}

TEST(MemPred, InScope) {
  FreeList F(100, 10);
  AddrSet S{10, 11};
  EXPECT_TRUE(inScope(Footprint({10}, {105}), F, S));
  EXPECT_FALSE(inScope(Footprint({10}, {55}), F, S));
  EXPECT_TRUE(inScope(Footprint::emp(), F, S));
}
