//===- core/Core.h - Abstract module-local core states ----------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract "core" states (paper: kappa in Core, Fig. 4): the internal
/// state of a module's execution, such as a control continuation or a
/// register file. Cores are immutable and shared; every concrete language
/// provides its own subclass. A core must render a canonical key so the
/// exploration engines can memoize global states.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_CORE_H
#define CASCC_CORE_CORE_H

#include <memory>
#include <string>

namespace ccc {

/// Base class of all language-specific core states.
class Core {
public:
  virtual ~Core();

  /// Canonical key uniquely identifying this core state within its module.
  virtual std::string key() const = 0;

  /// Human-readable rendering (defaults to the key).
  virtual std::string pretty() const { return key(); }

protected:
  Core() = default;
};

using CoreRef = std::shared_ptr<const Core>;

} // namespace ccc

#endif // CASCC_CORE_CORE_H
