//===- core/Semantics.cpp - Whole-program semantics façade ----------------===//

#include "core/Semantics.h"

using namespace ccc;

TraceSet ccc::preemptiveTraces(const Program &P, ExploreOptions Opts,
                               ExploreStats *Stats) {
  Explorer<World> E(Opts);
  E.build(World::load(P));
  TraceSet Out = E.traces();
  if (Stats)
    *Stats = E.stats();
  return Out;
}

TraceSet ccc::nonPreemptiveTraces(const Program &P, ExploreOptions Opts,
                                  ExploreStats *Stats) {
  Explorer<NPWorld> E(Opts);
  E.build(NPWorld::loadAll(P));
  TraceSet Out = E.traces();
  if (Stats)
    *Stats = E.stats();
  return Out;
}

std::optional<RaceWitness> ccc::findDataRace(const Program &P,
                                             ExploreOptions Opts) {
  Explorer<World> E(Opts);
  E.build(World::load(P));
  return E.findRace();
}

RaceCheck ccc::checkDRF(const Program &P, ExploreOptions Opts) {
  Explorer<World> E(Opts);
  E.build(World::load(P));
  return E.checkRace();
}

bool ccc::isDRF(const Program &P, ExploreOptions Opts) {
  return checkDRF(P, Opts).verdict() == CheckVerdict::Certified;
}

std::optional<RaceWitness> ccc::findNPDataRace(const Program &P,
                                               ExploreOptions Opts) {
  Explorer<NPWorld> E(Opts);
  E.build(NPWorld::loadAll(P));
  return E.findRace();
}

RaceCheck ccc::checkNPDRF(const Program &P, ExploreOptions Opts) {
  Explorer<NPWorld> E(Opts);
  E.build(NPWorld::loadAll(P));
  return E.checkRace();
}

bool ccc::isNPDRF(const Program &P, ExploreOptions Opts) {
  return checkNPDRF(P, Opts).verdict() == CheckVerdict::Certified;
}

CheckVerdict ccc::checkSafe(const Program &P, ExploreOptions Opts,
                            std::string *Reason) {
  Explorer<World> E(Opts);
  E.build(World::load(P));
  auto R = E.abortReason();
  if (R && Reason)
    *Reason = *R;
  return E.safetyVerdict();
}

bool ccc::isSafe(const Program &P, ExploreOptions Opts, std::string *Reason) {
  return checkSafe(P, Opts, Reason) == CheckVerdict::Certified;
}
