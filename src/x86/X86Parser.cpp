//===- x86/X86Parser.cpp - AT&T-syntax assembly parser ---------------------===//

#include "x86/X86Parser.h"

#include "support/Lexer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace ccc;
using namespace ccc::x86;

namespace {

class AsmParser {
public:
  AsmParser(TokenStream Toks, std::string &Error)
      : Toks(std::move(Toks)), Error(Error) {}

  std::shared_ptr<Module> parse() {
    auto M = std::make_shared<Module>();
    while (!Toks.atEnd()) {
      if (!parseLine(*M))
        return nullptr;
    }
    // Resolve entry PC indices.
    for (auto &E : M->Entries) {
      auto L = M->label(E.first);
      if (!L) {
        Error = "asm: entry '" + E.first + "' has no label";
        return nullptr;
      }
      E.second.PCIndex = *L;
    }
    // Check branch targets.
    for (const Instr &I : M->Code) {
      if ((I.K == Instr::Kind::Jmp || I.K == Instr::Kind::Jcc) &&
          !M->label(I.Name)) {
        Error = "asm: unknown branch target '" + I.Name + "'";
        return nullptr;
      }
    }
    // Record each entry's frame-layout extent: the furthest cell its
    // reachable code addresses esp-relative with a non-negative
    // displacement (a syntactic bound — frame pointers laundered
    // through other registers are not chased; analyses fall back to
    // the declared size for those). Shared with the fence-insertion
    // rewrite layer, which re-runs it after splicing instructions in.
    recomputeFrameExtents(*M);
    return M;
  }

private:
  bool fail(const std::string &Msg) {
    Error = "asm parse error (line " + std::to_string(Toks.line()) +
            "): " + Msg;
    return false;
  }

  bool expectInt(int64_t &Out) {
    if (!Toks.peek().is(Token::Kind::Int))
      return fail("expected integer, got '" + Toks.peek().Text + "'");
    Out = Toks.next().IntVal;
    return true;
  }

  bool expectIdent(std::string &Out) {
    if (!Toks.peek().is(Token::Kind::Ident))
      return fail("expected identifier, got '" + Toks.peek().Text + "'");
    Out = Toks.next().Text;
    return true;
  }

  bool parseLine(Module &M) {
    const Token &T = Toks.peek();
    if (!T.is(Token::Kind::Ident))
      return fail("expected directive, label or mnemonic, got '" + T.Text +
                  "'");
    std::string Head = T.Text;

    if (Head == ".data") {
      Toks.next();
      std::string Name;
      int64_t Init = 0;
      bool Neg = false;
      if (!expectIdent(Name))
        return false;
      if (Toks.accept("-"))
        Neg = true;
      if (!expectInt(Init))
        return false;
      M.Globals.emplace_back(Name,
                             static_cast<int32_t>(Neg ? -Init : Init));
      return true;
    }
    if (Head == ".entry") {
      Toks.next();
      std::string Name;
      if (!expectIdent(Name))
        return false;
      EntryInfo E;
      int64_t V = 0;
      if (Toks.peek().is(Token::Kind::Int)) {
        expectInt(V);
        E.FrameSize = static_cast<uint32_t>(V);
      }
      if (Toks.peek().is(Token::Kind::Int)) {
        expectInt(V);
        E.Arity = static_cast<unsigned>(V);
      }
      M.Entries[Name] = E;
      return true;
    }
    if (Head == ".extern") {
      Toks.next();
      std::string Name;
      int64_t Arity = 0;
      if (!expectIdent(Name) || !expectInt(Arity))
        return false;
      M.ExternArity[Name] = static_cast<unsigned>(Arity);
      return true;
    }

    // Label?
    if (Toks.peek(1).isSymbol(":")) {
      Toks.next();
      Toks.next();
      Instr I;
      I.K = Instr::Kind::Label;
      I.Name = Head;
      M.Labels[Head] = static_cast<unsigned>(M.Code.size());
      M.Code.push_back(std::move(I));
      return true;
    }

    return parseInstr(M, Head);
  }

  bool parseInstr(Module &M, const std::string &Mn) {
    Toks.next(); // consume mnemonic
    Instr I;

    auto binary = [&](Instr::Kind K) {
      I.K = K;
      if (!parseOperand(I.Src) || !Toks.accept(","))
        return fail("expected 'src, dst' operands for " + Mn);
      if (!parseOperand(I.Dst))
        return false;
      M.Code.push_back(std::move(I));
      return true;
    };
    auto unary = [&](Instr::Kind K) {
      I.K = K;
      if (!parseOperand(I.Dst))
        return false;
      M.Code.push_back(std::move(I));
      return true;
    };
    auto branch = [&](Instr::Kind K, Cond C) {
      I.K = K;
      I.CC = C;
      if (!expectIdent(I.Name))
        return false;
      M.Code.push_back(std::move(I));
      return true;
    };

    if (Mn == "movl")
      return binary(Instr::Kind::Mov);
    if (Mn == "addl")
      return binary(Instr::Kind::Add);
    if (Mn == "subl")
      return binary(Instr::Kind::Sub);
    if (Mn == "imull")
      return binary(Instr::Kind::Imul);
    if (Mn == "divl")
      return binary(Instr::Kind::Div);
    if (Mn == "andl")
      return binary(Instr::Kind::And);
    if (Mn == "orl")
      return binary(Instr::Kind::Or);
    if (Mn == "xorl")
      return binary(Instr::Kind::Xor);
    if (Mn == "shll")
      return binary(Instr::Kind::Shl);
    if (Mn == "sarl")
      return binary(Instr::Kind::Sar);
    if (Mn == "cmpl")
      return binary(Instr::Kind::Cmp);
    if (Mn == "negl")
      return unary(Instr::Kind::Neg);
    if (Mn == "notl")
      return unary(Instr::Kind::Not);
    if (Mn == "sete")
      return (I.CC = Cond::E, unary(Instr::Kind::Setcc));
    if (Mn == "setne")
      return (I.CC = Cond::NE, unary(Instr::Kind::Setcc));
    if (Mn == "setl")
      return (I.CC = Cond::L, unary(Instr::Kind::Setcc));
    if (Mn == "setle")
      return (I.CC = Cond::LE, unary(Instr::Kind::Setcc));
    if (Mn == "setg")
      return (I.CC = Cond::G, unary(Instr::Kind::Setcc));
    if (Mn == "setge")
      return (I.CC = Cond::GE, unary(Instr::Kind::Setcc));
    if (Mn == "jmp")
      return branch(Instr::Kind::Jmp, Cond::E);
    if (Mn == "je")
      return branch(Instr::Kind::Jcc, Cond::E);
    if (Mn == "jne")
      return branch(Instr::Kind::Jcc, Cond::NE);
    if (Mn == "jl")
      return branch(Instr::Kind::Jcc, Cond::L);
    if (Mn == "jle")
      return branch(Instr::Kind::Jcc, Cond::LE);
    if (Mn == "jg")
      return branch(Instr::Kind::Jcc, Cond::G);
    if (Mn == "jge")
      return branch(Instr::Kind::Jcc, Cond::GE);
    if (Mn == "call" || Mn == "tcall") {
      I.K = Mn == "call" ? Instr::Kind::Call : Instr::Kind::TailCall;
      if (!expectIdent(I.Name))
        return false;
      M.Code.push_back(std::move(I));
      return true;
    }
    if (Mn == "retl") {
      I.K = Instr::Kind::Ret;
      M.Code.push_back(std::move(I));
      return true;
    }
    if (Mn == "mfence") {
      I.K = Instr::Kind::Mfence;
      M.Code.push_back(std::move(I));
      return true;
    }
    if (Mn == "printl") {
      I.K = Instr::Kind::Print;
      if (!parseOperand(I.Src))
        return false;
      M.Code.push_back(std::move(I));
      return true;
    }
    if (Mn == "lock") {
      std::string Next;
      if (!expectIdent(Next) || Next != "cmpxchgl")
        return fail("expected 'cmpxchgl' after lock prefix");
      return binary(Instr::Kind::LockCmpxchg);
    }
    return fail("unknown mnemonic '" + Mn + "'");
  }

  bool parseOperand(Operand &O) {
    const Token &T = Toks.peek();
    // $imm or imm-as-displacement.
    if (T.is(Token::Kind::Int)) {
      int64_t V = Toks.next().IntVal;
      bool WasImm = !T.Text.empty() && T.Text[0] == '$';
      if (WasImm) {
        O = Operand::imm(static_cast<int32_t>(V));
        return true;
      }
      // disp(%reg)
      return parseMemWithDisp(static_cast<int32_t>(V), O);
    }
    if (Toks.accept("-")) {
      int64_t V;
      if (!expectInt(V))
        return false;
      return parseMemWithDisp(static_cast<int32_t>(-V), O);
    }
    if (T.isSymbol("(")) {
      return parseMemWithDisp(0, O);
    }
    if (T.is(Token::Kind::Ident)) {
      std::string Name = Toks.peek().Text;
      Toks.next();
      if (Name.size() > 1 && Name[0] == '$') {
        O = Operand::globalImm(Name.substr(1));
        return true;
      }
      if (auto R = regByName(Name)) {
        O = Operand::reg(*R);
        return true;
      }
      O = Operand::memGlobal(Name);
      return true;
    }
    return fail("expected operand, got '" + T.Text + "'");
  }

  bool parseMemWithDisp(int32_t Disp, Operand &O) {
    if (!Toks.accept("("))
      return fail("expected '(' in memory operand");
    std::string RName;
    if (!expectIdent(RName))
      return false;
    auto R = regByName(RName);
    if (!R)
      return fail("unknown register '" + RName + "'");
    if (!Toks.accept(")"))
      return fail("expected ')' in memory operand");
    O = Operand::memBase(*R, Disp);
    return true;
  }

  TokenStream Toks;
  std::string &Error;
};

} // namespace

std::shared_ptr<Module> ccc::x86::parseAsm(const std::string &Source,
                                           std::string &Error) {
  static const std::vector<std::string> Symbols = {"(", ")", ",", ":", "-"};
  std::vector<Token> Toks;
  if (!tokenize(Source, Symbols, Toks, Error))
    return nullptr;
  AsmParser P(TokenStream(std::move(Toks)), Error);
  return P.parse();
}

std::shared_ptr<Module> ccc::x86::parseAsmOrDie(const std::string &Source) {
  std::string Error;
  auto M = parseAsm(Source, Error);
  if (!M) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    std::abort();
  }
  return M;
}
