//===- ir/IRLangs.h - The IR instantiations of the framework ----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every intermediate representation of the pipeline instantiates the
/// abstract module language with a footprint-instrumented interpreter, so
/// that the output of every pass can be executed, explored, and validated
/// against its input with the same global semantics — the executable
/// counterpart of CompCert's per-pass semantic preservation proofs.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_IRLANGS_H
#define CASCC_IR_IRLANGS_H

#include "core/ModuleLang.h"
#include "core/Program.h"
#include "ir/Cminor.h"
#include "ir/CminorSel.h"
#include "ir/Csharpminor.h"
#include "ir/Linear.h"
#include "ir/RTL.h"

#include <memory>

namespace ccc {
namespace ir {

/// C#minor interpreter: locals are frame slots in free-list memory.
class CsharpminorLang : public ModuleLang {
public:
  explicit CsharpminorLang(std::shared_ptr<const csharp::Module> M);
  ~CsharpminorLang() override;
  std::string name() const override { return "Csharpminor"; }
  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;
  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;
  CoreRef applyReturn(const Core &C, const Value &V) const override;

private:
  std::shared_ptr<const csharp::Module> Mod;
};

/// Cminor interpreter: locals are temporaries in the core.
class CminorLang : public ModuleLang {
public:
  explicit CminorLang(std::shared_ptr<const cminor::Module> M);
  ~CminorLang() override;
  std::string name() const override { return "Cminor"; }
  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;
  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;
  CoreRef applyReturn(const Core &C, const Value &V) const override;

private:
  std::shared_ptr<const cminor::Module> Mod;
};

/// CminorSel interpreter: selected operators and fused conditions.
class CminorSelLang : public ModuleLang {
public:
  explicit CminorSelLang(std::shared_ptr<const cminorsel::Module> M);
  ~CminorSelLang() override;
  std::string name() const override { return "CminorSel"; }
  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;
  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;
  CoreRef applyReturn(const Core &C, const Value &V) const override;

private:
  std::shared_ptr<const cminorsel::Module> Mod;
};

/// RTL interpreter: CFG over pseudo-registers.
class RTLLang : public ModuleLang {
public:
  explicit RTLLang(std::shared_ptr<const rtl::Module> M);
  ~RTLLang() override;
  std::string name() const override { return "RTL"; }
  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;
  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;
  CoreRef applyReturn(const Core &C, const Value &V) const override;

private:
  std::shared_ptr<const rtl::Module> Mod;
};

/// LTL interpreter: CFG over machine registers and abstract slots.
class LTLLang : public ModuleLang {
public:
  explicit LTLLang(std::shared_ptr<const ltl::Module> M);
  ~LTLLang() override;
  std::string name() const override { return "LTL"; }
  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;
  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;
  CoreRef applyReturn(const Core &C, const Value &V) const override;

private:
  std::shared_ptr<const ltl::Module> Mod;
};

/// Linear interpreter: instruction list with labels; slots still abstract.
class LinearLang : public ModuleLang {
public:
  explicit LinearLang(std::shared_ptr<const linear::Module> M);
  ~LinearLang() override;
  std::string name() const override { return "Linear"; }
  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;
  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;
  CoreRef applyReturn(const Core &C, const Value &V) const override;

private:
  std::shared_ptr<const linear::Module> Mod;
};

/// Mach interpreter: slots are concrete frame memory from the free list.
class MachLang : public ModuleLang {
public:
  explicit MachLang(std::shared_ptr<const mach::Module> M);
  ~MachLang() override;
  std::string name() const override { return "Mach"; }
  CoreRef initCore(const std::string &Entry,
                   const std::vector<Value> &Args) const override;
  std::vector<LocalStep> step(const FreeList &F, const Core &C,
                              const Mem &M) const override;
  CoreRef applyReturn(const Core &C, const Value &V) const override;

private:
  std::shared_ptr<const mach::Module> Mod;
};

/// Program-registration helpers: declare the module's globals and add the
/// matching interpreter.
unsigned addCsharpminorModule(Program &P, const std::string &Name,
                              std::shared_ptr<const csharp::Module> M);
unsigned addCminorModule(Program &P, const std::string &Name,
                         std::shared_ptr<const cminor::Module> M);
unsigned addCminorSelModule(Program &P, const std::string &Name,
                            std::shared_ptr<const cminorsel::Module> M);
unsigned addRTLModule(Program &P, const std::string &Name,
                      std::shared_ptr<const rtl::Module> M);
unsigned addLTLModule(Program &P, const std::string &Name,
                      std::shared_ptr<const ltl::Module> M);
unsigned addLinearModule(Program &P, const std::string &Name,
                         std::shared_ptr<const linear::Module> M);
unsigned addMachModule(Program &P, const std::string &Name,
                       std::shared_ptr<const mach::Module> M);

} // namespace ir
} // namespace ccc

#endif // CASCC_IR_IRLANGS_H
