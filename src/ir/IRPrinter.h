//===- ir/IRPrinter.h - Textual dumps of the compiler IRs -------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of the CFG-form and linear-form IRs, used by the
/// compiler driver's debugging aids and by tests asserting on pass
/// output structure.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_IRPRINTER_H
#define CASCC_IR_IRPRINTER_H

#include "ir/Linear.h"
#include "ir/RTL.h"

#include <string>

namespace ccc {
namespace ir {

/// Renders one RTL instruction (without the node id).
std::string toString(const rtl::Instr &I);
/// Renders one LTL instruction.
std::string toString(const ltl::Instr &I);
/// Renders one Linear/Mach instruction.
std::string toString(const linear::Instr &I);

/// Renders a whole function/module, one instruction per line.
std::string toString(const rtl::Function &F);
std::string toString(const rtl::Module &M);
std::string toString(const ltl::Function &F);
std::string toString(const ltl::Module &M);
std::string toString(const linear::Function &F);
std::string toString(const linear::Module &M);
std::string toString(const mach::Function &F);
std::string toString(const mach::Module &M);

} // namespace ir
} // namespace ccc

#endif // CASCC_IR_IRPRINTER_H
