//===- core/Msg.h - Module-local step messages ------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Messages labelling module-local steps (paper: iota in Msg, Fig. 4):
/// silent steps (tau), externally observable events e, thread/function
/// termination (ret), and atomic-block boundaries (EntAtom / ExtAtom).
/// Following the paper's Coq development (footnote 5), we additionally
/// support external function calls across modules (ExtCall / TailCall),
/// formalized as in Compositional CompCert.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_MSG_H
#define CASCC_CORE_MSG_H

#include "mem/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccc {

/// The message labelling one module-local step.
struct Msg {
  enum class Kind {
    Tau,      ///< Silent internal step.
    Event,    ///< Externally observable event (e.g. print).
    Ret,      ///< Return from the current core (thread/function exit).
    EntAtom,  ///< Enter an atomic block.
    ExtAtom,  ///< Exit an atomic block.
    ExtCall,  ///< Call an external function in some module.
    TailCall, ///< Tail-call an external function (replaces the frame).
    Spawn,    ///< Create a new thread (the paper's future-work extension:
              ///< the spawn step assigns a fresh free list to the thread).
  };

  Kind K = Kind::Tau;
  /// Event payload (Kind::Event).
  int64_t EventVal = 0;
  /// Return value (Kind::Ret).
  Value RetVal;
  /// Callee entry name (Kind::ExtCall / TailCall).
  std::string Callee;
  /// Call arguments (Kind::ExtCall / TailCall).
  std::vector<Value> Args;

  static Msg tau() { return Msg{}; }

  static Msg event(int64_t V) {
    Msg M;
    M.K = Kind::Event;
    M.EventVal = V;
    return M;
  }

  static Msg ret(Value V) {
    Msg M;
    M.K = Kind::Ret;
    M.RetVal = V;
    return M;
  }

  static Msg entAtom() {
    Msg M;
    M.K = Kind::EntAtom;
    return M;
  }

  static Msg extAtom() {
    Msg M;
    M.K = Kind::ExtAtom;
    return M;
  }

  static Msg extCall(std::string Callee, std::vector<Value> Args) {
    Msg M;
    M.K = Kind::ExtCall;
    M.Callee = std::move(Callee);
    M.Args = std::move(Args);
    return M;
  }

  static Msg tailCall(std::string Callee, std::vector<Value> Args) {
    Msg M = extCall(std::move(Callee), std::move(Args));
    M.K = Kind::TailCall;
    return M;
  }

  static Msg spawn(std::string Entry, std::vector<Value> Args) {
    Msg M = extCall(std::move(Entry), std::move(Args));
    M.K = Kind::Spawn;
    return M;
  }

  bool isTau() const { return K == Kind::Tau; }
  bool isSilentForTrace() const { return K != Kind::Event; }

  std::string toString() const;
};

} // namespace ccc

#endif // CASCC_CORE_MSG_H
