//===- bench/bench_drf.cpp - E2: race detection cost (Fig. 9 / Sec. 5) -----===//
//
// Measures the cost of the Race-rule exploration (Fig. 9) as thread count
// and per-thread work grow, and the state-space reduction obtained by
// checking races in the non-preemptive semantics instead (NPDRF) — the
// practical payoff of the paper's reduction. Also measures the parallel
// engine's scaling on the largest state spaces, verifying that every
// thread count produces the identical graph and race verdict.
//
// Expected shape: the non-preemptive state space is orders of magnitude
// smaller and the gap widens with thread count and program size.
//
// Engine statistics are emitted machine-readably to BENCH_drf.json.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "analysis/RaceDetector.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace ccc;

namespace {

std::string fmtRate(double StatesPerSec) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.0fk/s", StatesPerSec / 1000.0);
  return Buf;
}

std::string fmtPct(double Frac) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.0f%%", Frac * 100.0);
  return Buf;
}

/// The POR cross-check (hard-failing): on every workload family the
/// reduced exploration must reproduce the full exploration's race
/// verdict, safety verdict, conclusiveness and complete trace set — and
/// on the largest locked t=3 family it must shrink the state space by at
/// least 5x. Runs both modes regardless of --no-por: this is the gate
/// that makes the reduction trustworthy, not a benchmark.
bool benchPorCrossCheck(benchtable::JsonLog &Log, ccc::MemModel WeakModel) {
  const std::string MN = memModelName(WeakModel);
  std::printf("\nPartial-order reduction cross-check (verdicts must be "
              "identical, hard-failing)\n\n");

  struct FamilyRow {
    std::string Name;
    std::function<Program()> Make;
    double MinReduction; // 0 = identity only
  };
  const FamilyRow Families[] = {
      {"locked t=2", [] { return workload::lockedCounter(2, 1, 0); }, 0.0},
      {"locked t=2 x2", [] { return workload::lockedCounter(2, 2, 0); }, 0.0},
      {"locked t=3", [] { return workload::lockedCounter(3, 1, 0); }, 5.0},
      {"racy t=2", [] { return workload::racyCounter(2); }, 0.0},
      {"atomic t=2 w=2", [] { return workload::atomicCounter(2, 2); }, 0.0},
      {"atomic t=3 w=3", [] { return workload::atomicCounter(3, 3); }, 0.0},
      {"clight locked", [] { return workload::clightLockedCounter(2); }, 0.0},
      {"sb " + MN,
       [=] { return workload::sbLitmus(WeakModel, false); }, 0.0},
      {"mp " + MN, [=] { return workload::mpLitmus(WeakModel); },
       0.0},
      {"pingpong " + MN,
       [=] { return workload::fencedPingPong(WeakModel, 2); }, 0.0},
  };

  benchtable::Table T({"family", "full states", "por states", "reduction",
                       "ample", "sleep", "identical"});
  bool Ok = true;
  for (const FamilyRow &F : Families) {
    struct Run {
      std::size_t States = 0;
      std::string Traces;
      CheckVerdict Race = CheckVerdict::Inconclusive;
      CheckVerdict Safety = CheckVerdict::Inconclusive;
      std::size_t Races = 0;
      bool Truncated = false;
      ExploreStats Stats;
    };
    auto RunMode = [&](PorMode Mode) {
      Program P = F.Make();
      ExploreOptions Opts;
      Opts.Por = Mode;
      Explorer<World> E(Opts);
      E.build(World::load(P));
      Run R;
      R.States = E.numStates();
      R.Traces = E.traces().toString();
      R.Race = E.checkRace().verdict();
      R.Safety = E.safetyVerdict();
      R.Races = E.findRacesConfinedTo(P.objectAddrs()).size();
      R.Truncated = E.truncated();
      R.Stats = E.stats();
      return R;
    };
    Run Full = RunMode(PorMode::Off);
    Run Por = RunMode(PorMode::On);

    bool Identical = Full.Traces == Por.Traces && Full.Race == Por.Race &&
                     Full.Safety == Por.Safety && Full.Races == Por.Races &&
                     Full.Truncated == Por.Truncated;
    double Reduction = Por.States
                           ? static_cast<double>(Full.States) /
                                 static_cast<double>(Por.States)
                           : 0.0;
    bool Enough = Reduction >= F.MinReduction || F.MinReduction == 0.0;
    Ok = Ok && Identical && Enough && Por.States <= Full.States;

    char RedBuf[32];
    std::snprintf(RedBuf, sizeof(RedBuf), "%.2fx%s", Reduction,
                  Enough ? "" : " (<min!)");
    T.addRow({F.Name, std::to_string(Full.States),
              std::to_string(Por.States), RedBuf,
              std::to_string(Por.Stats.Por.AmpleHits),
              std::to_string(Por.Stats.Por.SleepPrunes),
              benchtable::yesNo(Identical)});
    Log.add("por_cross_check",
            "{\"family\":" + benchtable::jsonStr(F.Name) +
                ",\"identical\":" + (Identical ? "true" : "false") +
                ",\"reduction\":" + std::to_string(Reduction) +
                ",\"full\":" + Full.Stats.toJson() +
                ",\"por\":" + Por.Stats.toJson() + "}");
  }
  T.print();
  return Ok;
}

/// Measures the static-certifier fast path (analysis/RaceDetector.h)
/// against full preemptive exploration on the workload families: when the
/// certificate holds, the exploration is skipped outright and its entire
/// state count is avoided.
bool benchStaticFastPath(benchtable::JsonLog &Log, PorMode Por) {
  std::printf("\nStatic lockset certifier vs. Fig. 9 exploration\n\n");

  struct FamilyRow {
    const char *Name;
    std::function<Program()> Make;
  };
  const FamilyRow Families[] = {
      {"locked t=2", [] { return workload::lockedCounter(2, 1, 0); }},
      {"locked t=3", [] { return workload::lockedCounter(3, 1, 0); }},
      {"locked cs=3", [] { return workload::lockedCounter(2, 1, 3); }},
      {"racy t=2", [] { return workload::racyCounter(2); }},
      {"atomic t=2", [] { return workload::atomicCounter(2, 5); }},
      {"atomic t=3", [] { return workload::atomicCounter(3, 5); }},
      {"clight locked", [] { return workload::clightLockedCounter(2); }},
  };

  benchtable::Table T({"family", "verdict", "static ms", "explore states",
                       "explore ms", "fast path", "speedup"});
  bool Sound = true;
  for (const FamilyRow &F : Families) {
    Program P = F.Make();
    analysis::DetectResult D = analysis::detectRaces(P);

    // For the speedup/states-avoided columns, run the exploration the
    // fast path skipped.
    std::size_t ExpStates = D.ExploredStates;
    double ExpMs = D.ExploreMs;
    bool DynRace = D.Witness.has_value();
    std::string StatsJson = D.Explore.toJson();
    if (D.FastPath) {
      Program Q = F.Make();
      benchtable::Timer TE;
      ExploreOptions Opts;
      Opts.Por = Por;
      Explorer<World> E(Opts);
      E.build(World::load(Q));
      DynRace = E.findRace().has_value();
      ExpMs = TE.ms();
      ExpStates = E.numStates();
      StatsJson = E.stats().toJson();
    }

    // Soundness: a certificate must never coexist with a dynamic race.
    if (D.Static.certified() && DynRace)
      Sound = false;

    char Speedup[32];
    if (D.FastPath && D.StaticMs > 0.0)
      std::snprintf(Speedup, sizeof(Speedup), "%.0fx", ExpMs / D.StaticMs);
    else
      std::snprintf(Speedup, sizeof(Speedup), "-");
    T.addRow({F.Name, analysis::verdictName(D.Static.Verdict),
              benchtable::fmtMs(D.StaticMs), std::to_string(ExpStates),
              benchtable::fmtMs(ExpMs), D.FastPath ? "fired" : "fallback",
              Speedup});
    Log.add("static_fast_path",
            "{\"family\":" + benchtable::jsonStr(F.Name) +
                ",\"fast_path\":" + (D.FastPath ? "true" : "false") +
                ",\"static_ms\":" + std::to_string(D.StaticMs) +
                ",\"explore\":" + StatsJson + "}");
  }
  T.print();
  std::printf("\n'fired' rows skip preemptive exploration entirely: the "
              "listed state count is avoided at the cost of 'static ms'.\n");
  return Sound;
}

/// Scaling of the parallel engine on the largest state spaces: build +
/// findRace at Threads = 1, 2, 4, 8 must produce the identical state
/// count and race verdict; wall time should drop on multicore hardware.
bool benchParallelScaling(benchtable::JsonLog &Log, PorMode Por) {
  std::printf("\nParallel engine scaling (identical results required at "
              "every width)\n\n");

  struct FamilyRow {
    const char *Name;
    std::function<Program()> Make;
  };
  const FamilyRow Families[] = {
      {"locked t=3", [] { return workload::lockedCounter(3, 1, 0); }},
      {"atomic t=3 w=8", [] { return workload::atomicCounter(3, 8); }},
  };

  benchtable::Table T({"family", "threads", "states", "dedup", "build ms",
                       "race ms", "total ms", "rate", "speedup",
                       "identical"});
  bool Ok = true;
  const unsigned Cores = std::thread::hardware_concurrency();
  double BestSpeedupAt4Plus = 0.0;
  for (const FamilyRow &F : Families) {
    struct Outcome {
      std::size_t States = 0;
      std::string Race;
      double TotalMs = 0.0;
    };
    Outcome Base;
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      Program P = F.Make();
      ExploreOptions Opts;
      Opts.Threads = Threads;
      Opts.Por = Por;
      benchtable::Timer Tm;
      Explorer<World> E(Opts);
      E.build(World::load(P));
      auto W = E.findRace();
      double TotalMs = Tm.ms();
      const ExploreStats &S = E.stats();

      Outcome Cur;
      Cur.States = E.numStates();
      Cur.Race = W ? W->StateKey + "/" + std::to_string(W->T1) + "/" +
                         std::to_string(W->T2)
                   : "none";
      Cur.TotalMs = TotalMs;
      bool Identical = true;
      double Speedup = 1.0;
      if (Threads == 1) {
        Base = Cur;
      } else {
        Identical = Cur.States == Base.States && Cur.Race == Base.Race;
        Ok = Ok && Identical;
        Speedup = Cur.TotalMs > 0.0 ? Base.TotalMs / Cur.TotalMs : 0.0;
        if (Threads >= 4)
          BestSpeedupAt4Plus = std::max(BestSpeedupAt4Plus, Speedup);
      }
      char SpeedupBuf[32];
      std::snprintf(SpeedupBuf, sizeof(SpeedupBuf), "%.2fx", Speedup);
      T.addRow({F.Name, std::to_string(Threads),
                std::to_string(Cur.States), fmtPct(S.dedupHitRate()),
                benchtable::fmtMs(S.BuildMs), benchtable::fmtMs(S.RaceMs),
                benchtable::fmtMs(TotalMs), fmtRate(S.statesPerSec()),
                SpeedupBuf, benchtable::yesNo(Identical)});
      Log.add("scaling", "{\"family\":" + benchtable::jsonStr(F.Name) +
                             ",\"threads\":" + std::to_string(Threads) +
                             ",\"total_ms\":" + std::to_string(TotalMs) +
                             ",\"identical\":" +
                             (Identical ? "true" : "false") +
                             ",\"explore\":" + S.toJson() + "}");
    }
  }
  T.print();

  std::printf("\nhardware cores: %u\n", Cores);
  if (Cores >= 4) {
    std::printf("best speedup at >=4 threads: %.2fx (>=2x required on "
                "multicore hardware)\n",
                BestSpeedupAt4Plus);
    Ok = Ok && BestSpeedupAt4Plus >= 2.0;
  } else {
    std::printf("best speedup at >=4 threads: %.2fx (informational: fewer "
                "than 4 hardware cores, identity still verified)\n",
                BestSpeedupAt4Plus);
  }
  return Ok;
}

/// Opt-in capacity demonstration (`--capacity`, not part of the default
/// bench or CI): holds a >=10M-state exploration in memory to show the
/// binary tree-compressed store's headroom. Runs a ladder of growing
/// workload families with the state cap raised to 12M and stops at the
/// first family that retains >= 10M distinct states; reports the exact
/// store accounting and the process peak RSS. Full exploration (POR off)
/// — the point is the retained-state volume, not the reduction.
int runCapacity() {
  constexpr std::size_t Target = 10000000;
  constexpr unsigned Cap = 12000000;
  constexpr long RssLimitKb = 125L * 1024 * 1024;
  std::printf("Capacity demonstration: hold >=10M distinct states "
              "(store + graph) in memory\n\n");

  struct FamilyRow {
    const char *Name;
    std::function<Program()> Make;
  };
  const FamilyRow Ladder[] = {
      {"locked t=3 x2", [] { return workload::lockedCounter(3, 2, 0); }},
      {"atomic t=4 w=6", [] { return workload::atomicCounter(4, 6); }},
      {"locked t=4", [] { return workload::lockedCounter(4, 1, 0); }},
      {"pingpong tso r=6",
       [] { return workload::fencedPingPong(x86::MemModel::TSO, 6); }},
      {"locked t=3 x3", [] { return workload::lockedCounter(3, 3, 0); }},
      {"locked t=4 x2", [] { return workload::lockedCounter(4, 2, 0); }},
  };

  benchtable::Table T({"family", "states", "state MB", "B/state",
                       "graph MB", "peak RSS MB", "build ms"});
  benchtable::JsonLog Log;
  bool Reached = false;
  bool RssOk = true;
  for (const FamilyRow &F : Ladder) {
    Program P = F.Make();
    ExploreOptions Opts;
    Opts.Por = PorMode::Off;
    Opts.MaxStates = Cap;
    Explorer<World> E(Opts);
    E.build(World::load(P));
    const ExploreStats &S = E.stats();

    char StateMb[32], Bps[32], GraphMb[32], RssMb[32];
    std::snprintf(StateMb, sizeof(StateMb), "%.1f",
                  static_cast<double>(S.StateBytes) / 1048576.0);
    std::snprintf(Bps, sizeof(Bps), "%.1f", S.bytesPerState());
    std::snprintf(GraphMb, sizeof(GraphMb), "%.1f",
                  static_cast<double>(S.GraphBytes) / 1048576.0);
    std::snprintf(RssMb, sizeof(RssMb), "%.1f",
                  static_cast<double>(S.PeakRssKb) / 1024.0);
    T.addRow({F.Name, std::to_string(S.States), StateMb, Bps, GraphMb,
              RssMb, benchtable::fmtMs(S.BuildMs)});
    Log.add("capacity", "{\"family\":" + benchtable::jsonStr(F.Name) +
                            ",\"explore\":" + S.toJson() + "}");
    if (S.PeakRssKb > RssLimitKb)
      RssOk = false;
    if (S.States >= Target) {
      Reached = true;
      break;
    }
  }
  T.print();

  if (!Log.write("BENCH_capacity.json"))
    std::printf("\nwarning: could not write BENCH_capacity.json\n");
  else
    std::printf("\nmachine-readable stats written to BENCH_capacity.json\n");
  std::printf("\nresult: %s — %s>=10M distinct states held, peak RSS %s "
              "the 125 GB budget\n",
              Reached && RssOk ? "PASS" : "FAIL", Reached ? "" : "no ",
              RssOk ? "within" : "EXCEEDS");
  return Reached && RssOk ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  const benchtable::BenchFlags Flags = benchtable::parseBenchFlags(argc, argv);
  if (Flags.Capacity)
    return runCapacity();
  const PorMode Por = Flags.Por ? PorMode::On : PorMode::Off;
  std::printf("E2 (Fig. 9): DRF checking — preemptive vs non-preemptive "
              "state spaces%s\n\n",
              Por == PorMode::Off ? " [--no-por]" : "");
  benchtable::JsonLog Log;

  benchtable::Table T({"threads", "work", "pre states", "pre ms", "pre rate",
                       "np states", "np ms", "reduction"});
  bool AllGood = true;
  for (unsigned Threads = 2; Threads <= 3; ++Threads) {
    for (unsigned Work : {1u, 3u, 5u, 8u}) {
      Program P1 = workload::atomicCounter(Threads, Work);
      benchtable::Timer T1;
      ExploreOptions EOpts;
      EOpts.Por = Por;
      Explorer<World> EP(EOpts);
      EP.build(World::load(P1));
      bool PreRace = EP.findRace().has_value();
      double PreMs = T1.ms();

      Program P2 = workload::atomicCounter(Threads, Work);
      benchtable::Timer T2;
      Explorer<NPWorld> EN;
      EN.build(NPWorld::loadAll(P2));
      bool NpRace = EN.findRace().has_value();
      double NpMs = T2.ms();

      AllGood = AllGood && !PreRace && !NpRace;
      double Ratio = EN.numStates()
                         ? static_cast<double>(EP.numStates()) /
                               static_cast<double>(EN.numStates())
                         : 0.0;
      char RatioBuf[32];
      std::snprintf(RatioBuf, sizeof(RatioBuf), "%.1fx", Ratio);
      T.addRow({std::to_string(Threads), std::to_string(Work),
                std::to_string(EP.numStates()), benchtable::fmtMs(PreMs),
                fmtRate(EP.stats().statesPerSec()),
                std::to_string(EN.numStates()), benchtable::fmtMs(NpMs),
                RatioBuf});
      Log.add("e2", "{\"threads\":" + std::to_string(Threads) +
                        ",\"work\":" + std::to_string(Work) +
                        ",\"pre\":" + EP.stats().toJson() +
                        ",\"np\":" + EN.stats().toJson() + "}");
    }
  }
  T.print();

  bool PorOk = benchPorCrossCheck(Log, Flags.Model.value_or(ccc::MemModel::TSO));
  AllGood = AllGood && PorOk;

  bool StaticSound = benchStaticFastPath(Log, Por);
  AllGood = AllGood && StaticSound;

  bool ScalingOk = benchParallelScaling(Log, Por);
  AllGood = AllGood && ScalingOk;

  if (!Log.write("BENCH_drf.json"))
    std::printf("\nwarning: could not write BENCH_drf.json\n");
  else
    std::printf("\nmachine-readable stats written to BENCH_drf.json\n");

  std::printf("\nresult: %s — all programs DRF under both detectors, the "
              "non-preemptive reduction shrinks the explored state space, "
              "partial-order reduction preserves every verdict (>=5x on "
              "locked t=3), the static fast path never certifies a racy "
              "program, and the parallel engine reproduces the serial "
              "results\n",
              AllGood ? "PASS" : "FAIL");
  return AllGood ? 0 : 1;
}
