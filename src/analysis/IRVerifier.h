//===- analysis/IRVerifier.h - Per-IR structural verifiers ------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-verifier-style structural checks for the back-end IRs
/// (RTL / LTL / Linear / Mach / x86): CFG successor well-formedness,
/// label resolution, operator arity, register-class and
/// calling-convention discipline, slot/frame bounds, and global-reference
/// sanity. A malformed module produced by a buggy pass is caught here in
/// linear time, before `SimChecker` wastes a product-state search whose
/// failure diagnostics would be far less direct — the same layering LLVM
/// uses between its Verifier and its execution engines.
///
/// These checks are necessary conditions for the per-pass simulation
/// obligations (Def. 10), not replacements: a module can be structurally
/// well-formed yet semantically wrong, which is what the validation
/// engines (validate/) exist to catch.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_IRVERIFIER_H
#define CASCC_ANALYSIS_IRVERIFIER_H

#include "compiler/Compiler.h"

#include <string>
#include <vector>

namespace ccc {
namespace analysis {

/// Result of verifying one module.
struct VerifyResult {
  std::string Stage;
  std::vector<std::string> Errors;
  unsigned FunctionsChecked = 0;
  unsigned InstrsChecked = 0;

  bool ok() const { return Errors.empty(); }
  std::string toString() const;
};

/// Verifies an RTL module (also used for the post-Tailcall and
/// post-Renumber stages).
VerifyResult verifyRTL(const rtl::Module &M,
                       const std::string &StageName = "RTL");

/// Verifies an LTL module: CFG checks plus location discipline — machine
/// registers must be allocatable (or EAX for pinned call results) and
/// slots in bounds.
VerifyResult verifyLTL(const ltl::Module &M,
                       const std::string &StageName = "LTL");

/// Verifies a Linear module: label resolution plus instruction checks.
VerifyResult verifyLinear(const linear::Module &M,
                          const std::string &StageName = "Linear");

/// Verifies a Mach module: as Linear, with slots bounded by the frame.
VerifyResult verifyMach(const mach::Module &M);

/// Verifies an x86 module: branch/label resolution, entry-point bounds,
/// and callee-arity resolution.
VerifyResult verifyX86(const x86::Module &M);

/// Verifies pipeline stage \p Stage of \p R (0 = Clight ... 12 = x86).
/// Front-end stages (before RTL) have no structural verifier and return
/// ok.
VerifyResult verifyStage(const compiler::CompileResult &R, unsigned Stage);

/// Verifies every stage of the pipeline; one result per stage, in order.
std::vector<VerifyResult> verifyPipeline(const compiler::CompileResult &R);

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_IRVERIFIER_H
