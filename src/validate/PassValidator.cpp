//===- validate/PassValidator.cpp - Per-pass translation validation --------===//

#include "validate/PassValidator.h"

#include "analysis/IRVerifier.h"

#include <chrono>

using namespace ccc;
using namespace ccc::validate;
using compiler::CompileResult;

std::vector<EntrySample>
ccc::validate::defaultSamples(const clight::Module &M) {
  std::vector<EntrySample> Out;
  for (const clight::Function &F : M.Funcs) {
    if (F.Params.empty()) {
      Out.push_back({F.Name, {}});
      continue;
    }
    // Two samples per function: all-zeros and small distinct values.
    std::vector<Value> Zeros, Smalls;
    int32_t V = 2;
    for (const clight::VarDecl &P : F.Params) {
      (void)P;
      Zeros.push_back(Value::makeInt(0));
      Smalls.push_back(Value::makeInt(V));
      V += 3;
    }
    Out.push_back({F.Name, std::move(Zeros)});
    Out.push_back({F.Name, std::move(Smalls)});
  }
  return Out;
}

std::vector<PassResult>
ccc::validate::validatePipeline(const CompileResult &R,
                                const std::vector<EntrySample> &Samples,
                                SimOptions Opts) {
  std::vector<PassResult> Out;
  const auto &Names = compiler::passNames();
  for (unsigned Pass = 0; Pass < Names.size(); ++Pass) {
    PassResult PR;
    PR.PassName = Names[Pass];
    auto Start = std::chrono::steady_clock::now();

    // Structural verification of the pass's output comes first: a
    // malformed module fails fast with a direct diagnostic instead of a
    // product-state search wandering into the weeds.
    analysis::VerifyResult VR = analysis::verifyStage(R, Pass + 1);
    if (!VR.ok()) {
      PR.Holds = false;
      PR.FailReason = "IRVerifier: " + VR.Errors.front();
      auto VEnd = std::chrono::steady_clock::now();
      PR.Millis =
          std::chrono::duration<double, std::milli>(VEnd - Start).count();
      Out.push_back(std::move(PR));
      continue;
    }

    Program Src, Tgt;
    unsigned SrcMod = compiler::addStage(Src, R, Pass, "m");
    unsigned TgtMod = compiler::addStage(Tgt, R, Pass + 1, "m");
    Src.link();
    Tgt.link();

    for (const EntrySample &ES : Samples) {
      SimReport SR =
          simCheck(Src, SrcMod, Tgt, TgtMod, ES.Entry, ES.Args, Opts);
      ++PR.EntriesChecked;
      PR.Obligations += SR.Obligations;
      PR.ProductStates += SR.ProductStates;
      PR.Vacuous += SR.VacuousBranches;
      if (!SR.Holds) {
        PR.Holds = false;
        if (PR.FailReason.empty())
          PR.FailReason = ES.Entry + ": " + SR.FailReason;
      }
    }
    auto End = std::chrono::steady_clock::now();
    PR.Millis =
        std::chrono::duration<double, std::milli>(End - Start).count();
    Out.push_back(std::move(PR));
  }
  return Out;
}
