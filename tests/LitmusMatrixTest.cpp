//===- tests/LitmusMatrixTest.cpp - Litmus golden matrix across models -----===//
//
// The model-separation goldens: for every litmus shape in the registry
// (SB / MP / LB / IRIW), fenced and unfenced, pin which distinguishing
// outcome is reachable under each MemModel, and pin the inclusion
// structure between the models' trace sets:
//
//   - SC traces ⊆ TSO traces ⊆ Relaxed traces (each model only *adds*
//     behaviours — never-buffer / never-defer strategies replay the
//     stronger model exactly);
//   - fully fenced siblings are trace-identical across all three models;
//   - SB's both-zero outcome needs TSO (store-load reordering);
//   - LB's both-one and IRIW's readers-disagree outcomes need Relaxed
//     (load reordering), and are unreachable under TSO — the wedge the
//     tentpole acceptance criterion asks for.
//
//===----------------------------------------------------------------------===//

#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ccc;
using namespace ccc::workload;

namespace {

TraceSet tracesOf(const std::string &Litmus, MemModel Model, bool Fenced,
                  ExploreStats *Stats = nullptr) {
  Program P = litmus(Litmus, Model, Fenced);
  return preemptiveTraces(P, {}, Stats);
}

/// True when some complete trace's event multiset contains all of \p Ev.
bool someTraceContains(const TraceSet &T, std::vector<int64_t> Ev) {
  for (const Trace &Tr : T.traces()) {
    bool All = true;
    for (int64_t E : Ev) {
      if (std::count(Tr.Events.begin(), Tr.Events.end(), E) <
          std::count(Ev.begin(), Ev.end(), E)) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

constexpr MemModel AllModels[] = {MemModel::SC, MemModel::TSO,
                                  MemModel::Relaxed};

} // namespace

// SB: the both-zero outcome requires store-load reordering — reachable
// under TSO and Relaxed, never under SC, never when fenced.
TEST(LitmusMatrix, StoreBuffering) {
  for (MemModel M : AllModels) {
    const bool BothZero = M != MemModel::SC;
    EXPECT_EQ(someTraceContains(tracesOf("SB", M, false), {0, 0}), BothZero)
        << "SB unfenced under " << memModelName(M);
    EXPECT_FALSE(someTraceContains(tracesOf("SB", M, true), {0, 0}))
        << "SB fenced under " << memModelName(M);
  }
}

// MP: publication is preserved by every model here — the reader's spin
// test is a completion-forcing (control) dependency under Relaxed, and
// TSO stores flush in FIFO order. The reader can only ever print 42.
TEST(LitmusMatrix, MessagePassing) {
  for (MemModel M : AllModels) {
    for (bool Fenced : {false, true}) {
      TraceSet T = tracesOf("MP", M, Fenced);
      for (const Trace &Tr : T.traces())
        for (int64_t E : Tr.Events)
          EXPECT_EQ(E, 42) << "MP stale read under " << memModelName(M)
                           << (Fenced ? " fenced" : " unfenced");
    }
  }
}

// LB: the both-one outcome (prints 11 and 21) requires a load satisfied
// after a program-later store — Relaxed only.
TEST(LitmusMatrix, LoadBuffering) {
  for (MemModel M : AllModels) {
    const bool BothOne = M == MemModel::Relaxed;
    EXPECT_EQ(someTraceContains(tracesOf("LB", M, false), {11, 21}), BothOne)
        << "LB unfenced under " << memModelName(M);
    EXPECT_FALSE(someTraceContains(tracesOf("LB", M, true), {11, 21}))
        << "LB fenced under " << memModelName(M);
  }
}

// IRIW: the readers-disagree outcome (r1 prints 12 = saw x without y,
// r2 prints 22 = saw y without x) requires load-load reordering; TSO's
// total store visibility forbids it.
TEST(LitmusMatrix, Iriw) {
  for (MemModel M : AllModels) {
    const bool Disagree = M == MemModel::Relaxed;
    EXPECT_EQ(someTraceContains(tracesOf("IRIW", M, false), {12, 22}),
              Disagree)
        << "IRIW unfenced under " << memModelName(M);
    EXPECT_FALSE(someTraceContains(tracesOf("IRIW", M, true), {12, 22}))
        << "IRIW fenced under " << memModelName(M);
  }
}

// Each weaker model only adds behaviours: SC ⊆ TSO ⊆ Relaxed at the
// trace level (never-buffer / never-defer replays the stronger model),
// and the Relaxed state graph is a superset of the TSO one.
TEST(LitmusMatrix, WeakerModelsAddBehaviours) {
  for (const std::string &Name : litmusNames()) {
    for (bool Fenced : {false, true}) {
      ExploreStats StTso, StRlx;
      TraceSet Sc = tracesOf(Name, MemModel::SC, Fenced);
      TraceSet Tso = tracesOf(Name, MemModel::TSO, Fenced, &StTso);
      TraceSet Rlx = tracesOf(Name, MemModel::Relaxed, Fenced, &StRlx);
      EXPECT_TRUE(Sc.subsetOf(Tso)) << Name << " fenced=" << Fenced;
      EXPECT_TRUE(Tso.subsetOf(Rlx)) << Name << " fenced=" << Fenced;
      EXPECT_GE(StRlx.States, StTso.States) << Name << " fenced=" << Fenced;
    }
  }
}

// Fully fenced siblings are SC-equivalent in every model: all three
// trace sets coincide exactly.
TEST(LitmusMatrix, FencedSiblingsModelIndependent) {
  for (const std::string &Name : litmusNames()) {
    TraceSet Sc = tracesOf(Name, MemModel::SC, true);
    EXPECT_EQ(Sc == tracesOf(Name, MemModel::TSO, true), true) << Name;
    EXPECT_EQ(Sc == tracesOf(Name, MemModel::Relaxed, true), true) << Name;
  }
}

// POR on and off agree on every litmus trace set under every model (the
// independence analysis must stay sound for the Relaxed pending-load
// effects reported via porPoints).
TEST(LitmusMatrix, PorAgreesPerModel) {
  for (const std::string &Name : litmusNames()) {
    for (MemModel M : AllModels) {
      for (bool Fenced : {false, true}) {
        Program P1 = litmus(Name, M, Fenced);
        ExploreOptions Full;
        Full.Por = PorMode::Off;
        Program P2 = litmus(Name, M, Fenced);
        EXPECT_EQ(preemptiveTraces(P1) == preemptiveTraces(P2, Full), true)
            << Name << " " << memModelName(M) << " fenced=" << Fenced;
      }
    }
  }
}
