//===- mem/Mem.cpp - The global memory state ------------------------------===//

#include "mem/Mem.h"

#include "support/Hashing.h"
#include "support/StrUtil.h"

using namespace ccc;

bool Mem::eqOn(const Mem &Other, const AddrSet &Set) const {
  for (Addr A : Set) {
    auto L = load(A);
    auto R = Other.load(A);
    if (L.has_value() != R.has_value())
      return false;
    if (L.has_value() && *L != *R)
      return false;
  }
  return true;
}

std::string Mem::key() const {
  StrBuilder B;
  for (const auto &KV : Data) {
    B << static_cast<uint64_t>(KV.first) << '=' << KV.second.toString()
      << ';';
  }
  return B.take();
}

uint64_t Mem::hashKey() const {
  Hasher64 H;
  for (const auto &KV : Data) {
    const Value &V = KV.second;
    H.u32(KV.first);
    H.u32(static_cast<uint32_t>(V.kind()));
    H.u32(V.isInt() ? static_cast<uint32_t>(V.asInt())
                    : (V.isPtr() ? static_cast<uint32_t>(V.asPtr()) : 0u));
  }
  return H.get();
}

std::string Mem::toString() const {
  StrBuilder B;
  B << "[";
  bool First = true;
  for (const auto &KV : Data) {
    if (!First)
      B << ", ";
    First = false;
    B << static_cast<uint64_t>(KV.first) << " -> " << KV.second.toString();
  }
  B << "]";
  return B.take();
}
