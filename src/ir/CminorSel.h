//===- ir/CminorSel.h - The CminorSel IR ------------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CminorSel: after instruction Selection, expressions are trees of
/// machine-level operators (ir::Oper) and branch conditions are fused
/// comparisons instead of materialized booleans.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_CMINORSEL_H
#define CASCC_IR_CMINORSEL_H

#include "ir/Ops.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccc {
namespace cminorsel {

struct Expr {
  enum class Kind { Temp, Op, Load };

  Kind K = Kind::Temp;
  unsigned Temp = 0;
  ir::Oper O = ir::Oper::Intconst;
  ir::Cmp C = ir::Cmp::Eq;
  int32_t Imm = 0;
  std::string Global; // Addrglobal
  std::vector<std::unique_ptr<Expr>> Args;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A fused branch condition: compare the evaluations of Args (one arg
/// against Imm when OneArg).
struct CondExpr {
  ir::Cmp C = ir::Cmp::Ne;
  bool OneArg = false;
  int32_t Imm = 0;
  std::vector<ExprPtr> Args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
  enum class Kind { Skip, SetTemp, Store, If, While, Call, Return, Print };

  Kind K = Kind::Skip;
  unsigned Dst = 0;
  bool HasDst = false;
  ExprPtr E1, E2;
  CondExpr Cond; // If / While
  Block Body, Else;
  std::string Callee;
  std::vector<ExprPtr> Args;
};

struct Function {
  std::string Name;
  bool RetVoid = true;
  unsigned NumParams = 0;
  unsigned NumTemps = 0;
  unsigned FrameSize = 0;
  Block Body;
};

struct Module {
  std::vector<std::pair<std::string, int32_t>> Globals;
  std::vector<Function> Funcs;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace cminorsel
} // namespace ccc

#endif // CASCC_IR_CMINORSEL_H
