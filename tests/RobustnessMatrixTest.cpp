//===- tests/RobustnessMatrixTest.cpp - Static verdicts across models ------===//
//
// The static counterpart of LitmusMatrixTest: for every litmus shape in
// the registry, pin the robustness core's verdict under the TSO and
// Relaxed reorder tables. The headline separation mirrors the dynamic
// one: IRIW's unfenced readers are certified Robust under TSO (no
// stores to buffer) but flagged NotRobust under Relaxed (the pending
// first load crosses the second), while the fenced siblings are Robust
// under every model.
//
//===----------------------------------------------------------------------===//

#include "analysis/FenceSynth.h"
#include "analysis/Robustness.h"
#include "analysis/TsoRobust.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace ccc;
using namespace ccc::analysis;

namespace {

/// The single-module report of litmus \p Name built under \p Model.
RobustReport reportOf(const std::string &Name, MemModel Model, bool Fenced) {
  Program P = workload::litmus(Name, Model, Fenced);
  ProgramRobustReport R = programRobustness(P);
  EXPECT_EQ(R.Modules.size(), 1u) << Name;
  EXPECT_EQ(R.Modules[0].Model, Model) << Name;
  RobustReport Rep = R.Modules[0].Report;
  EXPECT_EQ(Rep.inconsistency(), "") << Rep.toString();
  return Rep;
}

} // namespace

// Under the TSO table: SB and LB are NotRobust unfenced (a store lingers
// across a later load / an observable event), MP and IRIW are Robust
// (FIFO flushing and thread-exit discharge cover every store), and every
// fenced sibling is Robust.
TEST(RobustnessMatrix, TsoVerdicts) {
  EXPECT_EQ(reportOf("SB", MemModel::TSO, false).Verdict,
            RobustVerdict::NotRobust);
  EXPECT_EQ(reportOf("LB", MemModel::TSO, false).Verdict,
            RobustVerdict::NotRobust);
  EXPECT_EQ(reportOf("MP", MemModel::TSO, false).Verdict,
            RobustVerdict::Robust);
  EXPECT_EQ(reportOf("IRIW", MemModel::TSO, false).Verdict,
            RobustVerdict::Robust);
  for (const std::string &Name : workload::litmusNames())
    EXPECT_EQ(reportOf(Name, MemModel::TSO, true).Verdict,
              RobustVerdict::Robust)
        << Name;
}

// Under the Relaxed table the load axis joins in: IRIW flips to
// NotRobust (load-load reordering), LB gains a deferred-load witness on
// top of its store escape, MP stays Robust (the spin test and the print
// are completion-forcing dependencies), and every fenced sibling stays
// Robust.
TEST(RobustnessMatrix, RelaxedVerdicts) {
  EXPECT_EQ(reportOf("SB", MemModel::Relaxed, false).Verdict,
            RobustVerdict::NotRobust);
  EXPECT_EQ(reportOf("LB", MemModel::Relaxed, false).Verdict,
            RobustVerdict::NotRobust);
  EXPECT_EQ(reportOf("MP", MemModel::Relaxed, false).Verdict,
            RobustVerdict::Robust);
  EXPECT_EQ(reportOf("IRIW", MemModel::Relaxed, false).Verdict,
            RobustVerdict::NotRobust);
  for (const std::string &Name : workload::litmusNames())
    EXPECT_EQ(reportOf(Name, MemModel::Relaxed, true).Verdict,
              RobustVerdict::Robust)
        << Name;
}

// The tentpole separation, statically: the same unfenced IRIW module is
// Robust under TSO and NotRobust under Relaxed, the Relaxed witness is a
// load-axis one pairing the readers' two loads, and the fenced sibling
// is certified Robust under Relaxed.
TEST(RobustnessMatrix, IriwSeparatesTsoFromRelaxed) {
  EXPECT_TRUE(reportOf("IRIW", MemModel::TSO, false).robust());

  RobustReport Rlx = reportOf("IRIW", MemModel::Relaxed, false);
  EXPECT_EQ(Rlx.Verdict, RobustVerdict::NotRobust) << Rlx.toString();
  bool LoadPair = false;
  for (const TriangularWitness &W : Rlx.Witnesses)
    if (W.DeferredLoad && !W.Store.Write && W.Load && !W.Load->Write &&
        W.Store.Global != W.Load->Global && !W.Tentative)
      LoadPair = true;
  EXPECT_TRUE(LoadPair) << Rlx.toString();

  EXPECT_TRUE(reportOf("IRIW", MemModel::Relaxed, true).robust());
}

// MP under Relaxed is certified through *dependency* certificates: the
// spin test consumes the flag load and the print consumes the data load,
// so both deferable loads are completion-forced without any fence.
TEST(RobustnessMatrix, DependencyCertificatesCoverMp) {
  RobustReport R = reportOf("MP", MemModel::Relaxed, false);
  EXPECT_TRUE(R.robust()) << R.toString();
  EXPECT_EQ(R.DeferableLoads, 2u) << R.toString();
  EXPECT_EQ(R.CertifiedLoads + R.DivergentLoads, R.DeferableLoads);
  EXPECT_EQ(R.WitnessedLoads, 0u);
  bool CmpDep = false, PrintDep = false;
  for (const FenceCert &C : R.Certificates) {
    if (!C.DeferredLoad || !C.Dependency)
      continue;
    CmpDep = CmpDep || C.DrainText.find("cmpl") != std::string::npos;
    PrintDep = PrintDep || C.DrainText.find("printl") != std::string::npos;
  }
  EXPECT_TRUE(CmpDep) << R.toString();
  EXPECT_TRUE(PrintDep) << R.toString();
}

// Load accounting partitions the deferable sites exactly on every
// Robust report, and the TSO table never counts a deferable load.
TEST(RobustnessMatrix, LoadAccountingPartitions) {
  for (const std::string &Name : workload::litmusNames()) {
    for (bool Fenced : {false, true}) {
      RobustReport Tso = reportOf(Name, MemModel::TSO, Fenced);
      EXPECT_EQ(Tso.DeferableLoads, 0u) << Name;
      EXPECT_EQ(Tso.CertifiedLoads + Tso.WitnessedLoads + Tso.DivergentLoads,
                0u)
          << Name;
      RobustReport Rlx = reportOf(Name, MemModel::Relaxed, Fenced);
      EXPECT_GT(Rlx.DeferableLoads, 0u) << Name;
      if (Rlx.robust()) {
        EXPECT_EQ(Rlx.CertifiedLoads + Rlx.DivergentLoads,
                  Rlx.DeferableLoads)
            << Name << " fenced=" << Fenced << "\n"
            << Rlx.toString();
        EXPECT_EQ(Rlx.WitnessedLoads, 0u) << Name;
      }
    }
  }
}

// An SC-declared module is trivially SC-equivalent: the SC reorder table
// permits nothing, so robustness() short-circuits to Robust with a note
// and no per-site accounting.
TEST(RobustnessMatrix, ScTableIsTrivial) {
  Program P = workload::litmus("SB", MemModel::SC, false);
  const auto *L =
      dynamic_cast<const x86::X86Lang *>(P.modules()[0].Lang.get());
  ASSERT_NE(L, nullptr);
  RobustReport R = robustness(L->module(), nullptr, MemModel::SC);
  EXPECT_TRUE(R.robust());
  EXPECT_EQ(R.Model, MemModel::SC);
  EXPECT_EQ(R.SharedStores, 0u);
  EXPECT_EQ(R.DeferableLoads, 0u);
  EXPECT_EQ(R.inconsistency(), "");
  EXPECT_FALSE(R.Notes.empty());
}

// FenceSynth against the Relaxed table: every unfenced NotRobust litmus
// (SB, LB, IRIW) is repaired to a certified-Robust module with a
// verified-minimal fence set no larger than the hand-fenced sibling's.
TEST(RobustnessMatrix, FenceSynthRepairsRelaxedLitmus) {
  for (const std::string Name : {"SB", "LB", "IRIW"}) {
    Program P = workload::litmus(Name, MemModel::Relaxed, false);
    auto Ctxs = robustContexts(P);
    const ModuleDecl &D = P.modules()[0];
    const auto *L = dynamic_cast<const x86::X86Lang *>(D.Lang.get());
    ASSERT_NE(L, nullptr) << Name;
    auto It = Ctxs.find(D.Name);
    const RobustContext *Ctx = It == Ctxs.end() ? nullptr : &It->second;

    FenceSynthResult S =
        synthesizeFences(L->module(), Ctx, MemModel::Relaxed);
    EXPECT_EQ(S.Outcome, RepairOutcome::Repaired) << Name << "\n"
                                                  << S.toString();
    EXPECT_TRUE(S.After.robust()) << Name << "\n" << S.After.toString();
    EXPECT_EQ(S.After.Model, MemModel::Relaxed) << Name;
    std::string Why;
    EXPECT_TRUE(verifyFenceMinimality(L->module(), Ctx, S, &Why,
                                      MemModel::Relaxed))
        << Name << ": " << Why;

    // Never more fences than the hand-written sibling spends.
    Program Hand = workload::litmus(Name, MemModel::Relaxed, true);
    const auto *HL =
        dynamic_cast<const x86::X86Lang *>(Hand.modules()[0].Lang.get());
    ASSERT_NE(HL, nullptr) << Name;
    EXPECT_LE(S.Fences.size(), mfenceCount(HL->module())) << Name;
  }
}

// The end-to-end repair pipeline on a Relaxed program: repair, re-certify,
// switch to SC, and check dynamically that the repaired program's trace
// set collapses to the SC reference — the weak outcomes are gone.
TEST(RobustnessMatrix, RepairPipelineRestoresScTraces) {
  for (const std::string Name : {"SB", "LB", "IRIW"}) {
    Program P = workload::litmus(Name, MemModel::Relaxed, false);
    ProgramRepairReport Rep;
    unsigned Switched = repairAndApplyScFastPath(P, &Rep);
    EXPECT_EQ(Rep.ModulesRepaired, 1u) << Name << "\n" << Rep.toString();
    EXPECT_GE(Switched, 1u) << Name;
    EXPECT_EQ(P.modules()[0].Lang->memModel(), MemModel::SC) << Name;

    Program Ref = workload::litmus(Name, MemModel::SC, false);
    EXPECT_EQ(preemptiveTraces(P) == preemptiveTraces(Ref), true) << Name;
  }
}

// The deprecated TSO spellings in analysis/TsoRobust.h forward to the
// generic core: tsoRobustness is robustness under the TSO table.
TEST(RobustnessMatrix, DeprecatedTsoAliasesForward) {
  Program P = workload::litmus("SB", MemModel::TSO, false);
  const auto *L =
      dynamic_cast<const x86::X86Lang *>(P.modules()[0].Lang.get());
  ASSERT_NE(L, nullptr);
  TsoRobustReport Old = tsoRobustness(L->module());
  RobustReport New = robustness(L->module(), nullptr, MemModel::TSO);
  EXPECT_EQ(Old.Verdict, New.Verdict);
  EXPECT_EQ(Old.toString(), New.toString());
  EXPECT_EQ(std::string(tsoVerdictName(TsoVerdict::NotRobust)),
            std::string(robustVerdictName(RobustVerdict::NotRobust)));
}
