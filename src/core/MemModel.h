//===- core/MemModel.h - Per-module memory models ----------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program-level memory-model axis. Every module in a linked Program
/// declares the memory model its local semantics runs under; the linker
/// and the Explorer are model-agnostic (a module's model only shows up in
/// which LocalSteps its language offers), so modules in *different* models
/// compose in one program — the paper's separate-compilation story
/// extended along the axis De Vilhena ("Extending the C/C++ Memory Model
/// with Inline Assembly") names.
///
///  - SC: sequentially consistent; every access hits shared memory in
///    program order.
///  - TSO (Sewell et al., x86-TSO): per-thread FIFO store buffer; loads
///    snoop the own buffer; mfence/locked instructions drain.
///  - Relaxed: IMM-flavoured (Podkopaev-Lahav-Vafeiadis): the TSO store
///    buffer *plus* bounded load reordering — plain loads may be deferred
///    past later instructions and complete out of program order, so
///    load-load and store-load reorderings are both observable (LB and
///    IRIW shaped outcomes). mfence and locked instructions are full
///    barriers (drain stores *and* pending loads); the release-write /
///    acquire-read idiom is a locked write / a load immediately consumed
///    by a dependent instruction (completion-forcing), matching the IMM
///    compilation scheme for x86.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_MEMMODEL_H
#define CASCC_CORE_MEMMODEL_H

#include <optional>
#include <string>

namespace ccc {

enum class MemModel { SC, TSO, Relaxed };

inline const char *memModelName(MemModel M) {
  switch (M) {
  case MemModel::SC:
    return "sc";
  case MemModel::TSO:
    return "tso";
  case MemModel::Relaxed:
    return "relaxed";
  }
  return "?";
}

/// Parses "sc" / "tso" / "relaxed" (as used by `--model=`).
inline std::optional<MemModel> parseMemModel(const std::string &S) {
  if (S == "sc")
    return MemModel::SC;
  if (S == "tso")
    return MemModel::TSO;
  if (S == "relaxed")
    return MemModel::Relaxed;
  return std::nullopt;
}

} // namespace ccc

#endif // CASCC_CORE_MEMMODEL_H
