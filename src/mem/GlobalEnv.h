//===- mem/GlobalEnv.h - Module global environments -------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global environments (paper: ge in GEnv, Fig. 4): the statically
/// allocated global variables of a module, a finite partial map from a
/// global variable's address to its initial value. Globals additionally
/// carry an owner tag used to model the paper's object-data confinement
/// (Sec. 7.1): object data has permission None for clients and vice versa.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_GLOBALENV_H
#define CASCC_MEM_GLOBALENV_H

#include "mem/Addr.h"
#include "mem/Mem.h"
#include "mem/Value.h"

#include <cassert>
#include <optional>
#include <string>
#include <vector>

namespace ccc {

/// Ownership class of a global, modeling CompCert memory permissions as
/// used in Sec. 7.1 to separate client data from object data.
enum class DataOwner { Client, Object };

/// One global variable declaration.
struct GlobalVar {
  std::string Name;
  Value Init;
  DataOwner Owner = DataOwner::Client;
  /// Assigned by Program::link(); 0 until then.
  Addr Address = 0;
};

/// A module's global environment.
class GlobalEnv {
public:
  GlobalEnv() = default;

  /// Declares a global. Must happen before linking.
  void declare(const std::string &Name, Value Init,
               DataOwner Owner = DataOwner::Client) {
    Vars.push_back({Name, Init, Owner, 0});
  }

  /// Returns the address of \p Name, or nullopt if not declared here.
  std::optional<Addr> lookup(const std::string &Name) const {
    for (const GlobalVar &G : Vars)
      if (G.Name == Name)
        return G.Address;
    return std::nullopt;
  }

  std::vector<GlobalVar> &vars() { return Vars; }
  const std::vector<GlobalVar> &vars() const { return Vars; }

  /// The set of addresses of this environment's globals.
  AddrSet addrs() const {
    AddrSet Out;
    for (const GlobalVar &G : Vars)
      Out.insert(G.Address);
    return Out;
  }

  /// Installs this environment's globals into \p M (part of GE(Pi) in the
  /// Load rule, Fig. 7).
  void installInto(Mem &M) const {
    for (const GlobalVar &G : Vars) {
      bool Fresh = M.alloc(G.Address, G.Init);
      assert(Fresh && "global addresses are linker-assigned and unique");
      (void)Fresh;
    }
  }

private:
  std::vector<GlobalVar> Vars;
};

} // namespace ccc

#endif // CASCC_MEM_GLOBALENV_H
