//===- core/PorOracle.h - Static independence oracle for POR ----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract oracle the exploration engine consults for partial-order
/// reduction: conservative static effect summaries of a thread's next
/// step and of everything the thread may still do. The concrete
/// implementation (src/analysis/Independence.cpp) compiles per-module
/// may-access summaries over Clight/CImp/x86 into these queries; the
/// engine only relies on the over-approximation contract:
///
///  - pendingOf(T) covers the footprint of every local step T can take
///    next (including pending TSO flushes);
///  - futureOf(T) covers every footprint T may ever produce from here,
///    including through calls into other modules and through threads it
///    may spawn.
///
/// Unknown summaries conflict with everything, so an unanalyzable thread
/// soundly disables reduction around it.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_PORORACLE_H
#define CASCC_CORE_PORORACLE_H

#include "core/Program.h"
#include "core/WorldCommon.h"

#include <memory>

namespace ccc {

/// Partial-order reduction toggle (ExploreOptions::Por).
enum class PorMode { Off, On };

/// The static independence oracle consulted during exploration.
class PorOracle {
public:
  virtual ~PorOracle();

  /// Over-approximation of thread \p T's next local step's effect.
  virtual EffectSummary pendingOf(const ThreadState &T) const = 0;

  /// Over-approximation of everything thread \p T may still access, over
  /// all frames of its stack, transitively through calls and spawns.
  virtual EffectSummary futureOf(const ThreadState &T) const = 0;
};

/// True when addresses of \p S fall inside thread \p T's free-list region
/// (where \p T's own-frame accesses live).
inline bool touchesRegionOf(const AddrSet &S, ThreadId T) {
  const Addr Lo = Program::ThreadRegionBase + T * Program::ThreadRegionSize;
  const Addr Hi = Lo + Program::ThreadRegionSize;
  for (Addr A : S)
    if (A >= Lo && A < Hi)
      return true;
  return false;
}

/// Conservative conflict test between the summarized effects of two
/// *distinct* threads \p TA and \p TB. Two effects conflict when one may
/// write a cell the other may touch; own-frame accesses of distinct
/// threads live in disjoint regions and never conflict with each other,
/// but a concrete address inside the peer's region does conflict with the
/// peer's own-frame accesses. A provably access-free effect conflicts
/// with nothing, even Unknown.
inline bool summariesConflict(const EffectSummary &A, ThreadId TA,
                              const EffectSummary &B, ThreadId TB) {
  if (A.touchesNothing() || B.touchesNothing())
    return false;
  if (A.Unknown || B.Unknown)
    return true;
  // Concrete write/touch overlap.
  if (A.W.intersects(B.R) || A.W.intersects(B.W) || B.W.intersects(A.R))
    return true;
  // A's own-frame accesses vs B's concrete addresses in A's region
  // (and vice versa). A write on either side makes the pair conflict.
  if (A.OwnW && (touchesRegionOf(B.R, TA) || touchesRegionOf(B.W, TA)))
    return true;
  if (A.OwnR && touchesRegionOf(B.W, TA))
    return true;
  if (B.OwnW && (touchesRegionOf(A.R, TB) || touchesRegionOf(A.W, TB)))
    return true;
  if (B.OwnR && touchesRegionOf(A.W, TB))
    return true;
  return false;
}

/// Engine-side trait: which world types support POR, and how to build the
/// oracle for one. The primary template disables POR (NPWorld, the test
/// harness worlds); World opts in via the specialization in World.h.
template <typename WorldT> struct PorTraits {
  static constexpr bool Enabled = false;
  static std::shared_ptr<const PorOracle> make(const WorldT &) {
    return nullptr;
  }
};

} // namespace ccc

#endif // CASCC_CORE_PORORACLE_H
