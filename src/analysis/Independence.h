//===- analysis/Independence.h - Static independence certifier --*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-module static may-access analysis compiled into a conservative
/// independence relation between program points, used to drive the
/// ample/sleep-set partial-order reduction of the exploration engine
/// (core/Explorer.h). For every static program point of every module —
/// a CImp or Clight statement, an x86 instruction slot — the analysis
/// computes two effect summaries:
///
///  - the *instruction* summary: the cells one execution of the point may
///    read or write (for a CImp atomic block: the whole block, since the
///    global semantics runs it without preemption);
///  - the *closure* summary: everything executing the point to completion
///    may touch, through nested statements, cross-module calls (resolved
///    exactly as Program::resolveEntry links them) and spawned threads.
///
/// Accesses confined to the executing thread's free-list region (Clight
/// locals, x86 frame slots addressed at statically known offsets) are
/// summarized as own-frame flags rather than addresses: distinct threads'
/// regions are disjoint by construction, so these never conflict across
/// threads. Anything unresolvable — a store through an unknown pointer,
/// a call into an intermediate-representation module — degrades the
/// summary to Unknown, the top element that conflicts with everything.
///
/// The derived three-valued relation mayConflict(modA, pA, modB, pB)
/// answers whether two points, executed by *different* threads, could
/// ever interfere: Independent means the two steps commute in every
/// reachable state (their footprints are provably disjoint), MayConflict
/// means a concrete overlap was found, Unknown means the analysis lost
/// precision and the pair must be treated as conflicting. Soundness is
/// the over-approximation contract of core/PorOracle.h: the dynamic
/// footprint of every step a point can take is contained in its static
/// summary, so statically Independent steps have disjoint dynamic
/// footprints and commute (checked end-to-end by IndependenceFuzzTest).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_ANALYSIS_INDEPENDENCE_H
#define CASCC_ANALYSIS_INDEPENDENCE_H

#include "core/PorOracle.h"
#include "core/Program.h"

#include <map>
#include <memory>
#include <vector>

namespace ccc {
namespace analysis {

/// Three-valued verdict of the static conflict relation.
enum class IndepVerdict {
  Independent, ///< The points provably commute (disjoint footprints).
  MayConflict, ///< A concrete may-overlap between the footprints.
  Unknown,     ///< Analysis lost precision; treated as conflicting.
};

const char *toString(IndepVerdict V);

/// The compiled per-program independence tables.
class Independence {
public:
  /// Analyzes every module of the linked program \p P.
  static std::shared_ptr<const Independence> build(const Program &P);

  /// True when module \p ModIdx is in an analyzable language (CImp,
  /// Clight, x86). Points of unanalyzable modules summarize to Unknown.
  bool analyzable(unsigned ModIdx) const;

  /// The instruction summary of point \p Pt of module \p ModIdx
  /// (EffectSummary::top() for an unknown point).
  EffectSummary instrSummary(unsigned ModIdx, const PorPoint &Pt) const;

  /// The closure summary of point \p Pt of module \p ModIdx.
  EffectSummary closureSummary(unsigned ModIdx, const PorPoint &Pt) const;

  /// The static conflict relation between two points run by different
  /// threads (instruction summaries; Unknown when either side is).
  IndepVerdict mayConflict(unsigned ModA, const PorPoint &PA, unsigned ModB,
                           const PorPoint &PB) const;

  /// Over-approximation of thread \p T's next local step's effect:
  /// instruction summary of the top frame's most imminent point united
  /// with every frame's unattributed extras (TSO store-buffer flushes,
  /// frame allocation, call-result stores).
  EffectSummary pendingOf(const Program &P, const ThreadState &T) const;

  /// Over-approximation of everything thread \p T may still access:
  /// union of the closure summaries of every outstanding point of every
  /// frame, plus the per-frame extras.
  EffectSummary futureOf(const Program &P, const ThreadState &T) const;

private:
  struct ModuleTable {
    bool Analyzable = false;
    std::map<const void *, EffectSummary> Instr;
    std::map<const void *, EffectSummary> Closure;
  };

  EffectSummary lookup(bool Closure, unsigned ModIdx, const void *Token) const;

  std::vector<ModuleTable> Mods;
};

} // namespace analysis
} // namespace ccc

#endif // CASCC_ANALYSIS_INDEPENDENCE_H
