//===- compiler/RTLgen.cpp - CminorSel to RTL ------------------------------===//

#include "compiler/Passes.h"

#include <cassert>

using namespace ccc;
using namespace ccc::compiler;
using ir::Oper;

namespace {

/// Builds one function's CFG. Instructions are appended to a vector whose
/// indices become node ids; successors default to "next instruction" and
/// branch targets are patched once known.
class FnBuilder {
public:
  explicit FnBuilder(const cminorsel::Function &F) : Src(F) {
    Out.Name = F.Name;
    Out.RetVoid = F.RetVoid;
    Out.NumParams = F.NumParams;
    NextReg = F.NumTemps; // temps occupy pseudo-registers 0..NumTemps-1
    for (unsigned I = 0; I < F.NumParams; ++I)
      Out.ParamHomes.push_back(I);
  }

  rtl::Function build() {
    genBlock(Src.Body);
    // Falling off the end: return (void convention 0 handled by Return
    // without argument).
    rtl::Instr Ret;
    Ret.K = rtl::Instr::Kind::Return;
    Ret.HasArg = false;
    append(std::move(Ret));

    Out.Entry = 0;
    Out.NumRegs = NextReg;
    for (unsigned I = 0; I < Code.size(); ++I)
      Out.Graph[I] = std::move(Code[I]);
    return std::move(Out);
  }

private:
  unsigned append(rtl::Instr I) {
    unsigned Node = static_cast<unsigned>(Code.size());
    if (I.K != rtl::Instr::Kind::Return &&
        I.K != rtl::Instr::Kind::Tailcall && I.K != rtl::Instr::Kind::Cond)
      I.S1 = Node + 1;
    Code.push_back(std::move(I));
    return Node;
  }

  unsigned fresh() { return NextReg++; }

  /// Emits code evaluating \p E; returns the holding register.
  unsigned genExpr(const cminorsel::Expr &E) {
    switch (E.K) {
    case cminorsel::Expr::Kind::Temp:
      return E.Temp;
    case cminorsel::Expr::Kind::Load: {
      rtl::Instr I;
      I.K = rtl::Instr::Kind::Load;
      I.AM = addrModeOf(*E.Args[0]);
      I.Dst = fresh();
      I.HasDst = true;
      unsigned Dst = I.Dst;
      append(std::move(I));
      return Dst;
    }
    case cminorsel::Expr::Kind::Op: {
      rtl::Instr I;
      I.K = rtl::Instr::Kind::Op;
      I.O = E.O;
      I.C = E.C;
      I.Imm = E.Imm;
      I.Global = E.Global;
      for (const auto &A : E.Args)
        I.Args.push_back(genExpr(*A));
      I.Dst = fresh();
      I.HasDst = true;
      unsigned Dst = I.Dst;
      append(std::move(I));
      return Dst;
    }
    }
    assert(false && "bad expression kind");
    return 0;
  }

  /// Addressing mode of a load/store address: folds Addrglobal, otherwise
  /// evaluates to a base register.
  rtl::AddrMode<rtl::Reg> addrModeOf(const cminorsel::Expr &E) {
    if (E.K == cminorsel::Expr::Kind::Op && E.O == Oper::Addrglobal)
      return rtl::AddrMode<rtl::Reg>::global(E.Global);
    return rtl::AddrMode<rtl::Reg>::base(genExpr(E));
  }

  /// Emits a conditional branch on \p C; the true/false successors are
  /// patched by the caller through the returned node id.
  unsigned genCond(const cminorsel::CondExpr &C) {
    rtl::Instr I;
    I.K = rtl::Instr::Kind::Cond;
    I.C = C.C;
    I.CondOneArg = C.OneArg;
    I.Imm = C.Imm;
    I.Args.push_back(genExpr(*C.Args[0]));
    if (!C.OneArg)
      I.Args.push_back(genExpr(*C.Args[1]));
    return append(std::move(I));
  }

  unsigned genNop() {
    rtl::Instr I;
    I.K = rtl::Instr::Kind::Nop;
    return append(std::move(I));
  }

  void genBlock(const cminorsel::Block &B) {
    for (const auto &S : B)
      genStmt(*S);
  }

  void genStmt(const cminorsel::Stmt &St) {
    using SK = cminorsel::Stmt::Kind;
    switch (St.K) {
    case SK::Skip: {
      genNop();
      break;
    }
    case SK::SetTemp: {
      unsigned R = genExpr(*St.E1);
      rtl::Instr I;
      I.K = rtl::Instr::Kind::Op;
      I.O = Oper::Move;
      I.Args.push_back(R);
      I.Dst = St.Dst;
      I.HasDst = true;
      append(std::move(I));
      break;
    }
    case SK::Store: {
      auto AM = addrModeOf(*St.E1);
      unsigned V = genExpr(*St.E2);
      rtl::Instr I;
      I.K = rtl::Instr::Kind::Store;
      I.AM = AM;
      I.Args.push_back(V);
      append(std::move(I));
      break;
    }
    case SK::If: {
      unsigned CondNode = genCond(St.Cond);
      Code[CondNode].S1 = static_cast<unsigned>(Code.size());
      genBlock(St.Body);
      unsigned GotoJoin = genNop(); // then-branch jump over else
      Code[CondNode].S2 = static_cast<unsigned>(Code.size());
      genBlock(St.Else);
      unsigned Join = genNop();
      Code[GotoJoin].S1 = Join;
      break;
    }
    case SK::While: {
      unsigned LoopHead = static_cast<unsigned>(Code.size());
      unsigned CondNode = genCond(St.Cond);
      Code[CondNode].S1 = static_cast<unsigned>(Code.size());
      genBlock(St.Body);
      unsigned Back = genNop();
      Code[Back].S1 = LoopHead;
      Code[CondNode].S2 = static_cast<unsigned>(Code.size());
      break;
    }
    case SK::Call: {
      rtl::Instr I;
      I.K = rtl::Instr::Kind::Call;
      I.Callee = St.Callee;
      for (const auto &A : St.Args)
        I.Args.push_back(genExpr(*A));
      I.HasDst = St.HasDst;
      I.Dst = St.Dst;
      append(std::move(I));
      break;
    }
    case SK::Return: {
      rtl::Instr I;
      I.K = rtl::Instr::Kind::Return;
      if (St.E1) {
        I.HasArg = true;
        I.Args.push_back(genExpr(*St.E1));
      }
      append(std::move(I));
      break;
    }
    case SK::Print: {
      rtl::Instr I;
      I.K = rtl::Instr::Kind::Print;
      I.Args.push_back(genExpr(*St.E1));
      append(std::move(I));
      break;
    }
    }
  }

  const cminorsel::Function &Src;
  rtl::Function Out;
  std::vector<rtl::Instr> Code;
  unsigned NextReg = 0;
};

} // namespace

std::shared_ptr<rtl::Module>
ccc::compiler::rtlgen(const cminorsel::Module &M) {
  auto Out = std::make_shared<rtl::Module>();
  Out->Globals = M.Globals;
  for (const cminorsel::Function &F : M.Funcs) {
    FnBuilder B(F);
    Out->Funcs.push_back(B.build());
  }
  return Out;
}
