//===- workload/Workloads.h - Benchmark workload generators -----*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program-family generators shared by the benchmark harness and the
/// property-style tests: the Fig. 10 counter clients, lock-synchronized
/// DRF families with tunable critical sections, racy controls, and the
/// classic store-buffering / message-passing litmus tests.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_WORKLOAD_WORKLOADS_H
#define CASCC_WORKLOAD_WORKLOADS_H

#include "core/Program.h"
#include "x86/X86Lang.h"

#include <string>
#include <vector>

namespace ccc {
namespace workload {

/// The Fig. 10(c) client in Clight source form (print after unlock).
std::string fig10cClientSource();

/// A CImp client family: each thread runs \p Increments lock-protected
/// increments of a shared counter with \p CsExtra extra statements inside
/// the critical section, printing observed values.
std::string cimpLockClientSource(unsigned Increments, unsigned CsExtra);

/// A CImp program with \p Threads threads of the lock-client family,
/// linked against gamma_lock. DRF by construction.
Program lockedCounter(unsigned Threads, unsigned Increments,
                      unsigned CsExtra);

/// A racy control: same shape but the lock calls are removed.
Program racyCounter(unsigned Threads);

/// A DRF program using atomic blocks directly (no lock module):
/// \p Threads threads, \p Work private statements before one atomic
/// increment.
Program atomicCounter(unsigned Threads, unsigned Work);

/// The Fig. 10(c) client against gamma_lock, in Clight.
Program clightLockedCounter(unsigned Threads);

/// The hand-written assembly counter client against pi_lock.
Program asmCounterWithPiLock(x86::MemModel Model, unsigned Threads);

/// The fully fenced variant: the client fences its counter store before
/// calling unlock, and the lock is the fenced pi_lock. Every module is
/// certified Robust by the static TSO robustness pass, so the SC fast
/// path applies to the whole program.
Program asmCounterWithPiLockFenced(x86::MemModel Model, unsigned Threads);

/// The fenced counter client against the recursive pi_lock variant
/// (sync::piLockRecursiveSource): the lock spins by recursive retry and
/// the release drains through a recursive same-module flush helper, so
/// certifying the lock module exercises the robustness pass's summary
/// fixpoint over recursive call groups.
Program asmCounterWithRecLock(x86::MemModel Model, unsigned Threads);

/// An iterated store-buffering ping-pong: two threads, each round stores
/// its own flag, fences, then loads (and prints) the peer's flag,
/// \p Rounds times. Robust (every store is immediately fenced) but racy,
/// so the dynamic explorer must run — the workload that measures the SC
/// fast path's state-space reduction.
Program fencedPingPong(x86::MemModel Model, unsigned Rounds);

/// fencedPingPong without the per-round mfence: each round's flag store
/// stays buffered across the peer-flag load — the textbook triangular
/// race, NotRobust with one witness per thread entry. The primary repair
/// target for fence synthesis (hand reference: fencedPingPong's two
/// fences, one per thread).
Program unfencedPingPong(x86::MemModel Model, unsigned Rounds);

/// asmCounterWithRecLock with every hand fence removed: the client's
/// counter store is pending across `call unlock`, and the recursive
/// lock's release store escapes through the unfenced flush helper
/// (sync::piLockRecursiveUnfencedSource). Both modules are NotRobust, and
/// repairing the lock exercises synthesis through the recursive-summary
/// fixpoint. Hand reference: asmCounterWithRecLock's one client fence
/// plus the recursive lock's one rflush fence.
Program asmCounterWithRecLockUnfenced(x86::MemModel Model,
                                      unsigned Threads);

/// The table-driven litmus registry. Every classic litmus shape lives in
/// one table (name, plain source, fully fenced sibling, thread entries)
/// instead of a hand-rolled generator per bench/test:
///
///  - "SB"  : store buffering — both-zero outcome needs store-load
///            reordering (reachable under TSO and Relaxed, not SC).
///  - "MP"  : message passing — data-then-flag publication; preserved by
///            every model here (TSO stores are FIFO; the Relaxed reader's
///            flag test is a completion-forcing dependency).
///  - "LB"  : load buffering — the both-one outcome needs a load
///            reordered after a later store (reachable under Relaxed
///            only).
///  - "IRIW": independent reads of independent writes — the readers-
///            disagree outcome needs load-load reordering (reachable
///            under Relaxed only; TSO store visibility is total).
///
/// The fenced sibling of each shape is fully fenced (every reorderable
/// pair split by mfence), so it is Robust — and SC-equivalent — under
/// every model.
std::vector<std::string> litmusNames();

/// Builds litmus \p Name (see litmusNames) under \p Model; asserts on an
/// unknown name.
Program litmus(const std::string &Name, x86::MemModel Model, bool Fenced);

/// The heterogeneous-model linked program: one SC Clight observer, one
/// x86-TSO module running the SB pair (prints 100+r / 200+r), and one
/// x86-Relaxed module running the LB pair (prints 10+r / 20+r), all in a
/// single Program — five threads, three memory models, one linker. The
/// unfenced build exhibits *both* weak wedges at once (SB's both-zero
/// through the TSO store buffer, LB's both-one through the Relaxed
/// pending loads); the fenced build is Robust — and SC-equivalent —
/// module by module.
Program mixedModelProgram(bool Fenced);

/// The store-buffering litmus test (both-zero allowed under TSO/Relaxed
/// only). Equivalent to litmus("SB", Model, Fenced).
Program sbLitmus(x86::MemModel Model, bool Fenced);

/// The message-passing litmus test: t1 writes data then flag; t2 spins on
/// the flag then reads data (TSO preserves this — stores are FIFO).
/// Equivalent to litmus("MP", Model, false).
Program mpLitmus(x86::MemModel Model);

/// MP variant where the publisher re-reads its own flag after publishing
/// (store data; store flag; load flag; mfence; print): the load races
/// with neither pending store — the flag store forwards from the buffer,
/// and the data store has the flag store pending *behind* it, so by FIFO
/// order the pair is SC-explainable. Certifiable only by the
/// store-order-aware criterion; the per-location triangular check flags
/// it. The mfence before the print is required: an observable event with
/// the stores still buffered would genuinely distinguish TSO from SC
/// (divergence-sensitively).
Program mpPublishReadback(x86::MemModel Model);

/// A same-module lock-then-publish idiom: t1 stores data, then calls a
/// same-module `pub` entry that stores the flag and fences. The data
/// store's certificate lives *inside the callee* — certifiable only with
/// same-module call summaries (a boundary-escape treatment of the call
/// flags it).
Program lockThenPublish(x86::MemModel Model);

/// A pointer-chain client: t1 publishes `&x` through the global `p` and
/// fences; t2 spins on `p`, stores through the loaded pointer, fences,
/// then reads another cell. Certifiable only with the global points-to
/// (standalone analysis cannot resolve the store target and returns
/// Unknown).
Program pointerChainClient(x86::MemModel Model);

} // namespace workload
} // namespace ccc

#endif // CASCC_WORKLOAD_WORKLOADS_H
