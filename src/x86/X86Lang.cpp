//===- x86/X86Lang.cpp - x86-SC, x86-TSO and x86-Relaxed machines ----------===//

#include "x86/X86Lang.h"

#include "support/StrUtil.h"
#include "x86/X86Parser.h"

#include <array>
#include <cassert>

using namespace ccc;
using namespace ccc::x86;

namespace {

/// The x86 core: program counter, register file, flags, frame state, the
/// store buffer (TSO and Relaxed) and the pending-load queue (Relaxed).
class X86Core : public Core {
public:
  unsigned PC = 0;
  std::array<Value, NumRegs> Regs;
  /// Signed result of the last cmp (dst - src); conditions test its sign.
  int64_t CmpVal = 0;
  bool FlagsValid = false;
  bool FrameAllocated = false;
  uint32_t FrameSize = 0;
  /// TSO/Relaxed store buffer, oldest first.
  std::vector<std::pair<Addr, Value>> Buf;
  /// Relaxed pending loads (destination register, resolved address),
  /// issue order first. A deferred load's address is resolved in program
  /// order but the read itself completes later — oldest first — which is
  /// what makes LB/IRIW-shaped reorderings observable.
  std::vector<std::pair<Reg, Addr>> Pending;

  std::string key() const override {
    StrBuilder B;
    B << "pc" << PC << ';';
    for (const Value &V : Regs)
      B << V.toString() << ',';
    B << 'f';
    if (FlagsValid)
      B << CmpVal;
    else
      B << '-';
    B << (FrameAllocated ? "A" : "U") << FrameSize;
    if (!Buf.empty()) {
      B << "|buf:";
      for (const auto &E : Buf)
        B << static_cast<uint64_t>(E.first) << '=' << E.second.toString()
          << ';';
    }
    if (!Pending.empty()) {
      B << "|pnd:";
      for (const auto &E : Pending)
        B << static_cast<unsigned>(E.first) << '='
          << static_cast<uint64_t>(E.second) << ';';
    }
    return B.take();
  }

  void residueBytes(ResidueBuf &B) const override {
    B.word(PC);
    // Register kinds packed 2 bits each, then the raw payloads.
    uint32_t Kinds = 0;
    for (unsigned I = 0; I < NumRegs; ++I)
      Kinds |= static_cast<uint32_t>(Regs[I].kind()) << (2 * I);
    B.word(Kinds);
    for (const Value &V : Regs)
      B.word(V.rawBits());
    // Mirrors key(): a stale CmpVal is omitted while the flags are
    // invalid (the flag word says whether the two CmpVal words follow),
    // and the pending-load block is omitted when empty (bit 4 says
    // whether it follows, keeping the encoding self-describing and the
    // SC/TSO residues byte-identical to before the Relaxed model).
    B.word((FlagsValid ? 1u : 0u) | (FrameAllocated ? 2u : 0u) |
           (Pending.empty() ? 0u : 4u));
    if (FlagsValid)
      B.word64(static_cast<uint64_t>(CmpVal));
    B.word(FrameSize);
    B.word(static_cast<uint32_t>(Buf.size()));
    for (const auto &E : Buf) {
      B.word64(static_cast<uint64_t>(E.first));
      B.word(static_cast<uint32_t>(E.second.kind()));
      B.word(E.second.rawBits());
    }
    if (!Pending.empty()) {
      B.word(static_cast<uint32_t>(Pending.size()));
      for (const auto &E : Pending) {
        B.word(static_cast<uint32_t>(E.first));
        B.word64(static_cast<uint64_t>(E.second));
      }
    }
  }
};

bool condHolds(Cond C, int64_t CmpVal) {
  switch (C) {
  case Cond::E:
    return CmpVal == 0;
  case Cond::NE:
    return CmpVal != 0;
  case Cond::L:
    return CmpVal < 0;
  case Cond::LE:
    return CmpVal <= 0;
  case Cond::G:
    return CmpVal > 0;
  case Cond::GE:
    return CmpVal >= 0;
  }
  return false;
}

Value wrapInt(int64_t V) {
  return Value::makeInt(static_cast<int32_t>(static_cast<uint32_t>(V)));
}

/// Relaxed load-reordering window: at most this many loads may be in
/// flight per thread (bounds the extra nondeterminism; two suffices for
/// every classic litmus shape — LB and IRIW need exactly one per thread).
constexpr std::size_t MaxPendingLoads = 2;

} // namespace

X86Lang::X86Lang(std::shared_ptr<const Module> M, MemModel Model,
                 bool ObjectMode)
    : Mod(std::move(M)), Model(Model), ObjectMode(ObjectMode) {}

X86Lang::~X86Lang() = default;

CoreRef X86Lang::initCore(const std::string &Entry,
                          const std::vector<Value> &Args) const {
  auto It = Mod->Entries.find(Entry);
  if (It == Mod->Entries.end() || It->second.Arity != Args.size() ||
      Args.size() > 3)
    return nullptr;
  auto C = std::make_shared<X86Core>();
  C->PC = It->second.PCIndex;
  C->FrameSize = It->second.FrameSize;
  C->FrameAllocated = C->FrameSize == 0;
  for (std::size_t I = 0; I < Args.size(); ++I)
    C->Regs[static_cast<unsigned>(ArgRegs[I])] = Args[I];
  return C;
}

CoreRef X86Lang::applyReturn(const Core &C, const Value &V) const {
  auto N = std::make_shared<X86Core>(static_cast<const X86Core &>(C));
  N->Regs[static_cast<unsigned>(Reg::EAX)] = V;
  // Flags are clobbered across calls.
  N->FlagsValid = false;
  return N;
}

bool X86Lang::porPoints(const FreeList &F, const Core &C,
                        std::vector<PorPoint> &Out,
                        EffectSummary &Extra) const {
  (void)F;
  const auto &Cr = static_cast<const X86Core &>(C);
  // Pending frame allocation writes the frame cells (own region).
  if (!Cr.FrameAllocated)
    Extra.OwnW = true;
  // Buffered TSO/Relaxed stores flush at concrete addresses; Relaxed
  // pending loads will read their resolved cells on completion.
  for (const auto &E : Cr.Buf)
    Extra.addWrite(E.first);
  for (const auto &E : Cr.Pending)
    Extra.addRead(E.second);
  // An out-of-range PC steps to abort with no footprint: no point.
  if (Cr.PC < Mod->Code.size())
    Out.push_back(PorPoint{&Mod->Code[Cr.PC], Cr.PC});
  return true;
}

std::vector<LocalStep> X86Lang::step(const FreeList &F, const Core &C,
                                     const Mem &M) const {
  const auto &Cr = static_cast<const X86Core &>(C);
  std::vector<LocalStep> Out;

  auto abort = [&Out](const std::string &R) {
    Out.push_back(LocalStep::abort("x86: " + R));
  };

  auto accessAllowed = [&](Addr A) {
    if (!ObjectMode)
      return true;
    return Globals->addrs().contains(A) || F.contains(A);
  };

  // -- Frame allocation is the first step of a function with locals.
  if (!Cr.FrameAllocated) {
    if (Cr.FrameSize > F.size()) {
      abort("frame larger than free list");
      return Out;
    }
    LocalStep S;
    S.M = Msg::tau();
    S.NextMem = M;
    Footprint FP;
    for (uint32_t I = 0; I < Cr.FrameSize; ++I) {
      // Frame regions are reused after returns; allocFrame overwrites.
      Addr A = F.at(I);
      S.NextMem.allocFrame(A, Value::makeUndef());
      FP.addWrite(A);
    }
    auto N = std::make_shared<X86Core>(Cr);
    N->FrameAllocated = true;
    N->Regs[static_cast<unsigned>(Reg::ESP)] = Value::makePtr(F.at(0));
    S.FP = std::move(FP);
    S.Next = std::move(N);
    Out.push_back(std::move(S));
    return Out;
  }

  // Store buffering is shared by TSO and Relaxed; Relaxed additionally
  // defers loads.
  const bool Buffered = Model != MemModel::SC;
  const bool Rlx = Model == MemModel::Relaxed;

  // -- TSO/Relaxed: a pending store may flush at any time.
  auto pushFlush = [&]() {
    if (!Buffered || Cr.Buf.empty())
      return;
    Addr A = Cr.Buf.front().first;
    Mem NM = M;
    if (!NM.store(A, Cr.Buf.front().second)) {
      abort("TSO flush to unallocated address");
      return;
    }
    auto N = std::make_shared<X86Core>(Cr);
    N->Buf.erase(N->Buf.begin());
    LocalStep S;
    S.M = Msg::tau();
    S.FP = Footprint::ofWrite(A);
    S.NextMem = std::move(NM);
    S.Next = std::move(N);
    Out.push_back(std::move(S));
  };
  pushFlush();

  // -- Relaxed: the oldest deferred load may complete at any time. The
  // value is read now — own store buffer first (newest entry wins), then
  // shared memory. Same-address accesses issued after the defer are held
  // back (see the conflict gate below), so forwarding only ever sees
  // stores buffered before the load was deferred.
  auto pushComplete = [&]() {
    if (!Rlx || Cr.Pending.empty())
      return;
    const Reg R = Cr.Pending.front().first;
    const Addr A = Cr.Pending.front().second;
    Value V;
    bool FromBuf = false;
    for (auto It = Cr.Buf.rbegin(); It != Cr.Buf.rend(); ++It)
      if (It->first == A) {
        V = It->second;
        FromBuf = true;
        break;
      }
    Footprint CFP;
    if (!FromBuf) {
      auto L = M.load(A);
      if (!L) {
        abort("relaxed load completion on unallocated address");
        return;
      }
      V = *L;
      CFP.addRead(A);
    }
    auto N = std::make_shared<X86Core>(Cr);
    N->Regs[static_cast<unsigned>(R)] = V;
    N->Pending.erase(N->Pending.begin());
    LocalStep S;
    S.M = Msg::tau();
    S.FP = std::move(CFP);
    S.NextMem = M;
    S.Next = std::move(N);
    Out.push_back(std::move(S));
  };
  pushComplete();

  if (Cr.PC >= Mod->Code.size()) {
    abort("program counter out of range");
    return Out;
  }
  const Instr &I = Mod->Code[Cr.PC];

  // Instructions that serialize the store buffer can only run when it is
  // empty; until then the flush step above is the only enabled step.
  // Under Relaxed they are full barriers: pending loads must also have
  // completed (mfence/locked ops, and module boundaries, order
  // everything).
  const bool NeedsDrain = I.K == Instr::Kind::LockCmpxchg ||
                          I.K == Instr::Kind::Mfence ||
                          I.K == Instr::Kind::Ret ||
                          I.K == Instr::Kind::Call ||
                          I.K == Instr::Kind::TailCall;
  if (Buffered && NeedsDrain && (!Cr.Buf.empty() || !Cr.Pending.empty()))
    return Out;

  // -- Operand helpers. Footprints accumulate into FP.
  Footprint FP;

  auto effAddr = [&](const Operand &O) -> std::optional<Addr> {
    if (O.K == Operand::Kind::MemGlobal) {
      auto A = Globals->lookup(O.Global);
      return A;
    }
    assert(O.K == Operand::Kind::MemBase && "not a memory operand");
    const Value &Base = Cr.Regs[static_cast<unsigned>(O.R)];
    if (!Base.isPtr())
      return std::nullopt;
    return Base.asPtr() + static_cast<Addr>(O.Disp);
  };

  // -- Relaxed conflict gate: an instruction that reads or writes a
  // pending load's destination register (including as an address base),
  // or touches a pending load's cell, must wait for the completion step
  // — this is the dependency order the IMM compilation scheme preserves
  // (address/data/control dependencies force completion, so MP's
  // flag-then-data read chain stays in order while independent accesses
  // may overtake). A completion step is always enabled while Pending is
  // non-empty, so withholding the instruction cannot deadlock.
  if (Rlx && !Cr.Pending.empty()) {
    auto RegOverlap = [&](const Operand &O, Reg R) {
      return (O.K == Operand::Kind::Reg || O.K == Operand::Kind::MemBase) &&
             O.R == R;
    };
    bool Conflicts = false;
    for (const auto &P : Cr.Pending) {
      if (RegOverlap(I.Src, P.first) || RegOverlap(I.Dst, P.first)) {
        Conflicts = true;
        break;
      }
      for (const Operand *O : {&I.Src, &I.Dst})
        if (O->isMem()) {
          auto EA = effAddr(*O);
          if (EA && *EA == P.second) {
            Conflicts = true;
            break;
          }
        }
      if (Conflicts)
        break;
    }
    if (Conflicts)
      return Out;
  }

  auto readOperand = [&](const Operand &O) -> std::optional<Value> {
    switch (O.K) {
    case Operand::Kind::Imm:
      return Value::makeInt(O.Imm);
    case Operand::Kind::GlobalImm: {
      auto A = Globals->lookup(O.Global);
      if (!A)
        return std::nullopt;
      return Value::makePtr(*A);
    }
    case Operand::Kind::Reg:
      return Cr.Regs[static_cast<unsigned>(O.R)];
    case Operand::Kind::MemBase:
    case Operand::Kind::MemGlobal: {
      auto A = effAddr(O);
      if (!A || !accessAllowed(*A))
        return std::nullopt;
      if (Buffered) {
        // Snoop the own store buffer, newest entry first.
        for (auto It = Cr.Buf.rbegin(); It != Cr.Buf.rend(); ++It)
          if (It->first == *A)
            return It->second;
      }
      auto V = M.load(*A);
      if (!V)
        return std::nullopt;
      FP.addRead(*A);
      return V;
    }
    }
    return std::nullopt;
  };

  // -- Finishing helpers.
  auto finish = [&](Msg Ms, CoreRef Next, Mem NM) {
    LocalStep S;
    S.M = std::move(Ms);
    S.FP = FP;
    S.NextMem = std::move(NM);
    S.Next = std::move(Next);
    Out.push_back(std::move(S));
  };

  auto nextCore = [&Cr]() {
    auto N = std::make_shared<X86Core>(Cr);
    N->PC = Cr.PC + 1;
    return N;
  };

  /// Writes \p V to \p O; returns the new core/mem or nothing on error.
  auto writeDst = [&](const Operand &O, const Value &V,
                      std::shared_ptr<X86Core> &N, Mem &NM) -> bool {
    if (O.K == Operand::Kind::Reg) {
      N->Regs[static_cast<unsigned>(O.R)] = V;
      return true;
    }
    if (!O.isMem())
      return false;
    auto A = effAddr(O);
    if (!A || !accessAllowed(*A))
      return false;
    if (Buffered) {
      N->Buf.emplace_back(*A, V);
      return true;
    }
    if (!NM.store(*A, V))
      return false;
    FP.addWrite(*A);
    return true;
  };

  switch (I.K) {
  case Instr::Kind::Label: {
    finish(Msg::tau(), nextCore(), M);
    break;
  }
  case Instr::Kind::Mov: {
    // Relaxed: a plain register load may also be *deferred* — the
    // address is resolved in program order, the read completes later
    // (pushComplete above). Offered alongside the execute-now step.
    if (Rlx && I.Dst.K == Operand::Kind::Reg && I.Src.isMem() &&
        Cr.Pending.size() < MaxPendingLoads) {
      auto A = effAddr(I.Src);
      if (A && accessAllowed(*A)) {
        auto N = std::make_shared<X86Core>(Cr);
        N->PC = Cr.PC + 1;
        N->Pending.emplace_back(I.Dst.R, *A);
        LocalStep S;
        S.M = Msg::tau();
        S.NextMem = M;
        S.Next = std::move(N);
        Out.push_back(std::move(S));
      }
    }
    auto V = readOperand(I.Src);
    if (!V) {
      abort("bad mov source");
      break;
    }
    auto N = nextCore();
    Mem NM = M;
    if (!writeDst(I.Dst, *V, N, NM)) {
      abort("bad mov destination");
      break;
    }
    finish(Msg::tau(), std::move(N), std::move(NM));
    break;
  }
  case Instr::Kind::Add:
  case Instr::Kind::Sub:
  case Instr::Kind::Imul:
  case Instr::Kind::Div:
  case Instr::Kind::And:
  case Instr::Kind::Or:
  case Instr::Kind::Xor:
  case Instr::Kind::Shl:
  case Instr::Kind::Sar: {
    auto SrcV = readOperand(I.Src);
    auto DstV = readOperand(I.Dst);
    if (!SrcV || !DstV) {
      abort("bad ALU operand");
      break;
    }
    Value R;
    if (I.K == Instr::Kind::Add && DstV->isPtr() && SrcV->isInt()) {
      R = Value::makePtr(DstV->asPtr() +
                         static_cast<Addr>(SrcV->asInt()));
    } else if (I.K == Instr::Kind::Sub && DstV->isPtr() && SrcV->isInt()) {
      R = Value::makePtr(DstV->asPtr() -
                         static_cast<Addr>(SrcV->asInt()));
    } else if (SrcV->isInt() && DstV->isInt()) {
      int64_t A = DstV->asInt(), B = SrcV->asInt();
      switch (I.K) {
      case Instr::Kind::Add:
        R = wrapInt(A + B);
        break;
      case Instr::Kind::Sub:
        R = wrapInt(A - B);
        break;
      case Instr::Kind::Imul:
        R = wrapInt(A * B);
        break;
      case Instr::Kind::Div:
        if (B == 0) {
          abort("division by zero");
          return Out;
        }
        R = wrapInt(A / B);
        break;
      case Instr::Kind::And:
        R = wrapInt(A & B);
        break;
      case Instr::Kind::Or:
        R = wrapInt(A | B);
        break;
      case Instr::Kind::Xor:
        R = wrapInt(A ^ B);
        break;
      case Instr::Kind::Shl:
        R = wrapInt(static_cast<int64_t>(static_cast<uint32_t>(A)
                                         << (B & 31)));
        break;
      case Instr::Kind::Sar:
        R = wrapInt(static_cast<int32_t>(A) >> (B & 31));
        break;
      default:
        break;
      }
    } else {
      abort("ALU type error");
      break;
    }
    auto N = nextCore();
    Mem NM = M;
    if (!writeDst(I.Dst, R, N, NM)) {
      abort("bad ALU destination");
      break;
    }
    N->FlagsValid = false;
    finish(Msg::tau(), std::move(N), std::move(NM));
    break;
  }
  case Instr::Kind::Neg:
  case Instr::Kind::Not: {
    auto DstV = readOperand(I.Dst);
    if (!DstV || !DstV->isInt()) {
      abort("bad unary operand");
      break;
    }
    Value R = I.K == Instr::Kind::Neg
                  ? wrapInt(-static_cast<int64_t>(DstV->asInt()))
                  : wrapInt(~static_cast<int64_t>(DstV->asInt()));
    auto N = nextCore();
    Mem NM = M;
    if (!writeDst(I.Dst, R, N, NM)) {
      abort("bad unary destination");
      break;
    }
    N->FlagsValid = false;
    finish(Msg::tau(), std::move(N), std::move(NM));
    break;
  }
  case Instr::Kind::Cmp: {
    auto SrcV = readOperand(I.Src);
    auto DstV = readOperand(I.Dst);
    if (!SrcV || !DstV) {
      abort("bad cmp operand");
      break;
    }
    int64_t CV = 0;
    if (SrcV->isInt() && DstV->isInt())
      CV = static_cast<int64_t>(DstV->asInt()) - SrcV->asInt();
    else if (SrcV->isPtr() && DstV->isPtr())
      CV = static_cast<int64_t>(DstV->asPtr()) - SrcV->asPtr();
    else {
      abort("cmp type error");
      break;
    }
    auto N = nextCore();
    N->CmpVal = CV;
    N->FlagsValid = true;
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case Instr::Kind::Setcc: {
    if (!Cr.FlagsValid) {
      abort("setcc with undefined flags");
      break;
    }
    auto N = nextCore();
    Mem NM = M;
    Value R = Value::makeInt(condHolds(I.CC, Cr.CmpVal) ? 1 : 0);
    if (!writeDst(I.Dst, R, N, NM)) {
      abort("bad setcc destination");
      break;
    }
    finish(Msg::tau(), std::move(N), std::move(NM));
    break;
  }
  case Instr::Kind::Jmp: {
    auto L = Mod->label(I.Name);
    assert(L && "parser checks branch targets");
    auto N = std::make_shared<X86Core>(Cr);
    N->PC = *L;
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case Instr::Kind::Jcc: {
    if (!Cr.FlagsValid) {
      abort("conditional jump with undefined flags");
      break;
    }
    auto L = Mod->label(I.Name);
    assert(L && "parser checks branch targets");
    auto N = std::make_shared<X86Core>(Cr);
    N->PC = condHolds(I.CC, Cr.CmpVal) ? *L : Cr.PC + 1;
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case Instr::Kind::Call:
  case Instr::Kind::TailCall: {
    auto Arity = Mod->arityOf(I.Name);
    if (!Arity || *Arity > 3) {
      abort("call to '" + I.Name + "' with unknown arity");
      break;
    }
    std::vector<Value> Args;
    for (unsigned A = 0; A < *Arity; ++A)
      Args.push_back(Cr.Regs[static_cast<unsigned>(ArgRegs[A])]);
    if (I.K == Instr::Kind::TailCall) {
      finish(Msg::tailCall(I.Name, std::move(Args)),
             std::make_shared<X86Core>(Cr), M);
      break;
    }
    finish(Msg::extCall(I.Name, std::move(Args)), nextCore(), M);
    break;
  }
  case Instr::Kind::Ret: {
    auto N = std::make_shared<X86Core>(Cr);
    finish(Msg::ret(Cr.Regs[static_cast<unsigned>(Reg::EAX)]),
           std::move(N), M);
    break;
  }
  case Instr::Kind::LockCmpxchg: {
    // Atomic: compare EAX with [dst]; if equal store src and set ZF,
    // otherwise load [dst] into EAX and clear ZF. Under TSO the buffer is
    // already drained (NeedsDrain above).
    if (I.Src.K != Operand::Kind::Reg || !I.Dst.isMem()) {
      abort("cmpxchg operand forms");
      break;
    }
    auto A = effAddr(I.Dst);
    if (!A || !accessAllowed(*A)) {
      abort("cmpxchg address");
      break;
    }
    auto MemV = M.load(*A);
    if (!MemV) {
      abort("cmpxchg on unallocated address");
      break;
    }
    FP.addRead(*A);
    const Value &Acc = Cr.Regs[static_cast<unsigned>(Reg::EAX)];
    auto N = nextCore();
    Mem NM = M;
    N->FlagsValid = true;
    if (*MemV == Acc) {
      const Value &SrcV = Cr.Regs[static_cast<unsigned>(I.Src.R)];
      NM.store(*A, SrcV);
      FP.addWrite(*A);
      N->CmpVal = 0;
    } else {
      N->Regs[static_cast<unsigned>(Reg::EAX)] = *MemV;
      N->CmpVal = 1;
    }
    finish(Msg::tau(), std::move(N), std::move(NM));
    break;
  }
  case Instr::Kind::Mfence: {
    finish(Msg::tau(), nextCore(), M);
    break;
  }
  case Instr::Kind::Print: {
    auto V = readOperand(I.Src);
    if (!V || !V->isInt()) {
      abort("printl needs an integer");
      break;
    }
    finish(Msg::event(V->asInt()), nextCore(), M);
    break;
  }
  }
  return Out;
}

unsigned ccc::x86::addAsmModule(Program &P, const std::string &Name,
                                const std::string &Source, MemModel Model,
                                bool ObjectMode) {
  return addAsmModule(P, Name, parseAsmOrDie(Source), Model, ObjectMode);
}

unsigned ccc::x86::addAsmModule(Program &P, const std::string &Name,
                                std::shared_ptr<const Module> M,
                                MemModel Model, bool ObjectMode) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second),
               ObjectMode ? DataOwner::Object : DataOwner::Client);
  return P.addModule(Name, std::make_unique<X86Lang>(M, Model, ObjectMode),
                     std::move(GE));
}
