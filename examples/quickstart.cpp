//===- examples/quickstart.cpp - CASCC in five minutes ---------------------===//
//
// The quickstart walks the paper's running example (Fig. 10c) through the
// public API:
//   1. parse a concurrent Clight client,
//   2. compile it with the 12-pass CASCompCert pipeline,
//   3. link it with the gamma_lock object and run both source and target
//      under the preemptive semantics,
//   4. check DRF and semantics preservation.
//
//===----------------------------------------------------------------------===//

#include "compiler/Compiler.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace ccc;

int main() {
  std::printf("CASCC quickstart: the Fig. 10(c) counter client\n");
  std::printf("================================================\n\n");

  // 1. The source program: two threads incrementing a shared counter
  //    under a lock, printing the value each observed.
  std::string Source = workload::fig10cClientSource();
  std::printf("source (Clight subset):\n%s\n", Source.c_str());

  // 2. Compile through every pass of Fig. 11.
  compiler::CompileResult R = compiler::compileClightSource(Source);
  std::printf("compiled x86 assembly:\n%s\n", R.Asm->toString().c_str());

  // 3. Build the source and target whole programs.
  auto makeProgram = [&](unsigned Stage) {
    Program P;
    compiler::addStage(P, R, Stage, "client");
    sync::addGammaLock(P); // the lock object (Fig. 10a), in CImp
    P.addThread("inc");
    P.addThread("inc");
    P.link();
    return P;
  };
  Program Src = makeProgram(0);
  Program Tgt = makeProgram(12);

  // 4. Explore all interleavings of both programs.
  TraceSet SrcTraces = preemptiveTraces(Src);
  TraceSet TgtTraces = preemptiveTraces(Tgt);
  std::printf("source traces: %s\n", SrcTraces.toString().c_str());
  std::printf("target traces: %s\n\n", TgtTraces.toString().c_str());

  bool Drf = isDRF(Src);
  RefineResult Pres = equivTraces(TgtTraces, SrcTraces);
  std::printf("DRF(source)               : %s\n", Drf ? "yes" : "no");
  std::printf("target preserves semantics: %s\n",
              Pres.Holds ? "yes" : "no");
  std::printf("\nEach thread prints the counter value it observed: 0 and 1 "
              "in some order,\nnever twice the same — the lock works, and "
              "compilation preserved it.\n");
  return Drf && Pres.Holds ? 0 : 1;
}
