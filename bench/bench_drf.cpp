//===- bench/bench_drf.cpp - E2: race detection cost (Fig. 9 / Sec. 5) -----===//
//
// Measures the cost of the Race-rule exploration (Fig. 9) as thread count
// and per-thread work grow, and the state-space reduction obtained by
// checking races in the non-preemptive semantics instead (NPDRF) — the
// practical payoff of the paper's reduction.
//
// Expected shape: the non-preemptive state space is orders of magnitude
// smaller and the gap widens with thread count and program size.
//
//===----------------------------------------------------------------------===//

#include "BenchTable.h"
#include "core/Semantics.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace ccc;

int main() {
  std::printf("E2 (Fig. 9): DRF checking — preemptive vs non-preemptive "
              "state spaces\n\n");

  benchtable::Table T({"threads", "work", "pre states", "pre ms",
                       "np states", "np ms", "reduction"});
  bool AllGood = true;
  for (unsigned Threads = 2; Threads <= 3; ++Threads) {
    for (unsigned Work : {1u, 3u, 5u, 8u}) {
      Program P1 = workload::atomicCounter(Threads, Work);
      benchtable::Timer T1;
      Explorer<World> EP;
      EP.build(World::load(P1));
      bool PreRace = EP.findRace().has_value();
      double PreMs = T1.ms();

      Program P2 = workload::atomicCounter(Threads, Work);
      benchtable::Timer T2;
      Explorer<NPWorld> EN;
      EN.build(NPWorld::loadAll(P2));
      bool NpRace = EN.findRace().has_value();
      double NpMs = T2.ms();

      AllGood = AllGood && !PreRace && !NpRace;
      double Ratio = EN.numStates()
                         ? static_cast<double>(EP.numStates()) /
                               static_cast<double>(EN.numStates())
                         : 0.0;
      char RatioBuf[32];
      std::snprintf(RatioBuf, sizeof(RatioBuf), "%.1fx", Ratio);
      T.addRow({std::to_string(Threads), std::to_string(Work),
                std::to_string(EP.numStates()), benchtable::fmtMs(PreMs),
                std::to_string(EN.numStates()), benchtable::fmtMs(NpMs),
                RatioBuf});
    }
  }
  T.print();
  std::printf("\nresult: %s — all programs DRF under both detectors; the "
              "non-preemptive reduction shrinks the explored state space\n",
              AllGood ? "PASS" : "FAIL");
  return AllGood ? 0 : 1;
}
