//===- ir/Cminor.h - The Cminor IR ------------------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cminor: after Cminorgen, non-addressed locals live in temporaries (the
/// core's register file) instead of memory. This is the pass where the
/// target's footprint shrinks below the source's — exactly what the
/// paper's FPmatch weakening permits. Since the Clight subset forbids
/// address-taken locals (footnote 6), the stack frame becomes empty.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_CMINOR_H
#define CASCC_IR_CMINOR_H

#include "clight/ClightAst.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccc {
namespace cminor {

struct Expr {
  enum class Kind { Const, Temp, AddrGlobal, Load, Un, Bin };

  Kind K = Kind::Const;
  int32_t IntVal = 0;
  unsigned Temp = 0;
  std::string Global;
  clight::UnOp U = clight::UnOp::Neg; // Neg / Not
  clight::BinOp B = clight::BinOp::Add;
  std::unique_ptr<Expr> L, R;
};

using ExprPtr = std::unique_ptr<Expr>;

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
  enum class Kind { Skip, SetTemp, Store, If, While, Call, Return, Print };

  Kind K = Kind::Skip;
  unsigned Dst = 0; // SetTemp / call result temp
  bool HasDst = false;
  ExprPtr E1, E2;
  Block Body, Else;
  std::string Callee;
  std::vector<ExprPtr> Args;
};

struct Function {
  std::string Name;
  bool RetVoid = true;
  unsigned NumParams = 0; // params are temps 0..NumParams-1
  unsigned NumTemps = 0;
  unsigned FrameSize = 0; // always 0 in our subset; kept for fidelity
  Block Body;
};

struct Module {
  std::vector<std::pair<std::string, int32_t>> Globals;
  std::vector<Function> Funcs;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace cminor
} // namespace ccc

#endif // CASCC_IR_CMINOR_H
