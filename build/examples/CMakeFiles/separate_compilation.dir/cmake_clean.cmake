file(REMOVE_RECURSE
  "CMakeFiles/separate_compilation.dir/separate_compilation.cpp.o"
  "CMakeFiles/separate_compilation.dir/separate_compilation.cpp.o.d"
  "separate_compilation"
  "separate_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separate_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
