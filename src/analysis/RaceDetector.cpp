//===- analysis/RaceDetector.cpp - Combined DRF checking -------------------===//

#include "analysis/RaceDetector.h"

#include <chrono>

using namespace ccc;
using namespace ccc::analysis;

namespace {

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// The shared tail of detectRaces and detectRacesInPlace: lockset fast
/// path, then dynamic exploration of \p P as it stands (already
/// SC-switched by detectRacesInPlace when the robustness certificates
/// allowed it).
DetectResult detectImpl(const Program &P, const DetectOptions &O,
                        DetectResult R) {
  auto StaticStart = std::chrono::steady_clock::now();
  R.Static = staticRaceAnalysis(P);
  R.StaticMs = msSince(StaticStart);

  if (O.UseStaticFastPath && R.Static.certified()) {
    R.FastPath = true;
    R.Drf = true;
    if (O.SampleConfirm) {
      auto ExpStart = std::chrono::steady_clock::now();
      Explorer<NPWorld> E(O.Explore);
      E.build(NPWorld::loadAll(P));
      RaceCheck C = E.checkRace();
      R.Witness = C.Witness;
      R.Conclusive = C.Conclusive;
      R.ExploredStates = E.numStates();
      R.Explore = E.stats();
      R.ExploreMs = msSince(ExpStart);
      R.Drf = !R.Witness && R.Conclusive;
    }
    return R;
  }

  auto ExpStart = std::chrono::steady_clock::now();
  Explorer<World> E(O.Explore);
  E.build(World::load(P));
  RaceCheck C = E.checkRace();
  R.Witness = C.Witness;
  R.Conclusive = C.Conclusive;
  R.ExploredStates = E.numStates();
  R.Explore = E.stats();
  R.ExploreMs = msSince(ExpStart);
  R.Drf = !R.Witness && R.Conclusive;
  return R;
}

} // namespace

DetectResult ccc::analysis::detectRaces(const Program &P,
                                        const DetectOptions &O) {
  DetectResult R;
  if (O.UseTsoFastPath) {
    auto TsoStart = std::chrono::steady_clock::now();
    R.Tso = programRobustness(P);
    R.TsoMs = msSince(TsoStart);
  }
  return detectImpl(P, O, std::move(R));
}

DetectResult ccc::analysis::detectRacesInPlace(Program &P,
                                               const DetectOptions &O) {
  DetectResult R;
  if (O.UseTsoFastPath) {
    auto TsoStart = std::chrono::steady_clock::now();
    R.Tso = programRobustness(P);
    R.ScSwitched = switchRobustToSc(P, R.Tso);
    R.TsoMs = msSince(TsoStart);
  }
  return detectImpl(P, O, std::move(R));
}
