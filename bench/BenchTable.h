//===- bench/BenchTable.h - Console tables for the benchmark harness ------===//
//
// Shared helpers for the experiment binaries: fixed-width console tables
// and wall-clock timing.
//
//===----------------------------------------------------------------------===//

#ifndef CASCC_BENCH_BENCHTABLE_H
#define CASCC_BENCH_BENCHTABLE_H

#include "core/MemModel.h"

#include <chrono>
#include <optional>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace benchtable {

/// The command-line options shared by every bench binary. Each binary
/// used to hand-roll its own `--no-por` scan (and bench_drf its own
/// `--capacity`); the one parser below is the single place a new shared
/// flag is added.
struct BenchFlags {
  /// Partial-order reduction on (off with `--no-por`, so reduced and
  /// full runs can be archived and diffed by tooling).
  bool Por = true;
  /// Fence synthesis enabled (off with `--no-fence-synth`): bench_tso's
  /// escape hatch to skip the repair pipeline and report raw NotRobust
  /// workloads only.
  bool FenceSynth = true;
  /// bench_drf's `--capacity` soak mode (ignored by the other binaries).
  bool Capacity = false;
  /// `--model=sc|tso|relaxed`: the memory model for the model-parametric
  /// workloads/sections of a binary. Unset means the binary's default —
  /// bench_tso's litmus matrix then sweeps every model; bench_drf's x86
  /// POR families run under TSO. Binaries whose expectations are pinned
  /// to one model (the E3 goldens, the refinement gates) accept and
  /// ignore it.
  std::optional<ccc::MemModel> Model;
};

inline void printBenchHelp(const char *Prog) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Options shared by all bench binaries:\n"
      "  --no-por          explore without partial-order reduction (full\n"
      "                    state spaces, for POR-on/off diffing)\n"
      "  --no-fence-synth  skip the fence-synthesis repair pipeline\n"
      "                    (bench_tso only; others accept and ignore it)\n"
      "  --capacity        run the state-store capacity soak instead of\n"
      "                    the benchmark (bench_drf only)\n"
      "  --model=MODEL     memory model (sc|tso|relaxed) for the\n"
      "                    model-parametric sections: restricts\n"
      "                    bench_tso's litmus matrix to one model and\n"
      "                    sets the model of bench_drf's x86 POR\n"
      "                    families; pinned-model sections ignore it\n"
      "  --help            show this text\n",
      Prog);
}

/// Parses the shared flag set. `--help` prints the shared help text and
/// exits 0; an unknown argument prints it and exits 2.
inline BenchFlags parseBenchFlags(int argc, char **argv) {
  BenchFlags F;
  const char *Prog = argc > 0 ? argv[0] : "bench";
  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    if (Arg == "--no-por") {
      F.Por = false;
    } else if (Arg == "--no-fence-synth") {
      F.FenceSynth = false;
    } else if (Arg == "--capacity") {
      F.Capacity = true;
    } else if (Arg.rfind("--model=", 0) == 0) {
      F.Model = ccc::parseMemModel(Arg.substr(8));
      if (!F.Model) {
        std::fprintf(stderr, "unknown memory model '%s'\n\n",
                     Arg.substr(8).c_str());
        printBenchHelp(Prog);
        std::exit(2);
      }
    } else if (Arg == "--help" || Arg == "-h") {
      printBenchHelp(Prog);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n\n", Arg.c_str());
      printBenchHelp(Prog);
      std::exit(2);
    }
  }
  return F;
}

/// Escapes a string for embedding in a JSON document.
inline std::string jsonStr(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  Out += '"';
  return Out;
}

/// Collects raw JSON values under section names and writes them as one
/// machine-readable document (each section becomes an array of entries),
/// so benchmark runs can be archived and diffed by tooling.
class JsonLog {
public:
  /// Appends \p RawJson (already valid JSON) to \p Section.
  void add(const std::string &Section, const std::string &RawJson) {
    for (auto &S : Sections) {
      if (S.first == Section) {
        S.second.push_back(RawJson);
        return;
      }
    }
    Sections.push_back({Section, {RawJson}});
  }

  bool write(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return false;
    std::fprintf(F, "{\n");
    for (std::size_t I = 0; I < Sections.size(); ++I) {
      std::fprintf(F, "  %s: [\n", jsonStr(Sections[I].first).c_str());
      for (std::size_t J = 0; J < Sections[I].second.size(); ++J)
        std::fprintf(F, "    %s%s\n", Sections[I].second[J].c_str(),
                     J + 1 < Sections[I].second.size() ? "," : "");
      std::fprintf(F, "  ]%s\n", I + 1 < Sections.size() ? "," : "");
    }
    std::fprintf(F, "}\n");
    std::fclose(F);
    return true;
  }

private:
  std::vector<std::pair<std::string, std::vector<std::string>>> Sections;
};

class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  void print() const {
    std::vector<std::size_t> Width(Headers.size());
    for (std::size_t I = 0; I < Headers.size(); ++I)
      Width[I] = Headers[I].size();
    for (const auto &Row : Rows)
      for (std::size_t I = 0; I < Row.size() && I < Width.size(); ++I)
        Width[I] = std::max(Width[I], Row[I].size());

    auto printRow = [&](const std::vector<std::string> &Row) {
      std::printf("|");
      for (std::size_t I = 0; I < Width.size(); ++I) {
        const std::string &Cell = I < Row.size() ? Row[I] : std::string();
        std::printf(" %-*s |", static_cast<int>(Width[I]), Cell.c_str());
      }
      std::printf("\n");
    };
    auto printSep = [&]() {
      std::printf("+");
      for (std::size_t I = 0; I < Width.size(); ++I) {
        for (std::size_t J = 0; J < Width[I] + 2; ++J)
          std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    printSep();
    printRow(Headers);
    printSep();
    for (const auto &Row : Rows)
      printRow(Row);
    printSep();
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

class Timer {
public:
  Timer() : Start(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

private:
  std::chrono::steady_clock::time_point Start;
};

inline std::string fmtMs(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Ms);
  return Buf;
}

inline std::string yesNo(bool B) { return B ? "yes" : "no"; }

} // namespace benchtable

#endif // CASCC_BENCH_BENCHTABLE_H
