
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CImpSemanticsTest.cpp" "tests/CMakeFiles/cascc_tests.dir/CImpSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/CImpSemanticsTest.cpp.o.d"
  "/root/repo/tests/ClightTest.cpp" "tests/CMakeFiles/cascc_tests.dir/ClightTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/ClightTest.cpp.o.d"
  "/root/repo/tests/CompilerTest.cpp" "tests/CMakeFiles/cascc_tests.dir/CompilerTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/CompilerTest.cpp.o.d"
  "/root/repo/tests/ConstPropTest.cpp" "tests/CMakeFiles/cascc_tests.dir/ConstPropTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/ConstPropTest.cpp.o.d"
  "/root/repo/tests/DrfGuaranteeTest.cpp" "tests/CMakeFiles/cascc_tests.dir/DrfGuaranteeTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/DrfGuaranteeTest.cpp.o.d"
  "/root/repo/tests/ExplorerTest.cpp" "tests/CMakeFiles/cascc_tests.dir/ExplorerTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/ExplorerTest.cpp.o.d"
  "/root/repo/tests/FrontendDiagnosticsTest.cpp" "tests/CMakeFiles/cascc_tests.dir/FrontendDiagnosticsTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/FrontendDiagnosticsTest.cpp.o.d"
  "/root/repo/tests/GlobalSemanticsTest.cpp" "tests/CMakeFiles/cascc_tests.dir/GlobalSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/GlobalSemanticsTest.cpp.o.d"
  "/root/repo/tests/LockObjectTest.cpp" "tests/CMakeFiles/cascc_tests.dir/LockObjectTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/LockObjectTest.cpp.o.d"
  "/root/repo/tests/MemTest.cpp" "tests/CMakeFiles/cascc_tests.dir/MemTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/MemTest.cpp.o.d"
  "/root/repo/tests/ObjectRefinementTest.cpp" "tests/CMakeFiles/cascc_tests.dir/ObjectRefinementTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/ObjectRefinementTest.cpp.o.d"
  "/root/repo/tests/OpsTest.cpp" "tests/CMakeFiles/cascc_tests.dir/OpsTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/OpsTest.cpp.o.d"
  "/root/repo/tests/PassStructureTest.cpp" "tests/CMakeFiles/cascc_tests.dir/PassStructureTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/PassStructureTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/cascc_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/SimNegativeTest.cpp" "tests/CMakeFiles/cascc_tests.dir/SimNegativeTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/SimNegativeTest.cpp.o.d"
  "/root/repo/tests/SpawnTest.cpp" "tests/CMakeFiles/cascc_tests.dir/SpawnTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/SpawnTest.cpp.o.d"
  "/root/repo/tests/StageSweepTest.cpp" "tests/CMakeFiles/cascc_tests.dir/StageSweepTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/StageSweepTest.cpp.o.d"
  "/root/repo/tests/ValidateTest.cpp" "tests/CMakeFiles/cascc_tests.dir/ValidateTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/ValidateTest.cpp.o.d"
  "/root/repo/tests/X86SemanticsTest.cpp" "tests/CMakeFiles/cascc_tests.dir/X86SemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/X86SemanticsTest.cpp.o.d"
  "/root/repo/tests/X86Test.cpp" "tests/CMakeFiles/cascc_tests.dir/X86Test.cpp.o" "gcc" "tests/CMakeFiles/cascc_tests.dir/X86Test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cascc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
