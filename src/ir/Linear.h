//===- ir/Linear.h - The Linear and Mach IRs --------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear: LTL after Linearize — a list of instructions with explicit
/// labels and fall-through, cleaned by CleanupLabels. Mach: Linear after
/// Stacking — stack slots are assigned concrete frame cells allocated
/// from the thread's free list (the frame-size field becomes meaningful).
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_IR_LINEAR_H
#define CASCC_IR_LINEAR_H

#include "ir/LTL.h"

namespace ccc {
namespace linear {

using Loc = ltl::Loc;
using AddrMode = rtl::AddrMode<Loc>;

/// One linear instruction. Control transfers name label ids.
struct Instr {
  enum class Kind { Op, Load, Store, Call, Tailcall, Cond, Goto, Label,
                    Return, Print };

  Kind K = Kind::Label;
  ir::Oper O = ir::Oper::Intconst;
  ir::Cmp C = ir::Cmp::Eq;
  int32_t Imm = 0;
  std::string Global;
  std::vector<Loc> Args;
  Loc Dst;
  bool HasDst = false;
  AddrMode AM;
  std::string Callee;
  bool CondOneArg = false;
  bool HasArg = false;
  unsigned Label = 0; ///< Label id (Label / Goto / Cond target)
};

struct Function {
  std::string Name;
  bool RetVoid = true;
  unsigned NumParams = 0;
  std::vector<Loc> ParamHomes;
  unsigned NumSlots = 0;
  std::vector<Instr> Code;
};

struct Module {
  std::vector<std::pair<std::string, int32_t>> Globals;
  std::vector<Function> Funcs;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace linear

namespace mach {

/// Mach reuses the Linear instruction set; slots now denote concrete
/// frame cells (slot i lives at freelist address i) and FrameSize records
/// the frame to allocate at entry.
using Instr = linear::Instr;
using Loc = linear::Loc;

struct Function {
  std::string Name;
  bool RetVoid = true;
  unsigned NumParams = 0;
  std::vector<Loc> ParamHomes;
  unsigned FrameSize = 0;
  std::vector<Instr> Code;
};

struct Module {
  std::vector<std::pair<std::string, int32_t>> Globals;
  std::vector<Function> Funcs;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Funcs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

} // namespace mach
} // namespace ccc

#endif // CASCC_IR_LINEAR_H
