//===- analysis/Independence.cpp - Static independence certifier ----------===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
//
// Per-module may-access summaries compiled into the static conflict
// relation driving partial-order reduction. Three analyzers share one
// cross-module closure fixpoint:
//
//  - CImp: expressions are register-pure, so only Load/Store/Atomic carry
//    effects; an address is exact when it is a global-address literal.
//  - Clight: variable reads/writes resolve to a frame slot (own-region
//    flag) or a linked global (exact cell); dereferences are exact only
//    through an address-of-global literal.
//  - x86: a per-PC register abstraction {Top, Konst, FrameRel} tracks
//    pointer constants (movl $L, %r) and frame-relative addressing off
//    the allocated frame base, classifying each memory operand as an
//    exact cell, an own-frame access, or Unknown.
//
// Call and spawn edges resolve exactly as Program::resolveEntry links
// them (first module defining the entry at the call's arity, in program
// order); a module in an unanalyzable language forces the resolution —
// and with it the caller's closure — to Unknown. Function closures are
// computed by a joint Kleene iteration: summaries only grow, and the
// effect lattice over the finite global address space is finite, so the
// iteration terminates.
//
//===----------------------------------------------------------------------===//

#include "analysis/Independence.h"

#include "cimp/CImpLang.h"
#include "clight/ClightLang.h"
#include "core/World.h"
#include "x86/X86Lang.h"

#include <array>
#include <deque>
#include <functional>
#include <optional>

namespace ccc {

// Out-of-line anchor for the oracle interface (core/PorOracle.h).
PorOracle::~PorOracle() = default;

namespace analysis {
namespace {

/// Canonicalizes a summary: Unknown absorbs everything else, so equal
/// abstract values compare equal structurally.
EffectSummary canon(EffectSummary E) {
  if (E.Unknown)
    return EffectSummary::top();
  return E;
}

bool sameEffect(const EffectSummary &A, const EffectSummary &B) {
  return A.Unknown == B.Unknown && A.OwnR == B.OwnR && A.OwnW == B.OwnW &&
         A.R == B.R && A.W == B.W;
}

/// Closure summary of a resolved callee: (entry name, call arity) -> effect.
using CalleeFn = std::function<EffectSummary(const std::string &, std::size_t)>;

//===----------------------------------------------------------------------===//
// CImp
//===----------------------------------------------------------------------===//

/// The exact address of a CImp load/store target, when statically known.
std::optional<Addr> cimpStaticAddr(const cimp::Expr &E, const GlobalEnv &GE) {
  if (E.K == cimp::Expr::Kind::GlobalAddr)
    return GE.lookup(E.Name);
  return std::nullopt;
}

EffectSummary cimpClosure(const cimp::Stmt &S, const GlobalEnv &GE,
                          const CalleeFn &CalleeCl);

EffectSummary cimpBlockClosure(const cimp::Block &B, const GlobalEnv &GE,
                               const CalleeFn &CalleeCl) {
  EffectSummary E;
  for (const cimp::StmtPtr &S : B)
    E.unionWith(cimpClosure(*S, GE, CalleeCl));
  return canon(E);
}

EffectSummary cimpClosure(const cimp::Stmt &S, const GlobalEnv &GE,
                          const CalleeFn &CalleeCl) {
  EffectSummary E;
  switch (S.K) {
  case cimp::Stmt::Kind::Skip:
  case cimp::Stmt::Kind::Assign:
  case cimp::Stmt::Kind::Assert:
  case cimp::Stmt::Kind::Print:
  case cimp::Stmt::Kind::Return:
    break; // Register-pure.
  case cimp::Stmt::Kind::Load: {
    if (auto A = cimpStaticAddr(*S.E1, GE))
      E.addRead(*A);
    else
      E.Unknown = true;
    break;
  }
  case cimp::Stmt::Kind::Store: {
    if (auto A = cimpStaticAddr(*S.E1, GE))
      E.addWrite(*A);
    else
      E.Unknown = true;
    break;
  }
  case cimp::Stmt::Kind::If:
    E.unionWith(cimpBlockClosure(S.Body, GE, CalleeCl));
    E.unionWith(cimpBlockClosure(S.Else, GE, CalleeCl));
    break;
  case cimp::Stmt::Kind::While:
  case cimp::Stmt::Kind::Atomic:
    E.unionWith(cimpBlockClosure(S.Body, GE, CalleeCl));
    break;
  case cimp::Stmt::Kind::Call:
  case cimp::Stmt::Kind::Spawn:
    // The call result lands in a register; a spawned thread's frame
    // effects fold in as own-region flags of whichever thread runs them
    // (regions of distinct threads are disjoint either way).
    E.unionWith(CalleeCl(S.Callee, S.Args.size()));
    break;
  }
  return canon(E);
}

/// The one-step effect of the statement at the head of the continuation.
/// An atomic block runs to its end without preemption, so its instruction
/// summary is the whole-block closure.
EffectSummary cimpInstr(const cimp::Stmt &S, const GlobalEnv &GE,
                        const CalleeFn &CalleeCl) {
  switch (S.K) {
  case cimp::Stmt::Kind::Load:
  case cimp::Stmt::Kind::Store:
    return cimpClosure(S, GE, CalleeCl);
  case cimp::Stmt::Kind::Atomic:
    return cimpBlockClosure(S.Body, GE, CalleeCl);
  default:
    return {}; // Condition/argument evaluation is register-pure.
  }
}

void cimpForEachStmt(const cimp::Block &B,
                     const std::function<void(const cimp::Stmt &)> &Fn) {
  for (const cimp::StmtPtr &S : B) {
    Fn(*S);
    cimpForEachStmt(S->Body, Fn);
    cimpForEachStmt(S->Else, Fn);
  }
}

//===----------------------------------------------------------------------===//
// Clight
//===----------------------------------------------------------------------===//

bool clightIsSlot(const clight::Function &F, const std::string &Name) {
  for (const clight::VarDecl &D : F.Params)
    if (D.Name == Name)
      return true;
  for (const clight::VarDecl &D : F.Locals)
    if (D.Name == Name)
      return true;
  return false;
}

/// Effect of evaluating \p E (variable reads hit memory in Clight).
void clightExprEffect(const clight::Expr &E, const clight::Function &F,
                      const GlobalEnv &GE, EffectSummary &Out) {
  switch (E.K) {
  case clight::Expr::Kind::IntLit:
  case clight::Expr::Kind::AddrOfGlobal:
    return;
  case clight::Expr::Kind::Var: {
    if (clightIsSlot(F, E.Name)) {
      Out.OwnR = true;
    } else if (auto A = GE.lookup(E.Name)) {
      Out.addRead(*A);
    } else {
      Out.Unknown = true; // Unbound name: aborts dynamically.
    }
    return;
  }
  case clight::Expr::Kind::Un: {
    clightExprEffect(*E.L, F, GE, Out);
    if (E.U == clight::UnOp::Deref) {
      // Footnote 6: stack locals never have their address taken, so an
      // exact target exists only through an address-of-global literal.
      if (E.L->K == clight::Expr::Kind::AddrOfGlobal) {
        if (auto A = GE.lookup(E.L->Name))
          Out.addRead(*A);
        else
          Out.Unknown = true;
      } else {
        Out.Unknown = true;
      }
    }
    return;
  }
  case clight::Expr::Kind::Bin:
    clightExprEffect(*E.L, F, GE, Out);
    clightExprEffect(*E.R, F, GE, Out);
    return;
  }
}

/// The write produced by assigning to variable \p Name.
void clightVarWrite(const std::string &Name, const clight::Function &F,
                    const GlobalEnv &GE, EffectSummary &Out) {
  if (clightIsSlot(F, Name)) {
    Out.OwnW = true;
  } else if (auto A = GE.lookup(Name)) {
    Out.addWrite(*A);
  } else {
    Out.Unknown = true;
  }
}

/// One-step effect of the statement (each Clight statement head executes
/// in a single local step; If/While only evaluate their condition).
EffectSummary clightInstr(const clight::Stmt &S, const clight::Function &F,
                          const GlobalEnv &GE) {
  EffectSummary E;
  switch (S.K) {
  case clight::Stmt::Kind::Skip:
    break;
  case clight::Stmt::Kind::AssignVar:
    clightExprEffect(*S.E1, F, GE, E);
    clightVarWrite(S.Dst, F, GE, E);
    break;
  case clight::Stmt::Kind::AssignDeref:
    clightExprEffect(*S.E1, F, GE, E);
    clightExprEffect(*S.E2, F, GE, E);
    if (S.E1->K == clight::Expr::Kind::AddrOfGlobal) {
      if (auto A = GE.lookup(S.E1->Name))
        E.addWrite(*A);
      else
        E.Unknown = true;
    } else {
      E.Unknown = true;
    }
    break;
  case clight::Stmt::Kind::If:
  case clight::Stmt::Kind::While:
    clightExprEffect(*S.E1, F, GE, E);
    break;
  case clight::Stmt::Kind::Call:
    for (const clight::ExprPtr &A : S.Args)
      clightExprEffect(*A, F, GE, E);
    break;
  case clight::Stmt::Kind::Return:
    if (S.E1)
      clightExprEffect(*S.E1, F, GE, E);
    break;
  case clight::Stmt::Kind::Print:
    clightExprEffect(*S.E1, F, GE, E);
    break;
  }
  return canon(E);
}

EffectSummary clightClosure(const clight::Stmt &S, const clight::Function &F,
                            const GlobalEnv &GE, const CalleeFn &CalleeCl) {
  EffectSummary E = clightInstr(S, F, GE);
  auto Blk = [&](const clight::Block &B) {
    for (const clight::StmtPtr &Sub : B)
      E.unionWith(clightClosure(*Sub, F, GE, CalleeCl));
  };
  switch (S.K) {
  case clight::Stmt::Kind::If:
    Blk(S.Body);
    Blk(S.Else);
    break;
  case clight::Stmt::Kind::While:
    Blk(S.Body);
    break;
  case clight::Stmt::Kind::Call:
    E.unionWith(CalleeCl(S.Callee, S.Args.size()));
    if (!S.Dst.empty())
      clightVarWrite(S.Dst, F, GE, E); // Deferred call-result store.
    break;
  default:
    break;
  }
  return canon(E);
}

void clightForEachStmt(const clight::Block &B,
                       const std::function<void(const clight::Stmt &)> &Fn) {
  for (const clight::StmtPtr &S : B) {
    Fn(*S);
    clightForEachStmt(S->Body, Fn);
    clightForEachStmt(S->Else, Fn);
  }
}

//===----------------------------------------------------------------------===//
// x86
//===----------------------------------------------------------------------===//

/// Abstract register value: an arbitrary word, a known constant (which
/// covers linked global addresses loaded via $L immediates), or a known
/// offset from the frame base the allocation step put into %esp.
struct AbsVal {
  enum class K : uint8_t { Top, Konst, FrameRel };
  K Kind = K::Top;
  int32_t V = 0;

  static AbsVal top() { return {}; }
  static AbsVal konst(int32_t V) { return {K::Konst, V}; }
  static AbsVal frameRel(int32_t D) { return {K::FrameRel, D}; }

  bool operator==(const AbsVal &O) const {
    return Kind == O.Kind && (Kind == K::Top || V == O.V);
  }
};

AbsVal joinVal(const AbsVal &A, const AbsVal &B) {
  return A == B ? A : AbsVal::top();
}

using RegState = std::array<AbsVal, x86::NumRegs>;

AbsVal absOfOperand(const x86::Operand &O, const RegState &S,
                    const GlobalEnv &GE) {
  switch (O.K) {
  case x86::Operand::Kind::Imm:
    return AbsVal::konst(O.Imm);
  case x86::Operand::Kind::GlobalImm: {
    if (auto A = GE.lookup(O.Global))
      return AbsVal::konst(static_cast<int32_t>(*A));
    return AbsVal::top();
  }
  case x86::Operand::Kind::Reg:
    return S[static_cast<unsigned>(O.R)];
  case x86::Operand::Kind::MemBase:
  case x86::Operand::Kind::MemGlobal:
    return AbsVal::top(); // Loaded values are not tracked.
  }
  return AbsVal::top();
}

RegState x86Transfer(const x86::Instr &I, RegState S, const GlobalEnv &GE) {
  auto dstReg = [&]() -> AbsVal * {
    if (I.Dst.K == x86::Operand::Kind::Reg)
      return &S[static_cast<unsigned>(I.Dst.R)];
    return nullptr;
  };
  switch (I.K) {
  case x86::Instr::Kind::Mov:
    if (AbsVal *D = dstReg())
      *D = absOfOperand(I.Src, S, GE);
    break;
  case x86::Instr::Kind::Add:
  case x86::Instr::Kind::Sub: {
    AbsVal *D = dstReg();
    if (!D)
      break;
    AbsVal Src = absOfOperand(I.Src, S, GE);
    int32_t Delta = I.K == x86::Instr::Kind::Add ? Src.V : -Src.V;
    if (Src.Kind == AbsVal::K::Konst && D->Kind != AbsVal::K::Top) {
      D->V += Delta;
    } else if (I.K == x86::Instr::Kind::Add &&
               Src.Kind == AbsVal::K::FrameRel &&
               D->Kind == AbsVal::K::Konst) {
      *D = AbsVal::frameRel(Src.V + D->V);
    } else {
      *D = AbsVal::top();
    }
    break;
  }
  case x86::Instr::Kind::Xor:
    if (AbsVal *D = dstReg()) {
      // xorl %r, %r zeroes the register (common compiler idiom).
      if (I.Src.K == x86::Operand::Kind::Reg && I.Src.R == I.Dst.R)
        *D = AbsVal::konst(0);
      else
        *D = AbsVal::top();
    }
    break;
  case x86::Instr::Kind::Imul:
  case x86::Instr::Kind::Div:
  case x86::Instr::Kind::And:
  case x86::Instr::Kind::Or:
  case x86::Instr::Kind::Shl:
  case x86::Instr::Kind::Sar:
  case x86::Instr::Kind::Neg:
  case x86::Instr::Kind::Not:
  case x86::Instr::Kind::Setcc:
    if (AbsVal *D = dstReg())
      *D = AbsVal::top();
    break;
  case x86::Instr::Kind::LockCmpxchg:
    // cmpxchg loads the old memory value into %eax.
    S[static_cast<unsigned>(x86::Reg::EAX)] = AbsVal::top();
    break;
  case x86::Instr::Kind::Call:
    // applyReturn overwrites %eax with the returned value and preserves
    // the remaining registers of the caller core.
    S[static_cast<unsigned>(x86::Reg::EAX)] = AbsVal::top();
    break;
  case x86::Instr::Kind::Cmp:
  case x86::Instr::Kind::Jmp:
  case x86::Instr::Kind::Jcc:
  case x86::Instr::Kind::TailCall:
  case x86::Instr::Kind::Ret:
  case x86::Instr::Kind::Mfence:
  case x86::Instr::Kind::Print:
  case x86::Instr::Kind::Label:
    break;
  }
  return S;
}

/// Per-module x86 tables: register states, one-step effects, and forward
/// closures per PC.
struct X86Tables {
  std::vector<std::optional<RegState>> In;
  std::vector<EffectSummary> Instr;
  std::vector<EffectSummary> Future;
};

/// Runs the register abstraction to fixpoint and derives the per-PC
/// one-step effect summaries (closure-independent, computed once).
X86Tables x86BuildBase(const x86::Module &M, const GlobalEnv &GE) {
  X86Tables T;
  const std::size_t N = M.Code.size();
  T.In.resize(N);
  T.Instr.assign(N, EffectSummary::top());
  T.Future.assign(N, EffectSummary{});

  auto joinInto = [](std::optional<RegState> &Tgt, const RegState &S) {
    if (!Tgt) {
      Tgt = S;
      return true;
    }
    bool Changed = false;
    for (unsigned R = 0; R < x86::NumRegs; ++R) {
      AbsVal J = joinVal((*Tgt)[R], S[R]);
      if (!(J == (*Tgt)[R])) {
        (*Tgt)[R] = J;
        Changed = true;
      }
    }
    return Changed;
  };

  std::deque<unsigned> WL;
  for (const auto &[Name, EI] : M.Entries) {
    (void)Name;
    if (EI.PCIndex >= N)
      continue;
    RegState Seed; // All Top.
    if (EI.FrameSize > 0) {
      // The allocation step points %esp at the frame base.
      Seed[static_cast<unsigned>(x86::Reg::ESP)] = AbsVal::frameRel(0);
    }
    if (joinInto(T.In[EI.PCIndex], Seed))
      WL.push_back(EI.PCIndex);
  }
  while (!WL.empty()) {
    unsigned PC = WL.front();
    WL.pop_front();
    RegState Out = x86Transfer(M.Code[PC], *T.In[PC], GE);
    for (unsigned S : x86::successors(M, PC))
      if (S < N && joinInto(T.In[S], Out))
        WL.push_back(S);
  }

  for (unsigned PC = 0; PC < N; ++PC) {
    if (!T.In[PC])
      continue; // Unreachable from every entry: stays Unknown.
    EffectSummary E;
    for (const x86::MemEffect &ME : x86::memEffects(M.Code[PC])) {
      bool Own = false;
      std::optional<Addr> A;
      if (ME.Op->K == x86::Operand::Kind::MemGlobal) {
        A = GE.lookup(ME.Op->Global);
      } else {
        const AbsVal &Base = (*T.In[PC])[static_cast<unsigned>(ME.Op->R)];
        if (Base.Kind == AbsVal::K::Konst) {
          A = static_cast<Addr>(Base.V + ME.Op->Disp);
        } else if (Base.Kind == AbsVal::K::FrameRel) {
          int64_t D = static_cast<int64_t>(Base.V) + ME.Op->Disp;
          if (D >= 0 && D < static_cast<int64_t>(Program::FrameRegionSize))
            Own = true;
        }
      }
      if (A) {
        if (ME.IsLoad)
          E.addRead(*A);
        if (ME.IsStore)
          E.addWrite(*A);
      } else if (Own) {
        E.OwnR = E.OwnR || ME.IsLoad;
        E.OwnW = E.OwnW || ME.IsStore;
      } else {
        E.Unknown = true;
      }
    }
    T.Instr[PC] = canon(E);
  }
  return T;
}

/// Recomputes the per-PC forward closures to a local fixpoint under the
/// current cross-module function closures. Returns true on any change.
bool x86UpdateFuture(const x86::Module &M, X86Tables &T,
                     const CalleeFn &CalleeCl) {
  const std::size_t N = M.Code.size();
  bool AnyChange = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t R = 0; R < N; ++R) {
      // Visit backwards: forward closures converge faster bottom-up.
      unsigned PC = static_cast<unsigned>(N - 1 - R);
      EffectSummary E = T.Instr[PC];
      const x86::Instr &I = M.Code[PC];
      if (I.K == x86::Instr::Kind::Call ||
          I.K == x86::Instr::Kind::TailCall) {
        if (auto Arity = M.arityOf(I.Name))
          E.unionWith(CalleeCl(I.Name, *Arity));
        else
          E.Unknown = true; // Unresolvable callee: aborts dynamically.
      }
      for (unsigned S : x86::successors(M, PC))
        if (S < N)
          E.unionWith(T.Future[S]);
      E = canon(E);
      if (!sameEffect(E, T.Future[PC])) {
        T.Future[PC] = std::move(E);
        Changed = true;
        AnyChange = true;
      }
    }
  }
  return AnyChange;
}

/// Per-module language views discovered via RTTI.
struct LangView {
  const cimp::CImpLang *CI = nullptr;
  const clight::ClightLang *CL = nullptr;
  const x86::X86Lang *X = nullptr;

  bool analyzable() const { return CI || CL || X; }
};

} // namespace

const char *toString(IndepVerdict V) {
  switch (V) {
  case IndepVerdict::Independent:
    return "Independent";
  case IndepVerdict::MayConflict:
    return "MayConflict";
  case IndepVerdict::Unknown:
    return "Unknown";
  }
  return "?";
}

std::shared_ptr<const Independence> Independence::build(const Program &P) {
  auto Ind = std::make_shared<Independence>();
  const auto &Decls = P.modules();
  Ind->Mods.resize(Decls.size());

  std::vector<LangView> Views(Decls.size());
  for (unsigned I = 0; I < Decls.size(); ++I) {
    const ModuleLang *L = Decls[I].Lang.get();
    Views[I].CI = dynamic_cast<const cimp::CImpLang *>(L);
    Views[I].CL = dynamic_cast<const clight::ClightLang *>(L);
    Views[I].X = dynamic_cast<const x86::X86Lang *>(L);
    Ind->Mods[I].Analyzable = Views[I].analyzable();
  }

  // Function closures, keyed by (module, entry name); absent = bottom.
  std::map<std::pair<unsigned, std::string>, EffectSummary> FnClosure;

  // Mirrors Program::resolveEntry: the first module whose initCore
  // accepts (name, arity) wins. A module we cannot model may or may not
  // define the entry, so resolution (and the caller) degrades to Unknown.
  CalleeFn CalleeCl = [&](const std::string &Name,
                          std::size_t Arity) -> EffectSummary {
    for (unsigned I = 0; I < Decls.size(); ++I) {
      const LangView &V = Views[I];
      if (!V.analyzable())
        return EffectSummary::top();
      if (V.CI) {
        if (const cimp::Function *F = V.CI->module().find(Name)) {
          if (F->Params.size() != Arity)
            continue;
          auto It = FnClosure.find({I, Name});
          return It == FnClosure.end() ? EffectSummary{} : It->second;
        }
        continue;
      }
      if (V.CL) {
        if (const clight::Function *F = V.CL->module().find(Name)) {
          if (F->Params.size() != Arity)
            continue;
          auto It = FnClosure.find({I, Name});
          return It == FnClosure.end() ? EffectSummary{} : It->second;
        }
        continue;
      }
      auto EIt = V.X->module().Entries.find(Name);
      if (EIt != V.X->module().Entries.end()) {
        if (EIt->second.Arity != Arity || Arity > 3)
          continue;
        auto It = FnClosure.find({I, Name});
        return It == FnClosure.end() ? EffectSummary{} : It->second;
      }
    }
    return EffectSummary::top(); // Unresolved: the call aborts dynamically.
  };

  // Base x86 tables (closure-independent part).
  std::map<unsigned, X86Tables> X86;
  for (unsigned I = 0; I < Decls.size(); ++I)
    if (Views[I].X)
      X86[I] = x86BuildBase(Views[I].X->module(), Decls[I].GE);

  // Kleene iteration over every function closure of every module.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I < Decls.size(); ++I) {
      const LangView &V = Views[I];
      auto update = [&](const std::string &Name, EffectSummary E) {
        E = canon(std::move(E));
        auto It = FnClosure.find({I, Name});
        if (It == FnClosure.end() || !sameEffect(It->second, E)) {
          FnClosure[{I, Name}] = std::move(E);
          Changed = true;
        }
      };
      if (V.CI) {
        for (const cimp::Function &F : V.CI->module().Funcs)
          update(F.Name, cimpBlockClosure(F.Body, Decls[I].GE, CalleeCl));
      } else if (V.CL) {
        for (const clight::Function &F : V.CL->module().Funcs) {
          EffectSummary E;
          E.OwnW = true; // The allocation step writes the local slots.
          for (const clight::StmtPtr &S : F.Body)
            E.unionWith(clightClosure(*S, F, Decls[I].GE, CalleeCl));
          update(F.Name, std::move(E));
        }
      } else if (V.X) {
        X86Tables &T = X86[I];
        if (x86UpdateFuture(V.X->module(), T, CalleeCl))
          Changed = true;
        for (const auto &[Name, EI] : V.X->module().Entries) {
          EffectSummary E;
          if (EI.PCIndex < T.Future.size())
            E = T.Future[EI.PCIndex];
          else
            E.Unknown = true;
          if (EI.FrameSize > 0)
            E.OwnW = true; // The allocation step writes the frame.
          update(Name, std::move(E));
        }
      }
    }
  }

  // Final per-point tables under the converged closures.
  for (unsigned I = 0; I < Decls.size(); ++I) {
    const LangView &V = Views[I];
    ModuleTable &T = Ind->Mods[I];
    if (V.CI) {
      const GlobalEnv &GE = Decls[I].GE;
      for (const cimp::Function &F : V.CI->module().Funcs)
        cimpForEachStmt(F.Body, [&](const cimp::Stmt &S) {
          T.Instr[&S] = cimpInstr(S, GE, CalleeCl);
          T.Closure[&S] = cimpClosure(S, GE, CalleeCl);
        });
    } else if (V.CL) {
      const GlobalEnv &GE = Decls[I].GE;
      for (const clight::Function &F : V.CL->module().Funcs)
        clightForEachStmt(F.Body, [&](const clight::Stmt &S) {
          T.Instr[&S] = clightInstr(S, F, GE);
          T.Closure[&S] = clightClosure(S, F, GE, CalleeCl);
        });
    } else if (V.X) {
      const x86::Module &M = V.X->module();
      const X86Tables &XT = X86[I];
      for (unsigned PC = 0; PC < M.Code.size(); ++PC) {
        T.Instr[&M.Code[PC]] = XT.Instr[PC];
        T.Closure[&M.Code[PC]] =
            XT.In[PC] ? XT.Future[PC] : EffectSummary::top();
      }
    }
  }
  return Ind;
}

bool Independence::analyzable(unsigned ModIdx) const {
  return ModIdx < Mods.size() && Mods[ModIdx].Analyzable;
}

EffectSummary Independence::lookup(bool Closure, unsigned ModIdx,
                                   const void *Token) const {
  if (ModIdx >= Mods.size() || !Mods[ModIdx].Analyzable)
    return EffectSummary::top();
  const ModuleTable &T = Mods[ModIdx];
  const auto &Map = Closure ? T.Closure : T.Instr;
  auto It = Map.find(Token);
  return It == Map.end() ? EffectSummary::top() : It->second;
}

EffectSummary Independence::instrSummary(unsigned ModIdx,
                                         const PorPoint &Pt) const {
  return lookup(false, ModIdx, Pt.Token);
}

EffectSummary Independence::closureSummary(unsigned ModIdx,
                                           const PorPoint &Pt) const {
  return lookup(true, ModIdx, Pt.Token);
}

IndepVerdict Independence::mayConflict(unsigned ModA, const PorPoint &PA,
                                       unsigned ModB,
                                       const PorPoint &PB) const {
  EffectSummary A = instrSummary(ModA, PA);
  EffectSummary B = instrSummary(ModB, PB);
  if (A.touchesNothing() || B.touchesNothing())
    return IndepVerdict::Independent;
  if (A.Unknown || B.Unknown)
    return IndepVerdict::Unknown;
  return summariesConflict(A, 0, B, 1) ? IndepVerdict::MayConflict
                                       : IndepVerdict::Independent;
}

EffectSummary Independence::pendingOf(const Program &P,
                                      const ThreadState &T) const {
  if (T.finished() || T.frames().empty())
    return {};
  EffectSummary E;
  const auto &Frames = T.frames();
  for (std::size_t I = 0; I < Frames.size(); ++I) {
    const Frame &Fr = Frames[I];
    std::vector<PorPoint> Pts;
    EffectSummary Extra;
    if (!P.module(Fr.ModIdx).Lang->porPoints(Fr.F, *Fr.C, Pts, Extra))
      return EffectSummary::top();
    E.unionWith(Extra);
    if (I + 1 == Frames.size() && !Pts.empty())
      E.unionWith(lookup(false, Fr.ModIdx, Pts[0].Token));
  }
  return canon(E);
}

EffectSummary Independence::futureOf(const Program &P,
                                     const ThreadState &T) const {
  if (T.finished() || T.frames().empty())
    return {};
  EffectSummary E;
  for (const Frame &Fr : T.frames()) {
    std::vector<PorPoint> Pts;
    EffectSummary Extra;
    if (!P.module(Fr.ModIdx).Lang->porPoints(Fr.F, *Fr.C, Pts, Extra))
      return EffectSummary::top();
    E.unionWith(Extra);
    for (const PorPoint &Pt : Pts)
      E.unionWith(lookup(true, Fr.ModIdx, Pt.Token));
  }
  return canon(E);
}

} // namespace analysis

namespace {

/// PorOracle over the compiled independence tables.
class IndependenceOracle : public PorOracle {
public:
  IndependenceOracle(const Program &P,
                     std::shared_ptr<const analysis::Independence> Ind)
      : P(&P), Ind(std::move(Ind)) {}

  EffectSummary pendingOf(const ThreadState &T) const override {
    return Ind->pendingOf(*P, T);
  }
  EffectSummary futureOf(const ThreadState &T) const override {
    return Ind->futureOf(*P, T);
  }

private:
  const Program *P;
  std::shared_ptr<const analysis::Independence> Ind;
};

} // namespace

std::shared_ptr<const PorOracle> buildIndependenceOracle(const Program &P) {
  return std::make_shared<IndependenceOracle>(P, analysis::Independence::build(P));
}

} // namespace ccc
