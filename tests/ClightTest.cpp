//===- tests/ClightTest.cpp - Clight frontend and semantics tests ----------===//
//
// Exercises the Clight-subset frontend: parsing, locals in free-list
// memory, pointers to globals, cross-module calls (example 2.1 of the
// paper), and the Fig. 10(c) counter client against gamma_lock.
//
//===----------------------------------------------------------------------===//

#include "clight/ClightLang.h"
#include "clight/ClightParser.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"

#include <gtest/gtest.h>

using namespace ccc;

namespace {

Trace doneTrace(std::vector<int64_t> Events) {
  return Trace{std::move(Events), TraceEnd::Done};
}

Program clightProgram(const std::string &Src,
                      std::vector<std::string> Entries) {
  Program P;
  clight::addClightModule(P, "m", Src);
  for (auto &E : Entries)
    P.addThread(E);
  P.link();
  return P;
}

} // namespace

TEST(ClightParser, RejectsAddressOfLocal) {
  std::string Err;
  auto M = clight::parseModule(R"(
    void f() { int a; print(&a); }
  )",
                               Err);
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Err.find("globals only"), std::string::npos);
}

TEST(ClightParser, ParsesFig10cClient) {
  std::string Err;
  auto M = clight::parseModule(R"(
    extern void lock();
    extern void unlock();
    int x = 0;
    void inc() {
      int32_t tmp;
      lock();
      tmp = x;
      x = x + 1;
      unlock();
      print(tmp);
    }
  )",
                               Err);
  ASSERT_NE(M, nullptr) << Err;
  ASSERT_NE(M->find("inc"), nullptr);
  EXPECT_EQ(M->find("inc")->Locals.size(), 1u);
  EXPECT_EQ(M->Externs.size(), 2u);
}

TEST(ClightSemantics, LocalsAndArithmetic) {
  Program P = clightProgram(R"(
    void main() {
      int a = 6;
      int b = 7;
      int c;
      c = a * b;
      print(c);
      print(c % 5);
      print(-a);
      print(!a);
      print(a < b && b <= 7);
    }
  )",
                            {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({42, 2, -6, 0, 1})));
}

TEST(ClightSemantics, GlobalsAndPointers) {
  Program P = clightProgram(R"(
    int g = 3;
    void main() {
      int *p;
      p = &g;
      *p = *p + 4;
      print(g);
    }
  )",
                            {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({7})));
}

TEST(ClightSemantics, WhileLoopsAndCalls) {
  Program P = clightProgram(R"(
    int sum(int n) {
      int s = 0;
      int i = 1;
      while (i <= n) { s = s + i; i = i + 1; }
      return s;
    }
    void main() {
      int r;
      r = sum(10);
      print(r);
    }
  )",
                            {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({55})));
}

TEST(ClightSemantics, Example21CrossModuleCalls) {
  // The module-linking example (2.1) of Sec. 2.2, with b a global per the
  // paper's no-stack-escape restriction (footnote 6).
  Program P;
  clight::addClightModule(P, "S1", R"(
    extern void g(int *x);
    int a = 0;
    int b = 0;
    int f() {
      a = 0;
      b = 0;
      g(&b);
      return a + b;
    }
    void main() {
      int r;
      r = f();
      print(r);
    }
  )");
  clight::addClightModule(P, "S2", R"(
    void g(int *x) {
      *x = 3;
    }
  )");
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  // The compiler may not assume b is still 0 after g returns: f = 3.
  EXPECT_TRUE(T.contains(doneTrace({3})));
}

TEST(ClightSemantics, UninitializedLocalUseAborts) {
  Program P = clightProgram(R"(
    void main() { int a; print(a + 1); }
  )",
                            {"main"});
  EXPECT_FALSE(isSafe(P));
}

TEST(ClightSemantics, DivisionByZeroAborts) {
  Program P = clightProgram(R"(
    void main() { int a = 1; int b = 0; print(a / b); }
  )",
                            {"main"});
  EXPECT_FALSE(isSafe(P));
}

TEST(ClightSemantics, Fig10cClientWithGammaLock) {
  Program P;
  clight::addClightModule(P, "client", R"(
    extern void lock();
    extern void unlock();
    int x = 0;
    void inc() {
      int32_t tmp;
      lock();
      tmp = x;
      x = x + 1;
      unlock();
      print(tmp);
    }
  )");
  sync::addGammaLock(P);
  P.addThread("inc");
  P.addThread("inc");
  P.link();

  EXPECT_TRUE(isDRF(P));
  TraceSet T = preemptiveTraces(P);
  EXPECT_FALSE(T.hasAbort());
  EXPECT_TRUE(T.contains(doneTrace({0, 1})));
  EXPECT_TRUE(T.contains(doneTrace({1, 0})));
}

TEST(ClightSemantics, RacyClightClientDetected) {
  Program P = clightProgram(R"(
    int x = 0;
    void t1() { x = 1; }
    void t2() { x = 2; }
  )",
                            {"t1", "t2"});
  EXPECT_FALSE(isDRF(P));
  EXPECT_FALSE(isNPDRF(P));
}

TEST(ClightSemantics, LocalsAreThreadPrivate) {
  // Two threads running the same function get disjoint local slots.
  Program P = clightProgram(R"(
    void t() {
      int a = 0;
      int i = 0;
      while (i < 3) { a = a + 2; i = i + 1; }
      print(a);
    }
  )",
                            {"t", "t"});
  EXPECT_TRUE(isDRF(P));
  TraceSet T = preemptiveTraces(P);
  for (const Trace &Tr : T.traces()) {
    ASSERT_EQ(Tr.End, TraceEnd::Done);
    EXPECT_EQ(Tr.Events, (std::vector<int64_t>{6, 6}));
  }
}

TEST(ClightSemantics, PreemptiveEqualsNonPreemptiveForLockClient) {
  Program P;
  clight::addClightModule(P, "client", R"(
    extern void lock();
    extern void unlock();
    int x = 0;
    void inc() {
      int32_t tmp;
      lock();
      tmp = x;
      x = x + 1;
      unlock();
      print(tmp);
    }
  )");
  sync::addGammaLock(P);
  P.addThread("inc");
  P.addThread("inc");
  P.link();
  ASSERT_TRUE(isDRF(P));
  TraceSet Pre = preemptiveTraces(P);
  TraceSet NP = nonPreemptiveTraces(P);
  RefineResult R = equivTraces(Pre, NP);
  EXPECT_TRUE(R.Holds) << "cex: " << R.CounterExample << "\npre "
                       << Pre.toString() << "\nnp " << NP.toString();
}
