//===- ir/RTLLang.cpp - RTL and LTL interpreters ---------------------------===//

#include "ir/IRLangs.h"

#include "support/StrUtil.h"

#include <array>
#include <cassert>

using namespace ccc;
using namespace ccc::ir;

namespace {

/// Generic CFG stepper over a register-access policy. The policy provides
/// RegT plus read/write of registers on the core.
template <typename Policy>
class CfgCore : public Core {
public:
  using FunctionT = rtl::FunctionT<typename Policy::RegT>;
  const FunctionT *F = nullptr;
  unsigned PC = 0;
  typename Policy::StateT State;
  bool Await = false;
  bool AwaitHasDst = false;
  typename Policy::RegT AwaitDst{};

  std::string key() const override {
    StrBuilder B;
    B << 'f' << reinterpret_cast<uintptr_t>(F) << "@" << PC;
    if (Await)
      B << 'w';
    B << '|' << Policy::stateKey(State);
    return B.take();
  }
};

template <typename Policy>
std::vector<LocalStep> stepCfg(const char *LangName,
                               const CfgCore<Policy> &Cr,
                               const GlobalEnv &GE, const Mem &M) {
  using RegT = typename Policy::RegT;
  using InstrT = rtl::InstrT<RegT>;
  std::vector<LocalStep> Out;
  auto abort = [&Out, LangName](const std::string &R) {
    Out.push_back(LocalStep::abort(std::string(LangName) + ": " + R));
  };

  if (Cr.Await) {
    abort("stepped while awaiting return");
    return Out;
  }
  auto It = Cr.F->Graph.find(Cr.PC);
  if (It == Cr.F->Graph.end()) {
    abort("bad CFG node");
    return Out;
  }
  const InstrT &I = It->second;

  Footprint FP;
  auto read = [&](const RegT &R) { return Policy::read(Cr.State, R); };
  auto finish = [&](Msg Ms, std::shared_ptr<CfgCore<Policy>> N, Mem NM) {
    LocalStep S;
    S.M = std::move(Ms);
    S.FP = FP;
    S.NextMem = std::move(NM);
    S.Next = std::move(N);
    Out.push_back(std::move(S));
  };
  auto nextCore = [&](unsigned Succ) {
    auto N = std::make_shared<CfgCore<Policy>>(Cr);
    N->PC = Succ;
    return N;
  };
  auto evalAddr = [&](const rtl::AddrMode<RegT> &AM) -> std::optional<Addr> {
    if (AM.K == rtl::AddrMode<RegT>::Kind::Global)
      return GE.lookup(AM.Global);
    auto V = read(AM.Base);
    if (!V || !V->isPtr())
      return std::nullopt;
    return V->asPtr();
  };

  switch (I.K) {
  case InstrT::Kind::Nop:
    finish(Msg::tau(), nextCore(I.S1), M);
    break;
  case InstrT::Kind::Op: {
    Addr GA = 0;
    if (I.O == Oper::Addrglobal) {
      auto A = GE.lookup(I.Global);
      if (!A) {
        abort("unknown global");
        break;
      }
      GA = *A;
    }
    Value A, B;
    unsigned Arity = operArity(I.O);
    if (Arity >= 1) {
      auto V = read(I.Args[0]);
      if (!V) {
        abort("bad operand");
        break;
      }
      A = *V;
    }
    if (Arity >= 2) {
      auto V = read(I.Args[1]);
      if (!V) {
        abort("bad operand");
        break;
      }
      B = *V;
    }
    auto R = evalOper(I.O, I.C, I.Imm, GA, A, B);
    if (!R) {
      abort("operator evaluation failed");
      break;
    }
    auto N = nextCore(I.S1);
    if (!Policy::write(N->State, I.Dst, *R)) {
      abort("bad destination");
      break;
    }
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case InstrT::Kind::Load: {
    auto A = evalAddr(I.AM);
    if (!A) {
      abort("bad load address");
      break;
    }
    auto V = M.load(*A);
    if (!V) {
      abort("load from unallocated address");
      break;
    }
    FP.addRead(*A);
    auto N = nextCore(I.S1);
    if (!Policy::write(N->State, I.Dst, *V)) {
      abort("bad load destination");
      break;
    }
    finish(Msg::tau(), std::move(N), M);
    break;
  }
  case InstrT::Kind::Store: {
    auto A = evalAddr(I.AM);
    auto V = read(I.Args[0]);
    if (!A || !V) {
      abort("bad store");
      break;
    }
    Mem NM = M;
    if (!NM.store(*A, *V)) {
      abort("store to unallocated address");
      break;
    }
    FP.addWrite(*A);
    finish(Msg::tau(), nextCore(I.S1), std::move(NM));
    break;
  }
  case InstrT::Kind::Call:
  case InstrT::Kind::Tailcall: {
    std::vector<Value> Args;
    bool Bad = false;
    for (const RegT &R : I.Args) {
      auto V = read(R);
      if (!V) {
        Bad = true;
        break;
      }
      Args.push_back(*V);
    }
    if (Bad) {
      abort("bad call argument");
      break;
    }
    if (I.K == InstrT::Kind::Tailcall) {
      auto N = std::make_shared<CfgCore<Policy>>(Cr);
      finish(Msg::tailCall(I.Callee, std::move(Args)), std::move(N), M);
      break;
    }
    auto N = nextCore(I.S1);
    N->Await = true;
    N->AwaitHasDst = I.HasDst;
    N->AwaitDst = I.Dst;
    finish(Msg::extCall(I.Callee, std::move(Args)), std::move(N), M);
    break;
  }
  case InstrT::Kind::Cond: {
    auto A = read(I.Args[0]);
    if (!A) {
      abort("bad condition operand");
      break;
    }
    Value B = Value::makeInt(I.Imm);
    if (!I.CondOneArg) {
      auto BV = read(I.Args[1]);
      if (!BV) {
        abort("bad condition operand");
        break;
      }
      B = *BV;
    }
    auto R = evalCmp(I.C, *A, B);
    if (!R) {
      abort("condition type error");
      break;
    }
    finish(Msg::tau(), nextCore(*R ? I.S1 : I.S2), M);
    break;
  }
  case InstrT::Kind::Return: {
    Value V = Value::makeInt(0);
    if (I.HasArg) {
      auto A = read(I.Args[0]);
      if (!A) {
        abort("bad return value");
        break;
      }
      V = *A;
    }
    auto N = std::make_shared<CfgCore<Policy>>(Cr);
    finish(Msg::ret(V), std::move(N), M);
    break;
  }
  case InstrT::Kind::Print: {
    auto V = read(I.Args[0]);
    if (!V || !V->isInt()) {
      abort("print needs an integer");
      break;
    }
    finish(Msg::event(V->asInt()), nextCore(I.S1), M);
    break;
  }
  }
  return Out;
}

template <typename Policy>
CoreRef initCfgCore(const rtl::FunctionT<typename Policy::RegT> *F,
                    const std::vector<Value> &Args) {
  if (!F || F->NumParams != Args.size())
    return nullptr;
  auto C = std::make_shared<CfgCore<Policy>>();
  C->F = F;
  C->PC = F->Entry;
  Policy::initState(C->State, *F);
  for (std::size_t I = 0; I < Args.size(); ++I)
    if (!Policy::write(C->State, F->ParamHomes[I], Args[I]))
      return nullptr;
  return C;
}

template <typename Policy>
CoreRef applyCfgReturn(const Core &C, const Value &V) {
  const auto &Cr = static_cast<const CfgCore<Policy> &>(C);
  if (!Cr.Await)
    return nullptr;
  auto N = std::make_shared<CfgCore<Policy>>(Cr);
  N->Await = false;
  if (Cr.AwaitHasDst)
    if (!Policy::write(N->State, Cr.AwaitDst, V))
      return nullptr;
  return N;
}

/// RTL: pseudo-registers in a growable vector.
struct RTLPolicy {
  using RegT = rtl::Reg;
  using StateT = std::vector<Value>;

  static void initState(StateT &S, const rtl::Function &F) {
    S.assign(F.NumRegs, Value::makeUndef());
  }
  static std::optional<Value> read(const StateT &S, RegT R) {
    if (R >= S.size())
      return std::nullopt;
    return S[R];
  }
  static bool write(StateT &S, RegT R, const Value &V) {
    if (R >= S.size())
      return false;
    S[R] = V;
    return true;
  }
  static std::string stateKey(const StateT &S) {
    StrBuilder B;
    for (const Value &V : S)
      B << V.toString() << ',';
    return B.take();
  }
};

/// LTL: machine registers plus abstract slots (CompCert locsets).
struct LTLState {
  std::array<Value, x86::NumRegs> Regs;
  std::vector<Value> Slots;
};

struct LTLPolicy {
  using RegT = ltl::Loc;
  using StateT = LTLState;

  static void initState(StateT &S, const ltl::Function &F) {
    S.Regs.fill(Value::makeUndef());
    S.Slots.assign(F.NumSlots, Value::makeUndef());
  }
  static std::optional<Value> read(const StateT &S, const ltl::Loc &L) {
    if (L.IsReg)
      return S.Regs[static_cast<unsigned>(L.R)];
    if (L.Slot >= S.Slots.size())
      return std::nullopt;
    return S.Slots[L.Slot];
  }
  static bool write(StateT &S, const ltl::Loc &L, const Value &V) {
    if (L.IsReg) {
      S.Regs[static_cast<unsigned>(L.R)] = V;
      return true;
    }
    if (L.Slot >= S.Slots.size())
      return false;
    S.Slots[L.Slot] = V;
    return true;
  }
  static std::string stateKey(const StateT &S) {
    StrBuilder B;
    for (const Value &V : S.Regs)
      B << V.toString() << ',';
    B << '/';
    for (const Value &V : S.Slots)
      B << V.toString() << ',';
    return B.take();
  }
};

} // namespace

RTLLang::RTLLang(std::shared_ptr<const rtl::Module> M) : Mod(std::move(M)) {}
RTLLang::~RTLLang() = default;

CoreRef RTLLang::initCore(const std::string &Entry,
                          const std::vector<Value> &Args) const {
  return initCfgCore<RTLPolicy>(Mod->find(Entry), Args);
}

std::vector<LocalStep> RTLLang::step(const FreeList &F, const Core &C,
                                     const Mem &M) const {
  (void)F;
  return stepCfg<RTLPolicy>("RTL",
                            static_cast<const CfgCore<RTLPolicy> &>(C),
                            *Globals, M);
}

CoreRef RTLLang::applyReturn(const Core &C, const Value &V) const {
  return applyCfgReturn<RTLPolicy>(C, V);
}

LTLLang::LTLLang(std::shared_ptr<const ltl::Module> M) : Mod(std::move(M)) {}
LTLLang::~LTLLang() = default;

CoreRef LTLLang::initCore(const std::string &Entry,
                          const std::vector<Value> &Args) const {
  return initCfgCore<LTLPolicy>(Mod->find(Entry), Args);
}

std::vector<LocalStep> LTLLang::step(const FreeList &F, const Core &C,
                                     const Mem &M) const {
  (void)F;
  return stepCfg<LTLPolicy>("LTL",
                            static_cast<const CfgCore<LTLPolicy> &>(C),
                            *Globals, M);
}

CoreRef LTLLang::applyReturn(const Core &C, const Value &V) const {
  return applyCfgReturn<LTLPolicy>(C, V);
}

unsigned ccc::ir::addRTLModule(Program &P, const std::string &Name,
                               std::shared_ptr<const rtl::Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<RTLLang>(M), std::move(GE));
}

unsigned ccc::ir::addLTLModule(Program &P, const std::string &Name,
                               std::shared_ptr<const ltl::Module> M) {
  GlobalEnv GE;
  for (const auto &G : M->Globals)
    GE.declare(G.first, Value::makeInt(G.second), DataOwner::Client);
  return P.addModule(Name, std::make_unique<LTLLang>(M), std::move(GE));
}
