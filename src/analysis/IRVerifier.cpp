//===- analysis/IRVerifier.cpp - Per-IR structural verifiers ---------------===//

#include "analysis/IRVerifier.h"

#include "support/StrUtil.h"

#include <map>
#include <set>

using namespace ccc;
using namespace ccc::analysis;

namespace {

/// The registers Allocation may choose, plus EAX for pinned call results
/// (see compiler/Allocation.cpp: EAX/EDX are Asmgen scratch, EDI/ESI/EDX
/// carry arguments, ESP is the frame pointer).
bool isLocatableReg(x86::Reg R) {
  return R == x86::Reg::EAX || R == x86::Reg::EBX || R == x86::Reg::ECX ||
         R == x86::Reg::EBP;
}

struct Checker {
  VerifyResult &VR;
  std::string Fn;

  void fail(const std::string &What) {
    VR.Errors.push_back(VR.Stage + "/" + Fn + ": " + What);
  }
};

/// Validity of one register-like operand, parameterized per IR.
struct RTLRegRule {
  const rtl::Function &F;
  bool check(rtl::Reg R, Checker &C, const char *What) const {
    if (R >= F.NumRegs) {
      C.fail(std::string(What) + ": pseudo-register r" + std::to_string(R) +
             " out of bounds (NumRegs=" + std::to_string(F.NumRegs) + ")");
      return false;
    }
    return true;
  }
  bool checkCallDst(const rtl::Reg &R, Checker &C) const {
    return check(R, C, "call result");
  }
};

struct LTLRegRule {
  const ltl::Function &F;
  bool check(const ltl::Loc &L, Checker &C, const char *What) const {
    if (L.IsReg) {
      if (!isLocatableReg(L.R)) {
        C.fail(std::string(What) + ": register " + x86::regName(L.R) +
               " outside the allocatable class");
        return false;
      }
      return true;
    }
    if (L.Slot >= F.NumSlots) {
      C.fail(std::string(What) + ": slot S" + std::to_string(L.Slot) +
             " out of bounds (NumSlots=" + std::to_string(F.NumSlots) + ")");
      return false;
    }
    return true;
  }
  bool checkCallDst(const ltl::Loc &L, Checker &C) const {
    if (!L.IsReg || L.R != x86::Reg::EAX) {
      C.fail("call result must be pinned to EAX, got " + L.toString());
      return false;
    }
    return true;
  }
};

/// Shared checks for one CFG instruction (RTL and LTL share InstrT).
template <typename RegT, typename Rule>
void checkCfgInstr(unsigned Node, const rtl::InstrT<RegT> &I,
                   const std::map<unsigned, rtl::InstrT<RegT>> &Graph,
                   const std::set<std::string> &Globals, const Rule &R,
                   Checker &C) {
  using K = typename rtl::InstrT<RegT>::Kind;
  auto nodeStr = [Node] { return "node " + std::to_string(Node); };
  auto checkSucc = [&](unsigned S, const char *Which) {
    if (!Graph.count(S))
      C.fail(nodeStr() + ": " + Which + " successor " + std::to_string(S) +
             " is not a CFG node");
  };
  auto checkGlobal = [&](const std::string &G, const char *What) {
    if (!Globals.count(G))
      C.fail(nodeStr() + ": " + What + " references undeclared global '" +
             G + "'");
  };
  auto checkAddrMode = [&](const rtl::AddrMode<RegT> &AM) {
    if (AM.K == rtl::AddrMode<RegT>::Kind::Global)
      checkGlobal(AM.Global, "addressing mode");
    else
      R.check(AM.Base, C, "addressing base");
  };
  auto checkArgs = [&](unsigned Want) {
    if (I.Args.size() != Want) {
      C.fail(nodeStr() + ": expected " + std::to_string(Want) +
             " argument(s), found " + std::to_string(I.Args.size()));
      return false;
    }
    for (const RegT &A : I.Args)
      R.check(A, C, "argument");
    return true;
  };

  // Fall-through kinds must name a real successor.
  switch (I.K) {
  case K::Nop:
  case K::Op:
  case K::Load:
  case K::Store:
  case K::Call:
  case K::Print:
    checkSucc(I.S1, "fall-through");
    break;
  case K::Cond:
    checkSucc(I.S1, "true");
    checkSucc(I.S2, "false");
    break;
  case K::Return:
  case K::Tailcall:
    break;
  }

  switch (I.K) {
  case K::Nop:
    break;
  case K::Op:
    checkArgs(ir::operArity(I.O));
    R.check(I.Dst, C, "op destination");
    if (I.O == ir::Oper::Addrglobal)
      checkGlobal(I.Global, "addrglobal");
    break;
  case K::Load:
    checkAddrMode(I.AM);
    R.check(I.Dst, C, "load destination");
    break;
  case K::Store:
    checkAddrMode(I.AM);
    checkArgs(1);
    break;
  case K::Call:
  case K::Tailcall:
    if (I.Callee.empty())
      C.fail(nodeStr() + ": call with empty callee");
    for (const RegT &A : I.Args)
      R.check(A, C, "call argument");
    if (I.K == K::Call && I.HasDst)
      R.checkCallDst(I.Dst, C);
    break;
  case K::Cond:
    checkArgs(I.CondOneArg ? 1 : 2);
    break;
  case K::Return:
    if (I.HasArg)
      checkArgs(1);
    break;
  case K::Print:
    checkArgs(1);
    break;
  }
}

template <typename RegT, typename MkRule>
VerifyResult verifyCfgModule(const rtl::ModuleT<RegT> &M,
                             const std::string &StageName, MkRule MakeRule) {
  VerifyResult VR;
  VR.Stage = StageName;
  std::set<std::string> Globals;
  for (const auto &G : M.Globals)
    Globals.insert(G.first);

  for (const auto &F : M.Funcs) {
    Checker C{VR, F.Name};
    ++VR.FunctionsChecked;
    auto Rule = MakeRule(F);
    if (!F.Graph.count(F.Entry))
      C.fail("entry node " + std::to_string(F.Entry) +
             " is not a CFG node");
    if (F.ParamHomes.size() != F.NumParams)
      C.fail("ParamHomes has " + std::to_string(F.ParamHomes.size()) +
             " entries for " + std::to_string(F.NumParams) + " parameters");
    for (const RegT &P : F.ParamHomes)
      Rule.check(P, C, "parameter home");
    for (const auto &NodeInstr : F.Graph) {
      ++VR.InstrsChecked;
      checkCfgInstr(NodeInstr.first, NodeInstr.second, F.Graph, Globals,
                    Rule, C);
    }
  }
  return VR;
}

/// Shared checks for linear-form code (Linear and Mach share Instr).
/// \p NumSlots bounds stack-slot operands (the frame size for Mach).
void checkLinearCode(const std::vector<linear::Instr> &Code,
                     const std::vector<linear::Loc> &ParamHomes,
                     unsigned NumParams, unsigned NumSlots,
                     const std::set<std::string> &Globals, Checker &C,
                     VerifyResult &VR) {
  using K = linear::Instr::Kind;

  // Label table: defined exactly once each.
  std::set<unsigned> Labels;
  for (const linear::Instr &I : Code) {
    if (I.K != K::Label)
      continue;
    if (!Labels.insert(I.Label).second)
      C.fail("label L" + std::to_string(I.Label) + " defined twice");
  }

  auto checkLoc = [&](const linear::Loc &L, const char *What) {
    if (L.IsReg) {
      if (!isLocatableReg(L.R))
        C.fail(std::string(What) + ": register " + x86::regName(L.R) +
               " outside the allocatable class");
    } else if (L.Slot >= NumSlots) {
      C.fail(std::string(What) + ": slot S" + std::to_string(L.Slot) +
             " out of bounds (" + std::to_string(NumSlots) + ")");
    }
  };
  auto checkGlobal = [&](const std::string &G, const std::string &What) {
    if (!Globals.count(G))
      C.fail(What + " references undeclared global '" + G + "'");
  };

  if (ParamHomes.size() != NumParams)
    C.fail("ParamHomes has " + std::to_string(ParamHomes.size()) +
           " entries for " + std::to_string(NumParams) + " parameters");
  for (const linear::Loc &P : ParamHomes)
    checkLoc(P, "parameter home");

  for (unsigned Idx = 0; Idx < Code.size(); ++Idx) {
    const linear::Instr &I = Code[Idx];
    ++VR.InstrsChecked;
    auto at = [Idx] { return "instr " + std::to_string(Idx); };
    auto checkArgs = [&](unsigned Want) {
      if (I.Args.size() != Want) {
        C.fail(at() + ": expected " + std::to_string(Want) +
               " argument(s), found " + std::to_string(I.Args.size()));
        return;
      }
      for (const linear::Loc &A : I.Args)
        checkLoc(A, "argument");
    };
    switch (I.K) {
    case K::Label:
      break;
    case K::Goto:
      if (!Labels.count(I.Label))
        C.fail(at() + ": goto to undefined label L" +
               std::to_string(I.Label));
      break;
    case K::Cond:
      checkArgs(I.CondOneArg ? 1 : 2);
      if (!Labels.count(I.Label))
        C.fail(at() + ": branch to undefined label L" +
               std::to_string(I.Label));
      break;
    case K::Op:
      checkArgs(ir::operArity(I.O));
      checkLoc(I.Dst, "op destination");
      if (I.O == ir::Oper::Addrglobal)
        checkGlobal(I.Global, at() + ": addrglobal");
      break;
    case K::Load:
      if (I.AM.K == linear::AddrMode::Kind::Global)
        checkGlobal(I.AM.Global, at() + ": addressing mode");
      else
        checkLoc(I.AM.Base, "addressing base");
      checkLoc(I.Dst, "load destination");
      break;
    case K::Store:
      if (I.AM.K == linear::AddrMode::Kind::Global)
        checkGlobal(I.AM.Global, at() + ": addressing mode");
      else
        checkLoc(I.AM.Base, "addressing base");
      checkArgs(1);
      break;
    case K::Call:
    case K::Tailcall:
      if (I.Callee.empty())
        C.fail(at() + ": call with empty callee");
      for (const linear::Loc &A : I.Args)
        checkLoc(A, "call argument");
      if (I.K == K::Call && I.HasDst &&
          !(I.Dst.IsReg && I.Dst.R == x86::Reg::EAX))
        C.fail(at() + ": call result must be pinned to EAX, got " +
               I.Dst.toString());
      break;
    case K::Return:
      if (I.HasArg)
        checkArgs(1);
      break;
    case K::Print:
      checkArgs(1);
      break;
    }
  }
}

} // namespace

std::string VerifyResult::toString() const {
  StrBuilder B;
  B << Stage << ": " << (ok() ? "ok" : "MALFORMED") << " ("
    << FunctionsChecked << " functions, " << InstrsChecked
    << " instructions)";
  for (const std::string &E : Errors)
    B << "\n  " << E;
  return B.take();
}

VerifyResult ccc::analysis::verifyRTL(const rtl::Module &M,
                                      const std::string &StageName) {
  return verifyCfgModule<rtl::Reg>(M, StageName, [](const rtl::Function &F) {
    return RTLRegRule{F};
  });
}

VerifyResult ccc::analysis::verifyLTL(const ltl::Module &M,
                                      const std::string &StageName) {
  return verifyCfgModule<ltl::Loc>(M, StageName, [](const ltl::Function &F) {
    return LTLRegRule{F};
  });
}

VerifyResult ccc::analysis::verifyLinear(const linear::Module &M,
                                         const std::string &StageName) {
  VerifyResult VR;
  VR.Stage = StageName;
  std::set<std::string> Globals;
  for (const auto &G : M.Globals)
    Globals.insert(G.first);
  for (const linear::Function &F : M.Funcs) {
    Checker C{VR, F.Name};
    ++VR.FunctionsChecked;
    checkLinearCode(F.Code, F.ParamHomes, F.NumParams, F.NumSlots, Globals,
                    C, VR);
  }
  return VR;
}

VerifyResult ccc::analysis::verifyMach(const mach::Module &M) {
  VerifyResult VR;
  VR.Stage = "Mach";
  std::set<std::string> Globals;
  for (const auto &G : M.Globals)
    Globals.insert(G.first);
  for (const mach::Function &F : M.Funcs) {
    Checker C{VR, F.Name};
    ++VR.FunctionsChecked;
    // In Mach, slots denote concrete frame cells within FrameSize.
    checkLinearCode(F.Code, F.ParamHomes, F.NumParams, F.FrameSize, Globals,
                    C, VR);
  }
  return VR;
}

VerifyResult ccc::analysis::verifyX86(const x86::Module &M) {
  VerifyResult VR;
  VR.Stage = "x86";
  Checker C{VR, "<module>"};
  std::set<std::string> Globals;
  for (const auto &G : M.Globals)
    Globals.insert(G.first);

  for (const auto &LabelIdx : M.Labels) {
    if (LabelIdx.second >= M.Code.size()) {
      C.fail("label '" + LabelIdx.first + "' points past the code (" +
             std::to_string(LabelIdx.second) + ")");
      continue;
    }
    const x86::Instr &I = M.Code[LabelIdx.second];
    if (I.K != x86::Instr::Kind::Label || I.Name != LabelIdx.first)
      C.fail("label '" + LabelIdx.first +
             "' does not point at its label instruction");
  }
  for (const auto &EntryInfo : M.Entries) {
    C.Fn = EntryInfo.first;
    if (EntryInfo.second.PCIndex >= M.Code.size())
      C.fail("entry PC " + std::to_string(EntryInfo.second.PCIndex) +
             " out of code bounds");
  }

  C.Fn = "<code>";
  auto checkOperandGlobal = [&](const x86::Operand &O, unsigned Idx) {
    if ((O.K == x86::Operand::Kind::GlobalImm ||
         O.K == x86::Operand::Kind::MemGlobal) &&
        !Globals.count(O.Global))
      C.fail("instr " + std::to_string(Idx) +
             ": references undeclared global '" + O.Global + "'");
  };
  for (unsigned Idx = 0; Idx < M.Code.size(); ++Idx) {
    const x86::Instr &I = M.Code[Idx];
    ++VR.InstrsChecked;
    checkOperandGlobal(I.Src, Idx);
    checkOperandGlobal(I.Dst, Idx);
    switch (I.K) {
    case x86::Instr::Kind::Jmp:
    case x86::Instr::Kind::Jcc:
      if (!M.label(I.Name))
        C.fail("instr " + std::to_string(Idx) + ": jump to undefined label '" +
               I.Name + "'");
      break;
    case x86::Instr::Kind::Call:
    case x86::Instr::Kind::TailCall:
      if (!M.arityOf(I.Name))
        C.fail("instr " + std::to_string(Idx) + ": callee '" + I.Name +
               "' has no entry or extern arity");
      break;
    default:
      break;
    }
  }
  VR.FunctionsChecked = static_cast<unsigned>(M.Entries.size());
  return VR;
}

VerifyResult ccc::analysis::verifyStage(const compiler::CompileResult &R,
                                        unsigned Stage) {
  switch (Stage) {
  case 4:
    return verifyRTL(*R.RTL, compiler::stageName(Stage));
  case 5:
    return verifyRTL(*R.RTLTailcall, compiler::stageName(Stage));
  case 6:
    return verifyRTL(*R.RTLRenumber, compiler::stageName(Stage));
  case 7:
    return verifyLTL(*R.LTL, compiler::stageName(Stage));
  case 8:
    return verifyLTL(*R.LTLTunneled, compiler::stageName(Stage));
  case 9:
    return verifyLinear(*R.Linear, compiler::stageName(Stage));
  case 10:
    return verifyLinear(*R.LinearClean, compiler::stageName(Stage));
  case 11:
    return verifyMach(*R.Mach);
  case 12:
    return verifyX86(*R.Asm);
  default: {
    // Front-end trees (Clight through CminorSel) are checked by their
    // parsers/constructors; no structural verifier.
    VerifyResult VR;
    VR.Stage = compiler::stageName(Stage);
    return VR;
  }
  }
}

std::vector<VerifyResult>
ccc::analysis::verifyPipeline(const compiler::CompileResult &R) {
  std::vector<VerifyResult> Out;
  for (unsigned Stage = 0; Stage < compiler::numStages(); ++Stage)
    Out.push_back(verifyStage(R, Stage));
  return Out;
}
