# Empty compiler generated dependencies file for dynamic_threads.
# This may be replaced when dependencies are built.
