//===- core/WorldCommon.h - Shared global-semantics machinery ---*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machinery shared by the preemptive (Fig. 7) and non-preemptive
/// (Sec. 3.3) global semantics: thread states as stacks of frames
/// (footnote 5), global step labels, and the frame push/pop logic for
/// external calls and returns.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_CORE_WORLDCOMMON_H
#define CASCC_CORE_WORLDCOMMON_H

#include "core/ModuleLang.h"
#include "core/Program.h"

#include <string>
#include <vector>

namespace ccc {

/// One stack frame of a thread: module, core, and the frame's free list.
struct Frame {
  unsigned ModIdx = 0;
  CoreRef C;
  FreeList F;
};

/// The runtime state of one thread: a stack of frames plus the allocation
/// cursor of the thread's free-list region.
///
/// The canonical key and its 64-bit hash are cached and invalidated by
/// the mutators, so a world's hashKey() is assembled from per-thread
/// field reads instead of re-serializing every frame's core at each
/// intern. The cache rides along on copies (successor worlds share the
/// valid cache of every thread the step did not touch).
class ThreadState {
public:
  ThreadState() = default;

  const Frame &top() const { return Stack.back(); }
  bool finished() const { return Finished; }
  uint32_t nextFrameOff() const { return NextFrameOff; }
  std::size_t numFrames() const { return Stack.size(); }
  const std::vector<Frame> &frames() const { return Stack; }

  /// Replaces the core of the topmost frame.
  void setTopCore(CoreRef C) {
    Stack.back().C = std::move(C);
    invalidate();
  }

  /// Pushes \p F and advances the frame cursor by \p RegionSize.
  void pushFrame(Frame F, uint32_t RegionSize) {
    Stack.push_back(std::move(F));
    NextFrameOff += RegionSize;
    invalidate();
  }

  /// Pops the top frame and rewinds the frame cursor (stack discipline:
  /// the region becomes reusable by the next call).
  void popFrame(uint32_t RegionSize) {
    Stack.pop_back();
    NextFrameOff -= RegionSize;
    invalidate();
  }

  /// Marks the thread terminated (kept separate from popFrame: a tail
  /// call also pops the last frame but immediately pushes the callee's).
  void setFinished() {
    Finished = true;
    invalidate();
  }

  /// Canonical key of the thread state, cached until the next mutation.
  const std::string &key() const;

  /// 64-bit hash over the same components as key(), cached alongside it.
  uint64_t hash() const;

  /// Interns the binary residue encoding of this thread state (same
  /// components as key(): finished flag, frame cursor, per-frame module
  /// index / frame base / core subtree) and returns the tree-node id.
  /// Cached until the next mutation; the cache rides along on copies,
  /// so threads the step did not touch skip re-encoding entirely.
  uint32_t residueRoot(ResidueBuf &B) const;

private:
  void invalidate() {
    CacheValid = false;
    ResidueCache = 0;
  }

  std::vector<Frame> Stack;
  uint32_t NextFrameOff = 0;
  bool Finished = false;

  /// key()/hash() cache; mutated only under exclusive access (a thread
  /// state is only read concurrently after its world was interned, and
  /// interning populates the cache first).
  mutable std::string KeyCache;
  mutable uint64_t HashCache = 0;
  mutable bool CacheValid = false;

  /// residueRoot() cache packed as (store epoch << 32) | node id; 0 =
  /// empty. Same exclusive-access discipline as KeyCache.
  mutable uint64_t ResidueCache = 0;
};

/// The label of a global step (paper: o ::= tau | e | sw, Fig. 7).
struct GLabel {
  enum class Kind { Tau, Event, Sw };
  Kind K = Kind::Tau;
  int64_t EventVal = 0;

  static GLabel tau() { return GLabel{}; }
  static GLabel event(int64_t V) { return GLabel{Kind::Event, V}; }
  static GLabel sw() { return GLabel{Kind::Sw, 0}; }

  bool isEvent() const { return K == Kind::Event; }
  std::string toString() const;
};

/// A successor of a global state.
template <typename WorldT> struct GSucc {
  GLabel L;
  Footprint FP;
  ThreadId Tid = 0;
  WorldT Next;
};

/// Outcome of applying a non-atomic-boundary local step to a thread.
enum class FrameStepStatus { Ok, ThreadFinished, Abort };

/// Applies a Tau/Event/Ret/ExtCall/TailCall local step \p LS to thread
/// \p T, updating the global memory \p M. On abort, \p AbortReason is set.
FrameStepStatus applyFrameStep(const Program &P, ThreadState &T,
                               const FreeList &ThreadRegion,
                               const LocalStep &LS, Mem &M,
                               std::string &AbortReason);

/// Renders a canonical key for a thread state (cached; see
/// ThreadState::key).
inline const std::string &threadKey(const ThreadState &T) { return T.key(); }

/// 64-bit incremental hash over the same components as threadKey
/// (cached; see ThreadState::hash).
inline uint64_t threadHash(const ThreadState &T) { return T.hash(); }

/// Creates a new thread for a Spawn message (the paper's future-work
/// extension, Sec. 8): the thread gets the next free-list region, which
/// is disjoint from every existing one by construction.
bool spawnThread(const Program &P, std::vector<ThreadState> &Threads,
                 const Msg &M, std::string &AbortReason);

/// Prediction of an atomic block's accumulated footprint (the Predict-1
/// rule of Fig. 9): starting from \p AfterEnt (the core just after
/// EntAtom), accumulates footprints over all silent paths until ExtAtom.
/// Non-silent steps inside the block and the \p MaxStates bound make the
/// prediction stop conservatively with what was accumulated so far.
std::vector<Footprint> predictAtomicBlock(const ModuleLang &Lang,
                                          const FreeList &F,
                                          const CoreRef &AfterEnt,
                                          const Mem &M,
                                          unsigned MaxStates = 4096);

} // namespace ccc

#endif // CASCC_CORE_WORLDCOMMON_H
