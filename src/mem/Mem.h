//===- mem/Mem.h - The global memory state ----------------------*- C++ -*-===//
//
// Part of CASCC, an executable model of certified separate compilation for
// concurrent programs (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global memory state (paper: sigma in State, a finite partial map
/// from addresses to values, Fig. 4). Memory only ever grows (the paper's
/// forward property); allocation extends the domain, there is no free.
///
/// Representation: a persistent copy-on-write paged store. The address
/// space is carved into fixed-size pages of Value slots (page index =
/// Addr >> PageBits); a Mem holds a sorted vector of shared_ptr pages, so
/// copying a Mem is O(pages) pointer copies and the successor states of
/// one exploration share every page their parent did not write. A page is
/// cloned on the first write through a Mem that does not own it
/// exclusively. The paper's forward/no-free discipline means pages only
/// ever gain slots, never lose them, so a page is never removed and the
/// sharing structure is append-friendly.
///
/// A 64-bit hash of the whole memory is maintained incrementally: every
/// allocated slot contributes slotHash(addr, value) to an XOR-fold, and
/// store/alloc update the fold in O(1). hashKey() is therefore a field
/// read. Equal memories (same domain, same values) always have equal
/// hashes; colliding hashes are disambiguated by the exploration engine
/// through exact comparison (operator==, which has a page-granular
/// shared-pointer fast path). See DESIGN.md section 4f.
///
//===----------------------------------------------------------------------===//

#ifndef CASCC_MEM_MEM_H
#define CASCC_MEM_MEM_H

#include "core/StatePool.h"
#include "mem/Addr.h"
#include "mem/Value.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ccc {

class ResidueBuf;

/// A finite partial map from addresses to values.
class Mem {
public:
  /// Slots per page. 64 keeps the allocation bitmap in one word and —
  /// with the linker's layout (frame regions of 0x100 slots, thread
  /// regions 0x10000 apart, globals below 0x2000) — guarantees that two
  /// different frames, and two different threads, never share a page.
  static constexpr unsigned PageBits = 6;
  static constexpr unsigned PageSize = 1u << PageBits;
  static constexpr Addr SlotMask = PageSize - 1;

  Mem() = default;

  /// Returns the value at \p A, or nullopt if unallocated.
  std::optional<Value> load(Addr A) const {
    const PageRef *P = findPage(A >> PageBits);
    if (!P)
      return std::nullopt;
    const unsigned S = A & SlotMask;
    if (!(((*P)->AllocMask >> S) & 1))
      return std::nullopt;
    return (*P)->Slots[S];
  }

  bool allocated(Addr A) const {
    const PageRef *P = findPage(A >> PageBits);
    return P && (((*P)->AllocMask >> (A & SlotMask)) & 1);
  }

  /// Stores \p V at the already-allocated address \p A. Returns false if
  /// the address is not allocated (the caller reports abort).
  bool store(Addr A, const Value &V);

  /// Allocates \p A with an initial value. Returns false if \p A is
  /// already allocated (a double allocation; the caller reports abort,
  /// matching store's unallocated-address convention). A failed alloc
  /// leaves the memory — including its maintained hash — untouched.
  bool alloc(Addr A, const Value &Init);

  /// Allocates \p A, or overwrites it if already allocated: the stack-
  /// discipline path for frame regions, which are reused after returns
  /// (the domain never shrinks — WorldCommon's Ret keeps the cells
  /// allocated — so re-entry finds them occupied by design). Only frame
  /// allocation may use this; every other allocation goes through the
  /// checked alloc().
  void allocFrame(Addr A, const Value &Init) {
    if (!alloc(A, Init)) {
      bool Stored = store(A, Init);
      (void)Stored;
    }
  }

  /// The domain of the memory as an address set (materialized; prefer
  /// domSize()/forEach()/forEachInRange() on hot paths — the per-page
  /// allocation bitmaps are the domain view and are shared COW-style
  /// between parent and child states, so those never materialize).
  AddrSet dom() const {
    std::vector<Addr> Elems;
    Elems.reserve(DomCount);
    forEach([&Elems](Addr A, const Value &) { Elems.push_back(A); });
    return AddrSet(std::move(Elems));
  }

  std::size_t domSize() const { return DomCount; }

  /// Exact equality. Fast paths: maintained hashes and domain sizes are
  /// compared first, and pages shared between the two memories (the
  /// common case for states related by a few steps) are skipped without
  /// touching their slots.
  bool operator==(const Mem &Other) const;
  bool operator!=(const Mem &Other) const { return !(*this == Other); }

  /// Returns true if this memory and \p Other agree on every address in
  /// \p Set per the paper's sigma =rs= sigma' relation (Fig. 6): each
  /// address is either outside both domains, or inside both with equal
  /// values. Addresses falling into a page shared by both memories are
  /// skipped page-at-a-time.
  bool eqOn(const Mem &Other, const AddrSet &Set) const;

  /// Canonical key for memoized state exploration.
  std::string key() const;

  /// Interns the binary encoding of this memory into \p B's tree store
  /// and returns the root node id: one (page index, page-content
  /// subtree) pair per page, in index order. Two memories receive the
  /// same root iff they are operator==-equal. Page subtrees are cached
  /// on the page object (equal contents hash-cons to the same id even
  /// across distinct page objects) and the whole-memory root is cached
  /// on the Mem until the next mutation, so the common re-encode after
  /// a step only visits the page the step wrote.
  uint32_t residueRoot(ResidueBuf &B) const;

  /// Maintained 64-bit hash: a field read. Equal memories hash equally;
  /// colliding hashes are disambiguated by exact comparison.
  uint64_t hashKey() const { return Hash; }

  /// Human-readable dump.
  std::string toString() const;

  /// Calls \p F(Addr, const Value &) for every allocated address in
  /// ascending address order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (const PageEntry &E : Pages)
      forEachInPage(E, F);
  }

  /// forEach restricted to addresses in [\p Lo, \p Hi) — touches only the
  /// pages overlapping the range.
  template <typename Fn> void forEachInRange(Addr Lo, Addr Hi, Fn &&F) const {
    if (Lo >= Hi)
      return;
    const uint32_t FirstPage = Lo >> PageBits;
    const uint32_t LastPage = (Hi - 1) >> PageBits;
    for (const PageEntry &E : Pages) {
      if (E.Index < FirstPage)
        continue;
      if (E.Index > LastPage)
        break;
      forEachInPage(E, [&](Addr A, const Value &V) {
        if (A >= Lo && A < Hi)
          F(A, V);
      });
    }
  }

  /// Walks every address where \p Before and \p After differ (allocated in
  /// only one, or allocated in both with different values), in ascending
  /// address order, calling \p F(Addr, const Value *BeforeVal,
  /// const Value *AfterVal) with nullptr for "unallocated here". Pages
  /// shared by both memories are skipped without touching their slots. \p F
  /// returns false to stop the walk early.
  template <typename Fn>
  static void forEachDiff(const Mem &Before, const Mem &After, Fn &&F);

  /// Number of page objects referenced (diagnostics / bench).
  std::size_t numPages() const { return Pages.size(); }

  /// True if \p Other references the very same page object for the page
  /// containing \p A (diagnostics / tests of the COW sharing structure).
  bool sharesPageWith(const Mem &Other, Addr A) const {
    const PageRef *P = findPage(A >> PageBits);
    const PageRef *Q = Other.findPage(A >> PageBits);
    return P && Q && *P == *Q;
  }

  /// Heap bytes of one page object (for shared-bytes accounting: a page
  /// referenced by many snapshots is paid for once).
  static std::size_t pageBytes();

  /// Exact byte accounting of the process-wide page pool (slab capacity
  /// vs live pages); surfaced in ExploreStats.
  static PoolStats pagePoolStats();

  /// Shallow bytes owned by this Mem itself: the object plus its
  /// page-table entries, excluding the (shared) page contents.
  std::size_t shallowBytes() const;

  /// Visits the identity of every referenced page, as an opaque pointer.
  /// Callers deduplicate across memories to measure COW sharing.
  template <typename Fn> void forEachPageId(Fn &&F) const {
    for (const PageEntry &E : Pages)
      F(static_cast<const void *>(E.P.get()));
  }

private:
  /// One fixed-size page: slot values, the allocation bitmap (the page's
  /// slice of dom(sigma)), and the XOR-fold of its allocated slots'
  /// hashes. Unallocated slots are kept at Value() so whole-page
  /// comparisons need not mask them. Pages are pool-allocated
  /// (RecyclingPool) with an intrusive refcount instead of going through
  /// one shared_ptr control block per page.
  struct Page {
    std::array<Value, PageSize> Slots;
    uint64_t AllocMask = 0;
    uint64_t Hash = 0;
    /// Cached residue subtree id, (store epoch << 32) | node id; 0 =
    /// empty. Reset by the mutators; the copy keeps it (a clone is
    /// content-equal until its first write).
    mutable std::atomic<uint64_t> InternCache{0};
    /// Intrusive refcount; a fresh or cloned page starts exclusively
    /// owned.
    std::atomic<uint32_t> RC{1};

    Page() = default;
    Page(const Page &O)
        : Slots(O.Slots), AllocMask(O.AllocMask), Hash(O.Hash),
          InternCache(O.InternCache.load(std::memory_order_relaxed)) {}
  };

  /// Intrusive smart pointer over pool-allocated pages; drop-in for the
  /// former shared_ptr<Page> (get / == / use_count), releasing the page
  /// back to the recycling pool at refcount zero.
  class PageRef {
  public:
    PageRef() = default;
    /// Adopts a page fresh from the pool (refcount already 1).
    explicit PageRef(Page *Adopted) : P(Adopted) {}
    PageRef(const PageRef &O) : P(O.P) { retain(); }
    PageRef(PageRef &&O) noexcept : P(O.P) { O.P = nullptr; }
    PageRef &operator=(const PageRef &O) {
      PageRef Tmp(O);
      std::swap(P, Tmp.P);
      return *this;
    }
    PageRef &operator=(PageRef &&O) noexcept {
      std::swap(P, O.P);
      return *this;
    }
    ~PageRef() { releaseRef(); }

    Page *get() const { return P; }
    Page &operator*() const { return *P; }
    Page *operator->() const { return P; }
    explicit operator bool() const { return P != nullptr; }
    bool operator==(const PageRef &O) const { return P == O.P; }
    bool operator!=(const PageRef &O) const { return P != O.P; }
    uint32_t use_count() const {
      return P ? P->RC.load(std::memory_order_relaxed) : 0;
    }

  private:
    void retain() {
      if (P)
        P->RC.fetch_add(1, std::memory_order_relaxed);
    }
    void releaseRef();
    Page *P = nullptr;
  };

  struct PageEntry {
    uint32_t Index = 0;
    PageRef P;
  };

  /// The process-wide page pool (leaked on purpose: pages held by
  /// statics may be released during teardown in any order).
  static RecyclingPool<Page> &pagePool();

  /// Encodes and interns one page's content (cached on the page).
  static uint32_t pageRoot(const Page &P, ResidueBuf &B);

  /// Mixes one (address, value) binding into a 64-bit slot hash. The
  /// whole-memory hash is the XOR of slot hashes, so this must scatter
  /// well; splitmix64's finalizer does.
  static uint64_t slotHash(Addr A, const Value &V) {
    uint64_t X = (static_cast<uint64_t>(A) << 32) | V.rawBits();
    X ^= static_cast<uint64_t>(static_cast<uint32_t>(V.kind())) *
         0x9E3779B97F4A7C15ULL;
    X += 0x9E3779B97F4A7C15ULL;
    X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
    X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
    return X ^ (X >> 31);
  }

  template <typename Fn>
  static void forEachInPage(const PageEntry &E, Fn &&F) {
    uint64_t Mask = E.P->AllocMask;
    const Addr Base = static_cast<Addr>(E.Index) << PageBits;
    while (Mask) {
      const unsigned S = static_cast<unsigned>(std::countr_zero(Mask));
      Mask &= Mask - 1;
      F(Base + S, E.P->Slots[S]);
    }
  }

  const PageRef *findPage(uint32_t Idx) const;
  PageEntry *findPageEntry(uint32_t Idx);

  /// Clones the page iff it is shared with another Mem, returning an
  /// exclusively-owned page to write into.
  Page &pageForWrite(PageEntry &E) {
    if (E.P.use_count() != 1)
      E.P = PageRef(pagePool().acquire(*E.P));
    return *E.P;
  }

  /// Pages sorted by index; copying a Mem copies this vector (refcount
  /// bumps only) — the copy-on-write snapshot.
  std::vector<PageEntry> Pages;
  /// XOR-fold of slotHash over every allocated slot, maintained on
  /// mutation.
  uint64_t Hash = 0;
  /// |dom(sigma)|, maintained on allocation.
  std::size_t DomCount = 0;
  /// residueRoot() cache, (store epoch << 32) | node id; 0 = empty.
  /// Reset by the mutators; kept on copy (the copy is content-equal).
  mutable uint64_t ResidueCache = 0;
};

inline void Mem::PageRef::releaseRef() {
  if (P && P->RC.fetch_sub(1, std::memory_order_acq_rel) == 1)
    pagePool().release(P);
  P = nullptr;
}

template <typename Fn>
void Mem::forEachDiff(const Mem &Before, const Mem &After, Fn &&F) {
  auto I = Before.Pages.begin(), IE = Before.Pages.end();
  auto J = After.Pages.begin(), JE = After.Pages.end();
  // Per-slot comparison of one (possibly one-sided) page pair.
  auto diffPage = [&F](uint32_t Idx, const Page *B, const Page *A) {
    const uint64_t BMask = B ? B->AllocMask : 0;
    const uint64_t AMask = A ? A->AllocMask : 0;
    uint64_t Mask = BMask | AMask;
    const Addr Base = static_cast<Addr>(Idx) << PageBits;
    while (Mask) {
      const unsigned S = static_cast<unsigned>(std::countr_zero(Mask));
      Mask &= Mask - 1;
      const bool InB = (BMask >> S) & 1, InA = (AMask >> S) & 1;
      if (InB && InA && B->Slots[S] == A->Slots[S])
        continue;
      if (!InB && !InA)
        continue;
      if (!F(Base + S, InB ? &B->Slots[S] : nullptr,
             InA ? &A->Slots[S] : nullptr))
        return false;
    }
    return true;
  };
  while (I != IE || J != JE) {
    if (J == JE || (I != IE && I->Index < J->Index)) {
      if (!diffPage(I->Index, I->P.get(), nullptr))
        return;
      ++I;
    } else if (I == IE || J->Index < I->Index) {
      if (!diffPage(J->Index, nullptr, J->P.get()))
        return;
      ++J;
    } else {
      // Same page index: a shared page object cannot differ.
      if (I->P != J->P && !diffPage(I->Index, I->P.get(), J->P.get()))
        return;
      ++I;
      ++J;
    }
  }
}

} // namespace ccc

#endif // CASCC_MEM_MEM_H
