//===- tests/CImpSemanticsTest.cpp - CImp + global semantics tests ---------===//
//
// Exercises the CImp instantiation of the abstract language against the
// preemptive and non-preemptive global semantics: event traces, atomic
// blocks, DRF/NPDRF detection, external calls, and the gamma_lock object.
//
//===----------------------------------------------------------------------===//

#include "cimp/CImpLang.h"
#include "core/Semantics.h"
#include "sync/LockLib.h"

#include <gtest/gtest.h>

using namespace ccc;

namespace {

Program singleModuleProgram(const std::string &Src,
                            std::vector<std::string> Entries) {
  Program P;
  cimp::addCImpModule(P, "m", Src);
  for (auto &E : Entries)
    P.addThread(E);
  P.link();
  return P;
}

Trace doneTrace(std::vector<int64_t> Events) {
  return Trace{std::move(Events), TraceEnd::Done};
}

} // namespace

TEST(CImpSemantics, SequentialPrints) {
  Program P = singleModuleProgram(R"(
    main() { x := 1; print(x); print(x + 1); }
  )",
                                  {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({1, 2})));
}

TEST(CImpSemantics, ArithmeticAndControlFlow) {
  Program P = singleModuleProgram(R"(
    main() {
      s := 0;
      i := 1;
      while (i <= 5) { s := s + i; i := i + 1; }
      if (s == 15) { print(s); } else { print(0 - 1); }
      print(7 * 3 - 1);
      print(17 / 5);
    }
  )",
                                  {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({15, 20, 3})));
}

TEST(CImpSemantics, GlobalLoadStore) {
  Program P = singleModuleProgram(R"(
    global g = 10;
    main() { v := 0; v := [g]; [g] := v + 5; w := [g]; print(w); }
  )",
                                  {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({15})));
}

TEST(CImpSemantics, TwoThreadPrintsInterleave) {
  Program P = singleModuleProgram(R"(
    t1() { print(1); }
    t2() { print(2); }
  )",
                                  {"t1", "t2"});
  TraceSet T = preemptiveTraces(P);
  EXPECT_EQ(T.size(), 2u);
  EXPECT_TRUE(T.contains(doneTrace({1, 2})));
  EXPECT_TRUE(T.contains(doneTrace({2, 1})));
}

TEST(CImpSemantics, AssertFailureAborts) {
  Program P = singleModuleProgram(R"(
    main() { assert(1 == 2); }
  )",
                                  {"main"});
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("assertion"), std::string::npos);
  TraceSet T = preemptiveTraces(P);
  EXPECT_TRUE(T.contains(Trace{{}, TraceEnd::Abort}));
}

TEST(CImpSemantics, DivergenceIsObserved) {
  Program P = singleModuleProgram(R"(
    main() { print(3); while (1) { skip; } }
  )",
                                  {"main"});
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(Trace{{3}, TraceEnd::Div}));
}

TEST(CImpSemantics, ExternalCallAcrossModules) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    main() { r := 0; r := add3(4); print(r); }
  )");
  cimp::addCImpModule(P, "lib", R"(
    add3(x) { return x + 3; }
  )");
  P.addThread("main");
  P.link();
  TraceSet T = preemptiveTraces(P);
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(doneTrace({7})));
}

TEST(CImpSemantics, UnknownExternalAborts) {
  Program P = singleModuleProgram(R"(
    main() { nosuch(); }
  )",
                                  {"main"});
  std::string Reason;
  EXPECT_FALSE(isSafe(P, {}, &Reason));
  EXPECT_NE(Reason.find("unknown external"), std::string::npos);
}

TEST(CImpSemantics, RacyProgramDetected) {
  Program P = singleModuleProgram(R"(
    global x = 0;
    t1() { [x] := 1; }
    t2() { [x] := 2; }
  )",
                                  {"t1", "t2"});
  auto Race = findDataRace(P);
  ASSERT_TRUE(Race.has_value());
  EXPECT_NE(Race->T1, Race->T2);
  EXPECT_FALSE(isDRF(P));
  EXPECT_FALSE(isNPDRF(P));
}

TEST(CImpSemantics, ReadReadIsNotARace) {
  Program P = singleModuleProgram(R"(
    global x = 5;
    t1() { a := 0; a := [x]; print(a); }
    t2() { b := 0; b := [x]; print(b); }
  )",
                                  {"t1", "t2"});
  EXPECT_TRUE(isDRF(P));
  EXPECT_TRUE(isNPDRF(P));
}

TEST(CImpSemantics, AtomicBlocksPreventRaces) {
  Program P = singleModuleProgram(R"(
    global x = 0;
    t1() { < v := [x]; [x] := v + 1; > }
    t2() { < v := [x]; [x] := v + 1; > }
  )",
                                  {"t1", "t2"});
  EXPECT_TRUE(isDRF(P));
  EXPECT_TRUE(isNPDRF(P));
}

TEST(CImpSemantics, AtomicIncrementsAreAtomic) {
  // Without atomicity, both threads could read 0 and the final value be 1.
  Program P = singleModuleProgram(R"(
    global x = 0;
    t1() { < v := [x]; [x] := v + 1; > }
    main() {
      < v := [x]; [x] := v + 1; >
      done := 0;
      while (done == 0) { < w := [x]; if (w == 2) { done := 1; } > }
      print(99)
      ;
    }
  )",
                                  {"t1", "main"});
  TraceSet T = preemptiveTraces(P);
  // The waiter terminates in every schedule where t1 runs; divergence
  // appears only for unfair schedules that never run t1.
  EXPECT_TRUE(T.contains(doneTrace({99})) ||
              T.contains(Trace{{99}, TraceEnd::Done}));
  for (const Trace &Tr : T.traces()) {
    if (Tr.End == TraceEnd::Done) {
      EXPECT_EQ(Tr.Events, (std::vector<int64_t>{99}));
    }
  }
}

TEST(CImpSemantics, HalfAtomicUpdateIsStillARace) {
  // One side atomic, other side plain write: conflict with d1=1, d2=0.
  Program P = singleModuleProgram(R"(
    global x = 0;
    t1() { < v := [x]; [x] := v + 1; > }
    t2() { [x] := 7; }
  )",
                                  {"t1", "t2"});
  EXPECT_FALSE(isDRF(P));
}

TEST(CImpSemantics, PreemptiveEqualsNonPreemptiveForDRF) {
  Program P = singleModuleProgram(R"(
    global x = 0;
    t1() { < v := [x]; [x] := v + 1; > print(1); }
    t2() { < v := [x]; [x] := v + 2; > print(2); }
  )",
                                  {"t1", "t2"});
  ASSERT_TRUE(isDRF(P));
  TraceSet Pre = preemptiveTraces(P);
  TraceSet NP = nonPreemptiveTraces(P);
  RefineResult R = equivTraces(Pre, NP);
  EXPECT_TRUE(R.Holds) << "counterexample: " << R.CounterExample
                       << "\npre: " << Pre.toString()
                       << "\nnp:  " << NP.toString();
  EXPECT_TRUE(R.Definitive);
}

TEST(CImpSemantics, GammaLockMutualExclusion) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    global x = 0;
    inc() {
      lock();
      tmp := [x];
      [x] := tmp + 1;
      unlock();
      print(tmp);
    }
  )");
  sync::addGammaLock(P);
  P.addThread("inc");
  P.addThread("inc");
  P.link();

  ASSERT_TRUE(isDRF(P));
  TraceSet T = preemptiveTraces(P);
  // Complete (terminating) traces print 0 and 1 in either order; an
  // unfairly-scheduled spin loop adds divergence traces.
  EXPECT_TRUE(T.contains(doneTrace({0, 1})));
  EXPECT_TRUE(T.contains(doneTrace({1, 0})));
  for (const Trace &Tr : T.traces()) {
    if (Tr.End != TraceEnd::Done)
      continue;
    EXPECT_EQ(Tr.Events.size(), 2u);
    EXPECT_TRUE((Tr.Events == std::vector<int64_t>{0, 1}) ||
                (Tr.Events == std::vector<int64_t>{1, 0}))
        << Tr.toString();
  }
  EXPECT_FALSE(T.hasAbort());
}

TEST(CImpSemantics, GammaLockNPDRFMatchesDRF) {
  Program P;
  cimp::addCImpModule(P, "client", R"(
    global x = 0;
    inc() { lock(); tmp := [x]; [x] := tmp + 1; unlock(); print(tmp); }
  )");
  sync::addGammaLock(P);
  P.addThread("inc");
  P.addThread("inc");
  P.link();
  EXPECT_EQ(isDRF(P), isNPDRF(P));
  EXPECT_TRUE(isNPDRF(P));
}

TEST(CImpSemantics, ObjectPermissionViolationAborts) {
  // Object-mode CImp touching client data aborts (Sec. 7.1 discipline).
  Program P;
  cimp::addCImpModule(P, "client", R"(
    global c = 0;
    main() { evil(); }
  )");
  // The object module illegally stores through a pointer it receives.
  Program P2;
  cimp::addCImpModule(P2, "client", R"(
    global c = 0;
    main() { r := 0; r := evil(c); }
  )");
  cimp::addCImpModule(P2, "obj", R"(
    evil(p) { [p] := 1; return 0; }
  )",
                      /*ObjectMode=*/true);
  P2.addThread("main");
  P2.link();
  std::string Reason;
  EXPECT_FALSE(isSafe(P2, {}, &Reason));
  EXPECT_NE(Reason.find("permission"), std::string::npos);
}

TEST(CImpSemantics, NonPreemptiveExploresFewerStates) {
  Program P = singleModuleProgram(R"(
    global x = 0;
    t1() { a := 1; a := a + 1; < v := [x]; [x] := v + a; > }
    t2() { b := 2; b := b + 1; < v := [x]; [x] := v + b; > }
  )",
                                  {"t1", "t2"});
  // The claim is about the full graphs: POR would shrink the preemptive
  // side below the non-preemptive count and invert the comparison.
  ExploreOptions Full;
  Full.Por = PorMode::Off;
  ExploreStats PreStats, NPStats;
  (void)preemptiveTraces(P, Full, &PreStats);
  (void)nonPreemptiveTraces(P, Full, &NPStats);
  EXPECT_LT(NPStats.States, PreStats.States);
}
